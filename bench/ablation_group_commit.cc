// Ablation: the group-commit stage (fsync amortization at the commit point).
//
// Sweeps commit concurrency {1, 4, 16, 64} x group-commit {on, off} over a
// WAL-backed database: every client thread runs auto-commit INSERTs into its
// own table, so the only shared resource is the commit point itself. Reports
// per cell:
//   * fsyncs_per_commit  - WAL Sync() barriers divided by commits. With the
//     stage on and enough concurrency this must drop well below 1 (one
//     fdatasync covers a whole batch window); off it is pinned at ~1.
//   * commit_p50/p99_us  - per-statement commit latency distribution.
//
// Correctness gates (CI fails on a nonzero value, see bench_compare.py):
//   * lost_acked_commit_failures - after the sweep, a separate run arms the
//     WAL fault injector mid-workload (the device dies with a torn write,
//     simulating a crash), reopens the database, and counts acked commits
//     missing after recovery. The group-commit ack contract says this is
//     always zero.
//   * fsync_amortization_failures - 1 if group commit failed to amortize
//     (fsyncs_per_commit >= 0.5) at concurrency >= 16.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "server/database.h"
#include "storage/disk_manager.h"

namespace stagedb {
namespace {

struct CellResult {
  int64_t commits = 0;
  double fsyncs_per_commit = 0;
  double p50_us = 0;
  double p99_us = 0;
  double wall_ms = 0;
};

std::string TempWal(const std::string& tag) {
  return "/tmp/stagedb_bench_gc_" + tag + "_" + std::to_string(::getpid());
}

double Percentile(std::vector<double>* v, double p) {
  if (v->empty()) return 0;
  std::sort(v->begin(), v->end());
  const size_t idx = static_cast<size_t>(p * static_cast<double>(v->size()));
  return (*v)[std::min(idx, v->size() - 1)];
}

CellResult RunCell(int threads, bool group_commit, int ops_per_thread) {
  const std::string wal_path =
      TempWal("c" + std::to_string(threads) + (group_commit ? "on" : "off"));
  std::remove(wal_path.c_str());
  server::DatabaseOptions opts;
  opts.wal_path = wal_path;
  opts.group_commit = group_commit;
  opts.group_commit_max_wait_us = 1000;
  auto db_or = server::Database::Open(opts);
  if (!db_or.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 db_or.status().ToString().c_str());
    std::exit(1);
  }
  auto db = std::move(*db_or);
  for (int t = 0; t < threads; ++t) {
    auto r = db->Execute("CREATE TABLE t" + std::to_string(t) +
                         " (k INTEGER, v INTEGER)");
    if (!r.ok()) std::exit(1);
  }

  const int64_t syncs_before = db->wal()->syncs();
  std::vector<std::vector<double>> latencies(threads);
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      latencies[t].reserve(ops_per_thread);
      const std::string prefix =
          "INSERT INTO t" + std::to_string(t) + " VALUES (";
      for (int i = 0; i < ops_per_thread; ++i) {
        const auto start = std::chrono::steady_clock::now();
        auto r = db->Execute(prefix + std::to_string(i) + ", " +
                             std::to_string(i * 7) + ")");
        const auto end = std::chrono::steady_clock::now();
        if (!r.ok()) std::exit(1);
        latencies[t].push_back(
            std::chrono::duration<double, std::micro>(end - start).count());
      }
    });
  }
  for (auto& w : workers) w.join();
  const auto wall_end = std::chrono::steady_clock::now();

  CellResult cell;
  cell.commits = static_cast<int64_t>(threads) * ops_per_thread;
  cell.fsyncs_per_commit =
      static_cast<double>(db->wal()->syncs() - syncs_before) /
      static_cast<double>(cell.commits);
  std::vector<double> all;
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  cell.p50_us = Percentile(&all, 0.50);
  cell.p99_us = Percentile(&all, 0.99);
  cell.wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start)
          .count();
  db.reset();
  std::remove(wal_path.c_str());
  return cell;
}

/// Runs a concurrent workload, kills the WAL device mid-run via the fault
/// injector (torn final write, no process kill), reopens, and counts acked
/// commits that recovery failed to resurrect. Returns the number lost.
int64_t SimulatedCrashLostCommits(int threads, int ops_per_thread) {
  const std::string wal_path = TempWal("crash");
  std::remove(wal_path.c_str());
  int64_t lost = 0;
  {
    server::DatabaseOptions opts;
    opts.wal_path = wal_path;
    opts.group_commit = true;
    opts.group_commit_max_wait_us = 500;
    auto db_or = server::Database::Open(opts);
    if (!db_or.ok()) std::exit(1);
    auto db = std::move(*db_or);
    for (int t = 0; t < threads; ++t) {
      auto r = db->Execute("CREATE TABLE t" + std::to_string(t) +
                           " (k INTEGER, v INTEGER)");
      if (!r.ok()) std::exit(1);
    }
    storage::WriteFaultInjector injector;
    db->set_wal_fault_injector(&injector);
    // Die mid-workload: roughly 3 appends per commit, aim for the middle.
    injector.Arm(storage::WriteFaultInjector::Fault::kTornWrite,
                 3 * threads * ops_per_thread / 2, {});

    std::vector<std::vector<int64_t>> acked(threads);
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        const std::string prefix =
            "INSERT INTO t" + std::to_string(t) + " VALUES (";
        for (int i = 0; i < ops_per_thread; ++i) {
          auto r = db->Execute(prefix + std::to_string(i) + ", " +
                               std::to_string(i) + ")");
          if (!r.ok()) return;  // the device is dead; nothing acks anymore
          acked[t].push_back(i);
        }
      });
    }
    for (auto& w : workers) w.join();
    db.reset();  // drain fails harmlessly on the dead device

    server::DatabaseOptions ro;
    ro.wal_path = wal_path;
    auto recovered_or = server::Database::Open(ro);
    if (!recovered_or.ok()) {
      std::fprintf(stderr, "recovery failed: %s\n",
                   recovered_or.status().ToString().c_str());
      return static_cast<int64_t>(threads) * ops_per_thread;  // all lost
    }
    auto recovered = std::move(*recovered_or);
    for (int t = 0; t < threads; ++t) {
      auto result =
          recovered->Execute("SELECT k FROM t" + std::to_string(t));
      if (!result.ok()) {
        lost += static_cast<int64_t>(acked[t].size());
        continue;
      }
      std::vector<int64_t> got;
      for (const auto& row : result->rows) got.push_back(row[0].int_value());
      std::sort(got.begin(), got.end());
      for (int64_t k : acked[t]) {
        if (!std::binary_search(got.begin(), got.end(), k)) ++lost;
      }
    }
  }
  std::remove(wal_path.c_str());
  return lost;
}

}  // namespace
}  // namespace stagedb

int main(int argc, char** argv) {
  using stagedb::bench::BenchArgs;
  using stagedb::bench::JsonReport;
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  const int ops = args.smoke ? 50 : 200;

  JsonReport report("ablation_group_commit");
  report.Add("smoke", args.smoke);
  report.Add("ops_per_thread", ops);

  int fsync_amortization_failures = 0;
  for (int threads : {1, 4, 16, 64}) {
    for (bool gc : {true, false}) {
      const auto cell = stagedb::RunCell(threads, gc, ops);
      const std::string tag =
          "_c" + std::to_string(threads) + (gc ? "_gc_on" : "_gc_off");
      report.Add("fsyncs_per_commit" + tag, cell.fsyncs_per_commit);
      report.Add("commit_p50_us" + tag, cell.p50_us);
      report.Add("commit_p99_us" + tag, cell.p99_us);
      if (!args.json) {
        std::printf(
            "conc=%-3d group_commit=%-3s commits=%lld fsyncs/commit=%.3f "
            "p50=%.0fus p99=%.0fus wall=%.0fms\n",
            threads, gc ? "on" : "off",
            static_cast<long long>(cell.commits), cell.fsyncs_per_commit,
            cell.p50_us, cell.p99_us, cell.wall_ms);
      }
      if (gc && threads >= 16 && cell.fsyncs_per_commit >= 0.5) {
        ++fsync_amortization_failures;
      }
    }
  }

  const int64_t lost = stagedb::SimulatedCrashLostCommits(16, ops);
  report.Add("lost_acked_commit_failures", lost);
  report.Add("fsync_amortization_failures", fsync_amortization_failures);
  if (!args.json) {
    std::printf("simulated crash: %lld acked commit(s) lost\n",
                static_cast<long long>(lost));
  }
  if (args.json) report.Print();
  return (lost != 0 || fsync_amortization_failures != 0) ? 1 : 0;
}
