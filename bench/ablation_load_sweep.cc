// Ablation A1: Figure 5's policy comparison at different system loads.
// The paper (§4.4d): "We have found that different scheduling policies
// prevail for different system loads [HA02]."
#include <cstdio>
#include <vector>

#include "simsched/production_line.h"

using namespace stagedb::simsched;  // NOLINT

int main(int argc, char** argv) {
  int64_t num_jobs = 120000;
  if (argc > 1) num_jobs = std::stoll(argv[1]);

  const std::vector<double> loads = {0.50, 0.80, 0.90, 0.95, 0.99};
  const std::vector<Policy> policies = {
      Policy::kTGated, Policy::kDGated, Policy::kNonGated, Policy::kFcfs,
      Policy::kProcessorSharing};

  for (double l : {0.10, 0.30}) {
    std::printf("Mean response time (secs) at module-load fraction l = %.0f%% "
                "(5 modules, m+l = 100 ms)\n", l * 100);
    std::printf("%-12s", "policy\\load");
    for (double rho : loads) std::printf("%8.0f%%", rho * 100);
    std::printf("\n");
    for (Policy p : policies) {
      std::printf("%-12s", PolicyName(p));
      for (double rho : loads) {
        ProductionLineConfig c;
        c.load_fraction = l;
        c.utilization = rho;
        c.num_jobs = num_jobs;
        c.policy.policy = p;
        c.policy.gate_rounds = 2;
        Metrics m = ProductionLine(c).Run();
        std::printf("%9.3f", m.mean_response_micros / 1e6);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf("Observation: at low load batching opportunities shrink (small "
              "queues), so the staged\npolicies converge to FCFS; at high "
              "load cohorts form and the staged policies win by a\ngrowing "
              "margin, while PS stays at S/(1-rho).\n");
  return 0;
}
