// Ablation A3 (§4.4c): the page size for exchanging intermediate results
// among the execution engine stages. "This parameter affects the time a
// stage spends working on a query before it switches to a different one."
// Measured on the real staged engine with real threads.
#include <chrono>
#include <cstdio>
#include <vector>

#include "engine/staged_engine.h"
#include "optimizer/planner.h"
#include "parser/parser.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/wisconsin.h"

using stagedb::catalog::Catalog;
using stagedb::engine::StagedEngine;
using stagedb::engine::StagedEngineOptions;

int main() {
  stagedb::storage::MemDiskManager disk;
  stagedb::storage::BufferPool pool(&disk, 16384);
  Catalog catalog(&pool);
  if (!stagedb::workload::CreateWisconsinTable(&catalog, "tenk1", 20000).ok() ||
      !stagedb::workload::CreateWisconsinTable(&catalog, "tenk2", 20000).ok()) {
    return 1;
  }
  auto stmt = stagedb::parser::ParseStatement(
      "SELECT tenk1.ten, COUNT(*), SUM(tenk2.unique1) FROM tenk1 "
      "JOIN tenk2 ON tenk1.unique1 = tenk2.unique2 GROUP BY tenk1.ten");
  if (!stmt.ok()) return 1;
  stagedb::optimizer::Planner planner(&catalog);
  auto plan = planner.Plan(**stmt);
  if (!plan.ok()) return 1;

  std::printf("Ablation A3: exchange page size (tuples/page) on a join+agg "
              "query, real staged engine\n\n");
  std::printf("%-16s %-14s %-18s %-16s\n", "tuples/page", "time (ms)",
              "packets yielded", "packets blocked");
  for (size_t page : {4, 16, 64, 256, 1024}) {
    StagedEngineOptions opts;
    opts.tuples_per_page = page;
    opts.exchange_capacity_pages = 4;
    StagedEngine engine(&catalog, opts);
    const auto start = std::chrono::steady_clock::now();
    constexpr int kReps = 5;
    for (int i = 0; i < kReps; ++i) {
      auto rows = engine.Execute(plan->get());
      if (!rows.ok()) {
        std::fprintf(stderr, "exec failed: %s\n",
                     rows.status().ToString().c_str());
        return 1;
      }
    }
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count() /
                      kReps;
    int64_t yielded = 0, blocked = 0;
    for (const auto& stage : engine.runtime()->stages()) {
      yielded += stage->packets_yielded();
      blocked += stage->packets_blocked();
    }
    std::printf("%-16zu %-14.1f %-18lld %-16lld\n", page, ms,
                static_cast<long long>(yielded),
                static_cast<long long>(blocked));
  }
  std::printf("\nTiny pages maximize stage ping-pong (many blocked/parked "
              "packets); very large pages\nreduce pipelining. The default "
              "(64) balances the two — the §4.4 self-tuning target.\n");
  return 0;
}
