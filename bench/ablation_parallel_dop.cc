// Ablation: partitioned intra-query parallelism (§4.3). The paper argues a
// staged engine exposes intra-operator parallelism on SMPs: one query's
// hash-join (or aggregation) work can run as N partition packets spread
// over the stage's worker pool instead of serializing on one packet. This
// bench sweeps the degree of parallelism over a join-heavy and an
// aggregate-heavy mix with stage pools held constant (8 workers on the join
// and aggr stages for every run), so the only variable is how many
// partition packets the planner/engine fan out. On a multi-core host the
// join-heavy mix is expected to speed up roughly with min(DOP, cores);
// on a single core the sweep degenerates to a fan-out overhead measurement.
//
// Every run cross-checks its result set against the DOP=1 reference; any
// mismatch makes the bench exit nonzero (and sets the *_mismatch JSON
// fields the CI bench-regression gate hard-fails on).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "catalog/catalog.h"
#include "engine/staged_engine.h"
#include "optimizer/planner.h"
#include "parser/parser.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace {

using stagedb::catalog::Catalog;
using stagedb::catalog::Schema;
using stagedb::catalog::Tuple;
using stagedb::catalog::TupleToString;
using stagedb::catalog::TypeId;
using stagedb::catalog::Value;
using stagedb::engine::StagedEngine;
using stagedb::engine::StagedEngineOptions;
using stagedb::optimizer::PhysicalPlan;
using stagedb::optimizer::Planner;
using stagedb::optimizer::PlannerOptions;

constexpr int kDops[] = {1, 2, 4, 8};
constexpr int kPoolWorkers = 8;  // constant: only the packet count varies

struct Workload {
  // Join-heavy: a probe-side table fanning out to kMult build rows per key
  // with a rarely-passing residual predicate — the per-probe work (tuple
  // concatenation + predicate evaluation) dominates the serial scans.
  int64_t build_keys;
  int64_t build_mult;
  int64_t probe_rows;
  // Aggregate-heavy: grouped aggregation with expression arguments.
  int64_t agg_rows;
  int reps;
};

double RunPlanMs(StagedEngine* engine, const PhysicalPlan* plan, int reps,
                 std::vector<std::string>* sorted_rows) {
  // Warm-up run (buffer pool, stage spin-up) is also the correctness probe.
  auto rows = engine->Execute(plan);
  if (!rows.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 rows.status().message().c_str());
    std::exit(1);
  }
  sorted_rows->clear();
  for (const Tuple& t : *rows) sorted_rows->push_back(TupleToString(t));
  std::sort(sorted_rows->begin(), sorted_rows->end());

  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    auto timed = engine->Execute(plan);
    if (!timed.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   timed.status().message().c_str());
      std::exit(1);
    }
  }
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
             .count() /
         reps;
}

}  // namespace

int main(int argc, char** argv) {
  const stagedb::bench::BenchArgs args =
      stagedb::bench::BenchArgs::Parse(argc, argv);
  const Workload w = args.smoke
                         ? Workload{4096, 8, 40000, 60000, 3}
                         : Workload{16384, 8, 200000, 240000, 5};

  stagedb::storage::MemDiskManager disk;
  stagedb::storage::BufferPool pool(&disk, 32768);
  Catalog catalog(&pool);

  auto dim = catalog.CreateTable(
      "dim", Schema({{"dkey", TypeId::kInt64, ""},
                     {"dval", TypeId::kInt64, ""}}));
  auto fact = catalog.CreateTable(
      "fact", Schema({{"fkey", TypeId::kInt64, ""},
                      {"fval", TypeId::kInt64, ""}}));
  auto wide = catalog.CreateTable(
      "wide", Schema({{"g", TypeId::kInt64, ""},
                      {"a", TypeId::kInt64, ""},
                      {"b", TypeId::kInt64, ""}}));
  if (!dim.ok() || !fact.ok() || !wide.ok()) return 1;
  for (int64_t i = 0; i < w.build_keys * w.build_mult; ++i) {
    if (!catalog
             .InsertTuple(*dim, {Value::Int(i / w.build_mult),
                                  Value::Int(i % w.build_mult)})
             .ok()) {
      return 1;
    }
  }
  for (int64_t j = 0; j < w.probe_rows; ++j) {
    if (!catalog
             .InsertTuple(*fact,
                          {Value::Int(j % w.build_keys), Value::Int(j)})
             .ok()) {
      return 1;
    }
  }
  for (int64_t i = 0; i < w.agg_rows; ++i) {
    if (!catalog
             .InsertTuple(*wide, {Value::Int(i % 64), Value::Int(i % 1000),
                                   Value::Int(i % 97)})
             .ok()) {
      return 1;
    }
  }

  // Each probe row matches build_mult dim rows; the residual predicate
  // passes only for the first few probe payloads, so the join work (not the
  // result transfer) dominates.
  const std::string join_sql =
      "SELECT fact.fkey, fact.fval, dim.dval FROM fact JOIN dim "
      "ON fact.fkey = dim.dkey WHERE fact.fval + dim.dval < 8";
  const std::string agg_sql =
      "SELECT g, COUNT(*), SUM(a + b), AVG(a), MIN(b), MAX(a) FROM wide "
      "GROUP BY g";

  stagedb::bench::JsonReport report("ablation_parallel_dop");
  report.Add("smoke", args.smoke);
  report.Add("build_rows", w.build_keys * w.build_mult);
  report.Add("probe_rows", w.probe_rows);
  report.Add("agg_rows", w.agg_rows);
  report.Add("pool_workers", kPoolWorkers);
  report.Add("dops", "1,2,4,8");

  if (!args.json) {
    std::printf(
        "Ablation: partitioned intra-query parallelism (%u hardware "
        "threads)\n  join-heavy: %lld probe x %lld-way fan-out, "
        "aggregate-heavy: %lld rows / 64 groups\n\n",
        std::thread::hardware_concurrency(),
        static_cast<long long>(w.probe_rows),
        static_cast<long long>(w.build_mult),
        static_cast<long long>(w.agg_rows));
    std::printf("%6s %14s %14s %14s %14s\n", "dop", "join ms", "join x",
                "agg ms", "agg x");
  }

  double join_ms_dop1 = 0, agg_ms_dop1 = 0;
  std::vector<std::string> join_ref, agg_ref;
  int mismatches = 0;
  for (const int dop : kDops) {
    PlannerOptions popts;
    popts.max_dop = dop;
    Planner planner(&catalog, popts);
    auto join_stmt = stagedb::parser::ParseStatement(join_sql);
    auto agg_stmt = stagedb::parser::ParseStatement(agg_sql);
    if (!join_stmt.ok() || !agg_stmt.ok()) return 1;
    auto join_plan = planner.Plan(**join_stmt);
    auto agg_plan = planner.Plan(**agg_stmt);
    if (!join_plan.ok() || !agg_plan.ok()) return 1;

    StagedEngineOptions opts;
    opts.max_dop = dop;
    opts.stage_pools["join"] = {kPoolWorkers, -1};
    opts.stage_pools["aggr"] = {kPoolWorkers, -1};
    opts.stage_pools["fscan"] = {2, -1};
    StagedEngine engine(&catalog, opts);

    std::vector<std::string> join_rows, agg_rows;
    const double join_ms =
        RunPlanMs(&engine, join_plan->get(), w.reps, &join_rows);
    const double agg_ms =
        RunPlanMs(&engine, agg_plan->get(), w.reps, &agg_rows);

    if (dop == 1) {
      join_ms_dop1 = join_ms;
      agg_ms_dop1 = agg_ms;
      join_ref = join_rows;
      agg_ref = agg_rows;
    } else {
      if (join_rows != join_ref) ++mismatches;
      if (agg_rows != agg_ref) ++mismatches;
    }

    const std::string suffix = "_dop" + std::to_string(dop);
    report.Add("join_ms" + suffix, join_ms);
    report.Add("agg_ms" + suffix, agg_ms);
    report.Add("join_speedup" + suffix,
               join_ms > 0 ? join_ms_dop1 / join_ms : 0.0);
    report.Add("agg_speedup" + suffix,
               agg_ms > 0 ? agg_ms_dop1 / agg_ms : 0.0);
    if (!args.json) {
      std::printf("%6d %14.1f %14.2f %14.1f %14.2f\n", dop, join_ms,
                  join_ms > 0 ? join_ms_dop1 / join_ms : 0.0, agg_ms,
                  agg_ms > 0 ? agg_ms_dop1 / agg_ms : 0.0);
    }
  }
  // Batch-size sweep: same queries at DOP=4 with the planner stamping an
  // explicit morsel size onto every operator. Each run must reproduce the
  // DOP=1 unbatched reference byte-for-byte — partial-batch handling at EOF
  // and batch-aware partition routing are exactly the code paths a wrong
  // morsel boundary would break.
  constexpr int kBatchRows[] = {8, 64, 256};
  report.Add("batch_rows_sweep", "8,64,256");
  for (const int batch_rows : kBatchRows) {
    PlannerOptions popts;
    popts.max_dop = 4;
    popts.batch_rows = batch_rows;
    Planner planner(&catalog, popts);
    auto join_stmt = stagedb::parser::ParseStatement(join_sql);
    auto agg_stmt = stagedb::parser::ParseStatement(agg_sql);
    if (!join_stmt.ok() || !agg_stmt.ok()) return 1;
    auto join_plan = planner.Plan(**join_stmt);
    auto agg_plan = planner.Plan(**agg_stmt);
    if (!join_plan.ok() || !agg_plan.ok()) return 1;

    StagedEngineOptions opts;
    opts.max_dop = 4;
    opts.stage_pools["join"] = {kPoolWorkers, -1};
    opts.stage_pools["aggr"] = {kPoolWorkers, -1};
    opts.stage_pools["fscan"] = {2, -1};
    StagedEngine engine(&catalog, opts);

    std::vector<std::string> join_rows, agg_rows;
    const double join_ms =
        RunPlanMs(&engine, join_plan->get(), w.reps, &join_rows);
    const double agg_ms =
        RunPlanMs(&engine, agg_plan->get(), w.reps, &agg_rows);
    if (join_rows != join_ref) ++mismatches;
    if (agg_rows != agg_ref) ++mismatches;

    const std::string suffix = "_batch" + std::to_string(batch_rows);
    report.Add("join_ms" + suffix, join_ms);
    report.Add("agg_ms" + suffix, agg_ms);
    if (!args.json) {
      std::printf("batch=%-4d dop=4 %10.1f join ms %10.1f agg ms\n",
                  batch_rows, join_ms, agg_ms);
    }
  }

  report.Add("join_result_rows", static_cast<int64_t>(join_ref.size()));
  report.Add("agg_result_rows", static_cast<int64_t>(agg_ref.size()));
  // Correctness field: any DOP whose result set differs from DOP=1 is a
  // bug, never a tolerable regression (bench_compare hard-fails on it).
  report.Add("result_mismatches", static_cast<int64_t>(mismatches));

  if (args.json) {
    report.Print();
  } else if (mismatches == 0) {
    std::printf("\nall DOP result sets match the DOP=1 reference\n");
  }
  if (mismatches != 0) {
    std::fprintf(stderr, "FAIL: %d DOP result set(s) diverged from DOP=1\n",
                 mismatches);
    return 1;
  }
  return 0;
}
