// Ablation: front-end work reuse (the versioned plan cache).
//
// Replays a parameterized workload through the StagedServer with the plan
// cache on vs. off and reports:
//   * repeat-heavy mix: a handful of statement shapes, thousands of
//     executions with varying literals, concurrent clients — the paper's
//     §2/§5 claim that the parse/optimize stages should serve repeated
//     statements from memoized results. Reports hit rate, end-to-end wall
//     clock, and optimize-stage visit counts (StageRuntime::Stats()).
//   * unique-statement mix: every statement a distinct shape — the
//     adversarial case; shows the cache overhead and a ~0% hit rate.
//   * DDL-interleaved mode: prepared statements race CREATE/DROP epoch
//     churn; every result is checked against the expected value, so a stale
//     plan execution is *detected*, not just hoped absent. The bench exits
//     nonzero if any stale execution is observed.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "frontend/plan_cache.h"
#include "server/server.h"

namespace stagedb {
namespace {

using server::Database;
using server::DatabaseOptions;
using server::Request;
using server::ServerOptions;
using server::StagedServer;

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::unique_ptr<Database> OpenDb(bool cache_on, int rows, int dims) {
  DatabaseOptions options;
  options.plan_cache = cache_on;
  auto db_or = Database::Open(options);
  if (!db_or.ok()) {
    std::fprintf(stderr, "open: %s\n", db_or.status().ToString().c_str());
    std::exit(1);
  }
  std::unique_ptr<Database> db = std::move(*db_or);
  auto run = [&](const std::string& sql) {
    auto result = db->Execute(sql);
    if (!result.ok()) {
      std::fprintf(stderr, "setup '%s': %s\n", sql.c_str(),
                   result.status().ToString().c_str());
      std::exit(1);
    }
  };
  run("CREATE TABLE bench (a INTEGER, b INTEGER)");
  run("CREATE TABLE dim (k INTEGER, v INTEGER)");
  for (int i = 0; i < rows; ++i) {
    run("INSERT INTO bench VALUES (" + std::to_string(i) + ", " +
        std::to_string(i % dims) + ")");
  }
  for (int i = 0; i < dims; ++i) {
    run("INSERT INTO dim VALUES (" + std::to_string(i) + ", " +
        std::to_string(i * 10) + ")");
  }
  return db;
}

struct MixResult {
  double wall_ms = 0;
  double hit_rate = 0;
  long long optimize_pops = 0;
  long long parse_pops = 0;
  long long errors = 0;
};

/// One statement of the workload: shapes repeat, literals vary.
std::string Shape(int shape, int value, int dims, bool unique_mix, int i) {
  if (unique_mix) {
    // Distinct LIMIT per statement forces a distinct cache key (the LIMIT
    // literal is part of the plan shape and stays in the key).
    return "SELECT a FROM bench WHERE a >= " + std::to_string(value) +
           " LIMIT " + std::to_string(i + 1);
  }
  switch (shape % 4) {
    case 0:
      return "SELECT COUNT(*) FROM bench WHERE a < " + std::to_string(value);
    case 1:
      return "SELECT SUM(a) FROM bench WHERE b = " +
             std::to_string(value % dims);
    case 2:
      return "SELECT COUNT(*) FROM bench JOIN dim ON bench.b = dim.k "
             "WHERE dim.v < " +
             std::to_string(value);
    default:
      return "SELECT a, b FROM bench WHERE a > " + std::to_string(value) +
             " AND b < " + std::to_string(1 + value % dims);
  }
}

MixResult RunMix(bool cache_on, bool unique_mix, int clients, int per_client,
                 int rows, int dims) {
  std::unique_ptr<Database> db = OpenDb(cache_on, rows, dims);
  MixResult out;
  // Snapshot after setup so the hit rate reflects the replayed workload
  // only (the setup INSERTs are themselves repeat-heavy and would inflate
  // it).
  const frontend::PlanCacheStats setup = db->CacheStats();
  const auto start = std::chrono::steady_clock::now();
  {
    StagedServer server(db.get());
    std::vector<std::thread> threads;
    std::atomic<long long> errors{0};
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        Rng rng(1234 + c);
        for (int i = 0; i < per_client; ++i) {
          const int value = static_cast<int>(rng.Uniform(rows));
          const std::string sql =
              Shape(i % 4, value, dims, unique_mix, c * per_client + i);
          if (!server.Submit(sql)->Await().ok()) errors.fetch_add(1);
        }
      });
    }
    for (auto& t : threads) t.join();
    out.errors = errors.load();
    for (const auto& stage : server.runtime().stages()) {
      if (stage->name() == "optimize") {
        out.optimize_pops = stage->packets_processed();
      }
      if (stage->name() == "parse") out.parse_pops = stage->packets_processed();
    }
  }
  out.wall_ms = MsSince(start);
  const frontend::PlanCacheStats end = db->CacheStats();
  const uint64_t lookups = (end.hits - setup.hits) +
                           (end.misses - setup.misses) +
                           (end.invalidations - setup.invalidations);
  out.hit_rate = lookups == 0
                     ? 0.0
                     : static_cast<double>(end.hits - setup.hits) / lookups;
  return out;
}

struct DdlResult {
  long long executions = 0;
  long long stale_executions = 0;
  long long errors = 0;
  unsigned long long invalidations = 0;
  double wall_ms = 0;
};

DdlResult RunDdlInterleaved(int workers, int per_worker, int rows, int dims) {
  std::unique_ptr<Database> db = OpenDb(/*cache_on=*/true, rows, dims);
  DdlResult out;
  auto prepared_or = db->Prepare("SELECT COUNT(*) FROM bench WHERE a < ?");
  if (!prepared_or.ok()) {
    std::fprintf(stderr, "prepare: %s\n",
                 prepared_or.status().ToString().c_str());
    std::exit(1);
  }
  auto prepared = *prepared_or;

  const auto start = std::chrono::steady_clock::now();
  std::atomic<bool> stop{false};
  std::thread ddl([&] {
    int i = 0;
    while (!stop.load()) {
      const std::string name = "side" + std::to_string(i++ % 3);
      (void)db->Execute("CREATE TABLE " + name + " (z INTEGER)");
      (void)db->Execute("DROP TABLE " + name);
      // Breathe between epoch bumps: plenty of invalidations still land,
      // without the DDL loop monopolizing the catalog lock.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  std::atomic<long long> stale{0}, errors{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(99 + w);
      for (int i = 0; i < per_worker; ++i) {
        const int bound = static_cast<int>(rng.Uniform(rows));
        auto result =
            db->ExecutePrepared(*prepared, {catalog::Value::Int(bound)});
        if (!result.ok()) {
          errors.fetch_add(1);
        } else if (result->rows[0][0].int_value() != bound) {
          // `a` holds 0..rows-1 exactly once: COUNT(a < bound) == bound.
          // Any other answer means a plan executed against stale state.
          stale.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  stop.store(true);
  ddl.join();
  out.wall_ms = MsSince(start);
  out.executions = static_cast<long long>(workers) * per_worker;
  out.stale_executions = stale.load();
  out.errors = errors.load();
  out.invalidations = db->CacheStats().invalidations;
  return out;
}

}  // namespace
}  // namespace stagedb

int main(int argc, char** argv) {
  using stagedb::bench::BenchArgs;
  using stagedb::bench::JsonReport;
  const BenchArgs args = BenchArgs::Parse(argc, argv);

  const int rows = args.smoke ? 300 : 2000;
  const int dims = 8;
  const int clients = 4;
  const int per_client = args.smoke ? 150 : 1000;

  const stagedb::MixResult repeat_on =
      stagedb::RunMix(true, false, clients, per_client, rows, dims);
  const stagedb::MixResult repeat_off =
      stagedb::RunMix(false, false, clients, per_client, rows, dims);
  const stagedb::MixResult unique_on =
      stagedb::RunMix(true, true, clients, args.smoke ? 50 : 250, rows, dims);
  const stagedb::DdlResult ddl = stagedb::RunDdlInterleaved(
      3, args.smoke ? 100 : 500, rows, dims);

  const long long failures = repeat_on.errors + repeat_off.errors +
                             unique_on.errors + ddl.errors +
                             ddl.stale_executions;

  if (args.json) {
    JsonReport report("ablation_plan_cache");
    report.Add("smoke", args.smoke);
    report.Add("clients", clients);
    report.Add("statements_per_client", per_client);
    report.Add("repeat_hit_rate", repeat_on.hit_rate);
    report.Add("repeat_wall_ms_cache_on", repeat_on.wall_ms);
    report.Add("repeat_wall_ms_cache_off", repeat_off.wall_ms);
    report.Add("repeat_optimize_pops_cache_on",
               static_cast<int64_t>(repeat_on.optimize_pops));
    report.Add("repeat_optimize_pops_cache_off",
               static_cast<int64_t>(repeat_off.optimize_pops));
    report.Add("repeat_parse_pops", static_cast<int64_t>(repeat_on.parse_pops));
    report.Add("unique_hit_rate", unique_on.hit_rate);
    report.Add("unique_wall_ms", unique_on.wall_ms);
    report.Add("ddl_executions", static_cast<int64_t>(ddl.executions));
    report.Add("ddl_stale_executions",
               static_cast<int64_t>(ddl.stale_executions));
    report.Add("ddl_invalidations", static_cast<int64_t>(ddl.invalidations));
    report.Add("ddl_wall_ms", ddl.wall_ms);
    report.Add("errors", static_cast<int64_t>(failures));
    report.Print();
  } else {
    std::printf("ablation_plan_cache (rows=%d, %d clients x %d stmts)\n",
                rows, clients, per_client);
    std::printf(
        "  repeat-heavy: hit_rate=%.3f wall on/off = %.1f/%.1f ms, "
        "optimize pops on/off = %lld/%lld\n",
        repeat_on.hit_rate, repeat_on.wall_ms, repeat_off.wall_ms,
        repeat_on.optimize_pops, repeat_off.optimize_pops);
    std::printf("  unique mix:   hit_rate=%.3f wall=%.1f ms\n",
                unique_on.hit_rate, unique_on.wall_ms);
    std::printf(
        "  ddl mode:     %lld executions, %lld stale, %llu invalidations "
        "(%.1f ms)\n",
        ddl.executions, ddl.stale_executions, ddl.invalidations, ddl.wall_ms);
  }
  if (failures != 0) {
    std::fprintf(stderr, "FAILURES: %lld (stale=%lld)\n", failures,
                 ddl.stale_executions);
    return 1;
  }
  return 0;
}
