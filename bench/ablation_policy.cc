// Figure 5 on the real engine: the gated scheduling-policy family under
// concurrent client load.
//
// The simulation side reproduces Figure 5 analytically
// (bench/fig5_scheduling_policies.cc over simsched); this ablation runs the
// same policy family — free-run, non-gated, D-gated, T-gated(2) — in the
// *live* staged runtime, against the staggered-arrival concurrent workload
// of ablation_shared_scan: 4 tables x 4 aggregation queries, each wave
// submitted while scans of its table are already in progress, a buffer pool
// sized for ~one table, and a per-I/O disk latency so that scheduling
// decisions cost real wall-clock time.
//
// Every policy must complete the identical workload; the report carries the
// per-stage scheduling telemetry the runtime now exposes (visits, packets
// per visit, wait-time percentiles) so the batching behaviour that
// distinguishes the policies is visible in the artifact, not just the
// bottom-line wall clock.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "engine/staged_engine.h"
#include "optimizer/planner.h"
#include "parser/parser.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/wisconsin.h"

using stagedb::engine::SchedulerPolicy;
using stagedb::engine::StagedEngine;
using stagedb::engine::StagedEngineOptions;
using stagedb::engine::StageRuntime;
using stagedb::catalog::Catalog;
using stagedb::optimizer::PhysicalPlan;

namespace {

struct PolicyCase {
  const char* key;    // JSON key prefix
  const char* label;  // human-readable name
  SchedulerPolicy policy;
  int gate_rounds;
};

struct PolicyResult {
  double wall_ms = 0;
  int64_t completed = 0;
  int64_t errors = 0;
  StageRuntime::StatsSnapshot stats;
};

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Evicts the working set between policies so each starts from the same
/// (cold) pool state.
void ScrubPool(Catalog* catalog, const PhysicalPlan* scrub_plan) {
  StagedEngineOptions opts;
  opts.shared_scans = false;
  StagedEngine engine(catalog, opts);
  (void)engine.Execute(scrub_plan);
}

/// The staggered-arrival concurrent workload of ablation_shared_scan: wave q
/// of every table arrives q*stagger after the first, so later queries find
/// the stages already busy — the regime where the global policy decides
/// which stage's batch gets the CPU.
PolicyResult RunPolicy(Catalog* catalog, const PolicyCase& pc,
                       const std::vector<std::vector<const PhysicalPlan*>>&
                           per_table,
                       std::chrono::microseconds stagger) {
  StagedEngineOptions opts;
  opts.scheduler = pc.policy;
  opts.scheduler_gate_rounds = pc.gate_rounds;
  StagedEngine engine(catalog, opts);
  PolicyResult r;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::shared_ptr<stagedb::engine::StagedQuery>> inflight;
  const size_t waves = per_table.empty() ? 0 : per_table[0].size();
  for (size_t q = 0; q < waves; ++q) {
    for (const auto& plans : per_table) {
      inflight.push_back(engine.Submit(plans[q]));
    }
    if (q + 1 < waves) std::this_thread::sleep_for(stagger);
  }
  for (auto& query : inflight) {
    if (query->Await().ok()) {
      ++r.completed;
    } else {
      ++r.errors;
    }
  }
  r.wall_ms = ElapsedMs(start);
  r.stats = engine.runtime()->Stats();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = stagedb::bench::BenchArgs::Parse(argc, argv);

  const int64_t rows = args.smoke ? 2000 : 8000;
  const size_t pool_pages = args.smoke ? 75 : 300;
  const int64_t disk_latency_us = args.smoke ? 60 : 100;
  const int queries_per_table = 4;

  stagedb::storage::MemDiskManager disk(disk_latency_us);
  stagedb::storage::BufferPool pool(&disk, pool_pages);
  Catalog catalog(&pool);
  const std::vector<std::string> tables = {"wa", "wb", "wc", "wd"};
  for (const auto& t : tables) {
    if (!stagedb::workload::CreateWisconsinTable(&catalog, t, rows).ok()) {
      std::fprintf(stderr, "table build failed\n");
      return 1;
    }
  }
  if (!stagedb::workload::CreateWisconsinTable(&catalog, "scrub",
                                               rows + rows / 2)
           .ok()) {
    std::fprintf(stderr, "table build failed\n");
    return 1;
  }

  stagedb::optimizer::Planner planner(&catalog);
  std::vector<std::unique_ptr<PhysicalPlan>> owned;
  std::vector<std::vector<const PhysicalPlan*>> per_table(tables.size());
  auto plan_query = [&](const std::string& sql) -> const PhysicalPlan* {
    auto stmt = stagedb::parser::ParseStatement(sql);
    if (!stmt.ok()) return nullptr;
    auto plan = planner.Plan(**stmt);
    if (!plan.ok()) return nullptr;
    owned.push_back(std::move(*plan));
    return owned.back().get();
  };
  for (size_t t = 0; t < tables.size(); ++t) {
    for (int q = 0; q < queries_per_table; ++q) {
      const PhysicalPlan* plan = plan_query(
          "SELECT COUNT(*), MIN(unique1) FROM " + tables[t] +
          " WHERE ten = " + std::to_string(q));
      if (plan == nullptr) {
        std::fprintf(stderr, "planning failed\n");
        return 1;
      }
      per_table[t].push_back(plan);
    }
  }
  const PhysicalPlan* scrub_plan = plan_query("SELECT COUNT(*) FROM scrub");
  if (scrub_plan == nullptr) {
    std::fprintf(stderr, "planning failed\n");
    return 1;
  }

  // Calibrate the arrival stagger to the measured cold single-scan time
  // (same rationale as ablation_shared_scan: every wave must arrive while
  // the previous one is still in the stages).
  ScrubPool(&catalog, scrub_plan);
  const auto cal_start = std::chrono::steady_clock::now();
  {
    StagedEngineOptions opts;
    StagedEngine engine(&catalog, opts);
    (void)engine.Execute(per_table[0][0]);
  }
  const double scan_ms = ElapsedMs(cal_start);
  const auto stagger = std::chrono::microseconds(
      std::max<int64_t>(1000, (int64_t)(scan_ms * 1000 * 3) / 2));

  const PolicyCase cases[] = {
      {"free_run", "free-run", SchedulerPolicy::kFreeRun, 2},
      {"non_gated", "non-gated", SchedulerPolicy::kNonGated, 2},
      {"d_gated", "D-gated", SchedulerPolicy::kDGated, 2},
      {"t_gated2", "T-gated(2)", SchedulerPolicy::kTGated, 2},
  };
  const int64_t total_queries =
      (int64_t)tables.size() * queries_per_table;

  std::vector<PolicyResult> results;
  int64_t errors = 0;
  for (const PolicyCase& pc : cases) {
    ScrubPool(&catalog, scrub_plan);
    results.push_back(RunPolicy(&catalog, pc, per_table, stagger));
    errors += results.back().errors;
  }

  if (args.json) {
    stagedb::bench::JsonReport report("ablation_policy");
    report.Add("smoke", args.smoke);
    report.Add("tables", (int64_t)tables.size());
    report.Add("rows_per_table", rows);
    report.Add("pool_pages", (int64_t)pool_pages);
    report.Add("disk_latency_us", disk_latency_us);
    report.Add("queries_per_table", queries_per_table);
    report.Add("stagger_us", (int64_t)stagger.count());
    for (size_t i = 0; i < results.size(); ++i) {
      const PolicyCase& pc = cases[i];
      const PolicyResult& r = results[i];
      const std::string p = pc.key;
      report.Add(p + ".policy", r.stats.policy);
      report.Add(p + ".completed", r.completed);
      report.Add(p + ".errors", r.errors);
      report.Add(p + ".wall_ms", r.wall_ms);
      report.Add(p + ".stage_switches", r.stats.stage_switches);
      for (const auto& s : r.stats.stages) {
        if (s.pops == 0) continue;  // stages the workload never touched
        const std::string sp = p + ".stage." + s.name;
        report.Add(sp + ".pops", s.pops);
        report.Add(sp + ".visits", s.visits);
        report.Add(sp + ".gate_rounds", s.gate_rounds);
        report.Add(sp + ".packets_per_visit", s.PacketsPerVisit());
        report.Add(sp + ".wait_p50_us", s.wait_micros.Percentile(50));
        report.Add(sp + ".wait_p95_us", s.wait_micros.Percentile(95));
        report.Add(sp + ".service_p50_us", s.service_micros.Percentile(50));
      }
    }
    report.Add("errors", errors);
    report.Print();
  } else {
    std::printf("Ablation: Figure-5 policy family on the live engine "
                "(%lld concurrent aggregation\nqueries over %zu tables, "
                "%zu-page pool, %lldus per miss, %lldus stagger)\n\n",
                (long long)total_queries, tables.size(), pool_pages,
                (long long)disk_latency_us, (long long)stagger.count());
    std::printf("%-12s %-10s %-8s %-10s %-14s\n", "policy", "wall ms",
                "done", "switches", "mean pkts/visit");
    for (size_t i = 0; i < results.size(); ++i) {
      const PolicyResult& r = results[i];
      int64_t pops = 0, visits = 0;
      for (const auto& s : r.stats.stages) {
        pops += s.pops;
        visits += s.visits;
      }
      std::printf("%-12s %-10.1f %-8lld %-10lld %-14.1f\n", cases[i].label,
                  r.wall_ms, (long long)r.completed,
                  (long long)r.stats.stage_switches,
                  visits == 0 ? 0.0 : (double)pops / visits);
    }
    for (size_t i = 0; i < results.size(); ++i) {
      std::printf("\n[%s]\n%s", cases[i].label,
                  results[i].stats.ToString().c_str());
    }
    std::printf("\nAll four policies complete the identical staggered "
                "concurrent workload; the gated\nvariants trade queue wait "
                "for per-stage batching (packets per visit), the\n"
                "Figure-5 control knob, now measured on the real runtime.\n");
  }
  return errors == 0 ? 0 : 1;
}
