// Ablation A2: sensitivity of the traditional thread-pool model to the
// preemption quantum (the paper's prototype context-switched on a ~10 ms
// alarm timer; §3.1.2 discusses why preemption at arbitrary points is
// costly). Workload B (long joins) replayed with 20 worker threads.
#include <cstdio>
#include <vector>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "replay/capture.h"
#include "replay/virtual_cpu.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/wisconsin.h"

using namespace stagedb::replay;  // NOLINT

int main() {
  stagedb::storage::MemDiskManager disk;
  stagedb::storage::BufferPool pool(&disk, 16384);
  stagedb::catalog::Catalog catalog(&pool);
  if (!stagedb::workload::CreateWisconsinTable(&catalog, "tenk1", 10000).ok() ||
      !stagedb::workload::CreateWisconsinTable(&catalog, "tenk2", 10000).ok()) {
    return 1;
  }
  stagedb::Rng rng(42);
  CaptureCostModel cost;
  cost.exec_micros_per_tuple = 50.0;
  cost.charge_scan_io = false;
  cost.log_ios = 2;
  std::vector<QueryTrace> distinct;
  for (int i = 0; i < 6; ++i) {
    auto t = CaptureQueryTrace(
        &catalog,
        stagedb::workload::WorkloadBQuery("tenk1", "tenk2", 10000, &rng),
        cost);
    if (!t.ok()) return 1;
    distinct.push_back(std::move(*t));
  }
  std::vector<QueryTrace> jobs;
  for (int i = 0; i < 60; ++i) {
    QueryTrace t = distinct[i % distinct.size()];
    t.id = i;
    jobs.push_back(std::move(t));
  }

  const auto modules = DefaultServerModules();
  std::printf("Ablation A2: preemption quantum vs Workload B throughput "
              "(20 worker threads)\n\n");
  std::printf("%-14s %-16s %-18s %-18s %-14s\n", "quantum (ms)",
              "throughput/s", "state restores", "module loads",
              "overhead %%");
  double base_tps = 0;
  for (double q : {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0}) {
    ReplayConfig cfg;
    cfg.num_threads = 20;
    cfg.quantum_micros = q * 1000;
    cfg.cache_state_capacity = 5;
    ReplayResult r = Replay(modules, jobs, cfg);
    const double overhead =
        100.0 * (r.busy_load_micros + r.busy_restore_micros +
                 r.busy_switch_micros) /
        r.BusyTotal();
    if (base_tps == 0) base_tps = r.throughput_qps;
    std::printf("%-14.0f %-16.3f %-18lld %-18lld %-14.1f\n", q,
                r.throughput_qps, static_cast<long long>(r.state_restores),
                static_cast<long long>(r.module_loads), overhead);
  }
  std::printf("\nShorter quanta preempt mid-operation and reload evicted "
              "working sets on every resume\n(the paper's §3.1.2 problem); "
              "very long quanta recover throughput but hurt fairness.\n");
  return 0;
}
