// Ablation A6 (§5.4, multiple query optimization at run time).
//
// Four submission regimes over the same 16 aggregation queries (4 tables x 4
// queries, buffer pool sized for ~one table):
//
//   seq-interleaved   — one query at a time, round-robin across tables: every
//                       scan evicts the previous table (the uncoordinated
//                       baseline of the seed bench).
//   seq-batched       — one at a time, all queries of a table back-to-back:
//                       the lucky-ordering benefit per-table fscan stages
//                       create even without true sharing.
//   conc-unshared     — queries submitted concurrently with staggered
//                       arrivals, each fscan packet driving a private
//                       iterator from page 0 (shared_scans=false).
//   conc-shared       — same arrival pattern, but packets attach to the
//                       table's elevator cursor mid-scan (shared_scans=true):
//                       N overlapping scans cost ~1 physical pass.
//
// The conc-shared regime must beat conc-unshared on both buffer-pool misses
// and wall clock — that is the run-time data sharing §5.4 promises, not just
// lucky ordering. A per-I/O disk latency makes misses cost real time.
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "engine/staged_engine.h"
#include "optimizer/planner.h"
#include "parser/parser.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/wisconsin.h"

using stagedb::catalog::Catalog;
using stagedb::engine::SharedScanStats;
using stagedb::engine::StagedEngine;
using stagedb::engine::StagedEngineOptions;
using stagedb::optimizer::PhysicalPlan;

namespace {

struct ModeResult {
  int64_t hits = 0;
  int64_t misses = 0;
  double wall_ms = 0;
  int64_t errors = 0;
  double hit_rate() const {
    const int64_t total = hits + misses;
    return total == 0 ? 0.0 : 100.0 * hits / total;
  }
};

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Evicts the working set between modes by scanning a table that is larger
/// than the pool, so every mode starts from the same (cold) pool state.
void ScrubPool(Catalog* catalog, const PhysicalPlan* scrub_plan) {
  StagedEngineOptions opts;
  opts.shared_scans = false;
  StagedEngine engine(catalog, opts);
  (void)engine.Execute(scrub_plan);
}

ModeResult RunSequential(Catalog* catalog, stagedb::storage::BufferPool* pool,
                         const std::vector<const PhysicalPlan*>& order) {
  StagedEngineOptions opts;
  opts.shared_scans = false;
  StagedEngine engine(catalog, opts);
  ModeResult r;
  const int64_t h0 = pool->hits(), m0 = pool->misses();
  const auto start = std::chrono::steady_clock::now();
  for (const auto* plan : order) {
    if (!engine.Execute(plan).ok()) ++r.errors;
  }
  r.wall_ms = ElapsedMs(start);
  r.hits = pool->hits() - h0;
  r.misses = pool->misses() - m0;
  return r;
}

/// Submits the queries in interleaved order with staggered arrival waves
/// (wave q of each table arrives q*stagger after the first), so later
/// queries find a scan of their table already in progress — the §5.4
/// opportunity. The only difference between the two concurrent modes is the
/// shared_scans knob.
ModeResult RunConcurrent(Catalog* catalog, stagedb::storage::BufferPool* pool,
                         const std::vector<std::vector<const PhysicalPlan*>>&
                             per_table,
                         bool shared, std::chrono::microseconds stagger,
                         SharedScanStats* scan_stats) {
  StagedEngineOptions opts;
  opts.shared_scans = shared;
  StagedEngine engine(catalog, opts);
  ModeResult r;
  const int64_t h0 = pool->hits(), m0 = pool->misses();
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::shared_ptr<stagedb::engine::StagedQuery>> inflight;
  const size_t waves = per_table.empty() ? 0 : per_table[0].size();
  for (size_t q = 0; q < waves; ++q) {
    for (const auto& plans : per_table) inflight.push_back(
        engine.Submit(plans[q]));
    if (q + 1 < waves) std::this_thread::sleep_for(stagger);
  }
  for (auto& query : inflight) {
    if (!query->Await().ok()) ++r.errors;
  }
  r.wall_ms = ElapsedMs(start);
  r.hits = pool->hits() - h0;
  r.misses = pool->misses() - m0;
  if (scan_stats != nullptr) *scan_stats = engine.shared_scans()->TotalStats();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = stagedb::bench::BenchArgs::Parse(argc, argv);

  // Buffer pool big enough for ONE table's pages but not all four; a per-I/O
  // latency so that pool misses cost wall-clock time, as §5.4's run-time
  // sharing argument assumes.
  const int64_t rows = args.smoke ? 2000 : 8000;
  const size_t pool_pages = args.smoke ? 75 : 300;
  const int64_t disk_latency_us = args.smoke ? 60 : 100;
  const int queries_per_table = 4;

  stagedb::storage::MemDiskManager disk(disk_latency_us);
  stagedb::storage::BufferPool pool(&disk, pool_pages);
  Catalog catalog(&pool);
  const std::vector<std::string> tables = {"wa", "wb", "wc", "wd"};
  for (const auto& t : tables) {
    if (!stagedb::workload::CreateWisconsinTable(&catalog, t, rows).ok()) {
      std::fprintf(stderr, "table build failed\n");
      return 1;
    }
  }
  // The scrub table is larger than the pool so one scan of it resets the
  // pool contents between modes.
  if (!stagedb::workload::CreateWisconsinTable(&catalog, "scrub",
                                               rows + rows / 2)
           .ok()) {
    std::fprintf(stderr, "table build failed\n");
    return 1;
  }

  stagedb::optimizer::Planner planner(&catalog);
  std::vector<std::unique_ptr<PhysicalPlan>> owned;
  std::vector<std::vector<const PhysicalPlan*>> per_table(tables.size());
  auto plan_query = [&](const std::string& sql) -> const PhysicalPlan* {
    auto stmt = stagedb::parser::ParseStatement(sql);
    if (!stmt.ok()) return nullptr;
    auto plan = planner.Plan(**stmt);
    if (!plan.ok()) return nullptr;
    owned.push_back(std::move(*plan));
    return owned.back().get();
  };
  for (size_t t = 0; t < tables.size(); ++t) {
    for (int q = 0; q < queries_per_table; ++q) {
      const PhysicalPlan* plan = plan_query(
          "SELECT COUNT(*), MIN(unique1) FROM " + tables[t] +
          " WHERE ten = " + std::to_string(q));
      if (plan == nullptr) {
        std::fprintf(stderr, "planning failed\n");
        return 1;
      }
      per_table[t].push_back(plan);
    }
  }
  const PhysicalPlan* scrub_plan = plan_query("SELECT COUNT(*) FROM scrub");
  if (scrub_plan == nullptr) {
    std::fprintf(stderr, "planning failed\n");
    return 1;
  }

  // Interleaved: round-robin across tables (what uncoordinated arrival
  // does). Batched: all queries of one table together (what per-table fscan
  // stages encourage).
  std::vector<const PhysicalPlan*> interleaved, batched;
  for (int q = 0; q < queries_per_table; ++q) {
    for (size_t t = 0; t < tables.size(); ++t) {
      interleaved.push_back(per_table[t][q]);
    }
  }
  for (size_t t = 0; t < tables.size(); ++t) {
    for (int q = 0; q < queries_per_table; ++q) {
      batched.push_back(per_table[t][q]);
    }
  }

  // Calibrate the arrival stagger to the measured cold single-scan time.
  // Under concurrency a query is serialized behind its table-mates at the
  // fscan stage, so one query's wall time is ~Q x the solo scan; staggering
  // waves by 1.5x the solo scan keeps every wave arriving mid-scan while
  // spreading unshared private cursors across the file — too small a stagger
  // lets private cursors convoy page-by-page and be served by the buffer
  // pool alone, hiding the sharing the elevator provides.
  ScrubPool(&catalog, scrub_plan);
  const auto cal_start = std::chrono::steady_clock::now();
  RunSequential(&catalog, &pool, {per_table[0][0]});
  const double scan_ms = ElapsedMs(cal_start);
  const auto stagger = std::chrono::microseconds(
      std::max<int64_t>(1000, (int64_t)(scan_ms * 1000 * 3) / 2));

  ScrubPool(&catalog, scrub_plan);
  const ModeResult seq_inter = RunSequential(&catalog, &pool, interleaved);
  ScrubPool(&catalog, scrub_plan);
  const ModeResult seq_batch = RunSequential(&catalog, &pool, batched);
  ScrubPool(&catalog, scrub_plan);
  const ModeResult conc_unshared = RunConcurrent(
      &catalog, &pool, per_table, /*shared=*/false, stagger, nullptr);
  ScrubPool(&catalog, scrub_plan);
  SharedScanStats shared_stats;
  const ModeResult conc_shared = RunConcurrent(
      &catalog, &pool, per_table, /*shared=*/true, stagger, &shared_stats);

  const int64_t errors = seq_inter.errors + seq_batch.errors +
                         conc_unshared.errors + conc_shared.errors;
  const bool fewer_misses = conc_shared.misses < conc_unshared.misses;
  const bool less_wall = conc_shared.wall_ms < conc_unshared.wall_ms;

  if (args.json) {
    stagedb::bench::JsonReport report("ablation_shared_scan");
    report.Add("smoke", args.smoke);
    report.Add("tables", (int64_t)tables.size());
    report.Add("rows_per_table", rows);
    report.Add("pool_pages", (int64_t)pool_pages);
    report.Add("disk_latency_us", disk_latency_us);
    report.Add("queries_per_table", queries_per_table);
    report.Add("stagger_us", (int64_t)stagger.count());
    report.Add("seq_interleaved.misses", seq_inter.misses);
    report.Add("seq_interleaved.hit_rate", seq_inter.hit_rate());
    report.Add("seq_interleaved.wall_ms", seq_inter.wall_ms);
    report.Add("seq_batched.misses", seq_batch.misses);
    report.Add("seq_batched.hit_rate", seq_batch.hit_rate());
    report.Add("seq_batched.wall_ms", seq_batch.wall_ms);
    report.Add("conc_unshared.misses", conc_unshared.misses);
    report.Add("conc_unshared.hit_rate", conc_unshared.hit_rate());
    report.Add("conc_unshared.wall_ms", conc_unshared.wall_ms);
    report.Add("conc_shared.misses", conc_shared.misses);
    report.Add("conc_shared.hit_rate", conc_shared.hit_rate());
    report.Add("conc_shared.wall_ms", conc_shared.wall_ms);
    report.Add("conc_shared.attaches", shared_stats.attaches);
    report.Add("conc_shared.heap_page_reads", shared_stats.heap_page_reads);
    report.Add("conc_shared.pages_delivered", shared_stats.pages_delivered);
    report.Add("conc_shared.window_hits", shared_stats.window_hits);
    report.Add("conc_shared.deliveries_per_read",
               shared_stats.DeliveriesPerRead());
    report.Add("shared_beats_unshared_misses", fewer_misses);
    report.Add("shared_beats_unshared_wall", less_wall);
    report.Add("errors", errors);
    report.Print();
  } else {
    std::printf("Ablation A6: run-time scan sharing (%d aggregation queries "
                "over %zu tables,\n%zu-page pool, %lldus per miss)\n\n",
                queries_per_table * (int)tables.size(), tables.size(),
                pool_pages, (long long)disk_latency_us);
    std::printf("%-34s %-12s %-12s %-10s %-10s\n", "submission regime",
                "pool hits", "pool misses", "hit rate", "wall ms");
    auto row = [](const char* name, const ModeResult& r) {
      std::printf("%-34s %-12lld %-12lld %-9.1f%% %-10.1f\n", name,
                  (long long)r.hits, (long long)r.misses, r.hit_rate(),
                  r.wall_ms);
    };
    row("seq interleaved across tables", seq_inter);
    row("seq batched per table", seq_batch);
    row("concurrent interleaved, unshared", conc_unshared);
    row("concurrent interleaved, SHARED", conc_shared);
    std::printf("\nElevator stats (shared mode): %lld attaches, %lld heap "
                "page reads, %lld pages\ndelivered (%.2fx sharing), %lld "
                "window hits.\n",
                (long long)shared_stats.attaches,
                (long long)shared_stats.heap_page_reads,
                (long long)shared_stats.pages_delivered,
                shared_stats.DeliveriesPerRead(),
                (long long)shared_stats.window_hits);
    std::printf("\nCooperative scans turn N overlapping scans into ~1 "
                "physical pass: %s misses\n(%lld vs %lld) and %s wall clock "
                "(%.1f vs %.1f ms) than the unshared regime.\n",
                fewer_misses ? "fewer" : "NOT fewer",
                (long long)conc_shared.misses,
                (long long)conc_unshared.misses,
                less_wall ? "less" : "NOT less", conc_shared.wall_ms,
                conc_unshared.wall_ms);
  }
  return errors == 0 ? 0 : 1;
}
