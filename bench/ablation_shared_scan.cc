// Ablation A6 (§5.4, multiple query optimization at run time): queries that
// scan the same table back-to-back reuse each other's pages, while queries
// interleaved across different tables evict each other from a small buffer
// pool. The staged design's per-table fscan stages naturally create the
// batched order.
#include <cstdio>
#include <vector>

#include "engine/staged_engine.h"
#include "optimizer/planner.h"
#include "parser/parser.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/wisconsin.h"

using stagedb::catalog::Catalog;
using stagedb::engine::StagedEngine;

namespace {

struct PoolCounters {
  int64_t hits, misses;
};

PoolCounters RunOrder(Catalog* catalog, stagedb::storage::BufferPool* pool,
                      const std::vector<const stagedb::optimizer::PhysicalPlan*>&
                          order) {
  StagedEngine engine(catalog);
  const int64_t h0 = pool->hits(), m0 = pool->misses();
  for (const auto* plan : order) {
    auto rows = engine.Execute(plan);
    if (!rows.ok()) exit(1);
  }
  return {pool->hits() - h0, pool->misses() - m0};
}

}  // namespace

int main() {
  // Buffer pool big enough for ONE table's pages but not all four.
  stagedb::storage::MemDiskManager disk;
  stagedb::storage::BufferPool pool(&disk, 300);
  Catalog catalog(&pool);
  const std::vector<std::string> tables = {"wa", "wb", "wc", "wd"};
  for (const auto& t : tables) {
    if (!stagedb::workload::CreateWisconsinTable(&catalog, t, 8000).ok()) {
      return 1;
    }
  }
  stagedb::optimizer::Planner planner(&catalog);
  std::vector<std::unique_ptr<stagedb::optimizer::PhysicalPlan>> owned;
  std::vector<const stagedb::optimizer::PhysicalPlan*> per_table[4];
  for (size_t t = 0; t < tables.size(); ++t) {
    for (int q = 0; q < 4; ++q) {
      auto stmt = stagedb::parser::ParseStatement(
          "SELECT COUNT(*), MIN(unique1) FROM " + tables[t] +
          " WHERE ten = " + std::to_string(q));
      if (!stmt.ok()) return 1;
      auto plan = planner.Plan(**stmt);
      if (!plan.ok()) return 1;
      owned.push_back(std::move(*plan));
      per_table[t].push_back(owned.back().get());
    }
  }
  // Interleaved: round-robin across tables (what uncoordinated threads do).
  std::vector<const stagedb::optimizer::PhysicalPlan*> interleaved, batched;
  for (int q = 0; q < 4; ++q) {
    for (size_t t = 0; t < tables.size(); ++t) {
      interleaved.push_back(per_table[t][q]);
    }
  }
  // Batched: all queries of one table together (what per-table fscan stages
  // encourage).
  for (size_t t = 0; t < tables.size(); ++t) {
    for (int q = 0; q < 4; ++q) batched.push_back(per_table[t][q]);
  }

  std::printf("Ablation A6: run-time scan sharing (16 aggregation queries "
              "over 4 tables, 300-page pool)\n\n");
  PoolCounters i = RunOrder(&catalog, &pool, interleaved);
  PoolCounters b = RunOrder(&catalog, &pool, batched);
  const double hit_i = 100.0 * i.hits / (i.hits + i.misses);
  const double hit_b = 100.0 * b.hits / (b.hits + b.misses);
  std::printf("%-32s %-14s %-14s %-10s\n", "submission order", "pool hits",
              "pool misses", "hit rate");
  std::printf("%-32s %-14lld %-14lld %-10.1f%%\n",
              "interleaved across tables", (long long)i.hits,
              (long long)i.misses, hit_i);
  std::printf("%-32s %-14lld %-14lld %-10.1f%%\n",
              "batched per table (staged)", (long long)b.hits,
              (long long)b.misses, hit_b);
  std::printf("\nBatching queries at the same fscan stage turns repeated "
              "scans into buffer hits\n(%.1f%% -> %.1f%%): the run-time "
              "data-sharing opportunity §5.4 describes.\n", hit_i, hit_b);
  return 0;
}
