// Ablation A7 (§5.3, multi-processor systems): "A staged system naturally
// maps one or more stages to a dedicated CPU ... A single query visits
// several CPUs during the different phases of its execution."
//
// On this host the staged engine's free-run mode already is the SMP mode:
// every operator stage has its own threads and the OS spreads them over the
// cores, so a single query's scan, join, and aggregate overlap. The bench
// compares the volcano engine (one thread per query, the "single CPU handles
// a whole query" model) with the staged pipeline, wall clock, on real
// threads.
#include <chrono>
#include <cstdio>
#include <thread>

#include "engine/staged_engine.h"
#include "exec/executor.h"
#include "optimizer/planner.h"
#include "parser/parser.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/wisconsin.h"

using stagedb::catalog::Catalog;
using stagedb::engine::StagedEngine;
using stagedb::engine::StagedEngineOptions;

int main() {
  stagedb::storage::MemDiskManager disk;
  stagedb::storage::BufferPool pool(&disk, 32768);
  Catalog catalog(&pool);
  if (!stagedb::workload::CreateWisconsinTable(&catalog, "tenk1", 30000).ok() ||
      !stagedb::workload::CreateWisconsinTable(&catalog, "tenk2", 30000).ok()) {
    return 1;
  }
  auto stmt = stagedb::parser::ParseStatement(
      "SELECT tenk1.twenty, COUNT(*), SUM(tenk2.unique1) FROM tenk1 "
      "JOIN tenk2 ON tenk1.unique1 = tenk2.unique2 "
      "WHERE tenk1.fiftypercent = 0 GROUP BY tenk1.twenty");
  if (!stmt.ok()) return 1;
  stagedb::optimizer::Planner planner(&catalog);
  auto plan = planner.Plan(**stmt);
  if (!plan.ok()) return 1;

  constexpr int kReps = 5;
  std::printf("Ablation A7: SMP stage placement (%u hardware threads), "
              "join+agg over 30k-row tables\n\n",
              std::thread::hardware_concurrency());

  // Volcano: the whole query on one CPU.
  double volcano_ms;
  {
    stagedb::exec::ExecContext ctx;
    ctx.catalog = &catalog;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kReps; ++i) {
      auto rows = stagedb::exec::ExecutePlan(plan->get(), &ctx);
      if (!rows.ok()) return 1;
    }
    volcano_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count() /
                 kReps;
  }
  // Staged free-run: stages spread across cores, pipeline overlaps.
  double staged_ms;
  {
    StagedEngineOptions opts;
    opts.scheduler = stagedb::engine::SchedulerPolicy::kFreeRun;
    StagedEngine engine(&catalog, opts);
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kReps; ++i) {
      auto rows = engine.Execute(plan->get());
      if (!rows.ok()) return 1;
    }
    staged_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count() /
                kReps;
  }
  std::printf("%-44s %10.1f ms/query\n",
              "volcano (whole query on one thread)", volcano_ms);
  std::printf("%-44s %10.1f ms/query\n",
              "staged free-run (stages across CPUs)", staged_ms);
  std::printf("\nPipeline speedup: %.2fx (bounded by this host's %u cores "
              "and by the plan's blocking operators).\n",
              volcano_ms / staged_ms, std::thread::hardware_concurrency());
  return 0;
}
