// Ablation: MVCC snapshot reads vs table locks (analytics never block DML).
//
// The workload is a pair-integrity invariant: table acct holds two rows per
// pair_id whose v columns are bumped together by a single-statement
//   UPDATE acct SET v = v + 1 WHERE pair_id = <p>
// so any reader with a consistent view must see the two rows equal. Writer
// threads hammer their own pair ranges while analytics threads run
// full-table scans, checking every pair and timing every scan. The sweep is
// writer concurrency {1, 4, 8} x ConcurrencyMode {kTableLock, kSnapshot}:
// under table locks the scan queues behind every writer's exclusive lock;
// under snapshot isolation it reads a registered snapshot and never waits.
//
// Correctness gates (CI fails on a nonzero value, see bench_compare.py):
//   * scan_anomaly_count - torn pairs observed by any concurrent scan
//     (unequal v within a pair, or a pair missing/duplicated rows). Zero in
//     BOTH modes: locks serialize, snapshots isolate.
//   * post_vacuum_mismatches - after the writers drain and VacuumNow()
//     reclaims dead versions, every pair must read back exactly
//     ops_per_writer / pairs_per_writer; anything else means a lost or
//     double-applied update.
//   * execute_errors - statements that failed outright (lock timeouts are
//     configured generously; MVCC writers never conflict across pairs).
//   * snapshot_latency_failures - 1 if at the highest writer tier the
//     snapshot-mode scan p99 is not at least 2x better than the lock-mode
//     p99 (the "analytics never block DML" claim, stated as p99_snapshot
//     <= 0.5 * p99_lock).
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "server/database.h"

namespace stagedb {
namespace {

constexpr int kPairsPerWriter = 8;
constexpr int kReaderThreads = 2;

struct CellResult {
  int64_t scans = 0;
  int64_t updates = 0;
  double scan_p50_us = 0;
  double scan_p99_us = 0;
  double wall_ms = 0;
  int64_t anomalies = 0;
  int64_t post_mismatches = 0;
  int64_t errors = 0;
  int64_t reclaimed = 0;
};

double Percentile(std::vector<double>* v, double p) {
  if (v->empty()) return 0;
  std::sort(v->begin(), v->end());
  const size_t idx = static_cast<size_t>(p * static_cast<double>(v->size()));
  return (*v)[std::min(idx, v->size() - 1)];
}

/// One full-table scan; returns false on an execution error. Adds to
/// `anomalies` for every pair that is torn (rows unequal or not exactly 2).
bool ScanOnce(server::Database* db, int64_t* anomalies) {
  auto result = db->Execute("SELECT pair_id, v FROM acct");
  if (!result.ok()) return false;
  // pair_id -> (row count, first v seen, torn?)
  std::map<int64_t, std::pair<int64_t, int64_t>> pairs;  // count, v
  int64_t torn = 0;
  for (const auto& row : result->rows) {
    const int64_t p = row[0].int_value();
    const int64_t v = row[1].int_value();
    auto [it, fresh] = pairs.emplace(p, std::make_pair(int64_t{1}, v));
    if (!fresh) {
      ++it->second.first;
      if (it->second.second != v) ++torn;
    }
  }
  for (const auto& [p, cv] : pairs) {
    if (cv.first != 2) ++torn;
  }
  *anomalies += torn;
  return true;
}

CellResult RunCell(server::ConcurrencyMode mode, int writers,
                   int ops_per_writer) {
  server::DatabaseOptions opts;
  opts.mode = server::ExecutionMode::kStaged;
  opts.concurrency = mode;
  opts.lock_timeout_micros = 30'000'000;  // contention, not failure
  opts.vacuum_dead_threshold = 64;
  auto db_or = server::Database::Open(opts);
  if (!db_or.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 db_or.status().ToString().c_str());
    std::exit(1);
  }
  auto db = std::move(*db_or);

  CellResult cell;
  const int pairs = writers * kPairsPerWriter;
  {
    auto r = db->Execute("CREATE TABLE acct (pair_id INTEGER, v INTEGER)");
    if (!r.ok()) std::exit(1);
    for (int p = 0; p < pairs; ++p) {
      for (int slot = 0; slot < 2; ++slot) {
        auto ins = db->Execute("INSERT INTO acct VALUES (" +
                               std::to_string(p) + ", 0)");
        if (!ins.ok()) std::exit(1);
      }
    }
  }

  std::atomic<bool> done{false};
  std::atomic<int64_t> errors{0};
  std::vector<int64_t> reader_anomalies(kReaderThreads, 0);
  std::vector<int64_t> reader_scans(kReaderThreads, 0);
  std::vector<std::vector<double>> latencies(kReaderThreads);

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int t = 0; t < writers; ++t) {
    threads.emplace_back([&, t] {
      // Each writer owns its own pair range: contention is reader-vs-writer
      // (the claim under test), not writer-vs-writer retries.
      const int base = t * kPairsPerWriter;
      for (int i = 0; i < ops_per_writer; ++i) {
        const int p = base + i % kPairsPerWriter;
        auto r = db->Execute("UPDATE acct SET v = v + 1 WHERE pair_id = " +
                             std::to_string(p));
        if (!r.ok()) errors.fetch_add(1);
      }
    });
  }
  for (int t = 0; t < kReaderThreads; ++t) {
    threads.emplace_back([&, t] {
      while (true) {
        const bool last = done.load(std::memory_order_acquire);
        const auto start = std::chrono::steady_clock::now();
        if (!ScanOnce(db.get(), &reader_anomalies[t])) {
          errors.fetch_add(1);
        } else {
          const auto end = std::chrono::steady_clock::now();
          latencies[t].push_back(
              std::chrono::duration<double, std::micro>(end - start)
                  .count());
          ++reader_scans[t];
        }
        if (last) break;  // one final scan after the writers drained
      }
    });
  }
  for (int t = 0; t < writers; ++t) threads[t].join();
  done.store(true, std::memory_order_release);
  for (size_t t = writers; t < threads.size(); ++t) threads[t].join();
  const auto wall_end = std::chrono::steady_clock::now();

  cell.updates = static_cast<int64_t>(writers) * ops_per_writer;
  for (int t = 0; t < kReaderThreads; ++t) {
    cell.scans += reader_scans[t];
    cell.anomalies += reader_anomalies[t];
  }
  std::vector<double> all;
  for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  cell.scan_p50_us = Percentile(&all, 0.50);
  cell.scan_p99_us = Percentile(&all, 0.99);
  cell.wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start)
          .count();
  cell.errors = errors.load();

  // Quiesced verification: reclaim every dead version, then require each
  // pair to read back exactly the number of updates its writer applied.
  if (mode == server::ConcurrencyMode::kSnapshot) {
    auto reclaimed = db->VacuumNow();
    if (reclaimed.ok()) cell.reclaimed = *reclaimed;
  }
  const int64_t expected_v = ops_per_writer / kPairsPerWriter;
  auto final_result = db->Execute("SELECT pair_id, v FROM acct");
  if (!final_result.ok()) {
    cell.post_mismatches += pairs;
  } else {
    std::map<int64_t, std::vector<int64_t>> by_pair;
    for (const auto& row : final_result->rows) {
      by_pair[row[0].int_value()].push_back(row[1].int_value());
    }
    for (int p = 0; p < pairs; ++p) {
      const auto it = by_pair.find(p);
      if (it == by_pair.end() || it->second.size() != 2 ||
          it->second[0] != expected_v || it->second[1] != expected_v) {
        ++cell.post_mismatches;
      }
    }
  }
  return cell;
}

}  // namespace
}  // namespace stagedb

int main(int argc, char** argv) {
  using stagedb::bench::BenchArgs;
  using stagedb::bench::JsonReport;
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  // Multiple of kPairsPerWriter so the quiesced per-pair count is exact.
  const int ops = args.smoke ? 96 : 480;

  JsonReport report("ablation_snapshot_reads");
  report.Add("smoke", args.smoke);
  report.Add("ops_per_writer", ops);
  report.Add("pairs_per_writer", stagedb::kPairsPerWriter);
  report.Add("reader_threads", stagedb::kReaderThreads);

  int64_t anomalies = 0, mismatches = 0, errors = 0;
  double lock_top_p99 = 0, snap_top_p99 = 0;
  const std::vector<int> tiers = {1, 4, 8};
  for (int writers : tiers) {
    for (const auto mode : {stagedb::server::ConcurrencyMode::kTableLock,
                            stagedb::server::ConcurrencyMode::kSnapshot}) {
      const bool snap = mode == stagedb::server::ConcurrencyMode::kSnapshot;
      const auto cell = stagedb::RunCell(mode, writers, ops);
      const std::string tag =
          std::string(snap ? "_snap" : "_lock") + "_w" +
          std::to_string(writers);
      report.Add("scan_p50_us" + tag, cell.scan_p50_us);
      report.Add("scan_p99_us" + tag, cell.scan_p99_us);
      report.Add("scans" + tag, cell.scans);
      if (snap) report.Add("versions_reclaimed" + tag, cell.reclaimed);
      if (!args.json) {
        std::printf(
            "mode=%-4s writers=%d updates=%-5lld scans=%-5lld "
            "scan_p50=%.0fus scan_p99=%.0fus anomalies=%lld wall=%.0fms\n",
            snap ? "snap" : "lock", writers,
            static_cast<long long>(cell.updates),
            static_cast<long long>(cell.scans), cell.scan_p50_us,
            cell.scan_p99_us, static_cast<long long>(cell.anomalies),
            cell.wall_ms);
      }
      anomalies += cell.anomalies;
      mismatches += cell.post_mismatches;
      errors += cell.errors;
      if (writers == tiers.back()) {
        (snap ? snap_top_p99 : lock_top_p99) = cell.scan_p99_us;
      }
    }
  }

  // The headline claim: with every writer slot busy, a snapshot scan's p99
  // must beat the lock-mode scan's p99 by at least 2x (it never queues).
  const int snapshot_latency_failures =
      (lock_top_p99 > 0 && snap_top_p99 > 0.5 * lock_top_p99) ? 1 : 0;
  report.Add("scan_anomaly_count", anomalies);
  report.Add("post_vacuum_mismatches", mismatches);
  report.Add("execute_errors", errors);
  report.Add("snapshot_latency_failures", snapshot_latency_failures);
  if (!args.json) {
    std::printf(
        "top tier p99: lock=%.0fus snap=%.0fus -> latency gate %s\n",
        lock_top_p99, snap_top_p99,
        snapshot_latency_failures ? "FAIL" : "ok");
  }
  if (args.json) report.Print();
  return (anomalies != 0 || mismatches != 0 || errors != 0 ||
          snapshot_latency_failures != 0)
             ? 1
             : 0;
}
