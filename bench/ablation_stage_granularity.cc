// Ablation A4 (§4.4 "stage granularity"): fine-grained operator stages (the
// Figure 3 execution engine) versus one coarse execute stage (the monolithic
// end of the trade-off). Run under cohort scheduling, where granularity
// determines how much module affinity the scheduler can exploit, and under
// free-run, where fine granularity buys pipeline parallelism.
#include <chrono>
#include <cstdio>

#include "engine/staged_engine.h"
#include "optimizer/planner.h"
#include "parser/parser.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/wisconsin.h"

using stagedb::catalog::Catalog;
using stagedb::engine::SchedulerPolicy;
using stagedb::engine::StagedEngine;
using stagedb::engine::StagedEngineOptions;

namespace {

double RunBatch(StagedEngine* engine,
                const std::vector<const stagedb::optimizer::PhysicalPlan*>&
                    plans,
                int reps) {
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) {
    for (const auto* plan : plans) {
      auto rows = engine->Execute(plan);
      if (!rows.ok()) exit(1);
    }
  }
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
             .count() /
         reps;
}

}  // namespace

int main() {
  stagedb::storage::MemDiskManager disk;
  stagedb::storage::BufferPool pool(&disk, 16384);
  Catalog catalog(&pool);
  if (!stagedb::workload::CreateWisconsinTable(&catalog, "tenk1", 10000).ok() ||
      !stagedb::workload::CreateWisconsinTable(&catalog, "tenk2", 10000).ok()) {
    return 1;
  }
  stagedb::optimizer::Planner planner(&catalog);
  std::vector<std::unique_ptr<stagedb::optimizer::PhysicalPlan>> owned;
  std::vector<const stagedb::optimizer::PhysicalPlan*> plans;
  for (const std::string& sql :
       stagedb::workload::SampleQueries("tenk1", "tenk2", 10000)) {
    auto stmt = stagedb::parser::ParseStatement(sql);
    if (!stmt.ok()) return 1;
    auto plan = planner.Plan(**stmt);
    if (!plan.ok()) return 1;
    owned.push_back(std::move(*plan));
    plans.push_back(owned.back().get());
  }

  std::printf("Ablation A4: stage granularity (5-query Wisconsin batch, "
              "real staged engine)\n\n");
  std::printf("%-12s %-12s %-12s %-14s %-16s\n", "granularity", "scheduler",
              "time (ms)", "stages", "stage switches");
  for (auto granularity : {StagedEngineOptions::Granularity::kFine,
                           StagedEngineOptions::Granularity::kCoarse}) {
    for (auto policy : {SchedulerPolicy::kFreeRun, SchedulerPolicy::kCohort}) {
      StagedEngineOptions opts;
      opts.granularity = granularity;
      opts.scheduler = policy;
      StagedEngine engine(&catalog, opts);
      const double ms = RunBatch(&engine, plans, 3);
      std::printf("%-12s %-12s %-12.1f %-14zu %-16lld\n",
                  granularity == StagedEngineOptions::Granularity::kFine
                      ? "fine"
                      : "coarse",
                  policy == SchedulerPolicy::kFreeRun ? "free-run" : "cohort",
                  ms, engine.runtime()->stages().size(),
                  static_cast<long long>(engine.runtime()->stage_switches()));
    }
  }
  std::printf("\nFine granularity exposes the operator pipeline (more "
              "stages, packets flow concurrently);\ncoarse granularity "
              "resembles the original monolithic design (§4.4: it \"may fail "
              "to fully\nexploit the underlying memory hierarchy\").\n");
  return 0;
}
