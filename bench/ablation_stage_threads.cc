// Ablation A5 (§4.4a, §5.1): threads per stage and back-pressure depth.
// "Each stage allocates worker threads based on its functionality and the
// I/O frequency, and not on the number of concurrent clients."
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "engine/staged_engine.h"
#include "optimizer/planner.h"
#include "parser/parser.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/wisconsin.h"

using stagedb::catalog::Catalog;
using stagedb::engine::StagedEngine;
using stagedb::engine::StagedEngineOptions;

namespace {

double ConcurrentClients(StagedEngine* engine,
                         const stagedb::optimizer::PhysicalPlan* plan,
                         int clients, int reps) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      for (int i = 0; i < reps; ++i) {
        auto rows = engine->Execute(plan);
        if (!rows.ok()) exit(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  return clients * reps / secs;  // queries per second
}

}  // namespace

int main() {
  stagedb::storage::MemDiskManager disk;
  stagedb::storage::BufferPool pool(&disk, 16384);
  Catalog catalog(&pool);
  if (!stagedb::workload::CreateWisconsinTable(&catalog, "tenk1", 5000).ok() ||
      !stagedb::workload::CreateWisconsinTable(&catalog, "tenk2", 5000).ok()) {
    return 1;
  }
  auto stmt = stagedb::parser::ParseStatement(
      "SELECT tenk1.ten, COUNT(*) FROM tenk1 JOIN tenk2 ON "
      "tenk1.unique1 = tenk2.unique2 GROUP BY tenk1.ten");
  if (!stmt.ok()) return 1;
  stagedb::optimizer::Planner planner(&catalog);
  auto plan = planner.Plan(**stmt);
  if (!plan.ok()) return 1;

  std::printf("Ablation A5: threads per stage and exchange-buffer depth "
              "(4 concurrent clients, join+agg)\n\n");
  std::printf("%-18s %-18s %-14s\n", "threads/stage", "buffer pages",
              "queries/sec");
  for (int threads : {1, 2, 4}) {
    for (size_t buffers : {1, 4, 16}) {
      StagedEngineOptions opts;
      opts.threads_per_stage = threads;
      opts.exchange_capacity_pages = buffers;
      StagedEngine engine(&catalog, opts);
      const double qps = ConcurrentClients(&engine, plan->get(), 4, 4);
      std::printf("%-18d %-18zu %-14.1f\n", threads, buffers, qps);
    }
  }
  std::printf("\nDeeper exchange buffers reduce producer parking; extra "
              "stage threads only help while\nthere are packets to overlap "
              "(this host has %u hardware threads).\n",
              std::thread::hardware_concurrency());
  return 0;
}
