// Shared helpers for the standalone benchmark executables: a tiny flag
// parser (every bench accepts --json and --smoke) and a flat JSON report so
// CI can archive bench results as machine-readable BENCH_*.json artifacts.
#ifndef STAGEDB_BENCH_BENCH_UTIL_H_
#define STAGEDB_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace stagedb::bench {

/// Flags common to every bench binary.
///   --json   emit one machine-readable JSON object on stdout (instead of
///            the human-readable report)
///   --smoke  shrink the workload so CI can run the bench in seconds
struct BenchArgs {
  bool json = false;
  bool smoke = false;

  static BenchArgs Parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0) {
        args.json = true;
      } else if (std::strcmp(argv[i], "--smoke") == 0) {
        args.smoke = true;
      } else {
        std::fprintf(stderr, "unknown flag %s (supported: --json --smoke)\n",
                     argv[i]);
        std::exit(2);
      }
    }
    return args;
  }
};

/// Accumulates flat key -> value metrics and prints them as one JSON object.
/// Keys are emitted in insertion order so reports diff cleanly run-to-run.
/// Every report leads with the bench name and the machine's hardware
/// concurrency: wall-clock numbers are only comparable between runs on the
/// same core count, so tools/bench_compare.py keys its perf tolerances on
/// hw_threads (benches that sweep a DOP add a per-run "dop" field too).
class JsonReport {
 public:
  explicit JsonReport(const std::string& bench_name) {
    Add("bench", bench_name);
    Add("hw_threads",
        static_cast<int64_t>(std::thread::hardware_concurrency()));
  }

  void Add(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, Quote(value));
  }
  void Add(const std::string& key, const char* value) {
    Add(key, std::string(value));
  }
  void Add(const std::string& key, bool value) {
    fields_.emplace_back(key, value ? "true" : "false");
  }
  void Add(const std::string& key, int64_t value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void Add(const std::string& key, int value) {
    Add(key, static_cast<int64_t>(value));
  }
  void Add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    fields_.emplace_back(key, buf);
  }

  /// Writes the object as a single line on stdout.
  void Print() const {
    std::printf("{");
    for (size_t i = 0; i < fields_.size(); ++i) {
      std::printf("%s%s: %s", i == 0 ? "" : ", ",
                  Quote(fields_[i].first).c_str(),
                  fields_[i].second.c_str());
    }
    std::printf("}\n");
  }

 private:
  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        case '\t':
          out += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
    return out;
  }

  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace stagedb::bench

#endif  // STAGEDB_BENCH_BENCH_UTIL_H_
