// Ablation A8: end-to-end wall-clock throughput of the two server
// architectures on real threads — the staged server (Figure 3 lifecycle
// stages) versus the traditional worker-pool server — over a mixed Wisconsin
// workload. This is the live-system smoke complement to the deterministic
// virtual-time reproductions.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "server/server.h"
#include "workload/wisconsin.h"

using namespace stagedb::server;  // NOLINT

namespace {

struct Throughput {
  double qps = 0;
  int failures = 0;
};

// Client threads record failures and return; pass/fail is decided (and any
// process exit happens) in main, after every thread has joined and the
// servers have been torn down.
Throughput MeasureQps(Server* server, const std::vector<std::string>& queries,
                      int clients, int reps) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int i = 0; i < reps; ++i) {
        const std::string& sql = queries[(c + i) % queries.size()];
        if (!server->Submit(sql)->Await().ok()) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  return {clients * reps / secs, failures.load()};
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = stagedb::bench::BenchArgs::Parse(argc, argv);
  const int64_t rows = args.smoke ? 1000 : 4000;
  const int clients = args.smoke ? 3 : 6;
  const int reps = args.smoke ? 4 : 8;

  auto db_or = Database::Open();
  if (!db_or.ok()) return 1;
  Database* db = db_or->get();
  if (!stagedb::workload::CreateWisconsinTable(db->catalog(), "tenk1", rows)
           .ok() ||
      !stagedb::workload::CreateWisconsinTable(db->catalog(), "tenk2", rows)
           .ok()) {
    return 1;
  }
  if (!db->catalog()->CreateIndex("tenk1_u2", "tenk1", "unique2").ok()) {
    return 1;
  }
  const auto queries = stagedb::workload::SampleQueries("tenk1", "tenk2", rows);

  if (!args.json) {
    std::printf("A8: end-to-end server throughput, %d concurrent clients x %d "
                "mixed Wisconsin queries (wall clock, %u cores)\n\n",
                clients, reps, std::thread::hardware_concurrency());
  }

  Throughput staged, threaded;
  {
    ServerOptions opts;
    opts.threads_per_stage = 1;
    StagedServer server(db, opts);
    staged = MeasureQps(&server, queries, clients, reps);
    if (!args.json) std::printf("%s\n", server.StatsReport().c_str());
  }
  {
    ServerOptions opts;
    opts.worker_threads = 8;
    ThreadedServer server(db, opts);
    threaded = MeasureQps(&server, queries, clients, reps);
    if (!args.json) std::printf("%s\n", server.StatsReport().c_str());
  }

  const int failures = staged.failures + threaded.failures;
  if (args.json) {
    stagedb::bench::JsonReport report("engine_throughput");
    report.Add("smoke", args.smoke);
    report.Add("clients", clients);
    report.Add("reps", reps);
    report.Add("rows_per_table", rows);
    report.Add("staged_qps", staged.qps);
    report.Add("threaded_qps", threaded.qps);
    report.Add("failures", (int64_t)failures);
    report.Print();
  } else {
    std::printf("staged server   : %8.1f queries/sec\n", staged.qps);
    std::printf("threaded server : %8.1f queries/sec\n", threaded.qps);
    std::printf("\nBoth architectures execute the identical workload "
                "correctly; on a %u-core host the\nwall-clock difference "
                "is dominated by scheduling noise — the cache-affinity\n"
                "argument is quantified by the deterministic benches "
                "(fig1/fig2/fig5).\n",
                std::thread::hardware_concurrency());
  }
  if (failures > 0) {
    std::fprintf(stderr, "%d queries failed\n", failures);
    return 1;
  }
  return 0;
}
