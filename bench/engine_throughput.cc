// Ablation A8: end-to-end wall-clock throughput of the two server
// architectures on real threads — the staged server (Figure 3 lifecycle
// stages) versus the traditional worker-pool server — over a mixed Wisconsin
// workload. This is the live-system smoke complement to the deterministic
// virtual-time reproductions.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "server/server.h"
#include "workload/wisconsin.h"

using namespace stagedb::server;  // NOLINT

namespace {

double MeasureQps(Server* server, const std::vector<std::string>& queries,
                  int clients, int reps) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (int i = 0; i < reps; ++i) {
        const std::string& sql = queries[(c + i) % queries.size()];
        if (!server->Submit(sql)->Await().ok()) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  if (failures.load() > 0) {
    std::fprintf(stderr, "%d queries failed\n", failures.load());
    exit(1);
  }
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  return clients * reps / secs;
}

}  // namespace

int main() {
  auto db_or = Database::Open();
  if (!db_or.ok()) return 1;
  Database* db = db_or->get();
  if (!stagedb::workload::CreateWisconsinTable(db->catalog(), "tenk1", 4000)
           .ok() ||
      !stagedb::workload::CreateWisconsinTable(db->catalog(), "tenk2", 4000)
           .ok()) {
    return 1;
  }
  if (!db->catalog()->CreateIndex("tenk1_u2", "tenk1", "unique2").ok()) {
    return 1;
  }
  const auto queries = stagedb::workload::SampleQueries("tenk1", "tenk2", 4000);

  constexpr int kClients = 6, kReps = 8;
  std::printf("A8: end-to-end server throughput, %d concurrent clients x %d "
              "mixed Wisconsin queries (wall clock, %u cores)\n\n",
              kClients, kReps, std::thread::hardware_concurrency());

  double staged_qps, threaded_qps;
  {
    ServerOptions opts;
    opts.threads_per_stage = 1;
    StagedServer server(db, opts);
    staged_qps = MeasureQps(&server, queries, kClients, kReps);
    std::printf("%s\n", server.StatsReport().c_str());
  }
  {
    ServerOptions opts;
    opts.worker_threads = 8;
    ThreadedServer server(db, opts);
    threaded_qps = MeasureQps(&server, queries, kClients, kReps);
    std::printf("%s\n", server.StatsReport().c_str());
  }
  std::printf("staged server   : %8.1f queries/sec\n", staged_qps);
  std::printf("threaded server : %8.1f queries/sec\n", threaded_qps);
  std::printf("\nBoth architectures execute the identical workload "
              "correctly; on a %u-core host the\nwall-clock difference is "
              "dominated by scheduling noise — the cache-affinity argument\n"
              "is quantified by the deterministic benches (fig1/fig2/fig5).\n",
              std::thread::hardware_concurrency());
  return 0;
}
