// Microbenchmark for the exchange-edge queue swap: the mutex-guarded
// ExchangeBuffer vs the lock-free SpscRingBuffer, in isolation from the rest
// of the engine. Three shapes:
//
//   * streaming   — a producer thread pushes a fixed item count through the
//     buffer while a consumer drains it, in batches of 1 and of 64 rows
//     (the batched-ABI shape). This is the shape every exchange edge in the
//     engine actually has, so the per-item cost derived from the b1 run is
//     the headline gate: `spsc_speedup_stream_b1` is "the ring beats the
//     mutex" number the checked-in baseline records.
//   * uncontended — one thread alternates push/pop on one buffer: the queue
//     machinery alone, no second thread. Informative but NOT the headline;
//     a single-core uncontended glibc mutex is ~4 plain locked ops and can
//     edge out the ring's two XCHG-fenced index publishes when nothing ever
//     contends — the ring's win is cross-thread hand-off, which streaming
//     measures.
//   * pingpong    — two threads bounce one batch over a request/reply buffer
//     pair: the classic latency shape. Reported in nanos per hop and left
//     out of the perf gate on purpose: a 2-thread yield-spin round trip on a
//     shared CI runner swings far beyond any useful tolerance.
//
// Every pop checksums the tuple payloads; `spsc_vs_mutex_divergence` counts
// configurations where the two implementations did not deliver the identical
// item count + checksum for the identical workload. It must be 0 and is a
// hard (tolerance-free) CI gate via tools/bench_compare.py.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "catalog/tuple.h"
#include "engine/exchange.h"

namespace stagedb {
namespace {

using catalog::Tuple;
using catalog::Value;
using engine::ExchangeBuffer;
using engine::RowBatch;
using engine::SpscRingBuffer;

constexpr size_t kCapacityPages = 8;

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::unique_ptr<ExchangeBuffer> MakeBuffer(bool spsc) {
  if (spsc) return std::make_unique<SpscRingBuffer>(kCapacityPages);
  return std::make_unique<ExchangeBuffer>(kCapacityPages);
}

RowBatch MakeBatch(int64_t start, int rows) {
  RowBatch b;
  b.reserve(rows);
  for (int i = 0; i < rows; ++i) {
    b.push_back({Value::Int(start + i), Value::Int((start + i) * 31)});
  }
  return b;
}

uint64_t BatchChecksum(const RowBatch& b) {
  uint64_t sum = 0;
  for (const Tuple& t : b.tuples) {
    for (const Value& v : t) {
      sum += static_cast<uint64_t>(v.int_value()) * 2654435761u + 1;
    }
  }
  return sum;
}

struct RunResult {
  double ms = 0;
  uint64_t items = 0;
  uint64_t checksum = 0;
};

/// One thread alternating push/pop: per-item queue machinery cost. The
/// payload batch is recycled (pop hands the buffer back to the next push) so
/// the loop measures the queue, not the allocator.
RunResult RunUncontended(bool spsc, int64_t iters) {
  auto buf = MakeBuffer(spsc);
  RunResult r;
  RowBatch in = MakeBatch(0, 1);
  RowBatch out;
  bool eof = false;
  const double t0 = NowMs();
  for (int64_t i = 0; i < iters; ++i) {
    if (buf->TryPush(&in) != ExchangeBuffer::PushResult::kOk) break;
    if (!buf->TryPop(&out, &eof)) break;
    r.checksum += BatchChecksum(out);
    r.items += out.size();
    in = std::move(out);
  }
  r.ms = NowMs() - t0;
  return r;
}

/// Producer thread pushes `total_items` in batches of `batch_rows`; the
/// calling thread drains. Wall time covers first push to last pop.
RunResult RunStreaming(bool spsc, int64_t total_items, int batch_rows) {
  auto buf = MakeBuffer(spsc);
  RunResult r;
  const double t0 = NowMs();
  std::thread producer([&] {
    RowBatch b;
    for (int64_t sent = 0; sent < total_items;) {
      const int rows = static_cast<int>(
          std::min<int64_t>(batch_rows, total_items - sent));
      b = MakeBatch(sent, rows);
      while (buf->TryPush(&b) == ExchangeBuffer::PushResult::kFull) {
        std::this_thread::yield();
      }
      sent += rows;
    }
    buf->MarkEof();
  });
  RowBatch out;
  bool eof = false;
  while (true) {
    if (buf->TryPop(&out, &eof)) {
      r.checksum += BatchChecksum(out);
      r.items += out.size();
    } else if (eof) {
      break;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  r.ms = NowMs() - t0;
  return r;
}

/// Two threads bounce one batch over a request/reply pair of buffers.
RunResult RunPingpong(bool spsc, int64_t round_trips, int batch_rows) {
  auto request = MakeBuffer(spsc);
  auto reply = MakeBuffer(spsc);
  RunResult r;
  std::thread echoer([&] {
    RowBatch b;
    bool eof = false;
    while (true) {
      if (request->TryPop(&b, &eof)) {
        while (reply->TryPush(&b) == ExchangeBuffer::PushResult::kFull) {
          std::this_thread::yield();
        }
      } else if (eof) {
        reply->MarkEof();
        return;
      } else {
        std::this_thread::yield();
      }
    }
  });
  const double t0 = NowMs();
  RowBatch b;
  bool eof = false;
  for (int64_t i = 0; i < round_trips; ++i) {
    b = MakeBatch(i, batch_rows);
    while (request->TryPush(&b) == ExchangeBuffer::PushResult::kFull) {
      std::this_thread::yield();
    }
    while (!reply->TryPop(&b, &eof)) std::this_thread::yield();
    r.checksum += BatchChecksum(b);
    r.items += b.size();
  }
  r.ms = NowMs() - t0;
  request->MarkEof();
  echoer.join();
  return r;
}

/// Best-of-N wall time (checksum/items must agree across reps).
template <typename Fn>
RunResult BestOf(int reps, Fn fn) {
  RunResult best;
  for (int i = 0; i < reps; ++i) {
    RunResult r = fn();
    if (i == 0 || r.ms < best.ms) best = r;
  }
  return best;
}

}  // namespace
}  // namespace stagedb

int main(int argc, char** argv) {
  using namespace stagedb;
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);

  const int reps = 3;
  const int64_t uncontended_iters = args.smoke ? 20000 : 400000;
  const int64_t stream_items = args.smoke ? 100000 : 2000000;
  const int64_t round_trips = args.smoke ? 2000 : 50000;

  bench::JsonReport report("exchange_pingpong");
  report.Add("smoke", args.smoke);
  report.Add("capacity_pages", static_cast<int64_t>(kCapacityPages));
  report.Add("uncontended_iters", uncontended_iters);
  report.Add("stream_items", stream_items);
  report.Add("pingpong_round_trips", round_trips);

  int64_t divergence = 0;

  // --- streaming: producer/consumer hand-off, batch sizes 1 and 64. The
  // b1 per-item micros are the headline per-item cost the CI gate records.
  double mutex_stream_us = 0;
  double spsc_stream_us = 0;
  for (const int batch_rows : {1, 64}) {
    const RunResult ms_ = BestOf(reps, [&] {
      return RunStreaming(false, stream_items, batch_rows);
    });
    const RunResult ss = BestOf(reps, [&] {
      return RunStreaming(true, stream_items, batch_rows);
    });
    if (ms_.items != ss.items || ms_.checksum != ss.checksum) ++divergence;
    const std::string suffix = "_b" + std::to_string(batch_rows);
    report.Add("mutex_stream" + suffix + "_items_per_sec",
               ms_.items * 1000.0 / ms_.ms);
    report.Add("spsc_stream" + suffix + "_items_per_sec",
               ss.items * 1000.0 / ss.ms);
    if (batch_rows == 1) {
      mutex_stream_us = ms_.ms * 1000.0 / static_cast<double>(ms_.items);
      spsc_stream_us = ss.ms * 1000.0 / static_cast<double>(ss.items);
      report.Add("mutex_stream_b1_micros_per_item", mutex_stream_us);
      report.Add("spsc_stream_b1_micros_per_item", spsc_stream_us);
      report.Add("spsc_speedup_stream_b1", mutex_stream_us / spsc_stream_us);
    }
  }

  // --- uncontended: single-thread queue machinery cost (informational) ---
  const RunResult mu = BestOf(reps, [&] {
    return RunUncontended(false, uncontended_iters);
  });
  const RunResult su = BestOf(reps, [&] {
    return RunUncontended(true, uncontended_iters);
  });
  if (mu.items != su.items || mu.checksum != su.checksum) ++divergence;
  const double mutex_item_us = mu.ms * 1000.0 / static_cast<double>(mu.items);
  const double spsc_item_us = su.ms * 1000.0 / static_cast<double>(su.items);
  report.Add("mutex_uncontended_micros_per_item", mutex_item_us);
  report.Add("spsc_uncontended_micros_per_item", spsc_item_us);

  // --- pingpong: latency shape; informational (nanos, not gated) --------
  const RunResult mp = BestOf(reps, [&] {
    return RunPingpong(false, round_trips, 1);
  });
  const RunResult sp = BestOf(reps, [&] {
    return RunPingpong(true, round_trips, 1);
  });
  if (mp.items != sp.items || mp.checksum != sp.checksum) ++divergence;
  // Two hops (request + reply) per round trip.
  report.Add("mutex_pingpong_hop_nanos",
             mp.ms * 1e6 / static_cast<double>(2 * round_trips));
  report.Add("spsc_pingpong_hop_nanos",
             sp.ms * 1e6 / static_cast<double>(2 * round_trips));

  report.Add("spsc_vs_mutex_divergence", divergence);
  if (args.json) {
    report.Print();
  } else {
    std::printf("exchange_pingpong: stream b1 mutex %.3f us/item, spsc %.3f "
                "us/item (%.2fx); uncontended mutex %.3f spsc %.3f; "
                "divergence %lld\n",
                mutex_stream_us, spsc_stream_us,
                mutex_stream_us / spsc_stream_us, mutex_item_us, spsc_item_us,
                static_cast<long long>(divergence));
  }
  return divergence == 0 ? 0 : 1;
}
