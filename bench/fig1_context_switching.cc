// Reproduces Figure 1 of "A Case for Staged Database Systems" (CIDR 2003):
// the hypothetical execution sequence of four concurrent queries (two being
// optimized, two being parsed) on a single-CPU server under time-sharing
// thread-based concurrency — and, for contrast, the same four queries under
// staged cohort scheduling.
//
// The bench prints the execution timeline (context switches, query-state
// reloads, module working-set loads, useful execution) and the CPU time
// breakdown. The paper's figure is qualitative; the quantities here come
// from the module cost model of replay/trace.cc.
#include <cstdio>
#include <vector>

#include "replay/trace.h"
#include "replay/virtual_cpu.h"

using namespace stagedb::replay;  // NOLINT

namespace {

std::vector<QueryTrace> FourQueries() {
  // Q1: OPTIMIZE, Q2: PARSE, Q3: OPTIMIZE, Q4: PARSE — as in Figure 1.
  // No I/O takes place (paper: "The example assumes that no I/O takes
  // place"). Demands chosen so each module invocation spans several quanta.
  std::vector<QueryTrace> jobs(4);
  jobs[0].id = 1;
  jobs[0].segments = {{kOptimize, 25000, 0}};
  jobs[1].id = 2;
  jobs[1].segments = {{kParse, 20000, 0}};
  jobs[2].id = 3;
  jobs[2].segments = {{kOptimize, 25000, 0}};
  jobs[3].id = 4;
  jobs[3].segments = {{kParse, 20000, 0}};
  return jobs;
}

void PrintBreakdown(const char* title, const ReplayResult& r) {
  const double total = r.BusyTotal() + r.idle_micros;
  std::printf("%s\n", title);
  std::printf("  makespan            %8.2f ms\n", r.makespan_micros / 1000);
  std::printf("  execute             %8.2f ms (%.1f%%)\n",
              r.busy_exec_micros / 1000, 100 * r.busy_exec_micros / total);
  std::printf("  load module sets    %8.2f ms (%.1f%%)  [%lld loads]\n",
              r.busy_load_micros / 1000, 100 * r.busy_load_micros / total,
              static_cast<long long>(r.module_loads));
  std::printf("  load query state    %8.2f ms (%.1f%%)  [%lld restores]\n",
              r.busy_restore_micros / 1000,
              100 * r.busy_restore_micros / total,
              static_cast<long long>(r.state_restores));
  std::printf("  context switches    %8.2f ms (%.1f%%)  [%lld switches]\n\n",
              r.busy_switch_micros / 1000, 100 * r.busy_switch_micros / total,
              static_cast<long long>(r.context_switches));
}

}  // namespace

int main() {
  const auto modules = DefaultServerModules();
  const auto jobs = FourQueries();

  std::printf("Figure 1: uncontrolled context-switching can lead to poor "
              "performance\n");
  std::printf("Four queries (Q1:optimize, Q2:parse, Q3:optimize, Q4:parse), "
              "one CPU, no I/O, 10 ms quantum\n\n");

  ReplayConfig threaded;
  threaded.num_threads = 4;  // thread-per-query, as in the figure
  threaded.quantum_micros = 10000;
  threaded.cache_module_capacity = 1;
  threaded.cache_state_capacity = 1;
  threaded.record_timeline = true;
  ReplayResult rt = Replay(modules, jobs, threaded);

  std::printf("--- time-sharing thread-based concurrency model "
              "(paper Figure 1) ---\n");
  std::printf("%s\n", RenderTimeline(rt.timeline, modules, 48).c_str());
  PrintBreakdown("CPU time breakdown (threaded):", rt);

  ReplayConfig staged;
  staged.staged = true;
  staged.cache_module_capacity = 1;
  staged.cache_state_capacity = 1;
  staged.record_timeline = true;
  ReplayResult rs = Replay(modules, jobs, staged);

  std::printf("--- staged cohort scheduling of the same queries "
              "(section 4 design) ---\n");
  std::printf("%s\n", RenderTimeline(rs.timeline, modules, 48).c_str());
  PrintBreakdown("CPU time breakdown (staged):", rs);

  std::printf("Makespan improvement from staging: %.1f%%  "
              "(loads: %lld -> %lld, restores: %lld -> %lld)\n",
              100.0 * (rt.makespan_micros - rs.makespan_micros) /
                  rt.makespan_micros,
              static_cast<long long>(rt.module_loads),
              static_cast<long long>(rs.module_loads),
              static_cast<long long>(rt.state_restores),
              static_cast<long long>(rs.state_restores));
  return 0;
}
