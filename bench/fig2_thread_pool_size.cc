// Reproduces Figure 2 of "A Case for Staged Database Systems" (CIDR 2003):
// execution-engine throughput as a function of the worker thread-pool size,
// as a percentage of each workload's maximum attainable throughput.
//
//   Workload A — short selection/aggregation queries over a Wisconsin table
//                that almost always incur disk I/O (paper: 40-80 ms).
//   Workload B — long join queries over memory-resident tables (paper:
//                up to 2-3 s; only log I/O).
//
// Setup mirrors §3.1.1: queries arrive already parsed and optimized into the
// execution engine's input queue; a pool of K threads picks clients from the
// queue and works on each until it finishes. Work amounts are captured from
// real executions of this repository's engine; timing is replayed under
// virtual time with the paper's 10 ms preemption quantum and a module
// working-set cache model (see DESIGN.md, substitution table).
//
// Expected shape (paper): Workload A rises and stays at peak for pools of
// ~20 or more threads; Workload B peaks with a handful of threads and then
// severely degrades as longer queries interfere with each other.
#include <cstdio>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "replay/capture.h"
#include "replay/virtual_cpu.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/wisconsin.h"

using stagedb::Rng;
using stagedb::catalog::Catalog;
using stagedb::replay::CaptureCostModel;
using stagedb::replay::CaptureQueryTrace;
using stagedb::replay::DefaultServerModules;
using stagedb::replay::QueryTrace;
using stagedb::replay::Replay;
using stagedb::replay::ReplayConfig;
using stagedb::replay::ReplayResult;

namespace {

std::vector<QueryTrace> MakeJobs(const std::vector<QueryTrace>& distinct,
                                 int n) {
  std::vector<QueryTrace> jobs;
  jobs.reserve(n);
  for (int i = 0; i < n; ++i) {
    QueryTrace t = distinct[i % distinct.size()];
    t.id = i;
    jobs.push_back(std::move(t));
  }
  return jobs;
}

}  // namespace

int main(int argc, char** argv) {
  int jobs_a = 400, jobs_b = 80;
  if (argc > 1) {
    jobs_a = std::stoi(argv[1]);
    jobs_b = std::max(20, jobs_a / 5);
  }

  // Real database: Wisconsin tables + index for the Workload A selections.
  stagedb::storage::MemDiskManager disk;
  stagedb::storage::BufferPool pool(&disk, 16384);
  Catalog catalog(&pool);
  auto t1 = stagedb::workload::CreateWisconsinTable(&catalog, "tenk1", 10000);
  auto t2 = stagedb::workload::CreateWisconsinTable(&catalog, "tenk2", 10000);
  if (!t1.ok() || !t2.ok()) {
    std::fprintf(stderr, "table setup failed\n");
    return 1;
  }
  if (!catalog.CreateIndex("tenk1_u2", "tenk1", "unique2").ok()) return 1;

  // Capture distinct query traces from real executions.
  Rng rng(42);
  CaptureCostModel cost_a;
  cost_a.exec_micros_per_tuple = 15.0;
  cost_a.rows_per_io_page = 25;
  cost_a.charge_scan_io = true;
  std::vector<QueryTrace> distinct_a;
  for (int i = 0; i < 12; ++i) {
    auto t = CaptureQueryTrace(
        &catalog, stagedb::workload::WorkloadAQuery("tenk1", 10000, &rng),
        cost_a);
    if (!t.ok()) {
      std::fprintf(stderr, "capture A failed: %s\n",
                   t.status().ToString().c_str());
      return 1;
    }
    distinct_a.push_back(std::move(*t));
  }
  CaptureCostModel cost_b;
  cost_b.exec_micros_per_tuple = 50.0;
  cost_b.charge_scan_io = false;  // memory-resident tables
  cost_b.log_ios = 2;             // logging only
  std::vector<QueryTrace> distinct_b;
  for (int i = 0; i < 8; ++i) {
    auto t = CaptureQueryTrace(
        &catalog,
        stagedb::workload::WorkloadBQuery("tenk1", "tenk2", 10000, &rng),
        cost_b);
    if (!t.ok()) {
      std::fprintf(stderr, "capture B failed: %s\n",
                   t.status().ToString().c_str());
      return 1;
    }
    distinct_b.push_back(std::move(*t));
  }

  double mean_a = 0, mean_b = 0;
  for (const auto& t : distinct_a) {
    mean_a += (t.TotalCpuMicros() + t.TotalIos() * 10000.0) / distinct_a.size();
  }
  for (const auto& t : distinct_b) {
    mean_b += t.TotalCpuMicros() / distinct_b.size();
  }

  std::printf("Figure 2: throughput vs thread pool size (%% of max "
              "attainable per workload)\n");
  std::printf("Workload A: 1%%-range selections/aggregations with disk I/O "
              "(mean demand %.0f ms incl. I/O)\n", mean_a / 1000.0);
  std::printf("Workload B: join queries on memory-resident tables "
              "(mean CPU demand %.0f ms)\n", mean_b / 1000.0);
  std::printf("Quantum 10 ms, I/O %d ms, module cache capacity 1, private "
              "working sets resident: 5\n\n", 10);

  const std::vector<int> pool_sizes = {1, 2,  3,  5,  8,  12, 16,
                                       20, 30, 50, 75, 100, 150, 200};
  const auto jobs_for_a = MakeJobs(distinct_a, jobs_a);
  const auto jobs_for_b = MakeJobs(distinct_b, jobs_b);
  const auto modules = DefaultServerModules();

  struct Row {
    int threads;
    double tps_a, tps_b;
  };
  std::vector<Row> rows;
  double max_a = 0, max_b = 0;
  for (int k : pool_sizes) {
    ReplayConfig cfg;
    cfg.num_threads = k;
    cfg.quantum_micros = 10000;
    cfg.io_latency_micros = 10000;
    cfg.cache_module_capacity = 1;
    cfg.cache_state_capacity = 5;
    ReplayResult a = Replay(modules, jobs_for_a, cfg);
    ReplayResult b = Replay(modules, jobs_for_b, cfg);
    rows.push_back({k, a.throughput_qps, b.throughput_qps});
    max_a = std::max(max_a, a.throughput_qps);
    max_b = std::max(max_b, b.throughput_qps);
  }

  std::printf("%-10s %-22s %-22s\n", "threads",
              "Workload A (% of max)", "Workload B (% of max)");
  int a_knee = 0, b_knee = 0;
  for (const Row& r : rows) {
    std::printf("%-10d %-22.1f %-22.1f\n", r.threads, 100.0 * r.tps_a / max_a,
                100.0 * r.tps_b / max_b);
    if (a_knee == 0 && r.tps_a >= 0.98 * max_a) a_knee = r.threads;
    if (r.tps_b >= 0.95 * max_b) b_knee = r.threads;
  }
  std::printf("\nE7 (paper section 3.1.1): there is no single pool size that "
              "fits both workloads.\n");
  std::printf("   Workload A reaches its peak around %d threads and stays "
              "there for larger pools;\n", a_knee);
  std::printf("   Workload B holds its peak only up to ~%d threads and "
              "degrades beyond that\n", b_knee);
  std::printf("   (paper: A constant for >= 20 threads; B severely degrades "
              "with more than 5 threads).\n");
  return 0;
}
