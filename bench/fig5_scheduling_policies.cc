// Reproduces Figure 5 of "A Case for Staged Database Systems" (CIDR 2003):
// mean query response time at 95% system load for PS, FCFS and the staged
// policies (non-gated, D-gated, T-gated(2)), as the fraction of execution
// time spent fetching common data+code (l) varies from 0% to 60%.
//
// Also reports experiment E6: the paper's claim that a 7% per-module
// improvement (the §3.1.3 parsing experiment) translates into a >40% mean
// response time improvement at high load.
#include <cstdio>
#include <string>
#include <vector>

#include "simsched/production_line.h"

using stagedb::simsched::Metrics;
using stagedb::simsched::Policy;
using stagedb::simsched::ProductionLine;
using stagedb::simsched::ProductionLineConfig;

namespace {

Metrics RunOne(Policy policy, double load_fraction, double utilization,
               int64_t num_jobs) {
  ProductionLineConfig c;
  c.num_modules = 5;
  c.mean_total_demand_micros = 100000.0;  // 100 ms as in the paper
  c.utilization = utilization;
  c.load_fraction = load_fraction;
  c.num_jobs = num_jobs;
  c.seed = 42;
  c.policy.policy = policy;
  c.policy.gate_rounds = 2;  // T-gated(2)
  return ProductionLine(c).Run();
}

}  // namespace

int main(int argc, char** argv) {
  int64_t num_jobs = 150000;
  if (argc > 1) num_jobs = std::stoll(argv[1]);

  const std::vector<Policy> policies = {
      Policy::kTGated, Policy::kDGated, Policy::kNonGated, Policy::kFcfs,
      Policy::kProcessorSharing};
  const std::vector<double> load_fractions = {0.0,  0.02, 0.05, 0.10, 0.20,
                                              0.30, 0.40, 0.50, 0.60};

  std::printf("Figure 5: mean response time (secs) vs %% of execution time "
              "spent fetching common data+code\n");
  std::printf("System load 95%%, 5 modules, mean query demand m+l = 100 ms, "
              "%lld queries per point, seed 42\n\n",
              static_cast<long long>(num_jobs));
  std::printf("%-12s", "l (%)");
  for (double l : load_fractions) std::printf("%8.0f", l * 100);
  std::printf("\n");

  double staged_at_7 = 0.0, ps_at_7 = 0.0;
  for (Policy p : policies) {
    std::printf("%-12s", stagedb::simsched::PolicyName(p));
    for (double l : load_fractions) {
      Metrics m = RunOne(p, l, 0.95, num_jobs);
      std::printf("%8.3f", m.mean_response_micros / 1e6);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  // E6: the §3.1.3 experiment measured a 7% improvement in a query's parse
  // time when it reused the parser's common data and code. In the model this
  // corresponds to l = 7% of execution time across modules with similar
  // overlap. The paper: "even such a modest average improvement across all
  // server modules results into more than 40% overall response time
  // improvement ... at high system load".
  {
    Metrics staged = RunOne(Policy::kTGated, 0.07, 0.95, num_jobs);
    Metrics ps = RunOne(Policy::kProcessorSharing, 0.07, 0.95, num_jobs);
    staged_at_7 = staged.mean_response_micros;
    ps_at_7 = ps.mean_response_micros;
    const double improvement = 100.0 * (1.0 - staged_at_7 / ps_at_7);
    std::printf("\nE6 (paper section 4.2): at l = 7%% and 95%% load, "
                "T-gated(2) mean response = %.3f s vs PS = %.3f s\n",
                staged_at_7 / 1e6, ps_at_7 / 1e6);
    std::printf("   -> overall response time improvement = %.1f%% "
                "(paper claims > 40%%)\n", improvement);
  }

  std::printf("\nPaper-reported shape (Figure 5): PS flat at ~2 s; FCFS well "
              "below PS; staged policies\n"
              "overtake both beyond l of about 2%% and improve as l grows "
              "(up to ~2x faster than PS).\n");
  return 0;
}
