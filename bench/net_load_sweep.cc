// Networked load sweep + chaos harness for the staged TCP front-end.
//
// Open-loop (arrivals do not wait for completions) Poisson load over several
// connections, swept from light load past saturation, against either a
// forked in-process server (default) or an externally started one
// (--connect host:port, the CI net leg). Reports goodput and latency
// percentiles per offered load, plus hard-fail correctness counters:
//
//   shed_errors   — responses with unexpected error codes (a shed must be a
//                   prompt ResourceExhausted/Aborted ERROR, nothing else)
//   stale_results — responses arriving with no outstanding request
//   hang_failures — accepted requests with no response within the timeout
//   crash_failures        — server process died (fork mode) or the final
//                           health check failed (external mode)
//   overload_goodput_failures — goodput at 2x saturation fell below 80% of
//                               peak (overload must shed, not collapse)
//
// Chaos modes (always on): slow-loris connections, mid-query disconnects,
// and a burst storm with connect/close churn — the server must stay
// responsive through all of them.
//
// Flags: --json --smoke --seconds N --connect host:port (BenchArgs would
// reject the extra flags, so parsing is local).
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/histogram.h"
#include "net/client.h"
#include "net/net_server.h"
#include "server/database.h"

using stagedb::Histogram;
using stagedb::Status;
using stagedb::StatusCode;
using stagedb::catalog::Value;
using stagedb::net::Client;

namespace {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr int64_t kResponseTimeoutMs = 10'000;

struct Args {
  bool json = false;
  bool smoke = false;
  double seconds = 0;  // per sweep point; 0 = mode default
  std::string host = "127.0.0.1";
  int port = 0;
  bool external = false;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      args.json = true;
    } else if (arg == "--smoke") {
      args.smoke = true;
    } else if (arg == "--seconds" && i + 1 < argc) {
      args.seconds = std::atof(argv[++i]);
    } else if (arg == "--connect" && i + 1 < argc) {
      std::string hp = argv[++i];
      size_t colon = hp.rfind(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "--connect wants host:port, got %s\n",
                     hp.c_str());
        std::exit(2);
      }
      args.host = hp.substr(0, colon);
      args.port = std::atoi(hp.c_str() + colon + 1);
      args.external = true;
    } else {
      std::fprintf(stderr,
                   "unknown flag %s (supported: --json --smoke --seconds N "
                   "--connect host:port)\n",
                   arg.c_str());
      std::exit(2);
    }
  }
  return args;
}

/// Forked server child: its own Database + NetServer, reporting the chosen
/// port over a pipe, draining on SIGTERM. fork() happens before this process
/// spawns any thread, so the child starts clean.
class ForkedServer {
 public:
  bool Start() {
    int pipefd[2];
    if (pipe(pipefd) != 0) return false;
    pid_ = fork();
    if (pid_ < 0) return false;
    if (pid_ == 0) {
      close(pipefd[0]);
      ChildMain(pipefd[1]);  // never returns
    }
    close(pipefd[1]);
    int port = 0;
    ssize_t n = read(pipefd[0], &port, sizeof(port));
    close(pipefd[0]);
    if (n != sizeof(port) || port <= 0) return false;
    port_ = port;
    return true;
  }

  int port() const { return port_; }

  bool Crashed() {
    if (pid_ <= 0) return false;
    int status = 0;
    return waitpid(pid_, &status, WNOHANG) == pid_;
  }

  /// SIGTERM, bounded wait; any abnormal exit counts as a crash.
  bool StopClean() {
    if (pid_ <= 0) return true;
    kill(pid_, SIGTERM);
    for (int i = 0; i < 100; ++i) {
      int status = 0;
      pid_t r = waitpid(pid_, &status, WNOHANG);
      if (r == pid_) {
        pid_ = -1;
        return WIFEXITED(status) && WEXITSTATUS(status) == 0;
      }
      usleep(100 * 1000);
    }
    kill(pid_, SIGKILL);
    waitpid(pid_, nullptr, 0);
    pid_ = -1;
    return false;  // had to be killed: drain hung
  }

 private:
  [[noreturn]] static void ChildMain(int port_pipe) {
    sigset_t sigs;
    sigemptyset(&sigs);
    sigaddset(&sigs, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &sigs, nullptr);
    signal(SIGPIPE, SIG_IGN);

    stagedb::server::DatabaseOptions db_options;
    db_options.mode = stagedb::server::ExecutionMode::kStaged;
    auto db = stagedb::server::Database::Open(db_options);
    if (!db.ok()) _exit(3);
    stagedb::net::NetServerOptions options;
    options.port = 0;
    options.io_workers = 2;
    options.idle_timeout_ms = 30'000;
    auto srv = stagedb::net::NetServer::Start(db->get(), options);
    if (!srv.ok()) _exit(3);
    int port = (*srv)->port();
    if (write(port_pipe, &port, sizeof(port)) != sizeof(port)) _exit(3);
    close(port_pipe);
    int sig = 0;
    sigwait(&sigs, &sig);
    (*srv)->Stop(2000);
    _exit(0);
  }

  pid_t pid_ = -1;
  int port_ = 0;
};

struct Counters {
  std::atomic<int64_t> sent{0};
  std::atomic<int64_t> ok{0};
  std::atomic<int64_t> shed{0};         // prompt ResourceExhausted/Aborted
  std::atomic<int64_t> shed_errors{0};  // unexpected error codes
  std::atomic<int64_t> stale{0};
  std::atomic<int64_t> hangs{0};
};

struct SweepPoint {
  double offered_qps = 0;
  double goodput_qps = 0;
  double p50_micros = 0;
  double p99_micros = 0;
  double p999_micros = 0;
};

bool IsShedCode(StatusCode code) {
  return code == StatusCode::kResourceExhausted || code == StatusCode::kAborted;
}

/// One open-loop connection: a sender pacing Poisson arrivals and a receiver
/// matching FIFO responses back to send timestamps.
void RunConnection(const Args& args, double rate_qps, double seconds,
                   uint32_t seed, Counters* counters, Histogram* latencies,
                   std::mutex* hist_mu) {
  auto client = Client::Connect(args.host, args.port, kResponseTimeoutMs);
  if (!client.ok()) {
    counters->hangs.fetch_add(1);
    return;
  }
  Client* c = client->get();
  auto prep = c->Prepare("SELECT COUNT(*) FROM nt WHERE val < ?");

  std::mutex mu;
  std::deque<int64_t> outstanding;  // send micros, FIFO
  std::atomic<bool> sender_done{false};

  std::thread receiver([&] {
    Histogram local;
    while (true) {
      bool empty;
      {
        std::lock_guard<std::mutex> lock(mu);
        empty = outstanding.empty();
      }
      if (empty) {
        if (sender_done.load()) break;
        usleep(200);
        continue;
      }
      auto resp = c->ReadResponse(kResponseTimeoutMs);
      int64_t sent_at;
      {
        std::lock_guard<std::mutex> lock(mu);
        if (outstanding.empty()) {
          counters->stale.fetch_add(1);
          continue;
        }
        sent_at = outstanding.front();
        outstanding.pop_front();
      }
      if (resp.ok()) {
        counters->ok.fetch_add(1);
        local.Record(static_cast<double>(NowMicros() - sent_at));
      } else if (IsShedCode(resp.status().code())) {
        counters->shed.fetch_add(1);
        // A shed must be prompt — a queue-then-reject after seconds would
        // show up as tail latency on errors; treat >1s sheds as failures.
        if (NowMicros() - sent_at > 1'000'000)
          counters->shed_errors.fetch_add(1);
      } else if (resp.status().code() == StatusCode::kTimedOut) {
        counters->hangs.fetch_add(1);
      } else {
        counters->shed_errors.fetch_add(1);
      }
    }
    std::lock_guard<std::mutex> lock(*hist_mu);
    latencies->Merge(local);
  });

  std::mt19937 rng(seed);
  std::exponential_distribution<double> interarrival(rate_qps);
  int64_t next_micros = NowMicros();
  const int64_t end_micros = NowMicros() + static_cast<int64_t>(seconds * 1e6);
  int64_t i = 0;
  while (NowMicros() < end_micros) {
    next_micros += static_cast<int64_t>(interarrival(rng) * 1e6);
    int64_t now = NowMicros();
    if (next_micros > now) usleep(static_cast<useconds_t>(next_micros - now));
    // Alternate ad-hoc QUERY with the prepared EXECUTE fast path.
    Status st;
    int64_t sent_at = NowMicros();
    if (prep.ok() && (i & 1)) {
      st = c->SendExecute(prep->stmt_id, {Value::Int(500)});
    } else {
      st = c->SendQuery("SELECT COUNT(*) FROM nt WHERE val < 500");
    }
    ++i;
    if (!st.ok()) break;  // connection torn down (e.g. server shed it)
    counters->sent.fetch_add(1);
    std::lock_guard<std::mutex> lock(mu);
    outstanding.push_back(sent_at);
  }
  sender_done.store(true);
  receiver.join();
}

SweepPoint RunOpenLoop(const Args& args, double offered_qps, double seconds,
                       int conns, Counters* counters) {
  Histogram latencies;
  std::mutex hist_mu;
  int64_t ok_before = counters->ok.load();
  std::vector<std::thread> threads;
  for (int i = 0; i < conns; ++i) {
    threads.emplace_back(RunConnection, std::cref(args), offered_qps / conns,
                         seconds, 1000 + 17 * i, counters, &latencies,
                         &hist_mu);
  }
  const int64_t start = NowMicros();
  for (auto& t : threads) t.join();
  const double wall_secs = (NowMicros() - start) / 1e6;
  SweepPoint point;
  point.offered_qps = offered_qps;
  point.goodput_qps = (counters->ok.load() - ok_before) / wall_secs;
  point.p50_micros = latencies.Percentile(50);
  point.p99_micros = latencies.Percentile(99);
  point.p999_micros = latencies.Percentile(99.9);
  return point;
}

// ---------------------------------------------------------------------------
// Chaos modes
// ---------------------------------------------------------------------------

bool ControlQueryOk(const Args& args) {
  auto control = Client::Connect(args.host, args.port, kResponseTimeoutMs);
  if (!control.ok()) return false;
  auto result = (*control)->Query("SELECT COUNT(*) FROM nt");
  return result.ok();
}

/// Half-open connections trickling partial frames, plus writers that never
/// read: the server must keep answering everyone else.
int64_t ChaosSlowLoris(const Args& args) {
  std::vector<std::unique_ptr<Client>> lorises;
  for (int i = 0; i < 4; ++i) {
    auto c = Client::Connect(args.host, args.port, kResponseTimeoutMs);
    if (!c.ok()) continue;
    // 3 bytes of a frame header promising a large frame that never comes.
    if (!(*c)->SendRaw(std::string("\xff\x00\x00", 3)).ok()) continue;
    lorises.push_back(std::move(*c));
  }
  std::vector<std::unique_ptr<Client>> mutes;
  for (int i = 0; i < 2; ++i) {
    auto c = Client::Connect(args.host, args.port, kResponseTimeoutMs);
    if (!c.ok()) continue;
    for (int q = 0; q < 8; ++q) {
      // Never reads the results; the server may close the socket (overflow
      // guard), at which point further sends legitimately fail.
      if (!(*c)->SendQuery("SELECT COUNT(*) FROM nt").ok()) break;
    }
    mutes.push_back(std::move(*c));
  }
  return ControlQueryOk(args) ? 0 : 1;
}

/// Clients vanishing mid-query: results completing after the disconnect must
/// be dropped, never delivered anywhere, and never wedge the server.
int64_t ChaosMidQueryDisconnect(const Args& args) {
  for (int i = 0; i < 8; ++i) {
    auto c = Client::Connect(args.host, args.port, kResponseTimeoutMs);
    if (!c.ok()) return 1;
    if (!(*c)->SendQuery("SELECT grp, COUNT(*) FROM nt GROUP BY grp").ok())
      return 1;
    (*c)->CloseNow();
  }
  return ControlQueryOk(args) ? 0 : 1;
}

/// A thundering herd of pipelined connections plus connect/close churn.
/// Every request must resolve within the timeout — completed or promptly
/// shed, nothing lost.
void ChaosBurstStorm(const Args& args, Counters* counters) {
  constexpr int kConns = 32;
  constexpr int kQueriesPerConn = 20;
  std::vector<std::thread> threads;
  for (int t = 0; t < kConns; ++t) {
    threads.emplace_back([&args, counters] {
      auto c = Client::Connect(args.host, args.port, kResponseTimeoutMs);
      if (!c.ok()) return;  // accept-level shed is fine under a storm
      int sent = 0;
      for (int q = 0; q < kQueriesPerConn; ++q) {
        if ((*c)->SendQuery("SELECT COUNT(*) FROM nt WHERE val < 250").ok())
          ++sent;
      }
      for (int q = 0; q < sent; ++q) {
        auto resp = (*c)->ReadResponse(kResponseTimeoutMs);
        if (resp.ok()) {
          counters->ok.fetch_add(1);
        } else if (IsShedCode(resp.status().code())) {
          counters->shed.fetch_add(1);
        } else if (resp.status().code() == StatusCode::kTimedOut) {
          counters->hangs.fetch_add(1);
        } else if (resp.status().code() == StatusCode::kIOError) {
          // Server closed a connection it shed at accept; remaining
          // responses of this socket are gone with it, not hung.
          counters->shed.fetch_add(sent - q);
          break;
        } else {
          counters->shed_errors.fetch_add(1);
        }
      }
    });
  }
  // Connect/close churn while the storm runs.
  for (int i = 0; i < 16; ++i) {
    auto c = Client::Connect(args.host, args.port, kResponseTimeoutMs);
    if (c.ok()) (*c)->CloseNow();
  }
  for (auto& t : threads) t.join();
}

}  // namespace

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  signal(SIGPIPE, SIG_IGN);

  ForkedServer forked;
  if (!args.external) {
    if (!forked.Start()) {
      std::fprintf(stderr, "failed to fork server\n");
      return 1;
    }
    args.port = forked.port();
  }

  int64_t crash_failures = 0;
  Counters counters;

  // Seed the table over the wire.
  {
    auto c = Client::Connect(args.host, args.port, kResponseTimeoutMs);
    if (!c.ok()) {
      std::fprintf(stderr, "cannot connect to %s:%d: %s\n", args.host.c_str(),
                   args.port, c.status().ToString().c_str());
      return 1;
    }
    const int rows = args.smoke ? 128 : 1024;
    if (!(*c)->Query("CREATE TABLE nt (id INTEGER, grp INTEGER, val INTEGER)")
             .ok()) {
      std::fprintf(stderr, "seed failed (table exists? use a fresh server)\n");
      return 1;
    }
    for (int base = 0; base < rows; base += 32) {
      std::string sql = "INSERT INTO nt VALUES ";
      for (int r = base; r < base + 32 && r < rows; ++r) {
        if (r != base) sql += ", ";
        char buf[64];
        std::snprintf(buf, sizeof(buf), "(%d, %d, %d)", r, r % 7,
                      (r * 37) % 1000);
        sql += buf;
      }
      if (!(*c)->Query(sql).ok()) {
        std::fprintf(stderr, "seed insert failed\n");
        return 1;
      }
    }
  }

  // Closed-loop calibration: an estimate of saturation throughput.
  const double calib_secs = args.smoke ? 0.4 : 1.5;
  double peak_closed_qps;
  {
    constexpr int kCalibConns = 4;
    std::atomic<int64_t> done{0};
    std::vector<std::thread> threads;
    std::atomic<bool> stop{false};
    for (int i = 0; i < kCalibConns; ++i) {
      threads.emplace_back([&] {
        auto c = Client::Connect(args.host, args.port, kResponseTimeoutMs);
        if (!c.ok()) return;
        while (!stop.load()) {
          if ((*c)->Query("SELECT COUNT(*) FROM nt WHERE val < 500").ok())
            done.fetch_add(1);
        }
      });
    }
    const int64_t start = NowMicros();
    usleep(static_cast<useconds_t>(calib_secs * 1e6));
    stop.store(true);
    for (auto& t : threads) t.join();
    peak_closed_qps = done.load() / ((NowMicros() - start) / 1e6);
    if (peak_closed_qps < 1) peak_closed_qps = 1;
  }

  // Open-loop sweep past saturation.
  const double point_secs = args.seconds > 0 ? args.seconds
                            : args.smoke    ? 0.8
                                            : 3.0;
  const int conns = 8;
  const std::vector<double> fractions = {0.25, 0.5, 1.0, 2.0};
  std::vector<SweepPoint> points;
  for (double f : fractions) {
    points.push_back(RunOpenLoop(args, f * peak_closed_qps, point_secs, conns,
                                 &counters));
    if (!args.external && forked.Crashed()) ++crash_failures;
  }

  // Chaos.
  counters.hangs.fetch_add(ChaosSlowLoris(args));
  counters.hangs.fetch_add(ChaosMidQueryDisconnect(args));
  ChaosBurstStorm(args, &counters);
  if (!ControlQueryOk(args)) ++crash_failures;
  if (!args.external && forked.Crashed()) ++crash_failures;

  // Shutdown: fork mode ends with the SIGTERM drain path.
  if (!args.external && !forked.StopClean()) ++crash_failures;

  double goodput_peak = 0;
  for (const auto& p : points) goodput_peak = std::max(goodput_peak,
                                                       p.goodput_qps);
  const SweepPoint& at_1x = points[2];
  const SweepPoint& at_2x = points[3];
  const int64_t overload_goodput_failures =
      at_2x.goodput_qps < 0.8 * goodput_peak ? 1 : 0;

  stagedb::bench::JsonReport report("net_load_sweep");
  report.Add("conns", conns);
  report.Add("point_seconds", point_secs);
  report.Add("calibrated_peak_qps", peak_closed_qps);
  report.Add("goodput_peak_qps", goodput_peak);
  report.Add("goodput_2x_qps", at_2x.goodput_qps);
  report.Add("p50_micros_1x", at_1x.p50_micros);
  report.Add("p99_micros_1x", at_1x.p99_micros);
  report.Add("p999_micros_1x", at_1x.p999_micros);
  report.Add("p99_micros_2x", at_2x.p99_micros);
  report.Add("sent_total", counters.sent.load());
  report.Add("ok_total", counters.ok.load());
  report.Add("shed_count", counters.shed.load());
  report.Add("shed_errors", counters.shed_errors.load());
  report.Add("stale_results", counters.stale.load());
  report.Add("hang_failures", counters.hangs.load());
  report.Add("crash_failures", crash_failures);
  report.Add("overload_goodput_failures", overload_goodput_failures);

  if (args.json) {
    report.Print();
  } else {
    std::printf("net_load_sweep: calibrated peak %.0f qps\n", peak_closed_qps);
    std::printf("%10s %10s %10s %10s %10s\n", "offered", "goodput", "p50us",
                "p99us", "p999us");
    for (const auto& p : points) {
      std::printf("%10.0f %10.0f %10.0f %10.0f %10.0f\n", p.offered_qps,
                  p.goodput_qps, p.p50_micros, p.p99_micros, p.p999_micros);
    }
    std::printf(
        "sent=%lld ok=%lld shed=%lld shed_errors=%lld stale=%lld "
        "hangs=%lld crashes=%lld overload_failures=%lld\n",
        static_cast<long long>(counters.sent.load()),
        static_cast<long long>(counters.ok.load()),
        static_cast<long long>(counters.shed.load()),
        static_cast<long long>(counters.shed_errors.load()),
        static_cast<long long>(counters.stale.load()),
        static_cast<long long>(counters.hangs.load()),
        static_cast<long long>(crash_failures),
        static_cast<long long>(overload_goodput_failures));
  }

  const bool failed = counters.shed_errors.load() > 0 ||
                      counters.stale.load() > 0 || counters.hangs.load() > 0 ||
                      crash_failures > 0 || overload_goodput_failures > 0;
  return failed ? 1 : 0;
}
