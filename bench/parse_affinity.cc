// Reproduces the §3.1.3 experiment of "A Case for Staged Database Systems":
// the time for a second, similar selection query to pass through the parser
// under two schedules:
//   (a) after the first query finishes parsing, the CPU works on different,
//       unrelated operations (optimize, scan a table) before parsing Q2;
//   (b) Q2 starts parsing immediately after Q1 is parsed.
// The paper measured Q2's parse time improving by 7% in scenario (b) because
// it finds the parser's code and data structures already in the cache.
//
// Here the parse work is performed for real (lexer + parser + symbol-table
// interning over a catalog); the cache effect is charged by the simcache
// model, whose parser-module load share is calibrated to the paper's 7%.
#include <cstdio>
#include <string>

#include "catalog/catalog.h"
#include "parser/parser.h"
#include "replay/trace.h"
#include "simcache/cache_model.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/wisconsin.h"

using stagedb::catalog::Catalog;
using stagedb::simcache::CacheCharge;
using stagedb::simcache::CacheModel;

namespace {

// Parse cost model: real token work converted to microseconds (same constant
// as replay/capture.h; calibrated so the parser's common working-set load is
// ~7% of a short query's parse time, the paper's measured value).
double ParseCpuMicros(Catalog* catalog, const std::string& sql) {
  auto stmt = stagedb::parser::ParseStatement(sql, catalog->symbols());
  if (!stmt.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 stmt.status().ToString().c_str());
    exit(1);
  }
  return 125.0 * sql.size();
}

}  // namespace

int main() {
  stagedb::storage::MemDiskManager disk;
  stagedb::storage::BufferPool pool(&disk, 4096);
  Catalog catalog(&pool);
  auto t = stagedb::workload::CreateWisconsinTable(&catalog, "tenk1", 2000);
  if (!t.ok()) return 1;

  const std::string q1 =
      "SELECT unique1, stringu1 FROM tenk1 WHERE unique2 >= 100 AND "
      "unique2 < 200";
  const std::string q2 =
      "SELECT unique1, stringu1 FROM tenk1 WHERE unique2 >= 500 AND "
      "unique2 < 600";

  const auto modules = stagedb::replay::DefaultServerModules();
  const double parse_cpu_q2 = ParseCpuMicros(&catalog, q2);

  // Scenario (a): parse Q1, run unrelated modules, then parse Q2.
  double time_a;
  {
    CacheModel cache(&modules, /*capacity=*/1, /*state_capacity=*/1);
    ParseCpuMicros(&catalog, q1);
    cache.BeginExecution(stagedb::replay::kParse, 1);
    // Unrelated operations evict the parser's working set.
    cache.BeginExecution(stagedb::replay::kOptimize, 1);
    cache.BeginExecution(stagedb::replay::kFscan, 1);
    CacheCharge c = cache.BeginExecution(stagedb::replay::kParse, 2);
    time_a = parse_cpu_q2 + c.module_load_micros + c.state_restore_micros;
  }

  // Scenario (b): Q2 parses immediately after Q1.
  double time_b;
  {
    CacheModel cache(&modules, 1, 1);
    ParseCpuMicros(&catalog, q1);
    cache.BeginExecution(stagedb::replay::kParse, 1);
    CacheCharge c = cache.BeginExecution(stagedb::replay::kParse, 2);
    time_b = parse_cpu_q2 + c.module_load_micros + c.state_restore_micros;
  }

  const double improvement = 100.0 * (time_a - time_b) / time_a;
  std::printf("Section 3.1.3 experiment: parsing time of the second of two "
              "similar selection queries\n\n");
  std::printf("  scenario (a) CPU ran optimize+scan in between : %.0f us\n",
              time_a);
  std::printf("  scenario (b) parsed back-to-back              : %.0f us\n",
              time_b);
  std::printf("  improvement                                   : %.1f%%   "
              "(paper: 7%%)\n\n", improvement);
  std::printf("The difference is the parser's common working set (%lld us "
              "module load) that scenario (b)\nfinds already in the cache. "
              "Symbol-table statistics from the real parses: %lld lookups, "
              "%lld hits.\n",
              static_cast<long long>(
                  modules.Get(stagedb::replay::kParse).common_load_micros),
              static_cast<long long>(catalog.symbols()->lookups()),
              static_cast<long long>(catalog.symbols()->hits()));
  return 0;
}
