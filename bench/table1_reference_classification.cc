// Reproduces Table 1 of "A Case for Staged Database Systems" (CIDR 2003):
// the classification of data and code references in a database server into
// PRIVATE (exclusive to one query), SHARED (accessible by any query, but
// different queries touch different parts), and COMMON (touched by the
// majority of queries).
//
// The paper's table is a qualitative taxonomy; this bench backs it with
// measured reference counts from running a mixed query batch through the
// staged engine: buffer-pool page accesses (shared tables/indices), symbol
// table and catalog lookups (common), per-query packet/backpack traffic
// (private), and stage code invocations (shared/common code).
#include <cstdio>
#include <vector>

#include "engine/staged_engine.h"
#include "exec/executor.h"
#include "optimizer/planner.h"
#include "parser/parser.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/wisconsin.h"

using stagedb::catalog::Catalog;
using stagedb::engine::StagedEngine;

int main() {
  stagedb::storage::MemDiskManager disk;
  stagedb::storage::BufferPool pool(&disk, 8192);
  Catalog catalog(&pool);
  auto t1 = stagedb::workload::CreateWisconsinTable(&catalog, "tenk1", 5000);
  auto t2 = stagedb::workload::CreateWisconsinTable(&catalog, "tenk2", 5000);
  if (!t1.ok() || !t2.ok()) return 1;
  if (!catalog.CreateIndex("tenk1_u2", "tenk1", "unique2").ok()) return 1;

  const int64_t pool_accesses_before = pool.hits() + pool.misses();
  const int64_t symbol_lookups_before = catalog.symbols()->lookups();

  StagedEngine engine(&catalog);
  const auto queries = stagedb::workload::SampleQueries("tenk1", "tenk2", 5000);

  int64_t private_tuples = 0;  // intermediate results carried in packets
  int64_t plans = 0;           // query execution plans (private state)
  int64_t result_rows = 0;
  for (const std::string& sql : queries) {
    auto stmt = stagedb::parser::ParseStatement(sql, catalog.symbols());
    if (!stmt.ok()) return 1;
    stagedb::optimizer::Planner planner(&catalog);
    auto plan = planner.Plan(**stmt);
    if (!plan.ok()) return 1;
    ++plans;
    // Execute once through the volcano engine with tracing to count the
    // per-query intermediate tuples (private data), then through the staged
    // engine (whose stages expose the shared/common code counters).
    stagedb::exec::OperatorTrace trace;
    stagedb::exec::ExecContext ctx;
    ctx.catalog = &catalog;
    ctx.trace = &trace;
    auto rows = stagedb::exec::ExecutePlan(plan->get(), &ctx);
    if (!rows.ok()) return 1;
    for (const auto& entry : trace.entries()) {
      private_tuples += entry.tuples_out;
    }
    auto staged_rows = engine.Execute(plan->get());
    if (!staged_rows.ok()) return 1;
    result_rows += static_cast<int64_t>(staged_rows->size());
  }

  const int64_t shared_page_refs =
      pool.hits() + pool.misses() - pool_accesses_before;
  const int64_t common_symbol_refs =
      catalog.symbols()->lookups() - symbol_lookups_before;
  int64_t stage_invocations = 0;
  std::printf("Table 1: data and code references across all queries "
              "(measured over %zu queries)\n\n", queries.size());
  std::printf("%-14s %-44s %-30s\n", "classification", "data", "code");
  std::printf("%-14s %-44s %-30s\n", "--------------", "----", "----");
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "plans/backpacks: %lld, intermediate tuples: %lld",
                static_cast<long long>(plans),
                static_cast<long long>(private_tuples));
  std::printf("%-14s %-44s %-30s\n", "PRIVATE", buf, "(none)");
  std::snprintf(buf, sizeof(buf), "table+index page refs: %lld",
                static_cast<long long>(shared_page_refs));
  for (const auto& stage : engine.runtime()->stages()) {
    stage_invocations +=
        stage->packets_processed() + stage->packets_yielded() +
        stage->packets_blocked();
  }
  char code_buf[128];
  std::snprintf(code_buf, sizeof(code_buf),
                "operator stage invocations: %lld",
                static_cast<long long>(stage_invocations));
  std::printf("%-14s %-44s %-30s\n", "SHARED", buf, code_buf);
  std::snprintf(buf, sizeof(buf), "catalog/symbol-table lookups: %lld",
                static_cast<long long>(common_symbol_refs));
  std::printf("%-14s %-44s %-30s\n", "COMMON", buf,
              "parser/optimizer/server code");
  std::printf("\nPaper's Table 1 (qualitative):\n");
  std::printf("  PRIVATE data  : query execution plan, client state, "
              "intermediate results; no private code\n");
  std::printf("  SHARED data   : tables, indices; operator-specific code "
              "(e.g. nested-loop vs sort-merge join)\n");
  std::printf("  COMMON data   : catalog, symbol table; rest of DBMS code\n");
  std::printf("\n(%lld result rows returned across the batch)\n",
              static_cast<long long>(result_rows));
  return 0;
}
