// Affinity-scheduling demo: the §4.2 scheduling trade-off in miniature.
// Simulates the production-line staged server at increasing load and shows
// how cohort scheduling amortizes the module loading time that the
// processor-sharing baseline pays on every query.
#include <cstdio>

#include "simsched/production_line.h"

using namespace stagedb::simsched;  // NOLINT

int main() {
  std::printf("The scheduling trade-off (paper section 4.2): batching "
              "queries inside a module\nsaves cache reloads but delays "
              "batch-mates. 5 modules, 100 ms queries, l = 30%%.\n\n");
  std::printf("%-8s %-12s %-14s %-16s %-18s\n", "load", "policy",
              "response (s)", "batch size", "load time share");
  for (double rho : {0.5, 0.9, 0.95}) {
    for (Policy p :
         {Policy::kProcessorSharing, Policy::kFcfs, Policy::kTGated}) {
      ProductionLineConfig c;
      c.utilization = rho;
      c.load_fraction = 0.30;
      c.num_jobs = 60000;
      c.policy.policy = p;
      Metrics m = ProductionLine(c).Run();
      std::printf("%-8.2f %-12s %-14.3f %-16.2f %-17.1f%%\n", rho,
                  PolicyName(p), m.mean_response_micros / 1e6,
                  m.mean_batch_size, 100 * m.load_fraction);
    }
    std::printf("\n");
  }
  std::printf("T-gated cohorts grow with load; the measured load-time share "
              "drops as the first query\nin each batch pays for all of them "
              "— PS pays the full 30%% at every load.\n");
  return 0;
}
