// Quickstart: open an embedded StagedDB database, create a table, insert
// rows, and run queries — including through the staged execution engine.
//
// Build & run:
//   cmake -B build -S . && cmake --build build -j
//   ./build/examples/quickstart
#include <cstdio>
#include <cstdlib>
#include <string>

#include "server/database.h"

using stagedb::server::Database;
using stagedb::server::DatabaseOptions;
using stagedb::server::ExecutionMode;
using stagedb::server::QueryResult;

// This program doubles as the ctest `smoke` gate, so every statement exits
// loudly on failure to keep the failure mode visible in CI logs.
static QueryResult ExecuteOrDie(Database& db, const char* sql) {
  auto r = db.Execute(sql);
  if (!r.ok()) {
    std::fprintf(stderr, "'%s' failed: %s\n", sql,
                 r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).value();
}

int main() {
  // 1. Open a database whose SELECTs run on the staged engine (operator
  //    stages connected by queues, as in the CIDR'03 paper's Figure 3).
  DatabaseOptions options;
  options.mode = ExecutionMode::kStaged;
  auto db_or = Database::Open(options);
  if (!db_or.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 db_or.status().ToString().c_str());
    return 1;
  }
  auto& db = **db_or;

  // 2. DDL + data.
  for (const char* sql : {
           "CREATE TABLE playlist (id INTEGER, title VARCHAR(64), "
           "plays INTEGER, rating DOUBLE)",
           "INSERT INTO playlist VALUES "
           "(1, 'Blue Train', 421, 4.9), (2, 'So What', 388, 4.8), "
           "(3, 'Take Five', 509, 4.7), (4, 'Naima', 217, 4.9), "
           "(5, 'Freddie Freeloader', 183, 4.5)",
           "CREATE INDEX playlist_id ON playlist (id)",
       }) {
    ExecuteOrDie(db, sql);
  }

  // 3. Query through the staged engine.
  auto result = ExecuteOrDie(
      db, "SELECT title, plays FROM playlist WHERE rating >= 4.7 "
          "ORDER BY plays DESC LIMIT 3");
  std::printf("top rated, most played:\n");
  for (const auto& row : result.rows) {
    std::printf("  %-22s %s plays\n", row[0].ToString().c_str(),
                row[1].ToString().c_str());
  }

  // 4. EXPLAIN shows the physical plan the optimize stage produced.
  auto plan = db.Explain("SELECT COUNT(*), AVG(rating) FROM playlist "
                         "WHERE id >= 2 AND id <= 4");
  if (!plan.ok()) {
    std::fprintf(stderr, "EXPLAIN failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }
  std::printf("\nplan:\n%s", plan->c_str());

  // 5. Transactions: roll back a bad update.
  ExecuteOrDie(db, "BEGIN");
  ExecuteOrDie(db, "UPDATE playlist SET plays = 0");
  ExecuteOrDie(db, "ROLLBACK");
  auto check = ExecuteOrDie(db, "SELECT SUM(plays) FROM playlist");
  if (check.rows.empty() || check.rows[0].empty()) {
    std::fprintf(stderr, "rollback check failed: SUM query returned no rows\n");
    return 1;
  }
  const std::string total = check.rows[0][0].ToString();
  if (total != "1718") {  // 421 + 388 + 509 + 217 + 183
    std::fprintf(stderr,
                 "rollback check failed: SUM(plays) = %s, expected 1718\n",
                 total.c_str());
    return 1;
  }
  std::printf("\ntotal plays after rollback: %s (unchanged)\n", total.c_str());
  return 0;
}
