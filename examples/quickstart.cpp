// Quickstart: open an embedded StagedDB database, create a table, insert
// rows, and run queries — including through the staged execution engine.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "server/database.h"

using stagedb::server::Database;
using stagedb::server::DatabaseOptions;
using stagedb::server::ExecutionMode;

int main() {
  // 1. Open a database whose SELECTs run on the staged engine (operator
  //    stages connected by queues, as in the CIDR'03 paper's Figure 3).
  DatabaseOptions options;
  options.mode = ExecutionMode::kStaged;
  auto db_or = Database::Open(options);
  if (!db_or.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 db_or.status().ToString().c_str());
    return 1;
  }
  auto& db = *db_or;

  // 2. DDL + data.
  for (const char* sql : {
           "CREATE TABLE playlist (id INTEGER, title VARCHAR(64), "
           "plays INTEGER, rating DOUBLE)",
           "INSERT INTO playlist VALUES "
           "(1, 'Blue Train', 421, 4.9), (2, 'So What', 388, 4.8), "
           "(3, 'Take Five', 509, 4.7), (4, 'Naima', 217, 4.9), "
           "(5, 'Freddie Freeloader', 183, 4.5)",
           "CREATE INDEX playlist_id ON playlist (id)",
       }) {
    auto r = db->Execute(sql);
    if (!r.ok()) {
      std::fprintf(stderr, "'%s' failed: %s\n", sql,
                   r.status().ToString().c_str());
      return 1;
    }
  }

  // 3. Query through the staged engine.
  auto result = db->Execute(
      "SELECT title, plays FROM playlist WHERE rating >= 4.7 "
      "ORDER BY plays DESC LIMIT 3");
  if (!result.ok()) return 1;
  std::printf("top rated, most played:\n");
  for (const auto& row : result->rows) {
    std::printf("  %-22s %s plays\n", row[0].ToString().c_str(),
                row[1].ToString().c_str());
  }

  // 4. EXPLAIN shows the physical plan the optimize stage produced.
  auto plan = db->Explain("SELECT COUNT(*), AVG(rating) FROM playlist "
                          "WHERE id >= 2 AND id <= 4");
  if (plan.ok()) std::printf("\nplan:\n%s", plan->c_str());

  // 5. Transactions: roll back a bad update.
  db->Execute("BEGIN");
  db->Execute("UPDATE playlist SET plays = 0");
  db->Execute("ROLLBACK");
  auto check = db->Execute("SELECT SUM(plays) FROM playlist");
  std::printf("\ntotal plays after rollback: %s (unchanged)\n",
              check->rows[0][0].ToString().c_str());
  return 0;
}
