// Staged server demo: concurrent clients stream queries through the five
// lifecycle stages of Figure 3 (connect -> parse -> optimize -> execute ->
// disconnect), each stage with its own queue, threads, and counters. The
// per-stage monitoring report at the end is the §5.2 tuning story.
#include <cstdio>
#include <thread>
#include <vector>

#include "server/server.h"
#include "workload/wisconsin.h"

using namespace stagedb::server;  // NOLINT

int main() {
  auto db_or = Database::Open();
  if (!db_or.ok()) return 1;
  Database* db = db_or->get();
  if (!stagedb::workload::CreateWisconsinTable(db->catalog(), "tenk1", 3000)
           .ok() ||
      !stagedb::workload::CreateWisconsinTable(db->catalog(), "tenk2", 3000)
           .ok()) {
    return 1;
  }

  ServerOptions options;
  options.threads_per_stage = 2;
  options.admission_capacity = 32;
  StagedServer server(db, options);

  const auto queries = stagedb::workload::SampleQueries("tenk1", "tenk2", 3000);
  std::printf("running 5 client threads x 12 queries against the staged "
              "server...\n");
  std::vector<std::thread> clients;
  std::atomic<int> errors{0};
  for (int c = 0; c < 5; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < 12; ++i) {
        auto result =
            server.Submit(queries[(c * 5 + i) % queries.size()])->Await();
        if (!result.ok()) ++errors;
      }
    });
  }
  for (auto& t : clients) t.join();
  std::printf("done, %d errors\n\n", errors.load());
  std::printf("%s\n", server.StatsReport().c_str());
  std::printf("database-wide stage counters:\n%s",
              db->stats()->Report().c_str());
  return errors.load() == 0 ? 0 : 1;
}
