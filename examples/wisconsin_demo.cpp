// Wisconsin benchmark demo: generates the benchmark relations the paper's
// §3.1.1 experiment is designed after, then runs the Workload A (short
// I/O-bound selections) and Workload B (long joins) query families through
// both execution engines and checks they agree.
#include <algorithm>
#include <cstdio>

#include "common/rng.h"
#include "server/database.h"
#include "workload/wisconsin.h"

using stagedb::Rng;
using stagedb::server::Database;
using stagedb::server::DatabaseOptions;
using stagedb::server::ExecutionMode;

namespace {

std::unique_ptr<Database> MakeDb(ExecutionMode mode) {
  DatabaseOptions options;
  options.mode = mode;
  auto db = Database::Open(options);
  if (!db.ok()) exit(1);
  if (!stagedb::workload::CreateWisconsinTable((*db)->catalog(), "tenk1", 5000)
           .ok() ||
      !stagedb::workload::CreateWisconsinTable((*db)->catalog(), "tenk2", 5000)
           .ok()) {
    exit(1);
  }
  if (!(*db)->catalog()->CreateIndex("tenk1_u2", "tenk1", "unique2").ok()) {
    exit(1);
  }
  return std::move(*db);
}

}  // namespace

int main() {
  auto volcano = MakeDb(ExecutionMode::kVolcano);
  auto staged = MakeDb(ExecutionMode::kStaged);
  std::printf("Wisconsin tables tenk1/tenk2 created (5000 rows each), index "
              "on tenk1.unique2\n\n");

  Rng rng(42);
  int checked = 0, agreed = 0;
  for (int i = 0; i < 6; ++i) {
    const std::string sql =
        i < 3 ? stagedb::workload::WorkloadAQuery("tenk1", 5000, &rng)
              : stagedb::workload::WorkloadBQuery("tenk1", "tenk2", 5000,
                                                  &rng);
    auto rv = volcano->Execute(sql);
    auto rs = staged->Execute(sql);
    if (!rv.ok() || !rs.ok()) {
      std::fprintf(stderr, "query failed: %s\n", sql.c_str());
      return 1;
    }
    auto render = [](const stagedb::server::QueryResult& r) {
      std::vector<std::string> rows;
      for (const auto& t : r.rows) {
        rows.push_back(stagedb::catalog::TupleToString(t));
      }
      std::sort(rows.begin(), rows.end());
      return rows;
    };
    ++checked;
    const bool same = render(*rv) == render(*rs);
    agreed += same;
    std::printf("[%c] %-4s %zu row(s)  %.60s...\n", same ? 'x' : '!',
                i < 3 ? "A" : "B", rv->rows.size(), sql.c_str());
  }
  std::printf("\n%d/%d queries: staged engine agrees with the volcano "
              "baseline.\n\n", agreed, checked);
  std::printf("Sample result (Workload A style):\n");
  auto sample = staged->Execute(
      "SELECT ten, COUNT(*), MIN(unique1), MAX(unique1) FROM tenk1 "
      "WHERE unique2 < 1000 GROUP BY ten ORDER BY ten");
  if (sample.ok()) {
    for (const auto& row : sample->rows) {
      std::printf("  %s\n", stagedb::catalog::TupleToString(row).c_str());
    }
  }
  return agreed == checked ? 0 : 1;
}
