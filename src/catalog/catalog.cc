#include "catalog/catalog.h"

#include "common/string_util.h"

namespace stagedb::catalog {

StatusOr<TableInfo*> Catalog::CreateTable(const std::string& name,
                                          const Schema& schema) {
  MutexLock lock(mu_);
  if (tables_.count(name)) {
    return Status::AlreadyExists(StrFormat("table '%s'", name.c_str()));
  }
  if (schema.num_columns() == 0) {
    return Status::InvalidArgument("table must have at least one column");
  }
  auto heap_or = storage::HeapFile::Create(pool_);
  if (!heap_or.ok()) return heap_or.status();
  auto info = std::make_unique<TableInfo>();
  info->id = next_table_id_++;
  info->name = name;
  info->schema = schema.Qualified(name);
  info->heap = std::move(*heap_or);
  info->stats = std::make_unique<TableStats>(schema.num_columns());
  symbols_.Intern(name);
  for (const Column& c : schema.columns()) symbols_.Intern(c.name);
  TableInfo* ptr = info.get();
  tables_[name] = std::move(info);
  BumpVersion();
  return ptr;
}

StatusOr<TableInfo*> Catalog::GetTable(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound(StrFormat("table '%s'", name.c_str()));
  }
  return it->second.get();
}

StatusOr<TableInfo*> Catalog::GetTableById(TableId id) const {
  MutexLock lock(mu_);
  for (const auto& [name, info] : tables_) {
    if (info->id == id) return info.get();
  }
  return Status::NotFound(StrFormat("table id %d", id));
}

Status Catalog::DropTable(const std::string& name) {
  MutexLock lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound(StrFormat("table '%s'", name.c_str()));
  }
  // Drop dependent indexes.
  const TableId id = it->second->id;
  for (auto iit = indexes_.begin(); iit != indexes_.end();) {
    if (iit->second->table_id == id) {
      iit = indexes_.erase(iit);
    } else {
      ++iit;
    }
  }
  tables_.erase(it);
  BumpVersion();
  return Status::OK();
}

StatusOr<IndexInfo*> Catalog::CreateIndex(const std::string& index_name,
                                          const std::string& table_name,
                                          const std::string& column_name) {
  TableInfo* table;
  {
    auto t = GetTable(table_name);
    if (!t.ok()) return t.status();
    table = *t;
  }
  MutexLock lock(mu_);
  if (indexes_.count(index_name)) {
    return Status::AlreadyExists(StrFormat("index '%s'", index_name.c_str()));
  }
  auto col_or = table->schema.Find(column_name);
  if (!col_or.ok()) return col_or.status();
  const size_t col = *col_or;
  if (table->schema.column(col).type != TypeId::kInt64) {
    return Status::NotSupported("indexes require an INTEGER column");
  }
  auto tree_or = storage::BPlusTree::Create(pool_);
  if (!tree_or.ok()) return tree_or.status();
  auto info = std::make_unique<IndexInfo>();
  info->id = next_index_id_++;
  info->name = index_name;
  info->table_id = table->id;
  info->column = col;
  info->tree = std::move(*tree_or);
  // Backfill from existing rows. Under MVCC only chain heads are indexed
  // (end == kMax, or an in-flight delete mark which is still the newest
  // version); at most one version per key is truly live, so a conflict means
  // the live version displaces an in-flight-delete head indexed earlier.
  auto it = table->heap->Scan();
  while (it.Next()) {
    std::string_view record = it.record();
    bool live_head = true;
    if (mvcc_ != nullptr) {
      if (record.size() < storage::kVersionHeaderSize) {
        return Status::Internal("index backfill: record missing MVCC header");
      }
      const storage::VersionHeader h = storage::DecodeVersionHeader(record);
      if (h.end != storage::kMaxTs && h.end >= 0) continue;  // dead version
      live_head = h.end == storage::kMaxTs;
      record = storage::RowPayload(record);
    }
    auto tuple_or = DecodeTuple(table->schema, record);
    if (!tuple_or.ok()) return tuple_or.status();
    const Value& key = (*tuple_or)[col];
    if (key.is_null()) continue;
    Status inserted = info->tree->Insert(key.int_value(), it.rid());
    if (!inserted.ok() && mvcc_ != nullptr &&
        inserted.code() == StatusCode::kAlreadyExists && live_head) {
      STAGEDB_RETURN_IF_ERROR(info->tree->Delete(key.int_value()));
      inserted = info->tree->Insert(key.int_value(), it.rid());
    }
    STAGEDB_RETURN_IF_ERROR(inserted);
  }
  STAGEDB_RETURN_IF_ERROR(it.status());
  IndexInfo* ptr = info.get();
  indexes_[index_name] = std::move(info);
  table->indexes.push_back(ptr);
  BumpVersion();
  return ptr;
}

StatusOr<IndexInfo*> Catalog::GetIndex(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = indexes_.find(name);
  if (it == indexes_.end()) {
    return Status::NotFound(StrFormat("index '%s'", name.c_str()));
  }
  return it->second.get();
}

IndexInfo* Catalog::FindIndexOn(TableId table, size_t column) const {
  MutexLock lock(mu_);
  for (const auto& [name, info] : indexes_) {
    if (info->table_id == table && info->column == column) return info.get();
  }
  return nullptr;
}

StatusOr<storage::Rid> Catalog::InsertTuple(TableInfo* table,
                                            const Tuple& tuple,
                                            storage::MvccTxn* txn) {
  if (tuple.size() != table->schema.num_columns()) {
    return Status::InvalidArgument(
        StrFormat("expected %zu values, got %zu",
                  table->schema.num_columns(), tuple.size()));
  }
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (!TypesCompatible(tuple[i].type(), table->schema.column(i).type)) {
      return Status::InvalidArgument(
          StrFormat("type mismatch in column '%s'",
                    table->schema.column(i).name.c_str()));
    }
  }
  const std::string bytes = EncodeTuple(table->schema, tuple);
  if (mvcc_ != nullptr && txn != nullptr) {
    storage::Rid rid;
    STAGEDB_RETURN_IF_ERROR(
        MvccInsertIndexes(table, tuple, bytes, txn, &rid));
    return rid;
  }
  std::string record;
  if (mvcc_ != nullptr) {
    // Bootstrap/recovery install: committed before every snapshot.
    storage::VersionHeader h;
    h.begin = 0;
    record = storage::EncodeVersionHeader(h);
  }
  record.append(bytes);
  auto rid_or = table->heap->Insert(record);
  if (!rid_or.ok()) return rid_or.status();
  table->stats->RecordInsert(tuple);
  for (IndexInfo* index : table->indexes) {
    const Value& key = tuple[index->column];
    if (key.is_null()) continue;
    STAGEDB_RETURN_IF_ERROR(index->tree->Insert(key.int_value(), *rid_or));
  }
  return *rid_or;
}

Status Catalog::MvccInsertIndexes(TableInfo* table, const Tuple& tuple,
                                  std::string_view payload,
                                  storage::MvccTxn* txn,
                                  storage::Rid* out_rid) {
  const storage::MvccReadView view = txn->View();
  storage::VersionHeader header;
  header.begin = -txn->id;

  // Unindexed fast path: no key uniqueness to defend, so no structural lock.
  if (table->indexes.empty()) {
    std::string record = storage::EncodeVersionHeader(header);
    record.append(payload);
    auto rid_or = table->heap->Insert(record);
    if (!rid_or.ok()) return rid_or.status();
    table->stats->RecordInsert(tuple);
    storage::MvccWrite w;
    w.table_id = table->id;
    w.rid = *rid_or;
    w.op = storage::MvccWriteOp::kInsert;
    txn->writes.push_back(std::move(w));
    *out_rid = *rid_or;
    return Status::OK();
  }

  MutexLock lock(structural_mu_);
  // Phase 1: classify each index head for the new keys. First-updater-wins:
  // a head carrying another transaction's marker, or one whose install or
  // delete committed after our snapshot, is a write-write conflict; a head
  // live in our view is a genuine duplicate; a head dead in our view gets
  // its entry replaced and becomes the new version's prev link.
  struct IndexPlan {
    IndexInfo* index;
    int64_t key;
    bool replace;
    storage::Rid old_head;
  };
  std::vector<IndexPlan> plans;
  plans.reserve(table->indexes.size());
  for (IndexInfo* index : table->indexes) {
    const Value& key = tuple[index->column];
    if (key.is_null()) continue;
    const int64_t k = key.int_value();
    auto head_or = index->tree->Get(k);
    if (!head_or.ok()) {
      if (!head_or.status().IsNotFound()) return head_or.status();
      plans.push_back(IndexPlan{index, k, false, {}});
      continue;
    }
    std::string head_record;
    STAGEDB_RETURN_IF_ERROR(table->heap->Get(*head_or, &head_record));
    if (head_record.size() < storage::kVersionHeaderSize) {
      return Status::Internal("mvcc insert: head missing version header");
    }
    const storage::VersionHeader h =
        storage::DecodeVersionHeader(head_record);
    const bool foreign_marker = (h.begin < 0 && -h.begin != view.self) ||
                                (h.end < 0 && -h.end != view.self);
    if (foreign_marker || h.begin > view.snapshot ||
        (h.end > 0 && h.end != storage::kMaxTs && h.end > view.snapshot)) {
      return Status::Aborted("write-write conflict");
    }
    if (h.end == storage::kMaxTs) {
      return Status::AlreadyExists(
          StrFormat("duplicate key %lld in index '%s'",
                    static_cast<long long>(k), index->name.c_str()));
    }
    plans.push_back(IndexPlan{index, k, true, *head_or});
  }
  // The prev link comes from the first replacing index. With multiple
  // indexes a key re-bound to a different logical row would need one chain
  // per index; that history loss is a documented limitation (DESIGN.md §12).
  for (const IndexPlan& p : plans) {
    if (p.replace) {
      header.prev = p.old_head;
      break;
    }
  }
  std::string record = storage::EncodeVersionHeader(header);
  record.append(payload);
  auto rid_or = table->heap->Insert(record);
  if (!rid_or.ok()) return rid_or.status();
  // Record the write before touching the trees so a mid-apply error still
  // leaves MvccAbort enough undo information for what actually happened.
  storage::MvccWrite w;
  w.table_id = table->id;
  w.rid = *rid_or;
  w.op = storage::MvccWriteOp::kInsert;
  txn->writes.push_back(std::move(w));
  storage::MvccWrite& recorded = txn->writes.back();
  table->stats->RecordInsert(tuple);
  for (const IndexPlan& p : plans) {
    if (p.replace) {
      STAGEDB_RETURN_IF_ERROR(p.index->tree->Delete(p.key));
    }
    STAGEDB_RETURN_IF_ERROR(p.index->tree->Insert(p.key, *rid_or));
    storage::MvccIndexUndo undo;
    undo.index_id = p.index->id;
    undo.key = p.key;
    undo.replaced = p.replace;
    undo.old_head = p.old_head;
    recorded.index_undo.push_back(undo);
  }
  *out_rid = *rid_or;
  return Status::OK();
}

Status Catalog::DeleteTuple(TableInfo* table, const storage::Rid& rid,
                            storage::MvccTxn* txn) {
  if (mvcc_ != nullptr && txn != nullptr) {
    // Mark-only delete: the version (and its index entries) stays in place
    // for older snapshots; FinalizeCommit stamps the end timestamp and
    // MvccVacuum reclaims it once no snapshot can see it.
    STAGEDB_RETURN_IF_ERROR(
        mvcc_->MarkDeleteVersion(txn, table->id, table->heap.get(), rid));
    table->stats->RecordDelete();
    return Status::OK();
  }
  std::string bytes;
  STAGEDB_RETURN_IF_ERROR(table->heap->Get(rid, &bytes));
  std::string_view payload = bytes;
  if (mvcc_ != nullptr) {
    if (bytes.size() < storage::kVersionHeaderSize) {
      return Status::Internal("mvcc delete: record missing version header");
    }
    payload = storage::RowPayload(bytes);
  }
  auto tuple_or = DecodeTuple(table->schema, payload);
  if (!tuple_or.ok()) return tuple_or.status();
  STAGEDB_RETURN_IF_ERROR(table->heap->Delete(rid));
  table->stats->RecordDelete();
  for (IndexInfo* index : table->indexes) {
    const Value& key = (*tuple_or)[index->column];
    if (key.is_null()) continue;
    if (mvcc_ != nullptr) {
      // The entry may already point at a newer version of this key.
      auto head_or = index->tree->Get(key.int_value());
      if (head_or.ok() && !(*head_or == rid)) continue;
    }
    STAGEDB_RETURN_IF_ERROR(index->tree->Delete(key.int_value()));
  }
  return Status::OK();
}

Status Catalog::MvccCommit(storage::MvccTxn* txn, storage::Ts cts) {
  if (mvcc_ == nullptr) {
    return Status::InvalidArgument("MvccCommit without MVCC enabled");
  }
  return mvcc_->FinalizeCommit(
      txn, cts, [this](int32_t table_id) -> storage::HeapFile* {
        auto table_or = GetTableById(table_id);
        return table_or.ok() ? (*table_or)->heap.get() : nullptr;
      });
}

Status Catalog::MvccAbort(storage::MvccTxn* txn) {
  if (mvcc_ == nullptr) {
    return Status::InvalidArgument("MvccAbort without MVCC enabled");
  }
  Status status;
  const auto keep_first = [&status](const Status& s) {
    if (!s.ok() && status.ok()) status = s;
  };
  for (auto it = txn->writes.rbegin(); it != txn->writes.rend(); ++it) {
    const storage::MvccWrite& w = *it;
    auto table_or = GetTableById(w.table_id);
    if (!table_or.ok()) {
      keep_first(table_or.status());
      continue;
    }
    TableInfo* table = *table_or;
    if (w.op == storage::MvccWriteOp::kInsert) {
      MutexLock lock(structural_mu_);
      for (auto uit = w.index_undo.rbegin(); uit != w.index_undo.rend();
           ++uit) {
        IndexInfo* index = nullptr;
        for (IndexInfo* candidate : table->indexes) {
          if (candidate->id == uit->index_id) index = candidate;
        }
        if (index == nullptr) continue;  // index dropped since
        keep_first(index->tree->Delete(uit->key));
        if (uit->replaced) {
          keep_first(index->tree->Insert(uit->key, uit->old_head));
        }
      }
      keep_first(table->heap->Delete(w.rid));
      table->stats->RecordDelete();
    } else {
      // Clear the delete mark so the version is live again.
      std::string record;
      Status s = table->heap->Get(w.rid, &record);
      if (!s.ok()) {
        keep_first(s);
        continue;
      }
      storage::VersionHeader h = storage::DecodeVersionHeader(record);
      if (h.end != -txn->id) continue;  // never marked (failed statement)
      h.end = storage::kMaxTs;
      keep_first(table->heap->OverwritePrefix(
          w.rid, storage::EncodeVersionHeader(h)));
      auto tuple_or =
          DecodeTuple(table->schema, storage::RowPayload(record));
      if (tuple_or.ok()) {
        table->stats->RecordInsert(*tuple_or);
      } else {
        keep_first(tuple_or.status());
      }
    }
  }
  return status;
}

StatusOr<int64_t> Catalog::MvccVacuum() {
  if (mvcc_ == nullptr) return int64_t{0};
  const storage::Ts horizon = mvcc_->VacuumHorizon();
  const auto dead_at_horizon = [horizon](const storage::VersionHeader& h) {
    return h.end >= 0 && h.end != storage::kMaxTs && h.end <= horizon;
  };
  int64_t reclaimed = 0;
  for (const std::string& name : TableNames()) {
    auto table_or = GetTable(name);
    if (!table_or.ok()) continue;  // dropped since listing
    TableInfo* table = *table_or;
    // Collect candidates without the structural lock; each is re-verified
    // under it before being touched. Committed end timestamps are immutable,
    // so a candidate can only disappear (another vacuum pass), never revive.
    std::vector<storage::Rid> candidates;
    auto it = table->heap->Scan();
    while (it.Next()) {
      if (it.record().size() < storage::kVersionHeaderSize) {
        return Status::Internal("vacuum: record missing version header");
      }
      if (dead_at_horizon(storage::DecodeVersionHeader(it.record()))) {
        candidates.push_back(it.rid());
      }
    }
    STAGEDB_RETURN_IF_ERROR(it.status());
    for (const storage::Rid& rid : candidates) {
      MutexLock lock(structural_mu_);
      std::string record;
      Status s = table->heap->Get(rid, &record);
      if (s.IsNotFound()) continue;
      STAGEDB_RETURN_IF_ERROR(s);
      if (!dead_at_horizon(storage::DecodeVersionHeader(record))) continue;
      if (!table->indexes.empty()) {
        // A dead head means the whole chain is dead (older versions ended
        // even earlier), so the tree entry goes too. Entries pointing at a
        // newer version stay: their prev link will dangle, which readers
        // treat as end-of-chain.
        auto tuple_or =
            DecodeTuple(table->schema, storage::RowPayload(record));
        if (!tuple_or.ok()) return tuple_or.status();
        for (IndexInfo* index : table->indexes) {
          const Value& key = (*tuple_or)[index->column];
          if (key.is_null()) continue;
          auto head_or = index->tree->Get(key.int_value());
          if (head_or.ok() && *head_or == rid) {
            STAGEDB_RETURN_IF_ERROR(index->tree->Delete(key.int_value()));
          }
        }
      }
      STAGEDB_RETURN_IF_ERROR(table->heap->Delete(rid));
      ++reclaimed;
    }
  }
  return reclaimed;
}

std::vector<std::string> Catalog::TableNames() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, info] : tables_) names.push_back(name);
  return names;
}

}  // namespace stagedb::catalog
