#include "catalog/catalog.h"

#include "common/string_util.h"

namespace stagedb::catalog {

StatusOr<TableInfo*> Catalog::CreateTable(const std::string& name,
                                          const Schema& schema) {
  MutexLock lock(mu_);
  if (tables_.count(name)) {
    return Status::AlreadyExists(StrFormat("table '%s'", name.c_str()));
  }
  if (schema.num_columns() == 0) {
    return Status::InvalidArgument("table must have at least one column");
  }
  auto heap_or = storage::HeapFile::Create(pool_);
  if (!heap_or.ok()) return heap_or.status();
  auto info = std::make_unique<TableInfo>();
  info->id = next_table_id_++;
  info->name = name;
  info->schema = schema.Qualified(name);
  info->heap = std::move(*heap_or);
  info->stats = std::make_unique<TableStats>(schema.num_columns());
  symbols_.Intern(name);
  for (const Column& c : schema.columns()) symbols_.Intern(c.name);
  TableInfo* ptr = info.get();
  tables_[name] = std::move(info);
  BumpVersion();
  return ptr;
}

StatusOr<TableInfo*> Catalog::GetTable(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound(StrFormat("table '%s'", name.c_str()));
  }
  return it->second.get();
}

StatusOr<TableInfo*> Catalog::GetTableById(TableId id) const {
  MutexLock lock(mu_);
  for (const auto& [name, info] : tables_) {
    if (info->id == id) return info.get();
  }
  return Status::NotFound(StrFormat("table id %d", id));
}

Status Catalog::DropTable(const std::string& name) {
  MutexLock lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound(StrFormat("table '%s'", name.c_str()));
  }
  // Drop dependent indexes.
  const TableId id = it->second->id;
  for (auto iit = indexes_.begin(); iit != indexes_.end();) {
    if (iit->second->table_id == id) {
      iit = indexes_.erase(iit);
    } else {
      ++iit;
    }
  }
  tables_.erase(it);
  BumpVersion();
  return Status::OK();
}

StatusOr<IndexInfo*> Catalog::CreateIndex(const std::string& index_name,
                                          const std::string& table_name,
                                          const std::string& column_name) {
  TableInfo* table;
  {
    auto t = GetTable(table_name);
    if (!t.ok()) return t.status();
    table = *t;
  }
  MutexLock lock(mu_);
  if (indexes_.count(index_name)) {
    return Status::AlreadyExists(StrFormat("index '%s'", index_name.c_str()));
  }
  auto col_or = table->schema.Find(column_name);
  if (!col_or.ok()) return col_or.status();
  const size_t col = *col_or;
  if (table->schema.column(col).type != TypeId::kInt64) {
    return Status::NotSupported("indexes require an INTEGER column");
  }
  auto tree_or = storage::BPlusTree::Create(pool_);
  if (!tree_or.ok()) return tree_or.status();
  auto info = std::make_unique<IndexInfo>();
  info->id = next_index_id_++;
  info->name = index_name;
  info->table_id = table->id;
  info->column = col;
  info->tree = std::move(*tree_or);
  // Backfill from existing rows.
  auto it = table->heap->Scan();
  while (it.Next()) {
    auto tuple_or = DecodeTuple(table->schema, it.record());
    if (!tuple_or.ok()) return tuple_or.status();
    const Value& key = (*tuple_or)[col];
    if (key.is_null()) continue;
    STAGEDB_RETURN_IF_ERROR(info->tree->Insert(key.int_value(), it.rid()));
  }
  STAGEDB_RETURN_IF_ERROR(it.status());
  IndexInfo* ptr = info.get();
  indexes_[index_name] = std::move(info);
  table->indexes.push_back(ptr);
  BumpVersion();
  return ptr;
}

StatusOr<IndexInfo*> Catalog::GetIndex(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = indexes_.find(name);
  if (it == indexes_.end()) {
    return Status::NotFound(StrFormat("index '%s'", name.c_str()));
  }
  return it->second.get();
}

IndexInfo* Catalog::FindIndexOn(TableId table, size_t column) const {
  MutexLock lock(mu_);
  for (const auto& [name, info] : indexes_) {
    if (info->table_id == table && info->column == column) return info.get();
  }
  return nullptr;
}

StatusOr<storage::Rid> Catalog::InsertTuple(TableInfo* table,
                                            const Tuple& tuple) {
  if (tuple.size() != table->schema.num_columns()) {
    return Status::InvalidArgument(
        StrFormat("expected %zu values, got %zu",
                  table->schema.num_columns(), tuple.size()));
  }
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (!TypesCompatible(tuple[i].type(), table->schema.column(i).type)) {
      return Status::InvalidArgument(
          StrFormat("type mismatch in column '%s'",
                    table->schema.column(i).name.c_str()));
    }
  }
  const std::string bytes = EncodeTuple(table->schema, tuple);
  auto rid_or = table->heap->Insert(bytes);
  if (!rid_or.ok()) return rid_or.status();
  table->stats->RecordInsert(tuple);
  for (IndexInfo* index : table->indexes) {
    const Value& key = tuple[index->column];
    if (key.is_null()) continue;
    STAGEDB_RETURN_IF_ERROR(index->tree->Insert(key.int_value(), *rid_or));
  }
  return *rid_or;
}

Status Catalog::DeleteTuple(TableInfo* table, const storage::Rid& rid) {
  std::string bytes;
  STAGEDB_RETURN_IF_ERROR(table->heap->Get(rid, &bytes));
  auto tuple_or = DecodeTuple(table->schema, bytes);
  if (!tuple_or.ok()) return tuple_or.status();
  STAGEDB_RETURN_IF_ERROR(table->heap->Delete(rid));
  table->stats->RecordDelete();
  for (IndexInfo* index : table->indexes) {
    const Value& key = (*tuple_or)[index->column];
    if (key.is_null()) continue;
    STAGEDB_RETURN_IF_ERROR(index->tree->Delete(key.int_value()));
  }
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, info] : tables_) names.push_back(name);
  return names;
}

}  // namespace stagedb::catalog
