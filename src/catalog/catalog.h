// The catalog: tables, indexes, schemas, and statistics. Table 1 of the paper
// classifies the catalog as "common" data touched by the majority of queries;
// the connect/parse/optimize stages all resolve names through it.
#ifndef STAGEDB_CATALOG_CATALOG_H_
#define STAGEDB_CATALOG_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "catalog/symbol_table.h"
#include "catalog/table_stats.h"
#include "catalog/tuple.h"
#include "common/mutex.h"
#include "common/status.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"

namespace stagedb::catalog {

using TableId = int32_t;
using IndexId = int32_t;

/// A secondary index over one INTEGER column.
struct IndexInfo {
  IndexId id = -1;
  std::string name;
  TableId table_id = -1;
  size_t column = 0;
  std::unique_ptr<storage::BPlusTree> tree;
};

/// A table: schema + heap file + stats + indexes.
struct TableInfo {
  TableId id = -1;
  std::string name;
  Schema schema;
  std::unique_ptr<storage::HeapFile> heap;
  std::unique_ptr<TableStats> stats;
  std::vector<IndexInfo*> indexes;  // owned by the catalog
};

/// Thread-safe catalog over a buffer pool.
class Catalog {
 public:
  explicit Catalog(storage::BufferPool* pool) : pool_(pool) {}

  StatusOr<TableInfo*> CreateTable(const std::string& name,
                                   const Schema& schema);
  StatusOr<TableInfo*> GetTable(const std::string& name) const;
  StatusOr<TableInfo*> GetTableById(TableId id) const;
  Status DropTable(const std::string& name);

  /// Creates a B+-tree index on an INTEGER column and backfills it from the
  /// table's current contents.
  StatusOr<IndexInfo*> CreateIndex(const std::string& index_name,
                                   const std::string& table_name,
                                   const std::string& column_name);
  StatusOr<IndexInfo*> GetIndex(const std::string& name) const;
  /// The index on `table`.`column`, or nullptr.
  IndexInfo* FindIndexOn(TableId table, size_t column) const;

  /// Inserts a tuple through the catalog: updates heap, stats, and indexes.
  StatusOr<storage::Rid> InsertTuple(TableInfo* table, const Tuple& tuple);
  /// Deletes a tuple by rid, maintaining indexes and stats.
  Status DeleteTuple(TableInfo* table, const storage::Rid& rid);

  std::vector<std::string> TableNames() const;
  SymbolTable* symbols() { return &symbols_; }
  storage::BufferPool* buffer_pool() { return pool_; }

  /// Catalog epoch: monotonically bumped by every DDL operation (CREATE
  /// TABLE/INDEX, DROP TABLE) and by explicit BumpVersion() calls (statistics
  /// refresh). Cached plans record the epoch they were planned under; an
  /// epoch mismatch marks them stale so they are replanned instead of
  /// executing against a dropped or altered table.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }
  /// Invalidates plans built against the current catalog state without a
  /// schema change (e.g. after a table-statistics refresh).
  void BumpVersion() { version_.fetch_add(1, std::memory_order_acq_rel); }

 private:
  storage::BufferPool* pool_;
  std::atomic<uint64_t> version_{1};
  mutable Mutex mu_;
  TableId next_table_id_ GUARDED_BY(mu_) = 0;
  IndexId next_index_id_ GUARDED_BY(mu_) = 0;
  std::map<std::string, std::unique_ptr<TableInfo>> tables_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<IndexInfo>> indexes_ GUARDED_BY(mu_);
  SymbolTable symbols_;  // self-locking
};

}  // namespace stagedb::catalog

#endif  // STAGEDB_CATALOG_CATALOG_H_
