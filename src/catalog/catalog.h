// The catalog: tables, indexes, schemas, and statistics. Table 1 of the paper
// classifies the catalog as "common" data touched by the majority of queries;
// the connect/parse/optimize stages all resolve names through it.
#ifndef STAGEDB_CATALOG_CATALOG_H_
#define STAGEDB_CATALOG_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "catalog/symbol_table.h"
#include "catalog/table_stats.h"
#include "catalog/tuple.h"
#include "common/mutex.h"
#include "common/status.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"
#include "storage/mvcc.h"
#include "storage/txn.h"

namespace stagedb::catalog {

using TableId = int32_t;
using IndexId = int32_t;

/// A secondary index over one INTEGER column.
struct IndexInfo {
  IndexId id = -1;
  std::string name;
  TableId table_id = -1;
  size_t column = 0;
  std::unique_ptr<storage::BPlusTree> tree;
};

/// A table: schema + heap file + stats + indexes.
struct TableInfo {
  TableId id = -1;
  std::string name;
  Schema schema;
  std::unique_ptr<storage::HeapFile> heap;
  std::unique_ptr<TableStats> stats;
  std::vector<IndexInfo*> indexes;  // owned by the catalog
};

/// Thread-safe catalog over a buffer pool.
class Catalog {
 public:
  explicit Catalog(storage::BufferPool* pool) : pool_(pool) {}

  StatusOr<TableInfo*> CreateTable(const std::string& name,
                                   const Schema& schema);
  StatusOr<TableInfo*> GetTable(const std::string& name) const;
  StatusOr<TableInfo*> GetTableById(TableId id) const;
  Status DropTable(const std::string& name);

  /// Creates a B+-tree index on an INTEGER column and backfills it from the
  /// table's current contents.
  StatusOr<IndexInfo*> CreateIndex(const std::string& index_name,
                                   const std::string& table_name,
                                   const std::string& column_name);
  StatusOr<IndexInfo*> GetIndex(const std::string& name) const;
  /// The index on `table`.`column`, or nullptr.
  IndexInfo* FindIndexOn(TableId table, size_t column) const;

  /// Inserts a tuple through the catalog: updates heap, stats, and indexes.
  ///
  /// Under MVCC (EnableMvcc), records gain a version header: with a writer
  /// `txn` the new version is installed uncommitted (begin = -txn->id) and
  /// unique-key conflicts against the index head follow first-updater-wins
  /// (Aborted on a concurrent writer's version, AlreadyExists on a genuinely
  /// live duplicate); with txn == nullptr (bootstrap/recovery) the version is
  /// installed committed-at-bootstrap (begin = 0).
  StatusOr<storage::Rid> InsertTuple(TableInfo* table, const Tuple& tuple,
                                     storage::MvccTxn* txn = nullptr);
  /// Deletes a tuple by rid, maintaining indexes and stats.
  ///
  /// Under MVCC with a writer `txn` this only *marks* the version deleted
  /// (end = -txn->id, first-updater-wins) and leaves index entries in place
  /// so older snapshots keep finding the chain; physical reclamation is
  /// MvccVacuum's job. With txn == nullptr the delete is physical (recovery
  /// replays a flat committed history).
  Status DeleteTuple(TableInfo* table, const storage::Rid& rid,
                     storage::MvccTxn* txn = nullptr);

  /// Switches the catalog to multi-version storage, using `txn_mgr` as the
  /// timestamp authority. Call once at setup, before any rows exist; tuple
  /// encodings with and without version headers must never mix in one heap.
  void EnableMvcc(storage::TransactionManager* txn_mgr) { mvcc_ = txn_mgr; }
  bool mvcc_enabled() const { return mvcc_ != nullptr; }
  storage::TransactionManager* mvcc() const { return mvcc_; }

  /// Publishes `txn`'s versions at commit timestamp `cts` (rewrites the
  /// -txn_id markers; see TransactionManager::FinalizeCommit for ordering).
  Status MvccCommit(storage::MvccTxn* txn, storage::Ts cts);
  /// Undoes `txn`'s write set in reverse: uncommitted inserts are physically
  /// removed (restoring any replaced index heads), delete marks are cleared.
  Status MvccAbort(storage::MvccTxn* txn);
  /// Reclaims versions invisible to every present and future snapshot
  /// (committed end <= TransactionManager::VacuumHorizon()). Returns the
  /// number of versions physically deleted.
  StatusOr<int64_t> MvccVacuum();

  std::vector<std::string> TableNames() const;
  SymbolTable* symbols() { return &symbols_; }
  storage::BufferPool* buffer_pool() { return pool_; }

  /// Catalog epoch: monotonically bumped by every DDL operation (CREATE
  /// TABLE/INDEX, DROP TABLE) and by explicit BumpVersion() calls (statistics
  /// refresh). Cached plans record the epoch they were planned under; an
  /// epoch mismatch marks them stale so they are replanned instead of
  /// executing against a dropped or altered table.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }
  /// Invalidates plans built against the current catalog state without a
  /// schema change (e.g. after a table-statistics refresh).
  void BumpVersion() { version_.fetch_add(1, std::memory_order_acq_rel); }

 private:
  /// MVCC index maintenance: head check + entry swap for one key must be
  /// atomic against other inserters and against vacuum, which is exactly the
  /// sequence this mutex serializes. Page latches nest inside it; it is never
  /// taken while holding mu_ or the TransactionManager's mvcc lock.
  Status MvccInsertIndexes(TableInfo* table, const Tuple& tuple,
                           std::string_view payload, storage::MvccTxn* txn,
                           storage::Rid* out_rid)
      EXCLUDES(structural_mu_);

  storage::BufferPool* pool_;
  storage::TransactionManager* mvcc_ = nullptr;
  mutable Mutex structural_mu_;
  std::atomic<uint64_t> version_{1};
  mutable Mutex mu_;
  TableId next_table_id_ GUARDED_BY(mu_) = 0;
  IndexId next_index_id_ GUARDED_BY(mu_) = 0;
  std::map<std::string, std::unique_ptr<TableInfo>> tables_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<IndexInfo>> indexes_ GUARDED_BY(mu_);
  SymbolTable symbols_;  // self-locking
};

}  // namespace stagedb::catalog

#endif  // STAGEDB_CATALOG_CATALOG_H_
