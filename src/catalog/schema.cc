#include "catalog/schema.h"

#include "common/string_util.h"

namespace stagedb::catalog {

StatusOr<size_t> Schema::Find(const std::string& name) const {
  // Qualified lookup: "t.c" matches only columns with that table qualifier.
  const size_t dot = name.find('.');
  std::string table, col;
  if (dot != std::string::npos) {
    table = name.substr(0, dot);
    col = name.substr(dot + 1);
  } else {
    col = name;
  }
  size_t found = SIZE_MAX;
  for (size_t i = 0; i < columns_.size(); ++i) {
    const Column& c = columns_[i];
    if (c.name != col) continue;
    if (!table.empty() && c.table != table) continue;
    if (found != SIZE_MAX) {
      return Status::InvalidArgument(
          StrFormat("ambiguous column reference '%s'", name.c_str()));
    }
    found = i;
  }
  if (found == SIZE_MAX) {
    return Status::NotFound(StrFormat("column '%s'", name.c_str()));
  }
  return found;
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<Column> cols = left.columns_;
  cols.insert(cols.end(), right.columns_.begin(), right.columns_.end());
  return Schema(std::move(cols));
}

Schema Schema::Qualified(const std::string& table) const {
  std::vector<Column> cols = columns_;
  for (Column& c : cols) c.table = table;
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(columns_.size());
  for (const Column& c : columns_) {
    parts.push_back(c.QualifiedName() + " " + TypeName(c.type));
  }
  return "(" + StrJoin(parts, ", ") + ")";
}

}  // namespace stagedb::catalog
