// Table and intermediate-result schemas.
#ifndef STAGEDB_CATALOG_SCHEMA_H_
#define STAGEDB_CATALOG_SCHEMA_H_

#include <string>
#include <vector>

#include "catalog/types.h"
#include "common/status.h"

namespace stagedb::catalog {

/// A named, typed column. `table` qualifies the name for join outputs.
struct Column {
  std::string name;
  TypeId type = TypeId::kNull;
  std::string table;  // optional qualifier

  std::string QualifiedName() const {
    return table.empty() ? name : table + "." + name;
  }
};

/// Ordered list of columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_.at(i); }
  const std::vector<Column>& columns() const { return columns_; }

  /// Finds a column by (optionally qualified) name. Ambiguity is an error.
  StatusOr<size_t> Find(const std::string& name) const;

  /// Schema of `left` columns followed by `right` columns (join output).
  static Schema Concat(const Schema& left, const Schema& right);

  /// Copy of this schema with every column qualified by `table`.
  Schema Qualified(const std::string& table) const;

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

}  // namespace stagedb::catalog

#endif  // STAGEDB_CATALOG_SCHEMA_H_
