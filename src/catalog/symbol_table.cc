#include "catalog/symbol_table.h"

namespace stagedb::catalog {

int32_t SymbolTable::Intern(const std::string& name) {
  MutexLock lock(mu_);
  ++lookups_;
  auto it = ids_.find(name);
  if (it != ids_.end()) {
    ++hits_;
    return it->second;
  }
  const int32_t id = static_cast<int32_t>(names_.size());
  names_.push_back(name);
  ids_[name] = id;
  return id;
}

int32_t SymbolTable::Lookup(const std::string& name) const {
  MutexLock lock(mu_);
  ++lookups_;
  auto it = ids_.find(name);
  if (it == ids_.end()) return -1;
  ++hits_;
  return it->second;
}

const std::string& SymbolTable::NameOf(int32_t id) const {
  MutexLock lock(mu_);
  return names_.at(id);
}

size_t SymbolTable::size() const {
  MutexLock lock(mu_);
  return names_.size();
}

}  // namespace stagedb::catalog
