// The symbol table: the parse stage's "common" working set (Table 1 of the
// paper classifies the catalog and symbol table as data accessed by the
// majority of queries). Identifiers are interned so repeated parsing of
// similar queries touches the same structures.
#ifndef STAGEDB_CATALOG_SYMBOL_TABLE_H_
#define STAGEDB_CATALOG_SYMBOL_TABLE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"

namespace stagedb::catalog {

/// Thread-safe identifier interning with lookup statistics (the lookup
/// counters feed the Table 1 reference-classification experiment).
class SymbolTable {
 public:
  /// Returns a stable id for `name`, inserting it on first sight.
  int32_t Intern(const std::string& name);

  /// Returns the id or -1 without inserting.
  int32_t Lookup(const std::string& name) const;

  const std::string& NameOf(int32_t id) const;

  size_t size() const;
  int64_t lookups() const { return lookups_; }
  int64_t hits() const { return hits_; }

 private:
  mutable Mutex mu_;
  std::unordered_map<std::string, int32_t> ids_ GUARDED_BY(mu_);
  std::vector<std::string> names_ GUARDED_BY(mu_);
  mutable int64_t lookups_ GUARDED_BY(mu_) = 0;
  mutable int64_t hits_ GUARDED_BY(mu_) = 0;
};

}  // namespace stagedb::catalog

#endif  // STAGEDB_CATALOG_SYMBOL_TABLE_H_
