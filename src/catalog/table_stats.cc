#include "catalog/table_stats.h"

#include <algorithm>

namespace stagedb::catalog {

void TableStats::RecordInsert(const Tuple& tuple) {
  ++row_count_;
  if (hashes_.size() != columns_.size()) hashes_.resize(columns_.size());
  for (size_t i = 0; i < columns_.size() && i < tuple.size(); ++i) {
    ColumnStats& cs = columns_[i];
    const Value& v = tuple[i];
    if (v.is_null()) {
      ++cs.num_nulls;
      continue;
    }
    if (cs.min.is_null() || v.Compare(cs.min) < 0) cs.min = v;
    if (cs.max.is_null() || v.Compare(cs.max) > 0) cs.max = v;
    auto& set = hashes_[i];
    if (set.size() < kNdvCap) {
      set.insert(v.Hash());
      cs.num_distinct = static_cast<int64_t>(set.size());
    }
  }
}

void TableStats::Reset() {
  row_count_ = 0;
  const size_t n = columns_.size();
  columns_.assign(n, ColumnStats{});
  hashes_.assign(n, {});
}

double TableStats::EqSelectivity(size_t i) const {
  const ColumnStats& cs = columns_.at(i);
  if (cs.num_distinct <= 0) return 0.1;
  return 1.0 / static_cast<double>(cs.num_distinct);
}

double TableStats::RangeSelectivity(size_t i, const Value& lo,
                                    const Value& hi) const {
  const ColumnStats& cs = columns_.at(i);
  if (cs.min.is_null() || cs.max.is_null()) return 1.0 / 3.0;
  const double span = cs.max.AsDouble() - cs.min.AsDouble();
  if (span <= 0) return 1.0;
  double a = lo.is_null() ? cs.min.AsDouble() : lo.AsDouble();
  double b = hi.is_null() ? cs.max.AsDouble() : hi.AsDouble();
  a = std::max(a, cs.min.AsDouble());
  b = std::min(b, cs.max.AsDouble());
  if (b < a) return 0.0;
  return std::clamp((b - a) / span, 0.0, 1.0);
}

}  // namespace stagedb::catalog
