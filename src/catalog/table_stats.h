// Per-table statistics used by the optimizer's cost model.
#ifndef STAGEDB_CATALOG_TABLE_STATS_H_
#define STAGEDB_CATALOG_TABLE_STATS_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "catalog/tuple.h"

namespace stagedb::catalog {

/// Min/max/NDV estimate for one column.
struct ColumnStats {
  Value min;
  Value max;
  int64_t num_distinct = 0;
  int64_t num_nulls = 0;
};

/// Statistics maintained incrementally on insert (and rebuilt by Analyze).
class TableStats {
 public:
  explicit TableStats(size_t num_columns) : columns_(num_columns) {}

  void RecordInsert(const Tuple& tuple);
  void RecordDelete() { if (row_count_ > 0) --row_count_; }
  void Reset();

  int64_t row_count() const { return row_count_; }
  const ColumnStats& column(size_t i) const { return columns_.at(i); }
  size_t num_columns() const { return columns_.size(); }

  /// Selectivity estimate for an equality predicate on column i.
  double EqSelectivity(size_t i) const;
  /// Selectivity estimate for a range predicate covering `fraction` of the
  /// [min,max] span of column i (numeric only; 1/3 fallback otherwise).
  double RangeSelectivity(size_t i, const Value& lo, const Value& hi) const;

 private:
  int64_t row_count_ = 0;
  std::vector<ColumnStats> columns_;
  // Exact NDV tracking is bounded; beyond the cap we stop growing the set and
  // keep the count (documented approximation).
  static constexpr size_t kNdvCap = 100000;
  std::vector<std::unordered_set<size_t>> hashes_ =
      std::vector<std::unordered_set<size_t>>();
};

}  // namespace stagedb::catalog

#endif  // STAGEDB_CATALOG_TABLE_STATS_H_
