#include "catalog/tuple.h"

#include <cstring>

#include "common/string_util.h"

namespace stagedb::catalog {

namespace {
template <typename T>
void AppendRaw(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(T));
}
template <typename T>
bool ReadRaw(std::string_view* in, T* v) {
  if (in->size() < sizeof(T)) return false;
  std::memcpy(v, in->data(), sizeof(T));
  in->remove_prefix(sizeof(T));
  return true;
}
}  // namespace

std::string EncodeTuple(const Schema& schema, const Tuple& tuple) {
  std::string out;
  const size_t n = schema.num_columns();
  // Null bitmap, one byte per 8 columns.
  std::string bitmap((n + 7) / 8, '\0');
  for (size_t i = 0; i < n; ++i) {
    if (i < tuple.size() && tuple[i].is_null()) {
      bitmap[i / 8] |= static_cast<char>(1u << (i % 8));
    }
  }
  out += bitmap;
  for (size_t i = 0; i < n; ++i) {
    const Value& v = i < tuple.size() ? tuple[i] : Value::Null();
    if (v.is_null()) continue;
    switch (schema.column(i).type) {
      case TypeId::kBool:
        AppendRaw<uint8_t>(&out, v.bool_value() ? 1 : 0);
        break;
      case TypeId::kInt64:
        AppendRaw<int64_t>(&out, v.int_value());
        break;
      case TypeId::kDouble:
        AppendRaw<double>(&out, v.double_value());
        break;
      case TypeId::kVarchar: {
        const std::string& s = v.varchar_value();
        AppendRaw<uint32_t>(&out, static_cast<uint32_t>(s.size()));
        out += s;
        break;
      }
      default:
        break;
    }
  }
  return out;
}

StatusOr<Tuple> DecodeTuple(const Schema& schema, std::string_view bytes) {
  const size_t n = schema.num_columns();
  const size_t bitmap_len = (n + 7) / 8;
  if (bytes.size() < bitmap_len) {
    return Status::Corruption("tuple shorter than null bitmap");
  }
  std::string_view bitmap = bytes.substr(0, bitmap_len);
  bytes.remove_prefix(bitmap_len);
  Tuple tuple(n);
  for (size_t i = 0; i < n; ++i) {
    const bool null = (bitmap[i / 8] >> (i % 8)) & 1;
    if (null) {
      tuple[i] = Value::Null();
      continue;
    }
    switch (schema.column(i).type) {
      case TypeId::kBool: {
        uint8_t b;
        if (!ReadRaw(&bytes, &b)) return Status::Corruption("truncated bool");
        tuple[i] = Value::Bool(b != 0);
        break;
      }
      case TypeId::kInt64: {
        int64_t v;
        if (!ReadRaw(&bytes, &v)) return Status::Corruption("truncated int");
        tuple[i] = Value::Int(v);
        break;
      }
      case TypeId::kDouble: {
        double v;
        if (!ReadRaw(&bytes, &v)) return Status::Corruption("truncated double");
        tuple[i] = Value::Double(v);
        break;
      }
      case TypeId::kVarchar: {
        uint32_t len;
        if (!ReadRaw(&bytes, &len) || bytes.size() < len) {
          return Status::Corruption("truncated varchar");
        }
        tuple[i] = Value::Varchar(std::string(bytes.substr(0, len)));
        bytes.remove_prefix(len);
        break;
      }
      default:
        return Status::Corruption("unknown column type");
    }
  }
  return tuple;
}

std::string TupleToString(const Tuple& tuple) {
  std::vector<std::string> parts;
  parts.reserve(tuple.size());
  for (const Value& v : tuple) parts.push_back(v.ToString());
  return "(" + StrJoin(parts, ", ") + ")";
}

}  // namespace stagedb::catalog
