// Tuples and their on-page serialization.
#ifndef STAGEDB_CATALOG_TUPLE_H_
#define STAGEDB_CATALOG_TUPLE_H_

#include <string>
#include <vector>

#include "catalog/schema.h"
#include "catalog/value.h"
#include "common/status.h"

namespace stagedb::catalog {

/// A row: one Value per schema column.
using Tuple = std::vector<Value>;

/// Serializes a tuple for storage in a heap-file record. The encoding is a
/// null bitmap followed by fixed-width values and length-prefixed varchars.
std::string EncodeTuple(const Schema& schema, const Tuple& tuple);

/// Inverse of EncodeTuple.
StatusOr<Tuple> DecodeTuple(const Schema& schema, std::string_view bytes);

/// Human-readable row rendering ("(1, foo, 2.5)").
std::string TupleToString(const Tuple& tuple);

}  // namespace stagedb::catalog

#endif  // STAGEDB_CATALOG_TUPLE_H_
