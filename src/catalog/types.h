// SQL type system.
#ifndef STAGEDB_CATALOG_TYPES_H_
#define STAGEDB_CATALOG_TYPES_H_

#include <cstdint>
#include <string>

namespace stagedb::catalog {

enum class TypeId : uint8_t {
  kNull = 0,
  kBool,
  kInt64,
  kDouble,
  kVarchar,
};

inline const char* TypeName(TypeId t) {
  switch (t) {
    case TypeId::kNull:
      return "NULL";
    case TypeId::kBool:
      return "BOOLEAN";
    case TypeId::kInt64:
      return "INTEGER";
    case TypeId::kDouble:
      return "DOUBLE";
    case TypeId::kVarchar:
      return "VARCHAR";
  }
  return "?";
}

/// True if a value of type `from` may be used where `to` is expected.
inline bool TypesCompatible(TypeId from, TypeId to) {
  if (from == to) return true;
  if (from == TypeId::kNull || to == TypeId::kNull) return true;
  // Numeric widening.
  if (from == TypeId::kInt64 && to == TypeId::kDouble) return true;
  if (from == TypeId::kDouble && to == TypeId::kInt64) return true;
  return false;
}

}  // namespace stagedb::catalog

#endif  // STAGEDB_CATALOG_TYPES_H_
