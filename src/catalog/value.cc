#include "catalog/value.h"

#include <cmath>

#include "common/string_util.h"

namespace stagedb::catalog {

int Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  // Numeric cross-type comparison.
  const bool numeric =
      (type_ == TypeId::kInt64 || type_ == TypeId::kDouble) &&
      (other.type_ == TypeId::kInt64 || other.type_ == TypeId::kDouble);
  if (numeric) {
    if (type_ == TypeId::kInt64 && other.type_ == TypeId::kInt64) {
      return int_ < other.int_ ? -1 : (int_ > other.int_ ? 1 : 0);
    }
    const double a = AsDouble(), b = other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (type_ != other.type_) {
    // Total order across types for sorting stability.
    return static_cast<int>(type_) < static_cast<int>(other.type_) ? -1 : 1;
  }
  switch (type_) {
    case TypeId::kBool:
      return bool_ == other.bool_ ? 0 : (bool_ ? 1 : -1);
    case TypeId::kVarchar: {
      const int c = str_.compare(other.str_);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default:
      return 0;
  }
}

size_t Value::Hash() const {
  switch (type_) {
    case TypeId::kNull:
      return 0x9ddfea08eb382d69ULL;
    case TypeId::kBool:
      return bool_ ? 1231 : 1237;
    case TypeId::kInt64:
      return std::hash<int64_t>()(int_);
    case TypeId::kDouble: {
      // Hash doubles that equal an integer identically to that integer so
      // cross-type equality keys collide as required.
      const double d = double_;
      if (d == std::floor(d) && std::abs(d) < 9.2e18) {
        return std::hash<int64_t>()(static_cast<int64_t>(d));
      }
      return std::hash<double>()(d);
    }
    case TypeId::kVarchar:
      return std::hash<std::string>()(str_);
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type_) {
    case TypeId::kNull:
      return "NULL";
    case TypeId::kBool:
      return bool_ ? "true" : "false";
    case TypeId::kInt64:
      return std::to_string(int_);
    case TypeId::kDouble:
      return StrFormat("%g", double_);
    case TypeId::kVarchar:
      return str_;
  }
  return "?";
}

}  // namespace stagedb::catalog
