// Runtime values: the cells of tuples flowing between operators.
#ifndef STAGEDB_CATALOG_VALUE_H_
#define STAGEDB_CATALOG_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>

#include "catalog/types.h"
#include "common/status.h"

namespace stagedb::catalog {

/// A dynamically typed SQL value. Small and copyable; VARCHARs own their
/// bytes.
class Value {
 public:
  Value() : type_(TypeId::kNull) {}
  static Value Null() { return Value(); }
  static Value Bool(bool b) {
    Value v;
    v.type_ = TypeId::kBool;
    v.bool_ = b;
    return v;
  }
  static Value Int(int64_t i) {
    Value v;
    v.type_ = TypeId::kInt64;
    v.int_ = i;
    return v;
  }
  static Value Double(double d) {
    Value v;
    v.type_ = TypeId::kDouble;
    v.double_ = d;
    return v;
  }
  static Value Varchar(std::string s) {
    Value v;
    v.type_ = TypeId::kVarchar;
    v.str_ = std::move(s);
    return v;
  }

  TypeId type() const { return type_; }
  bool is_null() const { return type_ == TypeId::kNull; }

  bool bool_value() const { return bool_; }
  int64_t int_value() const { return int_; }
  double double_value() const { return double_; }
  const std::string& varchar_value() const { return str_; }

  /// Numeric view (ints widen to double); 0 for non-numeric.
  double AsDouble() const {
    if (type_ == TypeId::kInt64) return static_cast<double>(int_);
    if (type_ == TypeId::kDouble) return double_;
    return 0.0;
  }

  /// Three-way comparison; values must be of comparable types. Nulls compare
  /// less than everything (used only for sorting; SQL comparisons against
  /// NULL yield false at the expression level).
  int Compare(const Value& other) const;

  bool operator==(const Value& o) const { return Compare(o) == 0; }
  bool operator<(const Value& o) const { return Compare(o) < 0; }

  /// Hash consistent with operator== (for hash joins and aggregation).
  size_t Hash() const;

  std::string ToString() const;

 private:
  TypeId type_;
  union {
    bool bool_;
    int64_t int_ = 0;
    double double_;
  };
  std::string str_;
};

}  // namespace stagedb::catalog

#endif  // STAGEDB_CATALOG_VALUE_H_
