// Clang thread-safety-analysis (CTSA) annotation macros.
//
// The staged design's locking discipline — per-stage runtime mutexes,
// park/wake handshakes, bottom-up activation — is exactly the kind of
// invariant that should be stated in the type system instead of rediscovered
// by TSan one race at a time. These macros let a class declare which mutex
// guards which field (GUARDED_BY), which private helpers expect a lock held
// (REQUIRES), and which functions acquire/release capabilities
// (ACQUIRE/RELEASE), all checked at compile time by Clang's
// -Wthread-safety analysis. docs/DESIGN.md §11 documents the lock hierarchy
// and how to annotate new code.
//
// Under compilers without the attribute (GCC builds, which this repo's
// default toolchain uses) every macro expands to nothing, so the annotations
// are zero-cost documentation there; the CI static-analysis leg builds with
// Clang and -Werror=thread-safety to enforce them.
#ifndef STAGEDB_COMMON_ANNOTATIONS_H_
#define STAGEDB_COMMON_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define STAGEDB_HAS_THREAD_ATTR_(x) __has_attribute(x)
#else
#define STAGEDB_HAS_THREAD_ATTR_(x) 0
#endif

#if STAGEDB_HAS_THREAD_ATTR_(capability)
#define STAGEDB_THREAD_ATTR_(x) __attribute__((x))
#else
#define STAGEDB_THREAD_ATTR_(x)
#endif

/// Declares a class to be a lockable capability ("mutex", "shared mutex").
#define CAPABILITY(x) STAGEDB_THREAD_ATTR_(capability(x))

/// Declares an RAII class whose constructor acquires and destructor releases
/// a capability.
#define SCOPED_CAPABILITY STAGEDB_THREAD_ATTR_(scoped_lockable)

/// Field may only be read or written while `x` is held.
#define GUARDED_BY(x) STAGEDB_THREAD_ATTR_(guarded_by(x))

/// Pointer field: the *pointee* may only be accessed while `x` is held.
#define PT_GUARDED_BY(x) STAGEDB_THREAD_ATTR_(pt_guarded_by(x))

/// Function requires the listed capabilities held on entry (and does not
/// release them).
#define REQUIRES(...) \
  STAGEDB_THREAD_ATTR_(requires_capability(__VA_ARGS__))

/// Function requires the listed capabilities held in shared mode.
#define REQUIRES_SHARED(...) \
  STAGEDB_THREAD_ATTR_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (exclusively) and holds it on return.
#define ACQUIRE(...) STAGEDB_THREAD_ATTR_(acquire_capability(__VA_ARGS__))

/// Function acquires the capability in shared mode.
#define ACQUIRE_SHARED(...) \
  STAGEDB_THREAD_ATTR_(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (exclusive or shared).
#define RELEASE(...) STAGEDB_THREAD_ATTR_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  STAGEDB_THREAD_ATTR_(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  STAGEDB_THREAD_ATTR_(release_generic_capability(__VA_ARGS__))

/// Function attempts to acquire; first argument is the success return value.
#define TRY_ACQUIRE(...) \
  STAGEDB_THREAD_ATTR_(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  STAGEDB_THREAD_ATTR_(try_acquire_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (non-reentrancy; deadlock
/// prevention on self-locking public entry points).
#define EXCLUDES(...) STAGEDB_THREAD_ATTR_(locks_excluded(__VA_ARGS__))

/// Declares a runtime assertion that the capability is held (e.g. a helper
/// reached only from locked contexts that the analysis cannot follow).
#define ASSERT_CAPABILITY(x) STAGEDB_THREAD_ATTR_(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  STAGEDB_THREAD_ATTR_(assert_shared_capability(x))

/// Function returns a reference to the capability that guards its result.
#define RETURN_CAPABILITY(x) STAGEDB_THREAD_ATTR_(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment saying why the analysis cannot model the code.
#define NO_THREAD_SAFETY_ANALYSIS \
  STAGEDB_THREAD_ATTR_(no_thread_safety_analysis)

#endif  // STAGEDB_COMMON_ANNOTATIONS_H_
