// Real and virtual clocks. All engine code takes time through the Clock
// interface so that experiments can run in deterministic virtual time.
#ifndef STAGEDB_COMMON_CLOCK_H_
#define STAGEDB_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

namespace stagedb {

/// Abstract monotonic clock in microseconds.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in microseconds since an arbitrary epoch.
  virtual int64_t NowMicros() const = 0;
  /// Sleeps (really or virtually) for the given number of microseconds.
  virtual void SleepMicros(int64_t micros) = 0;
};

/// Wall-clock implementation backed by steady_clock.
class RealClock : public Clock {
 public:
  static RealClock* Instance() {
    static RealClock clock;
    return &clock;
  }
  int64_t NowMicros() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
  void SleepMicros(int64_t micros) override {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
};

/// Manually advanced clock for deterministic simulation. SleepMicros advances
/// time immediately (single-threaded simulation semantics).
class VirtualClock : public Clock {
 public:
  int64_t NowMicros() const override {
    return now_.load(std::memory_order_relaxed);
  }
  void SleepMicros(int64_t micros) override { Advance(micros); }
  void Advance(int64_t micros) {
    now_.fetch_add(micros, std::memory_order_relaxed);
  }
  void Set(int64_t micros) { now_.store(micros, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> now_{0};
};

}  // namespace stagedb

#endif  // STAGEDB_COMMON_CLOCK_H_
