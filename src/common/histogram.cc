#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace stagedb {

Histogram::Histogram() : buckets_(kNumBuckets, 0) { Reset(); }

void Histogram::Reset() {
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
  std::fill(buckets_.begin(), buckets_.end(), 0);
}

double Histogram::BucketLimit(int b) {
  // Buckets grow ~10% geometrically starting at 1.0; bucket 0 holds [0, 1).
  if (b == 0) return 1.0;
  return std::pow(1.15, b);
}

int Histogram::BucketFor(double value) {
  if (value < 1.0) return 0;
  int b = static_cast<int>(std::log(value) / std::log(1.15)) + 1;
  if (b >= kNumBuckets) b = kNumBuckets - 1;
  return b;
}

void Histogram::Record(double value) {
  if (value < 0) value = 0;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[BucketFor(value)];
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
}

double Histogram::Percentile(double p) const {
  // Semantics: p <= 0 is the recorded minimum, p >= 100 the recorded
  // maximum, and an empty histogram reports 0 for any p. In between, the
  // p-th percentile interpolates linearly inside the bucket containing the
  // ceil(count * p/100)-th recorded value (1-based).
  if (count_ == 0) return 0.0;
  if (p <= 0.0) return min_;
  if (p >= 100.0) return max_;
  // Clamp into [1, count_]: the old code let a threshold of 0 reach the
  // bucket walk, where `buckets_[b] - (cumulative - threshold)` underflowed
  // its unsigned arithmetic for any bucket the cumulative count had already
  // passed, and only the final clamp hid the garbage.
  uint64_t threshold = static_cast<uint64_t>(std::ceil(count_ * (p / 100.0)));
  threshold = std::clamp<uint64_t>(threshold, 1, count_);
  uint64_t cumulative = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    cumulative += buckets_[b];
    if (cumulative < threshold) continue;
    // First bucket reaching the threshold: `cumulative - threshold` is in
    // [0, buckets_[b] - 1] (the previous cumulative was < threshold), so
    // `into` is in [1, buckets_[b]] — no underflow.
    const uint64_t into = buckets_[b] - (cumulative - threshold);
    // Interpolate inside the bucket, but within the observed value range:
    // the first bucket starts at min_, the last ends at max_, so a
    // single-value histogram reports that value for every percentile.
    const double lo = std::max((b == 0) ? 0.0 : BucketLimit(b - 1), min_);
    const double hi = std::min(BucketLimit(b), max_);
    if (hi <= lo) return std::clamp(lo, min_, max_);
    const double frac = static_cast<double>(into) / buckets_[b];
    return std::clamp(lo + (hi - lo) * frac, min_, max_);
  }
  return max_;
}

std::string Histogram::ToString() const {
  // The accessors (not the raw fields) guard the count_ == 0 case, where
  // min_/max_ hold stale or zero-initialized values.
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f",
                static_cast<unsigned long long>(count_), Mean(),
                Percentile(50), Percentile(95), Percentile(99), max());
  return buf;
}

}  // namespace stagedb
