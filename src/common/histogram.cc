#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace stagedb {

Histogram::Histogram() : buckets_(kNumBuckets, 0) { Reset(); }

void Histogram::Reset() {
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
  std::fill(buckets_.begin(), buckets_.end(), 0);
}

double Histogram::BucketLimit(int b) {
  // Buckets grow ~10% geometrically starting at 1.0; bucket 0 holds [0, 1).
  if (b == 0) return 1.0;
  return std::pow(1.15, b);
}

int Histogram::BucketFor(double value) {
  if (value < 1.0) return 0;
  int b = static_cast<int>(std::log(value) / std::log(1.15)) + 1;
  if (b >= kNumBuckets) b = kNumBuckets - 1;
  return b;
}

void Histogram::Record(double value) {
  if (value < 0) value = 0;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[BucketFor(value)];
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  const uint64_t threshold =
      static_cast<uint64_t>(std::ceil(count_ * (p / 100.0)));
  uint64_t cumulative = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    cumulative += buckets_[b];
    if (cumulative >= threshold && buckets_[b] > 0) {
      const double lo = (b == 0) ? 0.0 : BucketLimit(b - 1);
      const double hi = BucketLimit(b);
      const uint64_t into = buckets_[b] - (cumulative - threshold);
      const double frac = static_cast<double>(into) / buckets_[b];
      double v = lo + (hi - lo) * frac;
      return std::clamp(v, min_, max_);
    }
  }
  return max_;
}

std::string Histogram::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f",
                static_cast<unsigned long long>(count_), Mean(),
                Percentile(50), Percentile(95), Percentile(99), max());
  return buf;
}

}  // namespace stagedb
