// Streaming histogram for latency/throughput metrics (per-stage monitoring).
#ifndef STAGEDB_COMMON_HISTOGRAM_H_
#define STAGEDB_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace stagedb {

/// Fixed-bucket log-scale histogram. Records non-negative values (typically
/// microseconds). Thread-compatible: callers synchronize externally or use one
/// histogram per thread and Merge().
class Histogram {
 public:
  Histogram();

  void Record(double value);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double Mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  /// Approximate percentile by linear interpolation inside the containing
  /// bucket, bounded by the observed min/max. Defined boundary semantics:
  /// p <= 0 returns min(), p >= 100 returns max(), and an empty histogram
  /// returns 0 for any p.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  /// One-line summary: count/mean/p50/p95/p99/max.
  std::string ToString() const;

 private:
  static constexpr int kNumBuckets = 154;
  static double BucketLimit(int b);
  static int BucketFor(double value);

  uint64_t count_;
  double sum_;
  double min_;
  double max_;
  std::vector<uint64_t> buckets_;
};

}  // namespace stagedb

#endif  // STAGEDB_COMMON_HISTOGRAM_H_
