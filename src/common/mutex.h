// Annotated synchronization primitives: the only mutex/condvar types the
// tree may use (tools/lint_stages.py rejects raw std::mutex /
// std::condition_variable outside this header).
//
// These are thin wrappers over std::mutex / std::shared_mutex /
// std::condition_variable that carry Clang thread-safety-analysis
// capabilities (common/annotations.h), so `GUARDED_BY(mu_)` fields and
// `REQUIRES(mu_)` helpers are machine-checked by the -Wthread-safety CI
// leg. Zero overhead: every method is an inline forward.
#ifndef STAGEDB_COMMON_MUTEX_H_
#define STAGEDB_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/annotations.h"

namespace stagedb {

class CondVar;

/// Exclusive mutex capability. Prefer MutexLock for scoped holds; Lock /
/// Unlock exist for the rare hand-over-hand or adopt patterns.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { raw_.lock(); }
  void Unlock() RELEASE() { raw_.unlock(); }
  [[nodiscard]] bool TryLock() TRY_ACQUIRE(true) { return raw_.try_lock(); }

  /// Documents (to the analysis) that this mutex is held on paths it cannot
  /// follow. No runtime effect.
  void AssertHeld() const ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex raw_;
};

/// Reader/writer mutex capability (page latches).
class CAPABILITY("shared mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { raw_.lock(); }
  void Unlock() RELEASE() { raw_.unlock(); }
  void LockShared() ACQUIRE_SHARED() { raw_.lock_shared(); }
  void UnlockShared() RELEASE_SHARED() { raw_.unlock_shared(); }

 private:
  std::shared_mutex raw_;
};

/// RAII exclusive hold of a Mutex. Supports mid-scope Unlock()/Lock()
/// (the commit-stage flush pattern: drop the window lock around the fsync,
/// retake it to complete tickets); the destructor releases only if held.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.Lock();
  }
  ~MutexLock() RELEASE() {
    if (held_) mu_.Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases early (must be held). The destructor becomes a no-op until a
  /// matching Lock().
  void Unlock() RELEASE() {
    held_ = false;
    mu_.Unlock();
  }
  /// Retakes after an early Unlock (must not be held).
  void Lock() ACQUIRE() {
    mu_.Lock();
    held_ = true;
  }

 private:
  friend class CondVar;
  Mutex& mu_;
  bool held_;
};

/// RAII shared (reader) hold of a SharedMutex.
class SCOPED_CAPABILITY SharedLock {
 public:
  explicit SharedLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~SharedLock() RELEASE_GENERIC() { mu_.UnlockShared(); }

  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII exclusive (writer) hold of a SharedMutex.
class SCOPED_CAPABILITY ExclusiveLock {
 public:
  explicit ExclusiveLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~ExclusiveLock() RELEASE() { mu_.Unlock(); }

  ExclusiveLock(const ExclusiveLock&) = delete;
  ExclusiveLock& operator=(const ExclusiveLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to common::Mutex. Every wait takes the Mutex the
/// caller holds; to the analysis the mutex stays held across the wait (the
/// standard CTSA treatment — the wait releases and reacquires internally).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.raw_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();
  }

  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.raw_, std::adopt_lock);
    cv_.wait(lk, std::move(pred));
    lk.release();
  }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& d)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.raw_, std::adopt_lock);
    std::cv_status st = cv_.wait_for(lk, d);
    lk.release();
    return st;
  }

  template <typename Rep, typename Period, typename Pred>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& d,
               Pred pred) REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.raw_, std::adopt_lock);
    bool ok = cv_.wait_for(lk, d, std::move(pred));
    lk.release();
    return ok;
  }

  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(Mutex& mu,
                           const std::chrono::time_point<Clock, Duration>& tp)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.raw_, std::adopt_lock);
    std::cv_status st = cv_.wait_until(lk, tp);
    lk.release();
    return st;
  }

  template <typename Clock, typename Duration, typename Pred>
  bool WaitUntil(Mutex& mu,
                 const std::chrono::time_point<Clock, Duration>& tp, Pred pred)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.raw_, std::adopt_lock);
    bool ok = cv_.wait_until(lk, tp, std::move(pred));
    lk.release();
    return ok;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace stagedb

#endif  // STAGEDB_COMMON_MUTEX_H_
