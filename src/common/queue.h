// Bounded and unbounded MPMC blocking queues used for stage-to-stage packet
// flow (back-pressure comes from the bounded variant).
#ifndef STAGEDB_COMMON_QUEUE_H_
#define STAGEDB_COMMON_QUEUE_H_

#include <deque>
#include <optional>

#include "common/mutex.h"

namespace stagedb {

/// A bounded multi-producer multi-consumer blocking queue.
///
/// Enqueue blocks while the queue is at capacity (this is the back-pressure
/// mechanism of the staged design: a full downstream queue suspends the
/// upstream producer). Close() wakes all waiters; subsequent Dequeue calls
/// drain remaining items and then return std::nullopt.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is room (or the queue is closed). Returns false if the
  /// queue was closed before the item could be inserted.
  bool Enqueue(T item) {
    MutexLock lock(mu_);
    not_full_.Wait(mu_, [&]() REQUIRES(mu_) {
      return closed_ || items_.size() < capacity_;
    });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.NotifyOne();
    return true;
  }

  /// Non-blocking enqueue. Returns false if full or closed.
  [[nodiscard]] bool TryEnqueue(T item) {
    MutexLock lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.NotifyOne();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> Dequeue() {
    MutexLock lock(mu_);
    not_empty_.Wait(mu_, [&]() REQUIRES(mu_) {
      return closed_ || !items_.empty();
    });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.NotifyOne();
    return item;
  }

  /// Non-blocking dequeue.
  std::optional<T> TryDequeue() {
    MutexLock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.NotifyOne();
    return item;
  }

  /// Closes the queue: producers fail, consumers drain then see nullopt.
  void Close() {
    MutexLock lock(mu_);
    closed_ = true;
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  bool closed() const {
    MutexLock lock(mu_);
    return closed_;
  }

  size_t size() const {
    MutexLock lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  bool empty() const { return size() == 0; }

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace stagedb

#endif  // STAGEDB_COMMON_QUEUE_H_
