// Bounded and unbounded MPMC blocking queues used for stage-to-stage packet
// flow (back-pressure comes from the bounded variant).
#ifndef STAGEDB_COMMON_QUEUE_H_
#define STAGEDB_COMMON_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace stagedb {

/// A bounded multi-producer multi-consumer blocking queue.
///
/// Enqueue blocks while the queue is at capacity (this is the back-pressure
/// mechanism of the staged design: a full downstream queue suspends the
/// upstream producer). Close() wakes all waiters; subsequent Dequeue calls
/// drain remaining items and then return std::nullopt.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is room (or the queue is closed). Returns false if the
  /// queue was closed before the item could be inserted.
  bool Enqueue(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking enqueue. Returns false if full or closed.
  bool TryEnqueue(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> Dequeue() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking dequeue.
  std::optional<T> TryDequeue() {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Closes the queue: producers fail, consumers drain then see nullopt.
  void Close() {
    std::unique_lock<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::unique_lock<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::unique_lock<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

  bool empty() const { return size() == 0; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace stagedb

#endif  // STAGEDB_COMMON_QUEUE_H_
