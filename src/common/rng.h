// Deterministic pseudo-random generation for workloads and simulations.
#ifndef STAGEDB_COMMON_RNG_H_
#define STAGEDB_COMMON_RNG_H_

#include <cassert>
#include <cmath>
#include <cstdint>

namespace stagedb {

/// xoshiro256** — fast, high-quality, seedable PRNG. Experiments use fixed
/// seeds so every figure in EXPERIMENTS.md is reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the four lanes.
    for (int i = 0; i < 4; ++i) {
      seed += 0x9e3779b97f4a7c15ULL;
      uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s_[i] = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n).
  uint64_t Uniform(uint64_t n) {
    assert(n > 0);
    return Next() % n;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo +
           static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * (1.0 / 9007199254740992.0); }

  /// Exponentially distributed sample with the given mean.
  double Exponential(double mean) {
    double u = NextDouble();
    if (u <= 0.0) u = 1e-18;
    return -mean * std::log(u);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace stagedb

#endif  // STAGEDB_COMMON_RNG_H_
