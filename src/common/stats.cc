#include "common/stats.h"

#include <sstream>

namespace stagedb {

Counter* StatsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Histogram* StatsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::map<std::string, int64_t> StatsRegistry::CounterSnapshot() const {
  MutexLock lock(mu_);
  std::map<std::string, int64_t> out;
  for (const auto& [name, counter] : counters_) out[name] = counter->value();
  return out;
}

std::string StatsRegistry::Report() const {
  MutexLock lock(mu_);
  std::ostringstream os;
  for (const auto& [name, counter] : counters_) {
    os << name << " = " << counter->value() << "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    os << name << " : " << hist->ToString() << "\n";
  }
  return os.str();
}

void StatsRegistry::ResetAll() {
  MutexLock lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

}  // namespace stagedb
