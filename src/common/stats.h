// Named counters and per-stage statistics: the monitoring hooks that §5.2 of
// the paper argues a staged design makes natural to expose.
#ifndef STAGEDB_COMMON_STATS_H_
#define STAGEDB_COMMON_STATS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/mutex.h"

namespace stagedb {

/// A monotonically increasing counter. Thread-safe.
class Counter {
 public:
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Registry of named counters and histograms. One registry per server; stages
/// register their queue/throughput/latency metrics here so that monitoring
/// tools can introspect utilization at stage granularity.
class StatsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Snapshot of all counters (name -> value).
  std::map<std::string, int64_t> CounterSnapshot() const;
  /// Multi-line human-readable dump of all metrics.
  std::string Report() const;
  void ResetAll();

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mu_);
};

}  // namespace stagedb

#endif  // STAGEDB_COMMON_STATS_H_
