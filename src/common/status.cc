#include "common/status.h"

namespace stagedb {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace stagedb
