// Status and StatusOr: error handling without exceptions, in the style used by
// production database engines (LevelDB/RocksDB/Arrow).
#ifndef STAGEDB_COMMON_STATUS_H_
#define STAGEDB_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace stagedb {

/// Error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kIOError,
  kCorruption,
  kNotSupported,
  kResourceExhausted,
  kAborted,
  kTimedOut,
  kInternal,
};

/// Returns a short human-readable name for a StatusCode ("Ok", "IOError", ...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error result. Cheap to copy on success (no allocation).
/// [[nodiscard]] on the class makes a silently dropped error at any call
/// site returning Status by value a compiler warning (an error under
/// STAGED_DB_WERROR); discard deliberately with a named variable, never a
/// bare call.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status IOError(std::string m) {
    return Status(StatusCode::kIOError, std::move(m));
  }
  static Status Corruption(std::string m) {
    return Status(StatusCode::kCorruption, std::move(m));
  }
  static Status NotSupported(std::string m) {
    return Status(StatusCode::kNotSupported, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Aborted(std::string m) {
    return Status(StatusCode::kAborted, std::move(m));
  }
  static Status TimedOut(std::string m) {
    return Status(StatusCode::kTimedOut, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// "Ok" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. [[nodiscard]] for the same
/// reason as Status: a dropped StatusOr is a dropped error.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() &&
           "StatusOr constructed from OK status without value");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace stagedb

/// Propagates a non-OK Status from an expression to the caller.
#define STAGEDB_RETURN_IF_ERROR(expr)             \
  do {                                            \
    ::stagedb::Status _st = (expr);               \
    if (!_st.ok()) return _st;                    \
  } while (0)

/// Evaluates a StatusOr expression; on error returns the Status, otherwise
/// assigns the value to `lhs`.
#define STAGEDB_ASSIGN_OR_RETURN(lhs, expr)       \
  auto STAGEDB_CONCAT_(_sor_, __LINE__) = (expr); \
  if (!STAGEDB_CONCAT_(_sor_, __LINE__).ok())     \
    return STAGEDB_CONCAT_(_sor_, __LINE__).status(); \
  lhs = std::move(STAGEDB_CONCAT_(_sor_, __LINE__)).value()

#define STAGEDB_CONCAT_INNER_(a, b) a##b
#define STAGEDB_CONCAT_(a, b) STAGEDB_CONCAT_INNER_(a, b)

#endif  // STAGEDB_COMMON_STATUS_H_
