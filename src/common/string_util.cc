#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace stagedb {

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int needed = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out(needed > 0 ? needed : 0, '\0');
  if (needed > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  va_end(ap2);
  return out;
}

std::vector<std::string> StrSplit(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string ToLower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::string ToUpper(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

std::string StrJoin(const std::vector<std::string>& items,
                    const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

}  // namespace stagedb
