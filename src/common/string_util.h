// Small string helpers (no std::format on this toolchain).
#ifndef STAGEDB_COMMON_STRING_UTIL_H_
#define STAGEDB_COMMON_STRING_UTIL_H_

#include <cstdarg>
#include <string>
#include <vector>

namespace stagedb {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits on a single character; keeps empty fields.
std::vector<std::string> StrSplit(const std::string& s, char sep);

/// ASCII lower-casing (SQL keywords are case-insensitive).
std::string ToLower(const std::string& s);
std::string ToUpper(const std::string& s);

/// True if `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// Joins items with a separator.
std::string StrJoin(const std::vector<std::string>& items,
                    const std::string& sep);

}  // namespace stagedb

#endif  // STAGEDB_COMMON_STRING_UTIL_H_
