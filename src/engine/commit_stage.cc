#include "engine/commit_stage.h"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "common/clock.h"

namespace stagedb::engine {

// ------------------------------------------------------------ CommitTicket --

Status CommitTicket::Wait() {
  MutexLock lock(mu_);
  cv_.Wait(mu_, [&]() REQUIRES(mu_) { return done_; });
  return status_;
}

int64_t CommitTicket::lsn() const {
  MutexLock lock(mu_);
  return lsn_;
}

void CommitTicket::Complete(int64_t lsn, Status status) {
  {
    MutexLock lock(mu_);
    done_ = true;
    lsn_ = lsn;
    status_ = std::move(status);
  }
  cv_.NotifyAll();
}

// -------------------------------------------------------- GroupCommitStage --

/// The stage's single long-lived packet. It parks (kBlocked) while no commit
/// is pending; Submit wakes it via Stage::Activate, and each Run() serves one
/// batch window.
class GroupCommitStage::FlushTask : public StageTask {
 public:
  explicit FlushTask(GroupCommitStage* owner) : owner_(owner) {}
  RunOutcome Run() override { return owner_->RunFlush(); }
  bool CanMakeProgress() override { return owner_->HasPending(); }

 private:
  GroupCommitStage* owner_;
};

GroupCommitStage::GroupCommitStage(StageRuntime* runtime,
                                   storage::WriteAheadLog* wal,
                                   Options options, StagePoolSpec pool)
    : wal_(wal), options_(options),
      stage_(runtime->CreateStage("commit", pool)),
      task_(std::make_unique<FlushTask>(this)) {}

GroupCommitStage::~GroupCommitStage() { Drain(); }

bool GroupCommitStage::HasPending() const {
  MutexLock lock(mu_);
  return !pending_.empty();
}

std::shared_ptr<CommitTicket> GroupCommitStage::Submit(int64_t txn_id,
                                                       int64_t commit_ts) {
  std::shared_ptr<CommitTicket> ticket(new CommitTicket(txn_id, commit_ts));
  ticket->arrival_micros_ = RealClock::Instance()->NowMicros();
  bool first = false;
  {
    MutexLock lock(mu_);
    if (draining_) {
      ticket->Complete(0, Status::Aborted("commit stage draining"));
      return ticket;
    }
    pending_.push_back(ticket);
    first = !task_enqueued_;
    task_enqueued_ = true;
  }
  // A full batch need not wait out the window.
  window_cv_.NotifyAll();
  if (first) {
    stage_->Enqueue(task_.get());
  } else {
    stage_->Activate(task_.get());
  }
  return ticket;
}

RunOutcome GroupCommitStage::RunFlush() {
  MutexLock lock(mu_);
  if (pending_.empty()) return RunOutcome::kBlocked;
  // Hold the window open until the batch fills, the oldest ticket has waited
  // max_wait_us, or a drain forces the flush. This wait is the "group" in
  // group commit: it trades a bounded latency add for fsync amortization.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(std::max<int64_t>(
          0, pending_.front()->arrival_micros_ + options_.max_wait_us -
                 RealClock::Instance()->NowMicros()));
  while (!draining_ &&
         static_cast<int>(pending_.size()) < options_.max_batch) {
    if (window_cv_.WaitUntil(mu_, deadline) == std::cv_status::timeout) {
      break;
    }
  }
  std::vector<std::shared_ptr<CommitTicket>> batch;
  const size_t take =
      std::min(pending_.size(), static_cast<size_t>(options_.max_batch));
  batch.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    batch.push_back(std::move(pending_.front()));
    pending_.pop_front();
  }
  flushing_ = true;
  lock.Unlock();

  const int64_t t0 = RealClock::Instance()->NowMicros();
  Status flush = Status::OK();
  std::vector<int64_t> lsns(batch.size(), 0);
  for (size_t i = 0; i < batch.size(); ++i) {
    storage::WalRecord r;
    r.txn_id = batch[i]->txn_id();
    r.type = storage::WalRecord::Type::kCommit;
    r.ts = batch[i]->commit_ts();
    auto lsn_or = wal_->Append(std::move(r));
    if (!lsn_or.ok()) {
      flush = lsn_or.status();
      break;
    }
    lsns[i] = *lsn_or;
  }
  if (flush.ok()) flush = wal_->Sync();
  const int64_t flush_us = RealClock::Instance()->NowMicros() - t0;
  // Counters update before the acks: a client whose Wait() returned must see
  // its own commit in counters().
  lock.Lock();
  commits_ += static_cast<int64_t>(batch.size());
  ++batches_;
  batch_size_.Record(static_cast<int64_t>(batch.size()));
  flush_micros_.Record(flush_us);
  lock.Unlock();
  // Ack ordering invariant: completions happen only after the Sync() barrier
  // and in LSN order (batch order == append order).
  for (size_t i = 0; i < batch.size(); ++i) {
    batch[i]->Complete(lsns[i], flush);
  }
  // flushing_ clears only after the acks, so Drain() (and with it the
  // destructor) cannot return while completions are still being delivered.
  lock.Lock();
  flushing_ = false;
  const bool more = !pending_.empty();
  lock.Unlock();
  drain_cv_.NotifyAll();
  return more ? RunOutcome::kYield : RunOutcome::kBlocked;
}

void GroupCommitStage::Drain() {
  {
    MutexLock lock(mu_);
    draining_ = true;
  }
  window_cv_.NotifyAll();
  MutexLock lock(mu_);
  while (!pending_.empty() || flushing_) {
    lock.Unlock();
    // The flush task may be parked (it blocked before the last Submit, or a
    // prior Run left pending work it was not re-activated for): poke it.
    stage_->Activate(task_.get());
    lock.Lock();
    drain_cv_.WaitFor(mu_, std::chrono::milliseconds(1));
  }
}

StageRuntime::GroupCommitCounters GroupCommitStage::counters() const {
  MutexLock lock(mu_);
  StageRuntime::GroupCommitCounters c;
  c.enabled = true;
  c.commits = commits_;
  c.batches = batches_;
  c.syncs = wal_->syncs();
  c.batch_size = batch_size_;
  c.flush_micros = flush_micros_;
  return c;
}

}  // namespace stagedb::engine
