// The group-commit stage: the staged design's answer to fsync cost.
//
// fsync is the most expensive syscall the engine issues, and a naive commit
// path pays it once per transaction. Group commit turns the commit point
// into a stage (§4.1: "a stage is an independent server with its own queue")
// whose packets are commit *tickets*: a committing client parks on its
// ticket while the stage's flush packet batches every ticket that arrived
// within the window — bounded by max_batch / max_wait_us — appends all their
// COMMIT records, issues ONE Sync() (fdatasync), and only then acks the
// tickets in LSN order. The ack-ordering invariant: a ticket is never
// completed before the Sync() that covers its COMMIT record returns, and
// tickets complete in the order their records entered the log.
#ifndef STAGEDB_ENGINE_COMMIT_STAGE_H_
#define STAGEDB_ENGINE_COMMIT_STAGE_H_

#include <cstdint>
#include <deque>
#include <memory>

#include "common/histogram.h"
#include "common/mutex.h"
#include "common/status.h"
#include "engine/runtime.h"
#include "storage/wal.h"

namespace stagedb::engine {

/// One commit in flight through the group-commit stage. Created by
/// GroupCommitStage::Submit; the committing thread blocks in Wait() until
/// the batch holding its COMMIT record is durable.
class CommitTicket {
 public:
  /// Blocks until the ticket's COMMIT record is synced (or the flush
  /// failed); returns the flush status.
  Status Wait();

  int64_t txn_id() const { return txn_id_; }
  /// MVCC commit timestamp carried into the COMMIT record (0 = none).
  int64_t commit_ts() const { return commit_ts_; }
  /// LSN of the COMMIT record (0 until flushed).
  int64_t lsn() const;

 private:
  friend class GroupCommitStage;
  CommitTicket(int64_t txn_id, int64_t commit_ts)
      : txn_id_(txn_id), commit_ts_(commit_ts) {}
  void Complete(int64_t lsn, Status status);

  const int64_t txn_id_;
  const int64_t commit_ts_;
  mutable Mutex mu_;
  CondVar cv_;
  bool done_ GUARDED_BY(mu_) = false;
  int64_t lsn_ GUARDED_BY(mu_) = 0;
  Status status_ GUARDED_BY(mu_);
  int64_t arrival_micros_ = 0;  // written by Submit, read by the flush loop
};

/// The stage itself. Rides a caller-provided StageRuntime (the engine's own
/// runtime in staged mode, so "commit" shows up beside fscan/join in the
/// stage table; a private free-run runtime in volcano mode).
class GroupCommitStage {
 public:
  struct Options {
    int max_batch = 64;       ///< flush when this many tickets are pending
    int64_t max_wait_us = 200;  ///< ... or when the oldest waited this long
  };

  /// Creates the "commit" stage on `runtime`. Must be called before the
  /// runtime serves its first packet (stage creation rule). `wal` must
  /// outlive this object.
  GroupCommitStage(StageRuntime* runtime, storage::WriteAheadLog* wal,
                   Options options, StagePoolSpec pool);
  ~GroupCommitStage();

  GroupCommitStage(const GroupCommitStage&) = delete;
  GroupCommitStage& operator=(const GroupCommitStage&) = delete;

  /// Submits txn `txn_id` for commit; the caller then blocks in
  /// ticket->Wait(). `commit_ts` (MVCC snapshot mode) is stamped on the
  /// COMMIT record so recovery can restore the timestamp high-water mark.
  /// Returns a completed ticket with an Aborted status if the stage is
  /// draining.
  std::shared_ptr<CommitTicket> Submit(int64_t txn_id, int64_t commit_ts = 0);

  /// Flushes every pending ticket and stops accepting new ones. Must be
  /// called before the owning runtime's Shutdown(); after Drain returns no
  /// flush work is in progress.
  void Drain();

  StageRuntime::GroupCommitCounters counters() const;
  Stage* stage() { return stage_; }

 private:
  class FlushTask;
  RunOutcome RunFlush();
  bool HasPending() const;

  storage::WriteAheadLog* const wal_;
  const Options options_;
  Stage* stage_;
  std::unique_ptr<FlushTask> task_;

  mutable Mutex mu_;
  CondVar window_cv_;  // wakes the window wait early
  CondVar drain_cv_;   // Drain waits for in-flight flushes
  std::deque<std::shared_ptr<CommitTicket>> pending_ GUARDED_BY(mu_);
  bool draining_ GUARDED_BY(mu_) = false;
  // A batch is being appended/synced right now.
  bool flushing_ GUARDED_BY(mu_) = false;
  bool task_enqueued_ GUARDED_BY(mu_) = false;
  int64_t commits_ GUARDED_BY(mu_) = 0;
  int64_t batches_ GUARDED_BY(mu_) = 0;
  Histogram batch_size_ GUARDED_BY(mu_);
  Histogram flush_micros_ GUARDED_BY(mu_);
};

}  // namespace stagedb::engine

#endif  // STAGEDB_ENGINE_COMMIT_STAGE_H_
