#include "engine/exchange.h"

#include <algorithm>

#include "exec/row_utils.h"

namespace stagedb::engine {

void ExchangeBuffer::BindProducer(Stage* stage, StageTask* task) {
  MutexLock lock(mu_);
  producers_.push_back({stage, task});
}

void ExchangeBuffer::BindConsumer(Stage* stage, StageTask* task) {
  MutexLock lock(mu_);
  consumers_.push_back({stage, task});
}

void ExchangeBuffer::WakeAll(const std::vector<Endpoint>& endpoints) {
  // Called outside mu_: Activate takes the runtime mutex, and holding both
  // would order them against TryPush callers. The endpoint vectors are only
  // appended to during query wiring (before any packet runs), so reading
  // them unlocked here is safe.
  for (const Endpoint& e : endpoints) {
    if (e.stage != nullptr && e.task != nullptr) e.stage->Activate(e.task);
  }
}

ExchangeBuffer::PushResult ExchangeBuffer::TryPush(RowBatch* batch) {
  bool was_empty = false;
  {
    MutexLock lock(mu_);
    if (closed_) return PushResult::kClosed;
    if (pages_.size() >= capacity_) return PushResult::kFull;
    was_empty = pages_.empty();
    pages_.push_back(std::move(*batch));
    batch->tuples.clear();
    ++pages_pushed_;
  }
  // Parent activation: the empty -> non-empty transition wakes the parked
  // (or not yet activated) consumers. A consumer can only be parked when it
  // observed an empty buffer (the runtime re-checks CanMakeProgress under
  // its mutex just before parking), so pushes onto a non-empty buffer need
  // not wake anyone — that keeps fan-in edges from multiplying runtime-
  // mutex traffic by their endpoint count. One push wakes ALL consumers:
  // a batch is popped whole, but with several consumers bound the batch may
  // be consumed "in pieces" across packets, and only the wake lets each
  // re-evaluate.
  if (was_empty) WakeAll(consumers_);
  return PushResult::kOk;
}

void ExchangeBuffer::MarkEof() {
  bool became_eof = false;
  {
    MutexLock lock(mu_);
    ++eof_marks_;
    // With at most one producer bound this is the classic single-producer
    // EOF; with M bound, the stream ends at the M-th mark (fan-in).
    if (eof_marks_ >= std::max<size_t>(1, producers_.size()) && !eof_) {
      eof_ = true;
      became_eof = true;
    }
  }
  // Only the mark that actually ends the stream can unblock a consumer
  // (AtEof needs eof_); earlier marks change nothing a parked packet polls.
  if (became_eof) WakeAll(consumers_);
}

void ExchangeBuffer::ForceEof() {
  {
    MutexLock lock(mu_);
    eof_ = true;
  }
  WakeAll(consumers_);
}

bool ExchangeBuffer::TryPop(RowBatch* out, bool* eof) {
  bool popped = false;
  bool was_full = false;
  {
    MutexLock lock(mu_);
    *eof = false;
    if (!pages_.empty()) {
      was_full = pages_.size() >= capacity_;
      *out = std::move(pages_.front());
      pages_.pop_front();
      popped = true;
    } else if (eof_ || closed_) {
      // Closed counts as end of stream: Close() discards the buffered
      // batches and guarantees no producer will deliver more, so a consumer
      // still polling this edge must not wait for producer EOF marks.
      *eof = true;
    }
  }
  // Space freed: the full -> not-full transition wakes producers parked on
  // back-pressure (a producer can only be parked when it observed a full
  // buffer, mirroring the consumer-side argument in TryPush).
  if (popped && was_full) WakeAll(producers_);
  return popped;
}

void ExchangeBuffer::Close() {
  {
    MutexLock lock(mu_);
    closed_ = true;
    pages_.clear();
  }
  WakeAll(producers_);
  // Lost-wakeup fix: with several consumers bound, the closing consumer
  // must wake its siblings — after Close no push (and possibly no MarkEof:
  // a producer seeing kClosed finishes early) will ever arrive, so a parked
  // sibling would otherwise sleep forever. They observe AtEof (closed ==
  // end of stream) and retire.
  WakeAll(consumers_);
}

bool ExchangeBuffer::HasData() const {
  MutexLock lock(mu_);
  return !pages_.empty();
}

bool ExchangeBuffer::AtEof() const {
  MutexLock lock(mu_);
  return pages_.empty() && (eof_ || closed_);
}

bool ExchangeBuffer::HasSpaceOrClosed() const {
  MutexLock lock(mu_);
  return closed_ || pages_.size() < capacity_;
}

bool ExchangeBuffer::closed() const {
  MutexLock lock(mu_);
  return closed_;
}

int64_t ExchangeBuffer::pages_pushed() const {
  MutexLock lock(mu_);
  return pages_pushed_;
}

// ---------------------------------------------------------- SpscRingBuffer --

namespace {
size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

SpscRingBuffer::SpscRingBuffer(size_t capacity_pages)
    : ExchangeBuffer(capacity_pages),
      mask_(RoundUpPow2(std::max<size_t>(1, capacity_pages)) - 1),
      slots_(mask_ + 1) {}

void SpscRingBuffer::WakeConsumerIfWaiting() {
  // Dekker handshake, all-seq_cst-accesses form: the caller published its
  // state change with a seq_cst store (tail_ in TryPush), the parking
  // consumer arms its flag with a seq_cst store before re-checking that
  // state with a seq_cst load (HasData/AtEof). The seq_cst total order
  // forbids the store-buffering outcome where both sides read the old
  // values, so either this load sees the armed flag or the consumer's
  // re-check sees the new state. Deliberately *not* the fence+relaxed-load
  // form: on x86 this load is a plain MOV and the caller's seq_cst store an
  // XCHG, which together are cheaper than an mfence on every push.
  if (consumer_waiting_.load(std::memory_order_seq_cst)) {
    consumer_waiting_.store(false, std::memory_order_relaxed);
    WakeAll(consumers_);
  }
}

void SpscRingBuffer::WakeProducerIfWaiting() {
  // Mirror of WakeConsumerIfWaiting; the caller's seq_cst store is head_ in
  // TryPop, the arming side is HasSpaceOrClosed.
  if (producer_waiting_.load(std::memory_order_seq_cst)) {
    producer_waiting_.store(false, std::memory_order_relaxed);
    WakeAll(producers_);
  }
}

ExchangeBuffer::PushResult SpscRingBuffer::TryPush(RowBatch* batch) {
  if (closed_.load(std::memory_order_acquire)) return PushResult::kClosed;
  const uint64_t tail = tail_.load(std::memory_order_relaxed);
  if (tail - head_.load(std::memory_order_acquire) > mask_) {
    return PushResult::kFull;
  }
  slots_[tail & mask_] = std::move(*batch);
  batch->tuples.clear();
  // seq_cst (not just release): the publication store is the first half of
  // the Dekker pair in WakeConsumerIfWaiting below.
  tail_.store(tail + 1, std::memory_order_seq_cst);
  // Single-writer counter: a relaxed load+store is a plain increment, not a
  // locked RMW — fetch_add would cost another full barrier on the hot path.
  pushed_.store(pushed_.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
  if (tail == 0) {
    // Bottom-up activation: the very first push must wake unconditionally —
    // a consumer packet that has never run (the engine only enqueues leaves;
    // parents wait for their first input) has never armed the waiting flag.
    // From then on the consumer is live and every park arms the flag.
    WakeAll(consumers_);
  } else {
    WakeConsumerIfWaiting();
  }
  return PushResult::kOk;
}

void SpscRingBuffer::MarkEof() {
  // Single producer: the first (only) mark ends the stream. The release
  // store orders it after every batch publication, and TryPop reads the
  // flag before the tail so the final batch is never skipped. Wakes
  // unconditionally: an empty stream's consumer may never have been
  // activated at all (see TryPush), and EOF is once-per-stream so the
  // unconditional runtime-mutex hop costs nothing measurable.
  eof_.store(true, std::memory_order_release);
  WakeAll(consumers_);
}

void SpscRingBuffer::ForceEof() {
  eof_.store(true, std::memory_order_release);
  WakeAll(consumers_);
}

bool SpscRingBuffer::TryPop(RowBatch* out, bool* eof) {
  *eof = false;
  // Cancellation wins over buffered data, matching the mutex buffer (which
  // drops its pages under the lock in Close): a closed ring never delivers.
  // The undelivered slots are reclaimed when the ring is destroyed with its
  // query — clearing them here would race a Fail()-initiated close on
  // another thread against this consumer.
  if (closed_.load(std::memory_order_acquire)) {
    *eof = true;
    return false;
  }
  const uint64_t head = head_.load(std::memory_order_relaxed);
  // Read end-of-stream BEFORE the tail: MarkEof stores eof after the last
  // batch's tail publication, so observing eof==true here guarantees the
  // subsequent tail load sees every batch — the reverse order could report
  // EOF while the final batch is still invisible.
  const bool end = EndOfStream();
  if (head == tail_.load(std::memory_order_acquire)) {
    *eof = end;
    return false;
  }
  *out = std::move(slots_[head & mask_]);
  slots_[head & mask_].clear();
  // seq_cst: first half of the Dekker pair in WakeProducerIfWaiting.
  head_.store(head + 1, std::memory_order_seq_cst);
  WakeProducerIfWaiting();
  return true;
}

void SpscRingBuffer::Close() {
  // The slots stay untouched (only the endpoints may touch them; the
  // remaining batches are reclaimed when the ring is destroyed with its
  // query). Producers see kClosed on the next push; a sibling-less parked
  // consumer — or the peer of a Fail()-initiated close — sees end of
  // stream.
  closed_.store(true, std::memory_order_seq_cst);
  WakeAll(producers_);
  WakeAll(consumers_);
}

bool SpscRingBuffer::HasData() const {
  if (head_.load(std::memory_order_relaxed) !=
      tail_.load(std::memory_order_acquire)) {
    return true;
  }
  // Empty: the consumer is about to park. Arm the waiting flag (seq_cst),
  // then re-check with a seq_cst load — the producer's post-push flag read
  // sees the armed flag unless this re-check already sees the push (the
  // all-seq_cst Dekker pair; see WakeConsumerIfWaiting). This is the slow
  // path (a park/unpark is coming either way), so the XCHG the seq_cst
  // store costs here is irrelevant.
  consumer_waiting_.store(true, std::memory_order_seq_cst);
  return head_.load(std::memory_order_relaxed) !=
         tail_.load(std::memory_order_seq_cst);
}

bool SpscRingBuffer::AtEof() const {
  if (!EndOfStream()) {
    // Not ended yet — arm the flag so a concurrent MarkEof/ForceEof/Close
    // wakes the consumer that is about to park on this answer (those three
    // wake unconditionally, so the flag is belt-and-braces here).
    consumer_waiting_.store(true, std::memory_order_seq_cst);
    if (!EndOfStream()) return false;
  }
  return head_.load(std::memory_order_relaxed) ==
         tail_.load(std::memory_order_seq_cst);
}

bool SpscRingBuffer::HasSpaceOrClosed() const {
  if (closed_.load(std::memory_order_acquire)) return true;
  if (tail_.load(std::memory_order_relaxed) -
          head_.load(std::memory_order_acquire) <=
      mask_) {
    return true;
  }
  // Full: the producer is about to park. Same all-seq_cst handshake; the
  // consumer side's seq_cst head_ publication is in TryPop.
  producer_waiting_.store(true, std::memory_order_seq_cst);
  return closed_.load(std::memory_order_seq_cst) ||
         tail_.load(std::memory_order_relaxed) -
                 head_.load(std::memory_order_seq_cst) <=
             mask_;
}

bool SpscRingBuffer::closed() const {
  return closed_.load(std::memory_order_acquire);
}

int64_t SpscRingBuffer::pages_pushed() const {
  return pushed_.load(std::memory_order_relaxed);
}

// ----------------------------------------------------- PartitionedExchange --

StatusOr<size_t> PartitionedExchange::PartitionOf(const catalog::Tuple& tuple,
                                                  uint64_t* rr_cursor) const {
  const size_t n = partitions_.size();
  if (!key_columns_.empty()) {
    // Same fold as exec::RowKeyHash, computed straight off the tuple: this
    // runs once per routed tuple, so it must not materialize a RowKey
    // (vector allocation + Value copies) just to hash it.
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (size_t c : key_columns_) {
      if (c >= tuple.size()) {
        return Status::Internal("partition key column out of range");
      }
      h ^= tuple[c].Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h % n;
  }
  if (!key_exprs_.empty()) {
    exec::RowKey key;
    key.values.reserve(key_exprs_.size());
    for (const optimizer::BoundExpr* expr : key_exprs_) {
      auto v = optimizer::Eval(*expr, tuple);
      if (!v.ok()) return v.status();
      key.values.push_back(std::move(*v));
    }
    return exec::RowKeyHash{}(key) % n;
  }
  return (*rr_cursor)++ % n;
}

Status PartitionedExchange::ScatterBatch(RowBatch* batch, uint64_t* rr_cursor,
                                         std::vector<RowBatch>* staging,
                                         std::vector<uint32_t>* route) const {
  // Route pass first (a tight loop over the batch, no buffer traffic), then
  // the scatter moves each tuple into its partition's staging batch. `route`
  // is caller-owned scratch: the exchange object is shared by every producer
  // of the edge, so it keeps no mutable state of its own.
  const size_t n = batch->size();
  route->resize(n);
  for (size_t i = 0; i < n; ++i) {
    auto p = PartitionOf(batch->tuples[i], rr_cursor);
    if (!p.ok()) return p.status();
    (*route)[i] = static_cast<uint32_t>(*p);
  }
  for (size_t i = 0; i < n; ++i) {
    (*staging)[(*route)[i]].push_back(std::move(batch->tuples[i]));
  }
  batch->clear();
  return Status::OK();
}

}  // namespace stagedb::engine
