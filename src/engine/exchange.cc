#include "engine/exchange.h"

#include "exec/row_utils.h"

namespace stagedb::engine {

void ExchangeBuffer::BindProducer(Stage* stage, StageTask* task) {
  std::lock_guard<std::mutex> lock(mu_);
  producers_.push_back({stage, task});
}

void ExchangeBuffer::BindConsumer(Stage* stage, StageTask* task) {
  std::lock_guard<std::mutex> lock(mu_);
  consumers_.push_back({stage, task});
}

void ExchangeBuffer::WakeAll(const std::vector<Endpoint>& endpoints) {
  // Called outside mu_: Activate takes the runtime mutex, and holding both
  // would order them against TryPush callers. The endpoint vectors are only
  // appended to during query wiring (before any packet runs), so reading
  // them unlocked here is safe.
  for (const Endpoint& e : endpoints) {
    if (e.stage != nullptr && e.task != nullptr) e.stage->Activate(e.task);
  }
}

ExchangeBuffer::PushResult ExchangeBuffer::TryPush(TupleBatch* batch) {
  bool was_empty = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return PushResult::kClosed;
    if (pages_.size() >= capacity_) return PushResult::kFull;
    was_empty = pages_.empty();
    pages_.push_back(std::move(*batch));
    batch->tuples.clear();
    ++pages_pushed_;
  }
  // Parent activation: the empty -> non-empty transition wakes the parked
  // (or not yet activated) consumers. A consumer can only be parked when it
  // observed an empty buffer (the runtime re-checks CanMakeProgress under
  // its mutex just before parking), so pushes onto a non-empty buffer need
  // not wake anyone — that keeps fan-in edges from multiplying runtime-
  // mutex traffic by their endpoint count.
  if (was_empty) WakeAll(consumers_);
  return PushResult::kOk;
}

void ExchangeBuffer::MarkEof() {
  bool became_eof = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++eof_marks_;
    // With at most one producer bound this is the classic single-producer
    // EOF; with M bound, the stream ends at the M-th mark (fan-in).
    if (eof_marks_ >= std::max<size_t>(1, producers_.size()) && !eof_) {
      eof_ = true;
      became_eof = true;
    }
  }
  // Only the mark that actually ends the stream can unblock a consumer
  // (AtEof needs eof_); earlier marks change nothing a parked packet polls.
  if (became_eof) WakeAll(consumers_);
}

void ExchangeBuffer::ForceEof() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    eof_ = true;
  }
  WakeAll(consumers_);
}

bool ExchangeBuffer::TryPop(TupleBatch* out, bool* eof) {
  bool popped = false;
  bool was_full = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    *eof = false;
    if (!pages_.empty()) {
      was_full = pages_.size() >= capacity_;
      *out = std::move(pages_.front());
      pages_.pop_front();
      popped = true;
    } else if (eof_) {
      *eof = true;
    }
  }
  // Space freed: the full -> not-full transition wakes producers parked on
  // back-pressure (a producer can only be parked when it observed a full
  // buffer, mirroring the consumer-side argument in TryPush).
  if (popped && was_full) WakeAll(producers_);
  return popped;
}

void ExchangeBuffer::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    pages_.clear();
  }
  WakeAll(producers_);
}

bool ExchangeBuffer::HasData() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !pages_.empty();
}

bool ExchangeBuffer::AtEof() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pages_.empty() && eof_;
}

bool ExchangeBuffer::HasSpaceOrClosed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_ || pages_.size() < capacity_;
}

bool ExchangeBuffer::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

int64_t ExchangeBuffer::pages_pushed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pages_pushed_;
}

StatusOr<size_t> PartitionedExchange::PartitionOf(const catalog::Tuple& tuple,
                                                  uint64_t* rr_cursor) const {
  const size_t n = partitions_.size();
  if (!key_columns_.empty()) {
    // Same fold as exec::RowKeyHash, computed straight off the tuple: this
    // runs once per routed tuple, so it must not materialize a RowKey
    // (vector allocation + Value copies) just to hash it.
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (size_t c : key_columns_) {
      if (c >= tuple.size()) {
        return Status::Internal("partition key column out of range");
      }
      h ^= tuple[c].Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h % n;
  }
  if (!key_exprs_.empty()) {
    exec::RowKey key;
    key.values.reserve(key_exprs_.size());
    for (const optimizer::BoundExpr* expr : key_exprs_) {
      auto v = optimizer::Eval(*expr, tuple);
      if (!v.ok()) return v.status();
      key.values.push_back(std::move(*v));
    }
    return exec::RowKeyHash{}(key) % n;
  }
  return (*rr_cursor)++ % n;
}

}  // namespace stagedb::engine
