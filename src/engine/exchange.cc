#include "engine/exchange.h"

namespace stagedb::engine {

ExchangeBuffer::PushResult ExchangeBuffer::TryPush(TupleBatch* batch) {
  Stage* wake_stage = nullptr;
  StageTask* wake_task = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return PushResult::kClosed;
    if (pages_.size() >= capacity_) return PushResult::kFull;
    pages_.push_back(std::move(*batch));
    batch->tuples.clear();
    ++pages_pushed_;
    wake_stage = consumer_stage_;
    wake_task = consumer_;
  }
  // Parent activation: the first page enqueued for a parked (or not yet
  // activated) consumer wakes it.
  if (wake_stage != nullptr && wake_task != nullptr) {
    wake_stage->Activate(wake_task);
  }
  return PushResult::kOk;
}

void ExchangeBuffer::MarkEof() {
  Stage* wake_stage = nullptr;
  StageTask* wake_task = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    eof_ = true;
    wake_stage = consumer_stage_;
    wake_task = consumer_;
  }
  if (wake_stage != nullptr && wake_task != nullptr) {
    wake_stage->Activate(wake_task);
  }
}

bool ExchangeBuffer::TryPop(TupleBatch* out, bool* eof) {
  Stage* wake_stage = nullptr;
  StageTask* wake_task = nullptr;
  bool popped = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    *eof = false;
    if (!pages_.empty()) {
      *out = std::move(pages_.front());
      pages_.pop_front();
      popped = true;
      wake_stage = producer_stage_;
      wake_task = producer_;
    } else if (eof_) {
      *eof = true;
    }
  }
  // Space freed: wake a producer parked on back-pressure.
  if (popped && wake_stage != nullptr && wake_task != nullptr) {
    wake_stage->Activate(wake_task);
  }
  return popped;
}

void ExchangeBuffer::Close() {
  Stage* wake_stage = nullptr;
  StageTask* wake_task = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    pages_.clear();
    wake_stage = producer_stage_;
    wake_task = producer_;
  }
  if (wake_stage != nullptr && wake_task != nullptr) {
    wake_stage->Activate(wake_task);
  }
}

bool ExchangeBuffer::HasData() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !pages_.empty();
}

bool ExchangeBuffer::AtEof() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pages_.empty() && eof_;
}

bool ExchangeBuffer::HasSpaceOrClosed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_ || pages_.size() < capacity_;
}

bool ExchangeBuffer::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

}  // namespace stagedb::engine
