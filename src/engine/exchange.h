// Page-based producer-consumer dataflow between operator stages (§4.1.2):
// "Dataflow takes place through the use of intermediate result buffers and
//  page-based data exchange using a producer-consumer type of operator/stage
//  communication."
//
// Partitioned intra-query parallelism (§4.3) extends the same machinery:
// a buffer may have several producers (fan-in: N partition packets merging
// into one consumer; end-of-stream is reached when every producer has marked
// EOF) and several consumers (fan-out wake-up), and a PartitionedExchange
// groups N partition buffers behind one hash partition function so a
// producer can spread its output across N parallel operator packets.
#ifndef STAGEDB_ENGINE_EXCHANGE_H_
#define STAGEDB_ENGINE_EXCHANGE_H_

#include <deque>
#include <mutex>
#include <vector>

#include "catalog/tuple.h"
#include "engine/runtime.h"
#include "optimizer/bound_expr.h"

namespace stagedb::engine {

/// One page of tuples exchanged between operator stages. The page size (in
/// tuples) is the §4.4(c) tuning parameter.
struct TupleBatch {
  std::vector<catalog::Tuple> tuples;
  bool empty() const { return tuples.empty(); }
  size_t size() const { return tuples.size(); }
};

/// A bounded buffer of pages between producer and consumer operator
/// instances. Non-blocking on both sides: a full buffer makes the producer
/// yield its packet (back-pressure), an empty one parks the consumer; pushes
/// and pops wake the peers through Stage::Activate (the paper's "checks for
/// parent activation" step).
///
/// Endpoints: Bind{Producer,Consumer} may each be called several times — a
/// partitioned plan wires M producer packets and (for fan-out buffers) the
/// partition's consumer packet. With M producers bound, the stream ends when
/// all M have called MarkEof; with zero or one bound (the DOP=1 wiring and
/// unit tests), a single MarkEof ends it, exactly the pre-parallelism
/// semantics.
class ExchangeBuffer {
 public:
  explicit ExchangeBuffer(size_t capacity_pages)
      : capacity_(capacity_pages) {}

  /// Registers a producer endpoint so pops can wake packets parked on
  /// back-pressure. Each registered producer is expected to MarkEof exactly
  /// once.
  void BindProducer(Stage* stage, StageTask* task);
  /// Registers a consumer endpoint so pushes / EOF can wake packets parked
  /// on an empty buffer.
  void BindConsumer(Stage* stage, StageTask* task);

  enum class PushResult { kOk, kFull, kClosed };

  /// Offers a page; consumes *batch only on kOk. kFull = back-pressure (the
  /// caller keeps the page and re-enqueues its packet); kClosed = the
  /// consumer no longer wants data (caller should finish early). A
  /// zero-capacity buffer rejects every push with kFull (kClosed once
  /// closed); the engine therefore never creates one.
  PushResult TryPush(TupleBatch* batch);

  /// Marks end-of-stream for one producer and, once every bound producer has
  /// done so (or immediately when at most one is bound), activates the
  /// consumers.
  void MarkEof();

  /// Unconditional end-of-stream, regardless of how many producers have
  /// reported: used by query cancellation (StagedQuery::Fail), where waiting
  /// for M producer EOFs could deadlock against the failure being delivered.
  void ForceEof();

  /// Takes the next page if available. Returns false with *eof=false when the
  /// buffer is momentarily empty, false with *eof=true at end of stream.
  bool TryPop(TupleBatch* out, bool* eof);

  /// Consumer-side cancellation (e.g. LIMIT satisfied): discards buffered
  /// pages and makes future pushes return kClosed.
  void Close();

  bool HasData() const;
  bool AtEof() const;  // empty and eof
  bool HasSpaceOrClosed() const;
  bool closed() const;

  int64_t pages_pushed() const;

 private:
  struct Endpoint {
    Stage* stage = nullptr;
    StageTask* task = nullptr;
  };

  void WakeAll(const std::vector<Endpoint>& endpoints);

  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<TupleBatch> pages_;
  bool eof_ = false;
  bool closed_ = false;
  size_t eof_marks_ = 0;  // producers that have called MarkEof
  int64_t pages_pushed_ = 0;
  std::vector<Endpoint> producers_;
  std::vector<Endpoint> consumers_;
};

/// Hash fan-out for partitioned intra-query parallelism (§4.3): routes each
/// tuple of a producer's output to one of N partition ExchangeBuffers, so the
/// N packets of a parallel hash-join or partial-aggregation each receive a
/// disjoint, key-complete share of the stream.
///
/// The partition function is the hash of the partition key — either key
/// *columns* (equi-join keys: both join inputs use the same RowKeyHash, so
/// matching keys always meet in the same partition) or key *expressions*
/// (group-by exprs of a partial aggregation) — taken modulo N. With no key
/// (a global aggregate), tuples are dealt round-robin from a caller-held
/// cursor. Does not own the buffers: they live in StagedQuery::buffers with
/// every other exchange buffer so cancellation closes them uniformly.
class PartitionedExchange {
 public:
  explicit PartitionedExchange(std::vector<ExchangeBuffer*> partitions)
      : partitions_(std::move(partitions)) {}

  /// Partition on the hash of these column positions of the input tuple.
  void SetKeyColumns(std::vector<size_t> columns) {
    key_columns_ = std::move(columns);
  }
  /// Partition on the hash of these expressions evaluated over the input
  /// tuple (pointers must outlive the exchange; they point into the plan).
  void SetKeyExprs(std::vector<const optimizer::BoundExpr*> exprs) {
    key_exprs_ = std::move(exprs);
  }

  size_t num_partitions() const { return partitions_.size(); }
  ExchangeBuffer* partition(size_t i) const { return partitions_[i]; }

  /// The partition for `tuple`. `rr_cursor` is the caller's (per-producer)
  /// round-robin cursor, advanced only when the exchange has no key.
  StatusOr<size_t> PartitionOf(const catalog::Tuple& tuple,
                               uint64_t* rr_cursor) const;

 private:
  std::vector<ExchangeBuffer*> partitions_;
  std::vector<size_t> key_columns_;
  std::vector<const optimizer::BoundExpr*> key_exprs_;
};

}  // namespace stagedb::engine

#endif  // STAGEDB_ENGINE_EXCHANGE_H_
