// Page-based producer-consumer dataflow between operator stages (§4.1.2):
// "Dataflow takes place through the use of intermediate result buffers and
//  page-based data exchange using a producer-consumer type of operator/stage
//  communication."
#ifndef STAGEDB_ENGINE_EXCHANGE_H_
#define STAGEDB_ENGINE_EXCHANGE_H_

#include <deque>
#include <mutex>
#include <vector>

#include "catalog/tuple.h"
#include "engine/runtime.h"

namespace stagedb::engine {

/// One page of tuples exchanged between operator stages. The page size (in
/// tuples) is the §4.4(c) tuning parameter.
struct TupleBatch {
  std::vector<catalog::Tuple> tuples;
  bool empty() const { return tuples.empty(); }
  size_t size() const { return tuples.size(); }
};

/// A bounded buffer of pages between one producer and one consumer operator
/// instance. Non-blocking on both sides: a full buffer makes the producer
/// yield its packet (back-pressure), an empty one parks the consumer; pushes
/// and pops wake the peer through Stage::Activate (the paper's "checks for
/// parent activation" step).
class ExchangeBuffer {
 public:
  explicit ExchangeBuffer(size_t capacity_pages)
      : capacity_(capacity_pages) {}

  /// Wires the endpoints so the buffer can activate parked packets.
  void BindProducer(Stage* stage, StageTask* task) {
    producer_stage_ = stage;
    producer_ = task;
  }
  void BindConsumer(Stage* stage, StageTask* task) {
    consumer_stage_ = stage;
    consumer_ = task;
  }

  enum class PushResult { kOk, kFull, kClosed };

  /// Offers a page; consumes *batch only on kOk. kFull = back-pressure (the
  /// caller keeps the page and re-enqueues its packet); kClosed = the
  /// consumer no longer wants data (caller should finish early).
  PushResult TryPush(TupleBatch* batch);

  /// Marks end-of-stream (producer side) and activates the consumer.
  void MarkEof();

  /// Takes the next page if available. Returns false with *eof=false when the
  /// buffer is momentarily empty, false with *eof=true at end of stream.
  bool TryPop(TupleBatch* out, bool* eof);

  /// Consumer-side cancellation (e.g. LIMIT satisfied): discards buffered
  /// pages and makes future pushes return kClosed.
  void Close();

  bool HasData() const;
  bool AtEof() const;  // empty and eof
  bool HasSpaceOrClosed() const;
  bool closed() const;

  int64_t pages_pushed() const { return pages_pushed_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<TupleBatch> pages_;
  bool eof_ = false;
  bool closed_ = false;
  int64_t pages_pushed_ = 0;
  Stage* producer_stage_ = nullptr;
  StageTask* producer_ = nullptr;
  Stage* consumer_stage_ = nullptr;
  StageTask* consumer_ = nullptr;
};

}  // namespace stagedb::engine

#endif  // STAGEDB_ENGINE_EXCHANGE_H_
