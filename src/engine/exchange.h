// Page-based producer-consumer dataflow between operator stages (§4.1.2):
// "Dataflow takes place through the use of intermediate result buffers and
//  page-based data exchange using a producer-consumer type of operator/stage
//  communication."
//
// The unit of exchange is a RowBatch — a cache-friendly morsel of tuples.
// Operators consume and produce whole batches (the batch ABI, docs/DESIGN.md
// §9), so the per-tuple synchronization tax the paper's Figures 1–2 measure
// is paid once per batch instead of once per row.
//
// Partitioned intra-query parallelism (§4.3) extends the same machinery:
// a buffer may have several producers (fan-in: N partition packets merging
// into one consumer; end-of-stream is reached when every producer has marked
// EOF) and several consumers (fan-out wake-up), and a PartitionedExchange
// groups N partition buffers behind one hash partition function so a
// producer can spread its output across N parallel operator packets.
//
// Exchange edges come in two implementations behind one interface:
//   * ExchangeBuffer    — the mutex-guarded deque. Handles any endpoint
//                         shape (MxN fan-in/fan-out) and is the fallback.
//   * SpscRingBuffer    — a lock-free bounded power-of-two ring for the hot
//                         1-producer/1-consumer edges (the overwhelmingly
//                         common DOP=1 shape and every scatter edge of a
//                         1->N fan-out). Acquire/release atomics on the
//                         ring indices; parking coordination through
//                         Dekker-style waiting flags (see the .cc).
// The Submit builder picks the implementation per edge; bench/
// exchange_pingpong measures the swap in isolation.
#ifndef STAGEDB_ENGINE_EXCHANGE_H_
#define STAGEDB_ENGINE_EXCHANGE_H_

#include <atomic>
#include <deque>
#include <vector>

#include "catalog/tuple.h"
#include "common/mutex.h"
#include "engine/runtime.h"
#include "optimizer/bound_expr.h"

namespace stagedb::engine {

/// One morsel of rows exchanged between operator stages. The batch size (in
/// tuples) is the §4.4(c) tuning parameter (StagedEngineOptions::
/// tuples_per_page, overridable per plan node via PhysicalPlan::batch_hint).
struct RowBatch {
  std::vector<catalog::Tuple> tuples;
  bool empty() const { return tuples.empty(); }
  size_t size() const { return tuples.size(); }
  void clear() { tuples.clear(); }
  void reserve(size_t n) { tuples.reserve(n); }
  void push_back(catalog::Tuple t) { tuples.push_back(std::move(t)); }
  /// Moves every tuple of `other` onto the back of this batch; `other` is
  /// left empty.
  void Append(RowBatch* other) {
    if (tuples.empty()) {
      tuples = std::move(other->tuples);
    } else {
      tuples.insert(tuples.end(),
                    std::make_move_iterator(other->tuples.begin()),
                    std::make_move_iterator(other->tuples.end()));
    }
    other->tuples.clear();
  }
};

/// Pre-batch-ABI name, kept so existing call sites and tests read unchanged.
using TupleBatch = RowBatch;

/// A bounded buffer of batches between producer and consumer operator
/// instances. Non-blocking on both sides: a full buffer makes the producer
/// yield its packet (back-pressure), an empty one parks the consumer; pushes
/// and pops wake the peers through Stage::Activate (the paper's "checks for
/// parent activation" step).
///
/// This class is both the interface every exchange edge implements and the
/// mutex-guarded implementation that serves as the general fallback (any
/// number of producers and consumers). SpscRingBuffer below overrides the
/// data path with a lock-free ring for 1:1 edges.
///
/// Endpoints: Bind{Producer,Consumer} may each be called several times — a
/// partitioned plan wires M producer packets and (for fan-out buffers) the
/// partition's consumer packet. With M producers bound, the stream ends when
/// all M have called MarkEof; with zero or one bound (the DOP=1 wiring and
/// unit tests), a single MarkEof ends it, exactly the pre-parallelism
/// semantics.
class ExchangeBuffer {
 public:
  explicit ExchangeBuffer(size_t capacity_pages)
      : capacity_(capacity_pages) {}
  virtual ~ExchangeBuffer() = default;

  /// Which data path this edge runs on (monitoring / tests; the Submit
  /// builder records its per-edge choice here implicitly).
  enum class Impl { kMutex, kSpscRing };
  virtual Impl impl() const { return Impl::kMutex; }

  /// Registers a producer endpoint so pops can wake packets parked on
  /// back-pressure. Each registered producer is expected to MarkEof exactly
  /// once.
  void BindProducer(Stage* stage, StageTask* task);
  /// Registers a consumer endpoint so pushes / EOF can wake packets parked
  /// on an empty buffer.
  void BindConsumer(Stage* stage, StageTask* task);

  enum class PushResult { kOk, kFull, kClosed };

  /// Offers a batch; consumes *batch only on kOk. kFull = back-pressure (the
  /// caller keeps the batch and re-enqueues its packet); kClosed = the
  /// consumer no longer wants data (caller should finish early). A
  /// zero-capacity buffer rejects every push with kFull (kClosed once
  /// closed); the engine therefore never creates one.
  [[nodiscard]] virtual PushResult TryPush(RowBatch* batch);

  /// Marks end-of-stream for one producer and, once every bound producer has
  /// done so (or immediately when at most one is bound), activates the
  /// consumers.
  virtual void MarkEof();

  /// Unconditional end-of-stream, regardless of how many producers have
  /// reported: used by query cancellation (StagedQuery::Fail), where waiting
  /// for M producer EOFs could deadlock against the failure being delivered.
  virtual void ForceEof();

  /// Takes the next batch if available. Returns false with *eof=false when
  /// the buffer is momentarily empty, false with *eof=true at end of stream.
  /// A closed buffer reports end of stream once drained: closed means no
  /// further data will ever be delivered, so a parked peer consumer must not
  /// wait for an EOF mark that will never come (see Close).
  [[nodiscard]] virtual bool TryPop(RowBatch* out, bool* eof);

  /// Consumer-side cancellation (e.g. LIMIT satisfied): discards buffered
  /// batches and makes future pushes return kClosed. Wakes producers parked
  /// on back-pressure AND consumers parked on empty — with several consumers
  /// bound, one consumer closing the edge must not leave its siblings parked
  /// forever waiting for data the producers will no longer send.
  virtual void Close();

  virtual bool HasData() const;
  virtual bool AtEof() const;  // drained and (eof or closed)
  virtual bool HasSpaceOrClosed() const;
  virtual bool closed() const;

  virtual int64_t pages_pushed() const;

  size_t capacity_pages() const { return capacity_; }

 protected:
  struct Endpoint {
    Stage* stage = nullptr;
    StageTask* task = nullptr;
  };

  void WakeAll(const std::vector<Endpoint>& endpoints);

  const size_t capacity_;
  // Endpoint vectors are appended to only during query wiring (before any
  // packet runs) and read unlocked by WakeAll afterwards.
  std::vector<Endpoint> producers_;
  std::vector<Endpoint> consumers_;

 private:
  mutable Mutex mu_;
  std::deque<RowBatch> pages_ GUARDED_BY(mu_);
  bool eof_ GUARDED_BY(mu_) = false;
  bool closed_ GUARDED_BY(mu_) = false;
  size_t eof_marks_ GUARDED_BY(mu_) = 0;  // producers that have MarkEof'd
  int64_t pages_pushed_ GUARDED_BY(mu_) = 0;
};

/// Lock-free single-producer / single-consumer exchange edge: a bounded
/// power-of-two ring of RowBatch slots. The producer owns tail_, the
/// consumer owns head_; publication is release-store / acquire-load on the
/// indices, so the hot push/pop path takes no lock and touches no shared
/// cacheline beyond the two indices.
///
/// Parking coordination (the staged runtime parks a packet that reports
/// kBlocked) cannot ride the runtime mutex from the fast path without
/// reintroducing the lock. Instead each side arms a waiting flag before its
/// final emptiness/fullness re-check (HasData / HasSpaceOrClosed / AtEof are
/// exactly the re-checks CanMakeProgress issues just before parking), and
/// the opposite side reads the flag after publishing its index — all four
/// accesses seq_cst, so the store-buffering outcome where both sides read
/// stale values is forbidden and at least one of {parker re-check, waker
/// flag-read} observes the other's store; a wake is never lost (Dekker/
/// eventcount pattern; regression-tested under TSan). EOF and Close wake
/// unconditionally — they are once-per-stream and must reach a consumer
/// that has never run (bottom-up activation), as must the first push.
///
/// Cancellation (Close / ForceEof) works through atomic flags and may be
/// called from any thread; the data slots themselves are only ever touched
/// by the two owning endpoints. Capacity is rounded up to a power of two.
class SpscRingBuffer : public ExchangeBuffer {
 public:
  explicit SpscRingBuffer(size_t capacity_pages);

  Impl impl() const override { return Impl::kSpscRing; }
  /// Actual slot count (capacity_pages rounded up to a power of two).
  size_t ring_capacity() const { return mask_ + 1; }

  [[nodiscard]] PushResult TryPush(RowBatch* batch) override;
  void MarkEof() override;
  void ForceEof() override;
  [[nodiscard]] bool TryPop(RowBatch* out, bool* eof) override;
  void Close() override;

  bool HasData() const override;
  bool AtEof() const override;
  bool HasSpaceOrClosed() const override;
  bool closed() const override;
  int64_t pages_pushed() const override;

 private:
  bool EndOfStream() const {
    return eof_.load(std::memory_order_acquire) ||
           closed_.load(std::memory_order_acquire);
  }
  void WakeConsumerIfWaiting();
  void WakeProducerIfWaiting();

  const size_t mask_;
  std::vector<RowBatch> slots_;
  // Separate cachelines: head_ is written by the consumer, tail_ by the
  // producer; sharing a line would make every push/pop a coherence miss.
  alignas(64) std::atomic<uint64_t> head_{0};  // next slot to pop
  alignas(64) std::atomic<uint64_t> tail_{0};  // next slot to fill
  alignas(64) std::atomic<bool> eof_{false};
  std::atomic<bool> closed_{false};
  std::atomic<int64_t> pushed_{0};
  // Waiting flags for the park/wake handshake; mutable because the arming
  // re-checks (HasData & co.) are const.
  mutable std::atomic<bool> consumer_waiting_{false};
  mutable std::atomic<bool> producer_waiting_{false};
};

/// Hash fan-out for partitioned intra-query parallelism (§4.3): routes each
/// tuple of a producer's output to one of N partition exchange edges, so the
/// N packets of a parallel hash-join or partial-aggregation each receive a
/// disjoint, key-complete share of the stream.
///
/// The partition function is the hash of the partition key — either key
/// *columns* (equi-join keys: both join inputs use the same RowKeyHash, so
/// matching keys always meet in the same partition) or key *expressions*
/// (group-by exprs of a partial aggregation) — taken modulo N. With no key
/// (a global aggregate), tuples are dealt round-robin from a caller-held
/// cursor. Does not own the buffers: they live in StagedQuery::buffers with
/// every other exchange buffer so cancellation closes them uniformly.
class PartitionedExchange {
 public:
  explicit PartitionedExchange(std::vector<ExchangeBuffer*> partitions)
      : partitions_(std::move(partitions)) {}

  /// Partition on the hash of these column positions of the input tuple.
  void SetKeyColumns(std::vector<size_t> columns) {
    key_columns_ = std::move(columns);
  }
  /// Partition on the hash of these expressions evaluated over the input
  /// tuple (pointers must outlive the exchange; they point into the plan).
  void SetKeyExprs(std::vector<const optimizer::BoundExpr*> exprs) {
    key_exprs_ = std::move(exprs);
  }

  size_t num_partitions() const { return partitions_.size(); }
  ExchangeBuffer* partition(size_t i) const { return partitions_[i]; }

  /// The partition for `tuple`. `rr_cursor` is the caller's (per-producer)
  /// round-robin cursor, advanced only when the exchange has no key.
  StatusOr<size_t> PartitionOf(const catalog::Tuple& tuple,
                               uint64_t* rr_cursor) const;

  /// Batch-aware routing: hashes the whole batch in one pass, then scatters
  /// the tuples into `staging` (one staging batch per partition; must be
  /// sized num_partitions()). `*batch` is consumed. The hash loop runs over
  /// the batch without touching any exchange buffer — partition pushes are
  /// the caller's (it flushes full staging batches), so one batch pays one
  /// routing pass instead of a per-tuple route-then-push. `route` is
  /// caller-owned scratch for the per-tuple targets (reused across batches
  /// to avoid an allocation per batch).
  Status ScatterBatch(RowBatch* batch, uint64_t* rr_cursor,
                      std::vector<RowBatch>* staging,
                      std::vector<uint32_t>* route) const;

 private:
  std::vector<ExchangeBuffer*> partitions_;
  std::vector<size_t> key_columns_;
  std::vector<const optimizer::BoundExpr*> key_exprs_;
};

}  // namespace stagedb::engine

#endif  // STAGEDB_ENGINE_EXCHANGE_H_
