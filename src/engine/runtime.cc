#include "engine/runtime.h"

#include <algorithm>
#include <cassert>

#include "common/clock.h"
#include "common/string_util.h"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace stagedb::engine {

// Lock ordering: exchange-buffer locks may be held while calling
// Stage::Enqueue/Activate (which take the runtime mutex). The runtime never
// calls back into task or buffer code while holding its mutex. The policy
// object is only invoked with the runtime mutex held and must not block.

namespace {

int64_t NowMicros() { return RealClock::Instance()->NowMicros(); }

/// free-run: no rotation; every stage serves whenever it has packets.
class FreeRunPolicy : public SchedulingPolicy {
 public:
  std::string name() const override { return "free-run"; }
  bool free_run() const override { return true; }
};

/// non-gated: exhaustive service — the visit admits arrivals and ends only
/// when the stage is fully drained.
class NonGatedPolicy : public SchedulingPolicy {
 public:
  std::string name() const override { return "non-gated"; }
  int64_t OnVisitStart(size_t) override { return kUnbounded; }
};

/// D-gated: one gate per visit, closed at rotation arrival.
class DGatedPolicy : public SchedulingPolicy {
 public:
  std::string name() const override { return "D-gated"; }
  int64_t OnVisitStart(size_t queued) override {
    return static_cast<int64_t>(queued);
  }
};

/// T-gated(k): up to k gate rounds per visit.
class TGatedPolicy : public SchedulingPolicy {
 public:
  explicit TGatedPolicy(int gate_rounds)
      : gate_rounds_(std::max(2, gate_rounds)) {}
  std::string name() const override {
    return StrFormat("T-gated(%d)", gate_rounds_);
  }
  int64_t OnVisitStart(size_t queued) override {
    return static_cast<int64_t>(queued);
  }
  int64_t OnGateExhausted(size_t queued, int rounds_done) override {
    return rounds_done < gate_rounds_ ? static_cast<int64_t>(queued) : 0;
  }

 private:
  const int gate_rounds_;
};

void PinThread(std::thread* thread, int cpu) {
#if defined(__linux__)
  if (cpu < 0) return;
  const unsigned ncpu = std::max(1u, std::thread::hardware_concurrency());
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu) % ncpu, &set);
  pthread_setaffinity_np(thread->native_handle(), sizeof(set), &set);
#else
  (void)thread;
  (void)cpu;
#endif
}

}  // namespace

StagePoolSpec PoolSpecFor(const std::map<std::string, StagePoolSpec>& pools,
                          const std::string& name, int default_workers) {
  auto it = pools.find(name);
  if (it != pools.end()) return it->second;
  StagePoolSpec spec;
  spec.num_workers = default_workers;
  return spec;
}

std::unique_ptr<SchedulingPolicy> MakeSchedulerPolicy(SchedulerPolicy policy,
                                                      int gate_rounds) {
  switch (policy) {
    case SchedulerPolicy::kFreeRun:
      return std::make_unique<FreeRunPolicy>();
    case SchedulerPolicy::kCohort:  // == kNonGated
      return std::make_unique<NonGatedPolicy>();
    case SchedulerPolicy::kDGated:
      return std::make_unique<DGatedPolicy>();
    case SchedulerPolicy::kTGated:
      return std::make_unique<TGatedPolicy>(gate_rounds);
  }
  return std::make_unique<FreeRunPolicy>();
}

// Caller holds the runtime mutex and has already transitioned the packet to
// kQueued. The single place queue membership is granted, so the wait-time
// stamp and the rotation update cannot be missed by any enqueue path.
void Stage::PushLocked(StageTask* task) {
  task->enqueue_micros_ = NowMicros();
  queue_.push_back(task);
  // run_mu_ IS runtime_->mu_, but the analysis matches capability
  // expressions structurally and cannot equate the two spellings; restate
  // the held lock under the runtime's name for the REQUIRES(mu_) call.
  runtime_->mu_.AssertHeld();
  runtime_->MaybeRotateLocked();
}

void Stage::Enqueue(StageTask* task) {
  // A packet may be (re)queued from idle (fresh, parked, or moving between
  // stages) or from running (worker requeue after kYield). The CAS winner
  // re-homes the packet, which is how packets travel through the lifecycle
  // stages (connect -> parse -> optimize -> execute -> disconnect).
  auto expected = StageTask::State::kIdle;
  if (!task->state_.compare_exchange_strong(expected,
                                            StageTask::State::kQueued)) {
    expected = StageTask::State::kRunning;
    if (!task->state_.compare_exchange_strong(expected,
                                              StageTask::State::kQueued)) {
      return;  // already queued or done
    }
  }
  task->home_stage_ = this;
  {
    MutexLock lock(*run_mu_);
    PushLocked(task);
  }
  runtime_->cv_.NotifyAll();
}

void Stage::Activate(StageTask* task) {
  auto expected = StageTask::State::kIdle;
  if (!task->state_.compare_exchange_strong(expected,
                                            StageTask::State::kQueued)) {
    if (expected != StageTask::State::kRunning) {
      return;  // queued or done: it will see the new state itself
    }
    // Still running: its worker may be about to park it. Retry under the
    // runtime mutex, which serializes with the park decision in FinishTask;
    // if the packet is still running there, leave a wake-pending marker the
    // parking worker consumes (it requeues instead of parking).
    MutexLock lock(*run_mu_);
    expected = StageTask::State::kIdle;
    if (!task->state_.compare_exchange_strong(expected,
                                              StageTask::State::kQueued)) {
      if (expected == StageTask::State::kRunning) {
        task->wake_pending_.store(true, std::memory_order_relaxed);
      }
      return;
    }
    PushLocked(task);
  } else {
    MutexLock lock(*run_mu_);
    PushLocked(task);
  }
  runtime_->cv_.NotifyAll();
}

size_t Stage::queue_depth() const {
  MutexLock lock(*run_mu_);
  return queue_.size();
}

StageRuntime::StageRuntime(SchedulerPolicy policy)
    : StageRuntime(MakeSchedulerPolicy(policy)) {}

StageRuntime::StageRuntime(std::unique_ptr<SchedulingPolicy> policy)
    : policy_(std::move(policy)), free_run_(policy_->free_run()) {
  assert(policy_ != nullptr);
}

StageRuntime::~StageRuntime() { Shutdown(); }

Stage* StageRuntime::CreateStage(const std::string& name, int num_workers) {
  StagePoolSpec spec;
  spec.num_workers = num_workers;
  return CreateStage(name, spec);
}

Stage* StageRuntime::CreateStage(const std::string& name, StagePoolSpec spec) {
  spec.num_workers = std::max(1, spec.num_workers);
  std::unique_ptr<Stage> stage(
      new Stage(this, &mu_, name, static_cast<int>(stages_.size()), spec));
  Stage* ptr = stage.get();
  {
    MutexLock lock(mu_);
    stages_.push_back(std::move(stage));
  }
  for (int i = 0; i < spec.num_workers; ++i) {
    workers_.emplace_back([this, ptr] { WorkerLoop(ptr); });
    PinThread(&workers_.back(), spec.pinned_cpu);
  }
  return ptr;
}

void StageRuntime::Shutdown() {
  {
    MutexLock lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

void StageRuntime::MaybeRotateLocked() {
  if (free_run_ || stages_.empty()) return;
  if (visit_open_ && active_stage_ < stages_.size()) {
    Stage* active = stages_[active_stage_].get();
    // mu_ IS active->run_mu_; the analysis cannot equate the spellings.
    active->run_mu_->AssertHeld();
    const bool gate_open = gate_remaining_ == SchedulingPolicy::kUnbounded
                               ? !active->queue_.empty()
                               : gate_remaining_ > 0;
    if (gate_open || active->inflight_ > 0) return;  // visit continues
    // Gate exhausted and the stage is idle: the policy may re-gate over the
    // packets that arrived during the visit (T-gated), else the visit ends.
    // Non-positive admissions (other than kUnbounded) end the visit — an
    // open visit with an empty gate would stall the rotation forever.
    if (!active->queue_.empty()) {
      const int64_t admit = policy_->OnGateExhausted(active->queue_.size(),
                                                     visit_rounds_);
      if (admit == SchedulingPolicy::kUnbounded || admit > 0) {
        gate_remaining_ =
            admit == SchedulingPolicy::kUnbounded
                ? admit
                : std::min<int64_t>(admit, active->queue_.size());
        ++visit_rounds_;
        ++active->gate_rounds_;
        return;
      }
    }
    visit_open_ = false;
  }
  // Advance to the next stage with queued packets (round-robin; the current
  // stage is considered last) and open a fresh visit there. A stage whose
  // OnVisitStart admits nothing is skipped this scan (no empty-gated visit
  // is ever opened), so one refusing stage cannot wedge the others; the
  // scan re-runs on every enqueue/finish event.
  const size_t n = stages_.size();
  for (size_t k = 1; k <= n; ++k) {
    const size_t idx = (active_stage_ + k) % n;
    Stage* next = stages_[idx].get();
    next->run_mu_->AssertHeld();  // mu_ under the stage's spelling
    if (next->queue_.empty()) continue;
    const int64_t admit = policy_->OnVisitStart(next->queue_.size());
    if (admit != SchedulingPolicy::kUnbounded && admit <= 0) continue;
    if (idx != active_stage_) {
      active_stage_ = idx;
      stage_switches_.fetch_add(1, std::memory_order_relaxed);
    }
    gate_remaining_ = admit == SchedulingPolicy::kUnbounded
                          ? admit
                          : std::min<int64_t>(admit, next->queue_.size());
    visit_rounds_ = 1;
    visit_open_ = true;
    ++next->visits_;
    ++next->gate_rounds_;
    return;
  }
  // No queued work anywhere (or no stage admitted): stay idle until the
  // next Enqueue/Activate re-runs the scan.
}

StageTask* StageRuntime::WaitForTask(Stage* stage) {
  MutexLock lock(mu_);
  // mu_ IS stage->run_mu_; the analysis cannot equate the two spellings, so
  // restate the held lock under the stage's name for its guarded fields.
  stage->run_mu_->AssertHeld();
  while (true) {
    if (shutdown_) return nullptr;
    bool allowed = free_run_;
    if (!allowed && visit_open_ && active_stage_ < stages_.size() &&
        stages_[active_stage_].get() == stage) {
      allowed = gate_remaining_ == SchedulingPolicy::kUnbounded ||
                gate_remaining_ > 0;
    }
    if (allowed && !stage->queue_.empty()) {
      StageTask* task = stage->queue_.front();
      stage->queue_.pop_front();
      if (gate_remaining_ > 0) --gate_remaining_;
      auto expected = StageTask::State::kQueued;
      const bool ok = task->state_.compare_exchange_strong(
          expected, StageTask::State::kRunning);
      assert(ok && "queued packet not in queued state");
      (void)ok;
      ++stage->inflight_;
      ++stage->pops_;
      const int64_t now = NowMicros();
      stage->wait_micros_.Record(
          static_cast<double>(now - task->enqueue_micros_));
      task->service_start_micros_ = now;
      return task;
    }
    cv_.Wait(mu_);
  }
}

void StageRuntime::FinishTask(Stage* stage, StageTask* task,
                              RunOutcome outcome) {
  {
    MutexLock lock(mu_);
    stage->run_mu_->AssertHeld();  // mu_ under the stage's spelling
    --stage->inflight_;
    stage->service_micros_.Record(
        static_cast<double>(NowMicros() - task->service_start_micros_));
  }
  switch (outcome) {
    case RunOutcome::kDone: {
      task->state_.store(StageTask::State::kDone);
      stage->processed_.fetch_add(1, std::memory_order_relaxed);
      // After OnRetired the packet may be freed by its owner; it must be the
      // last access in the runtime.
      task->OnRetired();
      task = nullptr;
      // The inflight decrement above may have ended the visit; the other
      // outcomes rotate inside their (Push|Enqueue) calls.
      {
        MutexLock lock(mu_);
        MaybeRotateLocked();
      }
      cv_.NotifyAll();
      break;
    }
    case RunOutcome::kYield:
      stage->yielded_.fetch_add(1, std::memory_order_relaxed);
      stage->Enqueue(task);  // transitions kRunning -> kQueued
      break;
    case RunOutcome::kMoved: {
      stage->processed_.fetch_add(1, std::memory_order_relaxed);
      Stage* next = task->next_stage_;
      task->next_stage_ = nullptr;
      assert(next != nullptr && "kMoved without a destination stage");
      next->Enqueue(task);  // transitions kRunning -> kQueued on `next`
      break;
    }
    case RunOutcome::kBlocked: {
      stage->blocked_.fetch_add(1, std::memory_order_relaxed);
      // Decide park-vs-requeue while this worker still owns the packet
      // (state kRunning): once kIdle is published, another thread may
      // activate, serve, and retire the packet, so it must never be touched
      // after that store. CanMakeProgress runs outside the runtime mutex
      // (it may take exchange-buffer locks); wake_pending_ — set by an
      // Activate that raced with Run() — is consumed under the mutex, which
      // serializes with Activate's locked retry. (A flag set during a Run
      // that ends in kYield/kMoved survives to the next park and causes at
      // most one spurious requeue — benign, the packet just re-blocks.)
      const bool can_progress = task->CanMakeProgress();
      {
        MutexLock lock(mu_);
        stage->run_mu_->AssertHeld();  // mu_ under the stage's spelling
        const bool woken =
            task->wake_pending_.exchange(false, std::memory_order_relaxed);
        if (can_progress || woken) {
          task->state_.store(StageTask::State::kQueued);
          stage->PushLocked(task);
        } else {
          task->state_.store(StageTask::State::kIdle);  // parked; hands off
          MaybeRotateLocked();
        }
      }
      cv_.NotifyAll();
      break;
    }
  }
}

void StageRuntime::WorkerLoop(Stage* stage) {
  while (true) {
    StageTask* task = WaitForTask(stage);
    if (task == nullptr) return;
    const RunOutcome outcome = task->Run();
    FinishTask(stage, task, outcome);
  }
}

StageRuntime::StatsSnapshot StageRuntime::Stats() const {
  MutexLock lock(mu_);
  StatsSnapshot snap;
  snap.policy = policy_->name();
  snap.stage_switches = stage_switches_.load(std::memory_order_relaxed);
  snap.stages.reserve(stages_.size());
  for (const auto& owned : stages_) {
    const Stage* stage = owned.get();
    stage->run_mu_->AssertHeld();  // mu_ under the stage's spelling
    StageStats s;
    s.name = stage->name_;
    s.num_workers = stage->spec_.num_workers;
    s.pinned_cpu = stage->spec_.pinned_cpu;
    s.queue_depth = stage->queue_.size();
    s.processed = stage->processed_.load(std::memory_order_relaxed);
    s.yielded = stage->yielded_.load(std::memory_order_relaxed);
    s.blocked = stage->blocked_.load(std::memory_order_relaxed);
    s.parallel_packets =
        stage->parallel_packets_.load(std::memory_order_relaxed);
    s.parallel_groups =
        stage->parallel_groups_.load(std::memory_order_relaxed);
    s.visits = stage->visits_;
    s.gate_rounds = stage->gate_rounds_;
    s.pops = stage->pops_;
    s.wait_micros = stage->wait_micros_;
    s.service_micros = stage->service_micros_;
    snap.stages.push_back(std::move(s));
  }
  return snap;
}

std::string StageRuntime::StatsSnapshot::ToString() const {
  std::string out =
      StrFormat("policy=%s stage_switches=%lld\n", policy.c_str(),
                static_cast<long long>(stage_switches));
  for (const StageStats& s : stages) {
    out += StrFormat(
        "  %-12s workers=%d%s depth=%zu pops=%lld visits=%lld "
        "pkts/visit=%.1f wait_p50=%.0fus wait_p95=%.0fus svc_p50=%.0fus\n",
        s.name.c_str(), s.num_workers,
        s.pinned_cpu >= 0 ? StrFormat("@cpu%d", s.pinned_cpu).c_str() : "",
        s.queue_depth, static_cast<long long>(s.pops),
        static_cast<long long>(s.visits), s.PacketsPerVisit(),
        s.wait_micros.Percentile(50), s.wait_micros.Percentile(95),
        s.service_micros.Percentile(50));
    if (s.parallel_packets > 0) {
      out += StrFormat("  %-12s parallel_packets=%lld groups=%lld\n",
                       s.name.c_str(),
                       static_cast<long long>(s.parallel_packets),
                       static_cast<long long>(s.parallel_groups));
    }
  }
  if (group_commit.enabled) {
    const double per_commit =
        group_commit.commits == 0
            ? 0.0
            : static_cast<double>(group_commit.batches) / group_commit.commits;
    out += StrFormat(
        "  group_commit commits=%lld batches=%lld syncs=%lld "
        "fsyncs/commit=%.3f batch_p50=%.0f flush_p50=%.0fus flush_p95=%.0fus\n",
        static_cast<long long>(group_commit.commits),
        static_cast<long long>(group_commit.batches),
        static_cast<long long>(group_commit.syncs), per_commit,
        group_commit.batch_size.Percentile(50),
        group_commit.flush_micros.Percentile(50),
        group_commit.flush_micros.Percentile(95));
  }
  if (plan_cache.hits + plan_cache.misses + plan_cache.invalidations > 0) {
    out += StrFormat(
        "  plan_cache   hits=%llu misses=%llu invalidations=%llu "
        "evictions=%llu entries=%llu\n",
        static_cast<unsigned long long>(plan_cache.hits),
        static_cast<unsigned long long>(plan_cache.misses),
        static_cast<unsigned long long>(plan_cache.invalidations),
        static_cast<unsigned long long>(plan_cache.evictions),
        static_cast<unsigned long long>(plan_cache.entries));
  }
  return out;
}

}  // namespace stagedb::engine
