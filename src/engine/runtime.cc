#include "engine/runtime.h"

#include <cassert>

namespace stagedb::engine {

// Lock ordering: exchange-buffer locks may be held while calling
// Stage::Enqueue/Activate (which take the runtime mutex). The runtime never
// calls back into task or buffer code while holding its mutex.

void Stage::Enqueue(StageTask* task) {
  // A packet may be (re)queued from idle (fresh, parked, or moving between
  // stages) or from running (worker requeue after kYield). The CAS winner
  // re-homes the packet, which is how packets travel through the lifecycle
  // stages (connect -> parse -> optimize -> execute -> disconnect).
  auto expected = StageTask::State::kIdle;
  if (!task->state_.compare_exchange_strong(expected,
                                            StageTask::State::kQueued)) {
    expected = StageTask::State::kRunning;
    if (!task->state_.compare_exchange_strong(expected,
                                              StageTask::State::kQueued)) {
      return;  // already queued or done
    }
  }
  task->home_stage_ = this;
  {
    std::lock_guard<std::mutex> lock(runtime_->mu_);
    queue_.push_back(task);
    runtime_->MaybeRotateLocked();
  }
  runtime_->cv_.notify_all();
}

void Stage::Activate(StageTask* task) {
  auto expected = StageTask::State::kIdle;
  if (!task->state_.compare_exchange_strong(expected,
                                            StageTask::State::kQueued)) {
    return;  // running, queued, or done: it will see the new state itself
  }
  {
    std::lock_guard<std::mutex> lock(runtime_->mu_);
    queue_.push_back(task);
    runtime_->MaybeRotateLocked();
  }
  runtime_->cv_.notify_all();
}

size_t Stage::queue_depth() const {
  std::lock_guard<std::mutex> lock(runtime_->mu_);
  return queue_.size();
}

StageRuntime::StageRuntime(SchedulerPolicy policy) : policy_(policy) {}

StageRuntime::~StageRuntime() { Shutdown(); }

Stage* StageRuntime::CreateStage(const std::string& name, int num_workers) {
  std::unique_ptr<Stage> stage(
      new Stage(this, name, static_cast<int>(stages_.size()), num_workers));
  Stage* ptr = stage.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stages_.push_back(std::move(stage));
  }
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this, ptr] { WorkerLoop(ptr); });
  }
  return ptr;
}

void StageRuntime::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

void StageRuntime::MaybeRotateLocked() {
  if (policy_ != SchedulerPolicy::kCohort || stages_.empty()) return;
  Stage* active = active_stage_ < stages_.size()
                      ? stages_[active_stage_].get()
                      : nullptr;
  if (active != nullptr &&
      (!active->queue_.empty() || active->inflight_ > 0)) {
    return;  // current stage still has work: exhaustive (non-gated) service
  }
  // Advance to the next stage with queued packets.
  const size_t n = stages_.size();
  for (size_t k = 1; k <= n; ++k) {
    const size_t idx = (active_stage_ + k) % n;
    if (!stages_[idx]->queue_.empty()) {
      if (idx != active_stage_) {
        active_stage_ = idx;
        stage_switches_.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
  }
}

StageTask* StageRuntime::WaitForTask(Stage* stage) {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (shutdown_) return nullptr;
    const bool allowed =
        policy_ == SchedulerPolicy::kFreeRun ||
        (active_stage_ < stages_.size() &&
         stages_[active_stage_].get() == stage);
    if (allowed && !stage->queue_.empty()) {
      StageTask* task = stage->queue_.front();
      stage->queue_.pop_front();
      auto expected = StageTask::State::kQueued;
      const bool ok = task->state_.compare_exchange_strong(
          expected, StageTask::State::kRunning);
      assert(ok && "queued packet not in queued state");
      (void)ok;
      ++stage->inflight_;
      return task;
    }
    cv_.wait(lock);
  }
}

void StageRuntime::FinishTask(Stage* stage, StageTask* task,
                              RunOutcome outcome) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --stage->inflight_;
  }
  switch (outcome) {
    case RunOutcome::kDone:
      task->state_.store(StageTask::State::kDone);
      stage->processed_.fetch_add(1, std::memory_order_relaxed);
      // After OnRetired the packet may be freed by its owner; it must be the
      // last access in the runtime.
      task->OnRetired();
      task = nullptr;
      break;
    case RunOutcome::kYield:
      stage->yielded_.fetch_add(1, std::memory_order_relaxed);
      stage->Enqueue(task);  // transitions kRunning -> kQueued
      break;
    case RunOutcome::kMoved: {
      stage->processed_.fetch_add(1, std::memory_order_relaxed);
      Stage* next = task->next_stage_;
      task->next_stage_ = nullptr;
      assert(next != nullptr && "kMoved without a destination stage");
      next->Enqueue(task);  // transitions kRunning -> kQueued on `next`
      break;
    }
    case RunOutcome::kBlocked: {
      stage->blocked_.fetch_add(1, std::memory_order_relaxed);
      task->state_.store(StageTask::State::kIdle);
      // Close the park/wake race: a producer may have made progress possible
      // between Run() returning and the state store above.
      if (task->CanMakeProgress()) stage->Activate(task);
      break;
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    MaybeRotateLocked();
  }
  cv_.notify_all();
}

void StageRuntime::WorkerLoop(Stage* stage) {
  while (true) {
    StageTask* task = WaitForTask(stage);
    if (task == nullptr) return;
    const RunOutcome outcome = task->Run();
    FinishTask(stage, task, outcome);
  }
}

}  // namespace stagedb::engine
