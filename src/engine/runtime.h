// The staged runtime: stages with queues and worker pools, packets
// (StageTask), and two-level scheduling.
//
// This implements §4.1 of the paper: "A stage is an independent server with
// its own queue, thread support, and resource management ... Stages accept
// packets, perform work on the packets, and may enqueue the same or newly
// created packets to other stages."
//
// Two-level scheduling (§4.1.1): local FIFO service by each stage's worker
// threads, and a global SchedulingPolicy deciding which stage the CPU
// serves. The policy family is the one Figure 5 compares (definitions:
// docs/DESIGN.md §3, mirrored from simsched::Policy):
//   * free-run   — every stage's workers run whenever they have packets (the
//                  natural SMP operating point of §5.3); no cohort rotation.
//   * non-gated  — one stage is active at a time and drains exhaustively:
//                  packets arriving during the visit are admitted. This is
//                  the single-CPU affinity mode of §4.3 ("rotating the
//                  thread group priorities among the stages").
//   * D-gated    — the gate closes when the rotation arrives: only packets
//                  queued at that instant are served this visit; arrivals
//                  (including yield re-queues) wait for the next visit.
//   * T-gated(k) — gated, but the gate may close and re-open up to k times
//                  per visit before the rotation moves on.
#ifndef STAGEDB_ENGINE_RUNTIME_H_
#define STAGEDB_ENGINE_RUNTIME_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "common/mutex.h"
#include "common/stats.h"
#include "common/status.h"

namespace stagedb::engine {

class Stage;
class StageRuntime;

/// What a packet's Run() reports back to its stage.
enum class RunOutcome {
  kDone,     ///< this packet's work is finished; do not requeue
  kYield,    ///< more work available now; requeue at the back of the queue
  kBlocked,  ///< cannot proceed (input empty / output full); park until woken
  kMoved,    ///< forward the packet to the stage set via set_next_stage()
             ///< (the paper's "forwarding the packet to the next stage")
};

/// A packet: a unit of work for one query at one stage (the paper's packet
/// carrying the query's "backpack"). Subclasses hold the query state.
class StageTask {
 public:
  virtual ~StageTask() = default;

  /// Performs a bounded amount of work. Called by stage worker threads.
  virtual RunOutcome Run() = 0;

  /// Re-checked after a kBlocked outcome, just before parking (while the
  /// worker still owns the packet): returning true requeues instead of
  /// parking, closing the race between deciding to park and a
  /// producer/consumer making progress possible.
  virtual bool CanMakeProgress() { return false; }

  /// Called exactly once, after a kDone outcome, when the runtime will never
  /// touch this packet again. Completion notification (which may free the
  /// packet) must happen here, not inside Run().
  virtual void OnRetired() {}

  int64_t query_id() const { return query_id_; }
  void set_query_id(int64_t id) { query_id_ = id; }

  /// Destination for a kMoved outcome (set inside Run()).
  void set_next_stage(Stage* stage) { next_stage_ = stage; }

 private:
  friend class Stage;
  friend class StageRuntime;
  enum class State { kIdle, kQueued, kRunning, kDone };
  std::atomic<State> state_{State::kIdle};
  /// Set by Activate when it finds the packet still kRunning (the worker has
  /// not parked it yet); consumed under the runtime mutex by the park path,
  /// which requeues instead of parking. This hand-off means no thread ever
  /// touches the packet after its worker published kIdle — the wake-up is
  /// never lost and the packet cannot be served-and-retired under a thread
  /// still inspecting it.
  std::atomic<bool> wake_pending_{false};
  Stage* home_stage_ = nullptr;
  Stage* next_stage_ = nullptr;
  int64_t query_id_ = -1;
  // Timestamps for the wait/service histograms; written and read only while
  // the runtime mutex is held.
  int64_t enqueue_micros_ = 0;
  int64_t service_start_micros_ = 0;
};

/// The named members of the policy family (Figure 5). kCohort is the
/// pre-policy-object name for exhaustive cohort rotation and is kept as an
/// alias so existing call sites read unchanged.
enum class SchedulerPolicy {
  kFreeRun,
  kCohort,               ///< exhaustive (non-gated) cohort rotation
  kNonGated = kCohort,   ///< alias: the Figure-5 name for the same policy
  kDGated,
  kTGated,
};

/// Pluggable global scheduling policy (level two of §4.1.1's two-level
/// scheme). The runtime owns the rotation mechanics — one active stage, a
/// per-visit admission gate, FIFO service — and consults the policy, with
/// the runtime mutex held, for the admission decisions that distinguish the
/// Figure-5 family. Implementations must not block or call back into the
/// runtime.
class SchedulingPolicy {
 public:
  /// Admission value meaning "no bound": serve as long as the queue is
  /// non-empty (exhaustive service).
  static constexpr int64_t kUnbounded = -1;

  virtual ~SchedulingPolicy() = default;

  /// Human-readable policy name for stats and bench reports.
  virtual std::string name() const = 0;

  /// True = bypass cohort rotation entirely: every stage's workers may serve
  /// whenever their queue is non-empty. OnVisitStart/OnGateExhausted are
  /// never called.
  virtual bool free_run() const { return false; }

  /// The rotation arrived at a stage with `queued` packets: how many
  /// dequeues the first gate round admits (clamped to `queued`), or
  /// kUnbounded for exhaustive service.
  virtual int64_t OnVisitStart(size_t queued) {
    (void)queued;
    return kUnbounded;
  }

  /// The current gate is exhausted, no packet of this stage is in service,
  /// and `queued` packets (arrivals during the visit) are waiting:
  /// return the admission for another gate round, or 0 to end the visit and
  /// rotate. `rounds_done` counts gate rounds already served this visit.
  virtual int64_t OnGateExhausted(size_t queued, int rounds_done) {
    (void)queued;
    (void)rounds_done;
    return 0;
  }
};

/// Builds the named policies: kFreeRun, kCohort/kNonGated, kDGated, and
/// kTGated with `gate_rounds` rounds per visit (2 = "T-gated(2)";
/// values < 2 are clamped to 2 — T-gated(1) is D-gated).
std::unique_ptr<SchedulingPolicy> MakeSchedulerPolicy(SchedulerPolicy policy,
                                                      int gate_rounds = 2);

/// Per-stage worker-pool configuration. §4.1 gives each stage its own thread
/// support; §4.3 binds a stage's threads to a processor for cache affinity.
struct StagePoolSpec {
  int num_workers = 1;
  /// CPU to pin this stage's workers to (Linux; ignored elsewhere and taken
  /// modulo the hardware concurrency). -1 = unpinned. Best-effort: if the
  /// process's affinity mask excludes the CPU, the workers run unpinned.
  int pinned_cpu = -1;
};

/// The stage_pools lookup shared by the engine and the staged server: the
/// entry for `name` if present, else `default_workers` unpinned.
StagePoolSpec PoolSpecFor(const std::map<std::string, StagePoolSpec>& pools,
                          const std::string& name, int default_workers);

/// A stage: queue + worker pool + monitoring counters.
class Stage {
 public:
  const std::string& name() const { return name_; }
  int id() const { return id_; }
  int num_workers() const { return spec_.num_workers; }
  int pinned_cpu() const { return spec_.pinned_cpu; }

  /// Enqueues a packet. First activation binds the packet to this stage.
  void Enqueue(StageTask* task) EXCLUDES(*run_mu_);

  /// Wakes a parked packet (no-op if it is queued, running, or done). Safe to
  /// call from any thread; used by exchange buffers for producer/consumer
  /// activation.
  void Activate(StageTask* task) EXCLUDES(*run_mu_);

  // Monitoring (§5.2: each stage exposes its own utilization).
  int64_t packets_processed() const { return processed_; }
  int64_t packets_yielded() const { return yielded_; }
  int64_t packets_blocked() const { return blocked_; }
  size_t queue_depth() const EXCLUDES(*run_mu_);

  /// Intra-query parallelism accounting: `count` partition packets of one
  /// dop>1 operator were created on this stage (called by the engine when it
  /// fans a plan node out; §4.3).
  void CountParallelPackets(int64_t count) {
    parallel_packets_ += count;
    ++parallel_groups_;
  }
  int64_t parallel_packets() const { return parallel_packets_; }
  int64_t parallel_groups() const { return parallel_groups_; }

 private:
  friend class StageRuntime;
  Stage(StageRuntime* runtime, Mutex* run_mu, std::string name, int id,
        StagePoolSpec spec)
      : runtime_(runtime),
        run_mu_(run_mu),
        name_(std::move(name)),
        id_(id),
        spec_(spec) {}

  /// Appends an already-kQueued packet (caller holds the runtime mutex).
  void PushLocked(StageTask* task) REQUIRES(*run_mu_);

  StageRuntime* const runtime_;
  /// The runtime's scheduler mutex (always &runtime_->mu_), duplicated here
  /// so the GUARDED_BY annotations below can name it — StageRuntime is not
  /// yet declared, and the thread-safety analysis matches capability
  /// expressions structurally, so runtime_->mu_ would not be recognized as
  /// the lock StageRuntime methods hold as mu_. The runtime asserts the
  /// equivalence at its cross-object accesses (AssertHeld).
  Mutex* const run_mu_;
  const std::string name_;
  const int id_;
  const StagePoolSpec spec_;
  std::deque<StageTask*> queue_ GUARDED_BY(*run_mu_);
  int inflight_ GUARDED_BY(*run_mu_) = 0;  // workers running a packet
  std::atomic<int64_t> processed_{0};
  std::atomic<int64_t> yielded_{0};
  std::atomic<int64_t> blocked_{0};
  // Partition packets (and dop>1 operator groups) instantiated here.
  std::atomic<int64_t> parallel_packets_{0};
  std::atomic<int64_t> parallel_groups_{0};
  // Visit accounting and latency histograms.
  int64_t visits_ GUARDED_BY(*run_mu_) = 0;  // rotation arrivals (0 free-run)
  int64_t gate_rounds_ GUARDED_BY(*run_mu_) = 0;  // gate rounds served
  int64_t pops_ GUARDED_BY(*run_mu_) = 0;  // packets dequeued for service
  Histogram wait_micros_ GUARDED_BY(*run_mu_);     // enqueue -> dequeue
  Histogram service_micros_ GUARDED_BY(*run_mu_);  // one Run() invocation
};

/// Owns the stages and their worker threads.
class StageRuntime {
 public:
  /// Point-in-time copy of one stage's monitoring state (§5.2).
  struct StageStats {
    std::string name;
    int num_workers = 0;
    int pinned_cpu = -1;
    size_t queue_depth = 0;
    int64_t processed = 0;
    int64_t yielded = 0;
    int64_t blocked = 0;
    /// Partition packets created here by dop>1 operators, and how many such
    /// parallel operator groups they came from (0/0 when every plan ran at
    /// DOP=1).
    int64_t parallel_packets = 0;
    int64_t parallel_groups = 0;
    int64_t visits = 0;
    int64_t gate_rounds = 0;
    int64_t pops = 0;
    Histogram wait_micros;
    Histogram service_micros;
    /// Mean batch size per rotation arrival (the Figure-5 x-axis analogue).
    double PacketsPerVisit() const {
      return visits == 0 ? 0.0 : static_cast<double>(pops) / visits;
    }
  };

  /// Group-commit counters: how well the commit stage's batch window
  /// amortizes fsyncs (filled from GroupCommitStage::counters(); zero /
  /// disabled when no commit stage is attached).
  struct GroupCommitCounters {
    bool enabled = false;
    int64_t commits = 0;  ///< tickets acked
    int64_t batches = 0;  ///< flush rounds (one Sync() barrier each)
    int64_t syncs = 0;    ///< total WAL Sync() barriers (includes non-commit)
    Histogram batch_size;
    Histogram flush_micros;  ///< append-all + Sync latency per batch
  };

  /// Plan-cache counters mirrored into the snapshot by the Database facade
  /// (plain numbers here so the engine does not depend on the frontend
  /// module; see frontend::PlanCacheStats for the source of truth).
  struct PlanCacheCounters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t invalidations = 0;
    uint64_t evictions = 0;
    uint64_t entries = 0;
  };

  /// Consistent snapshot of the whole runtime, taken under the runtime
  /// mutex.
  struct StatsSnapshot {
    std::string policy;
    int64_t stage_switches = 0;
    std::vector<StageStats> stages;
    /// Front-end work-reuse counters (filled by Database::EngineStats; zero
    /// when no plan cache is attached).
    PlanCacheCounters plan_cache;
    /// Commit-stage fsync amortization (filled by Database::EngineStats).
    GroupCommitCounters group_commit;
    /// Multi-line human-readable report (one row per stage).
    std::string ToString() const;
  };

  explicit StageRuntime(SchedulerPolicy policy = SchedulerPolicy::kFreeRun);
  /// Takes ownership of a custom policy object (never null).
  explicit StageRuntime(std::unique_ptr<SchedulingPolicy> policy);
  ~StageRuntime();

  StageRuntime(const StageRuntime&) = delete;
  StageRuntime& operator=(const StageRuntime&) = delete;

  /// Creates a stage with its worker pool. All stages must be created before
  /// the first packet is enqueued.
  Stage* CreateStage(const std::string& name, int num_workers = 1);
  Stage* CreateStage(const std::string& name, StagePoolSpec spec);

  /// Stops all workers (drains nothing; callers should have completed or
  /// cancelled their queries).
  void Shutdown() EXCLUDES(mu_);

  const SchedulingPolicy& policy() const { return *policy_; }
  /// Number of times the cohort activation rotated between stages.
  int64_t stage_switches() const { return stage_switches_; }
  const std::vector<std::unique_ptr<Stage>>& stages() const { return stages_; }

  StatsSnapshot Stats() const EXCLUDES(mu_);

 private:
  friend class Stage;

  void WorkerLoop(Stage* stage);
  /// Blocks until a packet for `stage` may run under the global policy.
  StageTask* WaitForTask(Stage* stage) EXCLUDES(mu_);
  void FinishTask(Stage* stage, StageTask* task, RunOutcome outcome)
      EXCLUDES(mu_);
  /// Cohort modes: close/extend the current visit and advance the active
  /// stage per the policy.
  void MaybeRotateLocked() REQUIRES(mu_);

  const std::unique_ptr<SchedulingPolicy> policy_;
  const bool free_run_;
  mutable Mutex mu_;
  CondVar cv_;
  bool shutdown_ GUARDED_BY(mu_) = false;
  // Cohort rotation state. While a visit is open only the active stage's
  // workers may dequeue, and only while the gate admits.
  size_t active_stage_ GUARDED_BY(mu_) = 0;
  bool visit_open_ GUARDED_BY(mu_) = false;
  int64_t gate_remaining_ GUARDED_BY(mu_) = 0;  // kUnbounded = exhaustive
  int visit_rounds_ GUARDED_BY(mu_) = 0;  // gate rounds in the open visit
  std::atomic<int64_t> stage_switches_{0};
  // Appended to (under mu_) only by CreateStage, which must finish before
  // the first packet flows; read unlocked by stages() and the worker loops.
  std::vector<std::unique_ptr<Stage>> stages_;
  std::vector<std::thread> workers_;  // touched only by the owner thread
};

}  // namespace stagedb::engine

#endif  // STAGEDB_ENGINE_RUNTIME_H_
