// The staged runtime: stages with queues and worker pools, packets
// (StageTask), and two-level scheduling.
//
// This implements §4.1 of the paper: "A stage is an independent server with
// its own queue, thread support, and resource management ... Stages accept
// packets, perform work on the packets, and may enqueue the same or newly
// created packets to other stages."
//
// Two-level scheduling (§4.1.1): local FIFO service by each stage's worker
// threads, and a global policy deciding which stage the CPU serves:
//   * kFreeRun — every stage's workers run whenever they have packets (the
//     natural SMP operating point of §5.3).
//   * kCohort — one stage is active at a time; its workers drain the queue
//     (exhaustive / non-gated service) before the activation rotates to the
//     next stage with work. This is the single-CPU affinity mode of §4.3
//     ("rotating the thread group priorities among the stages").
#ifndef STAGEDB_ENGINE_RUNTIME_H_
#define STAGEDB_ENGINE_RUNTIME_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "common/status.h"

namespace stagedb::engine {

class Stage;
class StageRuntime;

/// What a packet's Run() reports back to its stage.
enum class RunOutcome {
  kDone,     ///< this packet's work is finished; do not requeue
  kYield,    ///< more work available now; requeue at the back of the queue
  kBlocked,  ///< cannot proceed (input empty / output full); park until woken
  kMoved,    ///< forward the packet to the stage set via set_next_stage()
             ///< (the paper's "forwarding the packet to the next stage")
};

/// A packet: a unit of work for one query at one stage (the paper's packet
/// carrying the query's "backpack"). Subclasses hold the query state.
class StageTask {
 public:
  virtual ~StageTask() = default;

  /// Performs a bounded amount of work. Called by stage worker threads.
  virtual RunOutcome Run() = 0;

  /// Re-checked after a kBlocked outcome before parking, to close the race
  /// between deciding to park and a producer/consumer waking us.
  virtual bool CanMakeProgress() { return false; }

  /// Called exactly once, after a kDone outcome, when the runtime will never
  /// touch this packet again. Completion notification (which may free the
  /// packet) must happen here, not inside Run().
  virtual void OnRetired() {}

  int64_t query_id() const { return query_id_; }
  void set_query_id(int64_t id) { query_id_ = id; }

  /// Destination for a kMoved outcome (set inside Run()).
  void set_next_stage(Stage* stage) { next_stage_ = stage; }

 private:
  friend class Stage;
  friend class StageRuntime;
  enum class State { kIdle, kQueued, kRunning, kDone };
  std::atomic<State> state_{State::kIdle};
  Stage* home_stage_ = nullptr;
  Stage* next_stage_ = nullptr;
  int64_t query_id_ = -1;
};

/// A stage: queue + worker pool + monitoring counters.
class Stage {
 public:
  const std::string& name() const { return name_; }
  int id() const { return id_; }

  /// Enqueues a packet. First activation binds the packet to this stage.
  void Enqueue(StageTask* task);

  /// Wakes a parked packet (no-op if it is queued, running, or done). Safe to
  /// call from any thread; used by exchange buffers for producer/consumer
  /// activation.
  void Activate(StageTask* task);

  // Monitoring (§5.2: each stage exposes its own utilization).
  int64_t packets_processed() const { return processed_; }
  int64_t packets_yielded() const { return yielded_; }
  int64_t packets_blocked() const { return blocked_; }
  size_t queue_depth() const;

 private:
  friend class StageRuntime;
  Stage(StageRuntime* runtime, std::string name, int id, int num_workers)
      : runtime_(runtime), name_(std::move(name)), id_(id),
        num_workers_(num_workers) {}

  StageRuntime* runtime_;
  const std::string name_;
  const int id_;
  const int num_workers_;
  std::deque<StageTask*> queue_;  // guarded by the runtime mutex
  int inflight_ = 0;              // workers currently running a packet
  std::atomic<int64_t> processed_{0};
  std::atomic<int64_t> yielded_{0};
  std::atomic<int64_t> blocked_{0};
};

/// Global scheduling policy across stages.
enum class SchedulerPolicy { kFreeRun, kCohort };

/// Owns the stages and their worker threads.
class StageRuntime {
 public:
  explicit StageRuntime(SchedulerPolicy policy = SchedulerPolicy::kFreeRun);
  ~StageRuntime();

  StageRuntime(const StageRuntime&) = delete;
  StageRuntime& operator=(const StageRuntime&) = delete;

  /// Creates a stage with its worker pool. All stages must be created before
  /// the first packet is enqueued.
  Stage* CreateStage(const std::string& name, int num_workers = 1);

  /// Stops all workers (drains nothing; callers should have completed or
  /// cancelled their queries).
  void Shutdown();

  SchedulerPolicy policy() const { return policy_; }
  /// Number of times the cohort activation rotated between stages.
  int64_t stage_switches() const { return stage_switches_; }
  const std::vector<std::unique_ptr<Stage>>& stages() const { return stages_; }

 private:
  friend class Stage;

  void WorkerLoop(Stage* stage);
  /// Blocks until a packet for `stage` may run under the global policy.
  StageTask* WaitForTask(Stage* stage);
  void FinishTask(Stage* stage, StageTask* task, RunOutcome outcome);
  /// Cohort mode: advance the active stage if the current one is exhausted.
  /// Caller holds mu_.
  void MaybeRotateLocked();

  const SchedulerPolicy policy_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
  size_t active_stage_ = 0;  // cohort mode
  std::atomic<int64_t> stage_switches_{0};
  std::vector<std::unique_ptr<Stage>> stages_;
  std::vector<std::thread> workers_;
  bool started_ = false;
};

}  // namespace stagedb::engine

#endif  // STAGEDB_ENGINE_RUNTIME_H_
