#include "engine/shared_scan.h"

#include <utility>

namespace stagedb::engine {

/// Per-table elevator state. Lives for the lifetime of the manager; the heap
/// pointer is only dereferenced while a reader is attached (i.e. while a
/// query over the table is in flight, which keeps the table alive).
class TableScan {
 public:
  TableScan(const storage::HeapFile* heap, size_t window_pages)
      : heap_(heap),
        first_page_(heap->first_page()),
        window_pages_(window_pages),
        cursor_(heap->first_page()) {}

  /// An entry is only reusable for the heap file it was built from. Page ids
  /// are never recycled within a buffer pool, so a table dropped and
  /// recreated at the same HeapFile address always has a different first
  /// page — a mismatch tells the manager the entry is stale.
  bool ValidFor(storage::PageId first_page) const {
    return first_page_ == first_page;
  }

  int64_t Attach() {
    MutexLock lock(mu_);
    const int64_t id = next_reader_id_++;
    readers_[id] = Reader{cursor_, cursor_};
    ++stats_.attaches;
    ++stats_.active_readers;
    return id;
  }

  void Detach(int64_t reader_id) {
    MutexLock lock(mu_);
    DetachLocked(reader_id);
  }

  /// Delivers the next page for `reader_id`. Returns false at end-of-scan
  /// (reader detached) or on error (*status non-OK, reader stays attached).
  bool NextPage(int64_t reader_id,
                std::shared_ptr<const std::vector<std::string>>* records,
                Status* status) {
    MutexLock lock(mu_);
    auto it = readers_.find(reader_id);
    if (it == readers_.end()) return false;  // completed earlier
    Reader& reader = it->second;
    const storage::PageId want = reader.next;
    std::shared_ptr<const std::vector<std::string>> page;
    storage::PageId next = storage::kInvalidPageId;
    // A cached page is only served while the heap is at the version it was
    // read at: any DML since makes the copy potentially stale, and the
    // reader must go back through the (latched) buffer-pool read.
    const uint64_t version = heap_->version();
    for (const CachedPage& cached : window_) {
      if (cached.id == want && cached.version == version) {
        page = cached.records;
        next = cached.next;
        ++stats_.window_hits;
        break;
      }
    }
    if (page == nullptr) {
      // The elevator's physical read. Performed under the table mutex: a
      // heap-page read is short (buffer-pool hit or one I/O) and serializing
      // it keeps the window and cursor trivially consistent.
      auto fresh = std::make_shared<std::vector<std::string>>();
      Status s = heap_->ReadPage(want, fresh.get(), &next);
      if (!s.ok()) {
        *status = std::move(s);
        return false;
      }
      page = std::move(fresh);
      window_.push_back(CachedPage{want, next, version, page});
      if (window_.size() > window_pages_) window_.pop_front();
      cursor_ = want;  // new readers attach at the elevator's head
      ++stats_.heap_page_reads;
    }
    // Advance circularly; wrapping back to the attach point ends the scan.
    const storage::PageId wrapped =
        next == storage::kInvalidPageId ? first_page_ : next;
    if (wrapped == reader.attach) {
      DetachLocked(reader_id);  // this delivery is the reader's last page
    } else {
      reader.next = wrapped;
    }
    ++stats_.pages_delivered;
    *records = std::move(page);
    return true;
  }

  SharedScanStats stats() const {
    MutexLock lock(mu_);
    return stats_;
  }

 private:
  struct Reader {
    storage::PageId attach = storage::kInvalidPageId;
    storage::PageId next = storage::kInvalidPageId;
  };
  struct CachedPage {
    storage::PageId id;
    storage::PageId next;
    uint64_t version;  // heap version the page was read at
    std::shared_ptr<const std::vector<std::string>> records;
  };

  void DetachLocked(int64_t reader_id) REQUIRES(mu_) {
    if (readers_.erase(reader_id) == 0) return;
    --stats_.active_readers;
    if (readers_.empty()) {
      // Last reader gone: drop the window and rewind the elevator so the
      // next (possibly solitary) scan starts at the first page, exactly like
      // a private HeapFile::Iterator.
      window_.clear();
      cursor_ = first_page_;
      ++stats_.cursor_resets;
    }
  }

  const storage::HeapFile* heap_;
  const storage::PageId first_page_;
  const size_t window_pages_;

  mutable Mutex mu_;
  // Attach point: last page physically read.
  storage::PageId cursor_ GUARDED_BY(mu_);
  std::map<int64_t, Reader> readers_ GUARDED_BY(mu_);
  std::deque<CachedPage> window_ GUARDED_BY(mu_);
  int64_t next_reader_id_ GUARDED_BY(mu_) = 1;
  SharedScanStats stats_ GUARDED_BY(mu_);
};

// ----------------------------------------------------------------- Cursor ---

SharedScanManager::Cursor& SharedScanManager::Cursor::operator=(
    Cursor&& o) noexcept {
  if (this != &o) {
    Detach();
    table_ = o.table_;
    reader_id_ = o.reader_id_;
    status_ = std::move(o.status_);
    o.table_ = nullptr;
    o.reader_id_ = -1;
  }
  return *this;
}

bool SharedScanManager::Cursor::NextPage(
    std::shared_ptr<const std::vector<std::string>>* records) {
  if (table_ == nullptr) return false;
  Status status;
  if (table_->NextPage(reader_id_, records, &status)) return true;
  if (!status.ok()) {
    status_ = std::move(status);
    Detach();
  } else {
    table_ = nullptr;  // clean end-of-scan: TableScan already detached us
    reader_id_ = -1;
  }
  return false;
}

void SharedScanManager::Cursor::Detach() {
  if (table_ == nullptr) return;
  table_->Detach(reader_id_);
  table_ = nullptr;
  reader_id_ = -1;
}

// ------------------------------------------------------- SharedScanManager --

SharedScanManager::SharedScanManager(size_t window_pages)
    : window_pages_(window_pages == 0 ? 1 : window_pages) {}

SharedScanManager::~SharedScanManager() = default;

SharedScanManager::Cursor SharedScanManager::Attach(
    const storage::HeapFile* heap) {
  TableScan* table = nullptr;
  {
    MutexLock lock(mu_);
    auto& slot = tables_[heap];
    // Replace entries left behind by a dropped table whose HeapFile address
    // was reused by a new table (detected via the first page id; see
    // TableScan::ValidFor). Such an entry necessarily has no live readers —
    // they would have kept the old table alive.
    if (slot == nullptr || !slot->ValidFor(heap->first_page())) {
      slot = std::make_unique<TableScan>(heap, window_pages_);
    }
    table = slot.get();
  }
  Cursor cursor;
  cursor.table_ = table;
  cursor.reader_id_ = table->Attach();
  return cursor;
}

SharedScanStats SharedScanManager::StatsFor(
    const storage::HeapFile* heap) const {
  MutexLock lock(mu_);
  auto it = tables_.find(heap);
  return it == tables_.end() ? SharedScanStats{} : it->second->stats();
}

SharedScanStats SharedScanManager::TotalStats() const {
  MutexLock lock(mu_);
  SharedScanStats total;
  for (const auto& [heap, table] : tables_) {
    const SharedScanStats s = table->stats();
    total.attaches += s.attaches;
    total.active_readers += s.active_readers;
    total.heap_page_reads += s.heap_page_reads;
    total.pages_delivered += s.pages_delivered;
    total.window_hits += s.window_hits;
    total.cursor_resets += s.cursor_resets;
  }
  return total;
}

}  // namespace stagedb::engine
