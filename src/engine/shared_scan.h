// Cooperative ("elevator") shared table scans — the run-time multiple-query
// optimization of §5.4: "queries queued up at the same [fscan] stage can
// share the results of ongoing operations".
//
// Each table has one circular scan cursor over its heap-file page chain. A
// newly activated fscan packet *attaches* at the cursor's current position,
// receives pages until the scan wraps back around to its attach point, then
// *detaches*. N concurrent scans of a table therefore cost about one physical
// pass instead of N: the lead reader performs the page reads and lagging
// readers are served from a bounded window of recently read pages (and,
// beyond the window, from buffer-pool hits on still-resident pages).
//
// The cursor is position-aware, not page-pinning: every heap read goes
// through HeapFile::ReadPage, which re-fetches via the buffer pool, so the
// elevator survives page eviction between deliveries.
#ifndef STAGEDB_ENGINE_SHARED_SCAN_H_
#define STAGEDB_ENGINE_SHARED_SCAN_H_

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "storage/heap_file.h"
#include "storage/page.h"

namespace stagedb::engine {

/// Monitoring counters for one table's elevator (or the sum over all
/// tables) — the fscan-stage half of §5.2's per-stage monitoring.
struct SharedScanStats {
  int64_t attaches = 0;         ///< readers that ever attached
  int64_t active_readers = 0;   ///< readers currently attached
  int64_t heap_page_reads = 0;  ///< pages physically read from the heap file
  int64_t pages_delivered = 0;  ///< page deliveries to readers (>= heap reads)
  int64_t window_hits = 0;      ///< deliveries served from the reuse window
  int64_t cursor_resets = 0;  ///< last-reader detaches (cursor to page 0)

  /// Pages handed out per physical heap read — the sharing factor.
  double DeliveriesPerRead() const {
    return heap_page_reads == 0
               ? 0.0
               : static_cast<double>(pages_delivered) / heap_page_reads;
  }
};

/// One elevator per table, shared by every fscan packet of that table's
/// stage. Owned by the StagedEngine; thread-safe.
class SharedScanManager {
 public:
  /// `window_pages` bounds the per-table reuse window (decoded pages kept in
  /// memory for lagging readers).
  // Both special members are out of line: TableScan is incomplete here.
  explicit SharedScanManager(size_t window_pages = 32);
  ~SharedScanManager();

  SharedScanManager(const SharedScanManager&) = delete;
  SharedScanManager& operator=(const SharedScanManager&) = delete;

  /// A reader's handle on a table elevator. Movable; detaches on destruction
  /// (or when the scan completes its full circle).
  class Cursor {
   public:
    Cursor() = default;
    Cursor(Cursor&& o) noexcept { *this = std::move(o); }
    Cursor& operator=(Cursor&& o) noexcept;
    ~Cursor() { Detach(); }

    /// Delivers the live records of the next page in elevator order. Returns
    /// false when the scan has wrapped to its attach point (end of scan) or
    /// on error — distinguish via status(). End-of-scan detaches the reader.
    bool NextPage(std::shared_ptr<const std::vector<std::string>>* records);

    /// Non-OK when NextPage stopped because of an error.
    const Status& status() const { return status_; }
    bool attached() const { return table_ != nullptr; }

    /// Early detach (e.g. the consumer cancelled the query mid-scan).
    void Detach();

   private:
    friend class SharedScanManager;
    class TableScan* table_ = nullptr;
    int64_t reader_id_ = -1;
    Status status_;
  };

  /// Attaches a reader to `heap`'s elevator at the cursor's current position.
  Cursor Attach(const storage::HeapFile* heap);

  /// Counters for one table's elevator (zeros if the table was never
  /// scanned).
  SharedScanStats StatsFor(const storage::HeapFile* heap) const;
  /// Counters summed over every table.
  SharedScanStats TotalStats() const;

 private:
  const size_t window_pages_;
  mutable Mutex mu_;  // guards the table map only
  std::map<const storage::HeapFile*, std::unique_ptr<class TableScan>> tables_
      GUARDED_BY(mu_);
};

}  // namespace stagedb::engine

#endif  // STAGEDB_ENGINE_SHARED_SCAN_H_
