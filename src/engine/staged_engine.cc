#include "engine/staged_engine.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "exec/partial_agg.h"
#include "exec/row_utils.h"
#include "optimizer/bound_expr.h"

namespace stagedb::engine {

using catalog::Tuple;
using catalog::Value;
using exec::AggAccumulator;
using exec::RowKey;
using exec::RowKeyHash;
using exec::RowKeyFromColumns;
using optimizer::EvalPredicate;
using optimizer::PhysicalPlan;
using optimizer::PlanKind;

// ------------------------------------------------------------ StagedQuery ---

StatusOr<std::vector<Tuple>> StagedQuery::Await() {
  MutexLock lock(mu_);
  cv_.Wait(mu_, [&]() REQUIRES(mu_) { return remaining_ == 0; });
  if (!status_.ok()) return status_;
  return std::move(rows_);
}

void StagedQuery::AppendResult(Tuple t) {
  MutexLock lock(mu_);
  rows_.push_back(std::move(t));
}

void StagedQuery::Fail(Status status) {
  {
    MutexLock lock(mu_);
    if (!failed_) {
      failed_ = true;
      status_ = std::move(status);
    }
  }
  // Cancel the dataflow: producers see closed sinks, consumers see EOF.
  // ForceEof (not MarkEof): a fan-in buffer normally waits for every
  // producer's EOF mark, but cancellation must not wait for anyone.
  for (auto& buffer : buffers) {
    buffer->Close();
    buffer->ForceEof();
  }
}

bool StagedQuery::done() const {
  MutexLock lock(mu_);
  return remaining_ == 0;
}

void StagedQuery::NotifyOnDone(std::function<void()> callback) {
  {
    MutexLock lock(mu_);
    if (remaining_ > 0) {
      on_done_ = std::move(callback);
      return;
    }
  }
  callback();  // already done: fire on the caller's thread
}

void StagedQuery::OnInstanceRetired() {
  std::function<void()> on_done;
  {
    MutexLock lock(mu_);
    --remaining_;
    if (remaining_ > 0) return;
    cv_.NotifyAll();
    on_done = std::move(on_done_);
  }
  if (on_done) on_done();
}

bool StagedQuery::failed() const {
  MutexLock lock(mu_);
  return failed_;
}

// ------------------------------------------------------- OperatorInstance ---

namespace {

/// Why a packet parked (drives CanMakeProgress).
enum class BlockReason { kNone, kInput0, kInput1, kAnyInput, kOutput };

/// One relational operator of one query: the paper's packet. Run() performs
/// up to a work quantum of page-granular processing and re-enqueues itself
/// when it cannot continue. A dop>1 plan node is instantiated as `dop`
/// packets (partitions) of the same node; each receives the hash partition
/// of the input streams its key share maps to (§4.3 intra-operator
/// parallelism).
class OperatorInstance : public StageTask {
 public:
  OperatorInstance(StagedEngine* engine, StagedQuery* query,
                   const PhysicalPlan* plan)
      : engine_(engine), query_(query), plan_(plan) {
    set_query_id(query->id);
  }

  std::vector<ExchangeBuffer*> inputs_;
  /// Output sinks: empty = root (rows append to the query result), one =
  /// the classic single-consumer edge, N = hash fan-out to the consumer's N
  /// partition packets through out_exchange_.
  std::vector<ExchangeBuffer*> outputs_;
  PartitionedExchange* out_exchange_ = nullptr;  // set iff outputs_ > 1
  int partition_ = 0;  // this packet's id within its dop group

  /// Called once the wiring above is final: sizes the per-partition output
  /// staging pages and decorrelates the round-robin cursors of sibling
  /// producers.
  void FinishWiring() {
    out_batches_.resize(outputs_.size());
    rr_cursor_ = static_cast<uint64_t>(partition_);
  }

  RunOutcome Run() override;
  bool CanMakeProgress() override;
  void OnRetired() override { query_->OnInstanceRetired(); }

 private:
  enum class Fetch { kTuple, kWait, kEof };
  enum class Sink { kOk, kFull, kClosed };

  struct InputCursor {
    RowBatch batch;
    size_t pos = 0;
  };

  /// Morsel size at this node's output edge: the optimizer's per-node hint
  /// when stamped, else the engine-wide §4.4(c) page size.
  size_t page_size() const {
    return plan_->batch_hint > 0 ? static_cast<size_t>(plan_->batch_hint)
                                 : engine_->options().tuples_per_page;
  }
  int quantum_tuples() const {
    return static_cast<int>(page_size()) *
           engine_->options().work_quantum_pages;
  }

  Fetch NextInput(size_t idx, Tuple* out) {
    InputCursor& cur = cursors_[idx];
    while (true) {
      if (cur.pos < cur.batch.tuples.size()) {
        *out = std::move(cur.batch.tuples[cur.pos++]);
        return Fetch::kTuple;
      }
      bool eof = false;
      if (inputs_[idx]->TryPop(&cur.batch, &eof)) {
        cur.pos = 0;
        continue;
      }
      return eof ? Fetch::kEof : Fetch::kWait;
    }
  }

  /// Batch-at-a-time fetch: takes the next whole morsel from input `idx`
  /// (zero-copy when the cursor holds an untouched batch — the common case
  /// for operators that never interleave with NextInput on the same input).
  /// kTuple means "got a non-empty batch".
  Fetch NextBatch(size_t idx, RowBatch* out) {
    InputCursor& cur = cursors_[idx];
    if (cur.pos < cur.batch.tuples.size()) {
      if (cur.pos == 0) {
        *out = std::move(cur.batch);
      } else {
        out->tuples.assign(
            std::make_move_iterator(cur.batch.tuples.begin() + cur.pos),
            std::make_move_iterator(cur.batch.tuples.end()));
      }
      cur.batch.clear();
      cur.pos = 0;
      return Fetch::kTuple;
    }
    bool eof = false;
    if (inputs_[idx]->TryPop(out, &eof)) return Fetch::kTuple;
    return eof ? Fetch::kEof : Fetch::kWait;
  }

  Sink EmitTuple(Tuple t) {
    if (outputs_.empty()) {
      query_->AppendResult(std::move(t));
      return Sink::kOk;
    }
    size_t idx = 0;
    if (out_exchange_ != nullptr) {
      auto p = out_exchange_->PartitionOf(t, &rr_cursor_);
      if (!p.ok()) {
        query_->Fail(p.status());
        return Sink::kClosed;  // caller finishes early; failure is recorded
      }
      idx = *p;
    }
    out_batches_[idx].tuples.push_back(std::move(t));
    if (out_batches_[idx].size() >= page_size()) return FlushPartition(idx);
    return Sink::kOk;
  }

  /// Batch-at-a-time emit. Always consumes *batch: tuples either reach an
  /// exchange buffer, the query result, or the per-partition staging batches
  /// (which EnsureOutputWritable re-flushes after a kFull park), so a caller
  /// never tracks a remainder. Single-consumer edges hand a full morsel to
  /// the buffer zero-copy — no per-tuple staging at all.
  Sink EmitBatch(RowBatch* batch) {
    if (batch->empty()) return Sink::kOk;
    if (outputs_.empty()) {
      for (Tuple& t : batch->tuples) query_->AppendResult(std::move(t));
      batch->clear();
      return Sink::kOk;
    }
    if (out_exchange_ != nullptr) {
      Status s = out_exchange_->ScatterBatch(batch, &rr_cursor_,
                                             &out_batches_, &route_scratch_);
      if (!s.ok()) {
        query_->Fail(std::move(s));
        return Sink::kClosed;
      }
      return FlushFullPages();
    }
    RowBatch& staged = out_batches_[0];
    if (staged.empty() && batch->size() >= page_size()) {
      switch (outputs_[0]->TryPush(batch)) {
        case ExchangeBuffer::PushResult::kOk:
          return Sink::kOk;
        case ExchangeBuffer::PushResult::kFull:
          // Park with the morsel staged; the resume path retries the push.
          staged.Append(batch);
          blocked_output_ = 0;
          return Sink::kFull;
        case ExchangeBuffer::PushResult::kClosed:
          return Sink::kClosed;
      }
      return Sink::kOk;
    }
    staged.Append(batch);
    if (staged.size() >= page_size()) return FlushPartition(0);
    return Sink::kOk;
  }

  Sink FlushPartition(size_t idx) {
    if (out_batches_[idx].empty()) return Sink::kOk;
    switch (outputs_[idx]->TryPush(&out_batches_[idx])) {
      case ExchangeBuffer::PushResult::kOk:
        return Sink::kOk;
      case ExchangeBuffer::PushResult::kFull:
        blocked_output_ = idx;
        return Sink::kFull;
      case ExchangeBuffer::PushResult::kClosed:
        return Sink::kClosed;
    }
    return Sink::kOk;
  }

  /// Flushes every pending page (full or partial). kFull parks on the first
  /// partition that pushes back; the rest retry on the next invocation.
  Sink FlushAll() {
    for (size_t i = 0; i < outputs_.size(); ++i) {
      const Sink s = FlushPartition(i);
      if (s != Sink::kOk) return s;
    }
    return Sink::kOk;
  }

  /// Pushes every staging batch that has reached a full page (partial pages
  /// keep accumulating). kFull parks on the first partition that pushes
  /// back; the rest retry on the next invocation.
  Sink FlushFullPages() {
    for (size_t i = 0; i < out_batches_.size(); ++i) {
      if (out_batches_[i].size() < page_size()) continue;
      const Sink s = FlushPartition(i);
      if (s != Sink::kOk) return s;
    }
    return Sink::kOk;
  }

  /// If previously filled pages are still pending, retry them. Returns false
  /// (with *outcome set) when the packet must park or finish.
  bool EnsureOutputWritable(RunOutcome* outcome) {
    switch (FlushFullPages()) {
      case Sink::kOk:
        return true;
      case Sink::kFull:
        block_ = BlockReason::kOutput;
        *outcome = RunOutcome::kBlocked;
        return false;
      case Sink::kClosed:
        *outcome = FinishEarly();
        return false;
    }
    return true;
  }

  /// Handles the result of EmitTuple inside a processing loop. Returns true
  /// to continue; false with *outcome set to stop this invocation.
  bool HandleSink(Sink sink, RunOutcome* outcome) {
    switch (sink) {
      case Sink::kOk:
        return true;
      case Sink::kFull:
        block_ = BlockReason::kOutput;
        *outcome = RunOutcome::kBlocked;
        return false;
      case Sink::kClosed:
        *outcome = FinishEarly();
        return false;
    }
    return true;
  }

  /// Emission phase shared by sort and aggregate: slices staged_rows_ into
  /// page-sized morsels from emit_pos_ and emits them batch-at-a-time.
  RunOutcome EmitStagedRows(int budget) {
    RunOutcome oc;
    RowBatch morsel;
    while (budget > 0) {
      if (emit_pos_ >= staged_rows_.size()) return Finish();
      const size_t n = std::min({page_size(), static_cast<size_t>(budget),
                                 staged_rows_.size() - emit_pos_});
      morsel.clear();
      morsel.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        morsel.push_back(std::move(staged_rows_[emit_pos_++]));
      }
      budget -= static_cast<int>(n);
      if (!HandleSink(EmitBatch(&morsel), &oc)) return oc;
    }
    return RunOutcome::kYield;
  }

  /// Normal completion: flush the final partial pages and mark EOF on every
  /// output partition (a fan-in consumer ends only at the last producer's
  /// marks).
  RunOutcome Finish() {
    switch (FlushAll()) {
      case Sink::kFull:
        block_ = BlockReason::kOutput;
        finishing_ = true;
        return RunOutcome::kBlocked;
      case Sink::kOk:
      case Sink::kClosed:
        break;
    }
    for (ExchangeBuffer* out : outputs_) out->MarkEof();
    return RunOutcome::kDone;
  }

  /// Early termination (sink closed, query failed): cancel upstream work.
  RunOutcome FinishEarly() {
    for (ExchangeBuffer* input : inputs_) input->Close();
    shared_cursor_.Detach();  // leave the elevator promptly, not at teardown
    for (ExchangeBuffer* out : outputs_) out->MarkEof();
    return RunOutcome::kDone;
  }

  Status Error(Status s) {
    query_->Fail(std::move(s));
    return Status::OK();
  }

  RunOutcome RunSeqScan();
  RunOutcome RunSharedSeqScan();
  RunOutcome RunIndexScan();
  RunOutcome RunQual();       // filter / project / limit
  RunOutcome RunNestedLoopJoin();
  RunOutcome RunHashJoin();
  RunOutcome RunMergeJoin();
  RunOutcome RunSort();
  RunOutcome RunAggregate();
  RunOutcome RunValues();

  /// Folds one raw input row into groups_ (kComplete / kPartial modes).
  Status AccumulateInputRow(const Tuple& t);
  /// Folds one partial-state row from a kPartial child into groups_
  /// (kMerge mode).
  Status AccumulateMergeRow(const Tuple& t);

  StagedEngine* engine_;
  StagedQuery* query_;
  const PhysicalPlan* plan_;

  InputCursor cursors_[2];
  std::vector<RowBatch> out_batches_;  // one staging batch per output
  std::vector<uint32_t> route_scratch_;  // ScatterBatch per-tuple targets
  size_t blocked_output_ = 0;            // partition that returned kFull
  uint64_t rr_cursor_ = 0;               // keyless round-robin partitioning
  BlockReason block_ = BlockReason::kNone;
  bool finishing_ = false;

  /// MVCC view for this packet's scans: the statement's registered snapshot
  /// when the query carries one, last-committed visibility otherwise. Same
  /// fallback as the volcano engine's MvccViewFor, so the differential tests
  /// compare identical semantics.
  storage::MvccReadView MvccView() const {
    if (query_->exec_ctx != nullptr && query_->exec_ctx->mvcc != nullptr) {
      return query_->exec_ctx->mvcc->View();
    }
    return storage::MvccReadView{
        engine_->catalog()->mvcc()->last_committed(), 0};
  }
  bool MvccOn() const { return engine_->catalog()->mvcc_enabled(); }

  // Scan state. Private-iterator path (shared_scans=false):
  std::unique_ptr<storage::HeapFile::Iterator> scan_iter_;
  // Cooperative path (shared_scans=true): a cursor attached to the table's
  // elevator plus the page delivery currently being drained.
  SharedScanManager::Cursor shared_cursor_;
  std::shared_ptr<const std::vector<std::string>> shared_page_;
  size_t shared_page_pos_ = 0;
  bool shared_attached_ = false;
  std::vector<std::pair<int64_t, storage::Rid>> index_matches_;
  size_t index_pos_ = 0;
  bool index_loaded_ = false;

  // Join / sort / aggregate state.
  int phase_ = 0;
  std::vector<Tuple> materialized_[2];
  std::unordered_map<RowKey, std::vector<Tuple>, RowKeyHash> hash_table_;
  Tuple probe_;
  bool probe_valid_ = false;
  const std::vector<Tuple>* matches_ = nullptr;
  size_t match_pos_ = 0;
  size_t inner_pos_ = 0;
  std::unordered_map<RowKey, std::vector<AggAccumulator>, RowKeyHash> groups_;
  std::vector<Tuple> staged_rows_;  // sorted / finalized rows to emit
  size_t emit_pos_ = 0;
  // Merge-join group cursors.
  size_t lg_begin_ = 0, lg_end_ = 0, rg_begin_ = 0, rg_end_ = 0;
  size_t li_ = 0, ri_ = 0;
  int64_t limit_produced_ = 0;
  size_t values_pos_ = 0;
};

RunOutcome OperatorInstance::Run() {
  block_ = BlockReason::kNone;
  if (query_->failed()) return FinishEarly();
  if (finishing_) return Finish();
  switch (plan_->kind) {
    case PlanKind::kSeqScan:
      return RunSeqScan();
    case PlanKind::kIndexScan:
      return RunIndexScan();
    case PlanKind::kFilter:
    case PlanKind::kProject:
    case PlanKind::kLimit:
      return RunQual();
    case PlanKind::kNestedLoopJoin:
      return RunNestedLoopJoin();
    case PlanKind::kHashJoin:
      return RunHashJoin();
    case PlanKind::kMergeJoin:
      return RunMergeJoin();
    case PlanKind::kSort:
      return RunSort();
    case PlanKind::kHashAggregate:
      return RunAggregate();
    case PlanKind::kValues:
      return RunValues();
    default:
      query_->Fail(Status::Internal("operator kind not stageable"));
      return FinishEarly();
  }
}

bool OperatorInstance::CanMakeProgress() {
  switch (block_) {
    case BlockReason::kNone:
      return true;
    case BlockReason::kOutput:
      return outputs_.empty() ||
             outputs_[blocked_output_]->HasSpaceOrClosed();
    case BlockReason::kInput0:
      return inputs_[0]->HasData() || inputs_[0]->AtEof();
    case BlockReason::kInput1:
      return inputs_[1]->HasData() || inputs_[1]->AtEof();
    case BlockReason::kAnyInput: {
      for (ExchangeBuffer* input : inputs_) {
        if (input->HasData() || input->AtEof()) return true;
      }
      return false;
    }
  }
  return true;
}

RunOutcome OperatorInstance::RunSeqScan() {
  RunOutcome oc;
  if (!EnsureOutputWritable(&oc)) return oc;
  if (engine_->options().shared_scans) return RunSharedSeqScan();
  if (!scan_iter_) {
    scan_iter_ = std::make_unique<storage::HeapFile::Iterator>(
        plan_->table->heap->Scan());
  }
  const bool mvcc_on = MvccOn();
  const storage::MvccReadView view =
      mvcc_on ? MvccView() : storage::MvccReadView{};
  int budget = quantum_tuples();
  RowBatch morsel;
  while (budget > 0) {
    // Fill one page-sized morsel and hand it downstream whole (fscan emits
    // morsels, not tuples).
    morsel.clear();
    const size_t target = std::min(page_size(), static_cast<size_t>(budget));
    morsel.reserve(target);
    while (morsel.size() < target) {
      if (!scan_iter_->Next()) {
        if (!scan_iter_->status().ok()) {
          query_->Fail(scan_iter_->status());
          return FinishEarly();
        }
        // End of table: flush the final partial morsel, then finish.
        if (!HandleSink(EmitBatch(&morsel), &oc)) return oc;
        return Finish();
      }
      Tuple tuple;
      auto visible = exec::DecodeVisibleRecord(
          mvcc_on, view, plan_->table->schema, scan_iter_->record(), &tuple);
      if (!visible.ok()) {
        query_->Fail(visible.status());
        return FinishEarly();
      }
      if (!*visible) continue;
      morsel.push_back(std::move(tuple));
    }
    budget -= static_cast<int>(morsel.size());
    if (!HandleSink(EmitBatch(&morsel), &oc)) return oc;
  }
  return RunOutcome::kYield;
}

/// The cooperative fscan driver (§5.4): instead of owning a private
/// iterator, the packet attaches to the table's elevator at its current
/// position, drains one delivered page at a time, and finishes when the
/// elevator wraps back to its attach point. Output back-pressure parks the
/// packet between tuples of a delivered page; the shared_page_ reference
/// keeps the delivery alive across the park.
RunOutcome OperatorInstance::RunSharedSeqScan() {
  RunOutcome oc;
  if (!shared_attached_) {
    shared_cursor_ = engine_->shared_scans()->Attach(plan_->table->heap.get());
    shared_attached_ = true;
  }
  const bool mvcc_on = MvccOn();
  const storage::MvccReadView view =
      mvcc_on ? MvccView() : storage::MvccReadView{};
  int budget = quantum_tuples();
  RowBatch morsel;
  while (budget > 0) {
    if (shared_page_ != nullptr && shared_page_pos_ < shared_page_->size()) {
      // Decode a morsel's worth of the delivered page and emit it whole.
      // Visibility is evaluated against this rider's own snapshot: elevator
      // riders share page deliveries but never visibility decisions.
      morsel.clear();
      const size_t target =
          std::min(page_size(), static_cast<size_t>(budget));
      morsel.reserve(target);
      while (morsel.size() < target &&
             shared_page_pos_ < shared_page_->size()) {
        Tuple tuple;
        auto visible = exec::DecodeVisibleRecord(
            mvcc_on, view, plan_->table->schema,
            (*shared_page_)[shared_page_pos_], &tuple);
        ++shared_page_pos_;
        if (!visible.ok()) {
          query_->Fail(visible.status());
          return FinishEarly();
        }
        if (!*visible) continue;
        morsel.push_back(std::move(tuple));
      }
      budget -= static_cast<int>(morsel.size());
      if (!HandleSink(EmitBatch(&morsel), &oc)) return oc;
      continue;
    }
    shared_page_pos_ = 0;
    if (!shared_cursor_.NextPage(&shared_page_)) {
      if (!shared_cursor_.status().ok()) {
        query_->Fail(shared_cursor_.status());
        return FinishEarly();
      }
      return Finish();
    }
  }
  return RunOutcome::kYield;
}

RunOutcome OperatorInstance::RunIndexScan() {
  RunOutcome oc;
  if (!EnsureOutputWritable(&oc)) return oc;
  if (!index_loaded_) {
    Status s = plan_->index->tree->Scan(plan_->index_lo, plan_->index_hi,
                                        &index_matches_);
    if (!s.ok()) {
      query_->Fail(s);
      return FinishEarly();
    }
    index_loaded_ = true;
  }
  const bool mvcc_on = MvccOn();
  const storage::MvccReadView view =
      mvcc_on ? MvccView() : storage::MvccReadView{};
  int budget = quantum_tuples();
  RowBatch morsel;
  while (budget > 0) {
    morsel.clear();
    const size_t target = std::min(page_size(), static_cast<size_t>(budget));
    morsel.reserve(target);
    while (morsel.size() < target && index_pos_ < index_matches_.size()) {
      const auto& [key, head] = index_matches_[index_pos_++];
      // Walk the version chain from the indexed head to the version visible
      // in this packet's snapshot (mirrors IndexScanExec::FetchVisible). A
      // dangling prev ends the walk: deeper versions predate the vacuum
      // horizon and were invisible to us anyway.
      storage::Rid rid = head;
      bool emitted = false;
      while (!emitted) {
        std::string record;
        Status s = plan_->table->heap->Get(rid, &record);
        if (s.IsNotFound()) break;  // deleted/vacuumed after lookup
        if (!s.ok()) {
          query_->Fail(s);
          return FinishEarly();
        }
        if (mvcc_on) {
          if (record.size() < storage::kVersionHeaderSize) {
            query_->Fail(
                Status::Internal("record missing MVCC version header"));
            return FinishEarly();
          }
          const storage::VersionHeader h =
              storage::DecodeVersionHeader(record);
          if (!storage::VersionVisible(h, view)) {
            if (!h.has_prev()) break;
            rid = h.prev;
            continue;
          }
        }
        auto tuple = catalog::DecodeTuple(
            plan_->table->schema,
            mvcc_on ? storage::RowPayload(record) : std::string_view(record));
        if (!tuple.ok()) {
          query_->Fail(tuple.status());
          return FinishEarly();
        }
        if (mvcc_on) {
          // Key recheck: chains cross keys when an update rewrites the
          // indexed column; a visible version with a different key does not
          // match this lookup in our snapshot.
          const Value& v = (*tuple)[plan_->index->column];
          if (v.is_null() || v.int_value() != key) break;
        }
        morsel.push_back(std::move(*tuple));
        emitted = true;
      }
    }
    budget -= static_cast<int>(std::max<size_t>(1, morsel.size()));
    if (!HandleSink(EmitBatch(&morsel), &oc)) return oc;
    if (index_pos_ >= index_matches_.size()) return Finish();
  }
  return RunOutcome::kYield;
}

RunOutcome OperatorInstance::RunQual() {
  RunOutcome oc;
  if (!EnsureOutputWritable(&oc)) return oc;
  int budget = quantum_tuples();
  RowBatch in;
  while (budget > 0) {
    switch (NextBatch(0, &in)) {
      case Fetch::kWait:
        block_ = BlockReason::kInput0;
        return RunOutcome::kBlocked;
      case Fetch::kEof:
        return Finish();
      case Fetch::kTuple:
        break;
    }
    budget -= static_cast<int>(in.size());
    switch (plan_->kind) {
      case PlanKind::kFilter: {
        // Compact the batch in place: survivors slide left, the batch moves
        // on whole (no per-tuple re-staging downstream).
        size_t w = 0;
        for (size_t i = 0; i < in.tuples.size(); ++i) {
          auto pass = EvalPredicate(*plan_->predicate, in.tuples[i]);
          if (!pass.ok()) {
            query_->Fail(pass.status());
            return FinishEarly();
          }
          if (!*pass) continue;
          if (w != i) in.tuples[w] = std::move(in.tuples[i]);
          ++w;
        }
        in.tuples.resize(w);
        if (!HandleSink(EmitBatch(&in), &oc)) return oc;
        break;
      }
      case PlanKind::kProject: {
        for (Tuple& t : in.tuples) {
          Tuple out;
          out.reserve(plan_->exprs.size());
          for (const auto& expr : plan_->exprs) {
            auto v = optimizer::Eval(*expr, t);
            if (!v.ok()) {
              query_->Fail(v.status());
              return FinishEarly();
            }
            out.push_back(std::move(*v));
          }
          t = std::move(out);
        }
        if (!HandleSink(EmitBatch(&in), &oc)) return oc;
        break;
      }
      case PlanKind::kLimit: {
        const int64_t want = plan_->limit - limit_produced_;
        if (want <= 0) {
          // Satisfied: cancel upstream and finish.
          return FinishEarly();
        }
        if (static_cast<int64_t>(in.size()) > want) {
          in.tuples.resize(static_cast<size_t>(want));
        }
        limit_produced_ += static_cast<int64_t>(in.size());
        if (!HandleSink(EmitBatch(&in), &oc)) return oc;
        if (limit_produced_ >= plan_->limit) {
          for (ExchangeBuffer* input : inputs_) input->Close();
          return Finish();
        }
        break;
      }
      default:
        query_->Fail(Status::Internal("bad qual operator"));
        return FinishEarly();
    }
  }
  return RunOutcome::kYield;
}

RunOutcome OperatorInstance::RunNestedLoopJoin() {
  RunOutcome oc;
  if (!EnsureOutputWritable(&oc)) return oc;
  int budget = quantum_tuples();
  if (phase_ == 0) {  // materialize the inner (right) input, a batch at a time
    RowBatch in;
    while (budget > 0) {
      switch (NextBatch(1, &in)) {
        case Fetch::kWait:
          block_ = BlockReason::kInput1;
          return RunOutcome::kBlocked;
        case Fetch::kEof:
          phase_ = 1;
          budget = quantum_tuples();
          goto probe;
        case Fetch::kTuple:
          budget -= static_cast<int>(in.size());
          materialized_[1].insert(
              materialized_[1].end(),
              std::make_move_iterator(in.tuples.begin()),
              std::make_move_iterator(in.tuples.end()));
          break;
      }
    }
    return RunOutcome::kYield;
  }
probe:
  while (budget-- > 0) {
    if (!probe_valid_) {
      switch (NextInput(0, &probe_)) {
        case Fetch::kWait:
          block_ = BlockReason::kInput0;
          return RunOutcome::kBlocked;
        case Fetch::kEof:
          return Finish();
        case Fetch::kTuple:
          probe_valid_ = true;
          inner_pos_ = 0;
          break;
      }
    }
    while (inner_pos_ < materialized_[1].size()) {
      if (budget-- <= 0) return RunOutcome::kYield;
      Tuple joined = probe_;
      const Tuple& inner = materialized_[1][inner_pos_++];
      joined.insert(joined.end(), inner.begin(), inner.end());
      if (plan_->predicate) {
        auto pass = EvalPredicate(*plan_->predicate, joined);
        if (!pass.ok()) {
          query_->Fail(pass.status());
          return FinishEarly();
        }
        if (!*pass) continue;
      }
      if (!HandleSink(EmitTuple(std::move(joined)), &oc)) return oc;
    }
    probe_valid_ = false;
  }
  return RunOutcome::kYield;
}

RunOutcome OperatorInstance::RunHashJoin() {
  RunOutcome oc;
  if (!EnsureOutputWritable(&oc)) return oc;
  int budget = quantum_tuples();
  if (phase_ == 0) {  // build on the right input, folding whole batches
    RowBatch in;
    while (budget > 0) {
      switch (NextBatch(1, &in)) {
        case Fetch::kWait:
          block_ = BlockReason::kInput1;
          return RunOutcome::kBlocked;
        case Fetch::kEof:
          phase_ = 1;
          budget = quantum_tuples();
          goto probe;
        case Fetch::kTuple: {
          budget -= static_cast<int>(in.size());
          for (Tuple& t : in.tuples) {
            auto key = RowKeyFromColumns(t, plan_->right_keys);
            if (!key.ok()) {
              query_->Fail(key.status());
              return FinishEarly();
            }
            if (!key->HasNull()) hash_table_[*key].push_back(std::move(t));
          }
          break;
        }
      }
    }
    return RunOutcome::kYield;
  }
probe:
  while (budget-- > 0) {
    if (matches_ != nullptr && match_pos_ < matches_->size()) {
      Tuple joined = probe_;
      const Tuple& inner = (*matches_)[match_pos_++];
      joined.insert(joined.end(), inner.begin(), inner.end());
      if (plan_->predicate) {
        auto pass = EvalPredicate(*plan_->predicate, joined);
        if (!pass.ok()) {
          query_->Fail(pass.status());
          return FinishEarly();
        }
        if (!*pass) continue;
      }
      if (!HandleSink(EmitTuple(std::move(joined)), &oc)) return oc;
      continue;
    }
    switch (NextInput(0, &probe_)) {
      case Fetch::kWait:
        block_ = BlockReason::kInput0;
        return RunOutcome::kBlocked;
      case Fetch::kEof:
        return Finish();
      case Fetch::kTuple: {
        auto key = RowKeyFromColumns(probe_, plan_->left_keys);
        if (!key.ok()) {
          query_->Fail(key.status());
          return FinishEarly();
        }
        auto it = hash_table_.find(*key);
        matches_ = it == hash_table_.end() ? nullptr : &it->second;
        match_pos_ = 0;
        break;
      }
    }
  }
  return RunOutcome::kYield;
}

RunOutcome OperatorInstance::RunMergeJoin() {
  RunOutcome oc;
  if (!EnsureOutputWritable(&oc)) return oc;
  if (phase_ == 0) {  // drain both inputs, a batch at a time per side
    bool done0 = false, done1 = false;
    int budget = quantum_tuples();
    RowBatch in;
    while (budget > 0) {
      bool progressed = false;
      for (int side = 0; side < 2; ++side) {
        bool& done = side == 0 ? done0 : done1;
        if (done) continue;
        switch (NextBatch(side, &in)) {
          case Fetch::kTuple:
            budget -= static_cast<int>(in.size());
            materialized_[side].insert(
                materialized_[side].end(),
                std::make_move_iterator(in.tuples.begin()),
                std::make_move_iterator(in.tuples.end()));
            progressed = true;
            break;
          case Fetch::kEof:
            done = true;
            progressed = true;
            break;
          case Fetch::kWait:
            break;
        }
      }
      if (done0 && done1) {
        phase_ = 1;
        break;
      }
      if (!progressed) {
        block_ = BlockReason::kAnyInput;
        return RunOutcome::kBlocked;
      }
    }
    if (phase_ == 0) return RunOutcome::kYield;
  }
  if (phase_ == 1) {  // sort both sides
    auto sort_side = [&](int side, const std::vector<size_t>& keys) {
      std::stable_sort(materialized_[side].begin(), materialized_[side].end(),
                       [&](const Tuple& a, const Tuple& b) {
                         for (size_t k : keys) {
                           const int c = a[k].Compare(b[k]);
                           if (c != 0) return c < 0;
                         }
                         return false;
                       });
    };
    sort_side(0, plan_->left_keys);
    sort_side(1, plan_->right_keys);
    phase_ = 2;
    lg_end_ = rg_end_ = 0;
    li_ = ri_ = 0;
    lg_begin_ = rg_begin_ = 0;
    li_ = lg_end_;  // force group advance
    ri_ = rg_end_;
  }
  // phase 2: merge.
  auto compare_keys = [&](const Tuple& l, const Tuple& r) {
    for (size_t i = 0; i < plan_->left_keys.size(); ++i) {
      const int c = l[plan_->left_keys[i]].Compare(r[plan_->right_keys[i]]);
      if (c != 0) return c;
    }
    return 0;
  };
  auto key_null = [&](const Tuple& tt, const std::vector<size_t>& keys) {
    for (size_t k : keys) {
      if (tt[k].is_null()) return true;
    }
    return false;
  };
  const std::vector<Tuple>& L = materialized_[0];
  const std::vector<Tuple>& R = materialized_[1];
  int budget = quantum_tuples();
  while (budget-- > 0) {
    if (li_ >= lg_end_ || ri_ >= rg_end_) {
      // Advance to the next pair of matching key groups.
      size_t l = lg_end_, r = rg_end_;
      bool found = false;
      while (l < L.size() && r < R.size()) {
        if (key_null(L[l], plan_->left_keys)) {
          ++l;
          continue;
        }
        if (key_null(R[r], plan_->right_keys)) {
          ++r;
          continue;
        }
        const int c = compare_keys(L[l], R[r]);
        if (c < 0) {
          ++l;
        } else if (c > 0) {
          ++r;
        } else {
          lg_begin_ = l;
          lg_end_ = l + 1;
          while (lg_end_ < L.size() && compare_keys(L[lg_end_], R[r]) == 0) {
            ++lg_end_;
          }
          rg_begin_ = r;
          rg_end_ = r + 1;
          while (rg_end_ < R.size() && compare_keys(L[l], R[rg_end_]) == 0) {
            ++rg_end_;
          }
          li_ = lg_begin_;
          ri_ = rg_begin_;
          found = true;
          break;
        }
      }
      if (!found) return Finish();
    }
    Tuple joined = L[li_];
    joined.insert(joined.end(), R[ri_].begin(), R[ri_].end());
    ++ri_;
    if (ri_ == rg_end_) {
      ri_ = rg_begin_;
      ++li_;
      if (li_ == lg_end_) ri_ = rg_end_;  // group exhausted
    }
    if (plan_->predicate) {
      auto pass = EvalPredicate(*plan_->predicate, joined);
      if (!pass.ok()) {
        query_->Fail(pass.status());
        return FinishEarly();
      }
      if (!*pass) continue;
    }
    if (!HandleSink(EmitTuple(std::move(joined)), &oc)) return oc;
  }
  return RunOutcome::kYield;
}

RunOutcome OperatorInstance::RunSort() {
  RunOutcome oc;
  if (!EnsureOutputWritable(&oc)) return oc;
  if (phase_ == 0) {
    int budget = quantum_tuples();
    RowBatch in;
    while (budget > 0) {
      switch (NextBatch(0, &in)) {
        case Fetch::kWait:
          block_ = BlockReason::kInput0;
          return RunOutcome::kBlocked;
        case Fetch::kEof:
          phase_ = 1;
          budget = 0;
          break;
        case Fetch::kTuple:
          budget -= static_cast<int>(in.size());
          staged_rows_.insert(staged_rows_.end(),
                              std::make_move_iterator(in.tuples.begin()),
                              std::make_move_iterator(in.tuples.end()));
          break;
      }
    }
    if (phase_ == 0) return RunOutcome::kYield;
  }
  if (phase_ == 1) {
    // Precompute keys, then sort (one quantum; sorting is CPU-bound and the
    // sort stage owns it per the paper's operator grouping).
    std::vector<std::vector<Value>> keys(staged_rows_.size());
    for (size_t i = 0; i < staged_rows_.size(); ++i) {
      for (const auto& key : plan_->sort_keys) {
        auto v = optimizer::Eval(*key.expr, staged_rows_[i]);
        if (!v.ok()) {
          query_->Fail(v.status());
          return FinishEarly();
        }
        keys[i].push_back(std::move(*v));
      }
    }
    std::vector<size_t> order(staged_rows_.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      for (size_t k = 0; k < plan_->sort_keys.size(); ++k) {
        int c = keys[a][k].Compare(keys[b][k]);
        if (plan_->sort_keys[k].descending) c = -c;
        if (c != 0) return c < 0;
      }
      return false;
    });
    std::vector<Tuple> sorted;
    sorted.reserve(staged_rows_.size());
    for (size_t i : order) sorted.push_back(std::move(staged_rows_[i]));
    staged_rows_ = std::move(sorted);
    emit_pos_ = 0;
    phase_ = 2;
  }
  return EmitStagedRows(quantum_tuples());
}

Status OperatorInstance::AccumulateInputRow(const Tuple& t) {
  RowKey key;
  for (const auto& expr : plan_->exprs) {
    auto v = optimizer::Eval(*expr, t);
    if (!v.ok()) return v.status();
    key.values.push_back(std::move(*v));
  }
  auto& accs = groups_[key];
  if (accs.empty()) accs.resize(plan_->aggregates.size());
  for (size_t i = 0; i < plan_->aggregates.size(); ++i) {
    const optimizer::AggSpec& spec = plan_->aggregates[i];
    Value v = Value::Int(1);
    if (spec.arg) {
      auto val = optimizer::Eval(*spec.arg, t);
      if (!val.ok()) return val.status();
      v = std::move(*val);
      if (v.is_null()) continue;
    }
    exec::AggAccumulate(&accs[i], spec, v);
  }
  return Status::OK();
}

Status OperatorInstance::AccumulateMergeRow(const Tuple& t) {
  // Partial rows are the group key columns followed by each aggregate's
  // mergeable state (exec/partial_agg.h layout).
  const size_t num_group_cols =
      plan_->schema.num_columns() - plan_->aggregates.size();
  if (t.size() < num_group_cols) {
    return Status::Internal("partial aggregation row too narrow");
  }
  RowKey key;
  key.values.reserve(num_group_cols);
  for (size_t i = 0; i < num_group_cols; ++i) key.values.push_back(t[i]);
  auto& accs = groups_[key];
  if (accs.empty()) accs.resize(plan_->aggregates.size());
  size_t col = num_group_cols;
  for (size_t i = 0; i < plan_->aggregates.size(); ++i) {
    Status s = exec::MergePartialState(plan_->aggregates[i], t, &col,
                                       &accs[i]);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

RunOutcome OperatorInstance::RunAggregate() {
  using optimizer::AggMode;
  RunOutcome oc;
  if (!EnsureOutputWritable(&oc)) return oc;
  if (phase_ == 0) {
    int budget = quantum_tuples();
    RowBatch in;
    while (budget > 0) {
      switch (NextBatch(0, &in)) {
        case Fetch::kWait:
          block_ = BlockReason::kInput0;
          return RunOutcome::kBlocked;
        case Fetch::kEof:
          phase_ = 1;
          budget = 0;
          break;
        case Fetch::kTuple: {
          budget -= static_cast<int>(in.size());
          for (const Tuple& t : in.tuples) {
            const Status s = plan_->agg_mode == AggMode::kMerge
                                 ? AccumulateMergeRow(t)
                                 : AccumulateInputRow(t);
            if (!s.ok()) {
              query_->Fail(s);
              return FinishEarly();
            }
          }
          break;
        }
      }
    }
    if (phase_ == 0) return RunOutcome::kYield;
  }
  if (phase_ == 1) {
    // Global aggregation over zero rows still yields one output row — but
    // only at the finalizing node: a kPartial packet that saw no rows emits
    // nothing (its siblings cover the input), and the kMerge packet above
    // supplies the empty-input row exactly once.
    const bool global_agg = plan_->agg_mode == AggMode::kMerge
                                ? plan_->schema.num_columns() ==
                                      plan_->aggregates.size()
                                : plan_->exprs.empty();
    if (groups_.empty() && global_agg &&
        plan_->agg_mode != AggMode::kPartial) {
      groups_[RowKey{}] =
          std::vector<AggAccumulator>(plan_->aggregates.size());
    }
    for (const auto& [key, accs] : groups_) {
      Tuple row;
      for (const Value& v : key.values) row.push_back(v);
      for (size_t i = 0; i < plan_->aggregates.size(); ++i) {
        if (plan_->agg_mode == AggMode::kPartial) {
          exec::AppendPartialState(plan_->aggregates[i], accs[i], &row);
        } else {
          row.push_back(exec::AggFinalize(plan_->aggregates[i], accs[i]));
        }
      }
      staged_rows_.push_back(std::move(row));
    }
    groups_.clear();
    emit_pos_ = 0;
    phase_ = 2;
  }
  return EmitStagedRows(quantum_tuples());
}

RunOutcome OperatorInstance::RunValues() {
  RunOutcome oc;
  if (!EnsureOutputWritable(&oc)) return oc;
  int budget = quantum_tuples();
  RowBatch morsel;
  while (budget > 0) {
    if (values_pos_ >= plan_->rows.size()) return Finish();
    morsel.clear();
    const size_t target = std::min(page_size(), static_cast<size_t>(budget));
    while (morsel.size() < target && values_pos_ < plan_->rows.size()) {
      morsel.push_back(plan_->rows[values_pos_++]);
    }
    budget -= static_cast<int>(morsel.size());
    if (!HandleSink(EmitBatch(&morsel), &oc)) return oc;
  }
  return RunOutcome::kYield;
}

/// A mutation statement executed as one packet on the dml stage (the staged
/// prototype of the paper also routed updates through dedicated stages).
class DmlTask : public StageTask {
 public:
  DmlTask(StagedEngine* engine, StagedQuery* query, const PhysicalPlan* plan)
      : engine_(engine), query_(query), plan_(plan) {
    set_query_id(query->id);
  }

  RunOutcome Run() override {
    exec::ExecContext local_ctx;
    local_ctx.catalog = engine_->catalog();
    exec::ExecContext* ctx =
        query_->exec_ctx != nullptr ? query_->exec_ctx : &local_ctx;
    auto rows = exec::ExecutePlan(plan_, ctx);
    if (!rows.ok()) {
      query_->Fail(rows.status());
      return RunOutcome::kDone;
    }
    for (Tuple& t : *rows) query_->AppendResult(std::move(t));
    return RunOutcome::kDone;
  }
  void OnRetired() override { query_->OnInstanceRetired(); }

 private:
  StagedEngine* engine_;
  StagedQuery* query_;
  const PhysicalPlan* plan_;
};

}  // namespace

// ------------------------------------------------------------ StagedEngine --

StagedEngine::StagedEngine(catalog::Catalog* catalog,
                           StagedEngineOptions options)
    : catalog_(catalog), options_(std::move(options)),
      runtime_(MakeSchedulerPolicy(options_.scheduler,
                                   options_.scheduler_gate_rounds)),
      shared_scans_(std::make_unique<SharedScanManager>(
          options_.shared_scan_window_pages)) {
  if (options_.granularity == StagedEngineOptions::Granularity::kCoarse) {
    execute_stage_ = runtime_.CreateStage("execute", PoolFor("execute"));
    MaybeCreateCommitStage();
    return;
  }
  iscan_stage_ = runtime_.CreateStage("iscan", PoolFor("iscan"));
  qual_stage_ = runtime_.CreateStage("qual", PoolFor("qual"));
  sort_stage_ = runtime_.CreateStage("sort", PoolFor("sort"));
  join_stage_ = runtime_.CreateStage("join", PoolFor("join"));
  aggr_stage_ = runtime_.CreateStage("aggr", PoolFor("aggr"));
  dml_stage_ = runtime_.CreateStage("dml", PoolFor("dml"));
  if (!options_.stage_per_table_scans) {
    fscan_shared_ = runtime_.CreateStage("fscan", PoolFor("fscan"));
  }
  MaybeCreateCommitStage();
}

void StagedEngine::MaybeCreateCommitStage() {
  if (options_.wal == nullptr) return;
  GroupCommitStage::Options gc;
  gc.max_batch = options_.group_commit_max_batch;
  gc.max_wait_us = options_.group_commit_max_wait_us;
  group_commit_ = std::make_unique<GroupCommitStage>(&runtime_, options_.wal,
                                                     gc, PoolFor("commit"));
}

StagePoolSpec StagedEngine::PoolFor(const std::string& stage_name) const {
  // Per-table scan stages fall back to the "fscan" key before the default.
  if (stage_name.rfind("fscan.", 0) == 0 &&
      options_.stage_pools.count(stage_name) == 0) {
    return PoolSpecFor(options_.stage_pools, "fscan",
                       options_.threads_per_stage);
  }
  return PoolSpecFor(options_.stage_pools, stage_name,
                     options_.threads_per_stage);
}

StagedEngine::~StagedEngine() {
  // Flush pending commits while the stage workers are still alive, then stop.
  if (group_commit_ != nullptr) group_commit_->Drain();
  runtime_.Shutdown();
}

Stage* StagedEngine::StageFor(const PhysicalPlan& node) {
  if (options_.granularity == StagedEngineOptions::Granularity::kCoarse) {
    return execute_stage_;
  }
  switch (node.kind) {
    case PlanKind::kSeqScan: {
      if (!options_.stage_per_table_scans) return fscan_shared_;
      MutexLock lock(stage_map_mu_);
      auto it = fscan_stages_.find(node.table->id);
      if (it != fscan_stages_.end()) return it->second;
      const std::string name = "fscan." + node.table->name;
      Stage* stage = runtime_.CreateStage(name, PoolFor(name));
      fscan_stages_[node.table->id] = stage;
      return stage;
    }
    case PlanKind::kIndexScan:
      return iscan_stage_;
    case PlanKind::kFilter:
    case PlanKind::kProject:
    case PlanKind::kLimit:
    case PlanKind::kValues:
      return qual_stage_;
    case PlanKind::kSort:
      return sort_stage_;
    case PlanKind::kNestedLoopJoin:
    case PlanKind::kHashJoin:
    case PlanKind::kMergeJoin:
      return join_stage_;
    case PlanKind::kHashAggregate:
      return aggr_stage_;
    case PlanKind::kInsert:
    case PlanKind::kDelete:
    case PlanKind::kUpdate:
      return dml_stage_;
  }
  return qual_stage_;
}

std::shared_ptr<StagedQuery> StagedEngine::Submit(const PhysicalPlan* plan,
                                                  exec::ExecContext* exec_ctx) {
  auto query = std::make_shared<StagedQuery>();
  query->id = next_query_id_.fetch_add(1);
  query->exec_ctx = exec_ctx;

  const bool is_dml = plan->kind == PlanKind::kInsert ||
                      plan->kind == PlanKind::kDelete ||
                      plan->kind == PlanKind::kUpdate;
  if (is_dml) {
    auto task = std::make_unique<DmlTask>(this, query.get(), plan);
    DmlTask* ptr = task.get();
    query->instances.push_back(std::move(task));
    query->remaining_ = 1;
    StageFor(*plan)->Enqueue(ptr);
    return query;
  }

  // Build the operator instance tree bottom-up and wire exchange buffers.
  // A node with an effective DOP of N becomes N partition packets; each
  // edge into such a group fans out through a hash PartitionedExchange (one
  // bounded buffer per partition), and the N packets' outputs fan back into
  // their consumer's single input buffer, which treats them as N producers
  // (EOF at the last mark). With every node at DOP=1 this wiring — one
  // packet, one buffer per edge — is exactly the pre-parallelism shape.
  std::vector<std::pair<OperatorInstance*, Stage*>> leaves;
  struct Builder {
    StagedEngine* engine;
    StagedQuery* query;
    std::vector<std::pair<OperatorInstance*, Stage*>>* leaves;

    /// Plan-node dop clamped by the engine option; only hash joins and
    /// partial aggregations partition (their inputs hash cleanly on the
    /// join/group key).
    int EffectiveDop(const PhysicalPlan& node) const {
      if (node.dop <= 1 || engine->options().max_dop <= 1) return 1;
      const bool partitionable =
          (node.kind == PlanKind::kHashJoin && !node.left_keys.empty()) ||
          (node.kind == PlanKind::kHashAggregate &&
           node.agg_mode == optimizer::AggMode::kPartial);
      if (!partitionable) return 1;
      return std::min(node.dop, engine->options().max_dop);
    }

    std::vector<OperatorInstance*> Build(const PhysicalPlan* node) {
      Stage* stage = engine->StageFor(*node);
      const int dop = EffectiveDop(*node);
      std::vector<OperatorInstance*> group;
      group.reserve(dop);
      for (int p = 0; p < dop; ++p) {
        auto inst = std::make_unique<OperatorInstance>(engine, query, node);
        inst->partition_ = p;
        group.push_back(inst.get());
        query->instances.push_back(std::move(inst));
      }
      if (dop > 1) stage->CountParallelPackets(dop);

      for (size_t ci = 0; ci < node->children.size(); ++ci) {
        const PhysicalPlan* child = node->children[ci].get();
        std::vector<OperatorInstance*> producers = Build(child);
        Stage* child_stage = engine->StageFor(*child);

        // One bounded buffer per consumer partition (a single-consumer edge
        // is the classic one-buffer edge). An edge with exactly one producer
        // packet gets the lock-free SPSC ring (each buffer here has exactly
        // one consumer by construction); fan-in edges — M producer
        // partitions merging into one consumer — keep the mutex buffer,
        // which handles any endpoint shape.
        const bool spsc_edge =
            engine->options().spsc_exchange && producers.size() == 1;
        // max(1, ...): a zero-capacity buffer rejects every push, which
        // would park the producer forever.
        const size_t capacity =
            std::max<size_t>(1, engine->options().exchange_capacity_pages);
        std::vector<ExchangeBuffer*> parts;
        parts.reserve(group.size());
        for (OperatorInstance* consumer : group) {
          std::unique_ptr<ExchangeBuffer> buffer;
          if (spsc_edge) {
            buffer = std::make_unique<SpscRingBuffer>(capacity);
          } else {
            buffer = std::make_unique<ExchangeBuffer>(capacity);
          }
          ExchangeBuffer* b = buffer.get();
          query->buffers.push_back(std::move(buffer));
          b->BindConsumer(stage, consumer);
          consumer->inputs_.push_back(b);
          parts.push_back(b);
        }

        PartitionedExchange* px = nullptr;
        if (parts.size() > 1) {
          auto exchange = std::make_unique<PartitionedExchange>(parts);
          px = exchange.get();
          if (node->kind == PlanKind::kHashJoin) {
            // Probe input partitions on the left keys, build input on the
            // right keys: equal join keys meet in the same partition.
            px->SetKeyColumns(ci == 0 ? node->left_keys : node->right_keys);
          } else {
            // Partial aggregation partitions on the group-by expressions
            // (none = round-robin; the merge combines the global states).
            std::vector<const optimizer::BoundExpr*> key_exprs;
            key_exprs.reserve(node->exprs.size());
            for (const auto& e : node->exprs) key_exprs.push_back(e.get());
            px->SetKeyExprs(std::move(key_exprs));
          }
          query->exchanges.push_back(std::move(exchange));
        }

        for (OperatorInstance* producer : producers) {
          producer->outputs_ = parts;
          producer->out_exchange_ = px;
          producer->FinishWiring();
          for (ExchangeBuffer* b : parts) {
            b->BindProducer(child_stage, producer);
          }
        }
      }
      if (node->children.empty()) {
        for (OperatorInstance* inst : group) leaves->emplace_back(inst, stage);
      }
      return group;
    }
  };
  Builder builder{this, query.get(), &leaves};
  builder.Build(plan);
  query->remaining_ = static_cast<int>(query->instances.size());

  // Bottom-up activation: enqueue packets for the leaf operators; parents are
  // activated when the first page reaches their input buffer (or its EOF).
  for (auto& [leaf, stage] : leaves) stage->Enqueue(leaf);
  return query;
}

StatusOr<std::vector<Tuple>> StagedEngine::Execute(const PhysicalPlan* plan,
                                                   exec::ExecContext* ctx) {
  auto query = Submit(plan, ctx);
  return query->Await();
}

}  // namespace stagedb::engine
