// The staged relational execution engine (§4.1.2, §4.3 of the paper).
//
// Each relational operator of a physical plan becomes an operator instance
// (a packet) assigned to its stage: fscan stages are replicated per table,
// iscan / sort / join / aggregate each have a stage, and the cheap qualifier
// operators (filter, project, limit) share one "qual" stage ("we group
// together operators which use a small portion of the common or shared data
// and code"). Mutation statements run as one packet on the dml stage.
//
// Activation is bottom-up: leaf scans are enqueued first; a parent operator
// is activated the first time a child places a page in its input buffer.
// Data moves through bounded ExchangeBuffers; a full buffer parks the
// producer (back-pressure), an empty one parks the consumer, exactly the
// re-enqueue behaviour §4.3 describes.
#ifndef STAGEDB_ENGINE_STAGED_ENGINE_H_
#define STAGEDB_ENGINE_STAGED_ENGINE_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "catalog/catalog.h"
#include "common/mutex.h"
#include "engine/commit_stage.h"
#include "engine/exchange.h"
#include "engine/runtime.h"
#include "engine/shared_scan.h"
#include "exec/executor.h"
#include "optimizer/plan.h"
#include "storage/wal.h"

namespace stagedb::engine {

/// Engine knobs (§4.4 tuning parameters).
struct StagedEngineOptions {
  /// Global scheduling policy (the Figure-5 family; see engine/runtime.h):
  /// kFreeRun, kCohort/kNonGated (exhaustive), kDGated, kTGated.
  SchedulerPolicy scheduler = SchedulerPolicy::kFreeRun;
  /// Gate rounds per visit when scheduler == kTGated (2 = "T-gated(2)").
  int scheduler_gate_rounds = 2;
  /// Default worker-pool size for stages without a stage_pools entry.
  int threads_per_stage = 1;
  /// Per-stage pool overrides (size + optional core pinning), keyed by stage
  /// name ("fscan", "iscan", "qual", "sort", "join", "aggr", "dml",
  /// "execute"). Per-table scan stages ("fscan.<table>") first look up their
  /// exact name, then fall back to the "fscan" key.
  std::map<std::string, StagePoolSpec> stage_pools;
  /// Exchange buffer capacity in pages (back-pressure depth).
  size_t exchange_capacity_pages = 4;
  /// Tuples per exchanged batch (§4.4c: "the page size for exchanging
  /// intermediate results among the execution engine stages"). This is the
  /// morsel size of the batch ABI; a plan node's batch_hint (optimizer
  /// batch-size hint) overrides it per node.
  size_t tuples_per_page = 64;
  /// Lock-free SPSC ring fast path: exchange edges with exactly one
  /// producer and one consumer packet (the DOP=1 shape, and every scatter
  /// edge of a 1->N fan-out) use a SpscRingBuffer instead of the mutex
  /// ExchangeBuffer. MxN fan-in edges always fall back to the mutex buffer
  /// (the ring is strictly single-producer/single-consumer). When false,
  /// every edge uses the mutex buffer — wiring identical to the pre-ring
  /// engine.
  bool spsc_exchange = true;
  /// Pages an operator processes per packet invocation before yielding.
  int work_quantum_pages = 4;
  /// Fine = operator stages as in Figure 3; coarse = one execute stage
  /// hosting every operator (the monolithic end of §4.4's granularity
  /// trade-off).
  enum class Granularity { kFine, kCoarse };
  Granularity granularity = Granularity::kFine;
  /// Replicate fscan stages per table ("the fscan and iscan stages are
  /// replicated and are separately attached to the database tables").
  bool stage_per_table_scans = true;
  /// Cooperative shared scans (§5.4): fscan packets attach to the table's
  /// circular elevator cursor instead of each owning a private iterator, so
  /// N concurrent scans cost ~1 physical pass. When false, every seq-scan
  /// packet drives its own HeapFile::Iterator (the seed behaviour).
  bool shared_scans = true;
  /// Recently read pages the elevator keeps decoded for lagging readers.
  size_t shared_scan_window_pages = 32;
  /// Partitioned intra-query parallelism cap (§4.3): the engine instantiates
  /// min(plan-node dop, max_dop) partition packets for a dop>1 hash-join or
  /// partial-aggregation node. The default of 1 keeps every plan on the
  /// single-packet-per-operator path, bit-compatible with the pre-DOP
  /// engine; raise it together with the stage's worker-pool size (a lone
  /// worker serializes the partition packets again).
  int max_dop = 1;
  /// When non-null, the engine creates a "commit" stage (engine/
  /// commit_stage.h) over this log: committing clients submit tickets and
  /// one fdatasync covers every commit in a batch window. The WAL must
  /// outlive the engine.
  storage::WriteAheadLog* wal = nullptr;
  /// Flush when this many commits are pending...
  int group_commit_max_batch = 64;
  /// ...or when the oldest pending commit has waited this long.
  int64_t group_commit_max_wait_us = 200;
};

/// Tracks one in-flight query: its operator packets, exchange buffers,
/// results, and completion state. Created by StagedEngine::Submit; the caller
/// must Await before releasing its reference.
class StagedQuery {
 public:
  /// Blocks until every packet of this query has retired.
  StatusOr<std::vector<catalog::Tuple>> Await();

  /// True once every packet has retired (Await would not block).
  bool done() const;

  /// Registers a callback fired exactly once when the query completes, from
  /// the retiring stage worker's thread (or immediately, from the caller's
  /// thread, if the query is already done). Lets a submitter park instead of
  /// blocking a worker thread in Await.
  void NotifyOnDone(std::function<void()> callback);

  // --- used by operator drivers ---
  void AppendResult(catalog::Tuple t);
  /// Records the first error and cancels the dataflow (closes all buffers).
  void Fail(Status status);
  void OnInstanceRetired();
  bool failed() const;

  int64_t id = 0;
  std::vector<std::unique_ptr<StageTask>> instances;
  std::vector<std::unique_ptr<ExchangeBuffer>> buffers;
  /// Partition routers for dop>1 edges. The partition buffers themselves
  /// live in `buffers` (above) so Fail() cancels them uniformly.
  std::vector<std::unique_ptr<PartitionedExchange>> exchanges;
  exec::ExecContext* exec_ctx = nullptr;  // for DML packets

 private:
  friend class StagedEngine;
  mutable Mutex mu_;
  CondVar cv_;
  int remaining_ GUARDED_BY(mu_) = 0;
  Status status_ GUARDED_BY(mu_);
  bool failed_ GUARDED_BY(mu_) = false;
  std::vector<catalog::Tuple> rows_ GUARDED_BY(mu_);
  std::function<void()> on_done_ GUARDED_BY(mu_);
};

/// The staged engine: owns the stage runtime and executes physical plans.
class StagedEngine {
 public:
  StagedEngine(catalog::Catalog* catalog, StagedEngineOptions options = {});
  ~StagedEngine();

  /// Executes a plan to completion and returns the result rows. Thread-safe:
  /// concurrent calls interleave through the shared stages. `exec_ctx` is
  /// optional and only consulted by DML packets (mutation logging).
  StatusOr<std::vector<catalog::Tuple>> Execute(
      const optimizer::PhysicalPlan* plan,
      exec::ExecContext* exec_ctx = nullptr);

  /// Asynchronous execution for concurrent-client experiments.
  std::shared_ptr<StagedQuery> Submit(const optimizer::PhysicalPlan* plan,
                                      exec::ExecContext* exec_ctx = nullptr);

  StageRuntime* runtime() { return &runtime_; }
  catalog::Catalog* catalog() { return catalog_; }
  const StagedEngineOptions& options() const { return options_; }
  /// The per-table elevator cursors the fscan stages share (§5.4).
  SharedScanManager* shared_scans() { return shared_scans_.get(); }
  /// The commit stage (null unless options.wal was set).
  GroupCommitStage* group_commit() { return group_commit_.get(); }

  /// The stage responsible for a plan node (exposed for tests/monitoring).
  Stage* StageFor(const optimizer::PhysicalPlan& node);

 private:
  /// Pool configuration for a stage: exact stage_pools entry, the "fscan"
  /// fallback for per-table scan stages, else threads_per_stage unpinned.
  StagePoolSpec PoolFor(const std::string& stage_name) const;
  /// Creates the commit stage when options_.wal is set (ctor helper).
  void MaybeCreateCommitStage();

  catalog::Catalog* catalog_;
  StagedEngineOptions options_;
  StageRuntime runtime_;
  std::unique_ptr<SharedScanManager> shared_scans_;
  // Declared after runtime_; the dtor drains it before runtime_.Shutdown().
  std::unique_ptr<GroupCommitStage> group_commit_;

  // Guards the lazily-built per-table fscan stage map below; the named
  // stages are created in the constructor and immutable afterwards.
  Mutex stage_map_mu_;
  Stage* iscan_stage_ = nullptr;
  Stage* qual_stage_ = nullptr;
  Stage* sort_stage_ = nullptr;
  Stage* join_stage_ = nullptr;
  Stage* aggr_stage_ = nullptr;
  Stage* dml_stage_ = nullptr;
  Stage* execute_stage_ = nullptr;  // coarse granularity
  std::map<catalog::TableId, Stage*> fscan_stages_ GUARDED_BY(stage_map_mu_);
  Stage* fscan_shared_ = nullptr;

  std::atomic<int64_t> next_query_id_{1};
};

}  // namespace stagedb::engine

#endif  // STAGEDB_ENGINE_STAGED_ENGINE_H_
