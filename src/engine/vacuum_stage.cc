#include "engine/vacuum_stage.h"

#include <chrono>

namespace stagedb::engine {

/// The stage's single long-lived packet, mirroring the group-commit flush
/// task: parked (kBlocked) while nothing is pending, woken via
/// Stage::Activate, one vacuum pass per Run().
class VacuumStage::VacuumTask : public StageTask {
 public:
  explicit VacuumTask(VacuumStage* owner) : owner_(owner) {}
  RunOutcome Run() override { return owner_->RunVacuum(); }
  bool CanMakeProgress() override { return owner_->HasPending(); }

 private:
  VacuumStage* owner_;
};

VacuumStage::VacuumStage(StageRuntime* runtime, catalog::Catalog* catalog,
                         Options options, StagePoolSpec pool)
    : catalog_(catalog), options_(options),
      stage_(runtime->CreateStage("vacuum", pool)),
      task_(std::make_unique<VacuumTask>(this)) {}

VacuumStage::~VacuumStage() { Drain(); }

bool VacuumStage::HasPending() const {
  MutexLock lock(mu_);
  return wake_pending_;
}

void VacuumStage::Wake() {
  bool first = false;
  {
    MutexLock lock(mu_);
    if (draining_) return;
    wake_pending_ = true;
    first = !task_enqueued_;
    task_enqueued_ = true;
  }
  if (first) {
    stage_->Enqueue(task_.get());
  } else {
    stage_->Activate(task_.get());
  }
}

RunOutcome VacuumStage::RunVacuum() {
  {
    MutexLock lock(mu_);
    if (!wake_pending_) return RunOutcome::kBlocked;
    if (!draining_ && options_.window_us > 0) {
      // Batching window: let a burst of committing deletes coalesce into one
      // pass. The CondVar wait (not a sleep) lets Drain cut it short.
      window_cv_.WaitFor(mu_, std::chrono::microseconds(options_.window_us));
    }
    wake_pending_ = false;
    vacuuming_ = true;
  }
  // Reset the hint counter before the pass: marks that land mid-pass may be
  // counted twice (a harmless extra wake), never missed.
  if (catalog_->mvcc() != nullptr) catalog_->mvcc()->ResetDeadVersions();
  auto reclaimed_or = catalog_->MvccVacuum();
  RunOutcome outcome;
  {
    MutexLock lock(mu_);
    vacuuming_ = false;
    ++passes_;
    if (reclaimed_or.ok()) {
      reclaimed_ += *reclaimed_or;
    } else if (last_error_.ok()) {
      last_error_ = reclaimed_or.status();
    }
    outcome = (wake_pending_ && !draining_) ? RunOutcome::kYield
                                            : RunOutcome::kBlocked;
  }
  drain_cv_.NotifyAll();
  return outcome;
}

void VacuumStage::Drain() {
  {
    MutexLock lock(mu_);
    draining_ = true;
  }
  window_cv_.NotifyAll();
  MutexLock lock(mu_);
  while (wake_pending_ || vacuuming_) {
    lock.Unlock();
    // The task may be parked (its wake predates this drain): poke it so the
    // final pass runs.
    stage_->Activate(task_.get());
    lock.Lock();
    drain_cv_.WaitFor(mu_, std::chrono::milliseconds(1));
  }
}

int64_t VacuumStage::passes() const {
  MutexLock lock(mu_);
  return passes_;
}

int64_t VacuumStage::versions_reclaimed() const {
  MutexLock lock(mu_);
  return reclaimed_;
}

Status VacuumStage::last_error() const {
  MutexLock lock(mu_);
  return last_error_;
}

}  // namespace stagedb::engine
