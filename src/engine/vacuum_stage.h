// The vacuum stage: staged reclamation of dead MVCC versions.
//
// Snapshot-mode deletes only *mark* versions dead; something must eventually
// reclaim the storage and the index entries. In the staged design that
// something is, of course, a stage: a long-lived packet parked on its own
// queue, woken by the commit path when enough delete marks have committed,
// which runs Catalog::MvccVacuum passes against the horizon the
// TransactionManager computes from the oldest live snapshot. Readers never
// coordinate with it — vacuum only touches versions already invisible to
// every present and future snapshot, and the catalog's structural lock
// serializes its index-entry removal against concurrent inserters.
#ifndef STAGEDB_ENGINE_VACUUM_STAGE_H_
#define STAGEDB_ENGINE_VACUUM_STAGE_H_

#include <cstdint>
#include <memory>

#include "catalog/catalog.h"
#include "common/mutex.h"
#include "common/status.h"
#include "engine/runtime.h"

namespace stagedb::engine {

/// The stage itself. Rides a caller-provided StageRuntime (the engine's own
/// runtime in staged mode so "vacuum" shows up beside fscan/commit in the
/// stage table; the commit stage's private runtime in volcano mode).
class VacuumStage {
 public:
  struct Options {
    /// Batching window after a wake: absorbs a burst of committing deletes
    /// into one pass instead of one pass per commit.
    int64_t window_us = 1000;
  };

  /// Creates the "vacuum" stage on `runtime`. Must be called before the
  /// runtime serves its first packet (stage creation rule). `catalog` must
  /// have MVCC enabled and must outlive this object.
  VacuumStage(StageRuntime* runtime, catalog::Catalog* catalog,
              Options options, StagePoolSpec pool);
  ~VacuumStage();

  VacuumStage(const VacuumStage&) = delete;
  VacuumStage& operator=(const VacuumStage&) = delete;

  /// Hints that dead versions await reclamation (called by the commit path
  /// when the TransactionManager's dead-version counter crosses the
  /// Database's threshold). Cheap and non-blocking; passes coalesce.
  void Wake();

  /// Runs remaining passes and stops accepting wakes. Must be called before
  /// the owning runtime's Shutdown(); after Drain returns no vacuum work is
  /// in progress.
  void Drain();

  int64_t passes() const;
  int64_t versions_reclaimed() const;
  /// First pass error, if any (passes keep running after errors).
  Status last_error() const;
  Stage* stage() { return stage_; }

 private:
  class VacuumTask;
  RunOutcome RunVacuum();
  bool HasPending() const;

  catalog::Catalog* const catalog_;
  const Options options_;
  Stage* stage_;
  std::unique_ptr<VacuumTask> task_;

  mutable Mutex mu_;
  CondVar window_cv_;  // cut a batching window short (drain)
  CondVar drain_cv_;   // Drain waits for the in-flight pass
  bool wake_pending_ GUARDED_BY(mu_) = false;
  bool draining_ GUARDED_BY(mu_) = false;
  // A pass is running right now (outside mu_, inside the catalog).
  bool vacuuming_ GUARDED_BY(mu_) = false;
  bool task_enqueued_ GUARDED_BY(mu_) = false;
  int64_t passes_ GUARDED_BY(mu_) = 0;
  int64_t reclaimed_ GUARDED_BY(mu_) = 0;
  Status last_error_ GUARDED_BY(mu_);
};

}  // namespace stagedb::engine

#endif  // STAGEDB_ENGINE_VACUUM_STAGE_H_
