// Volcano-style (iterator model) execution engine.
//
// This is the execution model of the traditional architectures the paper
// criticizes: one worker thread pulls tuples through the whole plan. It is
// the baseline against which the staged engine is compared, and its operator
// kernels define the behaviour the staged drivers must match (the two engines
// are differential-tested against each other).
#ifndef STAGEDB_EXEC_EXECUTOR_H_
#define STAGEDB_EXEC_EXECUTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/tuple.h"
#include "common/status.h"
#include "optimizer/plan.h"

namespace stagedb::exec {

/// Per-operator activity record: how much work each module performed for one
/// query. The virtual-time replayer converts these counts into CPU demand
/// segments (see DESIGN.md E2).
struct OperatorTraceEntry {
  optimizer::PlanKind kind;
  std::string detail;     // e.g. table name
  int64_t tuples_out = 0;
  int64_t invocations = 0;
};

/// Collects operator activity for one query execution.
class OperatorTrace {
 public:
  size_t Register(optimizer::PlanKind kind, std::string detail) {
    entries_.push_back({kind, std::move(detail), 0, 0});
    return entries_.size() - 1;
  }
  void CountTuple(size_t id) { ++entries_[id].tuples_out; }
  void CountInvocation(size_t id) { ++entries_[id].invocations; }
  const std::vector<OperatorTraceEntry>& entries() const { return entries_; }

 private:
  std::vector<OperatorTraceEntry> entries_;
};

/// One logged catalog mutation, used to roll back SQL-level transactions.
struct MutationRecord {
  enum class Op { kInsert, kDelete };
  catalog::TableInfo* table = nullptr;
  Op op = Op::kInsert;
  storage::Rid rid;
  catalog::Tuple tuple;
};

/// Undo log for an explicit SQL transaction (BEGIN ... COMMIT/ROLLBACK).
/// Catalog-level (indexes and statistics are maintained during undo); the
/// storage-level TransactionManager provides the WAL/locking substrate.
class MutationLog {
 public:
  void LogInsert(catalog::TableInfo* table, const storage::Rid& rid,
                 catalog::Tuple tuple) {
    records_.push_back(
        {table, MutationRecord::Op::kInsert, rid, std::move(tuple)});
  }
  void LogDelete(catalog::TableInfo* table, const storage::Rid& rid,
                 catalog::Tuple tuple) {
    records_.push_back(
        {table, MutationRecord::Op::kDelete, rid, std::move(tuple)});
  }
  /// Applies inverse operations in reverse order through the catalog.
  Status Rollback(catalog::Catalog* catalog);
  size_t size() const { return records_.size(); }
  void Clear() { records_.clear(); }

 private:
  std::vector<MutationRecord> records_;
};

/// Receives row-level mutations for write-ahead logging. The DML executors
/// call this after each successful catalog mutation (mirroring MutationLog's
/// placement, so the log matches live state even on partial statement
/// failure); the Database facade implements it over the storage WAL. Kept
/// abstract so exec does not depend on the storage log.
class WalSink {
 public:
  virtual ~WalSink() = default;
  virtual Status LogInsert(catalog::TableInfo* table,
                           const catalog::Tuple& tuple) = 0;
  virtual Status LogDelete(catalog::TableInfo* table,
                           const catalog::Tuple& tuple) = 0;
  virtual Status LogUpdate(catalog::TableInfo* table,
                           const catalog::Tuple& before,
                           const catalog::Tuple& after) = 0;
};

/// Per-query execution context.
struct ExecContext {
  catalog::Catalog* catalog = nullptr;
  OperatorTrace* trace = nullptr;        // optional (activity tracing)
  MutationLog* mutation_log = nullptr;   // optional (active SQL transaction)
  WalSink* wal = nullptr;                // optional (durable database)
  /// MVCC transaction state when the catalog runs in snapshot mode: scans
  /// filter versions through mvcc->View() and DML records its write set
  /// here. Null on a snapshot-mode catalog means "no registered snapshot";
  /// readers then fall back to last-committed visibility.
  storage::MvccTxn* mvcc = nullptr;      // optional (snapshot concurrency)
};

/// The visibility view for a scan: the context's transaction view when
/// present, otherwise everything committed so far (internal readers such as
/// index backfill or stats refresh that run without a registered snapshot).
inline storage::MvccReadView MvccViewFor(const ExecContext* ctx) {
  if (ctx != nullptr && ctx->mvcc != nullptr) return ctx->mvcc->View();
  if (ctx != nullptr && ctx->catalog != nullptr &&
      ctx->catalog->mvcc_enabled()) {
    return storage::MvccReadView{ctx->catalog->mvcc()->last_committed(), 0};
  }
  return storage::MvccReadView{0, 0};
}

/// Decodes a heap record into `*out`, applying MVCC visibility when
/// `mvcc_on`: invisible versions return false (skip), visible ones are
/// decoded from the payload after the version header. Shared by the volcano
/// executors and the staged scan drivers so both engines filter identically.
inline StatusOr<bool> DecodeVisibleRecord(bool mvcc_on,
                                          const storage::MvccReadView& view,
                                          const catalog::Schema& schema,
                                          std::string_view record,
                                          catalog::Tuple* out) {
  if (mvcc_on) {
    if (record.size() < storage::kVersionHeaderSize) {
      return Status::Internal("record missing MVCC version header");
    }
    if (!storage::VersionVisible(storage::DecodeVersionHeader(record), view)) {
      return false;
    }
    record = storage::RowPayload(record);
  }
  auto tuple = catalog::DecodeTuple(schema, record);
  if (!tuple.ok()) return tuple.status();
  *out = std::move(*tuple);
  return true;
}

/// Pull-based operator.
class Executor {
 public:
  virtual ~Executor() = default;
  /// Prepares the operator (may consume blocking inputs, e.g. sort).
  virtual Status Init() = 0;
  /// Produces the next tuple; returns false at end of stream.
  virtual StatusOr<bool> Next(catalog::Tuple* out) = 0;
  const catalog::Schema& schema() const { return schema_; }

 protected:
  explicit Executor(catalog::Schema schema) : schema_(std::move(schema)) {}
  catalog::Schema schema_;
};

/// Builds the executor tree for a physical plan.
StatusOr<std::unique_ptr<Executor>> CreateExecutor(
    const optimizer::PhysicalPlan* plan, ExecContext* ctx);

/// Runs a plan to completion and returns all result tuples.
StatusOr<std::vector<catalog::Tuple>> ExecutePlan(
    const optimizer::PhysicalPlan* plan, ExecContext* ctx);

}  // namespace stagedb::exec

#endif  // STAGEDB_EXEC_EXECUTOR_H_
