#include <algorithm>
#include <unordered_map>

#include "common/string_util.h"
#include "exec/executor.h"
#include "optimizer/bound_expr.h"

namespace stagedb::exec {

using catalog::Schema;
using catalog::Tuple;
using catalog::TypeId;
using catalog::Value;
using optimizer::BoundExpr;
using optimizer::Eval;
using optimizer::EvalPredicate;
using optimizer::PhysicalPlan;
using optimizer::PlanKind;
using parser::AggFunc;

namespace {

// ------------------------------------------------------------ group keys ---

struct GroupKey {
  std::vector<Value> values;
  bool operator==(const GroupKey& o) const {
    if (values.size() != o.values.size()) return false;
    for (size_t i = 0; i < values.size(); ++i) {
      if (values[i].Compare(o.values[i]) != 0) return false;
    }
    return true;
  }
};

struct GroupKeyHash {
  size_t operator()(const GroupKey& k) const {
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (const Value& v : k.values) {
      h ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

StatusOr<GroupKey> KeyFromColumns(const Tuple& tuple,
                                  const std::vector<size_t>& columns) {
  GroupKey key;
  key.values.reserve(columns.size());
  for (size_t c : columns) {
    if (c >= tuple.size()) return Status::Internal("join key out of range");
    key.values.push_back(tuple[c]);
  }
  return key;
}

// --------------------------------------------------------------- SeqScan ---

class SeqScanExec : public Executor {
 public:
  SeqScanExec(const PhysicalPlan* plan, ExecContext* ctx)
      : Executor(plan->schema),
        plan_(plan),
        ctx_(ctx),
        iter_(plan->table->heap->Scan()) {
    if (ctx_->trace != nullptr) {
      trace_id_ = ctx_->trace->Register(PlanKind::kSeqScan, plan->table->name);
    }
  }
  Status Init() override {
    mvcc_on_ = ctx_->catalog != nullptr && ctx_->catalog->mvcc_enabled();
    view_ = MvccViewFor(ctx_);
    return Status::OK();
  }
  StatusOr<bool> Next(Tuple* out) override {
    if (ctx_->trace != nullptr) ctx_->trace->CountInvocation(trace_id_);
    while (iter_.Next()) {
      auto visible = DecodeVisibleRecord(mvcc_on_, view_,
                                         plan_->table->schema,
                                         iter_.record(), out);
      if (!visible.ok()) return visible.status();
      if (!*visible) continue;  // version outside our snapshot
      if (ctx_->trace != nullptr) ctx_->trace->CountTuple(trace_id_);
      return true;
    }
    STAGEDB_RETURN_IF_ERROR(iter_.status());
    return false;
  }

 private:
  const PhysicalPlan* plan_;
  ExecContext* ctx_;
  storage::HeapFile::Iterator iter_;
  bool mvcc_on_ = false;
  storage::MvccReadView view_;
  size_t trace_id_ = 0;
};

// -------------------------------------------------------------- IndexScan --

class IndexScanExec : public Executor {
 public:
  IndexScanExec(const PhysicalPlan* plan, ExecContext* ctx)
      : Executor(plan->schema), plan_(plan), ctx_(ctx) {
    if (ctx_->trace != nullptr) {
      trace_id_ =
          ctx_->trace->Register(PlanKind::kIndexScan, plan->table->name);
    }
  }
  Status Init() override {
    mvcc_on_ = ctx_->catalog != nullptr && ctx_->catalog->mvcc_enabled();
    view_ = MvccViewFor(ctx_);
    return plan_->index->tree->Scan(plan_->index_lo, plan_->index_hi,
                                    &matches_);
  }
  StatusOr<bool> Next(Tuple* out) override {
    if (ctx_->trace != nullptr) ctx_->trace->CountInvocation(trace_id_);
    while (pos_ < matches_.size()) {
      const auto& [key, head] = matches_[pos_++];
      auto found = FetchVisible(key, head, out);
      if (!found.ok()) return found.status();
      if (!*found) continue;
      if (ctx_->trace != nullptr) ctx_->trace->CountTuple(trace_id_);
      return true;
    }
    return false;
  }

 private:
  /// Resolves one index match. Without MVCC this is a plain heap fetch; with
  /// it, the entry points at the newest version of the key and we walk the
  /// prev-chain to the (unique) version visible in our view. A dangling prev
  /// (vacuumed tail) ends the walk: deeper versions are strictly older than
  /// the vacuum horizon, hence invisible to us anyway.
  StatusOr<bool> FetchVisible(int64_t key, storage::Rid rid, Tuple* out) {
    std::string record;
    while (true) {
      Status s = plan_->table->heap->Get(rid, &record);
      if (s.IsNotFound()) return false;  // deleted/vacuumed after lookup
      STAGEDB_RETURN_IF_ERROR(s);
      if (!mvcc_on_) {
        auto tuple = catalog::DecodeTuple(plan_->table->schema, record);
        if (!tuple.ok()) return tuple.status();
        *out = std::move(*tuple);
        return true;
      }
      if (record.size() < storage::kVersionHeaderSize) {
        return Status::Internal("record missing MVCC version header");
      }
      const storage::VersionHeader h = storage::DecodeVersionHeader(record);
      if (storage::VersionVisible(h, view_)) {
        auto tuple = catalog::DecodeTuple(plan_->table->schema,
                                          storage::RowPayload(record));
        if (!tuple.ok()) return tuple.status();
        // Key recheck: an update that changed the indexed column links
        // versions with different keys into one chain. If the visible
        // version's key is not the one we looked up, the row does not match
        // in this snapshot.
        const Value& v = (*tuple)[plan_->index->column];
        if (v.is_null() || v.int_value() != key) return false;
        *out = std::move(*tuple);
        return true;
      }
      if (!h.has_prev()) return false;
      rid = h.prev;
    }
  }

  const PhysicalPlan* plan_;
  ExecContext* ctx_;
  std::vector<std::pair<int64_t, storage::Rid>> matches_;
  size_t pos_ = 0;
  bool mvcc_on_ = false;
  storage::MvccReadView view_;
  size_t trace_id_ = 0;
};

// ----------------------------------------------------------------- Filter --

class FilterExec : public Executor {
 public:
  FilterExec(const PhysicalPlan* plan, std::unique_ptr<Executor> child,
             ExecContext* ctx)
      : Executor(plan->schema), plan_(plan), child_(std::move(child)),
        ctx_(ctx) {
    if (ctx_->trace != nullptr) {
      trace_id_ = ctx_->trace->Register(PlanKind::kFilter, "");
    }
  }
  Status Init() override { return child_->Init(); }
  StatusOr<bool> Next(Tuple* out) override {
    while (true) {
      auto more = child_->Next(out);
      if (!more.ok()) return more;
      if (!*more) return false;
      auto pass = EvalPredicate(*plan_->predicate, *out);
      if (!pass.ok()) return pass.status();
      if (*pass) {
        if (ctx_->trace != nullptr) ctx_->trace->CountTuple(trace_id_);
        return true;
      }
    }
  }

 private:
  const PhysicalPlan* plan_;
  std::unique_ptr<Executor> child_;
  ExecContext* ctx_;
  size_t trace_id_ = 0;
};

// ---------------------------------------------------------------- Project --

class ProjectExec : public Executor {
 public:
  ProjectExec(const PhysicalPlan* plan, std::unique_ptr<Executor> child,
              ExecContext* ctx)
      : Executor(plan->schema), plan_(plan), child_(std::move(child)),
        ctx_(ctx) {
    if (ctx_->trace != nullptr) {
      trace_id_ = ctx_->trace->Register(PlanKind::kProject, "");
    }
  }
  Status Init() override { return child_->Init(); }
  StatusOr<bool> Next(Tuple* out) override {
    Tuple in;
    auto more = child_->Next(&in);
    if (!more.ok()) return more;
    if (!*more) return false;
    out->clear();
    out->reserve(plan_->exprs.size());
    for (const auto& expr : plan_->exprs) {
      auto v = Eval(*expr, in);
      if (!v.ok()) return v.status();
      out->push_back(std::move(*v));
    }
    if (ctx_->trace != nullptr) ctx_->trace->CountTuple(trace_id_);
    return true;
  }

 private:
  const PhysicalPlan* plan_;
  std::unique_ptr<Executor> child_;
  ExecContext* ctx_;
  size_t trace_id_ = 0;
};

// ---------------------------------------------------------- NestedLoopJoin --

class NestedLoopJoinExec : public Executor {
 public:
  NestedLoopJoinExec(const PhysicalPlan* plan, std::unique_ptr<Executor> left,
                     std::unique_ptr<Executor> right, ExecContext* ctx)
      : Executor(plan->schema), plan_(plan), left_(std::move(left)),
        right_(std::move(right)), ctx_(ctx) {
    if (ctx_->trace != nullptr) {
      trace_id_ = ctx_->trace->Register(PlanKind::kNestedLoopJoin, "");
    }
  }
  Status Init() override {
    STAGEDB_RETURN_IF_ERROR(left_->Init());
    STAGEDB_RETURN_IF_ERROR(right_->Init());
    // Block nested loop: materialize the inner (right) side once.
    Tuple t;
    while (true) {
      auto more = right_->Next(&t);
      if (!more.ok()) return more.status();
      if (!*more) break;
      inner_.push_back(t);
    }
    return Status::OK();
  }
  StatusOr<bool> Next(Tuple* out) override {
    while (true) {
      if (!outer_valid_) {
        auto more = left_->Next(&outer_);
        if (!more.ok()) return more;
        if (!*more) return false;
        outer_valid_ = true;
        inner_pos_ = 0;
      }
      while (inner_pos_ < inner_.size()) {
        const Tuple& inner = inner_[inner_pos_++];
        Tuple joined = outer_;
        joined.insert(joined.end(), inner.begin(), inner.end());
        bool pass = true;
        if (plan_->predicate) {
          auto ok = EvalPredicate(*plan_->predicate, joined);
          if (!ok.ok()) return ok.status();
          pass = *ok;
        }
        if (pass) {
          *out = std::move(joined);
          if (ctx_->trace != nullptr) ctx_->trace->CountTuple(trace_id_);
          return true;
        }
      }
      outer_valid_ = false;
    }
  }

 private:
  const PhysicalPlan* plan_;
  std::unique_ptr<Executor> left_;
  std::unique_ptr<Executor> right_;
  ExecContext* ctx_;
  std::vector<Tuple> inner_;
  Tuple outer_;
  bool outer_valid_ = false;
  size_t inner_pos_ = 0;
  size_t trace_id_ = 0;
};

// --------------------------------------------------------------- HashJoin --

class HashJoinExec : public Executor {
 public:
  HashJoinExec(const PhysicalPlan* plan, std::unique_ptr<Executor> left,
               std::unique_ptr<Executor> right, ExecContext* ctx)
      : Executor(plan->schema), plan_(plan), left_(std::move(left)),
        right_(std::move(right)), ctx_(ctx) {
    if (ctx_->trace != nullptr) {
      trace_id_ = ctx_->trace->Register(PlanKind::kHashJoin, "");
    }
  }
  Status Init() override {
    STAGEDB_RETURN_IF_ERROR(left_->Init());
    STAGEDB_RETURN_IF_ERROR(right_->Init());
    // Build on the right input.
    Tuple t;
    while (true) {
      auto more = right_->Next(&t);
      if (!more.ok()) return more.status();
      if (!*more) break;
      auto key = KeyFromColumns(t, plan_->right_keys);
      if (!key.ok()) return key.status();
      bool has_null = false;
      for (const Value& v : key->values) has_null |= v.is_null();
      if (has_null) continue;  // NULL keys never match
      table_[*key].push_back(t);
    }
    return Status::OK();
  }
  StatusOr<bool> Next(Tuple* out) override {
    while (true) {
      if (matches_ != nullptr && match_pos_ < matches_->size()) {
        const Tuple& inner = (*matches_)[match_pos_++];
        Tuple joined = probe_;
        joined.insert(joined.end(), inner.begin(), inner.end());
        if (plan_->predicate) {
          auto ok = EvalPredicate(*plan_->predicate, joined);
          if (!ok.ok()) return ok.status();
          if (!*ok) continue;
        }
        *out = std::move(joined);
        if (ctx_->trace != nullptr) ctx_->trace->CountTuple(trace_id_);
        return true;
      }
      auto more = left_->Next(&probe_);
      if (!more.ok()) return more;
      if (!*more) return false;
      auto key = KeyFromColumns(probe_, plan_->left_keys);
      if (!key.ok()) return key.status();
      auto it = table_.find(*key);
      matches_ = it == table_.end() ? nullptr : &it->second;
      match_pos_ = 0;
    }
  }

 private:
  const PhysicalPlan* plan_;
  std::unique_ptr<Executor> left_;
  std::unique_ptr<Executor> right_;
  ExecContext* ctx_;
  std::unordered_map<GroupKey, std::vector<Tuple>, GroupKeyHash> table_;
  Tuple probe_;
  const std::vector<Tuple>* matches_ = nullptr;
  size_t match_pos_ = 0;
  size_t trace_id_ = 0;
};

// -------------------------------------------------------------- MergeJoin --

class MergeJoinExec : public Executor {
 public:
  MergeJoinExec(const PhysicalPlan* plan, std::unique_ptr<Executor> left,
                std::unique_ptr<Executor> right, ExecContext* ctx)
      : Executor(plan->schema), plan_(plan), left_(std::move(left)),
        right_(std::move(right)), ctx_(ctx) {
    if (ctx_->trace != nullptr) {
      trace_id_ = ctx_->trace->Register(PlanKind::kMergeJoin, "");
    }
  }
  Status Init() override {
    STAGEDB_RETURN_IF_ERROR(left_->Init());
    STAGEDB_RETURN_IF_ERROR(right_->Init());
    STAGEDB_RETURN_IF_ERROR(Materialize(left_.get(), &lrows_));
    STAGEDB_RETURN_IF_ERROR(Materialize(right_.get(), &rrows_));
    SortBy(&lrows_, plan_->left_keys);
    SortBy(&rrows_, plan_->right_keys);
    return Status::OK();
  }
  StatusOr<bool> Next(Tuple* out) override {
    while (true) {
      // Emit the cross product of the current key groups.
      if (li_ < lgroup_end_ && ri_ < rgroup_end_) {
        Tuple joined = lrows_[li_];
        joined.insert(joined.end(), rrows_[ri_].begin(), rrows_[ri_].end());
        ++ri_;
        if (ri_ == rgroup_end_) {
          ri_ = rgroup_begin_;
          ++li_;
          if (li_ == lgroup_end_) {
            li_ = lgroup_end_;
            ri_ = rgroup_end_;
          }
        }
        if (plan_->predicate) {
          auto ok = EvalPredicate(*plan_->predicate, joined);
          if (!ok.ok()) return ok.status();
          if (!*ok) continue;
        }
        *out = std::move(joined);
        if (ctx_->trace != nullptr) ctx_->trace->CountTuple(trace_id_);
        return true;
      }
      // Advance to the next matching key group.
      if (lgroup_end_ >= lrows_.size() || rgroup_end_ >= rrows_.size()) {
        if (!AdvanceGroups()) return false;
      } else if (!AdvanceGroups()) {
        return false;
      }
    }
  }

 private:
  static Status Materialize(Executor* exec, std::vector<Tuple>* out) {
    Tuple t;
    while (true) {
      auto more = exec->Next(&t);
      if (!more.ok()) return more.status();
      if (!*more) return Status::OK();
      out->push_back(t);
    }
  }
  void SortBy(std::vector<Tuple>* rows, const std::vector<size_t>& keys) {
    std::stable_sort(rows->begin(), rows->end(),
                     [&](const Tuple& a, const Tuple& b) {
                       for (size_t k : keys) {
                         const int c = a[k].Compare(b[k]);
                         if (c != 0) return c < 0;
                       }
                       return false;
                     });
  }
  int CompareKeys(const Tuple& l, const Tuple& r) const {
    for (size_t i = 0; i < plan_->left_keys.size(); ++i) {
      const int c = l[plan_->left_keys[i]].Compare(r[plan_->right_keys[i]]);
      if (c != 0) return c;
    }
    return 0;
  }
  bool KeyHasNull(const Tuple& t, const std::vector<size_t>& keys) const {
    for (size_t k : keys) {
      if (t[k].is_null()) return true;
    }
    return false;
  }
  /// Positions the group cursors on the next pair of equal keys.
  bool AdvanceGroups() {
    size_t l = lgroup_end_, r = rgroup_end_;
    while (l < lrows_.size() && r < rrows_.size()) {
      if (KeyHasNull(lrows_[l], plan_->left_keys)) {
        ++l;
        continue;
      }
      if (KeyHasNull(rrows_[r], plan_->right_keys)) {
        ++r;
        continue;
      }
      const int c = CompareKeys(lrows_[l], rrows_[r]);
      if (c < 0) {
        ++l;
      } else if (c > 0) {
        ++r;
      } else {
        // Found matching groups; find their extents.
        lgroup_begin_ = l;
        lgroup_end_ = l + 1;
        while (lgroup_end_ < lrows_.size() &&
               CompareKeys(lrows_[lgroup_end_], rrows_[r]) == 0) {
          ++lgroup_end_;
        }
        rgroup_begin_ = r;
        rgroup_end_ = r + 1;
        while (rgroup_end_ < rrows_.size() &&
               CompareKeys(lrows_[l], rrows_[rgroup_end_]) == 0) {
          ++rgroup_end_;
        }
        li_ = lgroup_begin_;
        ri_ = rgroup_begin_;
        return true;
      }
    }
    return false;
  }

  const PhysicalPlan* plan_;
  std::unique_ptr<Executor> left_;
  std::unique_ptr<Executor> right_;
  ExecContext* ctx_;
  std::vector<Tuple> lrows_, rrows_;
  size_t lgroup_begin_ = 0, lgroup_end_ = 0;
  size_t rgroup_begin_ = 0, rgroup_end_ = 0;
  size_t li_ = 0, ri_ = 0;
  size_t trace_id_ = 0;
};

// ------------------------------------------------------------------- Sort --

class SortExec : public Executor {
 public:
  SortExec(const PhysicalPlan* plan, std::unique_ptr<Executor> child,
           ExecContext* ctx)
      : Executor(plan->schema), plan_(plan), child_(std::move(child)),
        ctx_(ctx) {
    if (ctx_->trace != nullptr) {
      trace_id_ = ctx_->trace->Register(PlanKind::kSort, "");
    }
  }
  Status Init() override {
    STAGEDB_RETURN_IF_ERROR(child_->Init());
    Tuple t;
    while (true) {
      auto more = child_->Next(&t);
      if (!more.ok()) return more.status();
      if (!*more) break;
      rows_.push_back(t);
    }
    // Precompute sort keys, then sort.
    std::vector<std::vector<Value>> keys(rows_.size());
    for (size_t i = 0; i < rows_.size(); ++i) {
      for (const auto& key : plan_->sort_keys) {
        auto v = Eval(*key.expr, rows_[i]);
        if (!v.ok()) return v.status();
        keys[i].push_back(std::move(*v));
      }
    }
    std::vector<size_t> order(rows_.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      for (size_t k = 0; k < plan_->sort_keys.size(); ++k) {
        int c = keys[a][k].Compare(keys[b][k]);
        if (plan_->sort_keys[k].descending) c = -c;
        if (c != 0) return c < 0;
      }
      return false;
    });
    std::vector<Tuple> sorted;
    sorted.reserve(rows_.size());
    for (size_t i : order) sorted.push_back(std::move(rows_[i]));
    rows_ = std::move(sorted);
    return Status::OK();
  }
  StatusOr<bool> Next(Tuple* out) override {
    if (pos_ >= rows_.size()) return false;
    *out = std::move(rows_[pos_++]);
    if (ctx_->trace != nullptr) ctx_->trace->CountTuple(trace_id_);
    return true;
  }

 private:
  const PhysicalPlan* plan_;
  std::unique_ptr<Executor> child_;
  ExecContext* ctx_;
  std::vector<Tuple> rows_;
  size_t pos_ = 0;
  size_t trace_id_ = 0;
};

// ---------------------------------------------------------- HashAggregate --

/// Aggregate accumulator (one per aggregate function per group).
struct AggAccumulator {
  int64_t count = 0;
  double sum = 0;
  Value min, max;
  bool any = false;
};

class HashAggExec : public Executor {
 public:
  HashAggExec(const PhysicalPlan* plan, std::unique_ptr<Executor> child,
              ExecContext* ctx)
      : Executor(plan->schema), plan_(plan), child_(std::move(child)),
        ctx_(ctx) {
    if (ctx_->trace != nullptr) {
      trace_id_ = ctx_->trace->Register(PlanKind::kHashAggregate, "");
    }
  }
  Status Init() override {
    STAGEDB_RETURN_IF_ERROR(child_->Init());
    Tuple t;
    while (true) {
      auto more = child_->Next(&t);
      if (!more.ok()) return more.status();
      if (!*more) break;
      GroupKey key;
      for (const auto& expr : plan_->exprs) {
        auto v = Eval(*expr, t);
        if (!v.ok()) return v.status();
        key.values.push_back(std::move(*v));
      }
      auto& accs = groups_[key];
      if (accs.empty()) accs.resize(plan_->aggregates.size());
      for (size_t i = 0; i < plan_->aggregates.size(); ++i) {
        const optimizer::AggSpec& spec = plan_->aggregates[i];
        Value v = Value::Int(1);  // COUNT(*) counts rows
        if (spec.arg) {
          auto val = Eval(*spec.arg, t);
          if (!val.ok()) return val.status();
          v = std::move(*val);
          if (v.is_null()) continue;  // SQL: aggregates skip NULLs
        }
        AggAccumulator& acc = accs[i];
        acc.any = true;
        ++acc.count;
        if (spec.func == AggFunc::kSum || spec.func == AggFunc::kAvg) {
          acc.sum += v.AsDouble();
        }
        if (spec.func == AggFunc::kMin &&
            (acc.min.is_null() || v.Compare(acc.min) < 0)) {
          acc.min = v;
        }
        if (spec.func == AggFunc::kMax &&
            (acc.max.is_null() || v.Compare(acc.max) > 0)) {
          acc.max = v;
        }
      }
    }
    // Global aggregation over zero rows still yields one output row.
    if (groups_.empty() && plan_->exprs.empty()) {
      groups_[GroupKey{}] =
          std::vector<AggAccumulator>(plan_->aggregates.size());
    }
    iter_ = groups_.begin();
    return Status::OK();
  }
  StatusOr<bool> Next(Tuple* out) override {
    if (iter_ == groups_.end()) return false;
    out->clear();
    for (const Value& v : iter_->first.values) out->push_back(v);
    for (size_t i = 0; i < plan_->aggregates.size(); ++i) {
      const optimizer::AggSpec& spec = plan_->aggregates[i];
      const AggAccumulator& acc = iter_->second[i];
      switch (spec.func) {
        case AggFunc::kCount:
          out->push_back(Value::Int(acc.count));
          break;
        case AggFunc::kSum:
          if (!acc.any) {
            out->push_back(Value::Null());
          } else if (spec.result_type == TypeId::kInt64) {
            out->push_back(Value::Int(static_cast<int64_t>(acc.sum)));
          } else {
            out->push_back(Value::Double(acc.sum));
          }
          break;
        case AggFunc::kAvg:
          out->push_back(acc.any ? Value::Double(acc.sum / acc.count)
                                 : Value::Null());
          break;
        case AggFunc::kMin:
          out->push_back(acc.min);
          break;
        case AggFunc::kMax:
          out->push_back(acc.max);
          break;
      }
    }
    ++iter_;
    if (ctx_->trace != nullptr) ctx_->trace->CountTuple(trace_id_);
    return true;
  }

 private:
  const PhysicalPlan* plan_;
  std::unique_ptr<Executor> child_;
  ExecContext* ctx_;
  std::unordered_map<GroupKey, std::vector<AggAccumulator>, GroupKeyHash>
      groups_;
  std::unordered_map<GroupKey, std::vector<AggAccumulator>,
                     GroupKeyHash>::iterator iter_;
  size_t trace_id_ = 0;
};

// ------------------------------------------------------------------ Limit --

class LimitExec : public Executor {
 public:
  LimitExec(const PhysicalPlan* plan, std::unique_ptr<Executor> child,
            ExecContext* ctx)
      : Executor(plan->schema), plan_(plan), child_(std::move(child)),
        ctx_(ctx) {}
  Status Init() override { return child_->Init(); }
  StatusOr<bool> Next(Tuple* out) override {
    (void)ctx_;
    if (produced_ >= plan_->limit) return false;
    auto more = child_->Next(out);
    if (!more.ok()) return more;
    if (!*more) return false;
    ++produced_;
    return true;
  }

 private:
  const PhysicalPlan* plan_;
  std::unique_ptr<Executor> child_;
  ExecContext* ctx_;
  int64_t produced_ = 0;
};

// ----------------------------------------------------------------- Values --

class ValuesExec : public Executor {
 public:
  ValuesExec(const PhysicalPlan* plan, ExecContext* ctx)
      : Executor(plan->schema), plan_(plan) {
    (void)ctx;
  }
  Status Init() override { return Status::OK(); }
  StatusOr<bool> Next(Tuple* out) override {
    if (pos_ >= plan_->rows.size()) return false;
    *out = plan_->rows[pos_++];
    return true;
  }

 private:
  const PhysicalPlan* plan_;
  size_t pos_ = 0;
};

// -------------------------------------------------------------- mutations --

class InsertExec : public Executor {
 public:
  InsertExec(const PhysicalPlan* plan, std::unique_ptr<Executor> child,
             ExecContext* ctx)
      : Executor(plan->schema), plan_(plan), child_(std::move(child)),
        ctx_(ctx) {}
  Status Init() override { return child_->Init(); }
  StatusOr<bool> Next(Tuple* out) override {
    if (done_) return false;
    done_ = true;
    int64_t count = 0;
    Tuple t;
    while (true) {
      auto more = child_->Next(&t);
      if (!more.ok()) return more.status();
      if (!*more) break;
      auto rid = ctx_->catalog->InsertTuple(plan_->table, t, ctx_->mvcc);
      if (!rid.ok()) return rid.status();
      if (ctx_->mutation_log != nullptr) {
        ctx_->mutation_log->LogInsert(plan_->table, *rid, t);
      }
      if (ctx_->wal != nullptr) {
        STAGEDB_RETURN_IF_ERROR(ctx_->wal->LogInsert(plan_->table, t));
      }
      ++count;
    }
    *out = {Value::Int(count)};
    return true;
  }

 private:
  const PhysicalPlan* plan_;
  std::unique_ptr<Executor> child_;
  ExecContext* ctx_;
  bool done_ = false;
};

class DeleteExec : public Executor {
 public:
  DeleteExec(const PhysicalPlan* plan, ExecContext* ctx)
      : Executor(plan->schema), plan_(plan), ctx_(ctx) {}
  Status Init() override { return Status::OK(); }
  StatusOr<bool> Next(Tuple* out) override {
    if (done_) return false;
    done_ = true;
    // Two phases: collect matching rids, then delete (so the scan iterator
    // never observes its own deletions).
    std::vector<std::pair<storage::Rid, Tuple>> victims;
    const bool mvcc_on = ctx_->catalog->mvcc_enabled();
    const storage::MvccReadView view = MvccViewFor(ctx_);
    auto it = plan_->table->heap->Scan();
    while (it.Next()) {
      Tuple tuple;
      auto visible = DecodeVisibleRecord(mvcc_on, view, plan_->table->schema,
                                         it.record(), &tuple);
      if (!visible.ok()) return visible.status();
      if (!*visible) continue;
      if (plan_->predicate) {
        auto pass = EvalPredicate(*plan_->predicate, tuple);
        if (!pass.ok()) return pass.status();
        if (!*pass) continue;
      }
      victims.emplace_back(it.rid(), std::move(tuple));
    }
    STAGEDB_RETURN_IF_ERROR(it.status());
    for (auto& [rid, tuple] : victims) {
      STAGEDB_RETURN_IF_ERROR(
          ctx_->catalog->DeleteTuple(plan_->table, rid, ctx_->mvcc));
      if (ctx_->wal != nullptr) {
        STAGEDB_RETURN_IF_ERROR(ctx_->wal->LogDelete(plan_->table, tuple));
      }
      if (ctx_->mutation_log != nullptr) {
        ctx_->mutation_log->LogDelete(plan_->table, rid, std::move(tuple));
      }
    }
    *out = {Value::Int(static_cast<int64_t>(victims.size()))};
    return true;
  }

 private:
  const PhysicalPlan* plan_;
  ExecContext* ctx_;
  bool done_ = false;
};

class UpdateExec : public Executor {
 public:
  UpdateExec(const PhysicalPlan* plan, ExecContext* ctx)
      : Executor(plan->schema), plan_(plan), ctx_(ctx) {}
  Status Init() override { return Status::OK(); }
  StatusOr<bool> Next(Tuple* out) override {
    if (done_) return false;
    done_ = true;
    struct Pending {
      storage::Rid rid;
      Tuple old_tuple;
      Tuple new_tuple;
    };
    std::vector<Pending> updates;
    const bool mvcc_on = ctx_->catalog->mvcc_enabled();
    const storage::MvccReadView view = MvccViewFor(ctx_);
    auto it = plan_->table->heap->Scan();
    while (it.Next()) {
      Tuple tuple;
      auto visible = DecodeVisibleRecord(mvcc_on, view, plan_->table->schema,
                                         it.record(), &tuple);
      if (!visible.ok()) return visible.status();
      if (!*visible) continue;
      if (plan_->predicate) {
        auto pass = EvalPredicate(*plan_->predicate, tuple);
        if (!pass.ok()) return pass.status();
        if (!*pass) continue;
      }
      Tuple updated = tuple;
      for (size_t i = 0; i < plan_->update_columns.size(); ++i) {
        auto v = Eval(*plan_->exprs[i], tuple);
        if (!v.ok()) return v.status();
        Value value = *v;
        const TypeId want =
            plan_->table->schema.column(plan_->update_columns[i]).type;
        if (want == TypeId::kDouble && value.type() == TypeId::kInt64) {
          value = Value::Double(static_cast<double>(value.int_value()));
        }
        if (!catalog::TypesCompatible(value.type(), want)) {
          return Status::InvalidArgument("UPDATE value type mismatch");
        }
        updated[plan_->update_columns[i]] = std::move(value);
      }
      updates.push_back({it.rid(), std::move(tuple), std::move(updated)});
    }
    STAGEDB_RETURN_IF_ERROR(it.status());
    for (auto& pending : updates) {
      // Delete + reinsert keeps indexes and stats consistent. Under MVCC
      // this marks the old version deleted and installs the new tuple as a
      // fresh version, both stamped with the statement's transaction.
      STAGEDB_RETURN_IF_ERROR(
          ctx_->catalog->DeleteTuple(plan_->table, pending.rid, ctx_->mvcc));
      auto new_rid = ctx_->catalog->InsertTuple(plan_->table,
                                                pending.new_tuple, ctx_->mvcc);
      if (!new_rid.ok()) return new_rid.status();
      if (ctx_->wal != nullptr) {
        // One UPDATE record carrying both images (redo finds the victim by
        // before-image, undo restores it).
        STAGEDB_RETURN_IF_ERROR(ctx_->wal->LogUpdate(
            plan_->table, pending.old_tuple, pending.new_tuple));
      }
      if (ctx_->mutation_log != nullptr) {
        ctx_->mutation_log->LogDelete(plan_->table, pending.rid,
                                      std::move(pending.old_tuple));
        ctx_->mutation_log->LogInsert(plan_->table, *new_rid,
                                      std::move(pending.new_tuple));
      }
    }
    *out = {Value::Int(static_cast<int64_t>(updates.size()))};
    return true;
  }

 private:
  const PhysicalPlan* plan_;
  ExecContext* ctx_;
  bool done_ = false;
};

}  // namespace

StatusOr<std::unique_ptr<Executor>> CreateExecutor(const PhysicalPlan* plan,
                                                   ExecContext* ctx) {
  std::vector<std::unique_ptr<Executor>> children;
  for (const auto& child : plan->children) {
    auto exec = CreateExecutor(child.get(), ctx);
    if (!exec.ok()) return exec.status();
    children.push_back(std::move(*exec));
  }
  switch (plan->kind) {
    case PlanKind::kSeqScan:
      return std::unique_ptr<Executor>(new SeqScanExec(plan, ctx));
    case PlanKind::kIndexScan:
      return std::unique_ptr<Executor>(new IndexScanExec(plan, ctx));
    case PlanKind::kFilter:
      return std::unique_ptr<Executor>(
          new FilterExec(plan, std::move(children[0]), ctx));
    case PlanKind::kProject:
      return std::unique_ptr<Executor>(
          new ProjectExec(plan, std::move(children[0]), ctx));
    case PlanKind::kNestedLoopJoin:
      return std::unique_ptr<Executor>(new NestedLoopJoinExec(
          plan, std::move(children[0]), std::move(children[1]), ctx));
    case PlanKind::kHashJoin:
      return std::unique_ptr<Executor>(new HashJoinExec(
          plan, std::move(children[0]), std::move(children[1]), ctx));
    case PlanKind::kMergeJoin:
      return std::unique_ptr<Executor>(new MergeJoinExec(
          plan, std::move(children[0]), std::move(children[1]), ctx));
    case PlanKind::kSort:
      return std::unique_ptr<Executor>(
          new SortExec(plan, std::move(children[0]), ctx));
    case PlanKind::kHashAggregate:
      // The partial/merge split of a dop>1 aggregation exists only for the
      // staged engine's partition packets; the volcano engine always plans
      // at max_dop=1 (see DatabaseOptions), so seeing one here is a wiring
      // bug, not a user error.
      if (plan->agg_mode != optimizer::AggMode::kComplete) {
        return Status::Internal(
            "partial/merge aggregation requires the staged engine");
      }
      return std::unique_ptr<Executor>(
          new HashAggExec(plan, std::move(children[0]), ctx));
    case PlanKind::kLimit:
      return std::unique_ptr<Executor>(
          new LimitExec(plan, std::move(children[0]), ctx));
    case PlanKind::kValues:
      return std::unique_ptr<Executor>(new ValuesExec(plan, ctx));
    case PlanKind::kInsert:
      return std::unique_ptr<Executor>(
          new InsertExec(plan, std::move(children[0]), ctx));
    case PlanKind::kDelete:
      return std::unique_ptr<Executor>(new DeleteExec(plan, ctx));
    case PlanKind::kUpdate:
      return std::unique_ptr<Executor>(new UpdateExec(plan, ctx));
  }
  return Status::Internal("unknown plan kind");
}

StatusOr<std::vector<Tuple>> ExecutePlan(const PhysicalPlan* plan,
                                         ExecContext* ctx) {
  auto exec = CreateExecutor(plan, ctx);
  if (!exec.ok()) return exec.status();
  STAGEDB_RETURN_IF_ERROR((*exec)->Init());
  std::vector<Tuple> out;
  Tuple t;
  while (true) {
    auto more = (*exec)->Next(&t);
    if (!more.ok()) return more.status();
    if (!*more) break;
    out.push_back(t);
  }
  return out;
}

}  // namespace stagedb::exec
