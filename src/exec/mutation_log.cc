#include "exec/executor.h"

namespace stagedb::exec {

Status MutationLog::Rollback(catalog::Catalog* catalog) {
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    switch (it->op) {
      case MutationRecord::Op::kInsert: {
        Status s = catalog->DeleteTuple(it->table, it->rid);
        // The row may already be gone if a later statement in the same
        // transaction deleted it; that undo already ran.
        if (!s.ok() && !s.IsNotFound()) return s;
        break;
      }
      case MutationRecord::Op::kDelete: {
        auto rid = catalog->InsertTuple(it->table, it->tuple);
        if (!rid.ok()) return rid.status();
        break;
      }
    }
  }
  records_.clear();
  return Status::OK();
}

}  // namespace stagedb::exec
