#include <map>
#include <utility>

#include "exec/executor.h"

namespace stagedb::exec {

Status MutationLog::Rollback(catalog::Catalog* catalog) {
  // Undoing a delete re-inserts the tuple, usually at a different rid than
  // the one the log recorded. Earlier records of the same transaction may
  // still reference the original rid (insert-then-delete of the same row,
  // or an update whose delete half was undone first), so track where each
  // undone delete actually landed and resolve through that map. Keyed per
  // table because rids are only unique within a heap file.
  std::map<std::pair<catalog::TableInfo*, storage::Rid>, storage::Rid> moved;
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    switch (it->op) {
      case MutationRecord::Op::kInsert: {
        storage::Rid target = it->rid;
        auto remap = moved.find({it->table, it->rid});
        if (remap != moved.end()) {
          target = remap->second;
          moved.erase(remap);
        }
        Status s = catalog->DeleteTuple(it->table, target);
        // The row may already be gone if a later statement in the same
        // transaction deleted it; that undo already ran.
        if (!s.ok() && !s.IsNotFound()) return s;
        break;
      }
      case MutationRecord::Op::kDelete: {
        auto rid = catalog->InsertTuple(it->table, it->tuple);
        if (!rid.ok()) return rid.status();
        moved[{it->table, it->rid}] = *rid;
        break;
      }
    }
  }
  records_.clear();
  return Status::OK();
}

}  // namespace stagedb::exec
