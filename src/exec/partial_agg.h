// Mergeable partial-aggregation state (§4.3 intra-operator parallelism).
//
// A kPartial kHashAggregate packet aggregates its hash partition of the
// input and emits, per group, the group key columns followed by each
// aggregate's partial state; the kMerge packet folds those state columns
// back into AggAccumulators and finalizes with the usual AggFinalize. The
// column layout per aggregate is defined by optimizer::PartialStateTypes —
// one column for COUNT/SUM/MIN/MAX, two (sum, non-NULL count) for AVG, whose
// division must happen only after every partition's sums are combined.
#ifndef STAGEDB_EXEC_PARTIAL_AGG_H_
#define STAGEDB_EXEC_PARTIAL_AGG_H_

#include "exec/row_utils.h"

namespace stagedb::exec {

/// Number of columns the partial state of `spec` occupies in a partial row.
inline size_t PartialStateWidth(const optimizer::AggSpec& spec) {
  return optimizer::PartialStateTypes(spec).size();
}

/// Appends the partial (mergeable) state of `acc` to `row`.
inline void AppendPartialState(const optimizer::AggSpec& spec,
                               const AggAccumulator& acc,
                               catalog::Tuple* row) {
  using catalog::Value;
  using parser::AggFunc;
  switch (spec.func) {
    case AggFunc::kCount:
      row->push_back(Value::Int(acc.count));
      return;
    case AggFunc::kSum:
      row->push_back(acc.any ? Value::Double(acc.sum) : Value::Null());
      return;
    case AggFunc::kAvg:
      row->push_back(acc.any ? Value::Double(acc.sum) : Value::Null());
      row->push_back(Value::Int(acc.count));
      return;
    case AggFunc::kMin:
      row->push_back(acc.min);
      return;
    case AggFunc::kMax:
      row->push_back(acc.max);
      return;
  }
}

/// Folds the partial state of `spec` starting at (*col) of `row` into `acc`,
/// advancing *col past the consumed state columns. The merged accumulator
/// finalizes through the regular AggFinalize.
inline Status MergePartialState(const optimizer::AggSpec& spec,
                                const catalog::Tuple& row, size_t* col,
                                AggAccumulator* acc) {
  using catalog::Value;
  using parser::AggFunc;
  const size_t width = PartialStateWidth(spec);
  if (*col + width > row.size()) {
    return Status::Internal("partial aggregation row too narrow");
  }
  const Value& v = row[*col];
  switch (spec.func) {
    case AggFunc::kCount:
      acc->count += v.int_value();
      acc->any = acc->any || v.int_value() > 0;
      break;
    case AggFunc::kSum:
      if (!v.is_null()) {
        acc->any = true;
        acc->sum += v.AsDouble();
      }
      break;
    case AggFunc::kAvg: {
      const Value& count = row[*col + 1];
      if (!v.is_null()) acc->sum += v.AsDouble();
      acc->count += count.int_value();
      acc->any = acc->any || count.int_value() > 0;
      break;
    }
    case AggFunc::kMin:
      if (!v.is_null() && (acc->min.is_null() || v.Compare(acc->min) < 0)) {
        acc->min = v;
        acc->any = true;
      }
      break;
    case AggFunc::kMax:
      if (!v.is_null() && (acc->max.is_null() || v.Compare(acc->max) > 0)) {
        acc->max = v;
        acc->any = true;
      }
      break;
  }
  *col += width;
  return Status::OK();
}

}  // namespace stagedb::exec

#endif  // STAGEDB_EXEC_PARTIAL_AGG_H_
