// Row-processing helpers shared by the volcano and staged engines: composite
// keys for hashing, and aggregate accumulators.
#ifndef STAGEDB_EXEC_ROW_UTILS_H_
#define STAGEDB_EXEC_ROW_UTILS_H_

#include <vector>

#include "catalog/tuple.h"
#include "common/status.h"
#include "optimizer/plan.h"

namespace stagedb::exec {

/// A composite key of values (join/group keys).
struct RowKey {
  std::vector<catalog::Value> values;
  bool operator==(const RowKey& o) const {
    if (values.size() != o.values.size()) return false;
    for (size_t i = 0; i < values.size(); ++i) {
      if (values[i].Compare(o.values[i]) != 0) return false;
    }
    return true;
  }
  bool HasNull() const {
    for (const catalog::Value& v : values) {
      if (v.is_null()) return true;
    }
    return false;
  }
};

struct RowKeyHash {
  size_t operator()(const RowKey& k) const {
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (const catalog::Value& v : k.values) {
      h ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }
};

/// Extracts the key columns of a tuple.
inline StatusOr<RowKey> RowKeyFromColumns(const catalog::Tuple& tuple,
                                          const std::vector<size_t>& columns) {
  RowKey key;
  key.values.reserve(columns.size());
  for (size_t c : columns) {
    if (c >= tuple.size()) return Status::Internal("key column out of range");
    key.values.push_back(tuple[c]);
  }
  return key;
}

/// Streaming accumulator for one aggregate function within one group.
struct AggAccumulator {
  int64_t count = 0;
  double sum = 0;
  catalog::Value min, max;
  bool any = false;
};

/// Folds one input value into an accumulator (v already non-NULL unless
/// COUNT(*), which passes Int(1)).
inline void AggAccumulate(AggAccumulator* acc, const optimizer::AggSpec& spec,
                          const catalog::Value& v) {
  using parser::AggFunc;
  acc->any = true;
  ++acc->count;
  if (spec.func == AggFunc::kSum || spec.func == AggFunc::kAvg) {
    acc->sum += v.AsDouble();
  }
  if (spec.func == AggFunc::kMin &&
      (acc->min.is_null() || v.Compare(acc->min) < 0)) {
    acc->min = v;
  }
  if (spec.func == AggFunc::kMax &&
      (acc->max.is_null() || v.Compare(acc->max) > 0)) {
    acc->max = v;
  }
}

/// Produces the final aggregate value.
inline catalog::Value AggFinalize(const optimizer::AggSpec& spec,
                                  const AggAccumulator& acc) {
  using catalog::TypeId;
  using catalog::Value;
  using parser::AggFunc;
  switch (spec.func) {
    case AggFunc::kCount:
      return Value::Int(acc.count);
    case AggFunc::kSum:
      if (!acc.any) return Value::Null();
      return spec.result_type == TypeId::kInt64
                 ? Value::Int(static_cast<int64_t>(acc.sum))
                 : Value::Double(acc.sum);
    case AggFunc::kAvg:
      return acc.any ? Value::Double(acc.sum / acc.count) : Value::Null();
    case AggFunc::kMin:
      return acc.min;
    case AggFunc::kMax:
      return acc.max;
  }
  return Value::Null();
}

}  // namespace stagedb::exec

#endif  // STAGEDB_EXEC_ROW_UTILS_H_
