#include "frontend/normalizer.h"

#include "common/string_util.h"
#include "parser/lexer.h"

namespace stagedb::frontend {

using catalog::TypeId;
using catalog::Value;
using parser::Token;
using parser::TokenType;

namespace {

const char* PunctText(TokenType t) {
  switch (t) {
    case TokenType::kComma:
      return ",";
    case TokenType::kLParen:
      return "(";
    case TokenType::kRParen:
      return ")";
    case TokenType::kSemicolon:
      return ";";
    case TokenType::kDot:
      return ".";
    case TokenType::kStar:
      return "*";
    case TokenType::kPlus:
      return "+";
    case TokenType::kMinus:
      return "-";
    case TokenType::kSlash:
      return "/";
    case TokenType::kPercent:
      return "%";
    case TokenType::kEq:
      return "=";
    case TokenType::kNeq:
      return "<>";
    case TokenType::kLt:
      return "<";
    case TokenType::kLe:
      return "<=";
    case TokenType::kGt:
      return ">";
    case TokenType::kGe:
      return ">=";
    default:
      return "";
  }
}

void AppendToken(const Token& tok, std::string* out) {
  if (!out->empty()) out->push_back(' ');
  switch (tok.type) {
    case TokenType::kKeyword:
      *out += tok.text;  // already upper-cased
      return;
    case TokenType::kIdentifier:
      if (tok.quoted) {
        // Quoted identifiers keep case; re-quote so "SELECT" the identifier
        // can never collide with SELECT the keyword in the key.
        out->push_back('"');
        for (char c : tok.text) {
          if (c == '"') out->push_back('"');
          out->push_back(c);
        }
        out->push_back('"');
      } else {
        *out += tok.text;  // already lower-cased by the lexer
      }
      return;
    case TokenType::kParam:
      out->push_back('?');
      return;
    case TokenType::kIntLiteral:
      *out += StrFormat("%lld", static_cast<long long>(tok.int_value));
      return;
    case TokenType::kDoubleLiteral:
      *out += StrFormat("%.17g", tok.double_value);
      return;
    case TokenType::kStringLiteral: {
      // Only reachable in user-placeholder mode (auto mode extracts these);
      // string literals keep their bytes — case included — exactly.
      out->push_back('\'');
      for (char c : tok.text) {
        if (c == '\'') out->push_back('\'');
        out->push_back(c);
      }
      out->push_back('\'');
      return;
    }
    default:
      *out += PunctText(tok.type);
      return;
  }
}

}  // namespace

StatusOr<NormalizedStatement> Normalize(const std::string& sql) {
  parser::Lexer lexer(sql);
  auto tokens_or = lexer.Tokenize();
  if (!tokens_or.ok()) return tokens_or.status();
  std::vector<Token> tokens = std::move(*tokens_or);

  NormalizedStatement norm;
  const Token& first = tokens.front();
  norm.cacheable = first.type == TokenType::kKeyword &&
                   (first.text == "SELECT" || first.text == "INSERT" ||
                    first.text == "UPDATE" || first.text == "DELETE");
  if (!norm.cacheable) return norm;

  bool has_user_params = false;
  for (const Token& tok : tokens) {
    if (tok.type == TokenType::kParam) has_user_params = true;
  }
  norm.auto_params = !has_user_params;

  if (norm.auto_params) {
    // Rewrite literals to placeholders, extracting their values.
    bool after_limit = false;
    for (Token& tok : tokens) {
      if (tok.type == TokenType::kKeyword) {
        after_limit = tok.text == "LIMIT";
        continue;
      }
      const bool limit_literal =
          after_limit && tok.type == TokenType::kIntLiteral;
      after_limit = false;
      Value value;
      switch (tok.type) {
        case TokenType::kIntLiteral:
          // The LIMIT count is folded into the plan shape; keep it in the
          // key so different limits get different cache entries.
          if (limit_literal) continue;
          value = Value::Int(tok.int_value);
          break;
        case TokenType::kDoubleLiteral:
          value = Value::Double(tok.double_value);
          break;
        case TokenType::kStringLiteral:
          value = Value::Varchar(std::move(tok.text));
          break;
        default:
          continue;
      }
      tok = Token{};
      tok.type = TokenType::kParam;
      tok.int_value = static_cast<int64_t>(norm.params.size());
      norm.param_types.push_back(value.type());
      norm.params.push_back(std::move(value));
    }
    norm.num_params = norm.params.size();
  } else {
    for (const Token& tok : tokens) {
      if (tok.type == TokenType::kParam) ++norm.num_params;
    }
    norm.param_types.assign(norm.num_params, TypeId::kNull);
  }

  for (const Token& tok : tokens) {
    if (tok.type == TokenType::kEof) break;
    if (tok.type == TokenType::kSemicolon) continue;  // trailing ';'
    AppendToken(tok, &norm.key);
  }
  norm.tokens = std::move(tokens);
  return norm;
}

}  // namespace stagedb::frontend
