// SQL normalization for cross-query work reuse (§2/§5 of the paper: the
// parse and optimize stages serve repeated or parameterized statements from
// memoized results instead of redoing the work per query).
//
// The normalizer rewrites constant literals in a statement to '?' parameter
// placeholders and renders the rewritten token stream as a canonical string:
// keywords upper-cased, unquoted identifiers lower-cased, whitespace and
// comments collapsed. Two statements that differ only in literal values (or
// in spacing/case) therefore share one cache key — and one cached plan.
#ifndef STAGEDB_FRONTEND_NORMALIZER_H_
#define STAGEDB_FRONTEND_NORMALIZER_H_

#include <string>
#include <vector>

#include "catalog/types.h"
#include "catalog/value.h"
#include "common/status.h"
#include "parser/token.h"

namespace stagedb::frontend {

/// The outcome of normalizing one SQL statement.
struct NormalizedStatement {
  /// Only SELECT / INSERT / UPDATE / DELETE statements are cacheable; DDL
  /// and transaction control always take the direct path (and bump the
  /// catalog epoch, invalidating cached plans, rather than populating it).
  bool cacheable = false;

  /// True when the normalizer extracted the parameters itself (the statement
  /// held no user-written '?'): `params` then carries the literal values in
  /// placeholder order. When the user wrote explicit '?' placeholders the
  /// statement is left untouched (literals stay literal, `params` is empty)
  /// and the caller supplies values at execution time.
  bool auto_params = true;

  /// Canonical cache key (normalized SQL with '?' placeholders).
  std::string key;

  /// Total number of '?' placeholders in `tokens`.
  size_t num_params = 0;

  /// Extracted literal values, indexed by placeholder ordinal (auto mode).
  std::vector<catalog::Value> params;

  /// Normalized type of each placeholder (kNull when unknown — explicit
  /// user placeholders). Passed to Planner::Plan for template binding.
  std::vector<catalog::TypeId> param_types;

  /// The rewritten token stream (ends with kEof); parsing this instead of
  /// re-lexing `key` is what a cache miss pays for template planning.
  std::vector<parser::Token> tokens;
};

/// Normalizes one SQL statement. Fails only when lexing fails (the caller
/// falls back to the regular parse path, which reports the same error).
///
/// Normalization rules (see docs/DESIGN.md):
///  * int / double / string literals become '?' placeholders, recording
///    their value and type;
///  * the literal after LIMIT stays a literal (it is folded into the plan
///    shape, so parameterizing it would let plans with different limits
///    collide on one cache entry);
///  * TRUE / FALSE / NULL are keywords and stay as written;
///  * statements that already contain '?' are never auto-parameterized.
StatusOr<NormalizedStatement> Normalize(const std::string& sql);

}  // namespace stagedb::frontend

#endif  // STAGEDB_FRONTEND_NORMALIZER_H_
