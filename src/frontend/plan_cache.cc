#include "frontend/plan_cache.h"

#include <algorithm>
#include <functional>

#include "common/string_util.h"
#include "optimizer/bound_expr.h"

namespace stagedb::frontend {

using catalog::TypeId;
using catalog::Value;
using optimizer::BoundExpr;
using optimizer::PhysicalPlan;

// ---------------------------------------------------------------- PlanCache --

PlanCache::PlanCache(size_t capacity, size_t shards)
    : capacity_(std::max<size_t>(1, capacity)),
      shard_capacity_(std::max<size_t>(
          1, capacity_ / std::max<size_t>(1, std::min(shards, capacity_)))) {
  const size_t n = std::max<size_t>(1, std::min(shards, capacity_));
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

PlanCache::Shard& PlanCache::ShardFor(const std::string& key) {
  return *shards_[std::hash<std::string>()(key) % shards_.size()];
}

std::shared_ptr<const CachedPlan> PlanCache::Lookup(const std::string& key,
                                                    uint64_t epoch) {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  if (it->second->second->epoch != epoch) {
    // Planned under a different catalog epoch: the tables/indexes it binds
    // may no longer exist. Evict; the caller replans under the new epoch.
    shard.lru.erase(it->second);
    shard.index.erase(it);
    invalidations_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  // Touch: move to the MRU position.
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->second;
}

void PlanCache::Insert(const std::string& key,
                       std::shared_ptr<const CachedPlan> entry) {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Replace in place (e.g. a replan after invalidation).
    it->second->second = std::move(entry);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  } else {
    if (shard.lru.size() >= shard_capacity_) {
      shard.index.erase(shard.lru.back().first);
      shard.lru.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    shard.lru.emplace_front(key, std::move(entry));
    shard.index[key] = shard.lru.begin();
  }
  insertions_.fetch_add(1, std::memory_order_relaxed);
}

void PlanCache::Clear() {
  for (auto& shard : shards_) {
    MutexLock lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
}

PlanCacheStats PlanCache::Stats() const {
  PlanCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.invalidations = invalidations_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.insertions = insertions_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    stats.entries += shard->lru.size();
  }
  return stats;
}

// ---------------------------------------------------------- instantiation ---

namespace {

/// Replaces every kParam node in `expr` with the literal parameter value.
Status SubstituteParams(BoundExpr* expr, const std::vector<Value>& params) {
  if (expr == nullptr) return Status::OK();
  if (expr->kind == BoundExpr::Kind::kParam) {
    if (expr->column >= params.size()) {
      return Status::InvalidArgument(
          StrFormat("statement needs %zu parameter(s), got %zu",
                    expr->column + 1, params.size()));
    }
    const Value& v = params[expr->column];
    expr->kind = BoundExpr::Kind::kLiteral;
    expr->literal = v;
    expr->type = v.type();
    return Status::OK();
  }
  STAGEDB_RETURN_IF_ERROR(SubstituteParams(expr->left.get(), params));
  return SubstituteParams(expr->right.get(), params);
}

/// Resolves one parameterized index bound: params[param] + adjust, saturated
/// at the int64 range so `col > INT64_MAX` yields an empty range instead of
/// wrapping around.
StatusOr<int64_t> ResolveBound(const std::vector<Value>& params, int param,
                               int adjust) {
  if (static_cast<size_t>(param) >= params.size()) {
    return Status::InvalidArgument(
        StrFormat("statement needs %d parameter(s), got %zu", param + 1,
                  params.size()));
  }
  const Value& v = params[param];
  if (v.type() != TypeId::kInt64) {
    return Status::InvalidArgument(
        StrFormat("parameter ?%d drives an index range and must be INTEGER "
                  "(got %s)",
                  param, catalog::TypeName(v.type())));
  }
  int64_t bound;
  if (__builtin_add_overflow(v.int_value(), static_cast<int64_t>(adjust),
                             &bound)) {
    bound = adjust > 0 ? INT64_MAX : INT64_MIN;
  }
  return bound;
}

Status InstantiateNode(PhysicalPlan* plan, const std::vector<Value>& params) {
  if (plan->index_lo_param >= 0) {
    auto bound = ResolveBound(params, plan->index_lo_param,
                              plan->index_lo_adjust);
    if (!bound.ok()) return bound.status();
    plan->index_lo = std::max(plan->index_lo, *bound);
    plan->index_lo_param = -1;
    plan->index_lo_adjust = 0;
  }
  if (plan->index_hi_param >= 0) {
    auto bound = ResolveBound(params, plan->index_hi_param,
                              plan->index_hi_adjust);
    if (!bound.ok()) return bound.status();
    plan->index_hi = std::min(plan->index_hi, *bound);
    plan->index_hi_param = -1;
    plan->index_hi_adjust = 0;
  }
  STAGEDB_RETURN_IF_ERROR(SubstituteParams(plan->predicate.get(), params));
  for (auto& e : plan->exprs) {
    STAGEDB_RETURN_IF_ERROR(SubstituteParams(e.get(), params));
  }
  for (auto& k : plan->sort_keys) {
    STAGEDB_RETURN_IF_ERROR(SubstituteParams(k.expr.get(), params));
  }
  for (auto& a : plan->aggregates) {
    STAGEDB_RETURN_IF_ERROR(SubstituteParams(a.arg.get(), params));
  }
  if (!plan->row_exprs.empty()) {
    // Fold parameterized VALUES rows, replicating the literal-INSERT path:
    // numeric widening into DOUBLE columns, then the compatibility check.
    const catalog::Schema& schema = plan->schema;
    for (auto& row : plan->row_exprs) {
      catalog::Tuple tuple;
      tuple.reserve(row.size());
      for (size_t i = 0; i < row.size(); ++i) {
        STAGEDB_RETURN_IF_ERROR(SubstituteParams(row[i].get(), params));
        auto v = Eval(*row[i], {});
        if (!v.ok()) return v.status();
        Value value = *v;
        if (schema.column(i).type == TypeId::kDouble &&
            value.type() == TypeId::kInt64) {
          value = Value::Double(static_cast<double>(value.int_value()));
        }
        if (!catalog::TypesCompatible(value.type(), schema.column(i).type)) {
          return Status::InvalidArgument(
              StrFormat("value %zu has wrong type for column '%s'", i + 1,
                        schema.column(i).name.c_str()));
        }
        tuple.push_back(std::move(value));
      }
      plan->rows.push_back(std::move(tuple));
    }
    plan->row_exprs.clear();
  }
  for (auto& child : plan->children) {
    STAGEDB_RETURN_IF_ERROR(InstantiateNode(child.get(), params));
  }
  return Status::OK();
}

}  // namespace

StatusOr<std::unique_ptr<PhysicalPlan>> InstantiatePlan(
    const PhysicalPlan& tmpl, const std::vector<Value>& params) {
  std::unique_ptr<PhysicalPlan> plan = tmpl.Clone();
  STAGEDB_RETURN_IF_ERROR(InstantiateNode(plan.get(), params));
  return plan;
}

}  // namespace stagedb::frontend
