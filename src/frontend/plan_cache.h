// The versioned front-end plan cache: normalized SQL -> bound physical plan
// template, with LRU eviction, sharding, and catalog-epoch invalidation.
//
// This is the paper's cross-query work reuse at the parse and optimize
// stages (§2, §5): a hit serves a repeated or parameterized statement from
// the memoized plan, skipping both stages, so the packet routes straight to
// execution (Figure 3's precompiled-query bypass edge).
//
// Safety: every entry records the catalog epoch it was planned under
// (catalog::Catalog::version()). DDL bumps the epoch, so a lookup that finds
// an entry from an older epoch treats it as stale — the entry is evicted and
// the statement replanned — rather than executing a plan whose table/index
// pointers may reference dropped objects. Entries are handed out as
// shared_ptr-to-const so an invalidation never frees a template another
// thread is still instantiating.
#ifndef STAGEDB_FRONTEND_PLAN_CACHE_H_
#define STAGEDB_FRONTEND_PLAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/types.h"
#include "catalog/value.h"
#include "common/mutex.h"
#include "common/status.h"
#include "optimizer/plan.h"

namespace stagedb::frontend {

/// One cached entry: an immutable plan template plus its parameter shape.
struct CachedPlan {
  /// The bound template. May contain kParam placeholders; execution always
  /// goes through InstantiatePlan (a zero-parameter template instantiates to
  /// a plain clone).
  std::unique_ptr<const optimizer::PhysicalPlan> plan;
  size_t num_params = 0;
  std::vector<catalog::TypeId> param_types;
  /// Catalog epoch the template was planned under.
  uint64_t epoch = 0;
};

/// Counters surfaced through Database::EngineStats() / CacheStats().
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;          // key absent (includes first-ever lookups)
  uint64_t invalidations = 0;   // stale-epoch entries evicted on lookup
  uint64_t evictions = 0;       // LRU capacity evictions
  uint64_t insertions = 0;
  uint64_t entries = 0;         // current live entries across all shards
  double HitRate() const {
    const uint64_t total = hits + misses + invalidations;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// A bounded, sharded LRU cache. Thread-safe; one mutex per shard keeps the
/// parse-stage lookups of concurrent clients from serializing on one lock.
class PlanCache {
 public:
  /// `capacity` is the total entry budget, split evenly across `shards`
  /// (each shard holds at least one entry).
  explicit PlanCache(size_t capacity = 128, size_t shards = 8);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the entry for `key` if present and planned under `epoch`.
  /// A present-but-stale entry is evicted (counted as an invalidation) and
  /// nullptr returned so the caller replans.
  std::shared_ptr<const CachedPlan> Lookup(const std::string& key,
                                           uint64_t epoch);

  /// Inserts (or replaces) the entry for `key`, evicting the shard's least
  /// recently used entry when at capacity.
  void Insert(const std::string& key, std::shared_ptr<const CachedPlan> entry);

  /// Drops every entry (stats counters keep accumulating).
  void Clear();

  PlanCacheStats Stats() const;
  size_t capacity() const { return capacity_; }

 private:
  struct Shard {
    Mutex mu;
    /// Most recently used at the front.
    std::list<std::pair<std::string, std::shared_ptr<const CachedPlan>>> lru
        GUARDED_BY(mu);
    std::unordered_map<
        std::string,
        std::list<std::pair<std::string,
                            std::shared_ptr<const CachedPlan>>>::iterator>
        index GUARDED_BY(mu);
  };

  Shard& ShardFor(const std::string& key);

  const size_t capacity_;
  const size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> invalidations_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> insertions_{0};
};

/// Binds a plan template to concrete parameter values: deep-clones the
/// template, replaces every kParam expression node with a literal, resolves
/// parameterized index-scan bounds (saturating at the INT64 range ends), and
/// folds parameterized VALUES rows into literal tuples — applying the same
/// numeric widening and type checks the planner applies to literal INSERTs.
/// The result contains no parameters and is what the engines execute.
StatusOr<std::unique_ptr<optimizer::PhysicalPlan>> InstantiatePlan(
    const optimizer::PhysicalPlan& tmpl,
    const std::vector<catalog::Value>& params);

}  // namespace stagedb::frontend

#endif  // STAGEDB_FRONTEND_PLAN_CACHE_H_
