#include "net/client.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <cerrno>
#include <cstring>

#include "common/string_util.h"

namespace stagedb::net {

StatusOr<std::unique_ptr<Client>> Client::Connect(const std::string& host,
                                                  int port,
                                                  int64_t timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::IOError("socket() failed");
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument(StrFormat("bad host %s", host.c_str()));
  }
  // Bounded connect: non-blocking connect + poll, then back to blocking.
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno == EINPROGRESS) {
    struct pollfd pfd = {fd, POLLOUT, 0};
    rc = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    if (rc <= 0) {
      ::close(fd);
      return Status::TimedOut(
          StrFormat("connect to %s:%d timed out", host.c_str(), port));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      ::close(fd);
      return Status::IOError(StrFormat("connect to %s:%d failed: %s",
                                       host.c_str(), port,
                                       std::strerror(err)));
    }
  } else if (rc != 0) {
    ::close(fd);
    return Status::IOError(StrFormat("connect to %s:%d failed: %s",
                                     host.c_str(), port,
                                     std::strerror(errno)));
  }
  ::fcntl(fd, F_SETFL, flags);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<Client>(new Client(fd, timeout_ms));
}

Client::Client(int fd, int64_t timeout_ms) : fd_(fd), timeout_ms_(timeout_ms) {}

Client::~Client() { CloseNow(); }

void Client::CloseNow() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::SendRaw(const std::string& bytes) {
  if (fd_ < 0) return Status::IOError("client closed");
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::write(fd_, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(
          StrFormat("write failed: %s", std::strerror(errno)));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Client::SendFrame(FrameType type, const std::string& payload) {
  return SendRaw(EncodeFrame(type, payload));
}

Status Client::SendQuery(const std::string& sql) {
  return SendFrame(FrameType::kQuery, sql);
}

Status Client::SendExecute(uint64_t stmt_id,
                           const std::vector<catalog::Value>& params) {
  return SendFrame(FrameType::kExecute, EncodeExecutePayload(stmt_id, params));
}

StatusOr<WireResult> Client::ReadResponse(int64_t timeout_ms) {
  if (fd_ < 0) return Status::IOError("client closed");
  if (timeout_ms < 0) timeout_ms = timeout_ms_;
  while (true) {
    if (auto frame = reader_.Next()) {
      switch (frame->type) {
        case FrameType::kResult:
          return DecodeResultPayload(frame->payload);
        case FrameType::kError:
          return DecodeErrorPayload(frame->payload);
        default:
          return Status::Corruption("unexpected frame type from server");
      }
    }
    if (!reader_.error().ok()) return reader_.error();
    struct pollfd pfd = {fd_, POLLIN, 0};
    int rc = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    if (rc == 0) return Status::TimedOut("no response within timeout");
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("poll failed");
    }
    char buf[16384];
    ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n == 0) return Status::IOError("server closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(
          StrFormat("read failed: %s", std::strerror(errno)));
    }
    reader_.Feed(buf, static_cast<size_t>(n));
  }
}

StatusOr<server::QueryResult> Client::RoundTrip(FrameType type,
                                                const std::string& payload) {
  Status st = SendFrame(type, payload);
  if (!st.ok()) return st;
  auto resp = ReadResponse();
  if (!resp.ok()) return resp.status();
  if (resp->prepared)
    return Status::Corruption("expected rows, got a prepared handle");
  return std::move(resp->result);
}

StatusOr<server::QueryResult> Client::Query(const std::string& sql) {
  return RoundTrip(FrameType::kQuery, sql);
}

StatusOr<Client::Prepared> Client::Prepare(const std::string& sql) {
  Status st = SendFrame(FrameType::kPrepare, sql);
  if (!st.ok()) return st;
  auto resp = ReadResponse();
  if (!resp.ok()) return resp.status();
  if (!resp->prepared)
    return Status::Corruption("expected a prepared handle, got rows");
  return Prepared{resp->stmt_id, resp->num_params};
}

StatusOr<server::QueryResult> Client::Execute(
    uint64_t stmt_id, const std::vector<catalog::Value>& params) {
  return RoundTrip(FrameType::kExecute,
                   EncodeExecutePayload(stmt_id, params));
}

}  // namespace stagedb::net
