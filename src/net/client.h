// Tiny blocking client for the wire protocol — enough for tests, the load
// driver, and an interactive shell. One socket, one thread at a time;
// pipelining is explicit (SendQuery/SendExecute then ReadResponse, FIFO).
#ifndef STAGEDB_NET_CLIENT_H_
#define STAGEDB_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "catalog/value.h"
#include "common/status.h"
#include "net/wire.h"

namespace stagedb::net {

class Client {
 public:
  /// Connects with a bounded connect+response timeout (milliseconds).
  static StatusOr<std::unique_ptr<Client>> Connect(const std::string& host,
                                                   int port,
                                                   int64_t timeout_ms = 5000);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // -- one-shot request/response --
  StatusOr<server::QueryResult> Query(const std::string& sql);
  struct Prepared {
    uint64_t stmt_id = 0;
    uint32_t num_params = 0;
  };
  StatusOr<Prepared> Prepare(const std::string& sql);
  StatusOr<server::QueryResult> Execute(
      uint64_t stmt_id, const std::vector<catalog::Value>& params = {});

  // -- pipelined use: send N, then read N (responses arrive in order) --
  Status SendQuery(const std::string& sql);
  Status SendExecute(uint64_t stmt_id,
                     const std::vector<catalog::Value>& params = {});
  /// Next response frame: a result, or the error the server sent. Network
  /// failures surface as kIOError / kTimedOut, protocol ones as kCorruption.
  StatusOr<WireResult> ReadResponse(int64_t timeout_ms = -1);

  // -- chaos primitives for the fault-injection tests --
  /// Writes raw bytes (e.g. a torn frame prefix) straight to the socket.
  Status SendRaw(const std::string& bytes);
  /// Abandons the connection without reading pending responses.
  void CloseNow();
  int fd() const { return fd_; }

 private:
  Client(int fd, int64_t timeout_ms);
  Status SendFrame(FrameType type, const std::string& payload);
  StatusOr<server::QueryResult> RoundTrip(FrameType type,
                                          const std::string& payload);

  int fd_ = -1;
  int64_t timeout_ms_;
  FrameReader reader_;
};

}  // namespace stagedb::net

#endif  // STAGEDB_NET_CLIENT_H_
