#include "net/net_server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <arpa/inet.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/clock.h"
#include "common/string_util.h"

namespace stagedb::net {
namespace {

// epoll user-data tags below the connection-id space.
constexpr uint64_t kListenerTag = 0;
constexpr uint64_t kWakeTag = 1;

constexpr int kEpollWaitMs = 50;
constexpr int64_t kIdleScanPeriodMicros = 1000 * 1000;

int64_t NowMicros() { return RealClock::Instance()->NowMicros(); }

std::string ErrorFrame(const Status& status) {
  return EncodeFrame(FrameType::kError, EncodeErrorPayload(status));
}

}  // namespace

/// One response slot: responses are produced out of order (queries overtake
/// each other in the pipeline) but must leave the socket in request order, so
/// the read stage allocates a slot per request and the write side only ships
/// the longest ready prefix.
struct ResponseSlot {
  uint64_t id = 0;
  bool ready = false;
  std::string bytes;
};

/// A request parked by admission control until budget frees up.
struct PendingWork {
  uint64_t slot_id = 0;
  bool is_execute = false;
  std::string sql;  // QUERY
  std::shared_ptr<server::PreparedStatement> stmt;  // EXECUTE
  std::vector<catalog::Value> params;               // EXECUTE
};

/// Per-socket state — the "backpack" its read/write packets carry. Field
/// groups have distinct owners: the frame decoder and prepared-statement
/// table belong to the read stage alone (one ReadTask, never concurrent with
/// itself); output state is under out_mu; admission state is under the
/// server's adm_mu_.
class Connection {
 public:
  Connection(NetServer* server, int fd, uint64_t id)
      : server(server),
        fd(fd),
        id(id),
        reader(server->options_.max_frame_bytes),
        last_activity_micros(NowMicros()) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  NetServer* const server;
  const int fd;
  const uint64_t id;

  std::atomic<bool> closed{false};
  /// Soft close: an ERROR has been appended for a protocol violation; the
  /// write task closes the socket once the buffer drains.
  std::atomic<bool> closing{false};

  // Read-stage-only state.
  FrameReader reader;
  uint64_t next_stmt_id = 1;
  std::map<uint64_t, std::shared_ptr<server::PreparedStatement>> prepared;

  std::atomic<int64_t> last_activity_micros;

  Mutex out_mu;
  uint64_t next_slot_id GUARDED_BY(out_mu) = 1;
  std::deque<ResponseSlot> slots GUARDED_BY(out_mu);  // ids ascending
  OutputBuffer out GUARDED_BY(out_mu);
  bool want_write GUARDED_BY(out_mu) = false;  // EPOLLOUT armed

  /// Guards the task pointers so activation never races task retirement
  /// (OnRetired nulls the pointer under this lock before freeing the task).
  Mutex task_mu;
  engine::StageTask* read_task GUARDED_BY(task_mu) = nullptr;
  engine::StageTask* write_task GUARDED_BY(task_mu) = nullptr;

  // Admission state, guarded by NetServer::adm_mu_. The analysis cannot name
  // another object's member as a capability from here, so these stay
  // comment-guarded; every access site already holds adm_mu_.
  size_t adm_inflight = 0;
  std::deque<PendingWork> adm_pending;
  bool adm_in_rr = false;
};

namespace {

void TouchActivity(Connection* conn) {
  conn->last_activity_micros.store(NowMicros(), std::memory_order_relaxed);
}

}  // namespace

// ---------------------------------------------------------------------------
// Stage tasks
// ---------------------------------------------------------------------------

/// Owns epoll_wait. Runs forever (kYield) on its single-worker stage, mapping
/// readiness events to packet activations; retires when the server stops.
class PollTask : public engine::StageTask {
 public:
  explicit PollTask(NetServer* server) : server_(server) {}

  engine::RunOutcome Run() override {
    if (server_->shutdown_.load(std::memory_order_acquire))
      return engine::RunOutcome::kDone;
    struct epoll_event events[64];
    int n = ::epoll_wait(server_->epoll_fd_, events, 64, kEpollWaitMs);
    for (int i = 0; i < n; ++i) {
      uint64_t tag = events[i].data.u64;
      uint32_t ev = events[i].events;
      if (tag == kListenerTag) {
        server_->ActivateAccept();
      } else if (tag == kWakeTag) {
        uint64_t buf;
        while (::read(server_->wake_fd_, &buf, sizeof(buf)) > 0) {
        }
      } else {
        std::shared_ptr<Connection> conn = server_->FindConn(tag);
        if (conn == nullptr || conn->closed.load(std::memory_order_acquire))
          continue;
        if (ev & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP))
          server_->ActivateRead(conn.get());
        if (ev & EPOLLOUT) server_->ActivateWrite(conn.get());
      }
    }
    MaybeScanIdle();
    return engine::RunOutcome::kYield;
  }

  void OnRetired() override {
    {
      MutexLock lock(server_->tasks_mu_);
      server_->poll_task_ = nullptr;
    }
    server_->TaskRetired();
    delete this;
  }

 private:
  void MaybeScanIdle() {
    if (server_->options_.idle_timeout_ms <= 0) return;
    int64_t now = NowMicros();
    if (now - last_scan_micros_ < kIdleScanPeriodMicros) return;
    last_scan_micros_ = now;
    int64_t limit = server_->options_.idle_timeout_ms * 1000;
    std::vector<std::shared_ptr<Connection>> idle;
    {
      MutexLock lock(server_->conns_mu_);
      for (const auto& [id, conn] : server_->conns_) {
        if (now - conn->last_activity_micros.load(std::memory_order_relaxed) >
            limit)
          idle.push_back(conn);
      }
    }
    for (const auto& conn : idle) {
      // A quiet socket is not an idle connection while a request is still
      // outstanding (admission-queued, executing, or holding the in-order
      // slot FIFO): the client is legitimately waiting on us, not the other
      // way round. Slots drain to the output buffer on completion, so an
      // empty FIFO means nothing is owed to this client.
      {
        MutexLock lock(conn->out_mu);
        if (!conn->slots.empty()) continue;
      }
      server_->closed_idle_.fetch_add(1, std::memory_order_relaxed);
      server_->CloseConn(conn);
    }
  }

  NetServer* const server_;
  int64_t last_scan_micros_ = 0;
};

/// Drains accept4() whenever the poller reports listener readiness; parks
/// in between.
class AcceptTask : public engine::StageTask {
 public:
  explicit AcceptTask(NetServer* server) : server_(server) {}

  engine::RunOutcome Run() override {
    while (true) {
      if (server_->shutdown_.load(std::memory_order_acquire))
        return engine::RunOutcome::kDone;
      int fd = ::accept4(server_->listen_fd_, nullptr, nullptr,
                         SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        // EAGAIN, or a transient error (EMFILE, ECONNABORTED): park; the
        // level-triggered poller re-activates while the backlog is non-empty.
        return engine::RunOutcome::kBlocked;
      }
      server_->HandleAccepted(fd);
    }
  }

  void OnRetired() override {
    {
      MutexLock lock(server_->tasks_mu_);
      server_->accept_task_ = nullptr;
    }
    server_->TaskRetired();
    delete this;
  }

 private:
  NetServer* const server_;
};

/// Reads the socket into the frame decoder and routes complete frames;
/// parks on EAGAIN until the poller sees EPOLLIN.
class ReadTask : public engine::StageTask {
 public:
  ReadTask(NetServer* server, std::shared_ptr<Connection> conn)
      : server_(server), conn_(std::move(conn)) {}

  engine::RunOutcome Run() override {
    if (conn_->closed.load(std::memory_order_acquire) ||
        conn_->closing.load(std::memory_order_acquire))
      return engine::RunOutcome::kDone;
    // Bounded work per Run (the StageTask contract): a client blasting
    // pipelined frames keeps its socket readable indefinitely, and an
    // unbounded drain would pin this stage worker while every other
    // connection starves. Past the budget, yield to the back of the queue.
    constexpr size_t kReadBudgetBytes = 256 * 1024;
    size_t consumed = 0;
    char buf[16384];
    while (true) {
      ssize_t n = ::read(conn_->fd, buf, sizeof(buf));
      if (n > 0) {
        server_->bytes_in_.fetch_add(n, std::memory_order_relaxed);
        TouchActivity(conn_.get());
        conn_->reader.Feed(buf, static_cast<size_t>(n));
        while (auto frame = conn_->reader.Next()) {
          Status st = server_->HandleFrame(conn_, std::move(*frame));
          if (!st.ok()) return ProtocolError(st);
        }
        if (!conn_->reader.error().ok())
          return ProtocolError(conn_->reader.error());
        consumed += static_cast<size_t>(n);
        if (consumed >= kReadBudgetBytes) return engine::RunOutcome::kYield;
        continue;
      }
      if (n == 0) {  // peer closed
        server_->CloseConn(conn_);
        return engine::RunOutcome::kDone;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        return engine::RunOutcome::kBlocked;
      server_->CloseConn(conn_);
      return engine::RunOutcome::kDone;
    }
  }

  void OnRetired() override {
    {
      MutexLock lock(conn_->task_mu);
      conn_->read_task = nullptr;
    }
    server_->TaskRetired();
    delete this;
  }

 private:
  /// Sends ERROR, stops reading, and lets the write side close after the
  /// drain (so the client sees why it was cut off).
  engine::RunOutcome ProtocolError(const Status& status) {
    server_->protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    server_->error_responses_.fetch_add(1, std::memory_order_relaxed);
    conn_->closing.store(true, std::memory_order_release);
    {
      MutexLock lock(conn_->out_mu);
      conn_->out.Append(ErrorFrame(status));
    }
    server_->ActivateWrite(conn_.get());
    return engine::RunOutcome::kDone;
  }

  NetServer* const server_;
  std::shared_ptr<Connection> conn_;
};

/// Flushes the output buffer; arms EPOLLOUT on short writes and parks until
/// there is something to send.
class WriteTask : public engine::StageTask {
 public:
  WriteTask(NetServer* server, std::shared_ptr<Connection> conn)
      : server_(server), conn_(std::move(conn)) {}

  engine::RunOutcome Run() override {
    if (conn_->closed.load(std::memory_order_acquire))
      return engine::RunOutcome::kDone;
    bool close_now = false;
    bool io_error = false;
    {
      MutexLock lock(conn_->out_mu);
      size_t written = 0;
      OutputBuffer::FlushResult res = conn_->out.Flush(conn_->fd, &written);
      if (written > 0) {
        server_->bytes_out_.fetch_add(written, std::memory_order_relaxed);
        TouchActivity(conn_.get());
      }
      switch (res) {
        case OutputBuffer::FlushResult::kWouldBlock:
          if (!conn_->want_write) {
            conn_->want_write = true;
            server_->ArmEpollOut(conn_.get(), true);
          }
          return engine::RunOutcome::kBlocked;
        case OutputBuffer::FlushResult::kError:
          io_error = true;
          break;
        case OutputBuffer::FlushResult::kDrained:
          if (conn_->want_write) {
            conn_->want_write = false;
            server_->ArmEpollOut(conn_.get(), false);
          }
          close_now = conn_->closing.load(std::memory_order_acquire);
          break;
      }
    }
    if (io_error || close_now) {
      server_->CloseConn(conn_);
      return engine::RunOutcome::kDone;
    }
    return engine::RunOutcome::kBlocked;
  }

  bool CanMakeProgress() override {
    if (conn_->closed.load(std::memory_order_acquire)) return true;
    MutexLock lock(conn_->out_mu);
    return !conn_->out.empty();
  }

  void OnRetired() override {
    {
      MutexLock lock(conn_->task_mu);
      conn_->write_task = nullptr;
    }
    server_->TaskRetired();
    delete this;
  }

 private:
  NetServer* const server_;
  std::shared_ptr<Connection> conn_;
};

/// Runs deferred submissions into the SQL pipeline. Exists so completion
/// callbacks — which fire on engine worker threads — never re-enter engine
/// submission paths; they enqueue a closure here instead.
class DispatchTask : public engine::StageTask {
 public:
  explicit DispatchTask(NetServer* server) : server_(server) {}

  engine::RunOutcome Run() override {
    while (true) {
      std::function<void()> fn;
      {
        MutexLock lock(server_->defer_mu_);
        if (server_->deferred_.empty()) {
          if (server_->shutdown_.load(std::memory_order_acquire))
            return engine::RunOutcome::kDone;
          return engine::RunOutcome::kBlocked;
        }
        fn = std::move(server_->deferred_.front());
        server_->deferred_.pop_front();
      }
      fn();
    }
  }

  bool CanMakeProgress() override {
    if (server_->shutdown_.load(std::memory_order_acquire)) return true;
    MutexLock lock(server_->defer_mu_);
    return !server_->deferred_.empty();
  }

  void OnRetired() override {
    {
      MutexLock lock(server_->tasks_mu_);
      server_->dispatch_task_ = nullptr;
    }
    server_->TaskRetired();
    delete this;
  }

 private:
  NetServer* const server_;
};

// ---------------------------------------------------------------------------
// NetServer
// ---------------------------------------------------------------------------

NetServer::NetServer(server::Database* db, NetServerOptions options)
    : db_(db), options_(std::move(options)) {}

StatusOr<std::unique_ptr<NetServer>> NetServer::Start(
    server::Database* db, NetServerOptions options) {
  std::unique_ptr<NetServer> srv(new NetServer(db, std::move(options)));
  Status st = srv->Init();
  if (!st.ok()) return st;
  return srv;
}

Status NetServer::Init() {
  // The SQL pipeline must admit at least the network-side budget, otherwise
  // TrySubmit would shed work this layer already admitted.
  server::ServerOptions pipeline = options_.pipeline;
  if (pipeline.admission_capacity < options_.max_inflight_queries + 8)
    pipeline.admission_capacity = options_.max_inflight_queries + 8;
  pipeline_ = std::make_unique<server::StagedServer>(db_, pipeline);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return Status::IOError("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1)
    return Status::InvalidArgument(
        StrFormat("bad listen address %s", options_.host.c_str()));
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0)
    return Status::IOError(StrFormat("bind(%s:%d) failed: %s",
                                     options_.host.c_str(), options_.port,
                                     std::strerror(errno)));
  if (::listen(listen_fd_, options_.accept_backlog) != 0)
    return Status::IOError("listen() failed");
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                &addr_len);
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Status::IOError("epoll_create1() failed");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) return Status::IOError("eventfd() failed");

  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kWakeTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  poll_stage_ = runtime_.CreateStage("poll", 1);
  accept_stage_ = runtime_.CreateStage("accept", 1);
  read_stage_ = runtime_.CreateStage("read", options_.io_workers);
  write_stage_ = runtime_.CreateStage("write", options_.io_workers);
  dispatch_stage_ = runtime_.CreateStage("dispatch", 1);

  poll_task_ = new PollTask(this);
  accept_task_ = new AcceptTask(this);
  dispatch_task_ = new DispatchTask(this);
  live_tasks_ = 3;
  poll_stage_->Enqueue(poll_task_);
  accept_stage_->Enqueue(accept_task_);
  dispatch_stage_->Enqueue(dispatch_task_);
  return Status::OK();
}

NetServer::~NetServer() {
  Stop();
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void NetServer::ActivateAccept() {
  MutexLock lock(tasks_mu_);
  if (accept_task_ != nullptr) accept_stage_->Activate(accept_task_);
}

void NetServer::ActivateDispatch() {
  MutexLock lock(tasks_mu_);
  if (dispatch_task_ != nullptr) dispatch_stage_->Activate(dispatch_task_);
}

void NetServer::ActivateRead(Connection* conn) {
  MutexLock lock(conn->task_mu);
  if (conn->read_task != nullptr) read_stage_->Activate(conn->read_task);
}

void NetServer::ActivateWrite(Connection* conn) {
  MutexLock lock(conn->task_mu);
  if (conn->write_task != nullptr) write_stage_->Activate(conn->write_task);
}

void NetServer::ArmEpollOut(Connection* conn, bool want) {
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN | EPOLLRDHUP | (want ? EPOLLOUT : 0u);
  ev.data.u64 = conn->id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void NetServer::HandleAccepted(int fd) {
  accepted_.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<Connection> conn;
  {
    // Capacity and shutdown are checked under the same lock as the insert:
    // Stop() sets shutdown_ before CloseAllConns() takes conns_mu_, so a
    // racing accept either lands in the map before the teardown snapshot
    // (and is closed by it) or observes shutdown_ here and sheds. Without
    // this, a connection admitted in the gap would park its tasks forever
    // and Stop() would never see live_tasks_ reach zero.
    MutexLock lock(conns_mu_);
    if (conns_.size() < options_.max_connections &&
        !shutdown_.load(std::memory_order_acquire)) {
      uint64_t id = next_conn_id_++;
      conn = std::make_shared<Connection>(this, fd, id);
      conns_[id] = conn;
    }
  }
  if (conn == nullptr) {
    // Load-shed the connection itself: tell the client why, then close.
    // Best-effort single write — the socket buffer of a fresh connection
    // takes a frame this small.
    shed_connections_.fetch_add(1, std::memory_order_relaxed);
    error_responses_.fetch_add(1, std::memory_order_relaxed);
    std::string frame = ErrorFrame(
        Status::ResourceExhausted("overloaded: connection limit reached"));
    ssize_t ignored = ::write(fd, frame.data(), frame.size());
    (void)ignored;
    ::close(fd);
    return;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  auto* read_task = new ReadTask(this, conn);
  auto* write_task = new WriteTask(this, conn);
  {
    MutexLock lock(tasks_mu_);
    live_tasks_ += 2;
  }
  {
    // Publish the pointers and perform the first enqueue under one task_mu
    // hold. Published-but-not-yet-queued tasks are reachable through
    // ActivateRead/Write (a racing CloseConn, a completion), and an
    // activation in that window performs the task's first enqueue itself —
    // the task can then run, retire, and be freed before the Enqueue below
    // touches it. Activations take task_mu, so they serialize behind this
    // block and no-op on the already-queued task. Lock order (task_mu, then
    // the runtime mutex inside Enqueue) matches every activation path, and
    // OnRetired takes task_mu without the runtime mutex, so there is no
    // inversion.
    MutexLock lock(conn->task_mu);
    conn->read_task = read_task;
    conn->write_task = write_task;
    read_stage_->Enqueue(read_task);
    write_stage_->Enqueue(write_task);
  }

  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN | EPOLLRDHUP;
  ev.data.u64 = conn->id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
}

std::shared_ptr<Connection> NetServer::FindConn(uint64_t id) {
  MutexLock lock(conns_mu_);
  auto it = conns_.find(id);
  return it == conns_.end() ? nullptr : it->second;
}

void NetServer::CloseConn(const std::shared_ptr<Connection>& conn) {
  if (conn->closed.exchange(true, std::memory_order_acq_rel))
    return;  // someone else already closed it
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  // Close the transport but keep the fd alive until the Connection dies:
  // closing here would let the kernel recycle the number into a new
  // connection while this one's tasks are still in flight.
  ::shutdown(conn->fd, SHUT_RDWR);
  {
    MutexLock lock(conns_mu_);
    conns_.erase(conn->id);
  }
  // Wake both packets so they observe `closed`, return kDone, and retire.
  ActivateRead(conn.get());
  ActivateWrite(conn.get());
}

void NetServer::CloseAllConns() {
  std::vector<std::shared_ptr<Connection>> all;
  {
    MutexLock lock(conns_mu_);
    for (const auto& [id, conn] : conns_) all.push_back(conn);
  }
  for (const auto& conn : all) CloseConn(conn);
}

uint64_t NetServer::NewSlot(const std::shared_ptr<Connection>& conn) {
  MutexLock lock(conn->out_mu);
  uint64_t id = conn->next_slot_id++;
  conn->slots.push_back(ResponseSlot{id, false, {}});
  return id;
}

void NetServer::CompleteSlot(const std::shared_ptr<Connection>& conn,
                             uint64_t slot_id, std::string frame_bytes,
                             bool is_error) {
  if (is_error)
    error_responses_.fetch_add(1, std::memory_order_relaxed);
  else
    ok_responses_.fetch_add(1, std::memory_order_relaxed);
  bool overflow = false;
  {
    MutexLock lock(conn->out_mu);
    if (conn->closed.load(std::memory_order_acquire)) {
      late_results_dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    for (auto& slot : conn->slots) {
      if (slot.id == slot_id) {
        slot.ready = true;
        slot.bytes = std::move(frame_bytes);
        break;
      }
    }
    // Ship the longest ready prefix — in-order delivery under pipelining.
    while (!conn->slots.empty() && conn->slots.front().ready) {
      conn->out.Append(std::move(conn->slots.front().bytes));
      conn->slots.pop_front();
    }
    overflow = conn->out.bytes_queued() > options_.max_output_buffer_bytes;
  }
  if (overflow) {
    // The client is not reading its results (slow-loris by omission):
    // buffering without bound would let one socket hold server memory
    // hostage, so cut it loose.
    closed_overflow_.fetch_add(1, std::memory_order_relaxed);
    CloseConn(conn);
    return;
  }
  ActivateWrite(conn.get());
}

Status NetServer::HandleFrame(const std::shared_ptr<Connection>& conn,
                              Frame frame) {
  switch (frame.type) {
    case FrameType::kQuery: {
      queries_.fetch_add(1, std::memory_order_relaxed);
      uint64_t slot = NewSlot(conn);
      PendingWork work;
      work.slot_id = slot;
      work.is_execute = false;
      work.sql = std::move(frame.payload);
      OnRequest(conn, std::move(work));
      return Status::OK();
    }
    case FrameType::kPrepare: {
      prepares_.fetch_add(1, std::memory_order_relaxed);
      uint64_t slot = NewSlot(conn);
      // Prepare is parse + normalize only — cheap enough to run on the read
      // stage and answer immediately.
      auto stmt = db_->Prepare(frame.payload);
      if (!stmt.ok()) {
        CompleteSlot(conn, slot, ErrorFrame(stmt.status()), true);
        return Status::OK();
      }
      uint64_t stmt_id = conn->next_stmt_id++;
      conn->prepared[stmt_id] = *stmt;
      CompleteSlot(conn, slot,
                   EncodeFrame(FrameType::kResult,
                               EncodePreparedPayload(
                                   stmt_id, static_cast<uint32_t>(
                                                (*stmt)->num_params()))),
                   false);
      return Status::OK();
    }
    case FrameType::kExecute: {
      queries_.fetch_add(1, std::memory_order_relaxed);
      uint64_t slot = NewSlot(conn);
      auto req = DecodeExecutePayload(frame.payload);
      if (!req.ok()) {
        CompleteSlot(conn, slot, ErrorFrame(req.status()), true);
        return Status::OK();
      }
      auto it = conn->prepared.find(req->stmt_id);
      if (it == conn->prepared.end()) {
        CompleteSlot(conn, slot,
                     ErrorFrame(Status::NotFound(StrFormat(
                         "unknown prepared statement %llu",
                         static_cast<unsigned long long>(req->stmt_id)))),
                     true);
        return Status::OK();
      }
      PendingWork work;
      work.slot_id = slot;
      work.is_execute = true;
      work.stmt = it->second;
      work.params = std::move(req->params);
      OnRequest(conn, std::move(work));
      return Status::OK();
    }
    case FrameType::kResult:
    case FrameType::kError:
      return Status::Corruption("client sent a server-only frame type");
  }
  return Status::Corruption("unreachable frame type");
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

void NetServer::OnRequest(const std::shared_ptr<Connection>& conn,
                          PendingWork work) {
  enum class Verdict { kAdmit, kQueue, kShedOverload, kShedDraining };
  Verdict verdict;
  {
    MutexLock lock(adm_mu_);
    if (draining_) {
      verdict = Verdict::kShedDraining;
    } else if (conn->adm_inflight < options_.max_inflight_per_conn &&
               inflight_total_ < options_.max_inflight_queries &&
               conn->adm_pending.empty()) {
      ++inflight_total_;
      ++conn->adm_inflight;
      verdict = Verdict::kAdmit;
    } else if (conn->adm_pending.size() < options_.pending_per_conn) {
      conn->adm_pending.push_back(std::move(work));
      if (!conn->adm_in_rr) {
        conn->adm_in_rr = true;
        fair_rr_.push_back(conn);
      }
      verdict = Verdict::kQueue;
    } else {
      verdict = Verdict::kShedOverload;
    }
  }
  switch (verdict) {
    case Verdict::kAdmit:
      Defer(MakeDispatch(conn, std::move(work)));
      break;
    case Verdict::kQueue:
      break;
    case Verdict::kShedOverload:
      shed_queries_.fetch_add(1, std::memory_order_relaxed);
      CompleteSlot(conn, work.slot_id,
                   ErrorFrame(Status::ResourceExhausted(
                       "overloaded: query shed by admission control")),
                   true);
      break;
    case Verdict::kShedDraining:
      shed_queries_.fetch_add(1, std::memory_order_relaxed);
      CompleteSlot(conn, work.slot_id,
                   ErrorFrame(Status::Aborted("server shutting down")), true);
      break;
  }
}

void NetServer::OnQueryDone(const std::shared_ptr<Connection>& conn) {
  std::vector<std::function<void()>> runnable;
  {
    MutexLock lock(adm_mu_);
    if (inflight_total_ > 0) --inflight_total_;
    if (conn->adm_inflight > 0) --conn->adm_inflight;
    DispatchPendingLocked(&runnable);
  }
  adm_cv_.NotifyAll();
  for (auto& fn : runnable) Defer(std::move(fn));
}

void NetServer::DispatchPendingLocked(
    std::vector<std::function<void()>>* out) {
  size_t rounds = fair_rr_.size();
  while (rounds-- > 0 && !fair_rr_.empty() && !draining_ &&
         inflight_total_ < options_.max_inflight_queries) {
    std::shared_ptr<Connection> conn = fair_rr_.front();
    fair_rr_.pop_front();
    if (conn->closed.load(std::memory_order_acquire)) {
      late_results_dropped_.fetch_add(conn->adm_pending.size(),
                                      std::memory_order_relaxed);
      conn->adm_pending.clear();
      conn->adm_in_rr = false;
      continue;
    }
    if (conn->adm_pending.empty()) {
      conn->adm_in_rr = false;
      continue;
    }
    if (conn->adm_inflight >= options_.max_inflight_per_conn) {
      // Its own completions will pull from the queue; keep it rotating so a
      // capped connection doesn't block others.
      fair_rr_.push_back(conn);
      continue;
    }
    PendingWork work = std::move(conn->adm_pending.front());
    conn->adm_pending.pop_front();
    ++inflight_total_;
    ++conn->adm_inflight;
    out->push_back(MakeDispatch(conn, std::move(work)));
    if (conn->adm_pending.empty())
      conn->adm_in_rr = false;
    else
      fair_rr_.push_back(conn);
  }
}

void NetServer::Defer(std::function<void()> fn) {
  {
    MutexLock lock(defer_mu_);
    deferred_.push_back(std::move(fn));
  }
  ActivateDispatch();
}

void NetServer::FinishQuery(const std::shared_ptr<Connection>& conn,
                            uint64_t slot_id,
                            StatusOr<server::QueryResult> result) {
  if (result.ok()) {
    std::string payload = EncodeRowsPayload(*result);
    // A RESULT frame above max_frame_bytes would poison the peer's
    // FrameReader (it rejects oversized frames unread), leaving the session
    // unusable over a legitimate query. Answer with an ERROR the client can
    // parse instead of a RESULT it never could.
    if (payload.size() + 1 > options_.max_frame_bytes) {
      oversized_results_.fetch_add(1, std::memory_order_relaxed);
      CompleteSlot(conn, slot_id,
                   ErrorFrame(Status::InvalidArgument(StrFormat(
                       "result of %zu bytes exceeds the %zu-byte frame "
                       "limit; narrow the query or raise max_frame_bytes",
                       payload.size() + 1, options_.max_frame_bytes))),
                   true);
    } else {
      CompleteSlot(conn, slot_id, EncodeFrame(FrameType::kResult, payload),
                   false);
    }
  } else {
    if (result.status().code() == StatusCode::kResourceExhausted ||
        result.status().code() == StatusCode::kAborted)
      shed_queries_.fetch_add(1, std::memory_order_relaxed);
    CompleteSlot(conn, slot_id, ErrorFrame(result.status()), true);
  }
  OnQueryDone(conn);
}

std::function<void()> NetServer::MakeDispatch(
    const std::shared_ptr<Connection>& conn, PendingWork work) {
  if (!work.is_execute) {
    return [this, conn, slot_id = work.slot_id, sql = std::move(work.sql)]() {
      std::shared_ptr<server::Request> req = pipeline_->TrySubmit(sql);
      if (req == nullptr) {
        // Should not happen (the pipeline is sized above our budget), but
        // shed rather than block a dispatch worker.
        FinishQuery(conn, slot_id,
                    Status::ResourceExhausted("overloaded: query shed"));
        return;
      }
      // The callback fires on a lifecycle-stage worker (or right here if the
      // pipeline is draining); it must not block.
      req->NotifyOnDone([this, conn, slot_id, req]() {
        FinishQuery(conn, slot_id, req->Await());
      });
    };
  }
  return [this, conn, slot_id = work.slot_id, stmt = std::move(work.stmt),
          params = std::move(work.params)]() {
    if (db_->options().mode == server::ExecutionMode::kStaged) {
      {
        MutexLock lock(engine_mu_);
        ++engine_inflight_;
      }
      auto pending = db_->SubmitPrepared(*stmt, params);
      if (!pending.ok()) {
        FinishQuery(conn, slot_id, pending.status());
        EngineDone();
        return;
      }
      // Fires on an engine worker: deliver the response and bump admission,
      // but never submit from here — OnQueryDone defers follow-on
      // dispatches back to the dispatch stage.
      (*pending)->NotifyOnDone([this, conn, slot_id, pq = *pending]() {
        FinishQuery(conn, slot_id, pq->Await());
        EngineDone();
      });
    } else {
      FinishQuery(conn, slot_id, db_->ExecutePrepared(*stmt, params));
    }
  };
}

void NetServer::EngineDone() {
  {
    MutexLock lock(engine_mu_);
    --engine_inflight_;
  }
  engine_cv_.NotifyAll();
}

// ---------------------------------------------------------------------------
// Shutdown
// ---------------------------------------------------------------------------

void NetServer::Stop(int64_t drain_deadline_ms) {
  std::call_once(stop_once_, [&]() {
    // 1. Stop admitting; shed every queued request with a shutdown error.
    std::vector<std::pair<std::shared_ptr<Connection>, uint64_t>> to_shed;
    {
      MutexLock lock(adm_mu_);
      draining_ = true;
      while (!fair_rr_.empty()) {
        std::shared_ptr<Connection> conn = fair_rr_.front();
        fair_rr_.pop_front();
        for (auto& work : conn->adm_pending)
          to_shed.emplace_back(conn, work.slot_id);
        conn->adm_pending.clear();
        conn->adm_in_rr = false;
      }
    }
    for (auto& [conn, slot_id] : to_shed) {
      shed_queries_.fetch_add(1, std::memory_order_relaxed);
      CompleteSlot(conn, slot_id,
                   ErrorFrame(Status::Aborted("server shutting down")), true);
    }

    // 2. Bounded drain of the SQL pipeline: in-flight queries get
    //    drain_deadline_ms to finish, then the still-queued tail is
    //    rejected. Every Request callback has fired when this returns.
    pipeline_->Shutdown(drain_deadline_ms);

    // 3. Wait out the admitted work (each either completed or was rejected
    //    by the draining pipeline above) and the direct engine submissions.
    {
      MutexLock lock(adm_mu_);
      adm_cv_.Wait(adm_mu_,
                   [&]() REQUIRES(adm_mu_) { return inflight_total_ == 0; });
    }
    {
      MutexLock lock(engine_mu_);
      engine_cv_.Wait(engine_mu_, [&]() REQUIRES(engine_mu_) {
        return engine_inflight_ == 0;
      });
    }

    // 4. Brief window to flush buffered responses to clients still reading.
    for (int i = 0; i < 25; ++i) {
      bool all_empty = true;
      std::vector<std::shared_ptr<Connection>> all;
      {
        MutexLock lock(conns_mu_);
        for (const auto& [id, conn] : conns_) all.push_back(conn);
      }
      for (const auto& conn : all) {
        MutexLock lock(conn->out_mu);
        if (!conn->out.empty()) all_empty = false;
      }
      if (all_empty) break;
      for (const auto& conn : all) ActivateWrite(conn.get());
      RealClock::Instance()->SleepMicros(10 * 1000);
    }

    // 5. Tear down the network stages: long-lived tasks observe shutdown_
    //    and retire; closing each connection retires its packets.
    shutdown_.store(true, std::memory_order_release);
    uint64_t one = 1;
    ssize_t ignored = ::write(wake_fd_, &one, sizeof(one));
    (void)ignored;
    ActivateAccept();
    ActivateDispatch();
    CloseAllConns();
    {
      MutexLock lock(tasks_mu_);
      tasks_cv_.Wait(tasks_mu_,
                     [&]() REQUIRES(tasks_mu_) { return live_tasks_ == 0; });
    }
    runtime_.Shutdown();
  });
}

void NetServer::TaskRetired() {
  MutexLock lock(tasks_mu_);
  --live_tasks_;
  tasks_cv_.NotifyAll();
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

NetServer::Stats NetServer::GetStats() const {
  Stats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  {
    MutexLock lock(conns_mu_);
    s.active = static_cast<int64_t>(conns_.size());
  }
  s.shed_connections = shed_connections_.load(std::memory_order_relaxed);
  s.closed_overflow = closed_overflow_.load(std::memory_order_relaxed);
  s.closed_idle = closed_idle_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.queries = queries_.load(std::memory_order_relaxed);
  s.prepares = prepares_.load(std::memory_order_relaxed);
  s.ok_responses = ok_responses_.load(std::memory_order_relaxed);
  s.error_responses = error_responses_.load(std::memory_order_relaxed);
  s.shed_queries = shed_queries_.load(std::memory_order_relaxed);
  s.oversized_results = oversized_results_.load(std::memory_order_relaxed);
  s.late_results_dropped =
      late_results_dropped_.load(std::memory_order_relaxed);
  s.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  s.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  return s;
}

std::string NetServer::StatsReport() const {
  Stats s = GetStats();
  std::string out = StrFormat(
      "net: accepted=%lld active=%lld shed_conns=%lld overflow=%lld "
      "idle=%lld proto_errors=%lld queries=%lld prepares=%lld ok=%lld "
      "errors=%lld shed_queries=%lld oversized=%lld late_dropped=%lld "
      "in=%lldB out=%lldB\n",
      static_cast<long long>(s.accepted), static_cast<long long>(s.active),
      static_cast<long long>(s.shed_connections),
      static_cast<long long>(s.closed_overflow),
      static_cast<long long>(s.closed_idle),
      static_cast<long long>(s.protocol_errors),
      static_cast<long long>(s.queries), static_cast<long long>(s.prepares),
      static_cast<long long>(s.ok_responses),
      static_cast<long long>(s.error_responses),
      static_cast<long long>(s.shed_queries),
      static_cast<long long>(s.oversized_results),
      static_cast<long long>(s.late_results_dropped),
      static_cast<long long>(s.bytes_in),
      static_cast<long long>(s.bytes_out));
  out += "-- network stages --\n";
  out += runtime_.Stats().ToString();
  out += "-- sql pipeline --\n";
  out += pipeline_->StatsReport();
  return out;
}

}  // namespace stagedb::net
