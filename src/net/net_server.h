// The staged TCP front-end: a listener whose event loop IS a stage pool.
//
// The paper's thesis (§2, Figure 3) is that a DBMS decomposes into
// self-contained stages with explicit queues. PR 8 extends that decomposition
// past the SQL pipeline into the network layer: accepting, reading, and
// writing sockets are stages of their own StageRuntime, and a connection is a
// packet — a little state machine that parks (kBlocked) while its socket is
// quiet and is Activate()d by the poller when epoll reports readiness.
//
//   poll (1)    — owns the epoll fd; a single long-lived task that waits for
//                 events and wakes the accept/read/write packets they map to.
//   accept (1)  — drains accept4() on listener readiness, creating a
//                 Connection (one ReadTask + one WriteTask) per socket and
//                 registering it with epoll.
//   read (N)    — drains the socket into a FrameReader, decodes frames, and
//                 hands requests to admission control.
//   write (N)   — flushes the connection's OutputBuffer, arming EPOLLOUT on
//                 short writes.
//   dispatch(1) — runs deferred submissions into the SQL pipeline so engine
//                 completion callbacks never re-enter the engine.
//
// Parsed requests feed the existing staged pipeline (StagedServer ->
// Database::SubmitPlanned), so one process runs network and SQL stages side
// by side, each independently sized and monitored — §5.2's per-stage
// visibility extended to the wire.
//
// Admission control is explicit and per-stage: a global in-flight query
// budget, a per-connection in-flight cap, and a small per-connection pending
// queue drained round-robin across connections (fair dequeue). Past those
// bounds the server sheds with an ERROR frame instead of queueing without
// bound.
#ifndef STAGEDB_NET_NET_SERVER_H_
#define STAGEDB_NET_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "engine/runtime.h"
#include "net/wire.h"
#include "server/server.h"

namespace stagedb::net {

struct NetServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = pick an ephemeral port (reported by NetServer::port()).
  int port = 0;
  /// Workers for each of the read and write stages.
  int io_workers = 1;
  int accept_backlog = 128;
  /// Connections above this are accepted, told ERROR, and closed.
  size_t max_connections = 1024;
  /// Global budget of queries inside the SQL pipeline at once.
  size_t max_inflight_queries = 64;
  /// Per-connection budget of in-flight queries (pipelining depth).
  size_t max_inflight_per_conn = 8;
  /// Per-connection pending queue drained fairly (round-robin across
  /// connections) when budget frees up; past this the query is shed with
  /// ERROR. 0 = shed immediately once in-flight caps are hit.
  size_t pending_per_conn = 16;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Output buffered beyond this closes the connection — the slow-loris
  /// guard for clients that send queries but never read results.
  size_t max_output_buffer_bytes = 4u << 20;
  /// Connections idle (no bytes in either direction) longer than this are
  /// closed; 0 disables. The slow-loris guard for half-open trickle readers.
  /// A connection with a request outstanding (queued, executing, or awaiting
  /// in-order delivery) is never idle, however long the query runs.
  int64_t idle_timeout_ms = 0;
  /// Options for the embedded SQL lifecycle pipeline (StagedServer).
  server::ServerOptions pipeline;
};

class Connection;
struct PendingWork;

/// TCP listener + connection stages in front of a Database. Thread-safe.
class NetServer {
 public:
  struct Stats {
    int64_t accepted = 0;
    int64_t active = 0;
    int64_t shed_connections = 0;  ///< over max_connections
    int64_t closed_overflow = 0;   ///< output buffer over the cap
    int64_t closed_idle = 0;       ///< idle timeout
    int64_t protocol_errors = 0;
    int64_t queries = 0;   ///< QUERY + EXECUTE frames admitted or queued
    int64_t prepares = 0;  ///< PREPARE frames
    int64_t ok_responses = 0;
    int64_t error_responses = 0;   ///< ERROR frames sent (incl. sheds)
    int64_t shed_queries = 0;      ///< rejected by admission control
    int64_t oversized_results = 0;  ///< results over the frame limit -> ERROR
    int64_t late_results_dropped = 0;  ///< completed after client vanished
    int64_t bytes_in = 0;
    int64_t bytes_out = 0;
  };

  /// Binds, listens, and starts the stage pools. `db` must outlive the
  /// server.
  static StatusOr<std::unique_ptr<NetServer>> Start(server::Database* db,
                                                    NetServerOptions options);
  ~NetServer();

  int port() const { return port_; }
  const std::string& host() const { return options_.host; }

  /// Bounded graceful drain, the SIGTERM path: stop accepting, shed pending
  /// queries, give the SQL pipeline `drain_deadline_ms` to finish in-flight
  /// work (then reject what is still queued), flush what responses it can,
  /// and close every socket. Idempotent.
  void Stop(int64_t drain_deadline_ms = 2000);

  Stats GetStats() const;
  /// Network stages + SQL pipeline stages, §5.2 style.
  std::string StatsReport() const;

 private:
  friend class Connection;
  friend class PollTask;
  friend class AcceptTask;
  friend class ReadTask;
  friend class WriteTask;
  friend class DispatchTask;

  NetServer(server::Database* db, NetServerOptions options);
  Status Init();

  // -- packet activation (guarded: no-ops once the task has retired) --
  void ActivateAccept();
  void ActivateDispatch();
  void ActivateRead(Connection* conn);
  void ActivateWrite(Connection* conn);
  void ArmEpollOut(Connection* conn, bool want);

  // -- connection lifecycle (see net_server.cc for the close protocol) --
  void HandleAccepted(int fd);
  std::shared_ptr<Connection> FindConn(uint64_t id);
  void CloseConn(const std::shared_ptr<Connection>& conn);
  void CloseAllConns();

  // -- frame routing & admission control --
  Status HandleFrame(const std::shared_ptr<Connection>& conn, Frame frame);
  void OnRequest(const std::shared_ptr<Connection>& conn, PendingWork work);
  void OnQueryDone(const std::shared_ptr<Connection>& conn);
  /// Appends runnable work to `out` (run it after releasing adm_mu_).
  void DispatchPendingLocked(std::vector<std::function<void()>>* out)
      REQUIRES(adm_mu_);
  void Defer(std::function<void()> fn);
  std::function<void()> MakeDispatch(const std::shared_ptr<Connection>& conn,
                                     PendingWork work);
  void EngineDone();

  // -- response delivery --
  uint64_t NewSlot(const std::shared_ptr<Connection>& conn);
  void CompleteSlot(const std::shared_ptr<Connection>& conn, uint64_t slot_id,
                    std::string frame_bytes, bool is_error);
  void FinishQuery(const std::shared_ptr<Connection>& conn, uint64_t slot_id,
                   StatusOr<server::QueryResult> result);

  void TaskRetired();

  server::Database* const db_;
  const NetServerOptions options_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: Stop() kicks the poller out of epoll_wait
  int port_ = 0;

  /// The SQL lifecycle pipeline the wire feeds into.
  std::unique_ptr<server::StagedServer> pipeline_;

  /// Network stage pools (poll/accept/read/write/dispatch).
  engine::StageRuntime runtime_;
  engine::Stage* poll_stage_ = nullptr;
  engine::Stage* accept_stage_ = nullptr;
  engine::Stage* read_stage_ = nullptr;
  engine::Stage* write_stage_ = nullptr;
  engine::Stage* dispatch_stage_ = nullptr;

  std::atomic<bool> shutdown_{false};
  std::once_flag stop_once_;

  /// Long-lived tasks; pointers nulled on retire so Stop can't touch a
  /// freed task.
  Mutex tasks_mu_;
  CondVar tasks_cv_;
  engine::StageTask* poll_task_ GUARDED_BY(tasks_mu_) = nullptr;
  engine::StageTask* accept_task_ GUARDED_BY(tasks_mu_) = nullptr;
  engine::StageTask* dispatch_task_ GUARDED_BY(tasks_mu_) = nullptr;
  int live_tasks_ GUARDED_BY(tasks_mu_) = 0;

  mutable Mutex conns_mu_;
  std::map<uint64_t, std::shared_ptr<Connection>> conns_
      GUARDED_BY(conns_mu_);
  // 0 = listener, 1 = wake eventfd
  uint64_t next_conn_id_ GUARDED_BY(conns_mu_) = 2;

  /// Admission state: counters plus the fair-dequeue rotation of connections
  /// with pending work.
  Mutex adm_mu_;
  CondVar adm_cv_;
  bool draining_ GUARDED_BY(adm_mu_) = false;
  size_t inflight_total_ GUARDED_BY(adm_mu_) = 0;
  /// Connections with queued pending work, drained round-robin.
  std::deque<std::shared_ptr<Connection>> fair_rr_ GUARDED_BY(adm_mu_);

  /// Deferred closures for the dispatch stage (engine callbacks push here).
  Mutex defer_mu_;
  std::deque<std::function<void()>> deferred_ GUARDED_BY(defer_mu_);

  /// Queries submitted straight to the engine (EXECUTE fast path); Stop
  /// waits for these so no completion callback outlives the server.
  Mutex engine_mu_;
  CondVar engine_cv_;
  size_t engine_inflight_ GUARDED_BY(engine_mu_) = 0;

  // Counters (Stats).
  std::atomic<int64_t> accepted_{0};
  std::atomic<int64_t> shed_connections_{0};
  std::atomic<int64_t> closed_overflow_{0};
  std::atomic<int64_t> closed_idle_{0};
  std::atomic<int64_t> protocol_errors_{0};
  std::atomic<int64_t> queries_{0};
  std::atomic<int64_t> prepares_{0};
  std::atomic<int64_t> ok_responses_{0};
  std::atomic<int64_t> error_responses_{0};
  std::atomic<int64_t> shed_queries_{0};
  std::atomic<int64_t> oversized_results_{0};
  std::atomic<int64_t> late_results_dropped_{0};
  std::atomic<int64_t> bytes_in_{0};
  std::atomic<int64_t> bytes_out_{0};
};

}  // namespace stagedb::net

#endif  // STAGEDB_NET_NET_SERVER_H_
