#include "net/wire.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/string_util.h"

namespace stagedb::net {
namespace {

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU16(std::string* out, uint16_t v) {
  char buf[2];
  std::memcpy(buf, &v, 2);
  out->append(buf, 2);
}

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutDouble(std::string* out, double v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

/// Cursor over a payload; every Read checks bounds and reports kCorruption
/// so a malicious or truncated frame can never read past the buffer.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  StatusOr<uint8_t> ReadU8() {
    if (pos_ + 1 > data_.size()) return Truncated();
    return static_cast<uint8_t>(data_[pos_++]);
  }
  StatusOr<uint16_t> ReadU16() {
    if (pos_ + 2 > data_.size()) return Truncated();
    uint16_t v;
    std::memcpy(&v, data_.data() + pos_, 2);
    pos_ += 2;
    return v;
  }
  StatusOr<uint32_t> ReadU32() {
    if (pos_ + 4 > data_.size()) return Truncated();
    uint32_t v;
    std::memcpy(&v, data_.data() + pos_, 4);
    pos_ += 4;
    return v;
  }
  StatusOr<uint64_t> ReadU64() {
    if (pos_ + 8 > data_.size()) return Truncated();
    uint64_t v;
    std::memcpy(&v, data_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }
  StatusOr<double> ReadDouble() {
    if (pos_ + 8 > data_.size()) return Truncated();
    double v;
    std::memcpy(&v, data_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }
  StatusOr<std::string> ReadBytes(size_t n) {
    if (pos_ + n > data_.size() || pos_ + n < pos_) return Truncated();
    std::string s(data_.substr(pos_, n));
    pos_ += n;
    return s;
  }
  std::string_view Rest() const { return data_.substr(pos_); }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status Truncated() const { return Status::Corruption("truncated payload"); }
  std::string_view data_;
  size_t pos_ = 0;
};

void PutValue(std::string* out, const catalog::Value& v) {
  PutU8(out, static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case catalog::TypeId::kNull:
      break;
    case catalog::TypeId::kBool:
      PutU8(out, v.bool_value() ? 1 : 0);
      break;
    case catalog::TypeId::kInt64:
      PutU64(out, static_cast<uint64_t>(v.int_value()));
      break;
    case catalog::TypeId::kDouble:
      PutDouble(out, v.double_value());
      break;
    case catalog::TypeId::kVarchar:
      PutU32(out, static_cast<uint32_t>(v.varchar_value().size()));
      out->append(v.varchar_value());
      break;
  }
}

StatusOr<catalog::Value> ReadValue(Reader* r) {
  auto tag = r->ReadU8();
  if (!tag.ok()) return tag.status();
  switch (static_cast<catalog::TypeId>(*tag)) {
    case catalog::TypeId::kNull:
      return catalog::Value::Null();
    case catalog::TypeId::kBool: {
      auto b = r->ReadU8();
      if (!b.ok()) return b.status();
      return catalog::Value::Bool(*b != 0);
    }
    case catalog::TypeId::kInt64: {
      auto i = r->ReadU64();
      if (!i.ok()) return i.status();
      return catalog::Value::Int(static_cast<int64_t>(*i));
    }
    case catalog::TypeId::kDouble: {
      auto d = r->ReadDouble();
      if (!d.ok()) return d.status();
      return catalog::Value::Double(*d);
    }
    case catalog::TypeId::kVarchar: {
      auto len = r->ReadU32();
      if (!len.ok()) return len.status();
      auto bytes = r->ReadBytes(*len);
      if (!bytes.ok()) return bytes.status();
      return catalog::Value::Varchar(*std::move(bytes));
    }
  }
  return Status::Corruption(
      StrFormat("unknown value type tag %d", static_cast<int>(*tag)));
}

constexpr uint8_t kRowsKind = 0;
constexpr uint8_t kPreparedKind = 1;

}  // namespace

std::string EncodeFrame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  PutU32(&out, static_cast<uint32_t>(1 + payload.size()));
  PutU8(&out, static_cast<uint8_t>(type));
  out.append(payload);
  return out;
}

void FrameReader::Feed(const char* data, size_t n) {
  if (!error_.ok()) return;
  // Compact lazily: once everything buffered has been consumed, or the dead
  // prefix dominates, drop it so the buffer doesn't grow without bound on
  // long-lived connections.
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, n);
}

std::optional<Frame> FrameReader::Next() {
  if (!error_.ok()) return std::nullopt;
  if (buf_.size() - pos_ < 4) return std::nullopt;
  uint32_t len;
  std::memcpy(&len, buf_.data() + pos_, 4);
  if (len < 1) {
    error_ = Status::Corruption("frame length below minimum (missing type)");
    return std::nullopt;
  }
  if (len > max_frame_bytes_) {
    error_ = Status::Corruption(
        StrFormat("frame of %u bytes exceeds limit of %zu", len,
                  max_frame_bytes_));
    return std::nullopt;
  }
  if (buf_.size() - pos_ < 4 + static_cast<size_t>(len)) return std::nullopt;
  uint8_t type = static_cast<uint8_t>(buf_[pos_ + 4]);
  if (type < static_cast<uint8_t>(FrameType::kQuery) ||
      type > static_cast<uint8_t>(FrameType::kError)) {
    error_ = Status::Corruption(
        StrFormat("unknown frame type %d", static_cast<int>(type)));
    return std::nullopt;
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.payload.assign(buf_, pos_ + kFrameHeaderBytes, len - 1);
  pos_ += 4 + len;
  return frame;
}

std::string EncodeRowsPayload(const server::QueryResult& result) {
  std::string out;
  PutU8(&out, kRowsKind);
  PutU32(&out, static_cast<uint32_t>(result.plan_text.size()));
  out.append(result.plan_text);
  PutU32(&out, static_cast<uint32_t>(result.schema.num_columns()));
  for (const auto& col : result.schema.columns()) {
    PutU8(&out, static_cast<uint8_t>(col.type));
    std::string name = col.QualifiedName();
    // A name past u16 would wrap the length field and corrupt the stream;
    // truncate explicitly — the name is cosmetic, the framing is not.
    if (name.size() > UINT16_MAX) name.resize(UINT16_MAX);
    PutU16(&out, static_cast<uint16_t>(name.size()));
    out.append(name);
  }
  PutU32(&out, static_cast<uint32_t>(result.rows.size()));
  for (const auto& row : result.rows) {
    for (const auto& value : row) PutValue(&out, value);
  }
  return out;
}

std::string EncodePreparedPayload(uint64_t stmt_id, uint32_t num_params) {
  std::string out;
  PutU8(&out, kPreparedKind);
  PutU64(&out, stmt_id);
  PutU32(&out, num_params);
  return out;
}

StatusOr<WireResult> DecodeResultPayload(std::string_view payload) {
  Reader r(payload);
  auto kind = r.ReadU8();
  if (!kind.ok()) return kind.status();
  WireResult wr;
  if (*kind == kPreparedKind) {
    wr.prepared = true;
    auto id = r.ReadU64();
    if (!id.ok()) return id.status();
    auto np = r.ReadU32();
    if (!np.ok()) return np.status();
    wr.stmt_id = *id;
    wr.num_params = *np;
    return wr;
  }
  if (*kind != kRowsKind) {
    return Status::Corruption(
        StrFormat("unknown result kind %d", static_cast<int>(*kind)));
  }
  auto plan_len = r.ReadU32();
  if (!plan_len.ok()) return plan_len.status();
  auto plan = r.ReadBytes(*plan_len);
  if (!plan.ok()) return plan.status();
  wr.result.plan_text = *std::move(plan);
  auto ncols = r.ReadU32();
  if (!ncols.ok()) return ncols.status();
  std::vector<catalog::Column> columns;
  // Untrusted count: clamp the reserve to the payload's capacity (each
  // column takes at least 3 bytes; 1 is a safe lower bound) and let the
  // per-column bounds checks reject an overclaimed frame.
  columns.reserve(std::min<size_t>(*ncols, r.Rest().size()));
  for (uint32_t i = 0; i < *ncols; ++i) {
    auto type = r.ReadU8();
    if (!type.ok()) return type.status();
    auto name_len = r.ReadU16();
    if (!name_len.ok()) return name_len.status();
    auto name = r.ReadBytes(*name_len);
    if (!name.ok()) return name.status();
    catalog::Column col;
    col.name = *std::move(name);
    col.type = static_cast<catalog::TypeId>(*type);
    columns.push_back(std::move(col));
  }
  wr.result.schema = catalog::Schema(std::move(columns));
  auto nrows = r.ReadU32();
  if (!nrows.ok()) return nrows.status();
  // A row encodes to at least one byte per column, so the remaining payload
  // bounds the row count; with zero columns a row is zero bytes and any
  // nonzero claim is unfalsifiable by the decode loop — reject it outright
  // rather than materializing billions of empty tuples.
  size_t min_row_bytes = wr.result.schema.num_columns();
  if (min_row_bytes == 0) {
    if (*nrows != 0)
      return Status::Corruption("row count claimed for a zero-column result");
  } else if (*nrows > r.Rest().size() / min_row_bytes) {
    return Status::Corruption("row count exceeds payload capacity");
  }
  wr.result.rows.reserve(*nrows);
  for (uint32_t i = 0; i < *nrows; ++i) {
    catalog::Tuple row;
    row.reserve(wr.result.schema.num_columns());
    for (size_t c = 0; c < wr.result.schema.num_columns(); ++c) {
      auto v = ReadValue(&r);
      if (!v.ok()) return v.status();
      row.push_back(*std::move(v));
    }
    wr.result.rows.push_back(std::move(row));
  }
  return wr;
}

std::string EncodeErrorPayload(const Status& status) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(status.code()));
  out.append(status.message());
  return out;
}

Status DecodeErrorPayload(std::string_view payload) {
  if (payload.empty()) return Status::Corruption("empty error payload");
  auto code = static_cast<StatusCode>(static_cast<uint8_t>(payload[0]));
  if (code == StatusCode::kOk ||
      static_cast<uint8_t>(code) > static_cast<uint8_t>(StatusCode::kInternal))
    return Status::Corruption("bad status code in error payload");
  return Status(code, std::string(payload.substr(1)));
}

std::string EncodeExecutePayload(uint64_t stmt_id,
                                 const std::vector<catalog::Value>& params) {
  std::string out;
  PutU64(&out, stmt_id);
  PutU32(&out, static_cast<uint32_t>(params.size()));
  for (const auto& p : params) PutValue(&out, p);
  return out;
}

StatusOr<ExecuteRequest> DecodeExecutePayload(std::string_view payload) {
  Reader r(payload);
  ExecuteRequest req;
  auto id = r.ReadU64();
  if (!id.ok()) return id.status();
  req.stmt_id = *id;
  auto nparams = r.ReadU32();
  if (!nparams.ok()) return nparams.status();
  // The claimed count is untrusted: every value takes at least one byte, so
  // clamp the reserve to what the remaining payload could possibly encode. A
  // tiny frame claiming 2^32-1 params must fail the per-value bounds checks,
  // not demand a multi-GB allocation first (std::bad_alloc on a stage worker
  // would take down the whole server).
  req.params.reserve(std::min<size_t>(*nparams, r.Rest().size()));
  for (uint32_t i = 0; i < *nparams; ++i) {
    auto v = ReadValue(&r);
    if (!v.ok()) return v.status();
    req.params.push_back(*std::move(v));
  }
  if (!r.AtEnd()) return Status::Corruption("trailing bytes in EXECUTE");
  return req;
}

void OutputBuffer::Append(std::string bytes) {
  if (bytes.empty()) return;
  bytes_ += bytes.size();
  chunks_.push_back(std::move(bytes));
}

OutputBuffer::FlushResult OutputBuffer::Flush(int fd, size_t* written) {
  *written = 0;
  while (!chunks_.empty()) {
    const std::string& chunk = chunks_.front();
    ssize_t n = ::write(fd, chunk.data() + offset_, chunk.size() - offset_);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        return FlushResult::kWouldBlock;
      if (errno == EINTR) continue;
      return FlushResult::kError;
    }
    *written += static_cast<size_t>(n);
    bytes_ -= static_cast<size_t>(n);
    offset_ += static_cast<size_t>(n);
    if (offset_ == chunk.size()) {
      chunks_.pop_front();
      offset_ = 0;
    }
  }
  return FlushResult::kDrained;
}

}  // namespace stagedb::net
