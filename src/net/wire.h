// The length-prefixed wire protocol of the network front-end.
//
// Every message is one frame:
//
//   [u32 len][u8 type][payload]
//
// where `len` (little-endian, like every integer on the wire) counts the
// type byte plus the payload, so an empty-payload frame has len = 1. Frame
// types:
//
//   QUERY    (client)  payload = SQL text
//   PREPARE  (client)  payload = SQL text to prepare
//   EXECUTE  (client)  payload = [u64 stmt_id][u32 nparams]{value}...
//   RESULT   (server)  payload = [u8 kind] then
//                        kind 0 (rows):     [u32 plan_len][plan_text]
//                                           [u32 ncols]{[u8 type]
//                                                       [u16 name_len][name]}
//                                           [u32 nrows]{row: {value}...}
//                        kind 1 (prepared): [u64 stmt_id][u32 num_params]
//   ERROR    (server)  payload = [u8 StatusCode][message]
//
// A value is [u8 TypeId][data]: NULL carries nothing, BOOLEAN one byte,
// INTEGER an i64, DOUBLE an IEEE-754 double, VARCHAR [u32 len][bytes].
//
// Responses are delivered in request order per connection (the server holds
// out-of-order completions until earlier requests finish), so frames need no
// correlation id. Frames above the reader's limit are a protocol error: the
// server answers ERROR and closes the connection. The limit is symmetric —
// the server never emits a RESULT above it either: a row set that would
// overflow the frame becomes an InvalidArgument ERROR (the session stays
// usable), and decoded counts (nparams/ncols/nrows) are treated as untrusted
// claims bounded by the payload they arrived in.
#ifndef STAGEDB_NET_WIRE_H_
#define STAGEDB_NET_WIRE_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/value.h"
#include "common/status.h"
#include "server/database.h"

namespace stagedb::net {

enum class FrameType : uint8_t {
  kQuery = 1,
  kPrepare = 2,
  kExecute = 3,
  kResult = 4,
  kError = 5,
};

/// Frame header: u32 length + u8 type.
constexpr size_t kFrameHeaderBytes = 5;
/// Default ceiling on len (type byte + payload). Larger frames poison the
/// reader — the oversized-frame rejection path.
constexpr size_t kDefaultMaxFrameBytes = 1u << 20;

struct Frame {
  FrameType type;
  std::string payload;
};

/// One encoded frame (header + payload), ready for the socket.
std::string EncodeFrame(FrameType type, std::string_view payload);

/// Incremental frame decoder: feed whatever the socket delivers (torn reads,
/// single bytes, many frames at once) and pull complete frames out. A
/// protocol violation (oversized frame, unknown type) poisons the reader:
/// Next() returns nullopt and error() reports why.
class FrameReader {
 public:
  explicit FrameReader(size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Feed(const char* data, size_t n);
  std::optional<Frame> Next();

  const Status& error() const { return error_; }
  size_t buffered_bytes() const { return buf_.size() - pos_; }

 private:
  const size_t max_frame_bytes_;
  std::string buf_;
  size_t pos_ = 0;  // consumed prefix of buf_
  Status error_;
};

/// Decoded RESULT frame: either a row set or a prepared-statement handle.
struct WireResult {
  bool prepared = false;
  server::QueryResult result;  // rows kind
  uint64_t stmt_id = 0;        // prepared kind
  uint32_t num_params = 0;     // prepared kind
};

std::string EncodeRowsPayload(const server::QueryResult& result);
std::string EncodePreparedPayload(uint64_t stmt_id, uint32_t num_params);
StatusOr<WireResult> DecodeResultPayload(std::string_view payload);

/// ERROR payload round trip: the carried Status (code + message).
std::string EncodeErrorPayload(const Status& status);
Status DecodeErrorPayload(std::string_view payload);

struct ExecuteRequest {
  uint64_t stmt_id = 0;
  std::vector<catalog::Value> params;
};

std::string EncodeExecutePayload(uint64_t stmt_id,
                                 const std::vector<catalog::Value>& params);
StatusOr<ExecuteRequest> DecodeExecutePayload(std::string_view payload);

/// Buffered writer for a non-blocking socket with partial-write resume: the
/// write stage appends encoded frames and flushes as much as the socket
/// accepts; a short write leaves the cursor mid-chunk and the next Flush
/// (after EPOLLOUT) picks up exactly there. Not thread-safe — callers hold
/// the connection's output lock.
class OutputBuffer {
 public:
  void Append(std::string bytes);

  enum class FlushResult { kDrained, kWouldBlock, kError };
  /// Writes until the buffer drains or the socket would block. Returns the
  /// bytes written this call via `written` (may be non-zero even on kError).
  FlushResult Flush(int fd, size_t* written);

  size_t bytes_queued() const { return bytes_; }
  bool empty() const { return bytes_ == 0; }

 private:
  std::deque<std::string> chunks_;
  size_t offset_ = 0;  // into chunks_.front()
  size_t bytes_ = 0;
};

}  // namespace stagedb::net

#endif  // STAGEDB_NET_WIRE_H_
