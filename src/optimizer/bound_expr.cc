#include "optimizer/bound_expr.h"

#include <cmath>

#include "common/string_util.h"

namespace stagedb::optimizer {

using catalog::TypeId;
using catalog::Value;
using parser::BinaryOp;
using parser::UnaryOp;

std::unique_ptr<BoundExpr> BoundExpr::Literal(Value v) {
  auto e = std::make_unique<BoundExpr>();
  e->kind = Kind::kLiteral;
  e->type = v.type();
  e->literal = std::move(v);
  return e;
}

std::unique_ptr<BoundExpr> BoundExpr::Param(size_t index, TypeId t) {
  auto e = std::make_unique<BoundExpr>();
  e->kind = Kind::kParam;
  e->column = index;
  e->type = t;
  return e;
}

std::unique_ptr<BoundExpr> BoundExpr::Column(size_t index, TypeId t) {
  auto e = std::make_unique<BoundExpr>();
  e->kind = Kind::kColumn;
  e->column = index;
  e->type = t;
  return e;
}

std::unique_ptr<BoundExpr> BoundExpr::AggRef(size_t slot, TypeId t) {
  auto e = std::make_unique<BoundExpr>();
  e->kind = Kind::kAggRef;
  e->column = slot;
  e->type = t;
  return e;
}

std::unique_ptr<BoundExpr> BoundExpr::Unary(UnaryOp op,
                                            std::unique_ptr<BoundExpr> child) {
  auto e = std::make_unique<BoundExpr>();
  e->kind = Kind::kUnary;
  e->unary_op = op;
  e->type = op == UnaryOp::kNot ? TypeId::kBool : child->type;
  e->left = std::move(child);
  return e;
}

std::unique_ptr<BoundExpr> BoundExpr::Binary(BinaryOp op,
                                             std::unique_ptr<BoundExpr> l,
                                             std::unique_ptr<BoundExpr> r) {
  auto e = std::make_unique<BoundExpr>();
  e->kind = Kind::kBinary;
  e->binary_op = op;
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod:
      e->type = (l->type == TypeId::kDouble || r->type == TypeId::kDouble)
                    ? TypeId::kDouble
                    : TypeId::kInt64;
      break;
    default:
      e->type = TypeId::kBool;
      break;
  }
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

std::unique_ptr<BoundExpr> BoundExpr::Clone() const {
  auto e = std::make_unique<BoundExpr>();
  e->kind = kind;
  e->type = type;
  e->literal = literal;
  e->column = column;
  e->unary_op = unary_op;
  e->binary_op = binary_op;
  if (left) e->left = left->Clone();
  if (right) e->right = right->Clone();
  return e;
}

bool BoundExpr::ContainsParam() const {
  if (kind == Kind::kParam) return true;
  if (left && left->ContainsParam()) return true;
  if (right && right->ContainsParam()) return true;
  return false;
}

bool BoundExpr::ReferencesColumnsIn(size_t lo, size_t hi) const {
  if (kind == Kind::kColumn && column >= lo && column < hi) return true;
  if (left && left->ReferencesColumnsIn(lo, hi)) return true;
  if (right && right->ReferencesColumnsIn(lo, hi)) return true;
  return false;
}

void BoundExpr::ShiftColumns(int64_t shift, size_t at_or_above) {
  if (kind == Kind::kColumn && column >= at_or_above) {
    column = static_cast<size_t>(static_cast<int64_t>(column) + shift);
  }
  if (left) left->ShiftColumns(shift, at_or_above);
  if (right) right->ShiftColumns(shift, at_or_above);
}

std::string BoundExpr::ToString() const {
  switch (kind) {
    case Kind::kLiteral:
      return literal.ToString();
    case Kind::kParam:
      return StrFormat("?%zu", column);
    case Kind::kColumn:
      return StrFormat("#%zu", column);
    case Kind::kAggRef:
      return StrFormat("agg#%zu", column);
    case Kind::kUnary:
      return std::string(unary_op == UnaryOp::kNeg ? "-" : "NOT ") +
             left->ToString();
    case Kind::kBinary:
      return "(" + left->ToString() + " " + parser::BinaryOpName(binary_op) +
             " " + right->ToString() + ")";
  }
  return "?";
}

namespace {

StatusOr<Value> EvalBinary(BinaryOp op, const Value& l, const Value& r) {
  // NULL propagation.
  if (l.is_null() || r.is_null()) {
    if (op == BinaryOp::kAnd) {
      // false AND NULL = false.
      if ((!l.is_null() && l.type() == TypeId::kBool && !l.bool_value()) ||
          (!r.is_null() && r.type() == TypeId::kBool && !r.bool_value())) {
        return Value::Bool(false);
      }
      return Value::Null();
    }
    if (op == BinaryOp::kOr) {
      if ((!l.is_null() && l.type() == TypeId::kBool && l.bool_value()) ||
          (!r.is_null() && r.type() == TypeId::kBool && r.bool_value())) {
        return Value::Bool(true);
      }
      return Value::Null();
    }
    return Value::Null();
  }
  switch (op) {
    case BinaryOp::kAnd:
    case BinaryOp::kOr: {
      if (l.type() != TypeId::kBool || r.type() != TypeId::kBool) {
        return Status::InvalidArgument("AND/OR on non-boolean values");
      }
      const bool b = op == BinaryOp::kAnd
                         ? (l.bool_value() && r.bool_value())
                         : (l.bool_value() || r.bool_value());
      return Value::Bool(b);
    }
    case BinaryOp::kEq:
      return Value::Bool(l.Compare(r) == 0);
    case BinaryOp::kNeq:
      return Value::Bool(l.Compare(r) != 0);
    case BinaryOp::kLt:
      return Value::Bool(l.Compare(r) < 0);
    case BinaryOp::kLe:
      return Value::Bool(l.Compare(r) <= 0);
    case BinaryOp::kGt:
      return Value::Bool(l.Compare(r) > 0);
    case BinaryOp::kGe:
      return Value::Bool(l.Compare(r) >= 0);
    default:
      break;
  }
  // Arithmetic.
  const bool any_double =
      l.type() == TypeId::kDouble || r.type() == TypeId::kDouble;
  if ((l.type() != TypeId::kInt64 && l.type() != TypeId::kDouble) ||
      (r.type() != TypeId::kInt64 && r.type() != TypeId::kDouble)) {
    return Status::InvalidArgument("arithmetic on non-numeric values");
  }
  if (any_double) {
    const double a = l.AsDouble(), b = r.AsDouble();
    switch (op) {
      case BinaryOp::kAdd:
        return Value::Double(a + b);
      case BinaryOp::kSub:
        return Value::Double(a - b);
      case BinaryOp::kMul:
        return Value::Double(a * b);
      case BinaryOp::kDiv:
        if (b == 0) return Status::InvalidArgument("division by zero");
        return Value::Double(a / b);
      case BinaryOp::kMod:
        if (b == 0) return Status::InvalidArgument("modulo by zero");
        return Value::Double(std::fmod(a, b));
      default:
        break;
    }
  } else {
    const int64_t a = l.int_value(), b = r.int_value();
    switch (op) {
      case BinaryOp::kAdd:
        return Value::Int(a + b);
      case BinaryOp::kSub:
        return Value::Int(a - b);
      case BinaryOp::kMul:
        return Value::Int(a * b);
      case BinaryOp::kDiv:
        if (b == 0) return Status::InvalidArgument("division by zero");
        return Value::Int(a / b);
      case BinaryOp::kMod:
        if (b == 0) return Status::InvalidArgument("modulo by zero");
        return Value::Int(a % b);
      default:
        break;
    }
  }
  return Status::Internal("unhandled binary operator");
}

}  // namespace

StatusOr<Value> Eval(const BoundExpr& expr, const catalog::Tuple& in) {
  switch (expr.kind) {
    case BoundExpr::Kind::kLiteral:
      return expr.literal;
    case BoundExpr::Kind::kParam:
      return Status::Internal(StrFormat(
          "unbound parameter ?%zu (plan template executed without "
          "instantiation)",
          expr.column));
    case BoundExpr::Kind::kColumn:
    case BoundExpr::Kind::kAggRef: {
      if (expr.column >= in.size()) {
        return Status::Internal(
            StrFormat("column #%zu out of range (%zu)", expr.column,
                      in.size()));
      }
      return in[expr.column];
    }
    case BoundExpr::Kind::kUnary: {
      auto v = Eval(*expr.left, in);
      if (!v.ok()) return v;
      if (v->is_null()) return Value::Null();
      if (expr.unary_op == UnaryOp::kNot) {
        if (v->type() != TypeId::kBool) {
          return Status::InvalidArgument("NOT on non-boolean");
        }
        return Value::Bool(!v->bool_value());
      }
      if (v->type() == TypeId::kInt64) return Value::Int(-v->int_value());
      if (v->type() == TypeId::kDouble) {
        return Value::Double(-v->double_value());
      }
      return Status::InvalidArgument("negation of non-numeric value");
    }
    case BoundExpr::Kind::kBinary: {
      auto l = Eval(*expr.left, in);
      if (!l.ok()) return l;
      auto r = Eval(*expr.right, in);
      if (!r.ok()) return r;
      return EvalBinary(expr.binary_op, *l, *r);
    }
  }
  return Status::Internal("unhandled expression kind");
}

StatusOr<bool> EvalPredicate(const BoundExpr& expr, const catalog::Tuple& in) {
  auto v = Eval(expr, in);
  if (!v.ok()) return v.status();
  if (v->is_null()) return false;
  if (v->type() != TypeId::kBool) {
    return Status::InvalidArgument("predicate is not boolean");
  }
  return v->bool_value();
}

}  // namespace stagedb::optimizer
