// Bound (name-resolved) expressions and their evaluation over tuples.
#ifndef STAGEDB_OPTIMIZER_BOUND_EXPR_H_
#define STAGEDB_OPTIMIZER_BOUND_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "catalog/tuple.h"
#include "common/status.h"
#include "parser/ast.h"

namespace stagedb::optimizer {

/// An expression with column references resolved to positions in the input
/// tuple and with a computed result type.
struct BoundExpr {
  enum class Kind { kLiteral, kParam, kColumn, kUnary, kBinary, kAggRef };

  Kind kind = Kind::kLiteral;
  catalog::TypeId type = catalog::TypeId::kNull;
  catalog::Value literal;             // kLiteral
  size_t column = 0;                  // kColumn / kAggRef slot / kParam index
  parser::UnaryOp unary_op = parser::UnaryOp::kNeg;
  parser::BinaryOp binary_op = parser::BinaryOp::kAdd;
  std::unique_ptr<BoundExpr> left;
  std::unique_ptr<BoundExpr> right;

  static std::unique_ptr<BoundExpr> Literal(catalog::Value v);
  /// Parameter placeholder in a cached plan template. `t` is the type the
  /// statement was normalized with (kNull when unknown, e.g. a user-written
  /// '?'). Templates are never executed directly: parameters are substituted
  /// with literal values by frontend::InstantiatePlan before execution, so
  /// Eval on a kParam node reports an internal error.
  static std::unique_ptr<BoundExpr> Param(size_t index, catalog::TypeId t);
  static std::unique_ptr<BoundExpr> Column(size_t index, catalog::TypeId t);
  static std::unique_ptr<BoundExpr> AggRef(size_t slot, catalog::TypeId t);
  static std::unique_ptr<BoundExpr> Unary(parser::UnaryOp op,
                                          std::unique_ptr<BoundExpr> operand);
  static std::unique_ptr<BoundExpr> Binary(parser::BinaryOp op,
                                           std::unique_ptr<BoundExpr> l,
                                           std::unique_ptr<BoundExpr> r);

  std::unique_ptr<BoundExpr> Clone() const;
  /// True if any node in the tree is a kParam placeholder.
  bool ContainsParam() const;
  /// True if the expression references any column in [lo, hi).
  bool ReferencesColumnsIn(size_t lo, size_t hi) const;
  /// Rewrites column references by `shift` (used when an input is re-based
  /// on the right side of a join).
  void ShiftColumns(int64_t shift, size_t at_or_above);
  std::string ToString() const;
};

/// Evaluates a bound expression against a tuple. SQL three-valued logic is
/// approximated: any comparison or arithmetic with NULL yields NULL, and a
/// NULL predicate result is treated as false by callers.
StatusOr<catalog::Value> Eval(const BoundExpr& expr, const catalog::Tuple& in);

/// Convenience: evaluates a predicate; NULL/non-bool results are false.
StatusOr<bool> EvalPredicate(const BoundExpr& expr, const catalog::Tuple& in);

}  // namespace stagedb::optimizer

#endif  // STAGEDB_OPTIMIZER_BOUND_EXPR_H_
