#include "optimizer/plan.h"

#include "common/string_util.h"

namespace stagedb::optimizer {

const char* PlanKindName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kSeqScan:
      return "SeqScan";
    case PlanKind::kIndexScan:
      return "IndexScan";
    case PlanKind::kFilter:
      return "Filter";
    case PlanKind::kProject:
      return "Project";
    case PlanKind::kNestedLoopJoin:
      return "NestedLoopJoin";
    case PlanKind::kHashJoin:
      return "HashJoin";
    case PlanKind::kMergeJoin:
      return "MergeJoin";
    case PlanKind::kSort:
      return "Sort";
    case PlanKind::kHashAggregate:
      return "HashAggregate";
    case PlanKind::kLimit:
      return "Limit";
    case PlanKind::kValues:
      return "Values";
    case PlanKind::kInsert:
      return "Insert";
    case PlanKind::kDelete:
      return "Delete";
    case PlanKind::kUpdate:
      return "Update";
  }
  return "?";
}

std::string PhysicalPlan::ToString(int indent) const {
  std::string pad(indent * 2, ' ');
  std::string line = pad + PlanKindName(kind);
  if (table != nullptr) line += " " + table->name;
  if (kind == PlanKind::kIndexScan) {
    line += StrFormat(" [%lld..%lld]", static_cast<long long>(index_lo),
                      static_cast<long long>(index_hi));
  }
  if (predicate) line += " pred=" + predicate->ToString();
  if (!left_keys.empty()) {
    line += " keys=";
    for (size_t i = 0; i < left_keys.size(); ++i) {
      if (i) line += ",";
      line += StrFormat("#%zu=#%zu", left_keys[i], right_keys[i]);
    }
  }
  if (kind == PlanKind::kLimit) {
    line += StrFormat(" %lld", static_cast<long long>(limit));
  }
  line += StrFormat("  (rows~%.0f cost~%.0f)", estimated_rows,
                    estimated_cost);
  line += "\n";
  for (const auto& child : children) line += child->ToString(indent + 1);
  return line;
}

}  // namespace stagedb::optimizer
