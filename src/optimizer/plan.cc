#include "optimizer/plan.h"

#include "common/string_util.h"

namespace stagedb::optimizer {

const char* PlanKindName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kSeqScan:
      return "SeqScan";
    case PlanKind::kIndexScan:
      return "IndexScan";
    case PlanKind::kFilter:
      return "Filter";
    case PlanKind::kProject:
      return "Project";
    case PlanKind::kNestedLoopJoin:
      return "NestedLoopJoin";
    case PlanKind::kHashJoin:
      return "HashJoin";
    case PlanKind::kMergeJoin:
      return "MergeJoin";
    case PlanKind::kSort:
      return "Sort";
    case PlanKind::kHashAggregate:
      return "HashAggregate";
    case PlanKind::kLimit:
      return "Limit";
    case PlanKind::kValues:
      return "Values";
    case PlanKind::kInsert:
      return "Insert";
    case PlanKind::kDelete:
      return "Delete";
    case PlanKind::kUpdate:
      return "Update";
  }
  return "?";
}

std::vector<catalog::TypeId> PartialStateTypes(const AggSpec& spec) {
  using catalog::TypeId;
  switch (spec.func) {
    case parser::AggFunc::kCount:
      return {TypeId::kInt64};
    case parser::AggFunc::kSum:
      return {TypeId::kDouble};
    case parser::AggFunc::kAvg:
      return {TypeId::kDouble, TypeId::kInt64};  // sum, non-NULL count
    case parser::AggFunc::kMin:
    case parser::AggFunc::kMax:
      return {spec.result_type};
  }
  return {TypeId::kNull};
}

std::unique_ptr<PhysicalPlan> PhysicalPlan::Clone() const {
  auto p = std::make_unique<PhysicalPlan>();
  p->kind = kind;
  p->schema = schema;
  p->dop = dop;
  p->agg_mode = agg_mode;
  p->batch_hint = batch_hint;
  p->table = table;
  p->index = index;
  p->index_lo = index_lo;
  p->index_hi = index_hi;
  p->index_lo_param = index_lo_param;
  p->index_hi_param = index_hi_param;
  p->index_lo_adjust = index_lo_adjust;
  p->index_hi_adjust = index_hi_adjust;
  if (predicate) p->predicate = predicate->Clone();
  p->exprs.reserve(exprs.size());
  for (const auto& e : exprs) p->exprs.push_back(e->Clone());
  p->update_columns = update_columns;
  p->left_keys = left_keys;
  p->right_keys = right_keys;
  p->sort_keys.reserve(sort_keys.size());
  for (const SortKey& k : sort_keys) {
    SortKey copy;
    copy.expr = k.expr->Clone();
    copy.descending = k.descending;
    p->sort_keys.push_back(std::move(copy));
  }
  p->aggregates.reserve(aggregates.size());
  for (const AggSpec& a : aggregates) {
    AggSpec copy;
    copy.func = a.func;
    if (a.arg) copy.arg = a.arg->Clone();
    copy.result_type = a.result_type;
    p->aggregates.push_back(std::move(copy));
  }
  p->limit = limit;
  p->rows = rows;
  p->row_exprs.reserve(row_exprs.size());
  for (const auto& row : row_exprs) {
    std::vector<std::unique_ptr<BoundExpr>> copy;
    copy.reserve(row.size());
    for (const auto& e : row) copy.push_back(e->Clone());
    p->row_exprs.push_back(std::move(copy));
  }
  p->estimated_rows = estimated_rows;
  p->estimated_cost = estimated_cost;
  p->children.reserve(children.size());
  for (const auto& child : children) p->children.push_back(child->Clone());
  return p;
}

bool PhysicalPlan::IsTemplate() const {
  if (index_lo_param >= 0 || index_hi_param >= 0) return true;
  if (!row_exprs.empty()) return true;
  if (predicate && predicate->ContainsParam()) return true;
  for (const auto& e : exprs) {
    if (e->ContainsParam()) return true;
  }
  for (const SortKey& k : sort_keys) {
    if (k.expr->ContainsParam()) return true;
  }
  for (const AggSpec& a : aggregates) {
    if (a.arg && a.arg->ContainsParam()) return true;
  }
  for (const auto& child : children) {
    if (child->IsTemplate()) return true;
  }
  return false;
}

std::string PhysicalPlan::ToString(int indent) const {
  std::string pad(indent * 2, ' ');
  std::string line = pad + PlanKindName(kind);
  if (agg_mode == AggMode::kPartial) line += "[partial]";
  if (agg_mode == AggMode::kMerge) line += "[merge]";
  if (dop > 1) line += StrFormat(" dop=%d", dop);
  if (table != nullptr) line += " " + table->name;
  if (kind == PlanKind::kIndexScan) {
    const auto bound = [](int64_t value, int param, int adjust) {
      if (param < 0) return StrFormat("%lld", static_cast<long long>(value));
      std::string s = StrFormat("?%d", param);
      if (adjust != 0) s += StrFormat("%+d", adjust);
      return s;
    };
    line += " [" + bound(index_lo, index_lo_param, index_lo_adjust) + ".." +
            bound(index_hi, index_hi_param, index_hi_adjust) + "]";
  }
  if (predicate) line += " pred=" + predicate->ToString();
  if (!left_keys.empty()) {
    line += " keys=";
    for (size_t i = 0; i < left_keys.size(); ++i) {
      if (i) line += ",";
      line += StrFormat("#%zu=#%zu", left_keys[i], right_keys[i]);
    }
  }
  if (kind == PlanKind::kLimit) {
    line += StrFormat(" %lld", static_cast<long long>(limit));
  }
  line += StrFormat("  (rows~%.0f cost~%.0f)", estimated_rows,
                    estimated_cost);
  line += "\n";
  for (const auto& child : children) line += child->ToString(indent + 1);
  return line;
}

}  // namespace stagedb::optimizer
