// Physical query plans: the output of the optimize stage and the input of
// both execution engines (volcano baseline and staged).
#ifndef STAGEDB_OPTIMIZER_PLAN_H_
#define STAGEDB_OPTIMIZER_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/schema.h"
#include "optimizer/bound_expr.h"
#include "parser/ast.h"

namespace stagedb::optimizer {

/// Which operator implements a plan node. These map 1:1 onto the execution
/// engine stages of the paper's Figure 3 (fscan, iscan, sort, join with three
/// algorithms, aggregate) plus the mutation operators.
enum class PlanKind {
  kSeqScan,
  kIndexScan,
  kFilter,
  kProject,
  kNestedLoopJoin,
  kHashJoin,
  kMergeJoin,
  kSort,
  kHashAggregate,
  kLimit,
  kValues,
  kInsert,
  kDelete,
  kUpdate,
};

const char* PlanKindName(PlanKind kind);

struct AggSpec;

/// Column types of the mergeable partial state one aggregate contributes to
/// a kPartial kHashAggregate output row: COUNT carries its count, SUM its
/// running sum (NULL when no non-NULL input), MIN/MAX the partition extremum,
/// and AVG both the sum and the non-NULL count (the merge node re-divides).
/// exec/partial_agg.h's append/merge helpers emit/consume exactly these
/// columns in this order.
std::vector<catalog::TypeId> PartialStateTypes(const AggSpec& spec);

/// Aggregate function instance inside a kHashAggregate node.
struct AggSpec {
  parser::AggFunc func = parser::AggFunc::kCount;
  std::unique_ptr<BoundExpr> arg;  // null for COUNT(*)
  catalog::TypeId result_type = catalog::TypeId::kInt64;
};

/// Sort key over the input schema.
struct SortKey {
  std::unique_ptr<BoundExpr> expr;
  bool descending = false;
};

/// Role of a kHashAggregate node in a parallel (partitioned) aggregation.
/// kComplete is the classic single-packet aggregation; a dop>1 rewrite
/// splits it into N kPartial packets (each aggregating its hash partition of
/// the input into mergeable per-group states) under one kMerge packet that
/// combines the states and finalizes (§4.3 intra-operator parallelism).
enum class AggMode { kComplete, kPartial, kMerge };

/// A physical plan node. A tagged struct keeps the plan walkable by both
/// engines without a visitor hierarchy.
struct PhysicalPlan {
  PlanKind kind = PlanKind::kSeqScan;
  catalog::Schema schema;  // output schema
  std::vector<std::unique_ptr<PhysicalPlan>> children;

  /// Degree of parallelism: how many partition packets the staged engine
  /// instantiates for this node (kHashJoin and kPartial kHashAggregate
  /// only; the engine additionally clamps to its own max_dop). 1 = the
  /// classic one-packet-per-operator shape, byte-compatible with pre-DOP
  /// plans.
  int dop = 1;
  AggMode agg_mode = AggMode::kComplete;

  /// Optimizer batch-size hint for the staged engine's batch ABI: tuples per
  /// exchanged morsel at this node's output edge. 0 (the default) defers to
  /// the engine-wide StagedEngineOptions::tuples_per_page, so plans without
  /// a hint execute exactly as before. Stamped by the planner from
  /// PlannerOptions::batch_rows; deliberately excluded from ToString so plan
  /// text (and the plan-cache keys derived from it) is hint-independent.
  int batch_hint = 0;

  // Scans and mutations.
  catalog::TableInfo* table = nullptr;
  catalog::IndexInfo* index = nullptr;
  int64_t index_lo = INT64_MIN;  // inclusive range for kIndexScan
  int64_t index_hi = INT64_MAX;
  // Parameterized kIndexScan bounds (plan templates): when >= 0, the bound is
  // `params[index_*_param] + index_*_adjust` tightened against the static
  // index_lo/index_hi by frontend::InstantiatePlan (the adjust turns the
  // strict comparisons `col > ?` / `col < ?` into inclusive bounds).
  int index_lo_param = -1;
  int index_hi_param = -1;
  int index_lo_adjust = 0;
  int index_hi_adjust = 0;

  // kFilter / join residual predicates / kDelete / kUpdate condition.
  std::unique_ptr<BoundExpr> predicate;

  // kProject expressions; kHashAggregate group-by; kUpdate SET values
  // (parallel to update_columns).
  std::vector<std::unique_ptr<BoundExpr>> exprs;
  std::vector<size_t> update_columns;

  // Equi-join keys (column indices into left/right child schemas).
  std::vector<size_t> left_keys;
  std::vector<size_t> right_keys;

  // kSort.
  std::vector<SortKey> sort_keys;

  // kHashAggregate.
  std::vector<AggSpec> aggregates;

  // kLimit.
  int64_t limit = -1;

  // kValues literal rows (INSERT source).
  std::vector<catalog::Tuple> rows;
  // kValues rows of a parameterized INSERT template: kept unevaluated until
  // frontend::InstantiatePlan substitutes the parameters and folds them into
  // `rows` (the execution engines only ever see `rows`).
  std::vector<std::vector<std::unique_ptr<BoundExpr>>> row_exprs;

  // Cost-model annotations.
  double estimated_rows = 0.0;
  double estimated_cost = 0.0;

  /// Deep copy (children, expressions, rows; table/index pointers shared).
  /// Much cheaper than replanning — this is what a plan-cache hit pays.
  std::unique_ptr<PhysicalPlan> Clone() const;

  /// True if any expression anywhere in the tree contains a kParam
  /// placeholder or a parameterized index bound / VALUES row (i.e. the plan
  /// is a template that must be instantiated before execution).
  bool IsTemplate() const;

  /// EXPLAIN-style tree rendering.
  std::string ToString(int indent = 0) const;
};

}  // namespace stagedb::optimizer

#endif  // STAGEDB_OPTIMIZER_PLAN_H_
