#include "optimizer/planner.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/string_util.h"

namespace stagedb::optimizer {

using catalog::Schema;
using catalog::TypeId;
using catalog::Value;
using parser::AggFunc;
using parser::BinaryOp;
using parser::Expr;

namespace {
constexpr double kTuplesPerPage = 50.0;
constexpr double kCpuPerTuple = 0.01;
}  // namespace

void SplitConjuncts(const Expr* expr, std::vector<const Expr*>* out) {
  if (expr == nullptr) return;
  if (expr->kind == Expr::Kind::kBinary &&
      expr->binary_op == BinaryOp::kAnd) {
    SplitConjuncts(expr->left.get(), out);
    SplitConjuncts(expr->right.get(), out);
    return;
  }
  out->push_back(expr);
}

namespace {

/// Collects every column reference in an expression.
void CollectColumnRefs(const Expr& expr, std::vector<const Expr*>* out) {
  if (expr.kind == Expr::Kind::kColumnRef) out->push_back(&expr);
  if (expr.left) CollectColumnRefs(*expr.left, out);
  if (expr.right) CollectColumnRefs(*expr.right, out);
}

/// Collects aggregate calls in an expression.
void CollectAggregates(const Expr& expr, std::vector<const Expr*>* out) {
  if (expr.kind == Expr::Kind::kAggregate) {
    out->push_back(&expr);
    return;  // no nested aggregates
  }
  if (expr.left) CollectAggregates(*expr.left, out);
  if (expr.right) CollectAggregates(*expr.right, out);
}

std::string ColumnRefName(const Expr& ref) {
  return ref.table.empty() ? ref.column : ref.table + "." + ref.column;
}

/// Default output column name for a select item.
std::string OutputName(const parser::SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr->kind == Expr::Kind::kColumnRef) return item.expr->column;
  return item.expr->ToString();
}

double DefaultSelectivity(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return 0.05;
    case BinaryOp::kNeq:
      return 0.9;
    default:
      return 1.0 / 3.0;
  }
}

}  // namespace

// Aggregate-planning context: maps group-by expression text to group column
// positions and aggregate signatures to slots in the aggregate output.
struct Planner::AggContext {
  bool active = false;
  std::vector<std::string> group_text;     // ToString of each group-by expr
  std::vector<TypeId> group_types;
  std::vector<std::string> agg_text;       // signature of each aggregate
  std::vector<AggSpec>* specs = nullptr;   // owned by the agg plan node
  const Schema* input = nullptr;           // schema below the aggregation
  const Planner* planner = nullptr;
};

StatusOr<std::unique_ptr<BoundExpr>> Planner::Bind(const Expr& expr,
                                                   const Schema& schema,
                                                   AggContext* agg) const {
  // In aggregate context, a subtree matching a group-by expression binds to
  // the corresponding group column of the aggregate output.
  if (agg != nullptr && agg->active) {
    const std::string text = expr.ToString();
    for (size_t i = 0; i < agg->group_text.size(); ++i) {
      if (agg->group_text[i] == text) {
        return BoundExpr::Column(i, agg->group_types[i]);
      }
    }
    if (expr.kind == Expr::Kind::kAggregate) {
      for (size_t i = 0; i < agg->agg_text.size(); ++i) {
        if (agg->agg_text[i] == text) {
          return BoundExpr::AggRef(agg->group_text.size() + i,
                                   (*agg->specs)[i].result_type);
        }
      }
      // Register a new aggregate slot.
      AggSpec spec;
      spec.func = expr.agg_func;
      if (expr.left) {
        auto arg = Bind(*expr.left, *agg->input, nullptr);
        if (!arg.ok()) return arg.status();
        spec.arg = std::move(*arg);
      }
      switch (spec.func) {
        case AggFunc::kCount:
          spec.result_type = TypeId::kInt64;
          break;
        case AggFunc::kAvg:
          spec.result_type = TypeId::kDouble;
          break;
        default:
          spec.result_type = spec.arg ? spec.arg->type : TypeId::kInt64;
          break;
      }
      agg->agg_text.push_back(text);
      agg->specs->push_back(std::move(spec));
      return BoundExpr::AggRef(
          agg->group_text.size() + agg->agg_text.size() - 1,
          agg->specs->back().result_type);
    }
  }

  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return BoundExpr::Literal(expr.literal);
    case Expr::Kind::kParam:
      return BoundExpr::Param(expr.param_index, ParamType(expr.param_index));
    case Expr::Kind::kStar:
      return Status::InvalidArgument("'*' is only valid in COUNT(*)");
    case Expr::Kind::kColumnRef: {
      if (agg != nullptr && agg->active) {
        return Status::InvalidArgument(
            StrFormat("column '%s' must appear in GROUP BY or an aggregate",
                      ColumnRefName(expr).c_str()));
      }
      auto idx = schema.Find(ColumnRefName(expr));
      if (!idx.ok()) return idx.status();
      return BoundExpr::Column(*idx, schema.column(*idx).type);
    }
    case Expr::Kind::kUnary: {
      auto child = Bind(*expr.left, schema, agg);
      if (!child.ok()) return child;
      return BoundExpr::Unary(expr.unary_op, std::move(*child));
    }
    case Expr::Kind::kBinary: {
      auto l = Bind(*expr.left, schema, agg);
      if (!l.ok()) return l;
      auto r = Bind(*expr.right, schema, agg);
      if (!r.ok()) return r;
      return BoundExpr::Binary(expr.binary_op, std::move(*l), std::move(*r));
    }
    case Expr::Kind::kAggregate:
      return Status::InvalidArgument(
          "aggregate used outside GROUP BY / select list context");
  }
  return Status::Internal("unhandled expression kind in binder");
}

catalog::TypeId Planner::ParamType(size_t index) const {
  if (param_types_ != nullptr && index < param_types_->size()) {
    return (*param_types_)[index];
  }
  return TypeId::kNull;
}

StatusOr<std::unique_ptr<PhysicalPlan>> Planner::Plan(
    const parser::Statement& stmt,
    const std::vector<catalog::TypeId>* param_types) {
  param_types_ = param_types;
  StatusOr<std::unique_ptr<PhysicalPlan>> plan =
      Status::NotSupported("statement kind is handled outside the planner");
  switch (stmt.kind) {
    case parser::Statement::Kind::kSelect:
      plan = PlanSelect(static_cast<const parser::SelectStmt&>(stmt));
      break;
    case parser::Statement::Kind::kInsert:
      plan = PlanInsert(static_cast<const parser::InsertStmt&>(stmt));
      break;
    case parser::Statement::Kind::kDelete:
      plan = PlanDelete(static_cast<const parser::DeleteStmt&>(stmt));
      break;
    case parser::Statement::Kind::kUpdate:
      plan = PlanUpdate(static_cast<const parser::UpdateStmt&>(stmt));
      break;
    default:
      break;
  }
  if (plan.ok() && options_.batch_rows > 0) StampBatchHints(plan->get());
  return plan;
}

void Planner::StampBatchHints(PhysicalPlan* node) const {
  node->batch_hint = options_.batch_rows;
  for (auto& child : node->children) StampBatchHints(child.get());
}

// --------------------------------------------------------- base relations --

StatusOr<std::unique_ptr<PhysicalPlan>> Planner::PlanBaseRelation(
    const Relation& rel, std::vector<const Expr*> local_conjuncts) {
  const catalog::TableStats& stats = *rel.table->stats;
  const double base_rows = std::max<double>(1.0, stats.row_count());

  // Try to carve an index range out of the conjuncts. A comparand may be a
  // literal (folded into the static lo/hi) or a '?' parameter of INTEGER
  // normalized type (recorded as a parameterized bound that
  // frontend::InstantiatePlan resolves; at most one parameter per side —
  // further parameterized conjuncts stay in the residual filter).
  catalog::IndexInfo* best_index = nullptr;
  int64_t lo = INT64_MIN, hi = INT64_MAX;
  int lo_param = -1, hi_param = -1;
  int lo_adjust = 0, hi_adjust = 0;
  std::vector<const Expr*> remaining;
  if (options_.enable_index_scan) {
    for (const Expr* conjunct : local_conjuncts) {
      bool used = false;
      if (conjunct->kind == Expr::Kind::kBinary) {
        const Expr* col = nullptr;
        const Expr* lit = nullptr;
        BinaryOp op = conjunct->binary_op;
        const auto is_comparand = [](const Expr& e) {
          return e.kind == Expr::Kind::kLiteral ||
                 e.kind == Expr::Kind::kParam;
        };
        if (conjunct->left->kind == Expr::Kind::kColumnRef &&
            is_comparand(*conjunct->right)) {
          col = conjunct->left.get();
          lit = conjunct->right.get();
        } else if (conjunct->right->kind == Expr::Kind::kColumnRef &&
                   is_comparand(*conjunct->left)) {
          col = conjunct->right.get();
          lit = conjunct->left.get();
          // Mirror the comparison: lit OP col == col OP' lit.
          switch (op) {
            case BinaryOp::kLt:
              op = BinaryOp::kGt;
              break;
            case BinaryOp::kLe:
              op = BinaryOp::kGe;
              break;
            case BinaryOp::kGt:
              op = BinaryOp::kLt;
              break;
            case BinaryOp::kGe:
              op = BinaryOp::kLe;
              break;
            default:
              break;
          }
        }
        const bool is_param = lit != nullptr &&
                              lit->kind == Expr::Kind::kParam;
        // A parameter of unknown type (user-written '?') may still drive an
        // index range: indexes only exist on INTEGER columns here, so the
        // value is resolved as INTEGER at instantiation (a non-integer value
        // fails there with a clear type error, like any prepared-statement
        // parameter resolution).
        const bool int_comparand =
            lit != nullptr &&
            (is_param ? (ParamType(lit->param_index) == TypeId::kInt64 ||
                         ParamType(lit->param_index) == TypeId::kNull)
                      : lit->literal.type() == TypeId::kInt64);
        if (col != nullptr && int_comparand) {
          auto idx_or = rel.schema.Find(ColumnRefName(*col));
          if (idx_or.ok()) {
            catalog::IndexInfo* index =
                catalog_->FindIndexOn(rel.table->id, *idx_or);
            if (index != nullptr &&
                (best_index == nullptr || index == best_index)) {
              const int64_t v = is_param ? 0 : lit->literal.int_value();
              const int p =
                  is_param ? static_cast<int>(lit->param_index) : -1;
              const auto take_lo = [&](int adjust) {
                if (is_param) {
                  if (lo_param >= 0) return false;  // one parameter per side
                  lo_param = p;
                  lo_adjust = adjust;
                } else {
                  lo = std::max(lo, v + adjust);
                }
                return true;
              };
              const auto take_hi = [&](int adjust) {
                if (is_param) {
                  if (hi_param >= 0) return false;
                  hi_param = p;
                  hi_adjust = adjust;
                } else {
                  hi = std::min(hi, v + adjust);
                }
                return true;
              };
              switch (op) {
                case BinaryOp::kEq:
                  if (is_param && (lo_param >= 0 || hi_param >= 0)) break;
                  used = take_lo(0) && take_hi(0);
                  break;
                case BinaryOp::kLt:
                  used = take_hi(-1);
                  break;
                case BinaryOp::kLe:
                  used = take_hi(0);
                  break;
                case BinaryOp::kGt:
                  used = take_lo(1);
                  break;
                case BinaryOp::kGe:
                  used = take_lo(0);
                  break;
                default:
                  break;
              }
              if (used) best_index = index;
            }
          }
        }
      }
      if (!used) remaining.push_back(conjunct);
    }
  } else {
    remaining = local_conjuncts;
  }

  std::unique_ptr<PhysicalPlan> plan;
  if (best_index != nullptr) {
    plan = std::make_unique<PhysicalPlan>();
    plan->kind = PlanKind::kIndexScan;
    plan->table = rel.table;
    plan->index = best_index;
    plan->index_lo = lo;
    plan->index_hi = hi;
    plan->index_lo_param = lo_param;
    plan->index_hi_param = hi_param;
    plan->index_lo_adjust = lo_adjust;
    plan->index_hi_adjust = hi_adjust;
    plan->schema = rel.schema;
    double frac;
    if (lo_param >= 0 || hi_param >= 0) {
      // Parameterized bound: the value is unknown at plan time. Point lookup
      // (both bounds from the same '?') estimates like equality; open ranges
      // get the generic inequality guess.
      frac = (lo_param >= 0 && lo_param == hi_param)
                 ? stats.EqSelectivity(best_index->column)
                 : 1.0 / 3.0;
    } else {
      const double sel = stats.RangeSelectivity(
          best_index->column, Value::Int(lo == INT64_MIN ? 0 : lo),
          Value::Int(hi == INT64_MAX ? 0 : hi));
      frac = (lo == INT64_MIN && hi == INT64_MAX) ? 1.0
             : (lo == hi ? stats.EqSelectivity(best_index->column)
                         : std::max(sel, 1e-6));
    }
    plan->estimated_rows = std::max(1.0, base_rows * frac);
    plan->estimated_cost =
        std::log2(base_rows + 2) + plan->estimated_rows * kCpuPerTuple * 4;
  } else {
    plan = std::make_unique<PhysicalPlan>();
    plan->kind = PlanKind::kSeqScan;
    plan->table = rel.table;
    plan->schema = rel.schema;
    plan->estimated_rows = base_rows;
    plan->estimated_cost =
        base_rows / kTuplesPerPage + base_rows * kCpuPerTuple;
  }

  if (!remaining.empty()) {
    // AND the remaining conjuncts into one filter predicate.
    std::unique_ptr<BoundExpr> pred;
    double sel = 1.0;
    for (const Expr* conjunct : remaining) {
      auto bound = Bind(*conjunct, rel.schema, nullptr);
      if (!bound.ok()) return bound.status();
      sel *= conjunct->kind == Expr::Kind::kBinary
                 ? DefaultSelectivity(conjunct->binary_op)
                 : 0.5;
      pred = pred ? BoundExpr::Binary(BinaryOp::kAnd, std::move(pred),
                                      std::move(*bound))
                  : std::move(*bound);
    }
    auto filter = std::make_unique<PhysicalPlan>();
    filter->kind = PlanKind::kFilter;
    filter->schema = plan->schema;
    filter->predicate = std::move(pred);
    filter->estimated_rows = std::max(1.0, plan->estimated_rows * sel);
    filter->estimated_cost =
        plan->estimated_cost + plan->estimated_rows * kCpuPerTuple;
    filter->children.push_back(std::move(plan));
    plan = std::move(filter);
  }
  return plan;
}

// ------------------------------------------------------------------ SELECT --

StatusOr<std::unique_ptr<PhysicalPlan>> Planner::PlanSelect(
    const parser::SelectStmt& stmt) {
  // 1. Resolve relations.
  std::vector<Relation> relations;
  {
    auto add = [&](const parser::TableRef& ref) -> Status {
      auto table_or = catalog_->GetTable(ref.table);
      if (!table_or.ok()) return table_or.status();
      Relation rel;
      rel.table = *table_or;
      rel.name = ref.EffectiveName();
      rel.schema = rel.table->schema.Qualified(rel.name);
      for (const Relation& existing : relations) {
        if (existing.name == rel.name) {
          return Status::InvalidArgument(
              StrFormat("duplicate table name '%s'", rel.name.c_str()));
        }
      }
      relations.push_back(std::move(rel));
      return Status::OK();
    };
    STAGEDB_RETURN_IF_ERROR(add(stmt.from));
    for (const parser::JoinClause& join : stmt.joins) {
      STAGEDB_RETURN_IF_ERROR(add(join.table));
    }
  }

  // 2. Pool all conjuncts from WHERE and every ON clause (inner joins).
  std::vector<const Expr*> conjuncts;
  SplitConjuncts(stmt.where.get(), &conjuncts);
  for (const parser::JoinClause& join : stmt.joins) {
    SplitConjuncts(join.on.get(), &conjuncts);
  }

  // 3. Compute, for every conjunct, the set of relations it references.
  struct ConjunctInfo {
    const Expr* expr;
    std::set<size_t> rels;
    bool consumed = false;
  };
  std::vector<ConjunctInfo> infos;
  for (const Expr* conjunct : conjuncts) {
    ConjunctInfo info;
    info.expr = conjunct;
    std::vector<const Expr*> refs;
    CollectColumnRefs(*conjunct, &refs);
    for (const Expr* ref : refs) {
      const std::string name = ColumnRefName(*ref);
      size_t owner = SIZE_MAX;
      for (size_t r = 0; r < relations.size(); ++r) {
        if (relations[r].schema.Find(name).ok()) {
          if (owner != SIZE_MAX) {
            return Status::InvalidArgument(
                StrFormat("ambiguous column '%s'", name.c_str()));
          }
          owner = r;
        }
      }
      if (owner == SIZE_MAX) {
        return Status::NotFound(StrFormat("column '%s'", name.c_str()));
      }
      info.rels.insert(owner);
    }
    infos.push_back(std::move(info));
  }

  // 4. Base plans with pushed-down single-relation predicates.
  std::vector<std::unique_ptr<PhysicalPlan>> base(relations.size());
  for (size_t r = 0; r < relations.size(); ++r) {
    std::vector<const Expr*> local;
    if (options_.enable_predicate_pushdown) {
      for (ConjunctInfo& info : infos) {
        if (!info.consumed && info.rels.size() == 1 &&
            *info.rels.begin() == r) {
          local.push_back(info.expr);
          info.consumed = true;
        }
      }
    }
    auto plan = PlanBaseRelation(relations[r], std::move(local));
    if (!plan.ok()) return plan.status();
    base[r] = std::move(*plan);
  }

  // 5. Greedy join ordering. `joined` maps relation -> column offset in the
  // current combined schema (SIZE_MAX when not yet joined).
  std::unique_ptr<PhysicalPlan> plan;
  std::vector<size_t> offset(relations.size(), SIZE_MAX);
  std::set<size_t> joined;
  {
    // Start with the cheapest base relation (or the FROM table in
    // declaration order when reordering is disabled).
    size_t first = 0;
    if (options_.enable_join_reorder) {
      for (size_t r = 1; r < relations.size(); ++r) {
        if (base[r]->estimated_rows < base[first]->estimated_rows) first = r;
      }
    }
    plan = std::move(base[first]);
    offset[first] = 0;
    joined.insert(first);
  }

  auto combined_find = [&](const std::string& name,
                           size_t* column) -> bool {
    for (size_t r : joined) {
      auto idx = relations[r].schema.Find(name);
      if (idx.ok()) {
        *column = offset[r] + *idx;
        return true;
      }
    }
    return false;
  };

  while (joined.size() < relations.size()) {
    // Choose the next relation: prefer ones connected by an equi predicate,
    // pick the candidate with minimal estimated result size.
    size_t best = SIZE_MAX;
    bool best_connected = false;
    double best_rows = 0;
    for (size_t r = 0; r < relations.size(); ++r) {
      if (joined.count(r)) continue;
      bool connected = false;
      for (const ConjunctInfo& info : infos) {
        if (info.consumed || !info.rels.count(r)) continue;
        bool others_joined = true;
        for (size_t o : info.rels) {
          if (o != r && !joined.count(o)) others_joined = false;
        }
        if (others_joined && info.rels.size() > 1) connected = true;
      }
      const double rows = base[r]->estimated_rows;
      const bool better =
          best == SIZE_MAX ||
          (connected && !best_connected) ||
          (connected == best_connected && rows < best_rows);
      if (better) {
        best = r;
        best_connected = connected;
        best_rows = rows;
      }
      if (!options_.enable_join_reorder) {
        // Keep declaration order: pick the first unjoined relation.
        best = r;
        break;
      }
    }

    const size_t r = best;
    const size_t left_width = plan->schema.num_columns();
    Schema combined = Schema::Concat(plan->schema, base[r]->schema);

    // Gather applicable conjuncts (all referenced relations now available).
    std::vector<const Expr*> applicable;
    for (ConjunctInfo& info : infos) {
      if (info.consumed) continue;
      bool all = true;
      for (size_t o : info.rels) {
        if (o != r && !joined.count(o)) all = false;
      }
      if (all && info.rels.count(r)) {
        applicable.push_back(info.expr);
        info.consumed = true;
      }
    }

    // Split equi-join keys from residual predicates.
    std::vector<size_t> left_keys, right_keys;
    std::vector<const Expr*> residual;
    for (const Expr* conjunct : applicable) {
      bool is_equi = false;
      if (conjunct->kind == Expr::Kind::kBinary &&
          conjunct->binary_op == BinaryOp::kEq &&
          conjunct->left->kind == Expr::Kind::kColumnRef &&
          conjunct->right->kind == Expr::Kind::kColumnRef) {
        const std::string lname = ColumnRefName(*conjunct->left);
        const std::string rname = ColumnRefName(*conjunct->right);
        auto lidx = relations[r].schema.Find(lname);
        auto ridx = relations[r].schema.Find(rname);
        size_t outer_col;
        if (lidx.ok() && !ridx.ok() && combined_find(rname, &outer_col)) {
          left_keys.push_back(outer_col);
          right_keys.push_back(*lidx);
          is_equi = true;
        } else if (ridx.ok() && !lidx.ok() &&
                   combined_find(lname, &outer_col)) {
          left_keys.push_back(outer_col);
          right_keys.push_back(*ridx);
          is_equi = true;
        }
      }
      if (!is_equi) residual.push_back(conjunct);
    }

    // Pick the join algorithm.
    PlanKind algo;
    switch (options_.join_algorithm) {
      case PlannerOptions::JoinAlgo::kHash:
        algo = left_keys.empty() ? PlanKind::kNestedLoopJoin
                                 : PlanKind::kHashJoin;
        break;
      case PlannerOptions::JoinAlgo::kMerge:
        algo = left_keys.empty() ? PlanKind::kNestedLoopJoin
                                 : PlanKind::kMergeJoin;
        break;
      case PlannerOptions::JoinAlgo::kNestedLoop:
        algo = PlanKind::kNestedLoopJoin;
        break;
      case PlannerOptions::JoinAlgo::kAuto:
      default:
        algo = left_keys.empty() ? PlanKind::kNestedLoopJoin
                                 : PlanKind::kHashJoin;
        break;
    }

    // A nested-loop join evaluates no hash/merge keys: fold any extracted
    // equi pairs back into its predicate so a forced NLJ stays an equi-join.
    std::unique_ptr<BoundExpr> key_pred;
    if (algo == PlanKind::kNestedLoopJoin && !left_keys.empty()) {
      for (size_t k = 0; k < left_keys.size(); ++k) {
        const size_t lc = left_keys[k];
        const size_t rc = left_width + right_keys[k];
        auto eq = BoundExpr::Binary(
            BinaryOp::kEq,
            BoundExpr::Column(lc, combined.column(lc).type),
            BoundExpr::Column(rc, combined.column(rc).type));
        key_pred = key_pred ? BoundExpr::Binary(BinaryOp::kAnd,
                                                std::move(key_pred),
                                                std::move(eq))
                            : std::move(eq);
      }
      left_keys.clear();
      right_keys.clear();
    }

    auto join = std::make_unique<PhysicalPlan>();
    join->kind = algo;
    join->schema = combined;
    const double lrows = plan->estimated_rows;
    const double rrows = base[r]->estimated_rows;
    if (!left_keys.empty()) {
      join->left_keys = left_keys;
      join->right_keys = right_keys;
      join->estimated_rows =
          std::max(1.0, lrows * rrows / std::max(lrows, rrows));
      join->estimated_cost = plan->estimated_cost + base[r]->estimated_cost +
                             (lrows + rrows) * kCpuPerTuple * 2;
      if (algo == PlanKind::kMergeJoin) {
        join->estimated_cost += (lrows * std::log2(lrows + 2) +
                                 rrows * std::log2(rrows + 2)) *
                                kCpuPerTuple;
      }
    } else {
      join->estimated_rows = std::max(1.0, lrows * rrows * 0.1);
      join->estimated_cost = plan->estimated_cost + base[r]->estimated_cost +
                             lrows * rrows * kCpuPerTuple;
    }
    // Residual predicates evaluated on the joined row.
    std::unique_ptr<BoundExpr> residual_pred = std::move(key_pred);
    if (residual_pred) {
      join->estimated_rows =
          std::max(1.0, lrows * rrows / std::max(lrows, rrows));
    }
    for (const Expr* conjunct : residual) {
      auto bound = Bind(*conjunct, combined, nullptr);
      if (!bound.ok()) return bound.status();
      residual_pred = residual_pred
                          ? BoundExpr::Binary(BinaryOp::kAnd,
                                              std::move(residual_pred),
                                              std::move(*bound))
                          : std::move(*bound);
      join->estimated_rows =
          std::max(1.0, join->estimated_rows / 3.0);
    }
    join->predicate = std::move(residual_pred);
    join->children.push_back(std::move(plan));
    join->children.push_back(std::move(base[r]));
    plan = std::move(join);

    offset[r] = left_width;
    joined.insert(r);
  }

  // 6. Any remaining conjuncts (e.g. pushdown disabled) become a filter here.
  {
    std::unique_ptr<BoundExpr> pred;
    for (ConjunctInfo& info : infos) {
      if (info.consumed) continue;
      auto bound = Bind(*info.expr, plan->schema, nullptr);
      if (!bound.ok()) return bound.status();
      pred = pred ? BoundExpr::Binary(BinaryOp::kAnd, std::move(pred),
                                      std::move(*bound))
                  : std::move(*bound);
      info.consumed = true;
    }
    if (pred) {
      auto filter = std::make_unique<PhysicalPlan>();
      filter->kind = PlanKind::kFilter;
      filter->schema = plan->schema;
      filter->predicate = std::move(pred);
      filter->estimated_rows = std::max(1.0, plan->estimated_rows / 3.0);
      filter->estimated_cost =
          plan->estimated_cost + plan->estimated_rows * kCpuPerTuple;
      filter->children.push_back(std::move(plan));
      plan = std::move(filter);
    }
  }

  // 7. Aggregation.
  bool needs_agg = !stmt.group_by.empty();
  for (const parser::SelectItem& item : stmt.items) {
    if (item.expr && item.expr->ContainsAggregate()) needs_agg = true;
  }
  if (stmt.having) needs_agg = true;

  AggContext agg;
  if (needs_agg) {
    auto agg_plan = std::make_unique<PhysicalPlan>();
    agg_plan->kind = PlanKind::kHashAggregate;
    agg.active = true;
    agg.specs = &agg_plan->aggregates;
    agg.input = &plan->schema;
    agg.planner = this;

    std::vector<catalog::Column> out_cols;
    for (const auto& group_expr : stmt.group_by) {
      auto bound = Bind(*group_expr, plan->schema, nullptr);
      if (!bound.ok()) return bound.status();
      agg.group_text.push_back(group_expr->ToString());
      agg.group_types.push_back((*bound)->type);
      out_cols.push_back(
          {group_expr->kind == Expr::Kind::kColumnRef ? group_expr->column
                                                      : group_expr->ToString(),
           (*bound)->type, ""});
      agg_plan->exprs.push_back(std::move(*bound));
    }
    // Bind select items and HAVING now so every aggregate gets a slot; the
    // bound results are re-derived below for the projection.
    for (const parser::SelectItem& item : stmt.items) {
      if (item.expr == nullptr) {
        return Status::InvalidArgument("SELECT * cannot be used with GROUP BY");
      }
      auto bound = Bind(*item.expr, plan->schema, &agg);
      if (!bound.ok()) return bound.status();
    }
    if (stmt.having) {
      auto bound = Bind(*stmt.having, plan->schema, &agg);
      if (!bound.ok()) return bound.status();
    }
    for (size_t i = 0; i < agg_plan->aggregates.size(); ++i) {
      out_cols.push_back(
          {agg.agg_text[i], agg_plan->aggregates[i].result_type, ""});
    }
    agg_plan->schema = Schema(std::move(out_cols));
    const double groups =
        stmt.group_by.empty()
            ? 1.0
            : std::max(1.0, std::min(plan->estimated_rows,
                                     plan->estimated_rows / 10.0));
    agg_plan->estimated_rows = groups;
    agg_plan->estimated_cost =
        plan->estimated_cost + plan->estimated_rows * kCpuPerTuple * 2;
    // Re-point the agg input schema reference (plan moves next).
    agg_plan->children.push_back(std::move(plan));
    agg.input = &agg_plan->children[0]->schema;
    plan = std::move(agg_plan);

    if (stmt.having) {
      auto having = Bind(*stmt.having, plan->children[0]->schema, &agg);
      if (!having.ok()) return having.status();
      auto filter = std::make_unique<PhysicalPlan>();
      filter->kind = PlanKind::kFilter;
      filter->schema = plan->schema;
      filter->predicate = std::move(*having);
      filter->estimated_rows = std::max(1.0, plan->estimated_rows / 3.0);
      filter->estimated_cost = plan->estimated_cost;
      filter->children.push_back(std::move(plan));
      plan = std::move(filter);
    }
  }

  // 8. Projection.
  {
    auto project = std::make_unique<PhysicalPlan>();
    project->kind = PlanKind::kProject;
    std::vector<catalog::Column> out_cols;
    const Schema& in_schema =
        needs_agg ? (agg.input != nullptr ? plan->schema : plan->schema)
                  : plan->schema;
    for (const parser::SelectItem& item : stmt.items) {
      if (item.expr == nullptr) {
        // SELECT *: every input column.
        for (size_t i = 0; i < in_schema.num_columns(); ++i) {
          project->exprs.push_back(
              BoundExpr::Column(i, in_schema.column(i).type));
          out_cols.push_back(in_schema.column(i));
        }
        continue;
      }
      StatusOr<std::unique_ptr<BoundExpr>> bound =
          needs_agg ? Bind(*item.expr, plan->schema, &agg)
                    : Bind(*item.expr, in_schema, nullptr);
      if (!bound.ok()) return bound.status();
      out_cols.push_back({OutputName(item), (*bound)->type, ""});
      project->exprs.push_back(std::move(*bound));
    }
    project->schema = Schema(std::move(out_cols));
    project->estimated_rows = plan->estimated_rows;
    project->estimated_cost =
        plan->estimated_cost + plan->estimated_rows * kCpuPerTuple;
    project->children.push_back(std::move(plan));
    plan = std::move(project);
  }

  // 9. ORDER BY. Keys referencing the projection output (alias, output column
  // name, or a textual select-item match) sort above the projection; in the
  // non-aggregated case, keys over dropped columns are legal too and the sort
  // is placed below the projection instead.
  if (!stmt.order_by.empty()) {
    std::vector<SortKey> above_keys;
    bool all_above = true;
    for (const parser::OrderByItem& item : stmt.order_by) {
      SortKey key;
      key.descending = item.descending;
      bool bound_ok = false;
      if (item.expr->kind == Expr::Kind::kColumnRef) {
        auto idx = plan->schema.Find(ColumnRefName(*item.expr));
        if (idx.ok()) {
          key.expr = BoundExpr::Column(*idx, plan->schema.column(*idx).type);
          bound_ok = true;
        }
      }
      if (!bound_ok) {
        const std::string text = item.expr->ToString();
        for (size_t i = 0; i < stmt.items.size() && !bound_ok; ++i) {
          if (stmt.items[i].expr != nullptr &&
              stmt.items[i].expr->ToString() == text) {
            key.expr = BoundExpr::Column(i, plan->schema.column(i).type);
            bound_ok = true;
          }
        }
      }
      if (!bound_ok) {
        all_above = false;
        break;
      }
      above_keys.push_back(std::move(key));
    }

    auto sort = std::make_unique<PhysicalPlan>();
    sort->kind = PlanKind::kSort;
    if (all_above) {
      sort->schema = plan->schema;
      sort->sort_keys = std::move(above_keys);
      sort->estimated_rows = plan->estimated_rows;
      sort->estimated_cost =
          plan->estimated_cost +
          plan->estimated_rows * std::log2(plan->estimated_rows + 2) *
              kCpuPerTuple;
      sort->children.push_back(std::move(plan));
      plan = std::move(sort);
    } else {
      if (needs_agg) {
        return Status::InvalidArgument(
            "ORDER BY expression must appear in the select list when "
            "GROUP BY is used");
      }
      // Bind every key against the projection input and sort below it.
      PhysicalPlan* project = plan.get();
      const Schema& in_schema = project->children[0]->schema;
      for (const parser::OrderByItem& item : stmt.order_by) {
        SortKey key;
        key.descending = item.descending;
        auto bound = Bind(*item.expr, in_schema, nullptr);
        if (!bound.ok()) {
          return Status::InvalidArgument(StrFormat(
              "cannot resolve ORDER BY expression '%s' (%s)",
              item.expr->ToString().c_str(),
              bound.status().message().c_str()));
        }
        key.expr = std::move(*bound);
        sort->sort_keys.push_back(std::move(key));
      }
      sort->schema = in_schema;
      sort->estimated_rows = project->children[0]->estimated_rows;
      sort->estimated_cost =
          project->children[0]->estimated_cost +
          sort->estimated_rows * std::log2(sort->estimated_rows + 2) *
              kCpuPerTuple;
      sort->children.push_back(std::move(project->children[0]));
      project->children[0] = std::move(sort);
    }
  }

  // 10. LIMIT.
  if (stmt.limit >= 0) {
    auto limit = std::make_unique<PhysicalPlan>();
    limit->kind = PlanKind::kLimit;
    limit->schema = plan->schema;
    limit->limit = stmt.limit;
    limit->estimated_rows =
        std::min<double>(plan->estimated_rows, static_cast<double>(stmt.limit));
    limit->estimated_cost = plan->estimated_cost;
    limit->children.push_back(std::move(plan));
    plan = std::move(limit);
  }

  // 11. Intra-query parallelism (§4.3): tag hash joins with a DOP and split
  // aggregations into merge-over-partial shapes for the staged engine.
  if (options_.max_dop > 1) Parallelize(&plan);
  return plan;
}

int Planner::ChooseDop(double input_rows) const {
  const double unit = std::max(1.0, options_.parallel_min_rows);
  const double by_rows = input_rows / unit;
  if (by_rows >= options_.max_dop) return options_.max_dop;
  return std::max(1, static_cast<int>(by_rows));
}

void Planner::Parallelize(std::unique_ptr<PhysicalPlan>* node_ptr) const {
  PhysicalPlan* node = node_ptr->get();
  for (auto& child : node->children) Parallelize(&child);

  if (node->kind == PlanKind::kHashJoin && !node->left_keys.empty()) {
    // The engine creates `dop` build/probe packets, each fed the hash
    // partition of both inputs that its share of the key space maps to.
    node->dop = ChooseDop(node->children[0]->estimated_rows +
                          node->children[1]->estimated_rows);
    return;
  }

  if (node->kind != PlanKind::kHashAggregate ||
      node->agg_mode != AggMode::kComplete) {
    return;
  }
  const int dop = ChooseDop(node->children[0]->estimated_rows);
  if (dop <= 1) return;

  // Rewrite: the node keeps its place (and output schema) as the merge
  // packet; a new partial node underneath takes the group-by expressions,
  // the aggregate specs, and the original input, and is partitioned on the
  // group keys (round-robin when there are none — the merge then combines
  // the partial states of the single global group).
  auto partial = std::make_unique<PhysicalPlan>();
  partial->kind = PlanKind::kHashAggregate;
  partial->agg_mode = AggMode::kPartial;
  partial->dop = dop;
  partial->children = std::move(node->children);
  partial->exprs = std::move(node->exprs);
  partial->aggregates = std::move(node->aggregates);
  partial->estimated_rows = node->estimated_rows;
  partial->estimated_cost = node->estimated_cost;

  const size_t num_groups =
      node->schema.num_columns() - partial->aggregates.size();
  std::vector<catalog::Column> cols;
  for (size_t i = 0; i < num_groups; ++i) {
    cols.push_back(node->schema.column(i));
  }
  for (size_t i = 0; i < partial->aggregates.size(); ++i) {
    const std::vector<catalog::TypeId> types =
        PartialStateTypes(partial->aggregates[i]);
    for (size_t j = 0; j < types.size(); ++j) {
      cols.push_back({StrFormat("partial%zu_%zu", i, j), types[j], ""});
    }
  }
  partial->schema = catalog::Schema(std::move(cols));

  // The merge node groups on the leading key columns of the partial rows
  // and needs only each aggregate's function and result type; the argument
  // expressions were already evaluated by the partials.
  node->agg_mode = AggMode::kMerge;
  node->exprs.clear();
  node->aggregates.clear();
  for (const AggSpec& a : partial->aggregates) {
    AggSpec copy;
    copy.func = a.func;
    copy.result_type = a.result_type;
    node->aggregates.push_back(std::move(copy));
  }
  node->children.clear();
  node->children.push_back(std::move(partial));
}

// ------------------------------------------------------------- mutations ---

StatusOr<std::unique_ptr<PhysicalPlan>> Planner::PlanInsert(
    const parser::InsertStmt& stmt) {
  auto table_or = catalog_->GetTable(stmt.table);
  if (!table_or.ok()) return table_or.status();
  catalog::TableInfo* table = *table_or;
  const Schema& schema = table->schema;

  auto values = std::make_unique<PhysicalPlan>();
  values->kind = PlanKind::kValues;
  values->schema = schema;
  const Schema empty;
  // A parameterized INSERT keeps *every* row as unevaluated expressions
  // (preserving row order across mixed literal/parameter rows); evaluation —
  // including the numeric widening and type checks below — then happens in
  // frontend::InstantiatePlan once the parameter values are known.
  bool has_params = false;
  for (const auto& row : stmt.rows) {
    for (const auto& cell : row) {
      if (cell->ContainsParam()) has_params = true;
    }
  }
  for (const auto& row : stmt.rows) {
    if (row.size() != schema.num_columns()) {
      return Status::InvalidArgument(
          StrFormat("INSERT expects %zu values, got %zu",
                    schema.num_columns(), row.size()));
    }
    if (has_params) {
      std::vector<std::unique_ptr<BoundExpr>> cells;
      cells.reserve(row.size());
      for (const auto& cell : row) {
        auto bound = Bind(*cell, empty, nullptr);
        if (!bound.ok()) return bound.status();
        cells.push_back(std::move(*bound));
      }
      values->row_exprs.push_back(std::move(cells));
      continue;
    }
    catalog::Tuple tuple;
    for (size_t i = 0; i < row.size(); ++i) {
      auto bound = Bind(*row[i], empty, nullptr);
      if (!bound.ok()) return bound.status();
      auto v = Eval(**bound, {});
      if (!v.ok()) return v.status();
      // Numeric widening into DOUBLE columns.
      Value value = *v;
      if (schema.column(i).type == TypeId::kDouble &&
          value.type() == TypeId::kInt64) {
        value = Value::Double(static_cast<double>(value.int_value()));
      }
      if (!catalog::TypesCompatible(value.type(), schema.column(i).type)) {
        return Status::InvalidArgument(
            StrFormat("value %zu has wrong type for column '%s'", i + 1,
                      schema.column(i).name.c_str()));
      }
      tuple.push_back(std::move(value));
    }
    values->rows.push_back(std::move(tuple));
  }
  values->estimated_rows =
      static_cast<double>(values->rows.size() + values->row_exprs.size());

  auto insert = std::make_unique<PhysicalPlan>();
  insert->kind = PlanKind::kInsert;
  insert->table = table;
  insert->schema = Schema({{"count", TypeId::kInt64, ""}});
  insert->estimated_rows = 1;
  insert->children.push_back(std::move(values));
  return StatusOr<std::unique_ptr<PhysicalPlan>>(std::move(insert));
}

StatusOr<std::unique_ptr<PhysicalPlan>> Planner::PlanDelete(
    const parser::DeleteStmt& stmt) {
  auto table_or = catalog_->GetTable(stmt.table);
  if (!table_or.ok()) return table_or.status();
  auto del = std::make_unique<PhysicalPlan>();
  del->kind = PlanKind::kDelete;
  del->table = *table_or;
  del->schema = Schema({{"count", TypeId::kInt64, ""}});
  if (stmt.where) {
    auto bound = Bind(*stmt.where, (*table_or)->schema, nullptr);
    if (!bound.ok()) return bound.status();
    del->predicate = std::move(*bound);
  }
  del->estimated_rows = 1;
  return StatusOr<std::unique_ptr<PhysicalPlan>>(std::move(del));
}

StatusOr<std::unique_ptr<PhysicalPlan>> Planner::PlanUpdate(
    const parser::UpdateStmt& stmt) {
  auto table_or = catalog_->GetTable(stmt.table);
  if (!table_or.ok()) return table_or.status();
  catalog::TableInfo* table = *table_or;
  auto update = std::make_unique<PhysicalPlan>();
  update->kind = PlanKind::kUpdate;
  update->table = table;
  update->schema = Schema({{"count", TypeId::kInt64, ""}});
  for (const auto& [col, expr] : stmt.assignments) {
    auto idx = table->schema.Find(col);
    if (!idx.ok()) return idx.status();
    auto bound = Bind(*expr, table->schema, nullptr);
    if (!bound.ok()) return bound.status();
    update->update_columns.push_back(*idx);
    update->exprs.push_back(std::move(*bound));
  }
  if (stmt.where) {
    auto bound = Bind(*stmt.where, table->schema, nullptr);
    if (!bound.ok()) return bound.status();
    update->predicate = std::move(*bound);
  }
  update->estimated_rows = 1;
  return StatusOr<std::unique_ptr<PhysicalPlan>>(std::move(update));
}

}  // namespace stagedb::optimizer
