// The optimize stage: binds a parsed statement against the catalog and
// produces a costed physical plan (predicate pushdown, access-path selection,
// greedy join ordering, join-algorithm choice).
#ifndef STAGEDB_OPTIMIZER_PLANNER_H_
#define STAGEDB_OPTIMIZER_PLANNER_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "optimizer/plan.h"
#include "parser/ast.h"

namespace stagedb::optimizer {

/// Planner knobs. The join-algorithm override exists because the paper's join
/// stage hosts all three algorithms (nested-loop, sort-merge, hash) and the
/// ablation benches compare them.
struct PlannerOptions {
  enum class JoinAlgo { kAuto, kHash, kMerge, kNestedLoop };
  JoinAlgo join_algorithm = JoinAlgo::kAuto;
  bool enable_index_scan = true;
  bool enable_predicate_pushdown = true;
  bool enable_join_reorder = true;
  /// Maximum degree of intra-operator parallelism (§4.3) the planner may
  /// assign to a node. 1 (the default) disables the parallelization pass
  /// entirely: plans are byte-identical to pre-DOP plans. Values > 1 only
  /// help on the staged engine (the volcano engine runs every node on the
  /// calling thread), so the Database facade leaves this at 1 in volcano
  /// mode.
  int max_dop = 1;
  /// DOP heuristic: a node gets one partition packet per this many estimated
  /// input rows (clamped to [1, max_dop]), so small inputs never pay the
  /// fan-out/fan-in overhead (docs/DESIGN.md §7).
  double parallel_min_rows = 512.0;
  /// Batch-size hint stamped onto every plan node (PhysicalPlan::batch_hint):
  /// tuples per exchanged morsel in the staged engine's batch ABI. 0 (the
  /// default) stamps nothing — the engine-wide tuples_per_page applies and
  /// plans are byte-identical to pre-hint plans. The ablation_parallel_dop
  /// bench sweeps this to expose the batch-size / responsiveness trade-off
  /// (§4.4c).
  int batch_rows = 0;
};

/// Stateless per-statement planner over a catalog.
class Planner {
 public:
  explicit Planner(catalog::Catalog* catalog, PlannerOptions options = {})
      : catalog_(catalog), options_(options) {}

  /// Plans one statement. When the statement contains '?' parameter
  /// placeholders, `param_types` (indexed by parameter ordinal) supplies the
  /// types the statement was normalized with — the frontend plan cache passes
  /// the types of the literals it extracted — and the result is a plan
  /// *template* that frontend::InstantiatePlan must bind before execution.
  /// Unknown/absent types bind as kNull and are checked at instantiation.
  StatusOr<std::unique_ptr<PhysicalPlan>> Plan(
      const parser::Statement& stmt,
      const std::vector<catalog::TypeId>* param_types = nullptr);

 private:
  struct Relation {
    catalog::TableInfo* table = nullptr;
    std::string name;  // effective (aliased) name
    catalog::Schema schema;
  };

  struct AggContext;

  StatusOr<std::unique_ptr<PhysicalPlan>> PlanSelect(
      const parser::SelectStmt& stmt);
  StatusOr<std::unique_ptr<PhysicalPlan>> PlanInsert(
      const parser::InsertStmt& stmt);
  StatusOr<std::unique_ptr<PhysicalPlan>> PlanDelete(
      const parser::DeleteStmt& stmt);
  StatusOr<std::unique_ptr<PhysicalPlan>> PlanUpdate(
      const parser::UpdateStmt& stmt);

  /// Builds the scan (+filter) plan for one relation given its local
  /// predicates; consumes usable predicates for an index range when possible.
  StatusOr<std::unique_ptr<PhysicalPlan>> PlanBaseRelation(
      const Relation& rel, std::vector<const parser::Expr*> local_conjuncts);

  /// Binds a parser expression against a schema (optionally in aggregate
  /// context).
  StatusOr<std::unique_ptr<BoundExpr>> Bind(const parser::Expr& expr,
                                            const catalog::Schema& schema,
                                            AggContext* agg = nullptr) const;

  /// The normalized type of parameter `index` (kNull when unknown).
  catalog::TypeId ParamType(size_t index) const;

  /// Post-pass over a SELECT plan (max_dop > 1 only): tags hash joins with a
  /// degree of parallelism and rewrites aggregations into a merge node over
  /// a partitioned partial node, so the staged engine can fan each one out
  /// across its stage's worker pool (§4.3 intra-operator parallelism).
  void Parallelize(std::unique_ptr<PhysicalPlan>* node_ptr) const;
  /// The DOP for a node with `input_rows` estimated input rows.
  int ChooseDop(double input_rows) const;
  /// Stamps options_.batch_rows onto every node of the tree (batch_rows > 0
  /// only); runs on every statement kind so prepared/cached templates carry
  /// the hint too.
  void StampBatchHints(PhysicalPlan* node) const;

  catalog::Catalog* catalog_;
  PlannerOptions options_;
  const std::vector<catalog::TypeId>* param_types_ = nullptr;
};

/// Splits an expression on top-level ANDs.
void SplitConjuncts(const parser::Expr* expr,
                    std::vector<const parser::Expr*>* out);

}  // namespace stagedb::optimizer

#endif  // STAGEDB_OPTIMIZER_PLANNER_H_
