#include "parser/ast.h"

#include "common/string_util.h"

namespace stagedb::parser {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNeq:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
  }
  return "?";
}

std::unique_ptr<Expr> Expr::Literal(catalog::Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

std::unique_ptr<Expr> Expr::Param(size_t index) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kParam;
  e->param_index = index;
  return e;
}

std::unique_ptr<Expr> Expr::ColumnRef(std::string table, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kColumnRef;
  e->table = std::move(table);
  e->column = std::move(column);
  return e;
}

std::unique_ptr<Expr> Expr::Unary(UnaryOp op, std::unique_ptr<Expr> operand) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kUnary;
  e->unary_op = op;
  e->left = std::move(operand);
  return e;
}

std::unique_ptr<Expr> Expr::Binary(BinaryOp op, std::unique_ptr<Expr> l,
                                   std::unique_ptr<Expr> r) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kBinary;
  e->binary_op = op;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

std::unique_ptr<Expr> Expr::Aggregate(AggFunc f, std::unique_ptr<Expr> arg) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kAggregate;
  e->agg_func = f;
  e->left = std::move(arg);
  return e;
}

std::unique_ptr<Expr> Expr::Star() {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kStar;
  return e;
}

std::unique_ptr<Expr> Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->literal = literal;
  e->param_index = param_index;
  e->table = table;
  e->column = column;
  e->unary_op = unary_op;
  e->binary_op = binary_op;
  e->agg_func = agg_func;
  if (left) e->left = left->Clone();
  if (right) e->right = right->Clone();
  return e;
}

bool Expr::ContainsAggregate() const {
  if (kind == Kind::kAggregate) return true;
  if (left && left->ContainsAggregate()) return true;
  if (right && right->ContainsAggregate()) return true;
  return false;
}

bool Expr::ContainsParam() const {
  if (kind == Kind::kParam) return true;
  if (left && left->ContainsParam()) return true;
  if (right && right->ContainsParam()) return true;
  return false;
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kLiteral:
      return literal.type() == catalog::TypeId::kVarchar
                 ? "'" + literal.ToString() + "'"
                 : literal.ToString();
    case Kind::kParam:
      return StrFormat("?%zu", param_index);
    case Kind::kColumnRef:
      return table.empty() ? column : table + "." + column;
    case Kind::kUnary:
      return std::string(unary_op == UnaryOp::kNeg ? "-" : "NOT ") +
             left->ToString();
    case Kind::kBinary:
      return "(" + left->ToString() + " " + BinaryOpName(binary_op) + " " +
             right->ToString() + ")";
    case Kind::kAggregate:
      return std::string(AggFuncName(agg_func)) + "(" +
             (left ? left->ToString() : "*") + ")";
    case Kind::kStar:
      return "*";
  }
  return "?";
}

}  // namespace stagedb::parser
