// Abstract syntax tree for the SQL dialect.
#ifndef STAGEDB_PARSER_AST_H_
#define STAGEDB_PARSER_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/types.h"
#include "catalog/value.h"

namespace stagedb::parser {

// ------------------------------------------------------------- Expressions --

enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNeq,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

enum class UnaryOp { kNeg, kNot };

enum class AggFunc { kCount, kSum, kAvg, kMin, kMax };

const char* BinaryOpName(BinaryOp op);
const char* AggFuncName(AggFunc f);

/// Expression node (tagged union style; children owned).
struct Expr {
  enum class Kind {
    kLiteral,
    kParam,  // '?' placeholder, bound at execution time
    kColumnRef,
    kUnary,
    kBinary,
    kAggregate,
    kStar,  // only inside COUNT(*) or SELECT *
  };

  Kind kind;
  // kLiteral
  catalog::Value literal;
  // kParam
  size_t param_index = 0;
  // kColumnRef
  std::string table;   // optional qualifier
  std::string column;
  // kUnary / kBinary
  UnaryOp unary_op = UnaryOp::kNeg;
  BinaryOp binary_op = BinaryOp::kAdd;
  std::unique_ptr<Expr> left;
  std::unique_ptr<Expr> right;
  // kAggregate
  AggFunc agg_func = AggFunc::kCount;
  // aggregate argument is in `left` (null for COUNT(*))

  static std::unique_ptr<Expr> Literal(catalog::Value v);
  static std::unique_ptr<Expr> Param(size_t index);
  static std::unique_ptr<Expr> ColumnRef(std::string table, std::string column);
  static std::unique_ptr<Expr> Unary(UnaryOp op, std::unique_ptr<Expr> operand);
  static std::unique_ptr<Expr> Binary(BinaryOp op, std::unique_ptr<Expr> l,
                                      std::unique_ptr<Expr> r);
  static std::unique_ptr<Expr> Aggregate(AggFunc f, std::unique_ptr<Expr> arg);
  static std::unique_ptr<Expr> Star();

  std::unique_ptr<Expr> Clone() const;
  /// True if any node in the tree is an aggregate call.
  bool ContainsAggregate() const;
  /// True if any node in the tree is a '?' parameter placeholder.
  bool ContainsParam() const;
  std::string ToString() const;
};

// -------------------------------------------------------------- Statements --

struct Statement {
  enum class Kind {
    kCreateTable,
    kCreateIndex,
    kDropTable,
    kInsert,
    kSelect,
    kDelete,
    kUpdate,
    kBegin,
    kCommit,
    kRollback,
  };
  explicit Statement(Kind k) : kind(k) {}
  virtual ~Statement() = default;
  Kind kind;
};

struct ColumnDef {
  std::string name;
  catalog::TypeId type;
};

struct CreateTableStmt : Statement {
  CreateTableStmt() : Statement(Kind::kCreateTable) {}
  std::string table;
  std::vector<ColumnDef> columns;
};

struct CreateIndexStmt : Statement {
  CreateIndexStmt() : Statement(Kind::kCreateIndex) {}
  std::string index;
  std::string table;
  std::string column;
};

struct DropTableStmt : Statement {
  DropTableStmt() : Statement(Kind::kDropTable) {}
  std::string table;
};

struct InsertStmt : Statement {
  InsertStmt() : Statement(Kind::kInsert) {}
  std::string table;
  /// One or more rows of literal expressions.
  std::vector<std::vector<std::unique_ptr<Expr>>> rows;
};

/// FROM-clause table with optional alias.
struct TableRef {
  std::string table;
  std::string alias;  // empty = use table name
  const std::string& EffectiveName() const {
    return alias.empty() ? table : alias;
  }
};

struct JoinClause {
  TableRef table;
  std::unique_ptr<Expr> on;  // join condition
};

struct SelectItem {
  std::unique_ptr<Expr> expr;  // null for *
  std::string alias;
};

struct OrderByItem {
  std::unique_ptr<Expr> expr;
  bool descending = false;
};

struct SelectStmt : Statement {
  SelectStmt() : Statement(Kind::kSelect) {}
  std::vector<SelectItem> items;
  TableRef from;
  std::vector<JoinClause> joins;
  std::unique_ptr<Expr> where;
  std::vector<std::unique_ptr<Expr>> group_by;
  std::unique_ptr<Expr> having;
  std::vector<OrderByItem> order_by;
  int64_t limit = -1;  // -1 = no limit
};

struct DeleteStmt : Statement {
  DeleteStmt() : Statement(Kind::kDelete) {}
  std::string table;
  std::unique_ptr<Expr> where;
};

struct UpdateStmt : Statement {
  UpdateStmt() : Statement(Kind::kUpdate) {}
  std::string table;
  std::vector<std::pair<std::string, std::unique_ptr<Expr>>> assignments;
  std::unique_ptr<Expr> where;
};

struct BeginStmt : Statement {
  BeginStmt() : Statement(Kind::kBegin) {}
};
struct CommitStmt : Statement {
  CommitStmt() : Statement(Kind::kCommit) {}
};
struct RollbackStmt : Statement {
  RollbackStmt() : Statement(Kind::kRollback) {}
};

}  // namespace stagedb::parser

#endif  // STAGEDB_PARSER_AST_H_
