#include "parser/lexer.h"

#include <cctype>
#include <set>

#include "common/string_util.h"

namespace stagedb::parser {

namespace {
const std::set<std::string>& Keywords() {
  static const std::set<std::string> kKeywords = {
      "SELECT", "FROM",   "WHERE",  "GROUP",    "BY",     "ORDER",  "LIMIT",
      "ASC",    "DESC",   "AS",     "AND",      "OR",     "NOT",    "JOIN",
      "INNER",  "ON",     "CREATE", "TABLE",    "INDEX",  "DROP",   "INSERT",
      "INTO",   "VALUES", "DELETE", "UPDATE",   "SET",    "NULL",   "TRUE",
      "FALSE",  "COUNT",  "SUM",    "AVG",      "MIN",    "MAX",    "INTEGER",
      "BIGINT", "DOUBLE", "FLOAT",  "VARCHAR",  "TEXT",   "BOOLEAN",
      "BEGIN",  "COMMIT", "ROLLBACK", "ABORT",  "HAVING", "DISTINCT",
  };
  return kKeywords;
}
}  // namespace

bool Lexer::IsReservedKeyword(const std::string& upper) {
  return Keywords().count(upper) > 0;
}

StatusOr<std::vector<Token>> Lexer::Tokenize() {
  std::vector<Token> tokens;
  while (true) {
    auto tok = Next();
    if (!tok.ok()) return tok.status();
    const bool eof = tok->type == TokenType::kEof;
    tokens.push_back(std::move(*tok));
    if (eof) break;
  }
  return tokens;
}

StatusOr<Token> Lexer::Next() {
  // Skip whitespace and -- comments.
  while (pos_ < input_.size()) {
    if (std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    } else if (Peek() == '-' && Peek(1) == '-') {
      while (pos_ < input_.size() && input_[pos_] != '\n') ++pos_;
    } else {
      break;
    }
  }
  Token tok;
  tok.position = pos_;
  if (pos_ >= input_.size()) {
    tok.type = TokenType::kEof;
    return tok;
  }
  const char c = input_[pos_];

  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
    size_t start = pos_;
    while (pos_ < input_.size() &&
           (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '_')) {
      ++pos_;
    }
    std::string word = input_.substr(start, pos_ - start);
    std::string upper = ToUpper(word);
    if (Keywords().count(upper)) {
      tok.type = TokenType::kKeyword;
      tok.text = upper;
    } else {
      // Only *unquoted* identifiers fold; string literals and quoted
      // identifiers below keep their bytes exactly.
      tok.type = TokenType::kIdentifier;
      tok.text = ToLower(word);  // identifiers are case-insensitive
    }
    return tok;
  }

  if (c == '"') {
    // Double-quoted identifier: case-preserving, never matched against
    // keywords ("" escapes an embedded quote).
    ++pos_;
    std::string s;
    while (pos_ < input_.size()) {
      if (input_[pos_] == '"') {
        if (Peek(1) == '"') {
          s += '"';
          pos_ += 2;
          continue;
        }
        ++pos_;
        if (s.empty()) {
          return Status::InvalidArgument(
              StrFormat("empty quoted identifier at %zu", tok.position));
        }
        tok.type = TokenType::kIdentifier;
        tok.quoted = true;
        tok.text = std::move(s);
        return tok;
      }
      s += input_[pos_++];
    }
    return Status::InvalidArgument(
        StrFormat("unterminated quoted identifier at %zu", tok.position));
  }

  if (c == '?') {
    ++pos_;
    tok.type = TokenType::kParam;
    tok.int_value = next_param_ordinal_++;
    return tok;
  }

  if (std::isdigit(static_cast<unsigned char>(c))) {
    size_t start = pos_;
    bool is_double = false;
    while (pos_ < input_.size() &&
           std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      is_double = true;
      ++pos_;
      while (pos_ < input_.size() &&
             std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
        ++pos_;
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      size_t save = pos_;
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (std::isdigit(static_cast<unsigned char>(Peek()))) {
        is_double = true;
        while (pos_ < input_.size() &&
               std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
          ++pos_;
        }
      } else {
        pos_ = save;
      }
    }
    const std::string num = input_.substr(start, pos_ - start);
    if (is_double) {
      tok.type = TokenType::kDoubleLiteral;
      tok.double_value = std::stod(num);
    } else {
      tok.type = TokenType::kIntLiteral;
      try {
        tok.int_value = std::stoll(num);
      } catch (...) {
        return Status::InvalidArgument(
            StrFormat("integer literal out of range at %zu", start));
      }
    }
    return tok;
  }

  if (c == '\'') {
    ++pos_;
    std::string s;
    while (pos_ < input_.size()) {
      if (input_[pos_] == '\'') {
        if (Peek(1) == '\'') {  // escaped quote
          s += '\'';
          pos_ += 2;
          continue;
        }
        ++pos_;
        tok.type = TokenType::kStringLiteral;
        tok.text = std::move(s);
        return tok;
      }
      s += input_[pos_++];
    }
    return Status::InvalidArgument(
        StrFormat("unterminated string literal at %zu", tok.position));
  }

  ++pos_;
  switch (c) {
    case ',':
      tok.type = TokenType::kComma;
      return tok;
    case '(':
      tok.type = TokenType::kLParen;
      return tok;
    case ')':
      tok.type = TokenType::kRParen;
      return tok;
    case ';':
      tok.type = TokenType::kSemicolon;
      return tok;
    case '.':
      tok.type = TokenType::kDot;
      return tok;
    case '*':
      tok.type = TokenType::kStar;
      return tok;
    case '+':
      tok.type = TokenType::kPlus;
      return tok;
    case '-':
      tok.type = TokenType::kMinus;
      return tok;
    case '/':
      tok.type = TokenType::kSlash;
      return tok;
    case '%':
      tok.type = TokenType::kPercent;
      return tok;
    case '=':
      tok.type = TokenType::kEq;
      return tok;
    case '!':
      if (Peek() == '=') {
        ++pos_;
        tok.type = TokenType::kNeq;
        return tok;
      }
      break;
    case '<':
      if (Peek() == '=') {
        ++pos_;
        tok.type = TokenType::kLe;
      } else if (Peek() == '>') {
        ++pos_;
        tok.type = TokenType::kNeq;
      } else {
        tok.type = TokenType::kLt;
      }
      return tok;
    case '>':
      if (Peek() == '=') {
        ++pos_;
        tok.type = TokenType::kGe;
      } else {
        tok.type = TokenType::kGt;
      }
      return tok;
    default:
      break;
  }
  return Status::InvalidArgument(
      StrFormat("unexpected character '%c' at %zu", c, tok.position));
}

}  // namespace stagedb::parser
