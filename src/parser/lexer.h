// Hand-written SQL lexer.
#ifndef STAGEDB_PARSER_LEXER_H_
#define STAGEDB_PARSER_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "parser/token.h"

namespace stagedb::parser {

/// Tokenizes a SQL string. Keywords are recognized case-insensitively and
/// normalized to upper case; unquoted identifiers fold to lower case, while
/// string literals and double-quoted identifiers preserve case exactly.
/// '?' lexes as a parameter placeholder with ordinals assigned in input
/// order (prepared statements and the frontend normalizer).
class Lexer {
 public:
  explicit Lexer(std::string input) : input_(std::move(input)) {}

  /// Produces the full token stream (ending with kEof).
  StatusOr<std::vector<Token>> Tokenize();

  /// True if `upper` is a reserved SQL keyword of this dialect.
  static bool IsReservedKeyword(const std::string& upper);

 private:
  StatusOr<Token> Next();
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
  }

  std::string input_;
  size_t pos_ = 0;
  int64_t next_param_ordinal_ = 0;
};

}  // namespace stagedb::parser

#endif  // STAGEDB_PARSER_LEXER_H_
