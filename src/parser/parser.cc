#include "parser/parser.h"

#include "common/string_util.h"

namespace stagedb::parser {

using catalog::TypeId;
using catalog::Value;

StatusOr<std::unique_ptr<Statement>> ParseStatement(
    const std::string& sql, catalog::SymbolTable* symbols) {
  Lexer lexer(sql);
  auto tokens = lexer.Tokenize();
  if (!tokens.ok()) return tokens.status();
  internal::Parser parser(std::move(*tokens), symbols);
  return parser.ParseSingle();
}

StatusOr<std::vector<std::unique_ptr<Statement>>> ParseScript(
    const std::string& sql, catalog::SymbolTable* symbols) {
  Lexer lexer(sql);
  auto tokens = lexer.Tokenize();
  if (!tokens.ok()) return tokens.status();
  internal::Parser parser(std::move(*tokens), symbols);
  return parser.ParseAll();
}

namespace internal {

const Token& Parser::Peek(size_t ahead) const {
  const size_t i = pos_ + ahead;
  return i < tokens_.size() ? tokens_[i] : tokens_.back();
}

Token Parser::Advance() {
  Token t = Peek();
  if (pos_ < tokens_.size() - 1) ++pos_;
  return t;
}

bool Parser::Match(TokenType t) {
  if (Peek().type == t) {
    Advance();
    return true;
  }
  return false;
}

bool Parser::MatchKeyword(const char* kw) {
  if (Peek().IsKeyword(kw)) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::Expect(TokenType t, const char* what) {
  if (Peek().type != t) {
    return Status::InvalidArgument(
        StrFormat("expected %s at position %zu (got '%s')", what,
                  Peek().position, Peek().text.c_str()));
  }
  Advance();
  return Status::OK();
}

Status Parser::ExpectKeyword(const char* kw) {
  if (!Peek().IsKeyword(kw)) {
    return Status::InvalidArgument(
        StrFormat("expected %s at position %zu", kw, Peek().position));
  }
  Advance();
  return Status::OK();
}

std::string Parser::Intern(const std::string& name) {
  if (symbols_ != nullptr) symbols_->Intern(name);
  return name;
}

StatusOr<std::unique_ptr<Statement>> Parser::ParseSingle() {
  auto stmt = ParseStatementInner();
  if (!stmt.ok()) return stmt.status();
  Match(TokenType::kSemicolon);
  if (Peek().type != TokenType::kEof) {
    return Status::InvalidArgument(
        StrFormat("trailing input at position %zu", Peek().position));
  }
  return stmt;
}

StatusOr<std::vector<std::unique_ptr<Statement>>> Parser::ParseAll() {
  std::vector<std::unique_ptr<Statement>> out;
  while (Peek().type != TokenType::kEof) {
    auto stmt = ParseStatementInner();
    if (!stmt.ok()) return stmt.status();
    out.push_back(std::move(*stmt));
    if (!Match(TokenType::kSemicolon) && Peek().type != TokenType::kEof) {
      return Status::InvalidArgument(
          StrFormat("expected ';' at position %zu", Peek().position));
    }
  }
  return out;
}

StatusOr<std::unique_ptr<Statement>> Parser::ParseStatementInner() {
  const Token& t = Peek();
  if (t.IsKeyword("CREATE")) return ParseCreate();
  if (t.IsKeyword("DROP")) return ParseDrop();
  if (t.IsKeyword("INSERT")) return ParseInsert();
  if (t.IsKeyword("SELECT")) return ParseSelect();
  if (t.IsKeyword("DELETE")) return ParseDelete();
  if (t.IsKeyword("UPDATE")) return ParseUpdate();
  if (MatchKeyword("BEGIN")) {
    return StatusOr<std::unique_ptr<Statement>>(std::make_unique<BeginStmt>());
  }
  if (MatchKeyword("COMMIT")) {
    return StatusOr<std::unique_ptr<Statement>>(std::make_unique<CommitStmt>());
  }
  if (MatchKeyword("ROLLBACK") || MatchKeyword("ABORT")) {
    return StatusOr<std::unique_ptr<Statement>>(
        std::make_unique<RollbackStmt>());
  }
  return Status::InvalidArgument(
      StrFormat("unknown statement at position %zu", t.position));
}

StatusOr<TypeId> Parser::ParseType() {
  const Token t = Advance();
  if (t.type != TokenType::kKeyword) {
    return Status::InvalidArgument(
        StrFormat("expected type name at position %zu", t.position));
  }
  if (t.text == "INTEGER" || t.text == "BIGINT") return TypeId::kInt64;
  if (t.text == "DOUBLE" || t.text == "FLOAT") return TypeId::kDouble;
  if (t.text == "VARCHAR" || t.text == "TEXT") {
    // Optional length, e.g. VARCHAR(52); length is advisory.
    if (Match(TokenType::kLParen)) {
      if (Peek().type != TokenType::kIntLiteral) {
        return Status::InvalidArgument("expected length after VARCHAR(");
      }
      Advance();
      STAGEDB_RETURN_IF_ERROR(Expect(TokenType::kRParen, ")"));
    }
    return TypeId::kVarchar;
  }
  if (t.text == "BOOLEAN") return TypeId::kBool;
  return Status::InvalidArgument(
      StrFormat("unknown type '%s'", t.text.c_str()));
}

StatusOr<std::unique_ptr<Statement>> Parser::ParseCreate() {
  STAGEDB_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
  if (MatchKeyword("TABLE")) {
    auto stmt = std::make_unique<CreateTableStmt>();
    if (Peek().type != TokenType::kIdentifier) {
      return Status::InvalidArgument("expected table name");
    }
    stmt->table = Intern(Advance().text);
    STAGEDB_RETURN_IF_ERROR(Expect(TokenType::kLParen, "("));
    do {
      if (Peek().type != TokenType::kIdentifier) {
        return Status::InvalidArgument("expected column name");
      }
      ColumnDef def;
      def.name = Intern(Advance().text);
      auto type = ParseType();
      if (!type.ok()) return type.status();
      def.type = *type;
      stmt->columns.push_back(std::move(def));
    } while (Match(TokenType::kComma));
    STAGEDB_RETURN_IF_ERROR(Expect(TokenType::kRParen, ")"));
    return StatusOr<std::unique_ptr<Statement>>(std::move(stmt));
  }
  if (MatchKeyword("INDEX")) {
    auto stmt = std::make_unique<CreateIndexStmt>();
    if (Peek().type != TokenType::kIdentifier) {
      return Status::InvalidArgument("expected index name");
    }
    stmt->index = Intern(Advance().text);
    STAGEDB_RETURN_IF_ERROR(ExpectKeyword("ON"));
    if (Peek().type != TokenType::kIdentifier) {
      return Status::InvalidArgument("expected table name");
    }
    stmt->table = Intern(Advance().text);
    STAGEDB_RETURN_IF_ERROR(Expect(TokenType::kLParen, "("));
    if (Peek().type != TokenType::kIdentifier) {
      return Status::InvalidArgument("expected column name");
    }
    stmt->column = Intern(Advance().text);
    STAGEDB_RETURN_IF_ERROR(Expect(TokenType::kRParen, ")"));
    return StatusOr<std::unique_ptr<Statement>>(std::move(stmt));
  }
  return Status::InvalidArgument("expected TABLE or INDEX after CREATE");
}

StatusOr<std::unique_ptr<Statement>> Parser::ParseDrop() {
  STAGEDB_RETURN_IF_ERROR(ExpectKeyword("DROP"));
  STAGEDB_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
  auto stmt = std::make_unique<DropTableStmt>();
  if (Peek().type != TokenType::kIdentifier) {
    return Status::InvalidArgument("expected table name");
  }
  stmt->table = Intern(Advance().text);
  return StatusOr<std::unique_ptr<Statement>>(std::move(stmt));
}

StatusOr<std::unique_ptr<Statement>> Parser::ParseInsert() {
  STAGEDB_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
  STAGEDB_RETURN_IF_ERROR(ExpectKeyword("INTO"));
  auto stmt = std::make_unique<InsertStmt>();
  if (Peek().type != TokenType::kIdentifier) {
    return Status::InvalidArgument("expected table name");
  }
  stmt->table = Intern(Advance().text);
  STAGEDB_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
  do {
    STAGEDB_RETURN_IF_ERROR(Expect(TokenType::kLParen, "("));
    std::vector<std::unique_ptr<Expr>> row;
    do {
      auto e = ParseExpr();
      if (!e.ok()) return e.status();
      row.push_back(std::move(*e));
    } while (Match(TokenType::kComma));
    STAGEDB_RETURN_IF_ERROR(Expect(TokenType::kRParen, ")"));
    stmt->rows.push_back(std::move(row));
  } while (Match(TokenType::kComma));
  return StatusOr<std::unique_ptr<Statement>>(std::move(stmt));
}

StatusOr<TableRef> Parser::ParseTableRef() {
  if (Peek().type != TokenType::kIdentifier) {
    return Status::InvalidArgument(
        StrFormat("expected table name at position %zu", Peek().position));
  }
  TableRef ref;
  ref.table = Intern(Advance().text);
  if (MatchKeyword("AS")) {
    if (Peek().type != TokenType::kIdentifier) {
      return Status::InvalidArgument("expected alias after AS");
    }
    ref.alias = Intern(Advance().text);
  } else if (Peek().type == TokenType::kIdentifier) {
    ref.alias = Intern(Advance().text);
  }
  return ref;
}

StatusOr<std::unique_ptr<Statement>> Parser::ParseSelect() {
  STAGEDB_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
  auto stmt = std::make_unique<SelectStmt>();
  MatchKeyword("DISTINCT");  // accepted and ignored (documented)
  do {
    SelectItem item;
    if (Peek().type == TokenType::kStar) {
      Advance();
      item.expr = nullptr;  // SELECT *
    } else {
      auto e = ParseExpr();
      if (!e.ok()) return e.status();
      item.expr = std::move(*e);
      if (MatchKeyword("AS")) {
        if (Peek().type != TokenType::kIdentifier) {
          return Status::InvalidArgument("expected alias after AS");
        }
        item.alias = Intern(Advance().text);
      }
    }
    stmt->items.push_back(std::move(item));
  } while (Match(TokenType::kComma));

  STAGEDB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
  auto from = ParseTableRef();
  if (!from.ok()) return from.status();
  stmt->from = std::move(*from);

  while (Peek().IsKeyword("JOIN") || Peek().IsKeyword("INNER")) {
    MatchKeyword("INNER");
    STAGEDB_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
    JoinClause join;
    auto ref = ParseTableRef();
    if (!ref.ok()) return ref.status();
    join.table = std::move(*ref);
    STAGEDB_RETURN_IF_ERROR(ExpectKeyword("ON"));
    auto on = ParseExpr();
    if (!on.ok()) return on.status();
    join.on = std::move(*on);
    stmt->joins.push_back(std::move(join));
  }

  if (MatchKeyword("WHERE")) {
    auto e = ParseExpr();
    if (!e.ok()) return e.status();
    stmt->where = std::move(*e);
  }
  if (MatchKeyword("GROUP")) {
    STAGEDB_RETURN_IF_ERROR(ExpectKeyword("BY"));
    do {
      auto e = ParseExpr();
      if (!e.ok()) return e.status();
      stmt->group_by.push_back(std::move(*e));
    } while (Match(TokenType::kComma));
  }
  if (MatchKeyword("HAVING")) {
    auto e = ParseExpr();
    if (!e.ok()) return e.status();
    stmt->having = std::move(*e);
  }
  if (MatchKeyword("ORDER")) {
    STAGEDB_RETURN_IF_ERROR(ExpectKeyword("BY"));
    do {
      OrderByItem item;
      auto e = ParseExpr();
      if (!e.ok()) return e.status();
      item.expr = std::move(*e);
      if (MatchKeyword("DESC")) {
        item.descending = true;
      } else {
        MatchKeyword("ASC");
      }
      stmt->order_by.push_back(std::move(item));
    } while (Match(TokenType::kComma));
  }
  if (MatchKeyword("LIMIT")) {
    if (Peek().type != TokenType::kIntLiteral) {
      return Status::InvalidArgument("expected integer after LIMIT");
    }
    stmt->limit = Advance().int_value;
    if (stmt->limit < 0) {
      return Status::InvalidArgument("LIMIT must be non-negative");
    }
  }
  return StatusOr<std::unique_ptr<Statement>>(std::move(stmt));
}

StatusOr<std::unique_ptr<Statement>> Parser::ParseDelete() {
  STAGEDB_RETURN_IF_ERROR(ExpectKeyword("DELETE"));
  STAGEDB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
  auto stmt = std::make_unique<DeleteStmt>();
  if (Peek().type != TokenType::kIdentifier) {
    return Status::InvalidArgument("expected table name");
  }
  stmt->table = Intern(Advance().text);
  if (MatchKeyword("WHERE")) {
    auto e = ParseExpr();
    if (!e.ok()) return e.status();
    stmt->where = std::move(*e);
  }
  return StatusOr<std::unique_ptr<Statement>>(std::move(stmt));
}

StatusOr<std::unique_ptr<Statement>> Parser::ParseUpdate() {
  STAGEDB_RETURN_IF_ERROR(ExpectKeyword("UPDATE"));
  auto stmt = std::make_unique<UpdateStmt>();
  if (Peek().type != TokenType::kIdentifier) {
    return Status::InvalidArgument("expected table name");
  }
  stmt->table = Intern(Advance().text);
  STAGEDB_RETURN_IF_ERROR(ExpectKeyword("SET"));
  do {
    if (Peek().type != TokenType::kIdentifier) {
      return Status::InvalidArgument("expected column name in SET");
    }
    std::string col = Intern(Advance().text);
    STAGEDB_RETURN_IF_ERROR(Expect(TokenType::kEq, "="));
    auto e = ParseExpr();
    if (!e.ok()) return e.status();
    stmt->assignments.emplace_back(std::move(col), std::move(*e));
  } while (Match(TokenType::kComma));
  if (MatchKeyword("WHERE")) {
    auto e = ParseExpr();
    if (!e.ok()) return e.status();
    stmt->where = std::move(*e);
  }
  return StatusOr<std::unique_ptr<Statement>>(std::move(stmt));
}

// ------------------------------------------------------------- Expressions --

StatusOr<std::unique_ptr<Expr>> Parser::ParseExpr() { return ParseOr(); }

StatusOr<std::unique_ptr<Expr>> Parser::ParseOr() {
  auto left = ParseAnd();
  if (!left.ok()) return left;
  while (MatchKeyword("OR")) {
    auto right = ParseAnd();
    if (!right.ok()) return right;
    left = Expr::Binary(BinaryOp::kOr, std::move(*left), std::move(*right));
  }
  return left;
}

StatusOr<std::unique_ptr<Expr>> Parser::ParseAnd() {
  auto left = ParseNot();
  if (!left.ok()) return left;
  while (MatchKeyword("AND")) {
    auto right = ParseNot();
    if (!right.ok()) return right;
    left = Expr::Binary(BinaryOp::kAnd, std::move(*left), std::move(*right));
  }
  return left;
}

StatusOr<std::unique_ptr<Expr>> Parser::ParseNot() {
  if (MatchKeyword("NOT")) {
    auto operand = ParseNot();
    if (!operand.ok()) return operand;
    return Expr::Unary(UnaryOp::kNot, std::move(*operand));
  }
  return ParseComparison();
}

StatusOr<std::unique_ptr<Expr>> Parser::ParseComparison() {
  auto left = ParseAdditive();
  if (!left.ok()) return left;
  BinaryOp op;
  switch (Peek().type) {
    case TokenType::kEq:
      op = BinaryOp::kEq;
      break;
    case TokenType::kNeq:
      op = BinaryOp::kNeq;
      break;
    case TokenType::kLt:
      op = BinaryOp::kLt;
      break;
    case TokenType::kLe:
      op = BinaryOp::kLe;
      break;
    case TokenType::kGt:
      op = BinaryOp::kGt;
      break;
    case TokenType::kGe:
      op = BinaryOp::kGe;
      break;
    default:
      return left;
  }
  Advance();
  auto right = ParseAdditive();
  if (!right.ok()) return right;
  return Expr::Binary(op, std::move(*left), std::move(*right));
}

StatusOr<std::unique_ptr<Expr>> Parser::ParseAdditive() {
  auto left = ParseMultiplicative();
  if (!left.ok()) return left;
  while (true) {
    BinaryOp op;
    if (Peek().type == TokenType::kPlus) {
      op = BinaryOp::kAdd;
    } else if (Peek().type == TokenType::kMinus) {
      op = BinaryOp::kSub;
    } else {
      return left;
    }
    Advance();
    auto right = ParseMultiplicative();
    if (!right.ok()) return right;
    left = Expr::Binary(op, std::move(*left), std::move(*right));
  }
}

StatusOr<std::unique_ptr<Expr>> Parser::ParseMultiplicative() {
  auto left = ParseUnary();
  if (!left.ok()) return left;
  while (true) {
    BinaryOp op;
    if (Peek().type == TokenType::kStar) {
      op = BinaryOp::kMul;
    } else if (Peek().type == TokenType::kSlash) {
      op = BinaryOp::kDiv;
    } else if (Peek().type == TokenType::kPercent) {
      op = BinaryOp::kMod;
    } else {
      return left;
    }
    Advance();
    auto right = ParseUnary();
    if (!right.ok()) return right;
    left = Expr::Binary(op, std::move(*left), std::move(*right));
  }
}

StatusOr<std::unique_ptr<Expr>> Parser::ParseUnary() {
  if (Match(TokenType::kMinus)) {
    auto operand = ParseUnary();
    if (!operand.ok()) return operand;
    return Expr::Unary(UnaryOp::kNeg, std::move(*operand));
  }
  if (Match(TokenType::kPlus)) return ParseUnary();
  return ParsePrimary();
}

StatusOr<std::unique_ptr<Expr>> Parser::ParsePrimary() {
  const Token& t = Peek();
  switch (t.type) {
    case TokenType::kIntLiteral: {
      const int64_t v = Advance().int_value;
      return Expr::Literal(Value::Int(v));
    }
    case TokenType::kDoubleLiteral: {
      const double v = Advance().double_value;
      return Expr::Literal(Value::Double(v));
    }
    case TokenType::kStringLiteral: {
      std::string s = Advance().text;
      return Expr::Literal(Value::Varchar(std::move(s)));
    }
    case TokenType::kParam: {
      const int64_t ordinal = Advance().int_value;
      return Expr::Param(static_cast<size_t>(ordinal));
    }
    case TokenType::kLParen: {
      Advance();
      auto e = ParseExpr();
      if (!e.ok()) return e;
      STAGEDB_RETURN_IF_ERROR(Expect(TokenType::kRParen, ")"));
      return e;
    }
    case TokenType::kKeyword: {
      if (MatchKeyword("NULL")) return Expr::Literal(Value::Null());
      if (MatchKeyword("TRUE")) return Expr::Literal(Value::Bool(true));
      if (MatchKeyword("FALSE")) return Expr::Literal(Value::Bool(false));
      // Aggregate functions.
      AggFunc f;
      if (t.IsKeyword("COUNT")) {
        f = AggFunc::kCount;
      } else if (t.IsKeyword("SUM")) {
        f = AggFunc::kSum;
      } else if (t.IsKeyword("AVG")) {
        f = AggFunc::kAvg;
      } else if (t.IsKeyword("MIN")) {
        f = AggFunc::kMin;
      } else if (t.IsKeyword("MAX")) {
        f = AggFunc::kMax;
      } else {
        return Status::InvalidArgument(
            StrFormat("unexpected keyword '%s' at position %zu",
                      t.text.c_str(), t.position));
      }
      Advance();
      STAGEDB_RETURN_IF_ERROR(Expect(TokenType::kLParen, "("));
      std::unique_ptr<Expr> arg;
      if (Peek().type == TokenType::kStar) {
        if (f != AggFunc::kCount) {
          return Status::InvalidArgument("only COUNT accepts *");
        }
        Advance();
      } else {
        auto e = ParseExpr();
        if (!e.ok()) return e;
        arg = std::move(*e);
      }
      STAGEDB_RETURN_IF_ERROR(Expect(TokenType::kRParen, ")"));
      return Expr::Aggregate(f, std::move(arg));
    }
    case TokenType::kIdentifier: {
      std::string first = Intern(Advance().text);
      if (Match(TokenType::kDot)) {
        if (Peek().type != TokenType::kIdentifier) {
          return Status::InvalidArgument("expected column after '.'");
        }
        std::string col = Intern(Advance().text);
        return Expr::ColumnRef(std::move(first), std::move(col));
      }
      return Expr::ColumnRef("", std::move(first));
    }
    default:
      return Status::InvalidArgument(
          StrFormat("unexpected token at position %zu", t.position));
  }
}

}  // namespace internal
}  // namespace stagedb::parser
