// Recursive-descent SQL parser. This is the code the paper's "parse" stage
// executes: tokenizing, syntax checking, and symbol-table interning of every
// identifier (its common working set).
#ifndef STAGEDB_PARSER_PARSER_H_
#define STAGEDB_PARSER_PARSER_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/symbol_table.h"
#include "common/status.h"
#include "parser/ast.h"
#include "parser/lexer.h"

namespace stagedb::parser {

/// Parses one SQL statement (a trailing semicolon is allowed).
/// If `symbols` is given, every identifier is interned through it.
StatusOr<std::unique_ptr<Statement>> ParseStatement(
    const std::string& sql, catalog::SymbolTable* symbols = nullptr);

/// Parses a script of semicolon-separated statements.
StatusOr<std::vector<std::unique_ptr<Statement>>> ParseScript(
    const std::string& sql, catalog::SymbolTable* symbols = nullptr);

namespace internal {

/// The actual parser; exposed for tests.
class Parser {
 public:
  Parser(std::vector<Token> tokens, catalog::SymbolTable* symbols)
      : tokens_(std::move(tokens)), symbols_(symbols) {}

  StatusOr<std::unique_ptr<Statement>> ParseSingle();
  StatusOr<std::vector<std::unique_ptr<Statement>>> ParseAll();

 private:
  const Token& Peek(size_t ahead = 0) const;
  Token Advance();
  bool Match(TokenType t);
  bool MatchKeyword(const char* kw);
  Status Expect(TokenType t, const char* what);
  Status ExpectKeyword(const char* kw);
  std::string Intern(const std::string& name);

  StatusOr<std::unique_ptr<Statement>> ParseStatementInner();
  StatusOr<std::unique_ptr<Statement>> ParseCreate();
  StatusOr<std::unique_ptr<Statement>> ParseDrop();
  StatusOr<std::unique_ptr<Statement>> ParseInsert();
  StatusOr<std::unique_ptr<Statement>> ParseSelect();
  StatusOr<std::unique_ptr<Statement>> ParseDelete();
  StatusOr<std::unique_ptr<Statement>> ParseUpdate();
  StatusOr<catalog::TypeId> ParseType();
  StatusOr<TableRef> ParseTableRef();

  // Expression precedence climbing: OR < AND < NOT < cmp < add < mul < unary.
  StatusOr<std::unique_ptr<Expr>> ParseExpr();
  StatusOr<std::unique_ptr<Expr>> ParseOr();
  StatusOr<std::unique_ptr<Expr>> ParseAnd();
  StatusOr<std::unique_ptr<Expr>> ParseNot();
  StatusOr<std::unique_ptr<Expr>> ParseComparison();
  StatusOr<std::unique_ptr<Expr>> ParseAdditive();
  StatusOr<std::unique_ptr<Expr>> ParseMultiplicative();
  StatusOr<std::unique_ptr<Expr>> ParseUnary();
  StatusOr<std::unique_ptr<Expr>> ParsePrimary();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  catalog::SymbolTable* symbols_;
};

}  // namespace internal
}  // namespace stagedb::parser

#endif  // STAGEDB_PARSER_PARSER_H_
