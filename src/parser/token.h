// SQL tokens.
#ifndef STAGEDB_PARSER_TOKEN_H_
#define STAGEDB_PARSER_TOKEN_H_

#include <cstdint>
#include <string>

namespace stagedb::parser {

enum class TokenType {
  kEof,
  kIdentifier,
  kKeyword,
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,
  kParam,  // '?' placeholder; int_value holds the 0-based ordinal
  // punctuation / operators
  kComma,
  kLParen,
  kRParen,
  kSemicolon,
  kDot,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kEq,
  kNeq,
  kLt,
  kLe,
  kGt,
  kGe,
};

struct Token {
  TokenType type = TokenType::kEof;
  std::string text;     // identifier/keyword text (keywords upper-cased)
  int64_t int_value = 0;
  double double_value = 0.0;
  size_t position = 0;  // byte offset in the input, for error messages
  /// Double-quoted ("...") identifier: case preserved, never a keyword.
  bool quoted = false;

  bool IsKeyword(const char* kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
};

}  // namespace stagedb::parser

#endif  // STAGEDB_PARSER_TOKEN_H_
