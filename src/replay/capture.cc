#include "replay/capture.h"

#include <cmath>

#include "exec/executor.h"
#include "optimizer/planner.h"
#include "parser/parser.h"

namespace stagedb::replay {

namespace {

int CountPlanNodes(const optimizer::PhysicalPlan& plan) {
  int n = 1;
  for (const auto& child : plan.children) n += CountPlanNodes(*child);
  return n;
}

simcache::ModuleId ModuleForKind(optimizer::PlanKind kind) {
  using optimizer::PlanKind;
  switch (kind) {
    case PlanKind::kSeqScan:
      return kFscan;
    case PlanKind::kIndexScan:
      return kIscan;
    case PlanKind::kSort:
      return kSort;
    case PlanKind::kNestedLoopJoin:
    case PlanKind::kHashJoin:
    case PlanKind::kMergeJoin:
      return kJoin;
    case PlanKind::kHashAggregate:
      return kAggr;
    default:
      return kQual;
  }
}

// Per-tuple instruction-count multiplier relative to a plain scan: joins and
// sorts do substantially more work per tuple (hashing, comparisons) than
// decode-and-qualify operators.
double OpCostMultiplier(optimizer::PlanKind kind) {
  using optimizer::PlanKind;
  switch (kind) {
    case PlanKind::kNestedLoopJoin:
    case PlanKind::kHashJoin:
    case PlanKind::kMergeJoin:
    case PlanKind::kSort:
      return 4.0;
    case PlanKind::kHashAggregate:
      return 2.0;
    default:
      return 1.0;
  }
}

}  // namespace

StatusOr<QueryTrace> CaptureQueryTrace(catalog::Catalog* catalog,
                                       const std::string& sql,
                                       const CaptureCostModel& cost,
                                       bool include_frontend) {
  QueryTrace trace;

  // Parse (real work: tokens + symbol interning).
  auto stmt = parser::ParseStatement(sql, catalog->symbols());
  if (!stmt.ok()) return stmt.status();

  // Optimize (real work: binding + costing + ordering).
  optimizer::Planner planner(catalog);
  auto plan = planner.Plan(**stmt);
  if (!plan.ok()) return plan.status();

  if (include_frontend) {
    trace.segments.push_back({kConnect, 500.0, 0});
    trace.segments.push_back(
        {kParse, cost.parse_micros_per_char * sql.size(), 0});
    trace.segments.push_back(
        {kOptimize, cost.optimize_micros_per_node * CountPlanNodes(**plan),
         0});
  }

  // Execute (real work: every operator's tuple counts).
  exec::OperatorTrace op_trace;
  exec::ExecContext ctx;
  ctx.catalog = catalog;
  ctx.trace = &op_trace;
  auto rows = exec::ExecutePlan(plan->get(), &ctx);
  if (!rows.ok()) return rows.status();

  // Operators registered bottom-up; emit segments in registration order
  // (leaf scans first — the production-line order of the plan).
  for (const exec::OperatorTraceEntry& entry : op_trace.entries()) {
    TraceSegment seg;
    seg.module = ModuleForKind(entry.kind);
    const int64_t tuples = std::max<int64_t>(entry.tuples_out, 1);
    seg.cpu_micros =
        cost.exec_micros_per_tuple * OpCostMultiplier(entry.kind) * tuples;
    if (cost.charge_scan_io &&
        (entry.kind == optimizer::PlanKind::kSeqScan ||
         entry.kind == optimizer::PlanKind::kIndexScan)) {
      seg.io_count = static_cast<int>(
          (tuples + cost.rows_per_io_page - 1) / cost.rows_per_io_page);
      if (entry.kind == optimizer::PlanKind::kIndexScan) {
        seg.io_count += 2;  // index descent
      }
    }
    trace.segments.push_back(seg);
  }

  if (include_frontend) {
    trace.segments.push_back(
        {kSend, 200.0 + 5.0 * rows->size(), cost.log_ios});
    trace.segments.push_back({kDisconnect, 300.0, 0});
  } else if (cost.log_ios > 0) {
    trace.segments.push_back({kSend, 200.0, cost.log_ios});
  }
  return trace;
}

}  // namespace stagedb::replay
