// Trace capture: executes a query for real (parser, planner, operators over
// real storage) and converts the observed work — tokens parsed, plan nodes
// costed, tuples processed per operator, pages touched — into a per-module
// CPU/I-O demand trace.
//
// This is the substitution documented in DESIGN.md §3: the work amounts come
// from real execution; the cost model converts them to the wall-clock scale
// of the paper's 1 GHz Pentium III testbed, which we do not have.
#ifndef STAGEDB_REPLAY_CAPTURE_H_
#define STAGEDB_REPLAY_CAPTURE_H_

#include <string>

#include "catalog/catalog.h"
#include "common/status.h"
#include "replay/trace.h"

namespace stagedb::replay {

/// Work-unit to microsecond conversion factors. Calibrated in DESIGN.md so
/// that Workload A queries land at the paper's 40-80 ms and Workload B at
/// 2-3 s on the simulated machine.
struct CaptureCostModel {
  /// Calibrated so the parser's common working-set load (trace.cc) is ~7% of
  /// a short selection query's parse time — the paper's §3.1.3 measurement.
  double parse_micros_per_char = 125.0;
  double optimize_micros_per_node = 400.0;
  double exec_micros_per_tuple = 100.0;
  /// Rows per heap page for I/O accounting (cold buffer pool assumed for
  /// Workload A's "almost always incur disk I/O").
  int64_t rows_per_io_page = 50;
  /// When false, scans are charged no I/O (Workload B's memory-resident
  /// tables; "the only I/O needed is for logging purposes").
  bool charge_scan_io = true;
  /// Fixed log-write I/Os charged to the send segment (Workload B logging).
  int log_ios = 0;
};

/// Parses, plans, and executes `sql` against `catalog`, returning the trace.
/// `include_frontend` adds connect/parse/optimize/send segments; otherwise
/// only execution-engine segments are produced (the §3.1.1 experiment
/// measures "the throughput of the execution engine" with queries already
/// parsed and optimized).
StatusOr<QueryTrace> CaptureQueryTrace(catalog::Catalog* catalog,
                                       const std::string& sql,
                                       const CaptureCostModel& cost,
                                       bool include_frontend = false);

}  // namespace stagedb::replay

#endif  // STAGEDB_REPLAY_CAPTURE_H_
