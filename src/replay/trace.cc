#include "replay/trace.h"

namespace stagedb::replay {

const char* ServerModuleName(simcache::ModuleId id) {
  switch (id) {
    case kConnect:
      return "connect";
    case kParse:
      return "parse";
    case kOptimize:
      return "optimize";
    case kFscan:
      return "fscan";
    case kIscan:
      return "iscan";
    case kQual:
      return "qual";
    case kSort:
      return "sort";
    case kJoin:
      return "join";
    case kAggr:
      return "aggr";
    case kSend:
      return "send";
    case kDisconnect:
      return "disconnect";
    default:
      return "?";
  }
}

simcache::ModuleTable DefaultServerModules(double scale) {
  simcache::ModuleTable t;
  // (name, common working-set load us, private backpack restore us).
  // Loads reflect each module's code + common data footprint relative to the
  // cache (parser: grammar tables + symbol table; optimizer: catalog +
  // statistics; join: the largest footprint). Restores reflect the private
  // state a query carries through that module.
  auto add = [&](const char* name, double load, double restore) {
    t.Add(name, static_cast<int64_t>(load * scale),
          static_cast<int64_t>(restore * scale));
  };
  add("connect", 200, 50);
  add("parse", 700, 150);
  add("optimize", 900, 250);
  add("fscan", 500, 200);
  add("iscan", 500, 200);
  add("qual", 300, 150);
  add("sort", 600, 400);
  add("join", 1000, 2000);  // hash/merge state is the big private footprint
  add("aggr", 600, 400);
  add("send", 150, 50);
  add("disconnect", 150, 50);
  return t;
}

}  // namespace stagedb::replay
