// Query traces: per-module CPU/I-O demand sequences captured from real engine
// executions, replayed under virtual time by replay/virtual_cpu.h.
#ifndef STAGEDB_REPLAY_TRACE_H_
#define STAGEDB_REPLAY_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "simcache/module_profile.h"

namespace stagedb::replay {

/// Well-known server modules (the paper's Figure 3 stages).
enum ServerModule : simcache::ModuleId {
  kConnect = 0,
  kParse,
  kOptimize,
  kFscan,
  kIscan,
  kQual,   // filter / project / limit
  kSort,
  kJoin,
  kAggr,
  kSend,
  kDisconnect,
  kNumServerModules,
};

const char* ServerModuleName(simcache::ModuleId id);

/// Builds the module table with the default working-set cost parameters.
/// `scale` multiplies every load/restore cost (0 disables affinity effects).
simcache::ModuleTable DefaultServerModules(double scale = 1.0);

/// One contiguous piece of work in one module.
struct TraceSegment {
  simcache::ModuleId module = 0;
  double cpu_micros = 0;
  int io_count = 0;  // blocking I/Os spread uniformly through the segment
};

/// The full demand sequence of one query.
struct QueryTrace {
  int64_t id = 0;
  std::vector<TraceSegment> segments;

  double TotalCpuMicros() const {
    double s = 0;
    for (const TraceSegment& seg : segments) s += seg.cpu_micros;
    return s;
  }
  int TotalIos() const {
    int n = 0;
    for (const TraceSegment& seg : segments) n += seg.io_count;
    return n;
  }
};

}  // namespace stagedb::replay

#endif  // STAGEDB_REPLAY_TRACE_H_
