#include "replay/virtual_cpu.h"

#include <algorithm>
#include <deque>
#include <queue>

#include "common/string_util.h"

namespace stagedb::replay {

namespace {

/// Execution position of one worker inside its current job.
struct WorkerState {
  int job = -1;           // index into jobs; -1 = idle (no job left)
  size_t seg = 0;         // current segment
  double cpu_left = 0;    // CPU left in the current chunk
  int ios_left = 0;       // I/Os left in the current segment
  double chunk = 0;       // chunk size between I/Os
  bool charged = false;   // cache charge applied for the current dispatch
  double dispatch_time = -1;  // first time this job got CPU
};

class ThreadPoolReplay {
 public:
  ThreadPoolReplay(const simcache::ModuleTable& modules,
                   const std::vector<QueryTrace>& jobs,
                   const ReplayConfig& config)
      : modules_(modules), jobs_(jobs), config_(config),
        cache_(&modules, config.cache_module_capacity,
               config.cache_state_capacity) {}

  ReplayResult Run() {
    const int n_workers = std::max(1, config_.num_threads);
    workers_.resize(n_workers);
    for (int w = 0; w < n_workers; ++w) {
      if (AssignNextJob(&workers_[w])) runnable_.push_back(w);
    }
    int last_on_cpu = -1;

    while (completed_ < static_cast<int64_t>(jobs_.size())) {
      if (runnable_.empty()) {
        // CPU idles until the next I/O completion.
        const double wake = blocked_.top().first;
        result_.idle_micros += wake - t_;
        t_ = wake;
        WakeBlocked();
        continue;
      }
      const int w = runnable_.front();
      runnable_.pop_front();
      WorkerState& ws = workers_[w];
      if (last_on_cpu != w && last_on_cpu != -1) {
        Record(TimelineEvent::Kind::kSwitch, w, ws, t_,
               t_ + config_.context_switch_micros);
        t_ += config_.context_switch_micros;
        result_.busy_switch_micros += config_.context_switch_micros;
        ++result_.context_switches;
      }
      last_on_cpu = w;
      RunQuantum(&ws, w);
      WakeBlocked();
    }
    Finalize();
    return std::move(result_);
  }

 private:
  bool AssignNextJob(WorkerState* ws) {
    if (next_job_ >= jobs_.size()) {
      ws->job = -1;
      return false;
    }
    ws->job = static_cast<int>(next_job_++);
    ws->seg = 0;
    ws->charged = false;
    ws->dispatch_time = -1;
    SetupSegment(ws);
    return true;
  }

  void SetupSegment(WorkerState* ws) {
    const TraceSegment& seg = jobs_[ws->job].segments[ws->seg];
    ws->ios_left = seg.io_count;
    ws->chunk = seg.cpu_micros / (seg.io_count + 1);
    ws->cpu_left = ws->chunk;
    ws->charged = false;  // module may have changed
  }

  void ChargeCache(WorkerState* ws, int w, double* quantum_left) {
    const TraceSegment& seg = jobs_[ws->job].segments[ws->seg];
    const simcache::CacheCharge charge =
        cache_.BeginExecution(seg.module, jobs_[ws->job].id);
    if (charge.state_restore_micros > 0) {
      Record(TimelineEvent::Kind::kRestore, w, *ws, t_,
             t_ + charge.state_restore_micros);
      t_ += charge.state_restore_micros;
      result_.busy_restore_micros += charge.state_restore_micros;
      *quantum_left -= charge.state_restore_micros;
      ++result_.state_restores;
    }
    if (charge.module_load_micros > 0) {
      Record(TimelineEvent::Kind::kLoad, w, *ws, t_,
             t_ + charge.module_load_micros);
      t_ += charge.module_load_micros;
      result_.busy_load_micros += charge.module_load_micros;
      *quantum_left -= charge.module_load_micros;
      ++result_.module_loads;
    }
    ws->charged = true;
  }

  void RunQuantum(WorkerState* ws, int w) {
    double quantum_left = config_.quantum_micros;
    if (ws->dispatch_time < 0) ws->dispatch_time = t_;
    while (quantum_left > 0 && ws->job >= 0) {
      if (!ws->charged) {
        ChargeCache(ws, w, &quantum_left);
        // Cache warm-up overlaps with useful execution; even when the reload
        // cost exceeds a tiny quantum the thread retains a minimum useful
        // slice (otherwise 1 ms quanta with 2 ms restores would livelock).
        quantum_left = std::max(quantum_left, 0.25 * config_.quantum_micros);
      }
      const double run = std::min(quantum_left, ws->cpu_left);
      if (run > 0) {
        Record(TimelineEvent::Kind::kExec, w, *ws, t_, t_ + run);
        t_ += run;
        result_.busy_exec_micros += run;
        quantum_left -= run;
        ws->cpu_left -= run;
      }
      if (ws->cpu_left > 1e-9) break;  // quantum expired mid-chunk
      // Chunk finished: I/O, next chunk, next segment, or job completion.
      if (ws->ios_left > 0) {
        --ws->ios_left;
        ws->cpu_left = ws->chunk;
        Record(TimelineEvent::Kind::kIo, w, *ws, t_,
               t_ + config_.io_latency_micros);
        blocked_.push({t_ + config_.io_latency_micros, w});
        return;  // worker blocks; CPU moves on
      }
      ++ws->seg;
      if (ws->seg >= jobs_[ws->job].segments.size()) {
        ++completed_;
        service_sum_ += t_ - ws->dispatch_time;
        if (!AssignNextJob(ws)) return;  // worker retires
        continue;
      }
      SetupSegment(ws);
    }
    if (ws->job >= 0) {
      runnable_.push_back(w);  // preempted: back of the round-robin queue
      ws->charged = false;     // must re-check residency on redispatch
    }
  }

  void WakeBlocked() {
    while (!blocked_.empty() && blocked_.top().first <= t_ + 1e-9) {
      const int w = blocked_.top().second;
      blocked_.pop();
      workers_[w].charged = false;
      runnable_.push_back(w);
    }
  }

  void Record(TimelineEvent::Kind kind, int w, const WorkerState& ws,
              double start, double end) {
    if (!config_.record_timeline) return;
    TimelineEvent e;
    e.kind = kind;
    e.start = start;
    e.end = end;
    e.worker = w;
    e.query = ws.job >= 0 ? jobs_[ws.job].id : -1;
    e.module = ws.job >= 0 ? jobs_[ws.job].segments[ws.seg].module : 0;
    result_.timeline.push_back(e);
  }

  void Finalize() {
    result_.completed = completed_;
    result_.makespan_micros = t_;
    if (t_ > 0) result_.throughput_qps = completed_ / (t_ / 1e6);
    if (completed_ > 0) result_.mean_service_micros = service_sum_ / completed_;
  }

  const simcache::ModuleTable& modules_;
  const std::vector<QueryTrace>& jobs_;
  const ReplayConfig& config_;
  simcache::CacheModel cache_;
  std::vector<WorkerState> workers_;
  std::deque<int> runnable_;
  // min-heap of (wake_time, worker)
  std::priority_queue<std::pair<double, int>,
                      std::vector<std::pair<double, int>>,
                      std::greater<>> blocked_;
  size_t next_job_ = 0;
  int64_t completed_ = 0;
  double t_ = 0;
  double service_sum_ = 0;
  ReplayResult result_;
};

/// Production-line cohort scheduling: the CPU visits module queues cyclically
/// and serves each exhaustively; the first packet after a module switch pays
/// the load. I/O latency defers a packet's arrival at its next module but
/// does not hold the CPU (other packets of the same stage overlap it).
class StagedReplay {
 public:
  StagedReplay(const simcache::ModuleTable& modules,
               const std::vector<QueryTrace>& jobs,
               const ReplayConfig& config)
      : modules_(modules), jobs_(jobs), config_(config),
        cache_(&modules, config.cache_module_capacity,
               config.cache_state_capacity),
        queues_(modules.size()) {}

  ReplayResult Run() {
    for (size_t j = 0; j < jobs_.size(); ++j) {
      if (!jobs_[j].segments.empty()) {
        Enqueue(static_cast<int>(j), 0, 0.0);
      } else {
        ++completed_;
      }
    }
    size_t current = 0;
    while (completed_ < static_cast<int64_t>(jobs_.size())) {
      // Find the next module (cyclically) with a ready packet.
      int chosen = -1;
      for (size_t k = 0; k < queues_.size(); ++k) {
        const size_t m = (current + k) % queues_.size();
        if (HasReady(m)) {
          chosen = static_cast<int>(m);
          break;
        }
      }
      if (chosen < 0) {
        // Everything is waiting on I/O: idle to the earliest ready time.
        double next_ready = 1e300;
        for (const auto& q : queues_) {
          for (const auto& p : q) next_ready = std::min(next_ready, p.ready);
        }
        result_.idle_micros += next_ready - t_;
        t_ = next_ready;
        continue;
      }
      ServeExhaustively(static_cast<size_t>(chosen));
      current = (chosen + 1) % queues_.size();
    }
    result_.completed = completed_;
    result_.makespan_micros = t_;
    if (t_ > 0) result_.throughput_qps = completed_ / (t_ / 1e6);
    if (completed_ > 0) {
      result_.mean_service_micros = service_sum_ / completed_;
    }
    return std::move(result_);
  }

 private:
  struct Packet {
    int job;
    size_t seg;
    double ready;
    double dispatch_time = -1;
  };

  void Enqueue(int job, size_t seg, double ready) {
    const simcache::ModuleId m = jobs_[job].segments[seg].module;
    queues_[m].push_back({job, seg, ready, -1});
  }

  bool HasReady(size_t m) const {
    for (const Packet& p : queues_[m]) {
      if (p.ready <= t_ + 1e-9) return true;
    }
    return false;
  }

  void ServeExhaustively(size_t m) {
    while (true) {
      auto it = std::find_if(
          queues_[m].begin(), queues_[m].end(),
          [&](const Packet& p) { return p.ready <= t_ + 1e-9; });
      if (it == queues_[m].end()) return;
      Packet p = *it;
      queues_[m].erase(it);
      const TraceSegment& seg = jobs_[p.job].segments[p.seg];
      const simcache::CacheCharge charge =
          cache_.BeginExecution(seg.module, jobs_[p.job].id);
      if (charge.state_restore_micros > 0) {
        Record(TimelineEvent::Kind::kRestore, p, t_,
               t_ + charge.state_restore_micros);
        t_ += charge.state_restore_micros;
        result_.busy_restore_micros += charge.state_restore_micros;
        ++result_.state_restores;
      }
      if (charge.module_load_micros > 0) {
        Record(TimelineEvent::Kind::kLoad, p, t_,
               t_ + charge.module_load_micros);
        t_ += charge.module_load_micros;
        result_.busy_load_micros += charge.module_load_micros;
        ++result_.module_loads;
      }
      Record(TimelineEvent::Kind::kExec, p, t_, t_ + seg.cpu_micros);
      t_ += seg.cpu_micros;
      result_.busy_exec_micros += seg.cpu_micros;
      const double done_at =
          t_ + seg.io_count * config_.io_latency_micros;  // overlapped I/O
      if (p.seg + 1 >= jobs_[p.job].segments.size()) {
        ++completed_;
        service_sum_ += done_at;
      } else {
        Enqueue(p.job, p.seg + 1, done_at);
      }
    }
  }

  void Record(TimelineEvent::Kind kind, const Packet& p, double start,
              double end) {
    if (!config_.record_timeline) return;
    TimelineEvent e;
    e.kind = kind;
    e.start = start;
    e.end = end;
    e.worker = 0;
    e.query = jobs_[p.job].id;
    e.module = jobs_[p.job].segments[p.seg].module;
    result_.timeline.push_back(e);
  }

  const simcache::ModuleTable& modules_;
  const std::vector<QueryTrace>& jobs_;
  const ReplayConfig& config_;
  simcache::CacheModel cache_;
  std::vector<std::deque<Packet>> queues_;
  double t_ = 0;
  int64_t completed_ = 0;
  double service_sum_ = 0;
  ReplayResult result_;
};

}  // namespace

ReplayResult Replay(const simcache::ModuleTable& modules,
                    const std::vector<QueryTrace>& jobs,
                    const ReplayConfig& config) {
  if (config.staged) return StagedReplay(modules, jobs, config).Run();
  return ThreadPoolReplay(modules, jobs, config).Run();
}

std::string RenderTimeline(const std::vector<TimelineEvent>& timeline,
                           const simcache::ModuleTable& modules,
                           size_t max_events) {
  std::string out;
  for (size_t i = 0; i < timeline.size() && i < max_events; ++i) {
    const TimelineEvent& e = timeline[i];
    const char* kind = "";
    switch (e.kind) {
      case TimelineEvent::Kind::kSwitch:
        kind = "context-switch";
        break;
      case TimelineEvent::Kind::kRestore:
        kind = "load query state";
        break;
      case TimelineEvent::Kind::kLoad:
        kind = "load module";
        break;
      case TimelineEvent::Kind::kExec:
        kind = "execute";
        break;
      case TimelineEvent::Kind::kIo:
        kind = "I/O wait";
        break;
    }
    out += StrFormat("%9.2f..%9.2f ms  thread %d  Q%lld  %-9s %s\n",
                     e.start / 1000.0, e.end / 1000.0, e.worker,
                     static_cast<long long>(e.query),
                     modules.Get(e.module).name.c_str(), kind);
  }
  if (timeline.size() > max_events) {
    out += StrFormat("... (%zu more events)\n", timeline.size() - max_events);
  }
  return out;
}

}  // namespace stagedb::replay
