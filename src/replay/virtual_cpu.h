// Virtual-time replayer: executes captured query traces on a simulated
// single-CPU database server, either under the traditional worker-thread-pool
// model (preemptive round-robin with an alarm-timer quantum — §3.1 and the
// Figure 2 experiment) or under staged cohort scheduling (the contrast for
// Figure 1).
//
// Deterministic: all timing comes from the trace cost model, the cache model
// (simcache), and the configured quantum / I-O latency.
#ifndef STAGEDB_REPLAY_VIRTUAL_CPU_H_
#define STAGEDB_REPLAY_VIRTUAL_CPU_H_

#include <cstdint>
#include <string>
#include <vector>

#include "replay/trace.h"
#include "simcache/cache_model.h"

namespace stagedb::replay {

struct ReplayConfig {
  /// Worker threads in the pool (the Figure 2 x-axis).
  int num_threads = 10;
  /// Preemption quantum; the paper's prototype used a ~10 ms alarm timer.
  double quantum_micros = 10000.0;
  /// Per-I/O blocking latency (disk service time; I/Os overlap across
  /// threads).
  double io_latency_micros = 12000.0;
  /// Fixed kernel context-switch cost charged when the CPU changes threads.
  double context_switch_micros = 20.0;
  /// How many module working sets fit in the cache (paper model: 1).
  int cache_module_capacity = 1;
  /// How many queries' private working sets stay resident.
  int cache_state_capacity = 4;
  /// Production-line cohort scheduling instead of the thread pool.
  bool staged = false;
  /// Record the execution timeline (Figure 1 rendering).
  bool record_timeline = false;
};

struct TimelineEvent {
  enum class Kind { kSwitch, kRestore, kLoad, kExec, kIo };
  double start = 0, end = 0;
  int worker = 0;
  int64_t query = 0;
  simcache::ModuleId module = 0;
  Kind kind = Kind::kExec;
};

struct ReplayResult {
  double makespan_micros = 0;
  double throughput_qps = 0;
  int64_t completed = 0;
  // CPU time breakdown (the striped boxes of Figure 1).
  double busy_exec_micros = 0;
  double busy_load_micros = 0;     // module common working-set loads
  double busy_restore_micros = 0;  // per-query state restores
  double busy_switch_micros = 0;   // kernel context switches
  double idle_micros = 0;          // CPU idle (I/O not overlapped)
  int64_t context_switches = 0;
  int64_t module_loads = 0;
  int64_t state_restores = 0;
  double mean_service_micros = 0;  // dispatch-to-completion per query
  std::vector<TimelineEvent> timeline;

  double BusyTotal() const {
    return busy_exec_micros + busy_load_micros + busy_restore_micros +
           busy_switch_micros;
  }
};

/// Replays `jobs` and returns the aggregate metrics.
ReplayResult Replay(const simcache::ModuleTable& modules,
                    const std::vector<QueryTrace>& jobs,
                    const ReplayConfig& config);

/// Renders a timeline as ASCII rows (one per event) for the Figure 1 bench.
std::string RenderTimeline(const std::vector<TimelineEvent>& timeline,
                           const simcache::ModuleTable& modules,
                           size_t max_events = 80);

}  // namespace stagedb::replay

#endif  // STAGEDB_REPLAY_VIRTUAL_CPU_H_
