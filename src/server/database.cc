#include "server/database.h"

#include "common/string_util.h"
#include "engine/staged_engine.h"
#include "parser/parser.h"

namespace stagedb::server {

using catalog::Schema;
using catalog::TypeId;
using optimizer::PhysicalPlan;
using optimizer::Planner;

/// Owns the staged engine (kept out of database.h to avoid the heavy
/// include in the public API).
class StagedEngineHandle {
 public:
  StagedEngineHandle(catalog::Catalog* catalog,
                     engine::StagedEngineOptions options)
      : engine(catalog, options) {}
  engine::StagedEngine engine;
};

std::string QueryResult::ToString() const {
  return StrFormat("%zu row(s)", rows.size());
}

// ----------------------------------------------------------- PendingQuery ---

StatusOr<QueryResult> PendingQuery::Await() {
  auto rows = query_->Await();
  if (!rows.ok()) return rows.status();
  QueryResult result;
  result.schema = schema_;
  result.plan_text = plan_text_;
  result.rows = std::move(*rows);
  return result;
}

bool PendingQuery::done() const { return query_->done(); }

void PendingQuery::NotifyOnDone(std::function<void()> callback) {
  query_->NotifyOnDone(std::move(callback));
}

Database::Database(DatabaseOptions options) : options_(std::move(options)) {}

Database::~Database() = default;

StatusOr<std::unique_ptr<Database>> Database::Open(DatabaseOptions options) {
  std::unique_ptr<Database> db(new Database(std::move(options)));
  db->disk_ = std::make_unique<storage::MemDiskManager>(
      db->options_.disk_latency_micros);
  db->pool_ = std::make_unique<storage::BufferPool>(
      db->disk_.get(), db->options_.buffer_pool_pages);
  db->catalog_ = std::make_unique<catalog::Catalog>(db->pool_.get());
  db->wal_ = std::make_unique<storage::WriteAheadLog>();
  db->txn_mgr_ =
      std::make_unique<storage::TransactionManager>(db->wal_.get());
  if (db->options_.plan_cache) {
    db->plan_cache_ = std::make_unique<frontend::PlanCache>(
        db->options_.plan_cache_capacity, db->options_.plan_cache_shards);
  }
  if (db->options_.mode == ExecutionMode::kStaged) {
    engine::StagedEngineOptions opts;
    opts.exchange_capacity_pages = db->options_.exchange_buffer_pages;
    opts.tuples_per_page = db->options_.tuples_per_page;
    opts.threads_per_stage = db->options_.threads_per_stage;
    opts.shared_scans = db->options_.shared_scans;
    opts.scheduler = db->options_.scheduler;
    opts.scheduler_gate_rounds = db->options_.scheduler_gate_rounds;
    opts.stage_pools = db->options_.stage_pools;
    opts.max_dop = db->options_.max_dop;
    // Let the planner emit parallel shapes up to the engine's cap. Volcano
    // mode skips this (below), so its planner never produces them.
    db->options_.planner.max_dop = db->options_.max_dop;
    db->staged_ =
        std::make_unique<StagedEngineHandle>(db->catalog_.get(), opts);
  } else {
    // The volcano engine runs every node on the calling thread: parallel
    // plan shapes would only add a partial/merge hop it cannot execute.
    db->options_.planner.max_dop = 1;
  }
  return db;
}

engine::StageRuntime::StatsSnapshot Database::EngineStats() const {
  engine::StageRuntime::StatsSnapshot snap;
  if (staged_ != nullptr) snap = staged_->engine.runtime()->Stats();
  if (plan_cache_ != nullptr) {
    const frontend::PlanCacheStats cache = plan_cache_->Stats();
    snap.plan_cache.hits = cache.hits;
    snap.plan_cache.misses = cache.misses;
    snap.plan_cache.invalidations = cache.invalidations;
    snap.plan_cache.evictions = cache.evictions;
    snap.plan_cache.entries = cache.entries;
  }
  return snap;
}

frontend::PlanCacheStats Database::CacheStats() const {
  if (plan_cache_ == nullptr) return {};
  return plan_cache_->Stats();
}

int64_t Database::statements_executed() const {
  return const_cast<StatsRegistry&>(stats_)
      .GetCounter("db.statements")
      ->value();
}

StatusOr<std::string> Database::Explain(const std::string& sql) {
  auto stmt = parser::ParseStatement(sql, catalog_->symbols());
  if (!stmt.ok()) return stmt.status();
  Planner planner(catalog_.get(), options_.planner);
  auto plan = planner.Plan(**stmt);
  if (!plan.ok()) return plan.status();
  return (*plan)->ToString();
}

StatusOr<std::shared_ptr<const frontend::CachedPlan>> Database::GetOrPlanCached(
    const frontend::NormalizedStatement& norm) {
  if (plan_cache_ != nullptr) {
    if (auto hit = plan_cache_->Lookup(norm.key, catalog_->version())) {
      return hit;
    }
  }
  // The facade performs the parse and optimize work itself, so it owns the
  // per-stage counters here; the staged server counts its own stage visits.
  stats_.GetCounter("stage.parse.packets")->Add(1);
  parser::internal::Parser parser(norm.tokens, catalog_->symbols());
  auto stmt = parser.ParseSingle();
  if (!stmt.ok()) return stmt.status();
  stats_.GetCounter("stage.optimize.packets")->Add(1);
  return PlanAndCacheTemplate(**stmt, norm);
}

StatusOr<std::shared_ptr<const frontend::CachedPlan>>
Database::PlanAndCacheTemplate(const parser::Statement& stmt,
                               const frontend::NormalizedStatement& norm) {
  // Read the epoch BEFORE planning: if a DDL interleaves, the entry is
  // tagged with an epoch older than the catalog's — a conservative stale
  // mark that forces a replan — never the other way around.
  const uint64_t epoch = catalog_->version();
  Planner planner(catalog_.get(), options_.planner);
  auto plan = planner.Plan(stmt, &norm.param_types);
  if (!plan.ok()) return plan.status();
  auto entry = std::make_shared<frontend::CachedPlan>();
  entry->plan = std::move(*plan);
  entry->num_params = norm.num_params;
  entry->param_types = norm.param_types;
  entry->epoch = epoch;
  if (plan_cache_ != nullptr) plan_cache_->Insert(norm.key, entry);
  return std::shared_ptr<const frontend::CachedPlan>(std::move(entry));
}

StatusOr<std::shared_ptr<PreparedStatement>> Database::Prepare(
    const std::string& sql) {
  auto norm = frontend::Normalize(sql);
  if (!norm.ok()) return norm.status();
  if (!norm->cacheable) {
    return Status::InvalidArgument(
        "only SELECT/INSERT/UPDATE/DELETE statements can be prepared");
  }
  // Eager validation: parse + plan the template now (also warms the cache).
  auto entry = GetOrPlanCached(*norm);
  if (!entry.ok()) return entry.status();
  auto prepared = std::make_shared<PreparedStatement>();
  prepared->norm_ = std::move(*norm);
  return prepared;
}

StatusOr<QueryResult> Database::ExecutePrepared(
    const PreparedStatement& stmt, const std::vector<catalog::Value>& params) {
  stats_.GetCounter("db.statements")->Add(1);
  const std::vector<catalog::Value>& effective =
      (params.empty() && stmt.norm_.auto_params) ? stmt.norm_.params : params;
  if (effective.size() != stmt.num_params()) {
    return Status::InvalidArgument(
        StrFormat("statement takes %zu parameter(s), got %zu",
                  stmt.num_params(), effective.size()));
  }
  auto entry = GetOrPlanCached(stmt.norm_);
  if (!entry.ok()) return entry.status();
  auto plan = frontend::InstantiatePlan(*(*entry)->plan, effective);
  if (!plan.ok()) return plan.status();
  return ExecutePlanned(plan->get());
}

StatusOr<QueryResult> Database::Execute(const std::string& sql) {
  stats_.GetCounter("db.statements")->Add(1);
  // --- front-end work reuse: serve repeated/parameterized statements from
  // the plan cache, skipping parse + optimize on a hit ---
  if (plan_cache_ != nullptr) {
    auto norm = frontend::Normalize(sql);
    if (norm.ok() && norm->cacheable && norm->auto_params) {
      auto entry = GetOrPlanCached(*norm);
      if (!entry.ok()) return entry.status();
      auto plan = frontend::InstantiatePlan(*(*entry)->plan, norm->params);
      if (!plan.ok()) return plan.status();
      return ExecutePlanned(plan->get());
    }
    // Not cacheable (DDL, txn control, explicit '?', lex error): fall
    // through to the direct path, which reports any error as before.
  }
  // --- parse stage ---
  auto stmt_or = parser::ParseStatement(sql, catalog_->symbols());
  if (!stmt_or.ok()) return stmt_or.status();
  stats_.GetCounter("stage.parse.packets")->Add(1);
  const parser::Statement& stmt = **stmt_or;

  QueryResult result;
  using Kind = parser::Statement::Kind;
  switch (stmt.kind) {
    case Kind::kCreateTable: {
      const auto& ct = static_cast<const parser::CreateTableStmt&>(stmt);
      std::vector<catalog::Column> cols;
      for (const auto& def : ct.columns) {
        cols.push_back({def.name, def.type, ""});
      }
      auto table = catalog_->CreateTable(ct.table, Schema(std::move(cols)));
      if (!table.ok()) return table.status();
      txn_mgr_->RegisterTable((*table)->id, (*table)->heap.get());
      result.schema = Schema({{"status", TypeId::kVarchar, ""}});
      result.rows = {{catalog::Value::Varchar("ok")}};
      return result;
    }
    case Kind::kCreateIndex: {
      const auto& ci = static_cast<const parser::CreateIndexStmt&>(stmt);
      auto index = catalog_->CreateIndex(ci.index, ci.table, ci.column);
      if (!index.ok()) return index.status();
      result.schema = Schema({{"status", TypeId::kVarchar, ""}});
      result.rows = {{catalog::Value::Varchar("ok")}};
      return result;
    }
    case Kind::kDropTable: {
      const auto& dt = static_cast<const parser::DropTableStmt&>(stmt);
      STAGEDB_RETURN_IF_ERROR(catalog_->DropTable(dt.table));
      result.schema = Schema({{"status", TypeId::kVarchar, ""}});
      result.rows = {{catalog::Value::Varchar("ok")}};
      return result;
    }
    case Kind::kBegin: {
      std::lock_guard<std::mutex> lock(txn_mu_);
      if (active_txn_ != nullptr) {
        return Status::InvalidArgument("transaction already in progress");
      }
      active_txn_ = std::make_unique<exec::MutationLog>();
      result.schema = Schema({{"status", TypeId::kVarchar, ""}});
      result.rows = {{catalog::Value::Varchar("ok")}};
      return result;
    }
    case Kind::kCommit: {
      std::lock_guard<std::mutex> lock(txn_mu_);
      if (active_txn_ == nullptr) {
        return Status::InvalidArgument("no transaction in progress");
      }
      active_txn_.reset();
      result.schema = Schema({{"status", TypeId::kVarchar, ""}});
      result.rows = {{catalog::Value::Varchar("ok")}};
      return result;
    }
    case Kind::kRollback: {
      std::lock_guard<std::mutex> lock(txn_mu_);
      if (active_txn_ == nullptr) {
        return Status::InvalidArgument("no transaction in progress");
      }
      STAGEDB_RETURN_IF_ERROR(active_txn_->Rollback(catalog_.get()));
      active_txn_.reset();
      result.schema = Schema({{"status", TypeId::kVarchar, ""}});
      result.rows = {{catalog::Value::Varchar("ok")}};
      return result;
    }
    default:
      break;
  }

  // --- optimize stage ---
  Planner planner(catalog_.get(), options_.planner);
  auto plan_or = planner.Plan(stmt);
  if (!plan_or.ok()) return plan_or.status();
  stats_.GetCounter("stage.optimize.packets")->Add(1);
  const std::unique_ptr<PhysicalPlan>& plan = *plan_or;

  return ExecutePlanned(plan.get());
}

StatusOr<QueryResult> Database::ExecutePlanned(const PhysicalPlan* plan) {
  // A template must be instantiated first: the engines ignore parameterized
  // index bounds and unevaluated VALUES rows, so executing one would return
  // wrong results (full-range scans, zero-row inserts), not fail.
  if (plan->IsTemplate()) {
    return Status::InvalidArgument(
        "statement contains '?' parameters; use Prepare/ExecutePrepared");
  }
  QueryResult result;
  result.schema = plan->schema;
  result.plan_text = plan->ToString();

  exec::ExecContext ctx;
  ctx.catalog = catalog_.get();
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    ctx.mutation_log = active_txn_.get();
  }

  stats_.GetCounter("stage.execute.packets")->Add(1);
  if (options_.mode == ExecutionMode::kStaged) {
    auto rows = staged_->engine.Execute(plan, &ctx);
    if (!rows.ok()) return rows.status();
    result.rows = std::move(*rows);
  } else {
    auto rows = exec::ExecutePlan(plan, &ctx);
    if (!rows.ok()) return rows.status();
    result.rows = std::move(*rows);
  }
  return result;
}

StatusOr<std::shared_ptr<PendingQuery>> Database::SubmitPlanned(
    const PhysicalPlan* plan) {
  if (options_.mode != ExecutionMode::kStaged) {
    return Status::InvalidArgument(
        "SubmitPlanned requires staged execution mode");
  }
  if (plan->IsTemplate()) {
    return Status::InvalidArgument(
        "statement contains '?' parameters; use Prepare/ExecutePrepared");
  }
  auto pending = std::make_shared<PendingQuery>();
  pending->schema_ = plan->schema;
  pending->plan_text_ = plan->ToString();
  pending->ctx_.catalog = catalog_.get();
  {
    std::lock_guard<std::mutex> lock(txn_mu_);
    pending->ctx_.mutation_log = active_txn_.get();
  }
  stats_.GetCounter("stage.execute.packets")->Add(1);
  pending->query_ = staged_->engine.Submit(plan, &pending->ctx_);
  return pending;
}

}  // namespace stagedb::server
