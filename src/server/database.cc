#include "server/database.h"

#include "catalog/tuple.h"
#include "common/string_util.h"
#include "engine/commit_stage.h"
#include "engine/staged_engine.h"
#include "engine/vacuum_stage.h"
#include "parser/parser.h"
#include "storage/mvcc.h"

namespace stagedb::server {

using catalog::Schema;
using catalog::TypeId;
using optimizer::PhysicalPlan;
using optimizer::Planner;

namespace {

// --- WAL schema payloads -----------------------------------------------------
// kCreateTable records carry the table's schema in `after` so recovery can
// rebuild it without any external catalog file. Unit separator / record
// separator framing: "name \x1f type" per column, columns joined by \x1e.

constexpr char kUnitSep = '\x1f';
constexpr char kColSep = '\x1e';

std::string SerializeSchema(const std::vector<catalog::Column>& cols) {
  std::string out;
  for (const auto& col : cols) {
    if (!out.empty()) out.push_back(kColSep);
    out += col.name;
    out.push_back(kUnitSep);
    out += std::to_string(static_cast<int>(col.type));
  }
  return out;
}

StatusOr<std::vector<catalog::Column>> DeserializeSchema(
    const std::string& payload) {
  std::vector<catalog::Column> cols;
  size_t pos = 0;
  while (pos <= payload.size()) {
    size_t end = payload.find(kColSep, pos);
    if (end == std::string::npos) end = payload.size();
    const std::string entry = payload.substr(pos, end - pos);
    const size_t sep = entry.find(kUnitSep);
    if (sep == std::string::npos) {
      return Status::Corruption("wal: malformed schema payload");
    }
    catalog::Column col;
    col.name = entry.substr(0, sep);
    col.type = static_cast<TypeId>(std::stoi(entry.substr(sep + 1)));
    cols.push_back(std::move(col));
    if (end == payload.size()) break;
    pos = end + 1;
  }
  return cols;
}

}  // namespace

// -------------------------------------------------------- DatabaseWalSink ---

/// The exec::WalSink over the database's WAL: encodes tuples with the
/// table's schema and appends logical records under one wal txn id. Appends
/// only — durability comes from the commit path's Sync barrier.
class DatabaseWalSink : public exec::WalSink {
 public:
  DatabaseWalSink(Database* db, int64_t txn_id) : db_(db), txn_id_(txn_id) {}

  Status LogInsert(catalog::TableInfo* table,
                   const catalog::Tuple& tuple) override {
    storage::WalRecord r;
    r.txn_id = txn_id_;
    r.type = storage::WalRecord::Type::kInsert;
    r.table_id = table->id;
    r.after = catalog::EncodeTuple(table->schema, tuple);
    return Append(std::move(r));
  }

  Status LogDelete(catalog::TableInfo* table,
                   const catalog::Tuple& tuple) override {
    storage::WalRecord r;
    r.txn_id = txn_id_;
    r.type = storage::WalRecord::Type::kDelete;
    r.table_id = table->id;
    r.before = catalog::EncodeTuple(table->schema, tuple);
    return Append(std::move(r));
  }

  Status LogUpdate(catalog::TableInfo* table, const catalog::Tuple& before,
                   const catalog::Tuple& after) override {
    storage::WalRecord r;
    r.txn_id = txn_id_;
    r.type = storage::WalRecord::Type::kUpdate;
    r.table_id = table->id;
    r.before = catalog::EncodeTuple(table->schema, before);
    r.after = catalog::EncodeTuple(table->schema, after);
    return Append(std::move(r));
  }

 private:
  Status Append(storage::WalRecord r) {
    auto lsn_or = db_->wal_->Append(std::move(r));
    return lsn_or.ok() ? Status::OK() : lsn_or.status();
  }

  Database* db_;
  const int64_t txn_id_;
};

// -------------------------------------------------- CatalogRecoveryApplier ---

/// Routes recovery through the catalog (not raw heap files) so indexes and
/// statistics are rebuilt alongside the rows, and DDL records recreate
/// tables with the same sequentially-assigned ids they had before the crash.
class CatalogRecoveryApplier : public storage::RecoveryApplier {
 public:
  explicit CatalogRecoveryApplier(Database* db) : db_(db) {}

  Status ApplyDdl(const storage::WalRecord& r) override {
    switch (r.type) {
      case storage::WalRecord::Type::kCreateTable: {
        auto cols = DeserializeSchema(r.after);
        if (!cols.ok()) return cols.status();
        auto table =
            db_->catalog_->CreateTable(r.before, Schema(std::move(*cols)));
        if (!table.ok()) return table.status();
        db_->txn_mgr_->RegisterTable((*table)->id, (*table)->heap.get());
        return Status::OK();
      }
      case storage::WalRecord::Type::kCreateIndex: {
        const size_t sep = r.after.find(kUnitSep);
        if (sep == std::string::npos) {
          return Status::Corruption("wal: malformed index payload");
        }
        auto index = db_->catalog_->CreateIndex(
            r.before, r.after.substr(0, sep), r.after.substr(sep + 1));
        return index.ok() ? Status::OK() : index.status();
      }
      case storage::WalRecord::Type::kDropTable:
        return db_->catalog_->DropTable(r.before);
      default:
        return Status::Internal("recover: non-DDL record in ApplyDdl");
    }
  }

  Status ApplyInsert(int32_t table_id, const std::string& row) override {
    auto table = db_->catalog_->GetTableById(table_id);
    if (!table.ok()) return table.status();
    auto tuple = catalog::DecodeTuple((*table)->schema, row);
    if (!tuple.ok()) return tuple.status();
    auto rid = db_->catalog_->InsertTuple(*table, *tuple);
    return rid.ok() ? Status::OK() : rid.status();
  }

  Status ApplyDelete(int32_t table_id, const std::string& before) override {
    auto table = db_->catalog_->GetTableById(table_id);
    if (!table.ok()) return table.status();
    auto rid_or = FindByImage(*table, before);
    if (!rid_or.ok()) return rid_or.status();
    return db_->catalog_->DeleteTuple(*table, *rid_or);
  }

  Status ApplyUpdate(int32_t table_id, const std::string& before,
                     const std::string& after) override {
    auto table = db_->catalog_->GetTableById(table_id);
    if (!table.ok()) return table.status();
    auto rid_or = FindByImage(*table, before);
    if (!rid_or.ok()) return rid_or.status();
    STAGEDB_RETURN_IF_ERROR(db_->catalog_->DeleteTuple(*table, *rid_or));
    auto tuple = catalog::DecodeTuple((*table)->schema, after);
    if (!tuple.ok()) return tuple.status();
    auto rid = db_->catalog_->InsertTuple(*table, *tuple);
    return rid.ok() ? Status::OK() : rid.status();
  }

 private:
  /// Logical identity across re-assigned rids: find the row by image. Under
  /// MVCC the heap records carry a version header the WAL images do not, so
  /// compare the payload bytes only.
  StatusOr<storage::Rid> FindByImage(catalog::TableInfo* table,
                                     const std::string& image) {
    const bool mvcc = db_->catalog_->mvcc_enabled();
    auto scan = table->heap->Scan();
    while (scan.Next()) {
      const std::string_view row =
          mvcc ? storage::RowPayload(scan.record()) : scan.record();
      if (row == image) return scan.rid();
    }
    STAGEDB_RETURN_IF_ERROR(scan.status());
    return Status::NotFound("recover: row image not found");
  }

  Database* db_;
};

/// Owns the staged engine (kept out of database.h to avoid the heavy
/// include in the public API).
class StagedEngineHandle {
 public:
  StagedEngineHandle(catalog::Catalog* catalog,
                     engine::StagedEngineOptions options)
      : engine(catalog, options) {}
  engine::StagedEngine engine;
};

std::string QueryResult::ToString() const {
  return StrFormat("%zu row(s)", rows.size());
}

// ----------------------------------------------------------- PendingQuery ---

PendingQuery::~PendingQuery() {
  if (wal_finalize_ == nullptr) return;
  // Abandoned without Await: the client never saw an ack, so the statement
  // must not commit. Wait out the in-flight query first — the engine still
  // holds the context this object owns.
  if (query_ != nullptr) (void)query_->Await();
  auto finalize = std::move(wal_finalize_);
  wal_finalize_ = nullptr;
  (void)finalize(false);
}

StatusOr<QueryResult> PendingQuery::Await() {
  auto rows = query_->Await();
  if (wal_finalize_) {
    // Run the durable-commit epilogue exactly once: the statement does not
    // ack until its commit record is synced (or its wal txn is aborted).
    auto finalize = std::move(wal_finalize_);
    wal_finalize_ = nullptr;
    const Status commit = finalize(rows.ok());
    if (rows.ok() && !commit.ok()) return commit;
  }
  if (!rows.ok()) return rows.status();
  QueryResult result;
  result.schema = schema_;
  result.plan_text = plan_text_;
  result.rows = std::move(*rows);
  return result;
}

bool PendingQuery::done() const { return query_->done(); }

void PendingQuery::NotifyOnDone(std::function<void()> callback) {
  query_->NotifyOnDone(std::move(callback));
}

Database::Database(DatabaseOptions options) : options_(std::move(options)) {}

Database::~Database() {
  // Drain order: vacuum first (its passes touch catalog state the engines
  // read), then the commit stage, then stop the volcano-mode runtime. The
  // staged engine drains its own commit stage; the volcano-mode commit
  // runtime is ours: drain while its workers are alive, then stop them.
  if (vacuum_ != nullptr) vacuum_->Drain();
  if (own_group_commit_ != nullptr) own_group_commit_->Drain();
  if (commit_runtime_ != nullptr) commit_runtime_->Shutdown();
}

StatusOr<std::unique_ptr<Database>> Database::Open(DatabaseOptions options) {
  std::unique_ptr<Database> db(new Database(std::move(options)));
  db->disk_ = std::make_unique<storage::MemDiskManager>(
      db->options_.disk_latency_micros);
  db->pool_ = std::make_unique<storage::BufferPool>(
      db->disk_.get(), db->options_.buffer_pool_pages);
  db->catalog_ = std::make_unique<catalog::Catalog>(db->pool_.get());
  if (db->durable()) {
    auto wal_or = storage::WriteAheadLog::Open(db->options_.wal_path);
    if (!wal_or.ok()) return wal_or.status();
    db->wal_ = std::move(*wal_or);
  } else {
    db->wal_ = std::make_unique<storage::WriteAheadLog>();
  }
  db->txn_mgr_ =
      std::make_unique<storage::TransactionManager>(db->wal_.get());
  db->txn_mgr_->lock_manager()->set_timeout_micros(
      db->options_.lock_timeout_micros);
  if (db->options_.concurrency == ConcurrencyMode::kSnapshot) {
    // Before recovery: replayed rows must be installed with version headers
    // (begin = 0, committed-at-bootstrap) like every other MVCC record.
    db->catalog_->EnableMvcc(db->txn_mgr_.get());
  }
  if (db->durable()) {
    // Replay the log before the engines exist: committed transactions are
    // redone through the catalog (rebuilding tables, indexes, statistics),
    // losers are skipped, and the torn tail was already truncated by
    // WriteAheadLog::Open.
    CatalogRecoveryApplier applier(db.get());
    STAGEDB_RETURN_IF_ERROR(
        db->txn_mgr_->Recover(&applier, &db->recovery_stats_));
  }
  if (db->options_.plan_cache) {
    db->plan_cache_ = std::make_unique<frontend::PlanCache>(
        db->options_.plan_cache_capacity, db->options_.plan_cache_shards);
  }
  const bool group_commit = db->durable() && db->options_.group_commit;
  if (db->options_.mode == ExecutionMode::kStaged) {
    engine::StagedEngineOptions opts;
    opts.exchange_capacity_pages = db->options_.exchange_buffer_pages;
    opts.tuples_per_page = db->options_.tuples_per_page;
    opts.spsc_exchange = db->options_.spsc_exchange;
    opts.threads_per_stage = db->options_.threads_per_stage;
    opts.shared_scans = db->options_.shared_scans;
    opts.scheduler = db->options_.scheduler;
    opts.scheduler_gate_rounds = db->options_.scheduler_gate_rounds;
    opts.stage_pools = db->options_.stage_pools;
    opts.max_dop = db->options_.max_dop;
    if (group_commit) {
      // The commit stage rides the engine's own runtime: "commit" appears
      // beside fscan/join in the stage table and obeys the same policy.
      opts.wal = db->wal_.get();
      opts.group_commit_max_batch = db->options_.group_commit_max_batch;
      opts.group_commit_max_wait_us = db->options_.group_commit_max_wait_us;
    }
    // Let the planner emit parallel shapes up to the engine's cap. Volcano
    // mode skips this (below), so its planner never produces them.
    db->options_.planner.max_dop = db->options_.max_dop;
    db->staged_ =
        std::make_unique<StagedEngineHandle>(db->catalog_.get(), opts);
    db->group_commit_ = db->staged_->engine.group_commit();
  } else {
    // The volcano engine runs every node on the calling thread: parallel
    // plan shapes would only add a partial/merge hop it cannot execute.
    db->options_.planner.max_dop = 1;
    if (group_commit) {
      db->commit_runtime_ = std::make_unique<engine::StageRuntime>(
          engine::SchedulerPolicy::kFreeRun);
      engine::GroupCommitStage::Options gc;
      gc.max_batch = db->options_.group_commit_max_batch;
      gc.max_wait_us = db->options_.group_commit_max_wait_us;
      db->own_group_commit_ = std::make_unique<engine::GroupCommitStage>(
          db->commit_runtime_.get(), db->wal_.get(), gc,
          engine::StagePoolSpec{1, -1});
      db->group_commit_ = db->own_group_commit_.get();
    }
  }
  if (db->options_.concurrency == ConcurrencyMode::kSnapshot) {
    // The vacuum stage rides the staged engine's runtime so "vacuum" shows
    // up beside fscan/commit in the stage table; in volcano mode it shares
    // the private commit runtime (created here if group commit did not).
    engine::StageRuntime* vac_runtime;
    if (db->options_.mode == ExecutionMode::kStaged) {
      vac_runtime = db->staged_->engine.runtime();
    } else {
      if (db->commit_runtime_ == nullptr) {
        db->commit_runtime_ = std::make_unique<engine::StageRuntime>(
            engine::SchedulerPolicy::kFreeRun);
      }
      vac_runtime = db->commit_runtime_.get();
    }
    engine::VacuumStage::Options vo;
    vo.window_us = db->options_.vacuum_window_us;
    db->vacuum_ = std::make_unique<engine::VacuumStage>(
        vac_runtime, db->catalog_.get(), vo, engine::StagePoolSpec{1, -1});
  }
  return db;
}

void Database::set_wal_fault_injector(storage::WriteFaultInjector* injector) {
  wal_->set_fault_injector(injector);
}

StatusOr<int64_t> Database::BeginWalTxn() {
  const int64_t txn_id = txn_mgr_->AllocateTxnId();
  storage::WalRecord r;
  r.txn_id = txn_id;
  r.type = storage::WalRecord::Type::kBegin;
  auto lsn_or = wal_->Append(std::move(r));
  if (!lsn_or.ok()) return lsn_or.status();
  return txn_id;
}

Status Database::CommitWalTxn(int64_t txn_id, int64_t commit_ts) {
  if (group_commit_ != nullptr) {
    return group_commit_->Submit(txn_id, commit_ts)->Wait();
  }
  storage::WalRecord r;
  r.txn_id = txn_id;
  r.type = storage::WalRecord::Type::kCommit;
  r.ts = commit_ts;
  auto lsn_or = wal_->Append(std::move(r));
  if (!lsn_or.ok()) return lsn_or.status();
  return wal_->Sync();
}

void Database::AbortWalTxn(int64_t txn_id) {
  storage::WalRecord r;
  r.txn_id = txn_id;
  r.type = storage::WalRecord::Type::kAbort;
  (void)wal_->Append(std::move(r));
}

Status Database::AppendDdl(storage::WalRecord record) {
  auto lsn_or = wal_->Append(std::move(record));
  if (!lsn_or.ok()) return lsn_or.status();
  // DDL is auto-committed: durable before the statement acks.
  return wal_->Sync();
}

Status Database::FinishMvccTxn(storage::MvccTxn* txn, bool ok, int64_t* cts) {
  *cts = 0;
  Status st;
  if (ok && !txn->writes.empty()) {
    // Visibility before durability: the commit timestamp is allocated and
    // published here; the caller then stamps it on the WAL COMMIT record.
    const storage::Ts ts = txn_mgr_->AllocateCommitTs();
    st = catalog_->MvccCommit(txn, ts);
    if (st.ok()) *cts = ts;
  } else if (!ok) {
    st = catalog_->MvccAbort(txn);
  }
  if (txn->registered) {
    txn_mgr_->ReleaseSnapshot(txn->snapshot);
    txn->registered = false;
  }
  if (*cts != 0) MaybeWakeVacuum();
  return st;
}

void Database::MaybeWakeVacuum() {
  if (vacuum_ == nullptr) return;
  if (txn_mgr_->dead_versions() >= options_.vacuum_dead_threshold) {
    vacuum_->Wake();
  }
}

StatusOr<int64_t> Database::VacuumNow() {
  if (!snapshot_mode()) {
    return Status::InvalidArgument("vacuum requires snapshot concurrency mode");
  }
  txn_mgr_->ResetDeadVersions();
  return catalog_->MvccVacuum();
}

namespace {
bool IsDmlPlan(const PhysicalPlan* plan) {
  return plan->kind == optimizer::PlanKind::kInsert ||
         plan->kind == optimizer::PlanKind::kDelete ||
         plan->kind == optimizer::PlanKind::kUpdate;
}

/// Table-lock requests of a plan: table id -> needs exclusive. The DML node
/// itself locks exclusive; every other table-bearing node (the scans,
/// including the scan feeding a DELETE/UPDATE of the same table) is shared —
/// the map keeps the strongest mode per table.
void CollectLockRequests(const PhysicalPlan* plan,
                         std::map<int32_t, bool>* out) {
  if (plan->table != nullptr) {
    const bool exclusive = IsDmlPlan(plan);
    auto [it, inserted] = out->emplace(plan->table->id, exclusive);
    if (!inserted && exclusive) it->second = true;
  }
  for (const auto& child : plan->children) {
    CollectLockRequests(child.get(), out);
  }
}
}  // namespace

StatusOr<int64_t> Database::AcquireStatementLocks(const PhysicalPlan* plan) {
  std::map<int32_t, bool> requests;
  CollectLockRequests(plan, &requests);
  if (requests.empty()) return 0;
  const int64_t lock_txn = txn_mgr_->AllocateTxnId();
  storage::LockManager* lm = txn_mgr_->lock_manager();
  // std::map iteration = ascending table id: every statement acquires in the
  // same global order, so timeouts fire only under true contention pile-ups.
  for (const auto& [table_id, exclusive] : requests) {
    const Status s = exclusive ? lm->AcquireExclusive(lock_txn, table_id)
                               : lm->AcquireShared(lock_txn, table_id);
    if (!s.ok()) {
      lm->ReleaseAll(lock_txn);
      return s;
    }
  }
  return lock_txn;
}

engine::StageRuntime::StatsSnapshot Database::EngineStats() const {
  engine::StageRuntime::StatsSnapshot snap;
  if (staged_ != nullptr) snap = staged_->engine.runtime()->Stats();
  if (plan_cache_ != nullptr) {
    const frontend::PlanCacheStats cache = plan_cache_->Stats();
    snap.plan_cache.hits = cache.hits;
    snap.plan_cache.misses = cache.misses;
    snap.plan_cache.invalidations = cache.invalidations;
    snap.plan_cache.evictions = cache.evictions;
    snap.plan_cache.entries = cache.entries;
  }
  if (group_commit_ != nullptr) {
    snap.group_commit = group_commit_->counters();
    if (options_.mode != ExecutionMode::kStaged &&
        commit_runtime_ != nullptr) {
      // Volcano mode has no engine snapshot; surface the commit stage's own
      // runtime rows so `commit` is observable there too.
      for (auto& stage : commit_runtime_->Stats().stages) {
        snap.stages.push_back(std::move(stage));
      }
    }
  }
  return snap;
}

frontend::PlanCacheStats Database::CacheStats() const {
  if (plan_cache_ == nullptr) return {};
  return plan_cache_->Stats();
}

int64_t Database::statements_executed() const {
  return const_cast<StatsRegistry&>(stats_)
      .GetCounter("db.statements")
      ->value();
}

StatusOr<std::string> Database::Explain(const std::string& sql) {
  auto stmt = parser::ParseStatement(sql, catalog_->symbols());
  if (!stmt.ok()) return stmt.status();
  Planner planner(catalog_.get(), options_.planner);
  auto plan = planner.Plan(**stmt);
  if (!plan.ok()) return plan.status();
  return (*plan)->ToString();
}

StatusOr<std::shared_ptr<const frontend::CachedPlan>> Database::GetOrPlanCached(
    const frontend::NormalizedStatement& norm) {
  if (plan_cache_ != nullptr) {
    if (auto hit = plan_cache_->Lookup(norm.key, catalog_->version())) {
      return hit;
    }
  }
  // The facade performs the parse and optimize work itself, so it owns the
  // per-stage counters here; the staged server counts its own stage visits.
  stats_.GetCounter("stage.parse.packets")->Add(1);
  parser::internal::Parser parser(norm.tokens, catalog_->symbols());
  auto stmt = parser.ParseSingle();
  if (!stmt.ok()) return stmt.status();
  stats_.GetCounter("stage.optimize.packets")->Add(1);
  return PlanAndCacheTemplate(**stmt, norm);
}

StatusOr<std::shared_ptr<const frontend::CachedPlan>>
Database::PlanAndCacheTemplate(const parser::Statement& stmt,
                               const frontend::NormalizedStatement& norm) {
  // Read the epoch BEFORE planning: if a DDL interleaves, the entry is
  // tagged with an epoch older than the catalog's — a conservative stale
  // mark that forces a replan — never the other way around.
  const uint64_t epoch = catalog_->version();
  Planner planner(catalog_.get(), options_.planner);
  auto plan = planner.Plan(stmt, &norm.param_types);
  if (!plan.ok()) return plan.status();
  auto entry = std::make_shared<frontend::CachedPlan>();
  entry->plan = std::move(*plan);
  entry->num_params = norm.num_params;
  entry->param_types = norm.param_types;
  entry->epoch = epoch;
  if (plan_cache_ != nullptr) plan_cache_->Insert(norm.key, entry);
  return std::shared_ptr<const frontend::CachedPlan>(std::move(entry));
}

StatusOr<std::shared_ptr<PreparedStatement>> Database::Prepare(
    const std::string& sql) {
  auto norm = frontend::Normalize(sql);
  if (!norm.ok()) return norm.status();
  if (!norm->cacheable) {
    return Status::InvalidArgument(
        "only SELECT/INSERT/UPDATE/DELETE statements can be prepared");
  }
  // Eager validation: parse + plan the template now (also warms the cache).
  auto entry = GetOrPlanCached(*norm);
  if (!entry.ok()) return entry.status();
  auto prepared = std::make_shared<PreparedStatement>();
  prepared->norm_ = std::move(*norm);
  return prepared;
}

StatusOr<QueryResult> Database::ExecutePrepared(
    const PreparedStatement& stmt, const std::vector<catalog::Value>& params) {
  stats_.GetCounter("db.statements")->Add(1);
  const std::vector<catalog::Value>& effective =
      (params.empty() && stmt.norm_.auto_params) ? stmt.norm_.params : params;
  if (effective.size() != stmt.num_params()) {
    return Status::InvalidArgument(
        StrFormat("statement takes %zu parameter(s), got %zu",
                  stmt.num_params(), effective.size()));
  }
  auto entry = GetOrPlanCached(stmt.norm_);
  if (!entry.ok()) return entry.status();
  auto plan = frontend::InstantiatePlan(*(*entry)->plan, effective);
  if (!plan.ok()) return plan.status();
  return ExecutePlanned(plan->get());
}

StatusOr<std::shared_ptr<PendingQuery>> Database::SubmitPrepared(
    const PreparedStatement& stmt, const std::vector<catalog::Value>& params) {
  if (options_.mode != ExecutionMode::kStaged) {
    return Status::InvalidArgument(
        "SubmitPrepared requires staged execution mode");
  }
  stats_.GetCounter("db.statements")->Add(1);
  const std::vector<catalog::Value>& effective =
      (params.empty() && stmt.norm_.auto_params) ? stmt.norm_.params : params;
  if (effective.size() != stmt.num_params()) {
    return Status::InvalidArgument(
        StrFormat("statement takes %zu parameter(s), got %zu",
                  stmt.num_params(), effective.size()));
  }
  auto entry = GetOrPlanCached(stmt.norm_);
  if (!entry.ok()) return entry.status();
  auto plan = frontend::InstantiatePlan(*(*entry)->plan, effective);
  if (!plan.ok()) return plan.status();
  auto pending = SubmitPlanned(plan->get());
  if (!pending.ok()) return pending.status();
  // The engine executes against the plan's nodes; the instantiated plan must
  // live as long as the in-flight query.
  (*pending)->owned_plan_ = std::move(*plan);
  return pending;
}

StatusOr<QueryResult> Database::Execute(const std::string& sql) {
  stats_.GetCounter("db.statements")->Add(1);
  // --- front-end work reuse: serve repeated/parameterized statements from
  // the plan cache, skipping parse + optimize on a hit ---
  if (plan_cache_ != nullptr) {
    auto norm = frontend::Normalize(sql);
    if (norm.ok() && norm->cacheable && norm->auto_params) {
      auto entry = GetOrPlanCached(*norm);
      if (!entry.ok()) return entry.status();
      auto plan = frontend::InstantiatePlan(*(*entry)->plan, norm->params);
      if (!plan.ok()) return plan.status();
      return ExecutePlanned(plan->get());
    }
    // Not cacheable (DDL, txn control, explicit '?', lex error): fall
    // through to the direct path, which reports any error as before.
  }
  // --- parse stage ---
  auto stmt_or = parser::ParseStatement(sql, catalog_->symbols());
  if (!stmt_or.ok()) return stmt_or.status();
  stats_.GetCounter("stage.parse.packets")->Add(1);
  const parser::Statement& stmt = **stmt_or;

  QueryResult result;
  using Kind = parser::Statement::Kind;
  switch (stmt.kind) {
    case Kind::kCreateTable: {
      const auto& ct = static_cast<const parser::CreateTableStmt&>(stmt);
      std::vector<catalog::Column> cols;
      for (const auto& def : ct.columns) {
        cols.push_back({def.name, def.type, ""});
      }
      const std::string schema_payload = SerializeSchema(cols);
      auto table = catalog_->CreateTable(ct.table, Schema(std::move(cols)));
      if (!table.ok()) return table.status();
      txn_mgr_->RegisterTable((*table)->id, (*table)->heap.get());
      if (durable()) {
        storage::WalRecord r;
        r.type = storage::WalRecord::Type::kCreateTable;
        r.table_id = (*table)->id;
        r.before = ct.table;
        r.after = schema_payload;
        STAGEDB_RETURN_IF_ERROR(AppendDdl(std::move(r)));
      }
      result.schema = Schema({{"status", TypeId::kVarchar, ""}});
      result.rows = {{catalog::Value::Varchar("ok")}};
      return result;
    }
    case Kind::kCreateIndex: {
      const auto& ci = static_cast<const parser::CreateIndexStmt&>(stmt);
      auto index = catalog_->CreateIndex(ci.index, ci.table, ci.column);
      if (!index.ok()) return index.status();
      if (durable()) {
        storage::WalRecord r;
        r.type = storage::WalRecord::Type::kCreateIndex;
        r.before = ci.index;
        r.after = ci.table;
        r.after.push_back(kUnitSep);
        r.after += ci.column;
        STAGEDB_RETURN_IF_ERROR(AppendDdl(std::move(r)));
      }
      result.schema = Schema({{"status", TypeId::kVarchar, ""}});
      result.rows = {{catalog::Value::Varchar("ok")}};
      return result;
    }
    case Kind::kDropTable: {
      const auto& dt = static_cast<const parser::DropTableStmt&>(stmt);
      STAGEDB_RETURN_IF_ERROR(catalog_->DropTable(dt.table));
      if (durable()) {
        storage::WalRecord r;
        r.type = storage::WalRecord::Type::kDropTable;
        r.before = dt.table;
        STAGEDB_RETURN_IF_ERROR(AppendDdl(std::move(r)));
      }
      result.schema = Schema({{"status", TypeId::kVarchar, ""}});
      result.rows = {{catalog::Value::Varchar("ok")}};
      return result;
    }
    case Kind::kBegin: {
      MutexLock lock(txn_mu_);
      if (active_txn_ != nullptr || active_mvcc_txn_ != nullptr) {
        return Status::InvalidArgument("transaction already in progress");
      }
      if (durable()) {
        auto txn_or = BeginWalTxn();
        if (!txn_or.ok()) return txn_or.status();
        active_wal_txn_ = *txn_or;
      }
      if (snapshot_mode()) {
        // The transaction's snapshot is fixed here: every statement inside
        // the BEGIN reads the same commit point, and the MvccTxn's write set
        // doubles as the undo log (no MutationLog).
        active_mvcc_txn_ = std::make_unique<storage::MvccTxn>();
        active_mvcc_txn_->id = txn_mgr_->AllocateTxnId();
        active_mvcc_txn_->snapshot = txn_mgr_->BeginSnapshot();
        active_mvcc_txn_->registered = true;
      } else {
        active_txn_ = std::make_unique<exec::MutationLog>();
      }
      result.schema = Schema({{"status", TypeId::kVarchar, ""}});
      result.rows = {{catalog::Value::Varchar("ok")}};
      return result;
    }
    case Kind::kCommit: {
      int64_t wal_txn = 0;
      std::unique_ptr<storage::MvccTxn> mvcc_txn;
      {
        MutexLock lock(txn_mu_);
        if (active_txn_ == nullptr && active_mvcc_txn_ == nullptr) {
          return Status::InvalidArgument("no transaction in progress");
        }
        active_txn_.reset();
        mvcc_txn = std::move(active_mvcc_txn_);
        wal_txn = active_wal_txn_;
        active_wal_txn_ = 0;
      }
      int64_t cts = 0;
      if (mvcc_txn != nullptr) {
        const Status st = FinishMvccTxn(mvcc_txn.get(), true, &cts);
        if (!st.ok()) {
          if (wal_txn != 0) AbortWalTxn(wal_txn);
          return st;
        }
      }
      if (wal_txn != 0) {
        // COMMIT does not ack until the log is durable (group-commit ticket
        // or inline fsync). The MVCC commit timestamp rides the record.
        STAGEDB_RETURN_IF_ERROR(CommitWalTxn(wal_txn, cts));
      }
      result.schema = Schema({{"status", TypeId::kVarchar, ""}});
      result.rows = {{catalog::Value::Varchar("ok")}};
      return result;
    }
    case Kind::kRollback: {
      MutexLock lock(txn_mu_);
      if (active_txn_ == nullptr && active_mvcc_txn_ == nullptr) {
        return Status::InvalidArgument("no transaction in progress");
      }
      if (active_txn_ != nullptr) {
        STAGEDB_RETURN_IF_ERROR(active_txn_->Rollback(catalog_.get()));
        active_txn_.reset();
      }
      if (active_mvcc_txn_ != nullptr) {
        auto mvcc_txn = std::move(active_mvcc_txn_);
        int64_t cts = 0;
        STAGEDB_RETURN_IF_ERROR(FinishMvccTxn(mvcc_txn.get(), false, &cts));
      }
      if (active_wal_txn_ != 0) {
        AbortWalTxn(active_wal_txn_);
        active_wal_txn_ = 0;
      }
      result.schema = Schema({{"status", TypeId::kVarchar, ""}});
      result.rows = {{catalog::Value::Varchar("ok")}};
      return result;
    }
    default:
      break;
  }

  // --- optimize stage ---
  Planner planner(catalog_.get(), options_.planner);
  auto plan_or = planner.Plan(stmt);
  if (!plan_or.ok()) return plan_or.status();
  stats_.GetCounter("stage.optimize.packets")->Add(1);
  const std::unique_ptr<PhysicalPlan>& plan = *plan_or;

  return ExecutePlanned(plan.get());
}

StatusOr<QueryResult> Database::ExecutePlanned(const PhysicalPlan* plan) {
  // A template must be instantiated first: the engines ignore parameterized
  // index bounds and unevaluated VALUES rows, so executing one would return
  // wrong results (full-range scans, zero-row inserts), not fail.
  if (plan->IsTemplate()) {
    return Status::InvalidArgument(
        "statement contains '?' parameters; use Prepare/ExecutePrepared");
  }
  QueryResult result;
  result.schema = plan->schema;
  result.plan_text = plan->ToString();

  // kTableLock: the blocking baseline. Locks are held for the statement's
  // whole duration (through the commit), released on every exit path below.
  int64_t lock_txn = 0;
  if (options_.concurrency == ConcurrencyMode::kTableLock) {
    auto lock_or = AcquireStatementLocks(plan);
    if (!lock_or.ok()) return lock_or.status();
    lock_txn = *lock_or;
  }
  const auto unlock = [this, lock_txn] {
    if (lock_txn != 0) txn_mgr_->lock_manager()->ReleaseAll(lock_txn);
  };

  exec::ExecContext ctx;
  ctx.catalog = catalog_.get();
  // Durable DML runs under a wal transaction: a statement inside an explicit
  // BEGIN logs under that txn id (committed at COMMIT time); a standalone
  // statement auto-commits — BEGIN record, row records from the executors,
  // then a durable COMMIT before the statement acks.
  std::unique_ptr<DatabaseWalSink> sink;
  std::unique_ptr<storage::MvccTxn> stmt_mvcc;
  int64_t wal_txn = 0;
  bool auto_commit = false;
  {
    MutexLock lock(txn_mu_);
    ctx.mutation_log = active_txn_.get();
    if (snapshot_mode()) {
      // Inside an explicit BEGIN, statements share the transaction's
      // snapshot and write set; standalone statements get their own
      // MvccTxn, committed or aborted right after execution.
      if (active_mvcc_txn_ != nullptr) {
        ctx.mvcc = active_mvcc_txn_.get();
      } else {
        stmt_mvcc = std::make_unique<storage::MvccTxn>();
        if (IsDmlPlan(plan)) stmt_mvcc->id = txn_mgr_->AllocateTxnId();
        stmt_mvcc->snapshot = txn_mgr_->BeginSnapshot();
        stmt_mvcc->registered = true;
        ctx.mvcc = stmt_mvcc.get();
      }
    }
    if (durable() && IsDmlPlan(plan)) {
      const bool in_txn = active_txn_ != nullptr || active_mvcc_txn_ != nullptr;
      if (in_txn && active_wal_txn_ != 0) {
        wal_txn = active_wal_txn_;
      } else {
        auto txn_or = BeginWalTxn();
        if (!txn_or.ok()) {
          if (stmt_mvcc != nullptr && stmt_mvcc->registered) {
            txn_mgr_->ReleaseSnapshot(stmt_mvcc->snapshot);
          }
          unlock();
          return txn_or.status();
        }
        wal_txn = *txn_or;
        auto_commit = true;
      }
      sink = std::make_unique<DatabaseWalSink>(this, wal_txn);
      ctx.wal = sink.get();
    }
  }

  stats_.GetCounter("stage.execute.packets")->Add(1);
  auto rows = options_.mode == ExecutionMode::kStaged
                  ? staged_->engine.Execute(plan, &ctx)
                  : exec::ExecutePlan(plan, &ctx);
  if (!rows.ok()) {
    int64_t cts = 0;
    if (stmt_mvcc != nullptr) (void)FinishMvccTxn(stmt_mvcc.get(), false, &cts);
    if (auto_commit) AbortWalTxn(wal_txn);
    unlock();
    return rows.status();
  }
  int64_t cts = 0;
  if (stmt_mvcc != nullptr) {
    const Status st = FinishMvccTxn(stmt_mvcc.get(), true, &cts);
    if (!st.ok()) {
      if (auto_commit) AbortWalTxn(wal_txn);
      unlock();
      return st;
    }
  }
  if (auto_commit) {
    const Status st = CommitWalTxn(wal_txn, cts);
    if (!st.ok()) {
      unlock();
      return st;
    }
  }
  unlock();
  result.rows = std::move(*rows);
  return result;
}

StatusOr<std::shared_ptr<PendingQuery>> Database::SubmitPlanned(
    const PhysicalPlan* plan) {
  if (options_.mode != ExecutionMode::kStaged) {
    return Status::InvalidArgument(
        "SubmitPlanned requires staged execution mode");
  }
  if (plan->IsTemplate()) {
    return Status::InvalidArgument(
        "statement contains '?' parameters; use Prepare/ExecutePrepared");
  }
  // kTableLock: acquired before submission, held across the asynchronous
  // execution, released by the finalize epilogue (Await or the destructor).
  int64_t lock_txn = 0;
  if (options_.concurrency == ConcurrencyMode::kTableLock) {
    auto lock_or = AcquireStatementLocks(plan);
    if (!lock_or.ok()) return lock_or.status();
    lock_txn = *lock_or;
  }

  auto pending = std::make_shared<PendingQuery>();
  pending->schema_ = plan->schema;
  pending->plan_text_ = plan->ToString();
  pending->ctx_.catalog = catalog_.get();
  {
    MutexLock lock(txn_mu_);
    pending->ctx_.mutation_log = active_txn_.get();
    if (snapshot_mode()) {
      if (active_mvcc_txn_ != nullptr) {
        pending->ctx_.mvcc = active_mvcc_txn_.get();
      } else {
        pending->mvcc_txn_ = std::make_unique<storage::MvccTxn>();
        if (IsDmlPlan(plan)) {
          pending->mvcc_txn_->id = txn_mgr_->AllocateTxnId();
        }
        pending->mvcc_txn_->snapshot = txn_mgr_->BeginSnapshot();
        pending->mvcc_txn_->registered = true;
        pending->ctx_.mvcc = pending->mvcc_txn_.get();
      }
    }
    int64_t wal_txn = 0;
    bool wal_auto = false;
    if (durable() && IsDmlPlan(plan)) {
      const bool in_txn = active_txn_ != nullptr || active_mvcc_txn_ != nullptr;
      if (in_txn && active_wal_txn_ != 0) {
        wal_txn = active_wal_txn_;
      } else {
        auto txn_or = BeginWalTxn();
        if (!txn_or.ok()) {
          if (pending->mvcc_txn_ != nullptr && pending->mvcc_txn_->registered) {
            txn_mgr_->ReleaseSnapshot(pending->mvcc_txn_->snapshot);
            pending->mvcc_txn_->registered = false;
          }
          if (lock_txn != 0) txn_mgr_->lock_manager()->ReleaseAll(lock_txn);
          return txn_or.status();
        }
        wal_txn = *txn_or;
        wal_auto = true;
      }
      auto sink = std::make_unique<DatabaseWalSink>(this, wal_txn);
      pending->ctx_.wal = sink.get();
      pending->wal_sink_ = std::move(sink);
    }
    // One epilogue finishes the statement: MVCC commit/abort, durable wal
    // commit (or abort), lock release — in that order, so visibility is
    // published before the durability wait and locks cover the whole
    // statement. Runs exactly once, from Await or ~PendingQuery.
    storage::MvccTxn* stmt_mvcc = pending->mvcc_txn_.get();
    if (stmt_mvcc != nullptr || wal_auto || lock_txn != 0) {
      pending->wal_finalize_ = [this, stmt_mvcc, wal_txn, wal_auto,
                                lock_txn](bool ok) -> Status {
        Status st;
        int64_t cts = 0;
        if (stmt_mvcc != nullptr) st = FinishMvccTxn(stmt_mvcc, ok, &cts);
        if (wal_auto) {
          if (!ok || !st.ok()) {
            AbortWalTxn(wal_txn);
          } else {
            st = CommitWalTxn(wal_txn, cts);
          }
        }
        if (lock_txn != 0) txn_mgr_->lock_manager()->ReleaseAll(lock_txn);
        return st;
      };
    }
  }
  stats_.GetCounter("stage.execute.packets")->Add(1);
  pending->query_ = staged_->engine.Submit(plan, &pending->ctx_);
  return pending;
}

}  // namespace stagedb::server
