// The embedded database facade: the public API a downstream user programs
// against. Wraps storage, catalog, parser, optimizer, and both execution
// engines behind a single Execute(sql) entry point.
#ifndef STAGEDB_SERVER_DATABASE_H_
#define STAGEDB_SERVER_DATABASE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/mutex.h"
#include "common/stats.h"
#include "common/status.h"
#include "engine/runtime.h"
#include "exec/executor.h"
#include "frontend/normalizer.h"
#include "frontend/plan_cache.h"
#include "optimizer/planner.h"
#include "storage/disk_manager.h"
#include "storage/txn.h"
#include "storage/wal.h"

namespace stagedb::engine {
class GroupCommitStage;
class StagedQuery;
class VacuumStage;
}  // namespace stagedb::engine

namespace stagedb::server {

/// How SELECT plans are executed.
enum class ExecutionMode {
  kVolcano,  ///< single-worker iterator model (the traditional baseline)
  kStaged,   ///< the paper's staged engine (operator stages + packets)
};

/// Statement-level concurrency control across concurrent Execute callers.
enum class ConcurrencyMode {
  /// The seed behaviour: no table locks, no version headers. Concurrent
  /// statements rely on page latches only (readers may observe a concurrent
  /// statement's partial effects).
  kNone,
  /// Shared/exclusive table locks per statement: scans lock their tables
  /// shared, DML locks its target exclusive, for the statement's duration.
  /// The measurable blocking baseline — an analytics scan stalls every
  /// update on its table and vice versa.
  kTableLock,
  /// Multi-version snapshot isolation: every statement reads a registered
  /// commit-ordered snapshot, updates install new row versions instead of
  /// mutating in place, and a background vacuum stage reclaims versions
  /// older than the oldest live snapshot. Readers never block writers and
  /// never take table locks; write-write conflicts abort the second writer
  /// (first-updater-wins).
  kSnapshot,
};

struct DatabaseOptions {
  size_t buffer_pool_pages = 8192;
  /// Injected per-I/O latency on the (memory-backed) disk; 0 = fast.
  int64_t disk_latency_micros = 0;
  optimizer::PlannerOptions planner;
  ExecutionMode mode = ExecutionMode::kVolcano;
  /// Staged engine knobs (ignored in volcano mode).
  size_t exchange_buffer_pages = 4;
  size_t tuples_per_page = 64;
  /// Lock-free SPSC ring on single-producer exchange edges (see
  /// StagedEngineOptions::spsc_exchange). False = every edge uses the mutex
  /// buffer, the pre-ring wiring.
  bool spsc_exchange = true;
  int threads_per_stage = 1;
  /// Cooperative shared scans at the fscan stages (§5.4 run-time sharing).
  bool shared_scans = true;
  /// Global scheduling policy across the engine's operator stages (the
  /// Figure-5 family; see engine/runtime.h) and the T-gated(k) round bound.
  engine::SchedulerPolicy scheduler = engine::SchedulerPolicy::kFreeRun;
  int scheduler_gate_rounds = 2;
  /// Partitioned intra-query parallelism (§4.3): maximum number of partition
  /// packets one hash-join or aggregation may fan out to inside the staged
  /// engine. Threaded into both the planner (which tags eligible plan nodes
  /// with a DOP; see PlannerOptions::max_dop / parallel_min_rows) and the
  /// engine (which clamps at instantiation). Ignored in volcano mode. The
  /// default of 1 keeps plans and execution identical to pre-DOP builds;
  /// pair values > 1 with stage_pools entries sized to match (e.g. "join"
  /// and "aggr" pools of max_dop workers).
  int max_dop = 1;
  /// Per-stage worker-pool overrides (size + optional core pin), keyed by
  /// stage name; stages without an entry get threads_per_stage workers.
  std::map<std::string, engine::StagePoolSpec> stage_pools;
  /// Front-end work reuse (§2/§5): cache normalized statements' bound plan
  /// templates so repeated/parameterized statements skip parse + optimize.
  /// Shared by Execute, Prepare/ExecutePrepared, and both servers.
  bool plan_cache = true;
  size_t plan_cache_capacity = 256;
  size_t plan_cache_shards = 8;
  /// Durability. When non-empty, the database keeps a CRC-framed write-ahead
  /// log at this path: DDL and committed DML survive a crash, and Open
  /// replays the log (committed transactions redone, losers skipped, torn
  /// tail truncated) before serving queries. Empty = in-memory database, the
  /// seed behaviour.
  std::string wal_path;
  /// Batch commits through the group-commit stage (one fdatasync per batch
  /// window) instead of one fdatasync per commit. Only meaningful with
  /// wal_path set.
  bool group_commit = true;
  int group_commit_max_batch = 64;
  int64_t group_commit_max_wait_us = 200;
  /// Statement-level concurrency control. kNone keeps the seed semantics;
  /// kTableLock and kSnapshot are the lock-based baseline and the MVCC
  /// design compared by bench/ablation_snapshot_reads.
  ConcurrencyMode concurrency = ConcurrencyMode::kNone;
  /// kTableLock: how long a statement waits for a table lock before its
  /// acquisition times out (the deadlock-resolution policy).
  int64_t lock_timeout_micros = 200000;
  /// kSnapshot: wake the vacuum stage once this many delete marks have
  /// committed since the last pass (0 = wake after every committing delete).
  int64_t vacuum_dead_threshold = 64;
  /// kSnapshot: batching window of the vacuum stage — a wake waits this long
  /// so a burst of committing deletes coalesces into one pass.
  int64_t vacuum_window_us = 1000;
};

/// Result of one statement.
struct QueryResult {
  catalog::Schema schema;
  std::vector<catalog::Tuple> rows;
  std::string plan_text;  // EXPLAIN-style rendering of the executed plan
  /// A short human-readable summary ("3 rows", "ok").
  std::string ToString() const;
};

/// Handle on a query submitted asynchronously to the staged engine (see
/// Database::SubmitPlanned). Owns the execution context for the query's
/// lifetime; Await consumes the result and must be called at most once.
class PendingQuery {
 public:
  /// If the query was never awaited, finishes it and runs the finalize
  /// epilogue with ok=false — an abandoned statement must not commit, leak
  /// its wal transaction, or pin the vacuum horizon with its snapshot.
  ~PendingQuery();

  /// Blocks until the query completes and returns its result.
  StatusOr<QueryResult> Await();
  /// True once the query has completed (Await would not block).
  bool done() const;
  /// Fires `callback` exactly once on completion (immediately if already
  /// done); used by the staged server to park lifecycle packets instead of
  /// blocking an execute-stage worker.
  void NotifyOnDone(std::function<void()> callback);

 private:
  friend class Database;
  catalog::Schema schema_;
  std::string plan_text_;
  exec::ExecContext ctx_;
  std::shared_ptr<engine::StagedQuery> query_;
  /// Statement-finalize epilogue (set for DML on a WAL-backed database, and
  /// for every statement under kTableLock/kSnapshot): runs exactly once in
  /// Await (or the destructor) with whether execution succeeded, and
  /// completes the commit — MVCC publish, group-commit ticket wait, lock
  /// release — or aborts. Owns nothing beyond the capture; wal_sink_ keeps
  /// the context's sink alive until then.
  std::function<Status(bool)> wal_finalize_;
  std::unique_ptr<exec::WalSink> wal_sink_;
  /// Statement-scoped MVCC transaction (kSnapshot mode, no explicit BEGIN):
  /// the context points at it for the query's lifetime; wal_finalize_
  /// commits or aborts it.
  std::unique_ptr<storage::MvccTxn> mvcc_txn_;
  /// Set by SubmitPrepared: the engine executes against the plan's nodes, so
  /// an instantiated-on-the-fly plan must live as long as the query.
  std::unique_ptr<optimizer::PhysicalPlan> owned_plan_;
};

/// A prepared statement: the normalized form of one SQL statement, reusable
/// across executions with different parameter values. Created by
/// Database::Prepare; immutable and shareable across threads. The plan
/// template itself lives in the database's plan cache (keyed by the
/// normalized SQL), so a prepared statement survives cache eviction and
/// catalog-epoch invalidation — execution transparently replans.
class PreparedStatement {
 public:
  /// The normalized SQL (also the plan-cache key).
  const std::string& sql() const { return norm_.key; }
  /// Number of '?' parameters the statement takes.
  size_t num_params() const { return norm_.num_params; }
  /// True when the parameters were auto-extracted from literals (executing
  /// with no explicit values re-uses the extracted ones).
  bool auto_params() const { return norm_.auto_params; }

 private:
  friend class Database;
  frontend::NormalizedStatement norm_;
};

/// An embedded staged database instance. Thread-compatible: concurrent
/// Execute calls are allowed in both modes (the staged engine serializes
/// through its stages; the volcano engine runs on the caller's thread).
class Database {
 public:
  ~Database();

  static StatusOr<std::unique_ptr<Database>> Open(DatabaseOptions options = {});

  /// Parses, plans, and executes one SQL statement.
  StatusOr<QueryResult> Execute(const std::string& sql);

  /// Parses and plans only (EXPLAIN). Always plans fresh (never consults or
  /// populates the plan cache).
  StatusOr<std::string> Explain(const std::string& sql);

  /// Prepares a statement for repeated execution: normalizes it, plans the
  /// bound template, and warms the plan cache. Only SELECT / INSERT /
  /// UPDATE / DELETE can be prepared. Statements with explicit '?'
  /// placeholders take values at ExecutePrepared time; statements written
  /// with literals are auto-parameterized (the literals become the default
  /// parameter values).
  StatusOr<std::shared_ptr<PreparedStatement>> Prepare(const std::string& sql);

  /// Executes a prepared statement with the given parameter values (empty =
  /// the auto-extracted defaults). A plan-cache hit skips parse and optimize
  /// entirely; a stale or evicted entry is transparently replanned under the
  /// current catalog epoch, so DDL between executions can never yield a
  /// stale-plan execution.
  StatusOr<QueryResult> ExecutePrepared(
      const PreparedStatement& stmt,
      const std::vector<catalog::Value>& params = {});

  /// Asynchronous counterpart of ExecutePrepared for the staged engine: the
  /// same normalize/replan/instantiate protocol, but the instantiated plan
  /// is submitted without blocking (the network front-end's EXECUTE fast
  /// path — Figure 3's precompiled bypass straight into the execute stage).
  /// Only available in kStaged mode; volcano callers use ExecutePrepared.
  StatusOr<std::shared_ptr<PendingQuery>> SubmitPrepared(
      const PreparedStatement& stmt,
      const std::vector<catalog::Value>& params = {});

  /// Executes an already-planned statement (used by the staged server's
  /// execute stage; Figure 3's precompiled-query bypass).
  StatusOr<QueryResult> ExecutePlanned(const optimizer::PhysicalPlan* plan);

  /// Submits an already-planned statement to the staged engine without
  /// blocking: returns a handle whose completion can be observed or awaited.
  /// Only available in kStaged mode (InvalidArgument otherwise) — callers
  /// fall back to ExecutePlanned. This is what lets concurrent queries
  /// genuinely overlap inside the execute stage (and share fscan elevators).
  StatusOr<std::shared_ptr<PendingQuery>> SubmitPlanned(
      const optimizer::PhysicalPlan* plan);

  catalog::Catalog* catalog() { return catalog_.get(); }
  storage::BufferPool* buffer_pool() { return pool_.get(); }
  storage::MemDiskManager* disk() { return disk_.get(); }
  StatsRegistry* stats() { return &stats_; }
  const DatabaseOptions& options() const { return options_; }

  /// The shared front-end plan cache (nullptr when disabled). The staged
  /// server's parse stage consults it directly; the threaded server reuses
  /// it through Execute.
  frontend::PlanCache* plan_cache() { return plan_cache_.get(); }
  /// Plan-cache counters (zeros when the cache is disabled).
  frontend::PlanCacheStats CacheStats() const;

  /// Looks up (or parses + plans and inserts) the plan template for a
  /// normalized statement, tagged with the catalog epoch observed *before*
  /// planning — a concurrent DDL therefore always marks the entry stale,
  /// never fresh. Works with the cache disabled (plans without memoizing).
  StatusOr<std::shared_ptr<const frontend::CachedPlan>> GetOrPlanCached(
      const frontend::NormalizedStatement& norm);

  /// The plan-and-publish half of GetOrPlanCached, for callers that already
  /// parsed the normalized statement (the staged server's optimize stage):
  /// plans the template under the pre-read epoch and inserts it into the
  /// cache. Both cache-population paths share this so the invalidation
  /// protocol lives in one place.
  StatusOr<std::shared_ptr<const frontend::CachedPlan>> PlanAndCacheTemplate(
      const parser::Statement& stmt, const frontend::NormalizedStatement& norm);

  /// Statement counts by lifecycle stage (connect/parse/optimize/execute),
  /// mirroring the monitoring hooks of the staged design.
  int64_t statements_executed() const;

  /// Per-stage scheduling/latency snapshot of the staged engine's runtime
  /// (queue depths, visits, packets per visit, wait/service histograms —
  /// §5.2 monitoring at stage granularity). Empty in volcano mode (except
  /// the group-commit counters, which a durable volcano database fills from
  /// its private commit runtime).
  engine::StageRuntime::StatsSnapshot EngineStats() const;

  /// True when this database is backed by a WAL (options().wal_path set).
  bool durable() const { return !options_.wal_path.empty(); }
  /// The write-ahead log (memory-only when wal_path is empty).
  storage::WriteAheadLog* wal() { return wal_.get(); }
  /// Counters from the last startup recovery pass (all zero when wal_path
  /// is unset or the log was empty).
  const storage::RecoveryStats& recovery_stats() const {
    return recovery_stats_;
  }
  /// Fault-injection passthrough to the WAL's log device (crash tests).
  void set_wal_fault_injector(storage::WriteFaultInjector* injector);

  /// kSnapshot only: runs one synchronous vacuum pass on the caller's thread
  /// and returns the number of versions physically reclaimed (tests and
  /// benchmarks; production reclamation rides the vacuum stage).
  StatusOr<int64_t> VacuumNow();
  /// The background vacuum stage (nullptr outside kSnapshot mode).
  engine::VacuumStage* vacuum_stage() { return vacuum_.get(); }
  /// The transaction manager (timestamp authority in kSnapshot mode).
  storage::TransactionManager* txn_manager() { return txn_mgr_.get(); }

 private:
  friend class DatabaseWalSink;
  friend class CatalogRecoveryApplier;
  explicit Database(DatabaseOptions options);

  /// Appends BEGIN for a fresh wal transaction and returns its id.
  StatusOr<int64_t> BeginWalTxn();
  /// Durably commits `txn_id`: a group-commit ticket when the commit stage
  /// exists, else an inline COMMIT append + Sync. `commit_ts` (kSnapshot
  /// mode) is stamped on the COMMIT record so recovery can restore the
  /// timestamp high-water mark.
  Status CommitWalTxn(int64_t txn_id, int64_t commit_ts = 0);
  /// Appends ABORT (absence of COMMIT already makes the txn a loser; the
  /// record is for log legibility). Best-effort.
  void AbortWalTxn(int64_t txn_id);
  /// Appends + syncs a DDL record (auto-committed at append time).
  Status AppendDdl(storage::WalRecord record);

  bool snapshot_mode() const {
    return options_.concurrency == ConcurrencyMode::kSnapshot;
  }
  /// Finishes an MVCC transaction: on ok, allocates a commit timestamp and
  /// publishes the write set (returned through `cts`; 0 when the txn wrote
  /// nothing); on failure, undoes the write set. Always releases the
  /// registered snapshot.
  Status FinishMvccTxn(storage::MvccTxn* txn, bool ok, int64_t* cts);
  /// Wakes the vacuum stage when the committed-delete counter crosses the
  /// configured threshold.
  void MaybeWakeVacuum();
  /// kTableLock: walks the plan, takes shared locks on scanned tables and
  /// exclusive locks on DML targets under a fresh lock-owner id, and returns
  /// that id (0 = the plan touches no tables). The caller releases via
  /// LockManager::ReleaseAll when the statement finishes.
  StatusOr<int64_t> AcquireStatementLocks(const optimizer::PhysicalPlan* plan);

  DatabaseOptions options_;
  std::unique_ptr<storage::MemDiskManager> disk_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::unique_ptr<catalog::Catalog> catalog_;
  std::unique_ptr<storage::WriteAheadLog> wal_;
  std::unique_ptr<storage::TransactionManager> txn_mgr_;
  std::unique_ptr<frontend::PlanCache> plan_cache_;
  StatsRegistry stats_;
  storage::RecoveryStats recovery_stats_;

  // Explicit SQL transaction state (single implicit session). kNone and
  // kTableLock record undo in a MutationLog; kSnapshot carries an MvccTxn
  // instead (its write set is the undo log).
  Mutex txn_mu_;
  std::unique_ptr<exec::MutationLog> active_txn_ GUARDED_BY(txn_mu_);
  std::unique_ptr<storage::MvccTxn> active_mvcc_txn_ GUARDED_BY(txn_mu_);
  // wal txn id of the open BEGIN (0 = none).
  int64_t active_wal_txn_ GUARDED_BY(txn_mu_) = 0;

  // Staged engine instance (created lazily in staged mode).
  std::unique_ptr<class StagedEngineHandle> staged_;

  // Volcano-mode commit path: a private free-run runtime hosting just the
  // commit stage (in staged mode the stage rides the engine's runtime).
  // Declaration order matters: own_group_commit_ is destroyed before
  // commit_runtime_, while the runtime's workers are still alive to serve
  // the drain.
  std::unique_ptr<engine::StageRuntime> commit_runtime_;
  std::unique_ptr<engine::GroupCommitStage> own_group_commit_;
  engine::GroupCommitStage* group_commit_ = nullptr;  // whichever exists

  // kSnapshot: the vacuum stage rides the staged engine's runtime (staged
  // mode) or commit_runtime_ (volcano mode; created even without group
  // commit). Declared last so it drains — while the host runtime's workers
  // are still alive — before either runtime is destroyed.
  std::unique_ptr<engine::VacuumStage> vacuum_;
};

}  // namespace stagedb::server

#endif  // STAGEDB_SERVER_DATABASE_H_
