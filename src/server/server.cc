#include "server/server.h"

#include <atomic>
#include <chrono>

#include "common/string_util.h"
#include "frontend/normalizer.h"
#include "frontend/plan_cache.h"
#include "optimizer/planner.h"
#include "parser/parser.h"

namespace stagedb::server {

using engine::RunOutcome;
using engine::Stage;
using engine::StageTask;

// ---------------------------------------------------------------- Request ---

StatusOr<QueryResult> Request::Await() {
  MutexLock lock(mu_);
  cv_.Wait(mu_, [&]() REQUIRES(mu_) { return done_; });
  if (!status_.ok()) return status_;
  return result_;
}

void Request::Complete(StatusOr<QueryResult> result) {
  std::function<void()> callback;
  {
    MutexLock lock(mu_);
    done_ = true;
    if (result.ok()) {
      result_ = std::move(*result);
    } else {
      status_ = result.status();
    }
    callback = std::move(callback_);
    callback_ = nullptr;
  }
  cv_.NotifyAll();
  if (callback) callback();
}

void Request::NotifyOnDone(std::function<void()> callback) {
  {
    MutexLock lock(mu_);
    if (!done_) {
      callback_ = std::move(callback);
      return;
    }
  }
  callback();
}

// ---------------------------------------------------------- LifecycleTask ---

namespace {
enum class Phase { kConnect, kParse, kOptimize, kExecute, kDisconnect };
}  // namespace

/// The packet of Figure 3: carries the query's backpack (SQL text, parsed
/// statement, plan, result) through the five top-level stages.
class LifecycleTask : public StageTask {
 public:
  LifecycleTask(StagedServer* server, std::shared_ptr<Request> request)
      : server_(server), request_(std::move(request)) {}

  RunOutcome Run() override;
  /// Re-checked before parking after kBlocked: the only blocking point is
  /// the execute phase waiting on an in-flight staged query.
  bool CanMakeProgress() override {
    return pending_ != nullptr && pending_->done();
  }
  void OnRetired() override;

 private:
  StagedServer* server_;
  std::shared_ptr<Request> request_;
  Phase phase_ = Phase::kConnect;
  // The backpack.
  std::unique_ptr<parser::Statement> stmt_;
  /// Set at the parse phase for cacheable statements: the normalized form
  /// whose key/params drive the plan-cache lookup (hit) or population (miss
  /// at the optimize phase).
  std::unique_ptr<frontend::NormalizedStatement> norm_;
  std::unique_ptr<optimizer::PhysicalPlan> plan_;
  std::shared_ptr<PendingQuery> pending_;  // in-flight staged execution
  StatusOr<QueryResult> result_{Status::Internal("not executed")};
  bool failed_ = false;
  /// False while a NotifyOnDone callback targeting this packet may still be
  /// running on an engine worker thread. OnRetired waits for it before the
  /// packet frees itself (which also gates server teardown via inflight_).
  std::atomic<bool> callback_done_{true};
};

RunOutcome LifecycleTask::Run() {
  Database* db = server_->db_;
  // Bounded-drain tail: once the shutdown deadline has expired, packets that
  // have not reached execution complete with a shutdown error in one visit
  // instead of doing their stage work; a packet whose query is already
  // in-flight in the engine (pending_ set) is allowed to collect its result.
  if (server_->shed_queued_.load(std::memory_order_acquire) &&
      pending_ == nullptr && phase_ != Phase::kDisconnect) {
    result_ = Status::Aborted("server shutting down");
    failed_ = true;
    server_->rejected_on_drain_.fetch_add(1, std::memory_order_relaxed);
    phase_ = Phase::kDisconnect;
    set_next_stage(server_->disconnect_);
    return RunOutcome::kMoved;
  }
  switch (phase_) {
    case Phase::kConnect: {
      // Client/session bookkeeping; precompiled queries could route straight
      // to execute here (Figure 3's bypass edge).
      db->stats()->GetCounter("stage.connect.packets")->Add(1);
      phase_ = Phase::kParse;
      set_next_stage(server_->parse_);
      return RunOutcome::kMoved;
    }
    case Phase::kParse: {
      db->stats()->GetCounter("stage.parse.packets")->Add(1);
      // Front-end work reuse (§2/§5): consult the shared plan cache for a
      // repeated/parameterized statement before doing any parse work. A hit
      // routes the packet straight to the execute stage — Figure 3's
      // precompiled-query bypass — visible as reduced optimize-stage visits
      // in StageRuntime::Stats().
      frontend::PlanCache* cache = db->plan_cache();
      if (cache != nullptr) {
        auto norm = frontend::Normalize(request_->sql());
        if (norm.ok() && norm->cacheable && norm->auto_params) {
          norm_ = std::make_unique<frontend::NormalizedStatement>(
              std::move(*norm));
          if (auto hit =
                  cache->Lookup(norm_->key, db->catalog()->version())) {
            auto plan = frontend::InstantiatePlan(*hit->plan, norm_->params);
            if (!plan.ok()) {
              result_ = plan.status();
              failed_ = true;
              phase_ = Phase::kDisconnect;
              set_next_stage(server_->disconnect_);
              return RunOutcome::kMoved;
            }
            plan_ = std::move(*plan);
            phase_ = Phase::kExecute;
            set_next_stage(server_->execute_);
            return RunOutcome::kMoved;
          }
          // Miss: parse the normalized token stream so the optimize phase
          // can plan (and cache) the parameterized template.
          parser::internal::Parser parser(norm_->tokens,
                                          db->catalog()->symbols());
          auto stmt = parser.ParseSingle();
          if (!stmt.ok()) {
            result_ = stmt.status();
            failed_ = true;
            phase_ = Phase::kDisconnect;
            set_next_stage(server_->disconnect_);
            return RunOutcome::kMoved;
          }
          stmt_ = std::move(*stmt);
          phase_ = Phase::kOptimize;
          set_next_stage(server_->optimize_);
          return RunOutcome::kMoved;
        }
      }
      auto stmt = parser::ParseStatement(request_->sql(),
                                         db->catalog()->symbols());
      if (!stmt.ok()) {
        result_ = stmt.status();
        failed_ = true;
        phase_ = Phase::kDisconnect;
        set_next_stage(server_->disconnect_);
        return RunOutcome::kMoved;
      }
      stmt_ = std::move(*stmt);
      phase_ = Phase::kOptimize;
      set_next_stage(server_->optimize_);
      return RunOutcome::kMoved;
    }
    case Phase::kOptimize: {
      db->stats()->GetCounter("stage.optimize.packets")->Add(1);
      // DDL / txn-control statements bypass the planner (the "additional
      // routing information" of §4.3): execute them directly here.
      using Kind = parser::Statement::Kind;
      const Kind kind = stmt_->kind;
      if (kind != Kind::kSelect && kind != Kind::kInsert &&
          kind != Kind::kDelete && kind != Kind::kUpdate) {
        result_ = db->Execute(request_->sql());
        failed_ = !result_.ok();
        phase_ = Phase::kDisconnect;
        set_next_stage(server_->disconnect_);
        return RunOutcome::kMoved;
      }
      if (norm_ != nullptr) {
        // Cache-miss path: plan the parameterized template, publish it for
        // the queries queued behind this one (the epoch tagging and insert
        // protocol is shared with the facade), then bind this query's
        // values.
        auto entry = db->PlanAndCacheTemplate(*stmt_, *norm_);
        if (!entry.ok()) {
          result_ = entry.status();
          failed_ = true;
          phase_ = Phase::kDisconnect;
          set_next_stage(server_->disconnect_);
          return RunOutcome::kMoved;
        }
        auto plan = frontend::InstantiatePlan(*(*entry)->plan, norm_->params);
        if (!plan.ok()) {
          result_ = plan.status();
          failed_ = true;
          phase_ = Phase::kDisconnect;
          set_next_stage(server_->disconnect_);
          return RunOutcome::kMoved;
        }
        plan_ = std::move(*plan);
        phase_ = Phase::kExecute;
        set_next_stage(server_->execute_);
        return RunOutcome::kMoved;
      }
      optimizer::PlannerOptions popts = db->options().planner;
      // Staged mode only: the volcano engine cannot execute the
      // partial/merge aggregate shapes a dop>1 planner emits (the facade
      // clamps its own planner options the same way).
      if (server_->options_.max_dop > 0 &&
          db->options().mode == ExecutionMode::kStaged) {
        popts.max_dop = server_->options_.max_dop;
      }
      optimizer::Planner planner(db->catalog(), popts);
      auto plan = planner.Plan(*stmt_);
      if (!plan.ok()) {
        result_ = plan.status();
        failed_ = true;
        phase_ = Phase::kDisconnect;
        set_next_stage(server_->disconnect_);
        return RunOutcome::kMoved;
      }
      plan_ = std::move(*plan);
      phase_ = Phase::kExecute;
      set_next_stage(server_->execute_);
      return RunOutcome::kMoved;
    }
    case Phase::kExecute: {
      if (pending_ != nullptr) {
        // Resumed after the staged query completed: collect the result.
        result_ = pending_->Await();
        pending_.reset();
        phase_ = Phase::kDisconnect;
        set_next_stage(server_->disconnect_);
        return RunOutcome::kMoved;
      }
      db->stats()->GetCounter("stage.execute.packets")->Add(1);
      if (db->options().mode == ExecutionMode::kStaged) {
        // Submit asynchronously and park this packet: the execute-stage
        // worker is free to start the next query, so concurrent queries
        // genuinely overlap inside the engine (and cooperating fscan packets
        // can share one elevator scan, §5.4).
        auto pending = db->SubmitPlanned(plan_.get());
        if (pending.ok()) {
          pending_ = std::move(*pending);
          Stage* execute = server_->execute_;
          // The callback may fire on an engine worker thread and race with
          // this packet being re-woken through the CanMakeProgress fallback;
          // callback_done_ keeps the packet (and the server's stages) alive
          // until the callback has fully left Activate (see OnRetired).
          callback_done_.store(false, std::memory_order_relaxed);
          pending_->NotifyOnDone([this, execute] {
            execute->Activate(this);
            callback_done_.store(true, std::memory_order_release);
          });
          return RunOutcome::kBlocked;
        }
        // Fall through to the synchronous path on submission failure.
      }
      result_ = db->ExecutePlanned(plan_.get());
      phase_ = Phase::kDisconnect;
      set_next_stage(server_->disconnect_);
      return RunOutcome::kMoved;
    }
    case Phase::kDisconnect: {
      db->stats()->GetCounter("stage.disconnect.packets")->Add(1);
      return RunOutcome::kDone;
    }
  }
  return RunOutcome::kDone;
}

void LifecycleTask::OnRetired() {
  // If the engine's completion callback lost the wake-up race (this packet
  // was resumed through the CanMakeProgress fallback instead), it may still
  // be inside Activate on another thread. Retiring now would free this
  // packet — and unblock ~StagedServer into freeing the stages — under it,
  // so wait for the callback's final store. The wait is bounded by the few
  // instructions left in Activate.
  while (!callback_done_.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  request_->Complete(std::move(result_));
  StagedServer* server = server_;
  {
    MutexLock lock(server->admission_mu_);
    --server->inflight_;
  }
  server->admission_cv_.NotifyOne();
  delete this;  // packet owns itself once submitted
}

// ------------------------------------------------------------ StagedServer --

StagedServer::StagedServer(Database* db, ServerOptions options)
    : db_(db), options_(std::move(options)),
      runtime_(engine::MakeSchedulerPolicy(options_.scheduler,
                                           options_.scheduler_gate_rounds)) {
  auto pool = [this](const char* name) {
    return engine::PoolSpecFor(options_.stage_pools, name,
                               options_.threads_per_stage);
  };
  connect_ = runtime_.CreateStage("connect", pool("connect"));
  parse_ = runtime_.CreateStage("parse", pool("parse"));
  optimize_ = runtime_.CreateStage("optimize", pool("optimize"));
  execute_ = runtime_.CreateStage("execute", pool("execute"));
  disconnect_ = runtime_.CreateStage("disconnect", pool("disconnect"));
}

StagedServer::~StagedServer() {
  // Wait for in-flight packets, then stop the stages.
  {
    MutexLock lock(admission_mu_);
    admission_cv_.Wait(admission_mu_, [&]() REQUIRES(admission_mu_) {
      return inflight_ == 0;
    });
  }
  runtime_.Shutdown();
}

std::shared_ptr<Request> StagedServer::Submit(std::string sql) {
  auto request = std::make_shared<Request>(std::move(sql));
  {
    // Admission control: block while the server is at capacity ("new queries
    // queue up in the first stage").
    MutexLock lock(admission_mu_);
    admission_cv_.Wait(admission_mu_, [&]() REQUIRES(admission_mu_) {
      return draining_ || inflight_ < options_.admission_capacity;
    });
    if (draining_) {
      lock.Unlock();
      request->Complete(Status::Aborted("server shutting down"));
      return request;
    }
    ++inflight_;
  }
  auto* task = new LifecycleTask(this, request);
  connect_->Enqueue(task);
  return request;
}

std::shared_ptr<Request> StagedServer::TrySubmit(std::string sql) {
  auto request = std::make_shared<Request>(std::move(sql));
  {
    MutexLock lock(admission_mu_);
    if (draining_) {
      lock.Unlock();
      request->Complete(Status::Aborted("server shutting down"));
      return request;
    }
    if (inflight_ >= options_.admission_capacity) return nullptr;
    ++inflight_;
  }
  auto* task = new LifecycleTask(this, request);
  connect_->Enqueue(task);
  return request;
}

size_t StagedServer::Shutdown(int64_t deadline_ms) {
  MutexLock lock(admission_mu_);
  draining_ = true;
  // Wake Submit callers blocked on admission so they observe the drain.
  admission_cv_.NotifyAll();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  admission_cv_.WaitUntil(
      admission_mu_, deadline,
      [&]() REQUIRES(admission_mu_) { return inflight_ == 0; });
  if (inflight_ != 0) {
    // Deadline expired: reject everything that has not reached execution.
    // Every remaining packet now completes in one cheap stage visit (or
    // finishes an already-running query), so this wait is bounded by queue
    // length, not per-query cost.
    shed_queued_.store(true, std::memory_order_release);
    admission_cv_.Wait(admission_mu_, [&]() REQUIRES(admission_mu_) {
      return inflight_ == 0;
    });
  }
  return static_cast<size_t>(
      rejected_on_drain_.load(std::memory_order_relaxed));
}

std::string StagedServer::StatsReport() const {
  std::string out = "StagedServer stages:\n";
  for (const auto& stage : runtime_.stages()) {
    out += StrFormat("  %-12s processed=%-8lld queue=%zu\n",
                     stage->name().c_str(),
                     static_cast<long long>(stage->packets_processed()),
                     stage->queue_depth());
  }
  return out;
}

// ---------------------------------------------------------- ThreadedServer --

ThreadedServer::ThreadedServer(Database* db, ServerOptions options)
    : db_(db), options_(options), queue_(options.admission_capacity) {
  for (int i = 0; i < options_.worker_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadedServer::~ThreadedServer() {
  queue_.Close();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

std::shared_ptr<Request> ThreadedServer::Submit(std::string sql) {
  auto request = std::make_shared<Request>(std::move(sql));
  // Count the admission before the enqueue so no snapshot can observe a
  // request as started before it was submitted; roll back on a closed queue.
  {
    MutexLock lock(stats_mu_);
    if (draining_) {
      lock.Unlock();  // Complete may run a NotifyOnDone callback
      request->Complete(Status::Aborted("server shutting down"));
      return request;
    }
    ++counts_.submitted;
  }
  if (!queue_.Enqueue(request)) {
    {
      MutexLock lock(stats_mu_);
      --counts_.submitted;
    }
    request->Complete(Status::Aborted("server shut down"));
  }
  return request;
}

void ThreadedServer::WorkerLoop() {
  while (auto request = queue_.Dequeue()) {
    {
      MutexLock lock(stats_mu_);
      ++counts_.started;
    }
    auto result = db_->Execute((*request)->sql());
    {
      // Count before Complete: a client returning from Await must already
      // see itself reflected in Stats()/StatsReport.
      MutexLock lock(stats_mu_);
      ++counts_.served;
    }
    drain_cv_.NotifyAll();
    (*request)->Complete(std::move(result));
  }
}

size_t ThreadedServer::Shutdown(int64_t deadline_ms) {
  {
    MutexLock lock(stats_mu_);
    draining_ = true;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(deadline_ms);
    drain_cv_.WaitUntil(stats_mu_, deadline, [&]() REQUIRES(stats_mu_) {
      return counts_.queued() == 0 && counts_.in_flight() == 0;
    });
  }
  // Deadline expired (or drain finished): reject whatever is still queued
  // with a shutdown error. Workers race this drain loop on the same queue,
  // which is fine — each request is either served or rejected, exactly once.
  size_t rejected = 0;
  while (auto request = queue_.TryDequeue()) {
    {
      MutexLock lock(stats_mu_);
      ++counts_.rejected;
    }
    ++rejected;
    (*request)->Complete(Status::Aborted("server shutting down"));
  }
  {
    // In-flight requests complete normally ("complete in-flight, reject
    // queued"); with the queue empty this wait is bounded by the running
    // statements, not the backlog.
    MutexLock lock(stats_mu_);
    drain_cv_.Wait(stats_mu_, [&]() REQUIRES(stats_mu_) {
      return counts_.queued() == 0 && counts_.in_flight() == 0;
    });
  }
  queue_.Close();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  return rejected;
}

ThreadedServer::ThreadedStats ThreadedServer::Stats() const {
  MutexLock lock(stats_mu_);
  return counts_;
}

std::string ThreadedServer::StatsReport() const {
  const ThreadedStats stats = Stats();
  return StrFormat(
      "ThreadedServer: workers=%d served=%lld queue=%lld in_flight=%lld\n",
      options_.worker_threads, static_cast<long long>(stats.served),
      static_cast<long long>(stats.queued()),
      static_cast<long long>(stats.in_flight()));
}

}  // namespace stagedb::server
