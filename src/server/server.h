// The two server architectures the paper compares:
//
//   StagedServer   — Figure 3's design: new clients queue up at the connect
//                    stage, each query is encapsulated into a packet that
//                    travels connect -> parse -> optimize -> execute ->
//                    disconnect, every stage with its own queue and worker
//                    pool, with admission control (back-pressure) at connect.
//   ThreadedServer — the traditional work-centric model of §3.1: a pool of
//                    worker threads, each picking a client from the input
//                    queue and carrying its query through all phases.
//
// Both execute against the same Database instance and expose per-stage
// statistics (§5.2: monitoring at stage granularity).
#ifndef STAGEDB_SERVER_SERVER_H_
#define STAGEDB_SERVER_SERVER_H_

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/queue.h"
#include "common/status.h"
#include "engine/runtime.h"
#include "server/database.h"

namespace stagedb::server {

/// One client request travelling through a server.
class Request {
 public:
  explicit Request(std::string sql) : sql_(std::move(sql)) {}

  /// Blocks until the request completes.
  StatusOr<QueryResult> Await();

  const std::string& sql() const { return sql_; }

  // -- internal --
  void Complete(StatusOr<QueryResult> result);

 private:
  std::string sql_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  Status status_;
  QueryResult result_;
};

struct ServerOptions {
  int threads_per_stage = 1;  // staged server
  int worker_threads = 8;     // threaded server
  /// Admission (connect) queue capacity; a full queue blocks Submit — the
  /// §5.2 overload back-pressure.
  size_t admission_capacity = 128;
  /// Scheduling policy for the lifecycle runtime (connect/parse/optimize/
  /// execute/disconnect) — the Figure-5 family, see engine/runtime.h.
  engine::SchedulerPolicy scheduler = engine::SchedulerPolicy::kFreeRun;
  int scheduler_gate_rounds = 2;
  /// Per-stage pool overrides for the lifecycle stages ("connect", "parse",
  /// "optimize", "execute", "disconnect"); absent = threads_per_stage.
  std::map<std::string, engine::StagePoolSpec> stage_pools;
};

/// Abstract server interface shared by both architectures.
class Server {
 public:
  virtual ~Server() = default;
  /// Enqueues a SQL request; blocks when admission control pushes back.
  virtual std::shared_ptr<Request> Submit(std::string sql) = 0;
  /// Per-stage (or per-pool) utilization report.
  virtual std::string StatsReport() const = 0;
};

/// Figure 3's staged server over a Database.
class StagedServer : public Server {
 public:
  StagedServer(Database* db, ServerOptions options = {});
  ~StagedServer() override;

  std::shared_ptr<Request> Submit(std::string sql) override;
  std::string StatsReport() const override;
  const engine::StageRuntime& runtime() const { return runtime_; }

 private:
  friend class LifecycleTask;
  Database* db_;
  ServerOptions options_;
  engine::StageRuntime runtime_;
  engine::Stage* connect_ = nullptr;
  engine::Stage* parse_ = nullptr;
  engine::Stage* optimize_ = nullptr;
  engine::Stage* execute_ = nullptr;
  engine::Stage* disconnect_ = nullptr;
  // Admission control: bounds the number of in-flight lifecycle packets.
  std::mutex admission_mu_;
  std::condition_variable admission_cv_;
  size_t inflight_ = 0;
};

/// The traditional thread-pool server (§3.1 baseline).
class ThreadedServer : public Server {
 public:
  ThreadedServer(Database* db, ServerOptions options = {});
  ~ThreadedServer() override;

  std::shared_ptr<Request> Submit(std::string sql) override;
  std::string StatsReport() const override;

 private:
  void WorkerLoop();

  Database* db_;
  ServerOptions options_;
  BoundedQueue<std::shared_ptr<Request>> queue_;
  std::vector<std::thread> workers_;
  std::atomic<int64_t> served_{0};
};

}  // namespace stagedb::server

#endif  // STAGEDB_SERVER_SERVER_H_
