// The two server architectures the paper compares:
//
//   StagedServer   — Figure 3's design: new clients queue up at the connect
//                    stage, each query is encapsulated into a packet that
//                    travels connect -> parse -> optimize -> execute ->
//                    disconnect, every stage with its own queue and worker
//                    pool, with admission control (back-pressure) at connect.
//   ThreadedServer — the traditional work-centric model of §3.1: a pool of
//                    worker threads, each picking a client from the input
//                    queue and carrying its query through all phases.
//
// Both execute against the same Database instance and expose per-stage
// statistics (§5.2: monitoring at stage granularity).
#ifndef STAGEDB_SERVER_SERVER_H_
#define STAGEDB_SERVER_SERVER_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/queue.h"
#include "common/status.h"
#include "engine/runtime.h"
#include "server/database.h"

namespace stagedb::server {

/// One client request travelling through a server.
class Request {
 public:
  explicit Request(std::string sql) : sql_(std::move(sql)) {}

  /// Blocks until the request completes.
  StatusOr<QueryResult> Await();

  /// Fires `callback` exactly once when the request completes (immediately,
  /// on the calling thread, if it already has). Used by the network
  /// front-end to deliver responses without blocking a stage worker in
  /// Await; the callback runs on whichever thread calls Complete and must
  /// not block.
  void NotifyOnDone(std::function<void()> callback);

  const std::string& sql() const { return sql_; }

  // -- internal --
  void Complete(StatusOr<QueryResult> result);

 private:
  std::string sql_;
  Mutex mu_;
  CondVar cv_;
  bool done_ GUARDED_BY(mu_) = false;
  Status status_ GUARDED_BY(mu_);
  QueryResult result_ GUARDED_BY(mu_);
  std::function<void()> callback_ GUARDED_BY(mu_);
};

struct ServerOptions {
  int threads_per_stage = 1;  // staged server
  int worker_threads = 8;     // threaded server
  /// Admission (connect) queue capacity; a full queue blocks Submit — the
  /// §5.2 overload back-pressure.
  size_t admission_capacity = 128;
  /// Scheduling policy for the lifecycle runtime (connect/parse/optimize/
  /// execute/disconnect) — the Figure-5 family, see engine/runtime.h.
  engine::SchedulerPolicy scheduler = engine::SchedulerPolicy::kFreeRun;
  int scheduler_gate_rounds = 2;
  /// Per-stage pool overrides for the lifecycle stages ("connect", "parse",
  /// "optimize", "execute", "disconnect"); absent = threads_per_stage.
  std::map<std::string, engine::StagePoolSpec> stage_pools;
  /// Overrides the planner DOP (§4.3 intra-query parallelism) for statements
  /// this server plans on its optimize stage. 0 = inherit the database's
  /// DatabaseOptions::max_dop. Cached plan templates keep the database-wide
  /// DOP (they are shared across entry points), and the engine's own
  /// max_dop still caps whatever the plan asks for.
  int max_dop = 0;
};

/// Abstract server interface shared by both architectures.
class Server {
 public:
  virtual ~Server() = default;
  /// Enqueues a SQL request; blocks when admission control pushes back.
  virtual std::shared_ptr<Request> Submit(std::string sql) = 0;
  /// Bounded graceful drain: stop admitting (subsequent Submits complete
  /// immediately with kAborted), give in-flight requests `deadline_ms` to
  /// finish, then reject whatever is still queued with a shutdown error
  /// while letting requests that already reached execution complete.
  /// Returns the number of requests rejected. Idempotent; the destructor
  /// afterwards tears down without waiting. This is the SIGTERM path the
  /// network listener reuses.
  virtual size_t Shutdown(int64_t deadline_ms) = 0;
  /// Per-stage (or per-pool) utilization report.
  virtual std::string StatsReport() const = 0;
};

/// Figure 3's staged server over a Database.
class StagedServer : public Server {
 public:
  StagedServer(Database* db, ServerOptions options = {});
  ~StagedServer() override;

  std::shared_ptr<Request> Submit(std::string sql) override;
  /// Non-blocking Submit: returns nullptr when admission control is at
  /// capacity, so the caller can shed the request instead of parking a
  /// thread (the network front-end's reject-with-ERROR policy). A draining
  /// server returns a request already completed with kAborted — never
  /// nullptr — so callers can tell "shed now" from "shutting down".
  [[nodiscard]] std::shared_ptr<Request> TrySubmit(std::string sql);
  size_t Shutdown(int64_t deadline_ms) override;
  std::string StatsReport() const override;
  const engine::StageRuntime& runtime() const { return runtime_; }

 private:
  friend class LifecycleTask;
  Database* db_;
  ServerOptions options_;
  engine::StageRuntime runtime_;
  engine::Stage* connect_ = nullptr;
  engine::Stage* parse_ = nullptr;
  engine::Stage* optimize_ = nullptr;
  engine::Stage* execute_ = nullptr;
  engine::Stage* disconnect_ = nullptr;
  // Admission control: bounds the number of in-flight lifecycle packets.
  Mutex admission_mu_;
  CondVar admission_cv_;
  size_t inflight_ GUARDED_BY(admission_mu_) = 0;
  /// Set by Shutdown: no new packets are admitted.
  bool draining_ GUARDED_BY(admission_mu_) = false;
  /// Set when the drain deadline expires: LifecycleTask::Run completes any
  /// packet that has not reached execution with a shutdown error instead of
  /// doing its stage work, so the tail of the drain is bounded by queue
  /// length, not query cost.
  std::atomic<bool> shed_queued_{false};
  std::atomic<int64_t> rejected_on_drain_{0};
};

/// The traditional thread-pool server (§3.1 baseline).
class ThreadedServer : public Server {
 public:
  ThreadedServer(Database* db, ServerOptions options = {});
  ~ThreadedServer() override;

  /// One consistent snapshot of the server's request accounting, taken under
  /// a single lock: submitted >= started >= served always holds within one
  /// snapshot (a request is admitted, then picked up by a worker, then
  /// completed), and queued is derived from the same snapshot rather than
  /// read from the queue under a second lock.
  struct ThreadedStats {
    int64_t submitted = 0;  ///< admitted into the queue
    int64_t started = 0;    ///< dequeued by a worker
    int64_t served = 0;     ///< completed (result published)
    /// Admitted but rejected by the bounded shutdown drain (counted in
    /// submitted, never started).
    int64_t rejected = 0;
    int64_t queued() const { return submitted - started - rejected; }
    int64_t in_flight() const { return started - served; }
  };

  std::shared_ptr<Request> Submit(std::string sql) override;
  size_t Shutdown(int64_t deadline_ms) override;
  std::string StatsReport() const override;
  ThreadedStats Stats() const;

 private:
  void WorkerLoop();

  Database* db_;
  ServerOptions options_;
  BoundedQueue<std::shared_ptr<Request>> queue_;
  std::vector<std::thread> workers_;
  /// Guards the three ThreadedStats counters so Stats() returns a mutually
  /// consistent snapshot (the pre-fix code mixed an atomic counter with an
  /// unsynchronized queue-size read).
  mutable Mutex stats_mu_;
  ThreadedStats counts_ GUARDED_BY(stats_mu_);
  bool draining_ GUARDED_BY(stats_mu_) = false;
  /// Signalled on every completion so Shutdown can wait out the drain with a
  /// deadline instead of spinning.
  CondVar drain_cv_;
};

}  // namespace stagedb::server

#endif  // STAGEDB_SERVER_SERVER_H_
