#include "simcache/cache_model.h"

#include <algorithm>

namespace stagedb::simcache {

CacheCharge CacheModel::BeginExecution(ModuleId module, int64_t query_id) {
  CacheCharge charge;
  const ModuleProfile& profile = modules_->Get(module);
  if (IsResident(module)) {
    ++module_hits_;
  } else {
    ++module_misses_;
    charge.module_load_micros = profile.common_load_micros;
  }
  Touch(module);
  const bool state_resident =
      std::find(query_lru_.begin(), query_lru_.end(), query_id) !=
      query_lru_.end();
  if (state_resident) {
    ++state_hits_;
  } else {
    ++state_misses_;
    charge.state_restore_micros = profile.private_restore_micros;
  }
  TouchQuery(query_id);
  return charge;
}

bool CacheModel::IsResident(ModuleId module) const {
  return std::find(lru_.begin(), lru_.end(), module) != lru_.end();
}

void CacheModel::Flush() {
  lru_.clear();
  query_lru_.clear();
}

void CacheModel::Touch(ModuleId module) {
  lru_.remove(module);
  lru_.push_front(module);
  while (static_cast<int>(lru_.size()) > capacity_) lru_.pop_back();
}

void CacheModel::TouchQuery(int64_t query_id) {
  query_lru_.remove(query_id);
  query_lru_.push_front(query_id);
  while (static_cast<int>(query_lru_.size()) > state_capacity_) {
    query_lru_.pop_back();
  }
}

}  // namespace stagedb::simcache
