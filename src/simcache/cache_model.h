// The simulated memory hierarchy of the paper's §4.2 model.
//
// "The model assumes, without loss of generality, that the entire set of a
//  module's data structures that are shared on average by all requests can fit
//  in the cache, and that a total eviction of that set takes place when the
//  CPU switches to a different module."
//
// We generalize the single-slot assumption to an LRU of `capacity` module
// working sets (capacity 1 reproduces the paper's model exactly), and also
// track which query ran last so that private-state restore costs (Figure 1's
// "load query's state" segments) can be charged.
#ifndef STAGEDB_SIMCACHE_CACHE_MODEL_H_
#define STAGEDB_SIMCACHE_CACHE_MODEL_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "simcache/module_profile.h"

namespace stagedb::simcache {

/// Charge breakdown returned by CacheModel::BeginExecution.
struct CacheCharge {
  int64_t module_load_micros = 0;   ///< l_i paid because the module was cold.
  int64_t state_restore_micros = 0; ///< private backpack reload cost.
  int64_t total() const { return module_load_micros + state_restore_micros; }
};

/// Tracks cache residency of module working sets on one (simulated) CPU.
class CacheModel {
 public:
  /// `capacity` = how many module working sets fit simultaneously (the
  /// paper's model corresponds to capacity 1). `state_capacity` = how many
  /// queries' private working sets ("backpacks") stay resident; a query
  /// resumed while still resident pays no state-restore cost. This is what
  /// makes Workload B of Figure 2 degrade once the thread pool exceeds the
  /// number of private working sets the cache can hold.
  explicit CacheModel(const ModuleTable* modules, int capacity = 1,
                      int state_capacity = 1)
      : modules_(modules), capacity_(capacity),
        state_capacity_(state_capacity) {}

  /// Declares that `query_id` begins (or resumes) executing `module` on this
  /// CPU. Returns the extra CPU demand charged by the model and updates
  /// residency state.
  CacheCharge BeginExecution(ModuleId module, int64_t query_id);

  /// True if the module's common working set is currently resident.
  bool IsResident(ModuleId module) const;

  /// Forgets everything (e.g., after a simulated cache flush).
  void Flush();

  int64_t module_hits() const { return module_hits_; }
  int64_t module_misses() const { return module_misses_; }
  int64_t state_hits() const { return state_hits_; }
  int64_t state_misses() const { return state_misses_; }

 private:
  void Touch(ModuleId module);
  void TouchQuery(int64_t query_id);

  const ModuleTable* modules_;
  const int capacity_;
  const int state_capacity_;
  std::list<ModuleId> lru_;        // front = most recent
  std::list<int64_t> query_lru_;   // resident private working sets
  int64_t module_hits_ = 0;
  int64_t module_misses_ = 0;
  int64_t state_hits_ = 0;
  int64_t state_misses_ = 0;
};

}  // namespace stagedb::simcache

#endif  // STAGEDB_SIMCACHE_CACHE_MODEL_H_
