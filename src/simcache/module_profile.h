// Module working-set profiles: the cost-model inputs of the paper's §4.2.
//
// Each server module (parser, optimizer, each operator stage, ...) has a
// "common" working set — data structures and instructions shared on average
// all queries executing in that module (Table 1 of the paper: catalog, symbol
// table, module code) — and each query has a private working set (its
// "backpack": execution plan, client state, intermediate results).
#ifndef STAGEDB_SIMCACHE_MODULE_PROFILE_H_
#define STAGEDB_SIMCACHE_MODULE_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace stagedb::simcache {

using ModuleId = int32_t;
constexpr ModuleId kNoModule = -1;

/// Cost-model description of one server module.
struct ModuleProfile {
  ModuleId id = kNoModule;
  std::string name;
  /// Time (microseconds) to fetch the module's common data structures and code
  /// into the cache when not resident — the quantity l_i in Figure 4.
  int64_t common_load_micros = 0;
  /// Time to restore a suspended query's private working set after another
  /// query has run in between (the "load query's state" boxes of Figure 1).
  int64_t private_restore_micros = 0;
};

/// A set of module profiles, indexed by ModuleId.
class ModuleTable {
 public:
  /// Adds a module; ids must be dense starting at 0.
  ModuleId Add(std::string name, int64_t common_load_micros,
               int64_t private_restore_micros) {
    ModuleId id = static_cast<ModuleId>(modules_.size());
    modules_.push_back(ModuleProfile{id, std::move(name), common_load_micros,
                                     private_restore_micros});
    return id;
  }

  const ModuleProfile& Get(ModuleId id) const { return modules_.at(id); }
  size_t size() const { return modules_.size(); }
  const std::vector<ModuleProfile>& modules() const { return modules_; }

 private:
  std::vector<ModuleProfile> modules_;
};

}  // namespace stagedb::simcache

#endif  // STAGEDB_SIMCACHE_MODULE_PROFILE_H_
