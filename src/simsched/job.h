// Jobs (queries) flowing through the production-line model of Figure 4.
#ifndef STAGEDB_SIMSCHED_JOB_H_
#define STAGEDB_SIMSCHED_JOB_H_

#include <cstdint>
#include <vector>

namespace stagedb::simsched {

/// One query in the production-line model. Times are in microseconds.
struct Job {
  int64_t id = 0;
  double arrival = 0.0;
  /// Private-service demand at each module (the m_i of Figure 4). The common
  /// load l_i is a property of the module, charged by the cache model.
  std::vector<double> demand;
  // --- outputs ---
  double completion = -1.0;

  double TotalDemand() const {
    double s = 0;
    for (double d : demand) s += d;
    return s;
  }
  double ResponseTime() const { return completion - arrival; }
};

}  // namespace stagedb::simsched

#endif  // STAGEDB_SIMSCHED_JOB_H_
