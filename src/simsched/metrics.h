// Aggregate output of one simulation run.
#ifndef STAGEDB_SIMSCHED_METRICS_H_
#define STAGEDB_SIMSCHED_METRICS_H_

#include <cstdint>
#include <string>

#include "common/histogram.h"

namespace stagedb::simsched {

/// Steady-state metrics over the measured (post-warm-up) jobs.
struct Metrics {
  int64_t jobs_completed = 0;
  double mean_response_micros = 0.0;
  double p50_response_micros = 0.0;
  double p95_response_micros = 0.0;
  double makespan_micros = 0.0;
  double throughput_per_sec = 0.0;
  /// Fraction of CPU busy time spent loading module working sets (the cost the
  /// staged design amortizes across a batch).
  double load_fraction = 0.0;
  /// Average number of jobs served per module visit (batch size); 1.0 for
  /// FCFS-like behaviour, larger when cohorts form.
  double mean_batch_size = 0.0;
  stagedb::Histogram response_histogram;
};

}  // namespace stagedb::simsched

#endif  // STAGEDB_SIMSCHED_METRICS_H_
