// Scheduling policies compared in Figure 5 of the paper.
//
// PS and FCFS are the conventional baselines. The staged policies differ in
// how a batch is formed when the CPU visits a module (the paper describes the
// search space as: how many queries form a batch, how long they receive
// service, and the module visiting order; the concrete named variants come
// from [HA02], which is not retrievable offline — DESIGN.md §3 documents the
// definitions used here):
//
//   kNonGated  — exhaustive service: the CPU stays at a module until its
//                queue is empty, admitting work that arrives during service.
//   kDGated    — departure-gated: the gate closes when the CPU arrives; only
//                jobs present at that instant are served this visit.
//   kTGated    — gated, but the module may re-gate up to `gate_rounds` times
//                per visit before the CPU moves on. T-gated(2) re-gates once.
#ifndef STAGEDB_SIMSCHED_POLICY_H_
#define STAGEDB_SIMSCHED_POLICY_H_

#include <string>

namespace stagedb::simsched {

enum class Policy {
  kProcessorSharing,
  kFcfs,
  kNonGated,
  kDGated,
  kTGated,
};

inline const char* PolicyName(Policy p) {
  switch (p) {
    case Policy::kProcessorSharing:
      return "PS";
    case Policy::kFcfs:
      return "FCFS";
    case Policy::kNonGated:
      return "non-gated";
    case Policy::kDGated:
      return "D-gated";
    case Policy::kTGated:
      return "T-gated";
  }
  return "?";
}

/// Knobs for a production-line simulation run.
struct PolicyParams {
  Policy policy = Policy::kNonGated;
  /// Maximum gate rounds per module visit for kTGated (2 = "T-gated(2)").
  int gate_rounds = 2;
};

}  // namespace stagedb::simsched

#endif  // STAGEDB_SIMSCHED_POLICY_H_
