#include "simsched/production_line.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <limits>

#include "common/rng.h"

namespace stagedb::simsched {

namespace {
constexpr double kEps = 1e-7;
}  // namespace

ProductionLine::ProductionLine(ProductionLineConfig config)
    : config_(std::move(config)) {
  assert(config_.num_modules >= 1);
  assert(config_.load_fraction >= 0.0 && config_.load_fraction < 1.0);
  assert(config_.utilization > 0.0 && config_.utilization < 1.0);
}

std::vector<double> ProductionLine::ModuleLoads(
    const ProductionLineConfig& config) {
  const double l_total =
      config.mean_total_demand_micros * config.load_fraction;
  return std::vector<double>(config.num_modules,
                             l_total / config.num_modules);
}

std::vector<Job> ProductionLine::GenerateJobs(
    const ProductionLineConfig& config) {
  Rng rng(config.seed);
  const double mean_interarrival =
      config.mean_total_demand_micros / config.utilization;
  const double m_total =
      config.mean_total_demand_micros * (1.0 - config.load_fraction);
  std::vector<Job> jobs(config.num_jobs);
  double t = 0.0;
  for (int64_t i = 0; i < config.num_jobs; ++i) {
    t += rng.Exponential(mean_interarrival);
    Job& job = jobs[i];
    job.id = i;
    job.arrival = t;
    double total = m_total;
    if (config.exponential_demand) total = rng.Exponential(m_total);
    job.demand.assign(config.num_modules, total / config.num_modules);
  }
  return jobs;
}

Metrics ProductionLine::Collect(const std::vector<Job>& jobs, double load_time,
                                double service_time, double batch_visits,
                                double batch_served) const {
  Metrics m;
  const int64_t warmup =
      static_cast<int64_t>(jobs.size() * config_.warmup_fraction);
  double first_arrival = -1.0, last_completion = 0.0, sum_resp = 0.0;
  for (size_t i = warmup; i < jobs.size(); ++i) {
    const Job& job = jobs[i];
    assert(job.completion >= job.arrival);
    if (first_arrival < 0) first_arrival = job.arrival;
    last_completion = std::max(last_completion, job.completion);
    sum_resp += job.ResponseTime();
    m.response_histogram.Record(job.ResponseTime());
    ++m.jobs_completed;
  }
  if (m.jobs_completed > 0) {
    m.mean_response_micros = sum_resp / m.jobs_completed;
    m.p50_response_micros = m.response_histogram.Percentile(50);
    m.p95_response_micros = m.response_histogram.Percentile(95);
    m.makespan_micros = last_completion - first_arrival;
    if (m.makespan_micros > 0) {
      m.throughput_per_sec = m.jobs_completed / (m.makespan_micros / 1e6);
    }
  }
  const double busy = load_time + service_time;
  m.load_fraction = busy > 0 ? load_time / busy : 0.0;
  m.mean_batch_size = batch_visits > 0 ? batch_served / batch_visits : 0.0;
  return m;
}

Metrics ProductionLine::Run() {
  std::vector<Job> jobs = GenerateJobs(config_);
  switch (config_.policy.policy) {
    case Policy::kFcfs:
      return RunFcfs(jobs);
    case Policy::kProcessorSharing:
      return RunProcessorSharing(jobs);
    case Policy::kNonGated:
    case Policy::kDGated:
    case Policy::kTGated:
      return RunStaged(jobs);
  }
  return Metrics{};
}

// FCFS runs each query through all modules to completion before the next
// query starts. With a single-module-resident cache every module transition
// is cold, so each query pays its full load l in addition to its demand.
Metrics ProductionLine::RunFcfs(std::vector<Job>& jobs) {
  const std::vector<double> loads = ModuleLoads(config_);
  double l_total = 0.0;
  for (double l : loads) l_total += l;
  double t = 0.0, load_time = 0.0, service_time = 0.0;
  for (Job& job : jobs) {
    t = std::max(t, job.arrival);
    const double service = job.TotalDemand();
    t += service + l_total;
    load_time += l_total;
    service_time += service;
    job.completion = t;
  }
  return Collect(jobs, load_time, service_time, jobs.size(), jobs.size());
}

// Exact event-driven M/G/1 processor sharing. PS context-switches among all
// active queries obliviously to their current module, so no reuse ever occurs
// and each query's effective demand is m + l (this is the paper's calibration:
// l is "the percentage of execution time spent servicing cache misses ...
// under the default server configuration (e.g. using PS)").
Metrics ProductionLine::RunProcessorSharing(std::vector<Job>& jobs) {
  const std::vector<double> loads = ModuleLoads(config_);
  double l_total = 0.0;
  for (double l : loads) l_total += l;

  struct Active {
    Job* job;
    double remaining;
  };
  std::vector<Active> active;
  active.reserve(256);
  size_t next = 0;
  double t = 0.0, load_time = 0.0, service_time = 0.0;
  int64_t completed = 0;
  const int64_t n = static_cast<int64_t>(jobs.size());

  while (completed < n) {
    if (active.empty()) {
      assert(next < jobs.size());
      t = std::max(t, jobs[next].arrival);
      active.push_back({&jobs[next], jobs[next].TotalDemand() + l_total});
      ++next;
      continue;
    }
    const double k = static_cast<double>(active.size());
    double min_rem = std::numeric_limits<double>::max();
    for (const Active& a : active) min_rem = std::min(min_rem, a.remaining);
    const double t_complete = t + min_rem * k;
    if (next < jobs.size() && jobs[next].arrival < t_complete - kEps) {
      const double dt = (jobs[next].arrival - t) / k;
      for (Active& a : active) a.remaining -= dt;
      t = jobs[next].arrival;
      active.push_back({&jobs[next], jobs[next].TotalDemand() + l_total});
      ++next;
    } else {
      for (Active& a : active) a.remaining -= min_rem;
      t = t_complete;
      for (size_t i = 0; i < active.size();) {
        if (active[i].remaining <= kEps) {
          active[i].job->completion = t;
          ++completed;
          active[i] = active.back();
          active.pop_back();
        } else {
          ++i;
        }
      }
    }
  }
  load_time = l_total * n;
  for (const Job& job : jobs) service_time += job.TotalDemand();
  return Collect(jobs, load_time, service_time, jobs.size(), jobs.size());
}

// Cohort scheduling over the production line: the CPU visits modules in cyclic
// order and serves a batch at each visit according to the gate policy. Only
// the first query served after the CPU switches to a module pays l_i.
Metrics ProductionLine::RunStaged(std::vector<Job>& jobs) {
  const int num_modules = config_.num_modules;
  const std::vector<double> loads = ModuleLoads(config_);
  std::vector<std::deque<Job*>> queues(num_modules);
  size_t next = 0;
  const int64_t n = static_cast<int64_t>(jobs.size());
  int64_t completed = 0;
  double t = 0.0, load_time = 0.0, service_time = 0.0;
  int resident = -1;
  int64_t visits = 0, served_total = 0;
  int current = 0;

  auto admit = [&](double now) {
    while (next < jobs.size() && jobs[next].arrival <= now + kEps) {
      queues[0].push_back(&jobs[next]);
      ++next;
    }
  };

  const int max_rounds = config_.policy.policy == Policy::kNonGated
                             ? std::numeric_limits<int>::max()
                             : (config_.policy.policy == Policy::kTGated
                                    ? std::max(1, config_.policy.gate_rounds)
                                    : 1);

  while (completed < n) {
    admit(t);
    int module = -1;
    for (int k = 0; k < num_modules; ++k) {
      const int idx = (current + k) % num_modules;
      if (!queues[idx].empty()) {
        module = idx;
        break;
      }
    }
    if (module < 0) {
      // System empty: idle until the next arrival.
      assert(next < jobs.size());
      t = std::max(t, jobs[next].arrival);
      continue;
    }
    // Serve a visit at `module`.
    ++visits;
    for (int round = 0; round < max_rounds && !queues[module].empty();
         ++round) {
      const size_t gate = queues[module].size();
      for (size_t j = 0; j < gate; ++j) {
        Job* job = queues[module].front();
        queues[module].pop_front();
        if (resident != module) {
          t += loads[module];
          load_time += loads[module];
          resident = module;
        }
        t += job->demand[module];
        service_time += job->demand[module];
        admit(t);
        if (module + 1 == num_modules) {
          job->completion = t;
          ++completed;
        } else {
          queues[module + 1].push_back(job);
        }
        ++served_total;
      }
    }
    current = (module + 1) % num_modules;
  }
  return Collect(jobs, load_time, service_time,
                 static_cast<double>(visits),
                 static_cast<double>(served_total));
}

}  // namespace stagedb::simsched
