// Discrete-event simulation of the production-line staged server (Figure 4):
// Poisson arrivals enter module 1, pass through N modules in order, and leave.
// A single CPU serves the modules under one of the Figure 5 policies; the
// first query in a batch at module i pays the module loading time l_i
// (simcache::CacheModel semantics with capacity 1).
//
// This reproduces the experiment behind Figure 5 of the paper, which was
// itself produced by simulation ("we developed a simple simulated execution
// environment that is also analytically tractable").
#ifndef STAGEDB_SIMSCHED_PRODUCTION_LINE_H_
#define STAGEDB_SIMSCHED_PRODUCTION_LINE_H_

#include <cstdint>
#include <vector>

#include "simsched/job.h"
#include "simsched/metrics.h"
#include "simsched/policy.h"

namespace stagedb::simsched {

/// Configuration of one production-line run. Times in microseconds.
struct ProductionLineConfig {
  /// Number of modules in series (the paper uses 5 with equal breakdown).
  int num_modules = 5;
  /// Mean total CPU demand per query, m + l (the paper uses 100 ms).
  double mean_total_demand_micros = 100000.0;
  /// l / (m + l): fraction of the demand that is module loading (x-axis of
  /// Figure 5, 0.0 .. 0.6). l is split equally across modules.
  double load_fraction = 0.0;
  /// Offered load rho = lambda * (m + l) under the default (no-reuse) server
  /// configuration. Figure 5 uses 0.95.
  double utilization = 0.95;
  /// Number of queries to simulate.
  int64_t num_jobs = 200000;
  /// Leading fraction of jobs excluded from the metrics (warm-up).
  double warmup_fraction = 0.1;
  /// When true, per-job private demand is exponential with mean m (service
  /// variability ablation); otherwise deterministic.
  bool exponential_demand = false;
  uint64_t seed = 42;
  PolicyParams policy;
};

/// Runs one simulation and returns steady-state metrics.
class ProductionLine {
 public:
  explicit ProductionLine(ProductionLineConfig config);

  Metrics Run();

  /// The Poisson job stream for this configuration (exposed for tests).
  static std::vector<Job> GenerateJobs(const ProductionLineConfig& config);

  /// Per-module loading time l_i for this configuration.
  static std::vector<double> ModuleLoads(const ProductionLineConfig& config);

 private:
  Metrics RunFcfs(std::vector<Job>& jobs);
  Metrics RunProcessorSharing(std::vector<Job>& jobs);
  Metrics RunStaged(std::vector<Job>& jobs);
  Metrics Collect(const std::vector<Job>& jobs, double load_time,
                  double service_time, double batch_visits,
                  double batch_served) const;

  ProductionLineConfig config_;
};

}  // namespace stagedb::simsched

#endif  // STAGEDB_SIMSCHED_PRODUCTION_LINE_H_
