#include "storage/btree.h"

#include <algorithm>
#include <cstring>

#include "common/string_util.h"

namespace stagedb::storage {

namespace {

// On-page node format. Keys are kept sorted; leaves form a forward chain.
struct NodeHeader {
  uint16_t is_leaf;
  uint16_t num_keys;
  PageId next;  // leaf chain; unused for internal nodes
};

constexpr int kLeafCapacity = 400;
constexpr int kInternalCapacity = 400;

static_assert(sizeof(NodeHeader) + kLeafCapacity * (sizeof(int64_t) +
                  sizeof(Rid)) <= kPageSize,
              "leaf layout exceeds page");
static_assert(sizeof(NodeHeader) + kInternalCapacity * sizeof(int64_t) +
                  (kInternalCapacity + 1) * sizeof(PageId) <= kPageSize,
              "internal layout exceeds page");

NodeHeader* Header(Page* p) { return reinterpret_cast<NodeHeader*>(p->data()); }
int64_t* Keys(Page* p) {
  return reinterpret_cast<int64_t*>(p->data() + sizeof(NodeHeader));
}
Rid* Values(Page* p) {
  return reinterpret_cast<Rid*>(p->data() + sizeof(NodeHeader) +
                                kLeafCapacity * sizeof(int64_t));
}
PageId* Children(Page* p) {
  return reinterpret_cast<PageId*>(p->data() + sizeof(NodeHeader) +
                                   kInternalCapacity * sizeof(int64_t));
}

void InitLeaf(Page* p) {
  NodeHeader* h = Header(p);
  h->is_leaf = 1;
  h->num_keys = 0;
  h->next = kInvalidPageId;
}

// Index of first key >= key.
int LowerBound(const int64_t* keys, int n, int64_t key) {
  return static_cast<int>(std::lower_bound(keys, keys + n, key) - keys);
}

}  // namespace

StatusOr<std::unique_ptr<BPlusTree>> BPlusTree::Create(BufferPool* pool) {
  auto page_or = pool->NewPage();
  if (!page_or.ok()) return page_or.status();
  Page* page = *page_or;
  InitLeaf(page);
  const PageId root = page->page_id();
  STAGEDB_RETURN_IF_ERROR(pool->Unpin(root, true));
  return std::unique_ptr<BPlusTree>(new BPlusTree(pool, root));
}

std::unique_ptr<BPlusTree> BPlusTree::Open(BufferPool* pool, PageId root) {
  return std::unique_ptr<BPlusTree>(new BPlusTree(pool, root));
}

Status BPlusTree::InsertRec(PageId node_id, int64_t key, const Rid& rid,
                            SplitResult* split) {
  auto page_or = pool_->FetchPage(node_id);
  if (!page_or.ok()) return page_or.status();
  Page* page = *page_or;
  NodeHeader* h = Header(page);

  if (h->is_leaf) {
    int64_t* keys = Keys(page);
    Rid* vals = Values(page);
    const int n = h->num_keys;
    const int pos = LowerBound(keys, n, key);
    if (pos < n && keys[pos] == key) {
      STAGEDB_RETURN_IF_ERROR(pool_->Unpin(node_id, false));
      return Status::AlreadyExists(StrFormat("key %lld", (long long)key));
    }
    // Shift and insert.
    std::memmove(keys + pos + 1, keys + pos, (n - pos) * sizeof(int64_t));
    std::memmove(vals + pos + 1, vals + pos, (n - pos) * sizeof(Rid));
    keys[pos] = key;
    vals[pos] = rid;
    h->num_keys = static_cast<uint16_t>(n + 1);

    if (h->num_keys < kLeafCapacity) {
      split->split = false;
      return pool_->Unpin(node_id, true);
    }
    // Split the leaf.
    auto right_or = pool_->NewPage();
    if (!right_or.ok()) {
      STAGEDB_RETURN_IF_ERROR(pool_->Unpin(node_id, true));
      return right_or.status();
    }
    Page* right = *right_or;
    InitLeaf(right);
    NodeHeader* rh = Header(right);
    const int total = h->num_keys;
    const int keep = total / 2;
    const int move = total - keep;
    std::memcpy(Keys(right), keys + keep, move * sizeof(int64_t));
    std::memcpy(Values(right), vals + keep, move * sizeof(Rid));
    rh->num_keys = static_cast<uint16_t>(move);
    rh->next = h->next;
    h->num_keys = static_cast<uint16_t>(keep);
    h->next = right->page_id();
    split->split = true;
    split->up_key = Keys(right)[0];
    split->right = right->page_id();
    STAGEDB_RETURN_IF_ERROR(pool_->Unpin(right->page_id(), true));
    return pool_->Unpin(node_id, true);
  }

  // Internal node: descend.
  const int n = h->num_keys;
  const int pos = LowerBound(Keys(page), n, key);
  // Child index: keys[i] is the smallest key in child i+1.
  int child_idx = pos;
  if (pos < n && Keys(page)[pos] == key) child_idx = pos + 1;
  const PageId child = Children(page)[child_idx];
  STAGEDB_RETURN_IF_ERROR(pool_->Unpin(node_id, false));

  SplitResult child_split;
  STAGEDB_RETURN_IF_ERROR(InsertRec(child, key, rid, &child_split));
  if (!child_split.split) {
    split->split = false;
    return Status::OK();
  }

  // Re-fetch and insert the separator.
  page_or = pool_->FetchPage(node_id);
  if (!page_or.ok()) return page_or.status();
  page = *page_or;
  h = Header(page);
  int64_t* keys = Keys(page);
  PageId* children = Children(page);
  const int m = h->num_keys;
  const int ipos = LowerBound(keys, m, child_split.up_key);
  std::memmove(keys + ipos + 1, keys + ipos, (m - ipos) * sizeof(int64_t));
  std::memmove(children + ipos + 2, children + ipos + 1,
               (m - ipos) * sizeof(PageId));
  keys[ipos] = child_split.up_key;
  children[ipos + 1] = child_split.right;
  h->num_keys = static_cast<uint16_t>(m + 1);

  if (h->num_keys < kInternalCapacity) {
    split->split = false;
    return pool_->Unpin(node_id, true);
  }
  // Split the internal node: middle key moves up.
  auto right_or = pool_->NewPage();
  if (!right_or.ok()) {
    STAGEDB_RETURN_IF_ERROR(pool_->Unpin(node_id, true));
    return right_or.status();
  }
  Page* right = *right_or;
  NodeHeader* rh = Header(right);
  rh->is_leaf = 0;
  rh->next = kInvalidPageId;
  const int total = h->num_keys;
  const int mid = total / 2;
  const int move = total - mid - 1;
  std::memcpy(Keys(right), keys + mid + 1, move * sizeof(int64_t));
  std::memcpy(Children(right), children + mid + 1,
              (move + 1) * sizeof(PageId));
  rh->num_keys = static_cast<uint16_t>(move);
  split->split = true;
  split->up_key = keys[mid];
  split->right = right->page_id();
  h->num_keys = static_cast<uint16_t>(mid);
  STAGEDB_RETURN_IF_ERROR(pool_->Unpin(right->page_id(), true));
  return pool_->Unpin(node_id, true);
}

Status BPlusTree::Insert(int64_t key, const Rid& rid) {
  MutexLock lock(mu_);
  SplitResult split;
  STAGEDB_RETURN_IF_ERROR(InsertRec(root_, key, rid, &split));
  if (!split.split) return Status::OK();
  // Grow a new root.
  auto page_or = pool_->NewPage();
  if (!page_or.ok()) return page_or.status();
  Page* page = *page_or;
  NodeHeader* h = Header(page);
  h->is_leaf = 0;
  h->num_keys = 1;
  h->next = kInvalidPageId;
  Keys(page)[0] = split.up_key;
  Children(page)[0] = root_;
  Children(page)[1] = split.right;
  root_ = page->page_id();
  return pool_->Unpin(root_, true);
}

StatusOr<Rid> BPlusTree::Get(int64_t key) const {
  MutexLock lock(mu_);
  PageId node = root_;
  while (true) {
    auto page_or = pool_->FetchPage(node);
    if (!page_or.ok()) return page_or.status();
    Page* page = *page_or;
    const NodeHeader* h = Header(page);
    if (h->is_leaf) {
      const int n = h->num_keys;
      const int pos = LowerBound(Keys(page), n, key);
      if (pos < n && Keys(page)[pos] == key) {
        Rid rid = Values(page)[pos];
        STAGEDB_RETURN_IF_ERROR(pool_->Unpin(node, false));
        return rid;
      }
      STAGEDB_RETURN_IF_ERROR(pool_->Unpin(node, false));
      return Status::NotFound(StrFormat("key %lld", (long long)key));
    }
    const int n = h->num_keys;
    const int pos = LowerBound(Keys(page), n, key);
    int child_idx = pos;
    if (pos < n && Keys(page)[pos] == key) child_idx = pos + 1;
    const PageId next = Children(page)[child_idx];
    STAGEDB_RETURN_IF_ERROR(pool_->Unpin(node, false));
    node = next;
  }
}

Status BPlusTree::Delete(int64_t key) {
  MutexLock lock(mu_);
  PageId node = root_;
  while (true) {
    auto page_or = pool_->FetchPage(node);
    if (!page_or.ok()) return page_or.status();
    Page* page = *page_or;
    NodeHeader* h = Header(page);
    if (h->is_leaf) {
      int64_t* keys = Keys(page);
      Rid* vals = Values(page);
      const int n = h->num_keys;
      const int pos = LowerBound(keys, n, key);
      if (pos >= n || keys[pos] != key) {
        STAGEDB_RETURN_IF_ERROR(pool_->Unpin(node, false));
        return Status::NotFound(StrFormat("key %lld", (long long)key));
      }
      std::memmove(keys + pos, keys + pos + 1, (n - pos - 1) * sizeof(int64_t));
      std::memmove(vals + pos, vals + pos + 1, (n - pos - 1) * sizeof(Rid));
      h->num_keys = static_cast<uint16_t>(n - 1);
      return pool_->Unpin(node, true);
    }
    const int n = h->num_keys;
    const int pos = LowerBound(Keys(page), n, key);
    int child_idx = pos;
    if (pos < n && Keys(page)[pos] == key) child_idx = pos + 1;
    const PageId next = Children(page)[child_idx];
    STAGEDB_RETURN_IF_ERROR(pool_->Unpin(node, false));
    node = next;
  }
}

Status BPlusTree::Scan(int64_t lo, int64_t hi,
                       std::vector<std::pair<int64_t, Rid>>* out) const {
  MutexLock lock(mu_);
  // Descend to the leaf containing lo.
  PageId node = root_;
  while (true) {
    auto page_or = pool_->FetchPage(node);
    if (!page_or.ok()) return page_or.status();
    Page* page = *page_or;
    const NodeHeader* h = Header(page);
    if (h->is_leaf) {
      STAGEDB_RETURN_IF_ERROR(pool_->Unpin(node, false));
      break;
    }
    const int n = h->num_keys;
    const int pos = LowerBound(Keys(page), n, lo);
    int child_idx = pos;
    if (pos < n && Keys(page)[pos] == lo) child_idx = pos + 1;
    const PageId next = Children(page)[child_idx];
    STAGEDB_RETURN_IF_ERROR(pool_->Unpin(node, false));
    node = next;
  }
  // Walk the leaf chain.
  while (node != kInvalidPageId) {
    auto page_or = pool_->FetchPage(node);
    if (!page_or.ok()) return page_or.status();
    Page* page = *page_or;
    const NodeHeader* h = Header(page);
    const int n = h->num_keys;
    const int64_t* keys = Keys(page);
    const Rid* vals = Values(page);
    int pos = LowerBound(keys, n, lo);
    bool done = false;
    for (; pos < n; ++pos) {
      if (keys[pos] > hi) {
        done = true;
        break;
      }
      out->emplace_back(keys[pos], vals[pos]);
    }
    const PageId next = h->next;
    STAGEDB_RETURN_IF_ERROR(pool_->Unpin(node, false));
    if (done) break;
    node = next;
  }
  return Status::OK();
}

StatusOr<int> BPlusTree::Height() const {
  MutexLock lock(mu_);
  int height = 1;
  PageId node = root_;
  while (true) {
    auto page_or = pool_->FetchPage(node);
    if (!page_or.ok()) return page_or.status();
    Page* page = *page_or;
    const NodeHeader* h = Header(page);
    if (h->is_leaf) {
      STAGEDB_RETURN_IF_ERROR(pool_->Unpin(node, false));
      return height;
    }
    const PageId next = Children(page)[0];
    STAGEDB_RETURN_IF_ERROR(pool_->Unpin(node, false));
    node = next;
    ++height;
  }
}

Status BPlusTree::CheckNode(PageId node, int64_t lo, int64_t hi, int depth,
                            int* leaf_depth) const {
  auto page_or = pool_->FetchPage(node);
  if (!page_or.ok()) return page_or.status();
  Page* page = *page_or;
  const NodeHeader* h = Header(page);
  const int n = h->num_keys;
  const int64_t* keys = Keys(page);
  Status status;
  for (int i = 0; i + 1 < n && status.ok(); ++i) {
    if (keys[i] >= keys[i + 1]) status = Status::Corruption("keys unsorted");
  }
  for (int i = 0; i < n && status.ok(); ++i) {
    if (keys[i] < lo || keys[i] > hi) {
      status = Status::Corruption("key outside separator range");
    }
  }
  if (status.ok()) {
    if (h->is_leaf) {
      if (*leaf_depth < 0) {
        *leaf_depth = depth;
      } else if (*leaf_depth != depth) {
        status = Status::Corruption("leaves at different depths");
      }
    }
  }
  std::vector<PageId> children;
  std::vector<int64_t> key_copy(keys, keys + n);
  if (status.ok() && !h->is_leaf) {
    const PageId* c = Children(page);
    children.assign(c, c + n + 1);
  }
  STAGEDB_RETURN_IF_ERROR(pool_->Unpin(node, false));
  STAGEDB_RETURN_IF_ERROR(status);
  for (size_t i = 0; i < children.size(); ++i) {
    const int64_t clo = (i == 0) ? lo : key_copy[i - 1];
    const int64_t chi = (i == key_copy.size()) ? hi : key_copy[i] - 1;
    STAGEDB_RETURN_IF_ERROR(
        CheckNode(children[i], clo, chi, depth + 1, leaf_depth));
  }
  return Status::OK();
}

Status BPlusTree::CheckInvariants() const {
  MutexLock lock(mu_);
  int leaf_depth = -1;
  return CheckNode(root_, INT64_MIN, INT64_MAX, 0, &leaf_depth);
}

}  // namespace stagedb::storage
