// B+-tree index over int64 keys -> Rid, stored in buffer-pool pages.
// Backs the iscan stages of the execution engine.
//
// Simplifications (documented in DESIGN.md): unique keys only; deletes are
// lazy (no node merging — standard for research prototypes; lookups and scans
// remain correct because empty leaves are skipped).
#ifndef STAGEDB_STORAGE_BTREE_H_
#define STAGEDB_STORAGE_BTREE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace stagedb::storage {

/// A disk-resident B+-tree. Thread-safe via a single tree latch (index
/// operations are short; finer latching is out of scope for this prototype).
class BPlusTree {
 public:
  /// Creates an empty tree (allocates the root leaf).
  static StatusOr<std::unique_ptr<BPlusTree>> Create(BufferPool* pool);
  /// Opens an existing tree rooted at `root`.
  static std::unique_ptr<BPlusTree> Open(BufferPool* pool, PageId root);

  /// Inserts a unique key. AlreadyExists if the key is present.
  Status Insert(int64_t key, const Rid& rid);
  /// Point lookup.
  StatusOr<Rid> Get(int64_t key) const;
  /// Removes a key. NotFound if absent.
  Status Delete(int64_t key);

  /// Inclusive range scan [lo, hi]; appends (key, rid) pairs in key order.
  Status Scan(int64_t lo, int64_t hi,
              std::vector<std::pair<int64_t, Rid>>* out) const;

  PageId root() const { return root_; }
  /// Height of the tree (1 = root is a leaf). For tests.
  StatusOr<int> Height() const;
  /// Verifies ordering and fanout invariants on every node. For tests.
  Status CheckInvariants() const;

 private:
  BPlusTree(BufferPool* pool, PageId root) : pool_(pool), root_(root) {}

  struct SplitResult {
    bool split = false;
    int64_t up_key = 0;
    PageId right = kInvalidPageId;
  };

  Status InsertRec(PageId node, int64_t key, const Rid& rid,
                   SplitResult* split);
  Status CheckNode(PageId node, int64_t lo, int64_t hi, int depth,
                   int* leaf_depth) const;

  BufferPool* pool_;
  PageId root_ GUARDED_BY(mu_);
  mutable Mutex mu_;
};

}  // namespace stagedb::storage

#endif  // STAGEDB_STORAGE_BTREE_H_
