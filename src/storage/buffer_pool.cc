#include "storage/buffer_pool.h"

#include <algorithm>

#include "common/string_util.h"

namespace stagedb::storage {

BufferPool::BufferPool(DiskManager* disk, size_t capacity) : disk_(disk) {
  frames_.reserve(capacity);
  for (size_t i = 0; i < capacity; ++i) {
    frames_.push_back(std::make_unique<Page>());
    free_frames_.push_back(static_cast<int>(i));
  }
  lru_pos_.assign(capacity, lru_.end());
}

int BufferPool::FindVictim() {
  if (!free_frames_.empty()) {
    int f = free_frames_.back();
    free_frames_.pop_back();
    return f;
  }
  if (lru_.empty()) return -1;
  int f = lru_.front();
  lru_.pop_front();
  lru_pos_[f] = lru_.end();
  return f;
}

void BufferPool::TouchLru(int frame) {
  UnlinkLru(frame);
  lru_.push_back(frame);
  lru_pos_[frame] = std::prev(lru_.end());
}

void BufferPool::UnlinkLru(int frame) {
  if (lru_pos_[frame] != lru_.end()) {
    lru_.erase(lru_pos_[frame]);
    lru_pos_[frame] = lru_.end();
  }
}

StatusOr<Page*> BufferPool::FetchPage(PageId id) {
  MutexLock lock(mu_);
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    ++hits_;
    Page* page = frames_[it->second].get();
    if (page->pin_count() == 0) UnlinkLru(it->second);
    page->set_pin_count(page->pin_count() + 1);
    return page;
  }
  ++misses_;
  int frame = FindVictim();
  if (frame < 0) {
    return Status::ResourceExhausted("buffer pool: all frames pinned");
  }
  Page* page = frames_[frame].get();
  if (page->page_id() != kInvalidPageId) {
    if (page->dirty()) {
      STAGEDB_RETURN_IF_ERROR(disk_->WritePage(page->page_id(), page->data()));
    }
    page_table_.erase(page->page_id());
  }
  page->Reset();
  STAGEDB_RETURN_IF_ERROR(disk_->ReadPage(id, page->data()));
  page->set_page_id(id);
  page->set_pin_count(1);
  page_table_[id] = frame;
  return page;
}

StatusOr<Page*> BufferPool::NewPage() {
  PageId id;
  {
    auto id_or = disk_->AllocatePage();
    if (!id_or.ok()) return id_or.status();
    id = *id_or;
  }
  MutexLock lock(mu_);
  int frame = FindVictim();
  if (frame < 0) {
    return Status::ResourceExhausted("buffer pool: all frames pinned");
  }
  Page* page = frames_[frame].get();
  if (page->page_id() != kInvalidPageId) {
    if (page->dirty()) {
      STAGEDB_RETURN_IF_ERROR(disk_->WritePage(page->page_id(), page->data()));
    }
    page_table_.erase(page->page_id());
  }
  page->Reset();
  page->set_page_id(id);
  page->set_pin_count(1);
  page->set_dirty(true);  // new pages must reach disk eventually
  page_table_[id] = frame;
  return page;
}

Status BufferPool::Unpin(PageId id, bool dirty) {
  MutexLock lock(mu_);
  auto it = page_table_.find(id);
  if (it == page_table_.end()) {
    return Status::InvalidArgument(
        StrFormat("unpin of non-resident page %d", id));
  }
  Page* page = frames_[it->second].get();
  if (page->pin_count() <= 0) {
    return Status::InvalidArgument(StrFormat("unpin of unpinned page %d", id));
  }
  if (dirty) page->set_dirty(true);
  page->set_pin_count(page->pin_count() - 1);
  if (page->pin_count() == 0) TouchLru(it->second);
  return Status::OK();
}

Status BufferPool::FlushPage(PageId id) {
  MutexLock lock(mu_);
  auto it = page_table_.find(id);
  if (it == page_table_.end()) return Status::OK();
  Page* page = frames_[it->second].get();
  if (page->dirty()) {
    STAGEDB_RETURN_IF_ERROR(disk_->WritePage(id, page->data()));
    page->set_dirty(false);
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  MutexLock lock(mu_);
  for (auto& frame : frames_) {
    if (frame->page_id() != kInvalidPageId && frame->dirty()) {
      STAGEDB_RETURN_IF_ERROR(
          disk_->WritePage(frame->page_id(), frame->data()));
      frame->set_dirty(false);
    }
  }
  return Status::OK();
}

int64_t BufferPool::pinned_pages() const {
  MutexLock lock(mu_);
  int64_t n = 0;
  for (const auto& frame : frames_) {
    if (frame->page_id() != kInvalidPageId && frame->pin_count() > 0) ++n;
  }
  return n;
}

}  // namespace stagedb::storage
