// Buffer pool: caches disk pages in memory with LRU replacement and pin/unpin
// semantics. Thread-safe; shared by all stages (Table 1: "shared" data).
#ifndef STAGEDB_STORAGE_BUFFER_POOL_H_
#define STAGEDB_STORAGE_BUFFER_POOL_H_

#include <cassert>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace stagedb::storage {

/// Fixed-capacity page cache over a DiskManager.
class BufferPool {
 public:
  BufferPool(DiskManager* disk, size_t capacity);

  /// Returns the page pinned; caller must Unpin.
  StatusOr<Page*> FetchPage(PageId id);
  /// Allocates a new page on disk and returns it pinned.
  StatusOr<Page*> NewPage();
  /// Releases one pin; marks dirty if the caller modified the page.
  Status Unpin(PageId id, bool dirty);
  /// Writes a page back if dirty.
  Status FlushPage(PageId id);
  /// Writes all dirty pages back.
  Status FlushAll();

  size_t capacity() const { return frames_.size(); }
  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  /// Number of currently pinned pages (for leak tests).
  int64_t pinned_pages() const;

 private:
  /// Finds a victim frame (free list first, then LRU unpinned). Returns -1 if
  /// every frame is pinned.
  int FindVictim();
  /// Moves a frame to the MRU end of the LRU list. O(1): each frame caches
  /// its list position in lru_pos_ (the previous std::list::remove-based
  /// update walked the whole list, turning every unpin into an O(capacity)
  /// scan once the pool filled).
  void TouchLru(int frame);
  /// Removes a frame from the LRU list if present. O(1).
  void UnlinkLru(int frame);

  DiskManager* disk_;
  mutable Mutex mu_;
  // frames_ itself is sized once in the constructor; the Page objects it
  // points to are pinned/unpinned under mu_ (their *contents* are protected
  // by the per-frame latch, see Page::latch()).
  std::vector<std::unique_ptr<Page>> frames_;
  std::unordered_map<PageId, int> page_table_ GUARDED_BY(mu_);
  // front = least recently used, unpinned frames only
  std::list<int> lru_ GUARDED_BY(mu_);
  /// Per-frame position in lru_; lru_.end() when not linked.
  std::vector<std::list<int>::iterator> lru_pos_ GUARDED_BY(mu_);
  std::vector<int> free_frames_ GUARDED_BY(mu_);
  int64_t hits_ GUARDED_BY(mu_) = 0;
  int64_t misses_ GUARDED_BY(mu_) = 0;
};

/// RAII pin guard: unpins on destruction.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, Page* page) : pool_(pool), page_(page) {}
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& o) noexcept { *this = std::move(o); }
  PageGuard& operator=(PageGuard&& o) noexcept {
    Release();
    pool_ = o.pool_;
    page_ = o.page_;
    dirty_ = o.dirty_;
    o.pool_ = nullptr;
    o.page_ = nullptr;
    return *this;
  }
  ~PageGuard() { Release(); }

  Page* get() { return page_; }
  Page* operator->() { return page_; }
  void MarkDirty() { dirty_ = true; }
  void Release() {
    if (pool_ != nullptr && page_ != nullptr) {
      // Release runs from the destructor, so the status cannot propagate;
      // Unpin only fails on a pin-count bookkeeping bug, which asserts here
      // in debug builds.
      const Status unpin = pool_->Unpin(page_->page_id(), dirty_);
      assert(unpin.ok());
      (void)unpin;
    }
    pool_ = nullptr;
    page_ = nullptr;
    dirty_ = false;
  }

 private:
  BufferPool* pool_ = nullptr;
  Page* page_ = nullptr;
  bool dirty_ = false;
};

}  // namespace stagedb::storage

#endif  // STAGEDB_STORAGE_BUFFER_POOL_H_
