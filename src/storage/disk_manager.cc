#include "storage/disk_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/string_util.h"

namespace stagedb::storage {

// ---------------------------------------------------- WriteFaultInjector ---

void WriteFaultInjector::Arm(Fault fault, int64_t after_writes,
                             std::function<void()> on_fault) {
  MutexLock lock(mu_);
  fault_ = fault;
  fire_at_ = writes_seen_.load(std::memory_order_relaxed) + after_writes;
  on_fault_ = std::move(on_fault);
  fired_.store(false, std::memory_order_release);
}

void WriteFaultInjector::Disarm() {
  MutexLock lock(mu_);
  fault_ = Fault::kNone;
  fire_at_ = -1;
  on_fault_ = nullptr;
}

std::string WriteFaultInjector::FilterWrite(std::string_view bytes,
                                            bool* fault_applied) {
  *fault_applied = false;
  MutexLock lock(mu_);
  const int64_t n = writes_seen_.fetch_add(1, std::memory_order_relaxed);
  if (fault_ == Fault::kNone || fired_.load(std::memory_order_relaxed) ||
      n < fire_at_) {
    return std::string(bytes);
  }
  *fault_applied = true;
  fired_.store(true, std::memory_order_release);
  switch (fault_) {
    case Fault::kDropWrite:
      return std::string();
    case Fault::kShortWrite:
      // Keep a strict prefix: at least 1 byte short, at least 1 byte kept
      // when possible, so the tail frame is visibly incomplete.
      return std::string(bytes.substr(0, bytes.size() / 2));
    case Fault::kTornWrite: {
      // Full length lands, but the back half is garbage — the record header
      // may parse, so only the CRC catches this.
      std::string out(bytes);
      for (size_t i = out.size() / 2; i < out.size(); ++i) {
        out[i] = static_cast<char>(out[i] ^ 0x5a);
      }
      return out;
    }
    case Fault::kNone:
      break;
  }
  return std::string(bytes);
}

void WriteFaultInjector::RunCallback() {
  std::function<void()> cb;
  {
    MutexLock lock(mu_);
    cb = on_fault_;
  }
  if (cb) cb();
}

// -------------------------------------------------------------- LogDevice ---

LogDevice::~LogDevice() {
  if (fd_ >= 0) ::close(fd_);
}

StatusOr<std::unique_ptr<LogDevice>> LogDevice::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_CREAT | O_RDWR, 0644);
  if (fd < 0) {
    return Status::IOError(
        StrFormat("log: cannot open %s: %s", path.c_str(), strerror(errno)));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError(StrFormat("log: fstat %s failed", path.c_str()));
  }
  return std::unique_ptr<LogDevice>(
      new LogDevice(fd, static_cast<uint64_t>(st.st_size), path));
}

Status LogDevice::Append(std::string_view bytes) {
  MutexLock lock(mu_);
  if (failed_) return Status::IOError("log: device failed (injected fault)");
  std::string to_write;
  bool faulted = false;
  if (injector_ != nullptr) {
    to_write = injector_->FilterWrite(bytes, &faulted);
    bytes = to_write;
  }
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::pwrite(fd_, bytes.data() + off, bytes.size() - off,
                               static_cast<off_t>(size_ + off));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(
          StrFormat("log: pwrite failed: %s", strerror(errno)));
    }
    off += static_cast<size_t>(n);
  }
  size_ += bytes.size();
  appends_.fetch_add(1, std::memory_order_relaxed);
  if (faulted) {
    failed_ = true;
    // Make the damaged tail visible to a post-mortem reader even if the
    // callback kills us some other way than SIGKILL.
    ::fdatasync(fd_);
    injector_->RunCallback();
    return Status::IOError("log: injected write fault");
  }
  return Status::OK();
}

Status LogDevice::Sync() {
  MutexLock lock(mu_);
  if (failed_) return Status::IOError("log: device failed (injected fault)");
  if (::fdatasync(fd_) != 0) {
    return Status::IOError(
        StrFormat("log: fdatasync failed: %s", strerror(errno)));
  }
  syncs_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status LogDevice::Truncate(uint64_t size) {
  MutexLock lock(mu_);
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return Status::IOError(
        StrFormat("log: ftruncate failed: %s", strerror(errno)));
  }
  size_ = size;
  return Status::OK();
}

Status LogDevice::ReadAll(std::string* out) const {
  MutexLock lock(mu_);
  out->clear();
  out->resize(size_);
  size_t off = 0;
  while (off < size_) {
    const ssize_t n = ::pread(fd_, out->data() + off, size_ - off,
                              static_cast<off_t>(off));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(
          StrFormat("log: pread failed: %s", strerror(errno)));
    }
    if (n == 0) {  // shorter than expected; trust the file
      out->resize(off);
      break;
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

uint64_t LogDevice::size() const {
  MutexLock lock(mu_);
  return size_;
}

// ---------------------------------------------------------------- MemDisk ---

MemDiskManager::MemDiskManager(int64_t latency_micros, Clock* clock)
    : latency_micros_(latency_micros),
      clock_(clock != nullptr ? clock : RealClock::Instance()) {}

void MemDiskManager::ChargeLatency() {
  if (latency_micros_ > 0) clock_->SleepMicros(latency_micros_);
}

StatusOr<PageId> MemDiskManager::AllocatePage() {
  MutexLock lock(mu_);
  auto page = std::make_unique<char[]>(kPageSize);
  std::memset(page.get(), 0, kPageSize);
  pages_.push_back(std::move(page));
  return static_cast<PageId>(pages_.size() - 1);
}

Status MemDiskManager::ReadPage(PageId id, char* out) {
  {
    MutexLock lock(mu_);
    if (id < 0 || id >= static_cast<PageId>(pages_.size())) {
      return Status::InvalidArgument(
          StrFormat("read of unallocated page %d", id));
    }
    std::memcpy(out, pages_[id].get(), kPageSize);
  }
  reads_.fetch_add(1, std::memory_order_relaxed);
  ChargeLatency();
  return Status::OK();
}

Status MemDiskManager::WritePage(PageId id, const char* data) {
  {
    MutexLock lock(mu_);
    if (id < 0 || id >= static_cast<PageId>(pages_.size())) {
      return Status::InvalidArgument(
          StrFormat("write of unallocated page %d", id));
    }
    std::memcpy(pages_[id].get(), data, kPageSize);
  }
  writes_.fetch_add(1, std::memory_order_relaxed);
  ChargeLatency();
  return Status::OK();
}

PageId MemDiskManager::num_pages() const {
  MutexLock lock(mu_);
  return static_cast<PageId>(pages_.size());
}

// --------------------------------------------------------------- FileDisk ---

FileDiskManager::FileDiskManager(std::FILE* file, PageId num_pages,
                                 std::string path)
    : file_(file), num_pages_(num_pages), path_(std::move(path)) {}

FileDiskManager::~FileDiskManager() {
  if (file_ != nullptr) std::fclose(file_);
}

StatusOr<std::unique_ptr<FileDiskManager>> FileDiskManager::Open(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) f = std::fopen(path.c_str(), "w+b");
  if (f == nullptr) {
    return Status::IOError(StrFormat("cannot open %s", path.c_str()));
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  const PageId pages = static_cast<PageId>(size / kPageSize);
  return std::unique_ptr<FileDiskManager>(new FileDiskManager(f, pages, path));
}

StatusOr<PageId> FileDiskManager::AllocatePage() {
  MutexLock lock(mu_);
  const PageId id = num_pages_++;
  char zero[kPageSize] = {};
  if (std::fseek(file_, static_cast<long>(id) * kPageSize, SEEK_SET) != 0 ||
      std::fwrite(zero, 1, kPageSize, file_) != kPageSize) {
    return Status::IOError("allocate: write failed");
  }
  return id;
}

Status FileDiskManager::ReadPage(PageId id, char* out) {
  MutexLock lock(mu_);
  if (id < 0 || id >= num_pages_) {
    return Status::InvalidArgument(
        StrFormat("read of unallocated page %d", id));
  }
  if (std::fseek(file_, static_cast<long>(id) * kPageSize, SEEK_SET) != 0 ||
      std::fread(out, 1, kPageSize, file_) != kPageSize) {
    return Status::IOError(StrFormat("read of page %d failed", id));
  }
  reads_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status FileDiskManager::WritePage(PageId id, const char* data) {
  MutexLock lock(mu_);
  if (id < 0 || id >= num_pages_) {
    return Status::InvalidArgument(
        StrFormat("write of unallocated page %d", id));
  }
  if (std::fseek(file_, static_cast<long>(id) * kPageSize, SEEK_SET) != 0 ||
      std::fwrite(data, 1, kPageSize, file_) != kPageSize) {
    return Status::IOError(StrFormat("write of page %d failed", id));
  }
  std::fflush(file_);
  writes_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

PageId FileDiskManager::num_pages() const {
  MutexLock lock(mu_);
  return num_pages_;
}

}  // namespace stagedb::storage
