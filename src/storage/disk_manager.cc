#include "storage/disk_manager.h"

#include <cstring>

#include "common/string_util.h"

namespace stagedb::storage {

// ---------------------------------------------------------------- MemDisk ---

MemDiskManager::MemDiskManager(int64_t latency_micros, Clock* clock)
    : latency_micros_(latency_micros),
      clock_(clock != nullptr ? clock : RealClock::Instance()) {}

void MemDiskManager::ChargeLatency() {
  if (latency_micros_ > 0) clock_->SleepMicros(latency_micros_);
}

StatusOr<PageId> MemDiskManager::AllocatePage() {
  std::lock_guard<std::mutex> lock(mu_);
  auto page = std::make_unique<char[]>(kPageSize);
  std::memset(page.get(), 0, kPageSize);
  pages_.push_back(std::move(page));
  return static_cast<PageId>(pages_.size() - 1);
}

Status MemDiskManager::ReadPage(PageId id, char* out) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (id < 0 || id >= static_cast<PageId>(pages_.size())) {
      return Status::InvalidArgument(
          StrFormat("read of unallocated page %d", id));
    }
    std::memcpy(out, pages_[id].get(), kPageSize);
  }
  reads_.fetch_add(1, std::memory_order_relaxed);
  ChargeLatency();
  return Status::OK();
}

Status MemDiskManager::WritePage(PageId id, const char* data) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (id < 0 || id >= static_cast<PageId>(pages_.size())) {
      return Status::InvalidArgument(
          StrFormat("write of unallocated page %d", id));
    }
    std::memcpy(pages_[id].get(), data, kPageSize);
  }
  writes_.fetch_add(1, std::memory_order_relaxed);
  ChargeLatency();
  return Status::OK();
}

PageId MemDiskManager::num_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<PageId>(pages_.size());
}

// --------------------------------------------------------------- FileDisk ---

FileDiskManager::FileDiskManager(std::FILE* file, PageId num_pages,
                                 std::string path)
    : file_(file), num_pages_(num_pages), path_(std::move(path)) {}

FileDiskManager::~FileDiskManager() {
  if (file_ != nullptr) std::fclose(file_);
}

StatusOr<std::unique_ptr<FileDiskManager>> FileDiskManager::Open(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) f = std::fopen(path.c_str(), "w+b");
  if (f == nullptr) {
    return Status::IOError(StrFormat("cannot open %s", path.c_str()));
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  const PageId pages = static_cast<PageId>(size / kPageSize);
  return std::unique_ptr<FileDiskManager>(new FileDiskManager(f, pages, path));
}

StatusOr<PageId> FileDiskManager::AllocatePage() {
  std::lock_guard<std::mutex> lock(mu_);
  const PageId id = num_pages_++;
  char zero[kPageSize] = {};
  if (std::fseek(file_, static_cast<long>(id) * kPageSize, SEEK_SET) != 0 ||
      std::fwrite(zero, 1, kPageSize, file_) != kPageSize) {
    return Status::IOError("allocate: write failed");
  }
  return id;
}

Status FileDiskManager::ReadPage(PageId id, char* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= num_pages_) {
    return Status::InvalidArgument(
        StrFormat("read of unallocated page %d", id));
  }
  if (std::fseek(file_, static_cast<long>(id) * kPageSize, SEEK_SET) != 0 ||
      std::fread(out, 1, kPageSize, file_) != kPageSize) {
    return Status::IOError(StrFormat("read of page %d failed", id));
  }
  reads_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status FileDiskManager::WritePage(PageId id, const char* data) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= num_pages_) {
    return Status::InvalidArgument(
        StrFormat("write of unallocated page %d", id));
  }
  if (std::fseek(file_, static_cast<long>(id) * kPageSize, SEEK_SET) != 0 ||
      std::fwrite(data, 1, kPageSize, file_) != kPageSize) {
    return Status::IOError(StrFormat("write of page %d failed", id));
  }
  std::fflush(file_);
  writes_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

PageId FileDiskManager::num_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_pages_;
}

}  // namespace stagedb::storage
