// Disk managers: where pages live when they are not in the buffer pool.
//
// Two implementations: a file-backed manager (real I/O) and an in-memory
// manager. Both support an injected per-operation latency so that experiments
// can model the paper's Workload A ("short queries that almost always incur
// disk I/O") deterministically — see DESIGN.md §3 on substitutions.
#ifndef STAGEDB_STORAGE_DISK_MANAGER_H_
#define STAGEDB_STORAGE_DISK_MANAGER_H_

#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "storage/page.h"

namespace stagedb::storage {

/// Abstract page store.
class DiskManager {
 public:
  virtual ~DiskManager() = default;

  /// Allocates a new page and returns its id.
  virtual StatusOr<PageId> AllocatePage() = 0;
  /// Reads page `id` into `out` (kPageSize bytes).
  virtual Status ReadPage(PageId id, char* out) = 0;
  /// Writes kPageSize bytes from `data` to page `id`.
  virtual Status WritePage(PageId id, const char* data) = 0;
  /// Number of pages allocated so far.
  virtual PageId num_pages() const = 0;

  int64_t reads() const { return reads_.load(std::memory_order_relaxed); }
  int64_t writes() const { return writes_.load(std::memory_order_relaxed); }

 protected:
  std::atomic<int64_t> reads_{0};
  std::atomic<int64_t> writes_{0};
};

/// Heap-allocated page store. Fast and used by most tests; with a configured
/// latency it stands in for a disk with the given per-access service time.
class MemDiskManager : public DiskManager {
 public:
  /// `latency_micros` is added (as a real sleep) to every read/write; clock
  /// defaults to the real clock.
  explicit MemDiskManager(int64_t latency_micros = 0, Clock* clock = nullptr);

  StatusOr<PageId> AllocatePage() override;
  Status ReadPage(PageId id, char* out) override;
  Status WritePage(PageId id, const char* data) override;
  PageId num_pages() const override;

 private:
  void ChargeLatency();

  const int64_t latency_micros_;
  Clock* clock_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<char[]>> pages_;
};

/// File-backed page store (one file, pages addressed by offset).
class FileDiskManager : public DiskManager {
 public:
  ~FileDiskManager() override;

  static StatusOr<std::unique_ptr<FileDiskManager>> Open(
      const std::string& path);

  StatusOr<PageId> AllocatePage() override;
  Status ReadPage(PageId id, char* out) override;
  Status WritePage(PageId id, const char* data) override;
  PageId num_pages() const override;

 private:
  FileDiskManager(std::FILE* file, PageId num_pages, std::string path);

  mutable std::mutex mu_;
  std::FILE* file_;
  PageId num_pages_;
  std::string path_;
};

}  // namespace stagedb::storage

#endif  // STAGEDB_STORAGE_DISK_MANAGER_H_
