// Disk managers: where pages live when they are not in the buffer pool.
//
// Two implementations: a file-backed manager (real I/O) and an in-memory
// manager. Both support an injected per-operation latency so that experiments
// can model the paper's Workload A ("short queries that almost always incur
// disk I/O") deterministically — see DESIGN.md §3 on substitutions.
#ifndef STAGEDB_STORAGE_DISK_MANAGER_H_
#define STAGEDB_STORAGE_DISK_MANAGER_H_

#include <atomic>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/status.h"
#include "storage/page.h"

namespace stagedb::storage {

/// Write-fault injection for crash testing. Armed on a LogDevice, it fires on
/// the Nth append after arming and damages that write the way a real crash
/// inside the flush window would: dropping it entirely, cutting it short, or
/// tearing its middle bytes (CRC framing detects the tear at recovery). After
/// the fault is applied the `on_fault` callback runs — the crash harness
/// installs `raise(SIGKILL)` there so the process dies with the damaged tail
/// on disk — and, if the callback returns, every later write fails with
/// IOError (the device is "dead").
class WriteFaultInjector {
 public:
  enum class Fault {
    kNone,
    kDropWrite,   ///< the write never reaches the file
    kShortWrite,  ///< only a prefix of the write reaches the file
    kTornWrite,   ///< full length, but bytes in the middle are garbage
  };

  /// Arms the injector: the fault fires on the `after_writes`-th write
  /// (0 = the next one). `on_fault` runs after the damaged write lands;
  /// empty = just fail subsequent writes.
  void Arm(Fault fault, int64_t after_writes,
           std::function<void()> on_fault = {});
  void Disarm();

  /// True once the armed fault has fired.
  bool fired() const { return fired_.load(std::memory_order_acquire); }
  int64_t writes_seen() const {
    return writes_seen_.load(std::memory_order_relaxed);
  }

 private:
  friend class LogDevice;
  /// Called by the device with the bytes about to be appended. Returns the
  /// bytes that should actually land (possibly shortened or torn), or
  /// nothing-to-write for a dropped fault. Sets *fault_applied when this
  /// write is the faulted one.
  std::string FilterWrite(std::string_view bytes, bool* fault_applied);
  void RunCallback();

  mutable Mutex mu_;
  Fault fault_ GUARDED_BY(mu_) = Fault::kNone;
  int64_t fire_at_ GUARDED_BY(mu_) = -1;
  std::function<void()> on_fault_ GUARDED_BY(mu_);
  std::atomic<int64_t> writes_seen_{0};
  std::atomic<bool> fired_{false};
};

/// An append-only durable byte log: the storage substrate of the write-ahead
/// log. Separated from the page-granularity DiskManager because the log's
/// access pattern is the opposite of a page store's — sequential appends and
/// explicit `Sync()` barriers (fdatasync), the most expensive syscall the
/// engine issues and the one the group-commit stage exists to amortize.
class LogDevice {
 public:
  ~LogDevice();

  /// Opens (or creates) the log file at `path`.
  static StatusOr<std::unique_ptr<LogDevice>> Open(const std::string& path);

  /// Appends `bytes` at the end of the log (buffered in the page cache; not
  /// durable until Sync). Routed through the fault injector when one is set.
  Status Append(std::string_view bytes);

  /// Durability barrier: fdatasync. Every Append that returned before this
  /// call is on stable storage when Sync returns OK.
  Status Sync();

  /// Truncates the log to `size` bytes (recovery drops a torn tail).
  Status Truncate(uint64_t size);

  /// Reads the whole log (0..size) into `out`.
  Status ReadAll(std::string* out) const;

  uint64_t size() const;
  const std::string& path() const { return path_; }

  int64_t appends() const { return appends_.load(std::memory_order_relaxed); }
  int64_t syncs() const { return syncs_.load(std::memory_order_relaxed); }

  /// Installs a fault injector (not owned; may be nullptr to clear).
  void set_fault_injector(WriteFaultInjector* injector) {
    MutexLock lock(mu_);
    injector_ = injector;
  }

 private:
  LogDevice(int fd, uint64_t size, std::string path)
      : fd_(fd), size_(size), path_(std::move(path)) {}

  mutable Mutex mu_;
  const int fd_;
  uint64_t size_ GUARDED_BY(mu_) = 0;  // append offset
  // Set after an injected fault; appends then fail.
  bool failed_ GUARDED_BY(mu_) = false;
  std::string path_;
  WriteFaultInjector* injector_ GUARDED_BY(mu_) = nullptr;
  std::atomic<int64_t> appends_{0};
  std::atomic<int64_t> syncs_{0};
};

/// Abstract page store.
class DiskManager {
 public:
  virtual ~DiskManager() = default;

  /// Allocates a new page and returns its id.
  virtual StatusOr<PageId> AllocatePage() = 0;
  /// Reads page `id` into `out` (kPageSize bytes).
  virtual Status ReadPage(PageId id, char* out) = 0;
  /// Writes kPageSize bytes from `data` to page `id`.
  virtual Status WritePage(PageId id, const char* data) = 0;
  /// Number of pages allocated so far.
  virtual PageId num_pages() const = 0;

  int64_t reads() const { return reads_.load(std::memory_order_relaxed); }
  int64_t writes() const { return writes_.load(std::memory_order_relaxed); }

 protected:
  std::atomic<int64_t> reads_{0};
  std::atomic<int64_t> writes_{0};
};

/// Heap-allocated page store. Fast and used by most tests; with a configured
/// latency it stands in for a disk with the given per-access service time.
class MemDiskManager : public DiskManager {
 public:
  /// `latency_micros` is added (as a real sleep) to every read/write; clock
  /// defaults to the real clock.
  explicit MemDiskManager(int64_t latency_micros = 0, Clock* clock = nullptr);

  StatusOr<PageId> AllocatePage() override;
  Status ReadPage(PageId id, char* out) override;
  Status WritePage(PageId id, const char* data) override;
  PageId num_pages() const override;

 private:
  void ChargeLatency();

  const int64_t latency_micros_;
  Clock* clock_;
  mutable Mutex mu_;
  std::vector<std::unique_ptr<char[]>> pages_ GUARDED_BY(mu_);
};

/// File-backed page store (one file, pages addressed by offset).
class FileDiskManager : public DiskManager {
 public:
  ~FileDiskManager() override;

  static StatusOr<std::unique_ptr<FileDiskManager>> Open(
      const std::string& path);

  StatusOr<PageId> AllocatePage() override;
  Status ReadPage(PageId id, char* out) override;
  Status WritePage(PageId id, const char* data) override;
  PageId num_pages() const override;

 private:
  FileDiskManager(std::FILE* file, PageId num_pages, std::string path);

  mutable Mutex mu_;
  std::FILE* const file_;
  PageId num_pages_ GUARDED_BY(mu_);
  std::string path_;
};

}  // namespace stagedb::storage

#endif  // STAGEDB_STORAGE_DISK_MANAGER_H_
