#include "storage/heap_file.h"

#include "storage/slotted_page.h"

namespace stagedb::storage {

StatusOr<std::unique_ptr<HeapFile>> HeapFile::Create(BufferPool* pool) {
  auto page_or = pool->NewPage();
  if (!page_or.ok()) return page_or.status();
  Page* page = *page_or;
  SlottedPage sp(page);
  sp.Init();
  const PageId id = page->page_id();
  STAGEDB_RETURN_IF_ERROR(pool->Unpin(id, /*dirty=*/true));
  return std::unique_ptr<HeapFile>(new HeapFile(pool, id, id));
}

StatusOr<std::unique_ptr<HeapFile>> HeapFile::Open(BufferPool* pool,
                                                   PageId first_page) {
  // Find the last page by walking the chain.
  PageId last = first_page;
  while (true) {
    auto page_or = pool->FetchPage(last);
    if (!page_or.ok()) return page_or.status();
    SlottedPage sp(*page_or);
    const PageId next = sp.next_page();
    STAGEDB_RETURN_IF_ERROR(pool->Unpin(last, false));
    if (next == kInvalidPageId) break;
    last = next;
  }
  return std::unique_ptr<HeapFile>(new HeapFile(pool, first_page, last));
}

StatusOr<Rid> HeapFile::Insert(std::string_view record) {
  std::lock_guard<std::mutex> lock(append_mu_);
  auto page_or = pool_->FetchPage(last_page_);
  if (!page_or.ok()) return page_or.status();
  Page* page = *page_or;
  SlottedPage sp(page);
  auto slot_or = sp.Insert(record);
  if (slot_or.ok()) {
    const Rid rid{page->page_id(), *slot_or};
    STAGEDB_RETURN_IF_ERROR(pool_->Unpin(page->page_id(), true));
    return rid;
  }
  if (!slot_or.status().IsResourceExhausted()) {
    STAGEDB_RETURN_IF_ERROR(pool_->Unpin(page->page_id(), false));
    return slot_or.status();
  }
  // Page full: chain a new page.
  auto new_or = pool_->NewPage();
  if (!new_or.ok()) {
    STAGEDB_RETURN_IF_ERROR(pool_->Unpin(page->page_id(), false));
    return new_or.status();
  }
  Page* fresh = *new_or;
  SlottedPage fresh_sp(fresh);
  fresh_sp.Init();
  sp.set_next_page(fresh->page_id());
  STAGEDB_RETURN_IF_ERROR(pool_->Unpin(page->page_id(), true));
  last_page_ = fresh->page_id();
  auto slot2_or = fresh_sp.Insert(record);
  if (!slot2_or.ok()) {
    STAGEDB_RETURN_IF_ERROR(pool_->Unpin(fresh->page_id(), true));
    return slot2_or.status();
  }
  const Rid rid{fresh->page_id(), *slot2_or};
  STAGEDB_RETURN_IF_ERROR(pool_->Unpin(fresh->page_id(), true));
  return rid;
}

Status HeapFile::Get(const Rid& rid, std::string* out) const {
  auto page_or = pool_->FetchPage(rid.page_id);
  if (!page_or.ok()) return page_or.status();
  SlottedPage sp(*page_or);
  auto rec_or = sp.Get(rid.slot);
  if (!rec_or.ok()) {
    STAGEDB_RETURN_IF_ERROR(pool_->Unpin(rid.page_id, false));
    return rec_or.status();
  }
  out->assign(rec_or->data(), rec_or->size());
  return pool_->Unpin(rid.page_id, false);
}

Status HeapFile::Delete(const Rid& rid) {
  auto page_or = pool_->FetchPage(rid.page_id);
  if (!page_or.ok()) return page_or.status();
  SlottedPage sp(*page_or);
  Status s = sp.Delete(rid.slot);
  STAGEDB_RETURN_IF_ERROR(pool_->Unpin(rid.page_id, s.ok()));
  return s;
}

StatusOr<Rid> HeapFile::Update(const Rid& rid, std::string_view record) {
  auto page_or = pool_->FetchPage(rid.page_id);
  if (!page_or.ok()) return page_or.status();
  SlottedPage sp(*page_or);
  Status s = sp.UpdateInPlace(rid.slot, record);
  if (s.ok()) {
    STAGEDB_RETURN_IF_ERROR(pool_->Unpin(rid.page_id, true));
    return rid;
  }
  if (!s.IsResourceExhausted()) {
    STAGEDB_RETURN_IF_ERROR(pool_->Unpin(rid.page_id, false));
    return s;
  }
  // Record grew: delete here, re-insert at the tail.
  STAGEDB_RETURN_IF_ERROR(sp.Delete(rid.slot));
  STAGEDB_RETURN_IF_ERROR(pool_->Unpin(rid.page_id, true));
  return Insert(record);
}

StatusOr<int64_t> HeapFile::CountRecords() const {
  int64_t n = 0;
  Iterator it = Scan();
  while (it.Next()) ++n;
  if (!it.status().ok()) return it.status();
  return n;
}

HeapFile::Iterator::Iterator(const HeapFile* file, PageId page_id)
    : file_(file), page_id_(page_id) {}

bool HeapFile::Iterator::Next() {
  while (page_id_ != kInvalidPageId) {
    auto page_or = file_->pool_->FetchPage(page_id_);
    if (!page_or.ok()) {
      status_ = page_or.status();
      return false;
    }
    SlottedPage sp(*page_or);
    const uint16_t slots = sp.num_slots();
    while (next_slot_ < slots) {
      const uint16_t slot = static_cast<uint16_t>(next_slot_++);
      auto rec_or = sp.Get(slot);
      if (rec_or.ok()) {
        rid_ = Rid{page_id_, slot};
        record_.assign(rec_or->data(), rec_or->size());
        status_ = file_->pool_->Unpin(page_id_, false);
        return status_.ok();
      }
    }
    const PageId next = sp.next_page();
    status_ = file_->pool_->Unpin(page_id_, false);
    if (!status_.ok()) return false;
    page_id_ = next;
    next_slot_ = 0;
  }
  return false;
}

}  // namespace stagedb::storage
