#include "storage/heap_file.h"

#include "storage/slotted_page.h"

namespace stagedb::storage {

// Latching protocol: every access to a page's bytes happens between FetchPage
// and Unpin with the frame latch held — shared for readers (Get, scans,
// ReadPage), exclusive for mutators (Insert, Delete, Update). The pin is what
// keeps the frame from being recycled while the latch is held.

StatusOr<std::unique_ptr<HeapFile>> HeapFile::Create(BufferPool* pool) {
  auto page_or = pool->NewPage();
  if (!page_or.ok()) return page_or.status();
  Page* page = *page_or;
  SlottedPage sp(page);
  sp.Init();
  const PageId id = page->page_id();
  STAGEDB_RETURN_IF_ERROR(pool->Unpin(id, /*dirty=*/true));
  return std::unique_ptr<HeapFile>(new HeapFile(pool, id, id));
}

StatusOr<std::unique_ptr<HeapFile>> HeapFile::Open(BufferPool* pool,
                                                   PageId first_page) {
  // Find the last page by walking the chain.
  PageId last = first_page;
  while (true) {
    auto page_or = pool->FetchPage(last);
    if (!page_or.ok()) return page_or.status();
    SlottedPage sp(*page_or);
    const PageId next = sp.next_page();
    STAGEDB_RETURN_IF_ERROR(pool->Unpin(last, false));
    if (next == kInvalidPageId) break;
    last = next;
  }
  return std::unique_ptr<HeapFile>(new HeapFile(pool, first_page, last));
}

StatusOr<Rid> HeapFile::Insert(std::string_view record) {
  MutexLock lock(append_mu_);
  auto page_or = pool_->FetchPage(last_page_);
  if (!page_or.ok()) return page_or.status();
  Page* page = *page_or;
  SlottedPage sp(page);
  StatusOr<uint16_t> slot_or = uint16_t{0};
  {
    ExclusiveLock latch(page->latch());
    slot_or = sp.Insert(record);
  }
  if (slot_or.ok()) {
    const Rid rid{page->page_id(), *slot_or};
    STAGEDB_RETURN_IF_ERROR(pool_->Unpin(page->page_id(), true));
    BumpVersion();
    return rid;
  }
  if (!slot_or.status().IsResourceExhausted()) {
    STAGEDB_RETURN_IF_ERROR(pool_->Unpin(page->page_id(), false));
    return slot_or.status();
  }
  // Page full: chain a new page. The fresh page is formatted and filled
  // before set_next_page publishes it to in-flight scans.
  auto new_or = pool_->NewPage();
  if (!new_or.ok()) {
    STAGEDB_RETURN_IF_ERROR(pool_->Unpin(page->page_id(), false));
    return new_or.status();
  }
  Page* fresh = *new_or;
  SlottedPage fresh_sp(fresh);
  StatusOr<uint16_t> slot2_or = uint16_t{0};
  {
    ExclusiveLock latch(fresh->latch());
    fresh_sp.Init();
    slot2_or = fresh_sp.Insert(record);
  }
  {
    ExclusiveLock latch(page->latch());
    sp.set_next_page(fresh->page_id());
  }
  STAGEDB_RETURN_IF_ERROR(pool_->Unpin(page->page_id(), true));
  last_page_ = fresh->page_id();
  if (!slot2_or.ok()) {
    STAGEDB_RETURN_IF_ERROR(pool_->Unpin(fresh->page_id(), true));
    return slot2_or.status();
  }
  const Rid rid{fresh->page_id(), *slot2_or};
  STAGEDB_RETURN_IF_ERROR(pool_->Unpin(fresh->page_id(), true));
  BumpVersion();
  return rid;
}

Status HeapFile::Get(const Rid& rid, std::string* out) const {
  auto page_or = pool_->FetchPage(rid.page_id);
  if (!page_or.ok()) return page_or.status();
  Page* page = *page_or;
  SlottedPage sp(page);
  Status status;
  {
    SharedLock latch(page->latch());
    auto rec_or = sp.Get(rid.slot);
    if (rec_or.ok()) {
      out->assign(rec_or->data(), rec_or->size());
    } else {
      status = rec_or.status();
    }
  }
  if (!status.ok()) {
    STAGEDB_RETURN_IF_ERROR(pool_->Unpin(rid.page_id, false));
    return status;
  }
  return pool_->Unpin(rid.page_id, false);
}

Status HeapFile::Delete(const Rid& rid) {
  auto page_or = pool_->FetchPage(rid.page_id);
  if (!page_or.ok()) return page_or.status();
  Page* page = *page_or;
  SlottedPage sp(page);
  Status s;
  {
    ExclusiveLock latch(page->latch());
    s = sp.Delete(rid.slot);
  }
  STAGEDB_RETURN_IF_ERROR(pool_->Unpin(rid.page_id, s.ok()));
  if (s.ok()) BumpVersion();
  return s;
}

StatusOr<Rid> HeapFile::Update(const Rid& rid, std::string_view record) {
  auto page_or = pool_->FetchPage(rid.page_id);
  if (!page_or.ok()) return page_or.status();
  Page* page = *page_or;
  SlottedPage sp(page);
  Status s;
  {
    ExclusiveLock latch(page->latch());
    s = sp.UpdateInPlace(rid.slot, record);
  }
  if (s.ok()) {
    STAGEDB_RETURN_IF_ERROR(pool_->Unpin(rid.page_id, true));
    BumpVersion();
    return rid;
  }
  if (!s.IsResourceExhausted()) {
    STAGEDB_RETURN_IF_ERROR(pool_->Unpin(rid.page_id, false));
    return s;
  }
  // Record grew: delete here, re-insert at the tail.
  {
    ExclusiveLock latch(page->latch());
    s = sp.Delete(rid.slot);
  }
  STAGEDB_RETURN_IF_ERROR(s);
  STAGEDB_RETURN_IF_ERROR(pool_->Unpin(rid.page_id, true));
  BumpVersion();
  return Insert(record);
}

Status HeapFile::OverwritePrefix(const Rid& rid, std::string_view prefix) {
  auto page_or = pool_->FetchPage(rid.page_id);
  if (!page_or.ok()) return page_or.status();
  Page* page = *page_or;
  SlottedPage sp(page);
  Status s;
  {
    ExclusiveLock latch(page->latch());
    s = sp.OverwritePrefix(rid.slot, prefix);
  }
  STAGEDB_RETURN_IF_ERROR(pool_->Unpin(rid.page_id, s.ok()));
  if (s.ok()) BumpVersion();
  return s;
}

StatusOr<int64_t> HeapFile::CountRecords() const {
  int64_t n = 0;
  Iterator it = Scan();
  while (it.Next()) ++n;
  if (!it.status().ok()) return it.status();
  return n;
}

HeapFile::Iterator::Iterator(const HeapFile* file, PageId page_id)
    : file_(file), page_id_(page_id) {}

bool HeapFile::Iterator::Next() {
  while (page_id_ != kInvalidPageId) {
    auto page_or = file_->pool_->FetchPage(page_id_);
    if (!page_or.ok()) {
      status_ = page_or.status();
      return false;
    }
    Page* page = *page_or;
    SlottedPage sp(page);
    bool found = false;
    PageId next = kInvalidPageId;
    {
      SharedLock latch(page->latch());
      const uint16_t slots = sp.num_slots();
      while (next_slot_ < slots) {
        const uint16_t slot = static_cast<uint16_t>(next_slot_++);
        auto rec_or = sp.Get(slot);
        if (rec_or.ok()) {
          rid_ = Rid{page_id_, slot};
          record_.assign(rec_or->data(), rec_or->size());
          found = true;
          break;
        }
      }
      if (!found) next = sp.next_page();
    }
    status_ = file_->pool_->Unpin(page_id_, false);
    if (found || !status_.ok()) return found && status_.ok();
    page_id_ = next;
    next_slot_ = 0;
  }
  return false;
}

Status HeapFile::ReadPage(PageId page_id, std::vector<std::string>* records,
                          PageId* next) const {
  records->clear();
  *next = kInvalidPageId;
  auto page_or = pool_->FetchPage(page_id);
  if (!page_or.ok()) return page_or.status();
  Page* page = *page_or;
  SlottedPage sp(page);
  {
    SharedLock latch(page->latch());
    const uint16_t slots = sp.num_slots();
    records->reserve(slots);
    for (uint16_t slot = 0; slot < slots; ++slot) {
      auto rec_or = sp.Get(slot);
      if (rec_or.ok()) records->emplace_back(rec_or->data(), rec_or->size());
    }
    *next = sp.next_page();
  }
  return pool_->Unpin(page_id, false);
}

}  // namespace stagedb::storage
