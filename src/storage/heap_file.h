// Heap files: unordered collections of records in a chain of slotted pages.
// One heap file per table; the fscan stages of the execution engine iterate
// these page by page.
#ifndef STAGEDB_STORAGE_HEAP_FILE_H_
#define STAGEDB_STORAGE_HEAP_FILE_H_

#include <mutex>
#include <string>
#include <string_view>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace stagedb::storage {

/// A heap file over a buffer pool. Thread-safe for concurrent readers with a
/// single writer per call (internal mutex serializes structural changes).
class HeapFile {
 public:
  /// Creates a new empty heap file; allocates its first page.
  static StatusOr<std::unique_ptr<HeapFile>> Create(BufferPool* pool);
  /// Opens an existing heap file rooted at `first_page`.
  static StatusOr<std::unique_ptr<HeapFile>> Open(BufferPool* pool,
                                                  PageId first_page);

  /// Appends a record; returns its Rid.
  StatusOr<Rid> Insert(std::string_view record);
  /// Reads a record into `out`.
  Status Get(const Rid& rid, std::string* out) const;
  /// Deletes a record (Rids of other records stay valid).
  Status Delete(const Rid& rid);
  /// Updates a record; may relocate it. Returns the (possibly new) Rid.
  StatusOr<Rid> Update(const Rid& rid, std::string_view record);

  PageId first_page() const { return first_page_; }

  /// Forward iterator over live records. Not stable under concurrent
  /// structural modification of the same pages.
  class Iterator {
   public:
    Iterator(const HeapFile* file, PageId page_id);
    /// Advances to the next live record; returns false at end.
    bool Next();
    const Rid& rid() const { return rid_; }
    const std::string& record() const { return record_; }
    /// Non-OK when iteration stopped because of an error (not end-of-file).
    const Status& status() const { return status_; }

   private:
    const HeapFile* file_;
    PageId page_id_;
    int next_slot_ = 0;
    Rid rid_;
    std::string record_;
    Status status_;
  };

  Iterator Scan() const { return Iterator(this, first_page_); }

  /// Number of live records (walks the file).
  StatusOr<int64_t> CountRecords() const;

 private:
  HeapFile(BufferPool* pool, PageId first_page, PageId last_page)
      : pool_(pool), first_page_(first_page), last_page_(last_page) {}

  BufferPool* pool_;
  PageId first_page_;
  PageId last_page_;
  std::mutex append_mu_;

  friend class Iterator;
};

}  // namespace stagedb::storage

#endif  // STAGEDB_STORAGE_HEAP_FILE_H_
