// Heap files: unordered collections of records in a chain of slotted pages.
// One heap file per table; the fscan stages of the execution engine iterate
// these page by page.
#ifndef STAGEDB_STORAGE_HEAP_FILE_H_
#define STAGEDB_STORAGE_HEAP_FILE_H_

#include <atomic>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace stagedb::storage {

/// A heap file over a buffer pool. Thread-safe for concurrent readers with a
/// single writer per call (internal mutex serializes structural changes).
class HeapFile {
 public:
  /// Creates a new empty heap file; allocates its first page.
  static StatusOr<std::unique_ptr<HeapFile>> Create(BufferPool* pool);
  /// Opens an existing heap file rooted at `first_page`.
  static StatusOr<std::unique_ptr<HeapFile>> Open(BufferPool* pool,
                                                  PageId first_page);

  /// Appends a record; returns its Rid.
  StatusOr<Rid> Insert(std::string_view record);
  /// Reads a record into `out`.
  Status Get(const Rid& rid, std::string* out) const;
  /// Deletes a record (Rids of other records stay valid).
  Status Delete(const Rid& rid);
  /// Updates a record; may relocate it. Returns the (possibly new) Rid.
  StatusOr<Rid> Update(const Rid& rid, std::string_view record);

  /// Overwrites the first `prefix.size()` bytes of the record at `rid` in
  /// place (exclusive page latch; the record must be at least that long).
  /// MVCC commit/abort uses this to rewrite version headers; it bumps
  /// version() so shared-scan page caches never serve a stale header.
  Status OverwritePrefix(const Rid& rid, std::string_view prefix);

  PageId first_page() const { return first_page_; }

  /// Monotone *data* mutation counter, bumped by every successful Insert /
  /// Delete / Update / OverwritePrefix. Lets page-content caches (the
  /// shared-scan reuse window in engine/shared_scan.cc) detect that a cached
  /// copy may predate a mutation and fall back to the pool.
  ///
  /// Not to be confused with Catalog::version(), the *schema* epoch bumped by
  /// DDL that plan-cache validation keys on. This counter tracks row bytes
  /// only; MVCC visibility never reads it (visibility lives in the per-row
  /// version headers), and a schema change alone never bumps it.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  /// Forward iterator over live records. Not stable under concurrent
  /// structural modification of the same pages.
  class Iterator {
   public:
    Iterator(const HeapFile* file, PageId page_id);
    /// Advances to the next live record; returns false at end.
    bool Next();
    const Rid& rid() const { return rid_; }
    const std::string& record() const { return record_; }
    /// Non-OK when iteration stopped because of an error (not end-of-file).
    const Status& status() const { return status_; }

   private:
    const HeapFile* file_;
    PageId page_id_;
    int next_slot_ = 0;
    Rid rid_;
    std::string record_;
    Status status_;
  };

  Iterator Scan() const { return Iterator(this, first_page_); }

  /// Position-aware page read for cooperative scans: copies every live record
  /// of `page_id` into `records` (slot order) and reports the successor page
  /// in `*next` (kInvalidPageId at the tail). The page is fetched through the
  /// buffer pool on every call, so a cursor built on ReadPage survives page
  /// eviction between calls; the page latch is held shared for the copy, so
  /// concurrent DML never yields a torn record.
  Status ReadPage(PageId page_id, std::vector<std::string>* records,
                  PageId* next) const;

  /// Number of live records (walks the file).
  StatusOr<int64_t> CountRecords() const;

 private:
  HeapFile(BufferPool* pool, PageId first_page, PageId last_page)
      : pool_(pool), first_page_(first_page), last_page_(last_page) {}

  void BumpVersion() { version_.fetch_add(1, std::memory_order_release); }

  BufferPool* pool_;
  PageId first_page_;
  /// Tail of the page chain; moved only by Insert while appending.
  PageId last_page_ GUARDED_BY(append_mu_);
  std::atomic<uint64_t> version_{0};
  Mutex append_mu_;

  friend class Iterator;
};

}  // namespace stagedb::storage

#endif  // STAGEDB_STORAGE_HEAP_FILE_H_
