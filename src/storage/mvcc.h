// Multi-version concurrency control primitives: the per-row version header,
// visibility rules, and the bookkeeping a transaction carries between the
// executor and TransactionManager.
//
// When a Database runs with ConcurrencyMode::kSnapshot, every heap record is
// prefixed with a fixed 24-byte version header:
//
//   [ begin_ts : int64 | end_ts : int64 | prev_page : int32 |
//     prev_slot : uint16 | pad : uint16 ]
//
// Timestamps are commit timestamps handed out by TransactionManager in commit
// order. A *negative* value in begin_ts/end_ts is an uncommitted marker: the
// writer stored -txn_id there and will rewrite it to the positive commit
// timestamp at commit (or undo it on abort). end_ts == kMaxTs means "live".
//
// `prev` points at the version this one superseded (the back-chain). It is
// written once at install time and never mutated afterwards: index entries
// always reference the newest version of a key, and index readers walk the
// prev-chain until they find a visible version. Because chain links are
// immutable, vacuum can physically delete old versions without relinking —
// a dangling prev simply terminates the walk (deeper versions are strictly
// older, so anything reclaimed was invisible to every live snapshot anyway).
#ifndef STAGEDB_STORAGE_MVCC_H_
#define STAGEDB_STORAGE_MVCC_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "storage/page.h"

namespace stagedb::storage {

/// Transaction id (shared with txn.h; defined here so the MVCC structs do not
/// pull in the lock manager).
using TxnId = int64_t;

/// Commit timestamp type. Positive values are committed timestamps; negative
/// values inside a version header are uncommitted -txn_id markers.
using Ts = int64_t;

/// end_ts of a live (not yet superseded) version.
inline constexpr Ts kMaxTs = INT64_MAX;

/// Size of the version header prepended to every heap record in MVCC mode.
inline constexpr size_t kVersionHeaderSize =
    sizeof(int64_t) * 2 + sizeof(int32_t) + sizeof(uint16_t) * 2;

/// Decoded form of the in-row version header.
struct VersionHeader {
  Ts begin = 0;
  Ts end = kMaxTs;
  /// Previous (older) version of the same logical row, or kInvalidPageId.
  Rid prev{kInvalidPageId, 0};

  bool has_prev() const { return prev.page_id != kInvalidPageId; }
};

inline void EncodeVersionHeader(const VersionHeader& h, char* out) {
  std::memcpy(out, &h.begin, sizeof(h.begin));
  std::memcpy(out + 8, &h.end, sizeof(h.end));
  std::memcpy(out + 16, &h.prev.page_id, sizeof(h.prev.page_id));
  std::memcpy(out + 20, &h.prev.slot, sizeof(h.prev.slot));
  std::memset(out + 22, 0, 2);
}

inline std::string EncodeVersionHeader(const VersionHeader& h) {
  std::string out(kVersionHeaderSize, '\0');
  EncodeVersionHeader(h, out.data());
  return out;
}

/// Decodes the header from the front of a record. The caller guarantees
/// `record.size() >= kVersionHeaderSize` (every MVCC insert prepends one).
inline VersionHeader DecodeVersionHeader(std::string_view record) {
  VersionHeader h;
  std::memcpy(&h.begin, record.data(), sizeof(h.begin));
  std::memcpy(&h.end, record.data() + 8, sizeof(h.end));
  std::memcpy(&h.prev.page_id, record.data() + 16, sizeof(h.prev.page_id));
  std::memcpy(&h.prev.slot, record.data() + 20, sizeof(h.prev.slot));
  return h;
}

/// The tuple bytes of an MVCC record (everything after the version header).
inline std::string_view RowPayload(std::string_view record) {
  return record.substr(kVersionHeaderSize);
}

/// A reader's view of the database: everything committed at or before
/// `snapshot`, plus its own uncommitted writes (`self` > 0 for DML
/// statements; 0 for pure readers, which then see committed state only).
struct MvccReadView {
  Ts snapshot = 0;
  TxnId self = 0;
};

/// Visibility under snapshot isolation. A version is visible iff it was
/// committed at or before the snapshot (or written by the reader itself) and
/// not superseded/deleted at or before the snapshot (again, own deletes are
/// seen immediately).
inline bool VersionVisible(const VersionHeader& h, const MvccReadView& view) {
  if (h.begin < 0) {
    // Uncommitted install: visible only to the installing transaction.
    if (-h.begin != view.self) return false;
  } else if (h.begin > view.snapshot) {
    return false;  // committed after the snapshot was taken
  }
  if (h.end < 0) {
    // Uncommitted delete: hides the row from the deleter only.
    return -h.end != view.self;
  }
  return h.end == kMaxTs || h.end > view.snapshot;
}

enum class MvccWriteOp : uint8_t { kInsert, kMarkDelete };

/// Undo information for one index entry touched by an MVCC insert.
struct MvccIndexUndo {
  int32_t index_id = 0;
  int64_t key = 0;
  /// True when the insert replaced an existing (dead) head entry; abort must
  /// restore `old_head` instead of deleting the key outright.
  bool replaced = false;
  Rid old_head{kInvalidPageId, 0};
};

/// One entry in a transaction's write set, sufficient to undo it on abort and
/// to rewrite its timestamp markers at commit.
struct MvccWrite {
  int32_t table_id = 0;
  Rid rid{kInvalidPageId, 0};
  MvccWriteOp op = MvccWriteOp::kInsert;
  std::vector<MvccIndexUndo> index_undo;
};

/// Per-statement (auto-commit) or per-transaction MVCC state, threaded through
/// ExecContext so scans resolve visibility and DML records its write set.
struct MvccTxn {
  /// Writer transaction id (> 0) or 0 for read-only statements.
  TxnId id = 0;
  /// Snapshot timestamp: the largest commit timestamp visible to this txn.
  Ts snapshot = 0;
  /// Whether `snapshot` is registered with the TransactionManager (and must
  /// be released exactly once).
  bool registered = false;
  std::vector<MvccWrite> writes;

  MvccReadView View() const { return MvccReadView{snapshot, id}; }
};

}  // namespace stagedb::storage

#endif  // STAGEDB_STORAGE_MVCC_H_
