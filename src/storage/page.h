// Fixed-size pages: the unit of storage I/O and buffering.
#ifndef STAGEDB_STORAGE_PAGE_H_
#define STAGEDB_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>

#include "common/mutex.h"

namespace stagedb::storage {

using PageId = int32_t;
constexpr PageId kInvalidPageId = -1;
constexpr size_t kPageSize = 8192;

/// A record identifier: page + slot within the page.
struct Rid {
  PageId page_id = kInvalidPageId;
  uint16_t slot = 0;

  bool operator==(const Rid& o) const {
    return page_id == o.page_id && slot == o.slot;
  }
  bool operator<(const Rid& o) const {
    return page_id != o.page_id ? page_id < o.page_id : slot < o.slot;
  }
  bool valid() const { return page_id != kInvalidPageId; }
};

/// An in-memory page frame. Pin counts and dirty bits are managed by the
/// buffer pool; operators access the raw bytes through data().
class Page {
 public:
  Page() { Reset(); }

  void Reset() {
    page_id_ = kInvalidPageId;
    pin_count_ = 0;
    dirty_ = false;
    std::memset(data_, 0, kPageSize);
  }

  char* data() { return data_; }
  const char* data() const { return data_; }

  PageId page_id() const { return page_id_; }
  void set_page_id(PageId id) { page_id_ = id; }

  int pin_count() const { return pin_count_; }
  void set_pin_count(int c) { pin_count_ = c; }

  bool dirty() const { return dirty_; }
  void set_dirty(bool d) { dirty_ = d; }

  /// Content latch: heap-file readers take it shared, mutators exclusive, so
  /// a scan never observes a half-written slot array. Held only between
  /// FetchPage and Unpin (the pin keeps the frame from being recycled while
  /// latched). The latch belongs to the frame, not the on-disk page, which is
  /// safe precisely because it is only ever held under a pin.
  SharedMutex& latch() const { return latch_; }

 private:
  char data_[kPageSize];
  PageId page_id_;
  int pin_count_;
  bool dirty_;
  mutable SharedMutex latch_;
};

}  // namespace stagedb::storage

#endif  // STAGEDB_STORAGE_PAGE_H_
