#include "storage/slotted_page.h"

#include <cstring>

#include "common/string_util.h"

namespace stagedb::storage {

void SlottedPage::Init() {
  Header* h = header();
  h->num_slots = 0;
  h->free_end = kPageSize;
  h->next_page = kInvalidPageId;
}

uint16_t SlottedPage::num_slots() const { return header()->num_slots; }

PageId SlottedPage::next_page() const { return header()->next_page; }

void SlottedPage::set_next_page(PageId id) { header()->next_page = id; }

uint16_t SlottedPage::live_records() const {
  uint16_t live = 0;
  for (uint16_t i = 0; i < num_slots(); ++i) {
    if (slot(i)->length > 0) ++live;
  }
  return live;
}

size_t SlottedPage::FreeSpace() const {
  const Header* h = header();
  const size_t slots_end = sizeof(Header) + h->num_slots * sizeof(Slot);
  if (h->free_end < slots_end) return 0;
  const size_t gap = h->free_end - slots_end;
  return gap > sizeof(Slot) ? gap - sizeof(Slot) : 0;
}

StatusOr<uint16_t> SlottedPage::Insert(std::string_view record) {
  if (record.size() > 0xFFFF) {
    return Status::InvalidArgument("record larger than 64KiB");
  }
  if (record.size() > FreeSpace()) {
    return Status::ResourceExhausted("page full");
  }
  Header* h = header();
  const uint16_t id = h->num_slots;
  h->num_slots += 1;
  h->free_end -= static_cast<uint16_t>(record.size());
  Slot* s = slot(id);
  s->offset = h->free_end;
  s->length = static_cast<uint16_t>(record.size());
  std::memcpy(page_->data() + s->offset, record.data(), record.size());
  return id;
}

StatusOr<std::string_view> SlottedPage::Get(uint16_t slot_id) const {
  if (slot_id >= num_slots()) {
    return Status::NotFound(StrFormat("slot %u out of range", slot_id));
  }
  const Slot* s = slot(slot_id);
  if (s->length == 0) {
    return Status::NotFound(StrFormat("slot %u deleted", slot_id));
  }
  return std::string_view(page_->data() + s->offset, s->length);
}

Status SlottedPage::Delete(uint16_t slot_id) {
  if (slot_id >= num_slots()) {
    return Status::NotFound(StrFormat("slot %u out of range", slot_id));
  }
  slot(slot_id)->length = 0;
  return Status::OK();
}

Status SlottedPage::UpdateInPlace(uint16_t slot_id, std::string_view record) {
  if (slot_id >= num_slots()) {
    return Status::NotFound(StrFormat("slot %u out of range", slot_id));
  }
  Slot* s = slot(slot_id);
  if (s->length == 0) return Status::NotFound("slot deleted");
  if (record.size() > s->length) {
    return Status::ResourceExhausted("record grew; relocate");
  }
  std::memcpy(page_->data() + s->offset, record.data(), record.size());
  s->length = static_cast<uint16_t>(record.size());
  return Status::OK();
}

Status SlottedPage::OverwritePrefix(uint16_t slot_id,
                                    std::string_view prefix) {
  if (slot_id >= num_slots()) {
    return Status::NotFound(StrFormat("slot %u out of range", slot_id));
  }
  Slot* s = slot(slot_id);
  if (s->length == 0) return Status::NotFound("slot deleted");
  if (prefix.size() > s->length) {
    return Status::InvalidArgument("prefix longer than record");
  }
  std::memcpy(page_->data() + s->offset, prefix.data(), prefix.size());
  return Status::OK();
}

}  // namespace stagedb::storage
