// Slotted-page layout for variable-length records.
//
// Layout:
//   [ header | slot array -> ...      ... <- record data ]
// Records grow from the end of the page backwards; the slot array grows
// forwards. A slot with length 0 is a deleted record (slot ids stay stable so
// Rids remain valid).
#ifndef STAGEDB_STORAGE_SLOTTED_PAGE_H_
#define STAGEDB_STORAGE_SLOTTED_PAGE_H_

#include <cstdint>
#include <string_view>

#include "common/status.h"
#include "storage/page.h"

namespace stagedb::storage {

/// A view over a Page interpreting it with the slotted layout. Does not own
/// the page; latching is the caller's concern.
class SlottedPage {
 public:
  explicit SlottedPage(Page* page) : page_(page) {}

  /// Formats a fresh page.
  void Init();

  /// Inserts a record; returns the slot id or ResourceExhausted if it does
  /// not fit.
  StatusOr<uint16_t> Insert(std::string_view record);

  /// Returns the record bytes in `slot` (NotFound for deleted/out-of-range).
  StatusOr<std::string_view> Get(uint16_t slot) const;

  /// Marks the slot deleted.
  Status Delete(uint16_t slot);

  /// Overwrites in place when the new record fits in the old space; otherwise
  /// returns ResourceExhausted and the caller relocates the record.
  Status UpdateInPlace(uint16_t slot, std::string_view record);

  /// Overwrites the first `prefix.size()` bytes of a live record in place
  /// (InvalidArgument if the record is shorter). MVCC uses this to rewrite
  /// the version header without relocating the row.
  Status OverwritePrefix(uint16_t slot, std::string_view prefix);

  uint16_t num_slots() const;
  /// Number of live (non-deleted) records.
  uint16_t live_records() const;
  /// Free bytes available for a new record (including its slot entry).
  size_t FreeSpace() const;

  PageId next_page() const;
  void set_next_page(PageId id);

 private:
  struct Header {
    uint16_t num_slots;
    uint16_t free_end;  // offset one past the end of free space
    PageId next_page;
  };
  struct Slot {
    uint16_t offset;
    uint16_t length;  // 0 = deleted
  };

  Header* header() { return reinterpret_cast<Header*>(page_->data()); }
  const Header* header() const {
    return reinterpret_cast<const Header*>(page_->data());
  }
  Slot* slot(uint16_t i) {
    return reinterpret_cast<Slot*>(page_->data() + sizeof(Header)) + i;
  }
  const Slot* slot(uint16_t i) const {
    return reinterpret_cast<const Slot*>(page_->data() + sizeof(Header)) + i;
  }

  Page* page_;
};

}  // namespace stagedb::storage

#endif  // STAGEDB_STORAGE_SLOTTED_PAGE_H_
