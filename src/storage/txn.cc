#include "storage/txn.h"

#include <algorithm>
#include <chrono>

namespace stagedb::storage {

// ------------------------------------------------------------ LockManager ---

// Both acquire paths re-look-up the TableLock after every wait: ReleaseAll
// erases entries that become fully unlocked, so a reference held across
// cv_.wait_until would dangle.

Status LockManager::AcquireShared(TxnId txn, int32_t table_id) {
  MutexLock lock(mu_);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(timeout_micros_);
  while (true) {
    TableLock& l = locks_[table_id];
    if (l.shared.count(txn) || l.exclusive == txn) return Status::OK();
    if (CanGrantShared(l, txn)) {
      l.shared.insert(txn);
      return Status::OK();
    }
    if (cv_.WaitUntil(mu_, deadline) == std::cv_status::timeout) {
      return Status::Aborted("lock timeout (possible deadlock)");
    }
  }
}

Status LockManager::AcquireExclusive(TxnId txn, int32_t table_id) {
  MutexLock lock(mu_);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(timeout_micros_);
  while (true) {
    TableLock& l = locks_[table_id];
    if (l.exclusive == txn) return Status::OK();
    if (CanGrantExclusive(l, txn)) {
      l.shared.erase(txn);  // upgrade
      l.exclusive = txn;
      return Status::OK();
    }
    // Register as a waiting writer while blocked so new readers queue
    // behind us; ReleaseAll keeps entries with waiting writers alive, so
    // the re-lookup after the wait always finds this entry.
    ++l.waiting_writers;
    const auto wait = cv_.WaitUntil(mu_, deadline);
    --locks_[table_id].waiting_writers;
    if (wait == std::cv_status::timeout) {
      cv_.NotifyAll();  // readers held back by us may now be grantable
      return Status::Aborted("lock timeout (possible deadlock)");
    }
  }
}

void LockManager::ReleaseAll(TxnId txn) {
  MutexLock lock(mu_);
  for (auto it = locks_.begin(); it != locks_.end();) {
    TableLock& l = it->second;
    l.shared.erase(txn);
    if (l.exclusive == txn) l.exclusive = -1;
    if (l.shared.empty() && l.exclusive == -1 && l.waiting_writers == 0) {
      it = locks_.erase(it);
    } else {
      ++it;
    }
  }
  cv_.NotifyAll();
}

size_t LockManager::locked_tables() const {
  MutexLock lock(mu_);
  return locks_.size();
}

// ----------------------------------------------------- TransactionManager ---

void TransactionManager::RegisterTable(int32_t table_id, HeapFile* file) {
  MutexLock lock(mu_);
  tables_[table_id] = file;
}

HeapFile* TransactionManager::FindTable(int32_t table_id) const {
  MutexLock lock(mu_);
  auto it = tables_.find(table_id);
  return it == tables_.end() ? nullptr : it->second;
}

StatusOr<Transaction*> TransactionManager::Begin() {
  MutexLock lock(mu_);
  auto txn = std::make_unique<Transaction>();
  txn->id = next_txn_++;
  Transaction* ptr = txn.get();
  txns_[ptr->id] = std::move(txn);
  txn_log_[ptr->id] = {};
  WalRecord r;
  r.txn_id = ptr->id;
  r.type = WalRecord::Type::kBegin;
  auto lsn_or = wal_->Append(std::move(r));
  if (!lsn_or.ok()) return lsn_or.status();
  return ptr;
}

Status TransactionManager::Commit(Transaction* txn) {
  if (txn->state != TxnState::kActive) {
    return Status::InvalidArgument("commit of non-active transaction");
  }
  WalRecord r;
  r.txn_id = txn->id;
  r.type = WalRecord::Type::kCommit;
  {
    auto lsn_or = wal_->Append(std::move(r));
    if (!lsn_or.ok()) return lsn_or.status();
  }
  txn->state = TxnState::kCommitted;
  locks_.ReleaseAll(txn->id);
  MutexLock lock(mu_);
  txn_log_.erase(txn->id);
  return Status::OK();
}

namespace {

// Resolves the row holding `image`, trying `hint` first. The logged rid can
// go stale within a transaction: a later update may have relocated the row
// (HeapFile::Update re-inserts when the new image does not fit in place), and
// undo of that later update restores the image at a fresh rid. Falling back
// to an image scan keeps undo correct across relocation.
StatusOr<Rid> FindRowByImage(HeapFile* file, const Rid& hint,
                             const std::string& image) {
  std::string row;
  if (file->Get(hint, &row).ok() && row == image) return hint;
  auto scan = file->Scan();
  while (scan.Next()) {
    if (scan.record() == image) return scan.rid();
  }
  STAGEDB_RETURN_IF_ERROR(scan.status());
  return Status::NotFound("undo: row image not found");
}

}  // namespace

Status TransactionManager::Undo(const WalRecord& record) {
  HeapFile* file = FindTable(record.table_id);
  if (file == nullptr) return Status::NotFound("undo: unregistered table");
  switch (record.type) {
    case WalRecord::Type::kInsert: {
      auto rid_or = FindRowByImage(file, record.rid, record.after);
      if (!rid_or.ok()) return rid_or.status();
      return file->Delete(*rid_or);
    }
    case WalRecord::Type::kDelete: {
      // Re-insert the before image. The Rid may change; logical undo.
      auto rid_or = file->Insert(record.before);
      return rid_or.ok() ? Status::OK() : rid_or.status();
    }
    case WalRecord::Type::kUpdate: {
      auto rid_or = FindRowByImage(file, record.rid, record.after);
      if (!rid_or.ok()) return rid_or.status();
      auto new_rid_or = file->Update(*rid_or, record.before);
      return new_rid_or.ok() ? Status::OK() : new_rid_or.status();
    }
    default:
      return Status::Internal("undo of non-data record");
  }
}

Status TransactionManager::Abort(Transaction* txn) {
  if (txn->state != TxnState::kActive) {
    return Status::InvalidArgument("abort of non-active transaction");
  }
  std::vector<WalRecord> ops;
  {
    MutexLock lock(mu_);
    ops = txn_log_[txn->id];
  }
  for (auto it = ops.rbegin(); it != ops.rend(); ++it) {
    STAGEDB_RETURN_IF_ERROR(Undo(*it));
  }
  WalRecord r;
  r.txn_id = txn->id;
  r.type = WalRecord::Type::kAbort;
  {
    auto lsn_or = wal_->Append(std::move(r));
    if (!lsn_or.ok()) return lsn_or.status();
  }
  txn->state = TxnState::kAborted;
  locks_.ReleaseAll(txn->id);
  MutexLock lock(mu_);
  txn_log_.erase(txn->id);
  return Status::OK();
}

StatusOr<Rid> TransactionManager::Insert(Transaction* txn, int32_t table_id,
                                         std::string_view row) {
  STAGEDB_RETURN_IF_ERROR(locks_.AcquireExclusive(txn->id, table_id));
  HeapFile* file = FindTable(table_id);
  if (file == nullptr) return Status::NotFound("unregistered table");
  WalRecord r;
  r.txn_id = txn->id;
  r.type = WalRecord::Type::kInsert;
  r.table_id = table_id;
  r.after.assign(row.data(), row.size());
  // Write-ahead: log first, then mutate; fill in the rid afterwards for undo.
  auto rid_or = file->Insert(row);
  if (!rid_or.ok()) return rid_or.status();
  r.rid = *rid_or;
  {
    auto lsn_or = wal_->Append(r);
    if (!lsn_or.ok()) return lsn_or.status();
  }
  MutexLock lock(mu_);
  txn_log_[txn->id].push_back(std::move(r));
  return *rid_or;
}

Status TransactionManager::Delete(Transaction* txn, int32_t table_id,
                                  const Rid& rid) {
  STAGEDB_RETURN_IF_ERROR(locks_.AcquireExclusive(txn->id, table_id));
  HeapFile* file = FindTable(table_id);
  if (file == nullptr) return Status::NotFound("unregistered table");
  WalRecord r;
  r.txn_id = txn->id;
  r.type = WalRecord::Type::kDelete;
  r.table_id = table_id;
  r.rid = rid;
  STAGEDB_RETURN_IF_ERROR(file->Get(rid, &r.before));
  {
    auto lsn_or = wal_->Append(r);
    if (!lsn_or.ok()) return lsn_or.status();
  }
  STAGEDB_RETURN_IF_ERROR(file->Delete(rid));
  MutexLock lock(mu_);
  txn_log_[txn->id].push_back(std::move(r));
  return Status::OK();
}

StatusOr<Rid> TransactionManager::Update(Transaction* txn, int32_t table_id,
                                         const Rid& rid,
                                         std::string_view new_row) {
  STAGEDB_RETURN_IF_ERROR(locks_.AcquireExclusive(txn->id, table_id));
  HeapFile* file = FindTable(table_id);
  if (file == nullptr) return Status::NotFound("unregistered table");
  WalRecord r;
  r.txn_id = txn->id;
  r.type = WalRecord::Type::kUpdate;
  r.table_id = table_id;
  r.rid = rid;
  STAGEDB_RETURN_IF_ERROR(file->Get(rid, &r.before));
  r.after.assign(new_row.data(), new_row.size());
  {
    auto lsn_or = wal_->Append(r);
    if (!lsn_or.ok()) return lsn_or.status();
  }
  auto new_rid_or = file->Update(rid, new_row);
  if (!new_rid_or.ok()) return new_rid_or.status();
  MutexLock lock(mu_);
  txn_log_[txn->id].push_back(std::move(r));
  return *new_rid_or;
}

TxnId TransactionManager::AllocateTxnId() {
  MutexLock lock(mu_);
  return next_txn_++;
}

Status TransactionManager::Recover(RecoveryApplier* applier,
                                   RecoveryStats* stats) {
  {
    // Idempotence guard: the Database ctor and explicit callers may both try
    // to recover; only the first pass replays.
    MutexLock lock(mu_);
    if (recovery_done_) return Status::OK();
    recovery_done_ = true;
  }
  std::set<TxnId> committed;
  for (TxnId id : wal_->CommittedTxns()) committed.insert(id);
  std::set<TxnId> begun;
  TxnId max_txn = 0;
  Ts max_ts = 0;
  RecoveryStats local;
  Status replay = wal_->Replay([&](const WalRecord& r) -> Status {
    if (r.txn_id > max_txn) max_txn = r.txn_id;
    switch (r.type) {
      case WalRecord::Type::kBegin:
        begun.insert(r.txn_id);
        return Status::OK();
      case WalRecord::Type::kCommit:
        // Snapshot-mode COMMIT records carry the MVCC commit timestamp; the
        // high-water mark is restored below so post-restart commits (and the
        // begin=0 bootstrap versions installed by replay) order correctly.
        if (r.ts > max_ts) max_ts = r.ts;
        return Status::OK();
      case WalRecord::Type::kAbort:
        return Status::OK();
      case WalRecord::Type::kCreateTable:
      case WalRecord::Type::kCreateIndex:
      case WalRecord::Type::kDropTable:
        // DDL is auto-committed at append time; always replayed so the
        // schema exists before the row records that reference it.
        ++local.ddl_records;
        ++local.applied_records;
        return applier != nullptr ? applier->ApplyDdl(r) : Status::OK();
      case WalRecord::Type::kInsert:
      case WalRecord::Type::kDelete:
      case WalRecord::Type::kUpdate:
        break;
    }
    if (committed.count(r.txn_id) == 0) return Status::OK();  // loser
    ++local.applied_records;
    if (applier != nullptr) {
      switch (r.type) {
        case WalRecord::Type::kInsert:
          return applier->ApplyInsert(r.table_id, r.after);
        case WalRecord::Type::kDelete:
          return applier->ApplyDelete(r.table_id, r.before);
        default:
          return applier->ApplyUpdate(r.table_id, r.before, r.after);
      }
    }
    HeapFile* file = FindTable(r.table_id);
    if (file == nullptr) return Status::NotFound("recover: table");
    if (r.type == WalRecord::Type::kInsert) {
      auto rid_or = file->Insert(r.after);
      return rid_or.ok() ? Status::OK() : rid_or.status();
    }
    // Logical redo over re-assigned rids: find the row by before-image.
    auto scan = file->Scan();
    while (scan.Next()) {
      if (scan.record() == r.before) {
        if (r.type == WalRecord::Type::kDelete) {
          return file->Delete(scan.rid());
        }
        auto rid_or = file->Update(scan.rid(), r.after);
        return rid_or.ok() ? Status::OK() : rid_or.status();
      }
    }
    return scan.status();
  });
  STAGEDB_RETURN_IF_ERROR(replay);
  for (TxnId id : begun) {
    if (committed.count(id)) {
      ++local.committed_txns;
    } else {
      ++local.loser_txns;
    }
  }
  {
    // New transactions must not reuse ids that appear in the log.
    MutexLock lock(mu_);
    if (max_txn + 1 > next_txn_) next_txn_ = max_txn + 1;
  }
  if (max_ts > 0) RestoreTimestampHighWater(max_ts);
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

// ------------------------------------------------- MVCC timestamp protocol --

Ts TransactionManager::BeginSnapshot() {
  MutexLock lock(mvcc_mu_);
  const Ts snap = last_committed_;
  active_snaps_.insert(snap);
  return snap;
}

void TransactionManager::ReleaseSnapshot(Ts snapshot) {
  MutexLock lock(mvcc_mu_);
  auto it = active_snaps_.find(snapshot);
  if (it != active_snaps_.end()) active_snaps_.erase(it);
}

Ts TransactionManager::last_committed() const {
  MutexLock lock(mvcc_mu_);
  return last_committed_;
}

Ts TransactionManager::AllocateCommitTs() {
  MutexLock lock(mvcc_mu_);
  const Ts cts = ++next_cts_;
  pending_cts_.insert(cts);
  return cts;
}

Status TransactionManager::FinalizeCommit(
    MvccTxn* txn, Ts cts,
    const std::function<HeapFile*(int32_t)>& heap_for) {
  MutexLock lock(mvcc_mu_);
  // Publish strictly oldest-first: a commit whose timestamp is not yet the
  // minimum pending one waits, so last_committed_ (and therefore every new
  // snapshot) always covers a prefix of the commit order.
  while (!pending_cts_.empty() && *pending_cts_.begin() != cts) {
    commit_cv_.Wait(mvcc_mu_);
  }
  Status status;
  int64_t committed_deletes = 0;
  for (const MvccWrite& w : txn->writes) {
    HeapFile* heap = heap_for(w.table_id);
    if (heap == nullptr) {
      if (status.ok()) status = Status::NotFound("finalize: unknown table");
      continue;
    }
    std::string record;
    Status s = heap->Get(w.rid, &record);
    if (s.ok() && record.size() < kVersionHeaderSize) {
      s = Status::Internal("finalize: record shorter than version header");
    }
    if (s.ok()) {
      VersionHeader h = DecodeVersionHeader(record);
      if (w.op == MvccWriteOp::kInsert && h.begin == -txn->id) h.begin = cts;
      if (w.op == MvccWriteOp::kMarkDelete && h.end == -txn->id) {
        h.end = cts;
        ++committed_deletes;
      }
      s = heap->OverwritePrefix(w.rid, EncodeVersionHeader(h));
    }
    if (!s.ok() && status.ok()) status = s;
  }
  pending_cts_.erase(cts);
  last_committed_ =
      pending_cts_.empty() ? next_cts_ : *pending_cts_.begin() - 1;
  commit_cv_.NotifyAll();
  if (committed_deletes > 0) {
    dead_versions_.fetch_add(committed_deletes, std::memory_order_relaxed);
  }
  return status;
}

Status TransactionManager::MarkDeleteVersion(MvccTxn* txn, int32_t table_id,
                                             HeapFile* heap, const Rid& rid) {
  MutexLock lock(mvcc_mu_);
  std::string record;
  STAGEDB_RETURN_IF_ERROR(heap->Get(rid, &record));
  if (record.size() < kVersionHeaderSize) {
    return Status::Internal("mark-delete: record shorter than version header");
  }
  VersionHeader h = DecodeVersionHeader(record);
  if (h.end != kMaxTs) {
    // Someone else deleted this version: either still uncommitted (end is a
    // -txn_id marker) or committed after our snapshot (any committed end we
    // can observe on a version we read as live is necessarily > snapshot).
    // First updater wins; we lose.
    return Status::Aborted("write-write conflict");
  }
  h.end = -txn->id;
  STAGEDB_RETURN_IF_ERROR(heap->OverwritePrefix(rid, EncodeVersionHeader(h)));
  MvccWrite w;
  w.table_id = table_id;
  w.rid = rid;
  w.op = MvccWriteOp::kMarkDelete;
  txn->writes.push_back(std::move(w));
  return Status::OK();
}

Ts TransactionManager::VacuumHorizon() const {
  MutexLock lock(mvcc_mu_);
  return active_snaps_.empty() ? last_committed_ : *active_snaps_.begin();
}

void TransactionManager::RestoreTimestampHighWater(Ts ts) {
  MutexLock lock(mvcc_mu_);
  if (ts > next_cts_) next_cts_ = ts;
  if (ts > last_committed_) last_committed_ = ts;
}

int64_t TransactionManager::active_transactions() const {
  MutexLock lock(mu_);
  int64_t n = 0;
  for (const auto& [id, txn] : txns_) {
    if (txn->state == TxnState::kActive) ++n;
  }
  return n;
}

}  // namespace stagedb::storage
