// Transactions: strict two-phase locking at table granularity with
// timeout-based deadlock resolution, WAL-backed undo on abort, and logical
// redo at recovery.
#ifndef STAGEDB_STORAGE_TXN_H_
#define STAGEDB_STORAGE_TXN_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "storage/heap_file.h"
#include "storage/wal.h"

namespace stagedb::storage {

using TxnId = int64_t;

enum class TxnState { kActive, kCommitted, kAborted };

/// Handle to an in-flight transaction.
struct Transaction {
  TxnId id = 0;
  TxnState state = TxnState::kActive;
};

/// Table-granularity shared/exclusive lock manager. Deadlocks are resolved by
/// timing out the waiter (the caller aborts its transaction), the same policy
/// family as SHORE's timeout-based detection.
class LockManager {
 public:
  explicit LockManager(int64_t timeout_micros = 200000)
      : timeout_micros_(timeout_micros) {}

  Status AcquireShared(TxnId txn, int32_t table_id);
  Status AcquireExclusive(TxnId txn, int32_t table_id);
  void ReleaseAll(TxnId txn);

  /// Number of distinct tables currently locked (for tests/monitoring).
  size_t locked_tables() const;

 private:
  struct TableLock {
    std::set<TxnId> shared;
    TxnId exclusive = -1;  // -1 = none
  };

  bool CanGrantShared(const TableLock& l, TxnId txn) const REQUIRES(mu_) {
    return l.exclusive == -1 || l.exclusive == txn;
  }
  bool CanGrantExclusive(const TableLock& l, TxnId txn) const REQUIRES(mu_) {
    const bool only_self_shared =
        l.shared.empty() ||
        (l.shared.size() == 1 && l.shared.count(txn) == 1);
    return (l.exclusive == -1 || l.exclusive == txn) && only_self_shared;
  }

  const int64_t timeout_micros_;
  mutable Mutex mu_;
  CondVar cv_;
  std::map<int32_t, TableLock> locks_ GUARDED_BY(mu_);
};

/// Receives replayed operations during recovery. The default path applies
/// them to the registered HeapFiles directly; Database supplies an applier
/// that routes through the catalog so indexes and statistics stay consistent
/// (and DDL records can rebuild the schema before row replay).
class RecoveryApplier {
 public:
  virtual ~RecoveryApplier() = default;
  /// Called for kCreateTable/kCreateIndex/kDropTable records, in lsn order.
  virtual Status ApplyDdl(const WalRecord& record) = 0;
  virtual Status ApplyInsert(int32_t table_id, const std::string& row) = 0;
  /// `before` identifies the victim row by image (rids are re-assigned).
  virtual Status ApplyDelete(int32_t table_id, const std::string& before) = 0;
  virtual Status ApplyUpdate(int32_t table_id, const std::string& before,
                             const std::string& after) = 0;
};

/// Counters describing one recovery pass (for logs/tests).
struct RecoveryStats {
  int64_t committed_txns = 0;  // txns whose effects were replayed
  int64_t loser_txns = 0;      // txns begun but never committed (skipped)
  int64_t applied_records = 0;
  int64_t ddl_records = 0;
};

/// Coordinates transactions over a set of registered heap files.
///
/// All row mutations go through this manager so that before/after images reach
/// the WAL before the change is visible (write-ahead rule), undo is possible
/// on abort, and recovery can replay committed work.
class TransactionManager {
 public:
  explicit TransactionManager(WriteAheadLog* wal) : wal_(wal) {}

  /// Makes `table_id` known; mutations and undo/redo resolve through it.
  void RegisterTable(int32_t table_id, HeapFile* file);

  StatusOr<Transaction*> Begin();
  Status Commit(Transaction* txn);
  /// Rolls back every logged operation of the transaction (reverse order).
  Status Abort(Transaction* txn);

  /// Logged mutations (acquire the exclusive table lock first).
  StatusOr<Rid> Insert(Transaction* txn, int32_t table_id,
                       std::string_view row);
  Status Delete(Transaction* txn, int32_t table_id, const Rid& rid);
  StatusOr<Rid> Update(Transaction* txn, int32_t table_id, const Rid& rid,
                       std::string_view new_row);

  LockManager* lock_manager() { return &locks_; }

  /// Hands out a fresh transaction id without creating a Transaction handle
  /// (the SQL layer logs BEGIN/COMMIT frames itself via the group-commit
  /// stage but still needs ids disjoint from recovery's).
  TxnId AllocateTxnId();

  /// Logical redo: replays committed transactions' operations into the
  /// registered (empty) tables. Insert Rids are re-assigned; per-row identity
  /// is the row image, which is sufficient for logical recovery. Losers
  /// (begun, never committed) are simply not replayed.
  ///
  /// Idempotent: a second call is a no-op returning OK, so "recover twice"
  /// equals "recover once" even if startup paths overlap.
  Status Recover() { return Recover(nullptr, nullptr); }
  /// As above, routing through `applier` when non-null and filling `stats`
  /// when non-null.
  Status Recover(RecoveryApplier* applier, RecoveryStats* stats);

  int64_t active_transactions() const;

 private:
  Status Undo(const WalRecord& record);
  /// Locked lookup of a registered table (nullptr if unknown).
  HeapFile* FindTable(int32_t table_id) const EXCLUDES(mu_);

  WriteAheadLog* wal_;
  LockManager locks_;
  mutable Mutex mu_;
  TxnId next_txn_ GUARDED_BY(mu_) = 1;
  bool recovery_done_ GUARDED_BY(mu_) = false;
  std::map<TxnId, std::unique_ptr<Transaction>> txns_ GUARDED_BY(mu_);
  // Per-txn undo chain.
  std::map<TxnId, std::vector<WalRecord>> txn_log_ GUARDED_BY(mu_);
  std::unordered_map<int32_t, HeapFile*> tables_ GUARDED_BY(mu_);
};

}  // namespace stagedb::storage

#endif  // STAGEDB_STORAGE_TXN_H_
