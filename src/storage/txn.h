// Transactions: strict two-phase locking at table granularity with
// timeout-based deadlock resolution, WAL-backed undo on abort, and logical
// redo at recovery.
#ifndef STAGEDB_STORAGE_TXN_H_
#define STAGEDB_STORAGE_TXN_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "storage/heap_file.h"
#include "storage/mvcc.h"
#include "storage/wal.h"

namespace stagedb::storage {

enum class TxnState { kActive, kCommitted, kAborted };

/// Handle to an in-flight transaction.
struct Transaction {
  TxnId id = 0;
  TxnState state = TxnState::kActive;
};

/// Table-granularity shared/exclusive lock manager. Deadlocks are resolved by
/// timing out the waiter (the caller aborts its transaction), the same policy
/// family as SHORE's timeout-based detection.
class LockManager {
 public:
  explicit LockManager(int64_t timeout_micros = 200000)
      : timeout_micros_(timeout_micros) {}

  /// Reconfigures the wait timeout. Call during setup, before concurrent
  /// acquires are in flight (the field is read without the lock held).
  void set_timeout_micros(int64_t timeout_micros) {
    timeout_micros_ = timeout_micros;
  }

  Status AcquireShared(TxnId txn, int32_t table_id);
  Status AcquireExclusive(TxnId txn, int32_t table_id);
  void ReleaseAll(TxnId txn);

  /// Number of distinct tables currently locked (for tests/monitoring).
  size_t locked_tables() const;

 private:
  struct TableLock {
    std::set<TxnId> shared;
    TxnId exclusive = -1;  // -1 = none
    // Writers currently blocked in AcquireExclusive. New readers queue
    // behind them (writer preference): without this, a steady stream of
    // overlapping shared scans starves DML forever.
    int waiting_writers = 0;
  };

  bool CanGrantShared(const TableLock& l, TxnId txn) const REQUIRES(mu_) {
    return (l.exclusive == -1 || l.exclusive == txn) &&
           l.waiting_writers == 0;
  }
  bool CanGrantExclusive(const TableLock& l, TxnId txn) const REQUIRES(mu_) {
    const bool only_self_shared =
        l.shared.empty() ||
        (l.shared.size() == 1 && l.shared.count(txn) == 1);
    return (l.exclusive == -1 || l.exclusive == txn) && only_self_shared;
  }

  int64_t timeout_micros_;
  mutable Mutex mu_;
  CondVar cv_;
  std::map<int32_t, TableLock> locks_ GUARDED_BY(mu_);
};

/// Receives replayed operations during recovery. The default path applies
/// them to the registered HeapFiles directly; Database supplies an applier
/// that routes through the catalog so indexes and statistics stay consistent
/// (and DDL records can rebuild the schema before row replay).
class RecoveryApplier {
 public:
  virtual ~RecoveryApplier() = default;
  /// Called for kCreateTable/kCreateIndex/kDropTable records, in lsn order.
  virtual Status ApplyDdl(const WalRecord& record) = 0;
  virtual Status ApplyInsert(int32_t table_id, const std::string& row) = 0;
  /// `before` identifies the victim row by image (rids are re-assigned).
  virtual Status ApplyDelete(int32_t table_id, const std::string& before) = 0;
  virtual Status ApplyUpdate(int32_t table_id, const std::string& before,
                             const std::string& after) = 0;
};

/// Counters describing one recovery pass (for logs/tests).
struct RecoveryStats {
  int64_t committed_txns = 0;  // txns whose effects were replayed
  int64_t loser_txns = 0;      // txns begun but never committed (skipped)
  int64_t applied_records = 0;
  int64_t ddl_records = 0;
};

/// Coordinates transactions over a set of registered heap files.
///
/// All row mutations go through this manager so that before/after images reach
/// the WAL before the change is visible (write-ahead rule), undo is possible
/// on abort, and recovery can replay committed work.
class TransactionManager {
 public:
  explicit TransactionManager(WriteAheadLog* wal) : wal_(wal) {}

  /// Makes `table_id` known; mutations and undo/redo resolve through it.
  void RegisterTable(int32_t table_id, HeapFile* file);

  StatusOr<Transaction*> Begin();
  Status Commit(Transaction* txn);
  /// Rolls back every logged operation of the transaction (reverse order).
  Status Abort(Transaction* txn);

  /// Logged mutations (acquire the exclusive table lock first).
  StatusOr<Rid> Insert(Transaction* txn, int32_t table_id,
                       std::string_view row);
  Status Delete(Transaction* txn, int32_t table_id, const Rid& rid);
  StatusOr<Rid> Update(Transaction* txn, int32_t table_id, const Rid& rid,
                       std::string_view new_row);

  LockManager* lock_manager() { return &locks_; }

  /// Hands out a fresh transaction id without creating a Transaction handle
  /// (the SQL layer logs BEGIN/COMMIT frames itself via the group-commit
  /// stage but still needs ids disjoint from recovery's).
  TxnId AllocateTxnId();

  /// Logical redo: replays committed transactions' operations into the
  /// registered (empty) tables. Insert Rids are re-assigned; per-row identity
  /// is the row image, which is sufficient for logical recovery. Losers
  /// (begun, never committed) are simply not replayed.
  ///
  /// Idempotent: a second call is a no-op returning OK, so "recover twice"
  /// equals "recover once" even if startup paths overlap.
  Status Recover() { return Recover(nullptr, nullptr); }
  /// As above, routing through `applier` when non-null and filling `stats`
  /// when non-null.
  Status Recover(RecoveryApplier* applier, RecoveryStats* stats);

  int64_t active_transactions() const;

  // --- MVCC (snapshot isolation) -----------------------------------------
  //
  // The manager is the timestamp authority for ConcurrencyMode::kSnapshot:
  // AllocateCommitTs hands out commit timestamps in commit order and marks
  // them pending; FinalizeCommit publishes them strictly oldest-first, so
  // last_committed() (the value snapshots are built from) never exposes a
  // suffix of a group-commit batch before its prefix.

  /// Registers a reader snapshot and returns its timestamp. The read of
  /// last_committed() and the registration are atomic, so the vacuum horizon
  /// can never advance past a snapshot that is about to start reading.
  Ts BeginSnapshot();
  /// Deregisters a snapshot returned by BeginSnapshot (exactly once).
  void ReleaseSnapshot(Ts snapshot);
  /// Largest published commit timestamp.
  Ts last_committed() const;

  /// Allocates the next commit timestamp and marks it pending.
  Ts AllocateCommitTs();
  /// Publishes `cts`: waits until it is the oldest pending commit, rewrites
  /// the transaction's uncommitted -txn_id markers to `cts` (resolving heap
  /// files through `heap_for`), then advances last_committed(). Returns the
  /// first rewrite error, but always unblocks later commits.
  Status FinalizeCommit(MvccTxn* txn, Ts cts,
                        const std::function<HeapFile*(int32_t)>& heap_for);

  /// First-updater-wins delete mark: atomically checks that the version at
  /// `rid` is live (end == kMaxTs) and stamps end = -txn->id, recording the
  /// write in txn->writes. Any other end value means another transaction
  /// deleted it first (committed-after-snapshot or still in flight), so the
  /// caller must abort: returns Aborted("write-write conflict").
  Status MarkDeleteVersion(MvccTxn* txn, int32_t table_id, HeapFile* heap,
                           const Rid& rid);

  /// Oldest live snapshot, or last_committed() when none: every version
  /// whose committed end <= horizon is invisible to all present and future
  /// readers and may be physically reclaimed.
  Ts VacuumHorizon() const;

  /// Recovery hook: raises the commit-timestamp high-water mark so commits
  /// after a restart continue above everything in the replayed log.
  void RestoreTimestampHighWater(Ts ts);

  /// Committed delete marks since the last ResetDeadVersions (vacuum's
  /// wake-up hint).
  int64_t dead_versions() const {
    return dead_versions_.load(std::memory_order_relaxed);
  }
  void ResetDeadVersions() {
    dead_versions_.store(0, std::memory_order_relaxed);
  }

 private:
  Status Undo(const WalRecord& record);
  /// Locked lookup of a registered table (nullptr if unknown).
  HeapFile* FindTable(int32_t table_id) const EXCLUDES(mu_);

  WriteAheadLog* wal_;
  LockManager locks_;
  mutable Mutex mu_;
  TxnId next_txn_ GUARDED_BY(mu_) = 1;
  bool recovery_done_ GUARDED_BY(mu_) = false;
  std::map<TxnId, std::unique_ptr<Transaction>> txns_ GUARDED_BY(mu_);
  // Per-txn undo chain.
  std::map<TxnId, std::vector<WalRecord>> txn_log_ GUARDED_BY(mu_);
  std::unordered_map<int32_t, HeapFile*> tables_ GUARDED_BY(mu_);

  // MVCC state. mvcc_mu_ is held across header check-and-stamp sequences
  // (MarkDeleteVersion, FinalizeCommit's rewrites), so two writers can never
  // both observe a version as live; page latches nest inside it.
  mutable Mutex mvcc_mu_;
  CondVar commit_cv_;
  Ts next_cts_ GUARDED_BY(mvcc_mu_) = 0;
  Ts last_committed_ GUARDED_BY(mvcc_mu_) = 0;
  std::set<Ts> pending_cts_ GUARDED_BY(mvcc_mu_);
  std::multiset<Ts> active_snaps_ GUARDED_BY(mvcc_mu_);
  std::atomic<int64_t> dead_versions_{0};
};

}  // namespace stagedb::storage

#endif  // STAGEDB_STORAGE_TXN_H_
