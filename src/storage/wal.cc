#include "storage/wal.h"

#include <cstdio>
#include <memory>

namespace stagedb::storage {

const char* WalRecordTypeName(WalRecord::Type type) {
  switch (type) {
    case WalRecord::Type::kBegin:
      return "BEGIN";
    case WalRecord::Type::kCommit:
      return "COMMIT";
    case WalRecord::Type::kAbort:
      return "ABORT";
    case WalRecord::Type::kInsert:
      return "INSERT";
    case WalRecord::Type::kDelete:
      return "DELETE";
    case WalRecord::Type::kUpdate:
      return "UPDATE";
  }
  return "?";
}

StatusOr<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path) {
  auto wal = std::make_unique<WriteAheadLog>();
  wal->path_ = path;
  STAGEDB_RETURN_IF_ERROR(wal->LoadFromFile());
  return wal;
}

StatusOr<int64_t> WriteAheadLog::Append(WalRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  record.lsn = next_lsn_++;
  if (!path_.empty()) {
    STAGEDB_RETURN_IF_ERROR(AppendToFile(record));
  }
  const int64_t lsn = record.lsn;
  records_.push_back(std::move(record));
  return lsn;
}

Status WriteAheadLog::Replay(
    const std::function<Status(const WalRecord&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const WalRecord& r : records_) {
    STAGEDB_RETURN_IF_ERROR(fn(r));
  }
  return Status::OK();
}

std::vector<int64_t> WriteAheadLog::CommittedTxns() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int64_t> out;
  for (const WalRecord& r : records_) {
    if (r.type == WalRecord::Type::kCommit) out.push_back(r.txn_id);
  }
  return out;
}

int64_t WriteAheadLog::num_records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(records_.size());
}

int64_t WriteAheadLog::next_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_;
}

namespace {
// Binary framing helpers for the file mirror.
bool WriteBlob(std::FILE* f, const std::string& s) {
  const uint32_t len = static_cast<uint32_t>(s.size());
  return std::fwrite(&len, sizeof(len), 1, f) == 1 &&
         (len == 0 || std::fwrite(s.data(), 1, len, f) == len);
}
bool ReadBlob(std::FILE* f, std::string* s) {
  uint32_t len = 0;
  if (std::fread(&len, sizeof(len), 1, f) != 1) return false;
  s->resize(len);
  return len == 0 || std::fread(s->data(), 1, len, f) == len;
}
}  // namespace

Status WriteAheadLog::AppendToFile(const WalRecord& r) {
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  if (f == nullptr) return Status::IOError("wal: cannot open " + path_);
  bool ok = std::fwrite(&r.lsn, sizeof(r.lsn), 1, f) == 1 &&
            std::fwrite(&r.txn_id, sizeof(r.txn_id), 1, f) == 1 &&
            std::fwrite(&r.type, sizeof(r.type), 1, f) == 1 &&
            std::fwrite(&r.table_id, sizeof(r.table_id), 1, f) == 1 &&
            std::fwrite(&r.rid, sizeof(r.rid), 1, f) == 1 &&
            WriteBlob(f, r.before) && WriteBlob(f, r.after);
  std::fflush(f);
  std::fclose(f);
  if (!ok) return Status::IOError("wal: append failed");
  return Status::OK();
}

Status WriteAheadLog::LoadFromFile() {
  std::FILE* f = std::fopen(path_.c_str(), "rb");
  if (f == nullptr) return Status::OK();  // no log yet
  while (true) {
    WalRecord r;
    if (std::fread(&r.lsn, sizeof(r.lsn), 1, f) != 1) break;
    bool ok = std::fread(&r.txn_id, sizeof(r.txn_id), 1, f) == 1 &&
              std::fread(&r.type, sizeof(r.type), 1, f) == 1 &&
              std::fread(&r.table_id, sizeof(r.table_id), 1, f) == 1 &&
              std::fread(&r.rid, sizeof(r.rid), 1, f) == 1 &&
              ReadBlob(f, &r.before) && ReadBlob(f, &r.after);
    if (!ok) {
      std::fclose(f);
      return Status::Corruption("wal: truncated record");
    }
    next_lsn_ = r.lsn + 1;
    records_.push_back(std::move(r));
  }
  std::fclose(f);
  return Status::OK();
}

}  // namespace stagedb::storage
