#include "storage/wal.h"

#include <cstdio>
#include <cstring>
#include <memory>

namespace stagedb::storage {

const char* WalRecordTypeName(WalRecord::Type type) {
  switch (type) {
    case WalRecord::Type::kBegin:
      return "BEGIN";
    case WalRecord::Type::kCommit:
      return "COMMIT";
    case WalRecord::Type::kAbort:
      return "ABORT";
    case WalRecord::Type::kInsert:
      return "INSERT";
    case WalRecord::Type::kDelete:
      return "DELETE";
    case WalRecord::Type::kUpdate:
      return "UPDATE";
    case WalRecord::Type::kCreateTable:
      return "CREATE_TABLE";
    case WalRecord::Type::kCreateIndex:
      return "CREATE_INDEX";
    case WalRecord::Type::kDropTable:
      return "DROP_TABLE";
  }
  return "?";
}

namespace {

// CRC-32 (IEEE, reflected) lookup table, built on first use.
const uint32_t* Crc32Table() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

// Little-endian scalar append/read. The framing is explicit about layout so
// a log written by one build is readable by another (no struct dumping).
template <typename T>
void PutScalar(std::string* out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

template <typename T>
bool GetScalar(const std::string& in, size_t* pos, T* v) {
  if (*pos + sizeof(T) > in.size()) return false;
  std::memcpy(v, in.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

void PutBlob(std::string* out, const std::string& s) {
  PutScalar<uint32_t>(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

bool GetBlob(const std::string& in, size_t* pos, std::string* s) {
  uint32_t len = 0;
  if (!GetScalar(in, pos, &len)) return false;
  if (*pos + len > in.size()) return false;
  s->assign(in.data() + *pos, len);
  *pos += len;
  return true;
}

std::string EncodePayload(const WalRecord& r) {
  std::string p;
  PutScalar<int64_t>(&p, r.lsn);
  PutScalar<int64_t>(&p, r.txn_id);
  PutScalar<uint8_t>(&p, static_cast<uint8_t>(r.type));
  PutScalar<int32_t>(&p, r.table_id);
  PutScalar<int32_t>(&p, r.rid.page_id);
  PutScalar<uint16_t>(&p, r.rid.slot);
  PutBlob(&p, r.before);
  PutBlob(&p, r.after);
  PutScalar<int64_t>(&p, r.ts);
  return p;
}

bool DecodePayload(const std::string& payload, WalRecord* r) {
  size_t pos = 0;
  uint8_t type = 0;
  if (!GetScalar(payload, &pos, &r->lsn) ||
      !GetScalar(payload, &pos, &r->txn_id) ||
      !GetScalar(payload, &pos, &type) ||
      !GetScalar(payload, &pos, &r->table_id) ||
      !GetScalar(payload, &pos, &r->rid.page_id) ||
      !GetScalar(payload, &pos, &r->rid.slot) ||
      !GetBlob(payload, &pos, &r->before) ||
      !GetBlob(payload, &pos, &r->after)) {
    return false;
  }
  if (type > static_cast<uint8_t>(WalRecord::Type::kDropTable)) return false;
  r->type = static_cast<WalRecord::Type>(type);
  // Trailing optional: logs written before the MVCC timestamp field simply
  // end here; absent means ts = 0.
  r->ts = 0;
  if (pos < payload.size() && !GetScalar(payload, &pos, &r->ts)) return false;
  return pos == payload.size();
}

}  // namespace

uint32_t WalCrc32(const void* data, size_t len) {
  const uint32_t* table = Crc32Table();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t c = 0xffffffffu;
  for (size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

std::string EncodeWalFrame(const WalRecord& record) {
  const std::string payload = EncodePayload(record);
  std::string frame;
  PutScalar<uint32_t>(&frame, static_cast<uint32_t>(payload.size()));
  PutScalar<uint32_t>(&frame, WalCrc32(payload.data(), payload.size()));
  frame.append(payload);
  return frame;
}

StatusOr<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path) {
  auto device_or = LogDevice::Open(path);
  if (!device_or.ok()) return device_or.status();
  auto wal = std::make_unique<WriteAheadLog>();
  wal->device_ = std::move(*device_or);
  STAGEDB_RETURN_IF_ERROR(wal->LoadFromDevice());
  return wal;
}

StatusOr<int64_t> WriteAheadLog::Append(WalRecord record) {
  MutexLock lock(mu_);
  record.lsn = next_lsn_++;
  if (device_ != nullptr) {
    STAGEDB_RETURN_IF_ERROR(device_->Append(EncodeWalFrame(record)));
  }
  const int64_t lsn = record.lsn;
  records_.push_back(std::move(record));
  return lsn;
}

Status WriteAheadLog::Sync() {
  MutexLock lock(mu_);
  if (device_ != nullptr) {
    STAGEDB_RETURN_IF_ERROR(device_->Sync());
  } else {
    ++mem_syncs_;
  }
  durable_lsn_ = next_lsn_ - 1;
  return Status::OK();
}

Status WriteAheadLog::Replay(
    const std::function<Status(const WalRecord&)>& fn) const {
  MutexLock lock(mu_);
  for (const WalRecord& r : records_) {
    STAGEDB_RETURN_IF_ERROR(fn(r));
  }
  return Status::OK();
}

std::vector<int64_t> WriteAheadLog::CommittedTxns() const {
  MutexLock lock(mu_);
  std::vector<int64_t> out;
  for (const WalRecord& r : records_) {
    if (r.type == WalRecord::Type::kCommit) out.push_back(r.txn_id);
  }
  return out;
}

int64_t WriteAheadLog::num_records() const {
  MutexLock lock(mu_);
  return static_cast<int64_t>(records_.size());
}

int64_t WriteAheadLog::next_lsn() const {
  MutexLock lock(mu_);
  return next_lsn_;
}

int64_t WriteAheadLog::durable_lsn() const {
  MutexLock lock(mu_);
  return durable_lsn_;
}

int64_t WriteAheadLog::syncs() const {
  MutexLock lock(mu_);
  if (device_ != nullptr) return device_->syncs();
  return mem_syncs_;
}

int64_t WriteAheadLog::truncated_tail_bytes() const {
  MutexLock lock(mu_);
  return truncated_tail_bytes_;
}

void WriteAheadLog::set_fault_injector(WriteFaultInjector* injector) {
  MutexLock lock(mu_);
  if (device_ != nullptr) device_->set_fault_injector(injector);
}

Status WriteAheadLog::LoadFromDevice() {
  std::string bytes;
  STAGEDB_RETURN_IF_ERROR(device_->ReadAll(&bytes));
  size_t pos = 0;
  while (pos < bytes.size()) {
    // Frame header: [u32 len][u32 crc].
    if (pos + 8 > bytes.size()) break;  // short header → torn tail
    uint32_t len = 0, crc = 0;
    std::memcpy(&len, bytes.data() + pos, 4);
    std::memcpy(&crc, bytes.data() + pos + 4, 4);
    if (pos + 8 + len > bytes.size()) break;  // short payload → torn tail
    const char* payload = bytes.data() + pos + 8;
    if (WalCrc32(payload, len) != crc) break;  // torn/corrupt payload
    WalRecord r;
    if (!DecodePayload(std::string(payload, len), &r)) break;
    next_lsn_ = r.lsn + 1;
    records_.push_back(std::move(r));
    pos += 8 + len;
  }
  if (pos < bytes.size()) {
    // A crash mid-append leaves a short or CRC-failing final frame. That is
    // expected, not corruption of the recovered prefix: drop the tail so new
    // appends start at a clean boundary.
    truncated_tail_bytes_ = static_cast<int64_t>(bytes.size() - pos);
    std::fprintf(stderr,
                 "[wal] %s: truncating %lld torn tail byte(s) after %zu "
                 "whole record(s)\n",
                 device_->path().c_str(),
                 static_cast<long long>(truncated_tail_bytes_),
                 records_.size());
    STAGEDB_RETURN_IF_ERROR(device_->Truncate(pos));
  }
  // Everything that survived Open is on stable storage by definition.
  durable_lsn_ = next_lsn_ - 1;
  return Status::OK();
}

}  // namespace stagedb::storage
