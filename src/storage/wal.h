// Write-ahead log with logical records (before/after images) used for
// transaction undo and for logical redo at recovery.
//
// On-disk framing (PR 6): every record is `[u32 len][u32 crc32][payload]`
// where `crc32` covers the payload bytes. A crash can leave the final frame
// short or torn; `Open` detects either (short header/payload or CRC
// mismatch), warns, and truncates the log back to the last whole record
// instead of failing startup. Durability is explicit: `Append` only buffers;
// `Sync()` is the fdatasync barrier that advances `durable_lsn()` — the
// group-commit stage's whole job is issuing as few of those as possible.
#ifndef STAGEDB_STORAGE_WAL_H_
#define STAGEDB_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace stagedb::storage {

/// One log record. `before`/`after` are serialized row images for data
/// records; DDL records reuse them for name/schema payloads (see database.cc).
struct WalRecord {
  enum class Type : uint8_t {
    kBegin = 0,
    kCommit,
    kAbort,
    kInsert,
    kDelete,
    kUpdate,
    // DDL records make the log self-contained: recovery can rebuild the
    // schema before replaying row operations. txn_id is 0 (auto-committed).
    kCreateTable,  // before = table name, after = serialized schema
    kCreateIndex,  // before = index name, after = "table\x1fcolumn"
    kDropTable,    // before = table name
  };

  int64_t lsn = 0;
  int64_t txn_id = 0;
  Type type = Type::kBegin;
  int32_t table_id = -1;
  Rid rid;
  std::string before;
  std::string after;
  /// MVCC commit timestamp (kCommit records under snapshot mode); recovery
  /// restores the timestamp high-water mark from the max over these. 0 for
  /// pre-MVCC logs and non-commit records (the field is a trailing optional
  /// in the frame encoding, so old logs decode cleanly).
  int64_t ts = 0;
};

const char* WalRecordTypeName(WalRecord::Type type);

/// CRC-32 (IEEE 802.3 polynomial, reflected) over `data` — the per-record
/// checksum used by the log framing. Exposed for tests that build corrupt
/// frames by hand.
uint32_t WalCrc32(const void* data, size_t len);

/// Serializes `record` into its on-disk frame (header + payload); appending
/// this string to a log file yields a valid record. Exposed for tests.
std::string EncodeWalFrame(const WalRecord& record);

/// Append-only log. Records are kept in memory and optionally mirrored to a
/// LogDevice (CRC-framed) so recovery can replay them after a restart.
class WriteAheadLog {
 public:
  /// In-memory-only log.
  WriteAheadLog() = default;

  /// Opens (or creates) a file-backed log and loads existing records. A
  /// partially-written final record (torn tail) is truncated with a warning,
  /// not an error — see truncated_tail_bytes().
  static StatusOr<std::unique_ptr<WriteAheadLog>> Open(
      const std::string& path);

  /// Appends a record (assigning its lsn) and returns the lsn. File-backed
  /// logs buffer the frame; it is not durable until Sync().
  StatusOr<int64_t> Append(WalRecord record);

  /// Durability barrier (fdatasync on the backing device). On return every
  /// previously appended record is stable and durable_lsn() reflects that.
  /// No-op success for memory-only logs (durable_lsn still advances so
  /// callers need not special-case).
  Status Sync();

  /// Applies `fn` to every record in lsn order.
  Status Replay(const std::function<Status(const WalRecord&)>& fn) const;

  /// The set of txn ids with a commit record.
  std::vector<int64_t> CommittedTxns() const;

  int64_t num_records() const;
  int64_t next_lsn() const;
  /// Highest lsn guaranteed on stable storage (0 = none).
  int64_t durable_lsn() const;
  /// Number of Sync() barriers issued (fsyncs for file-backed logs).
  int64_t syncs() const;
  /// Bytes dropped from the tail at Open because the final record was
  /// incomplete or failed its CRC (0 = the log was clean).
  int64_t truncated_tail_bytes() const;

  /// Fault-injection passthrough for crash tests (file-backed logs only;
  /// ignored otherwise). Injector is not owned.
  void set_fault_injector(WriteFaultInjector* injector);

 private:
  Status LoadFromDevice();

  mutable Mutex mu_;
  std::vector<WalRecord> records_ GUARDED_BY(mu_);
  int64_t next_lsn_ GUARDED_BY(mu_) = 1;
  int64_t durable_lsn_ GUARDED_BY(mu_) = 0;
  // Sync() count for memory-only logs.
  int64_t mem_syncs_ GUARDED_BY(mu_) = 0;
  int64_t truncated_tail_bytes_ GUARDED_BY(mu_) = 0;
  std::unique_ptr<LogDevice> device_;  // null = memory-only; self-locking
};

}  // namespace stagedb::storage

#endif  // STAGEDB_STORAGE_WAL_H_
