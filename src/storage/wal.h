// Write-ahead log with logical records (before/after images) used for
// transaction undo and for logical redo at recovery.
#ifndef STAGEDB_STORAGE_WAL_H_
#define STAGEDB_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/page.h"

namespace stagedb::storage {

/// One log record. `before`/`after` are serialized row images.
struct WalRecord {
  enum class Type : uint8_t {
    kBegin = 0,
    kCommit,
    kAbort,
    kInsert,
    kDelete,
    kUpdate,
  };

  int64_t lsn = 0;
  int64_t txn_id = 0;
  Type type = Type::kBegin;
  int32_t table_id = -1;
  Rid rid;
  std::string before;
  std::string after;
};

const char* WalRecordTypeName(WalRecord::Type type);

/// Append-only log. Records are kept in memory and optionally mirrored to a
/// file (binary framing) so recovery can replay them after a restart.
class WriteAheadLog {
 public:
  /// In-memory-only log.
  WriteAheadLog() = default;

  /// Opens (or creates) a file-backed log and loads existing records.
  static StatusOr<std::unique_ptr<WriteAheadLog>> Open(
      const std::string& path);

  /// Appends a record (assigning its lsn) and returns the lsn.
  StatusOr<int64_t> Append(WalRecord record);

  /// Applies `fn` to every record in lsn order.
  Status Replay(const std::function<Status(const WalRecord&)>& fn) const;

  /// The set of txn ids with a commit record.
  std::vector<int64_t> CommittedTxns() const;

  int64_t num_records() const;
  int64_t next_lsn() const;

 private:
  Status AppendToFile(const WalRecord& record);
  Status LoadFromFile();

  mutable std::mutex mu_;
  std::vector<WalRecord> records_;
  int64_t next_lsn_ = 1;
  std::string path_;  // empty = memory-only
};

}  // namespace stagedb::storage

#endif  // STAGEDB_STORAGE_WAL_H_
