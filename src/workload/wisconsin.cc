#include "workload/wisconsin.h"

#include <algorithm>

#include "common/string_util.h"

namespace stagedb::workload {

using catalog::Schema;
using catalog::TypeId;
using catalog::Value;

namespace {

/// Wisconsin string columns: 52 chars, first 7 significant ("A..A" pattern
/// keyed by the number).
std::string WisconsinString(int64_t value) {
  std::string s(7, 'A');
  for (int i = 6; i >= 0 && value > 0; --i) {
    s[i] = static_cast<char>('A' + (value % 26));
    value /= 26;
  }
  return s + std::string(45, 'x');
}

}  // namespace

StatusOr<catalog::TableInfo*> CreateWisconsinTable(catalog::Catalog* catalog,
                                                   const std::string& name,
                                                   int64_t rows,
                                                   uint64_t seed) {
  Schema schema({{"unique1", TypeId::kInt64, ""},
                 {"unique2", TypeId::kInt64, ""},
                 {"two", TypeId::kInt64, ""},
                 {"four", TypeId::kInt64, ""},
                 {"ten", TypeId::kInt64, ""},
                 {"twenty", TypeId::kInt64, ""},
                 {"onepercent", TypeId::kInt64, ""},
                 {"tenpercent", TypeId::kInt64, ""},
                 {"fiftypercent", TypeId::kInt64, ""},
                 {"stringu1", TypeId::kVarchar, ""},
                 {"stringu2", TypeId::kVarchar, ""},
                 {"string4", TypeId::kVarchar, ""}});
  auto table_or = catalog->CreateTable(name, schema);
  if (!table_or.ok()) return table_or.status();
  catalog::TableInfo* table = *table_or;

  // Random permutation for unique1.
  std::vector<int64_t> unique1(rows);
  for (int64_t i = 0; i < rows; ++i) unique1[i] = i;
  Rng rng(seed);
  for (int64_t i = rows - 1; i > 0; --i) {
    std::swap(unique1[i], unique1[rng.Uniform(i + 1)]);
  }
  static const char* kString4[] = {"AAAA", "HHHH", "OOOO", "VVVV"};
  for (int64_t i = 0; i < rows; ++i) {
    const int64_t u1 = unique1[i];
    catalog::Tuple tuple = {
        Value::Int(u1),
        Value::Int(i),
        Value::Int(u1 % 2),
        Value::Int(u1 % 4),
        Value::Int(u1 % 10),
        Value::Int(u1 % 20),
        Value::Int(u1 % 100),
        Value::Int(u1 % 10),
        Value::Int(u1 % 2),
        Value::Varchar(WisconsinString(u1)),
        Value::Varchar(WisconsinString(i)),
        Value::Varchar(std::string(kString4[i % 4]) + std::string(48, 'x')),
    };
    auto rid = catalog->InsertTuple(table, tuple);
    if (!rid.ok()) return rid.status();
  }
  return table;
}

std::string WorkloadAQuery(const std::string& table, int64_t rows, Rng* rng) {
  const int64_t span = std::max<int64_t>(1, rows / 100);  // 1% selection
  const int64_t lo = rng->UniformRange(0, std::max<int64_t>(0, rows - span));
  switch (rng->Uniform(3)) {
    case 0:
      return StrFormat(
          "SELECT unique1, stringu1 FROM %s WHERE unique2 >= %lld AND "
          "unique2 < %lld",
          table.c_str(), (long long)lo, (long long)(lo + span));
    case 1:
      return StrFormat(
          "SELECT COUNT(*), MIN(unique1) FROM %s WHERE unique2 >= %lld AND "
          "unique2 < %lld",
          table.c_str(), (long long)lo, (long long)(lo + span));
    default:
      return StrFormat(
          "SELECT ten, SUM(unique2) FROM %s WHERE unique2 >= %lld AND "
          "unique2 < %lld GROUP BY ten",
          table.c_str(), (long long)lo, (long long)(lo + span));
  }
}

std::string WorkloadBQuery(const std::string& t1, const std::string& t2,
                           int64_t rows, Rng* rng) {
  const int64_t half = rows / 2;
  switch (rng->Uniform(2)) {
    case 0:
      return StrFormat(
          "SELECT COUNT(*), SUM(%s.unique1) FROM %s JOIN %s ON "
          "%s.unique1 = %s.unique2 WHERE %s.unique2 < %lld",
          t1.c_str(), t1.c_str(), t2.c_str(), t1.c_str(), t2.c_str(),
          t1.c_str(), (long long)half);
    default:
      return StrFormat(
          "SELECT %s.ten, COUNT(*) FROM %s JOIN %s ON "
          "%s.unique1 = %s.unique1 GROUP BY %s.ten",
          t1.c_str(), t1.c_str(), t2.c_str(), t1.c_str(), t2.c_str(),
          t1.c_str());
  }
}

std::vector<std::string> SampleQueries(const std::string& t1,
                                       const std::string& t2, int64_t rows) {
  Rng rng(7);
  return {
      WorkloadAQuery(t1, rows, &rng),
      WorkloadAQuery(t1, rows, &rng),
      WorkloadBQuery(t1, t2, rows, &rng),
      StrFormat("SELECT two, four, COUNT(*) FROM %s GROUP BY two, four "
                "ORDER BY two, four",
                t1.c_str()),
      StrFormat("SELECT unique1 FROM %s ORDER BY unique1 LIMIT 10",
                t1.c_str()),
  };
}

}  // namespace stagedb::workload
