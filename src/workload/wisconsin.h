// The Wisconsin benchmark [De91]: the workload the paper's §3.1.1 experiment
// is designed after. Generates the classic relation (trimmed to the columns
// the benchmark queries use) and the paper's two workloads:
//   Workload A — short (40-80 ms) selection and aggregation queries that
//                almost always incur disk I/O.
//   Workload B — longer (2-3 s) join queries on memory-resident tables.
#ifndef STAGEDB_WORKLOAD_WISCONSIN_H_
#define STAGEDB_WORKLOAD_WISCONSIN_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "common/status.h"

namespace stagedb::workload {

/// Creates a Wisconsin-style table with `rows` tuples. Columns:
///   unique1 INTEGER  — 0..rows-1 in random order
///   unique2 INTEGER  — 0..rows-1 sequential
///   two, four, ten, twenty INTEGER — unique1 mod k
///   onepercent, tenpercent, fiftypercent INTEGER — unique1 mod {100,10,2}
///   stringu1, stringu2 VARCHAR(52) — derived from unique1/unique2
///   string4 VARCHAR(52) — cycles through 4 constants
StatusOr<catalog::TableInfo*> CreateWisconsinTable(catalog::Catalog* catalog,
                                                   const std::string& name,
                                                   int64_t rows,
                                                   uint64_t seed = 42);

/// Workload A query generator: 1%-range selections and small aggregations
/// over `table` (parameterized by a random range start).
std::string WorkloadAQuery(const std::string& table, int64_t rows, Rng* rng);

/// Workload B query generator: equi-joins between `t1` and `t2` with a
/// selective predicate, shaped after the Wisconsin join queries (joinABprime
/// family).
std::string WorkloadBQuery(const std::string& t1, const std::string& t2,
                           int64_t rows, Rng* rng);

/// The fixed query set used by examples/tests (one of each family).
std::vector<std::string> SampleQueries(const std::string& t1,
                                       const std::string& t2, int64_t rows);

}  // namespace stagedb::workload

#endif  // STAGEDB_WORKLOAD_WISCONSIN_H_
