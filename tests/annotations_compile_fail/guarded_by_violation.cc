// Negative-compile fixture: a GUARDED_BY field touched without its mutex
// held must fail the build under clang -Werror=thread-safety. Kept minimal
// so the only possible diagnostic is the one under test.
#include "common/mutex.h"

namespace {

class Counter {
 public:
  void Bump() { ++count_; }  // writes count_ without holding mu_

 private:
  stagedb::Mutex mu_;
  int count_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Bump();
  return 0;
}
