// Negative-compile fixture: discarding a Status return must fail the build
// under -Werror=unused-result. Status is class-level [[nodiscard]], so this
// fails under GCC and clang alike (no thread-safety analysis needed).
#include "common/status.h"

namespace {

stagedb::Status Mutate() { return stagedb::Status::OK(); }

}  // namespace

int main() {
  Mutate();  // dropped Status
  return 0;
}
