// Positive control for the negative-compile harness: the same shapes as the
// violation fixtures, written correctly. If this stops compiling, the
// harness is broken (or the wrapper regressed), not the fixtures.
#include "common/mutex.h"
#include "common/status.h"

namespace {

class Counter {
 public:
  void Bump() {
    stagedb::MutexLock lock(mu_);
    BumpLocked();
  }

  int Get() const {
    stagedb::MutexLock lock(mu_);
    return count_;
  }

 private:
  void BumpLocked() REQUIRES(mu_) { ++count_; }

  mutable stagedb::Mutex mu_;
  int count_ GUARDED_BY(mu_) = 0;
};

stagedb::Status Mutate() { return stagedb::Status::OK(); }

}  // namespace

int main() {
  Counter c;
  c.Bump();
  stagedb::Status st = Mutate();
  return st.ok() && c.Get() == 1 ? 0 : 1;
}
