// Negative-compile fixture: calling a REQUIRES(mu_) helper without holding
// the mutex must fail the build under clang -Werror=thread-safety.
#include "common/mutex.h"

namespace {

class Counter {
 public:
  void Bump() { BumpLocked(); }  // calls a REQUIRES helper unlocked

 private:
  void BumpLocked() REQUIRES(mu_) { ++count_; }

  stagedb::Mutex mu_;
  int count_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Bump();
  return 0;
}
