#!/bin/sh
# Negative-compile driver: compiles one fixture with the annotation warnings
# promoted to errors and checks the outcome against the expectation.
#
#   run_one.sh <compiler> <include_dir> <EXPECT_FAIL|EXPECT_PASS> \
#              <needs_clang:0|1> <source.cc>
#
# Exit 0 on the expected outcome, 1 otherwise, 77 (ctest SKIP_RETURN_CODE)
# when the fixture needs the clang thread-safety analysis and the compiler
# is not clang — the annotation macros expand to nothing elsewhere, so the
# violation legitimately compiles there.
set -u

compiler="$1"
include_dir="$2"
expect="$3"
needs_clang="$4"
source="$5"

if [ "$needs_clang" = "1" ]; then
  if ! "$compiler" --version 2>/dev/null | grep -qi clang; then
    echo "SKIP: $source needs the clang thread-safety analysis"
    exit 77
  fi
fi

flags="-std=c++17 -fsyntax-only -Wall -Werror=unused-result"
if "$compiler" --version 2>/dev/null | grep -qi clang; then
  flags="$flags -Wthread-safety -Werror=thread-safety"
fi

# shellcheck disable=SC2086
if "$compiler" $flags -I"$include_dir" "$source" 2>compile_errors.txt; then
  outcome=PASS
else
  outcome=FAIL
fi

case "$expect" in
  EXPECT_FAIL)
    if [ "$outcome" = FAIL ]; then
      echo "OK: $source failed to compile, as required:"
      head -4 compile_errors.txt
      exit 0
    fi
    echo "ERROR: $source compiled but must not (violation not caught)"
    exit 1
    ;;
  EXPECT_PASS)
    if [ "$outcome" = PASS ]; then
      echo "OK: $source compiled cleanly"
      exit 0
    fi
    echo "ERROR: positive control $source failed to compile:"
    cat compile_errors.txt
    exit 1
    ;;
  *)
    echo "ERROR: bad expectation '$expect'"
    exit 2
    ;;
esac
