// Tests for types, values, schemas, tuples, stats, symbol table, catalog.
#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/schema.h"
#include "catalog/symbol_table.h"
#include "catalog/table_stats.h"
#include "catalog/tuple.h"
#include "catalog/value.h"
#include "storage/disk_manager.h"

namespace stagedb::catalog {
namespace {

using storage::BufferPool;
using storage::MemDiskManager;

// ------------------------------------------------------------------ Value ---

TEST(ValueTest, TypeAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(7).int_value(), 7);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).double_value(), 2.5);
  EXPECT_EQ(Value::Varchar("abc").varchar_value(), "abc");
  EXPECT_TRUE(Value::Bool(true).bool_value());
}

TEST(ValueTest, CompareWithinTypes) {
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_EQ(Value::Int(5).Compare(Value::Int(5)), 0);
  EXPECT_GT(Value::Varchar("b").Compare(Value::Varchar("a")), 0);
  EXPECT_LT(Value::Double(1.5).Compare(Value::Double(2.0)), 0);
}

TEST(ValueTest, CrossNumericCompare) {
  EXPECT_EQ(Value::Int(2).Compare(Value::Double(2.0)), 0);
  EXPECT_LT(Value::Int(2).Compare(Value::Double(2.5)), 0);
  EXPECT_GT(Value::Double(3.1).Compare(Value::Int(3)), 0);
}

TEST(ValueTest, NullsSortFirst) {
  EXPECT_LT(Value::Null().Compare(Value::Int(-100)), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(42).Hash(), Value::Int(42).Hash());
  EXPECT_EQ(Value::Int(42).Hash(), Value::Double(42.0).Hash());
  EXPECT_EQ(Value::Varchar("x").Hash(), Value::Varchar("x").Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Int(3).ToString(), "3");
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
}

// ----------------------------------------------------------------- Schema ---

Schema WisconsinLikeSchema() {
  return Schema({{"unique1", TypeId::kInt64, ""},
                 {"unique2", TypeId::kInt64, ""},
                 {"stringu1", TypeId::kVarchar, ""}});
}

TEST(SchemaTest, FindByName) {
  Schema s = WisconsinLikeSchema();
  auto idx = s.Find("unique2");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1u);
  EXPECT_TRUE(s.Find("nope").status().IsNotFound());
}

TEST(SchemaTest, QualifiedLookup) {
  Schema s = WisconsinLikeSchema().Qualified("tenk1");
  EXPECT_TRUE(s.Find("tenk1.unique1").ok());
  EXPECT_TRUE(s.Find("unique1").ok());
  EXPECT_TRUE(s.Find("other.unique1").status().IsNotFound());
}

TEST(SchemaTest, ConcatDetectsAmbiguity) {
  Schema a = WisconsinLikeSchema().Qualified("t1");
  Schema b = WisconsinLikeSchema().Qualified("t2");
  Schema joined = Schema::Concat(a, b);
  EXPECT_EQ(joined.num_columns(), 6u);
  // Unqualified name now ambiguous.
  EXPECT_EQ(joined.Find("unique1").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(joined.Find("t2.unique1").ok());
}

// ------------------------------------------------------------------ Tuple ---

TEST(TupleTest, EncodeDecodeRoundTrip) {
  Schema s({{"a", TypeId::kInt64, ""},
            {"b", TypeId::kVarchar, ""},
            {"c", TypeId::kDouble, ""},
            {"d", TypeId::kBool, ""}});
  Tuple t = {Value::Int(-5), Value::Varchar("hello world"),
             Value::Double(3.25), Value::Bool(true)};
  std::string bytes = EncodeTuple(s, t);
  auto decoded = DecodeTuple(s, bytes);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 4u);
  EXPECT_EQ((*decoded)[0], t[0]);
  EXPECT_EQ((*decoded)[1], t[1]);
  EXPECT_EQ((*decoded)[2], t[2]);
  EXPECT_EQ((*decoded)[3].bool_value(), true);
}

TEST(TupleTest, NullsSurviveRoundTrip) {
  Schema s({{"a", TypeId::kInt64, ""}, {"b", TypeId::kVarchar, ""}});
  Tuple t = {Value::Null(), Value::Varchar("x")};
  auto decoded = DecodeTuple(s, EncodeTuple(s, t));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE((*decoded)[0].is_null());
  EXPECT_EQ((*decoded)[1].varchar_value(), "x");
}

TEST(TupleTest, EmptyVarcharAndLargeInt) {
  Schema s({{"a", TypeId::kVarchar, ""}, {"b", TypeId::kInt64, ""}});
  Tuple t = {Value::Varchar(""), Value::Int(INT64_MIN)};
  auto decoded = DecodeTuple(s, EncodeTuple(s, t));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ((*decoded)[0].varchar_value(), "");
  EXPECT_EQ((*decoded)[1].int_value(), INT64_MIN);
}

TEST(TupleTest, CorruptionDetected) {
  Schema s({{"a", TypeId::kInt64, ""}});
  Tuple t = {Value::Int(1)};
  std::string bytes = EncodeTuple(s, t);
  bytes.resize(bytes.size() - 3);  // truncate
  EXPECT_EQ(DecodeTuple(s, bytes).status().code(), StatusCode::kCorruption);
}

// ------------------------------------------------------------ TableStats ---

TEST(TableStatsTest, TracksCountMinMaxNdv) {
  TableStats stats(2);
  for (int i = 0; i < 100; ++i) {
    stats.RecordInsert({Value::Int(i % 10), Value::Int(i)});
  }
  EXPECT_EQ(stats.row_count(), 100);
  EXPECT_EQ(stats.column(0).num_distinct, 10);
  EXPECT_EQ(stats.column(1).num_distinct, 100);
  EXPECT_EQ(stats.column(0).min.int_value(), 0);
  EXPECT_EQ(stats.column(0).max.int_value(), 9);
}

TEST(TableStatsTest, SelectivityEstimates) {
  TableStats stats(1);
  for (int i = 0; i < 1000; ++i) stats.RecordInsert({Value::Int(i)});
  EXPECT_NEAR(stats.EqSelectivity(0), 0.001, 1e-6);
  // Range covering 10% of [0, 999].
  EXPECT_NEAR(stats.RangeSelectivity(0, Value::Int(0), Value::Int(99)), 0.1,
              0.01);
}

TEST(TableStatsTest, NullsCounted) {
  TableStats stats(1);
  stats.RecordInsert({Value::Null()});
  stats.RecordInsert({Value::Int(1)});
  EXPECT_EQ(stats.column(0).num_nulls, 1);
  EXPECT_EQ(stats.row_count(), 2);
}

// ----------------------------------------------------------- SymbolTable ---

TEST(SymbolTableTest, InternIsStable) {
  SymbolTable st;
  const int32_t a = st.Intern("tenk1");
  const int32_t b = st.Intern("unique1");
  EXPECT_NE(a, b);
  EXPECT_EQ(st.Intern("tenk1"), a);
  EXPECT_EQ(st.NameOf(a), "tenk1");
  EXPECT_EQ(st.size(), 2u);
}

TEST(SymbolTableTest, LookupCountsHits) {
  SymbolTable st;
  st.Intern("x");
  EXPECT_EQ(st.Lookup("x"), 0);
  EXPECT_EQ(st.Lookup("y"), -1);
  EXPECT_GE(st.lookups(), 3);
  EXPECT_GE(st.hits(), 1);
}

// ---------------------------------------------------------------- Catalog ---

class CatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    disk_ = std::make_unique<MemDiskManager>();
    pool_ = std::make_unique<BufferPool>(disk_.get(), 128);
    catalog_ = std::make_unique<Catalog>(pool_.get());
  }
  Schema TestSchema() {
    return Schema({{"id", TypeId::kInt64, ""}, {"name", TypeId::kVarchar, ""}});
  }
  std::unique_ptr<MemDiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<Catalog> catalog_;
};

TEST_F(CatalogTest, CreateAndGetTable) {
  auto t = catalog_->CreateTable("users", TestSchema());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->name, "users");
  EXPECT_EQ((*t)->schema.num_columns(), 2u);
  auto got = catalog_->GetTable("users");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, *t);
  EXPECT_TRUE(catalog_->GetTable("nope").status().IsNotFound());
  EXPECT_EQ(catalog_->CreateTable("users", TestSchema()).status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(CatalogTest, InsertMaintainsStats) {
  auto t = catalog_->CreateTable("users", TestSchema());
  ASSERT_TRUE(t.ok());
  for (int i = 0; i < 10; ++i) {
    auto rid = catalog_->InsertTuple(
        *t, {Value::Int(i), Value::Varchar("u" + std::to_string(i))});
    ASSERT_TRUE(rid.ok());
  }
  EXPECT_EQ((*t)->stats->row_count(), 10);
  auto count = (*t)->heap->CountRecords();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 10);
}

TEST_F(CatalogTest, InsertRejectsBadArity_AndTypes) {
  auto t = catalog_->CreateTable("users", TestSchema());
  ASSERT_TRUE(t.ok());
  EXPECT_FALSE(catalog_->InsertTuple(*t, {Value::Int(1)}).ok());
  EXPECT_FALSE(
      catalog_->InsertTuple(*t, {Value::Varchar("x"), Value::Varchar("y")})
          .ok());
}

TEST_F(CatalogTest, IndexBackfillAndMaintenance) {
  auto t = catalog_->CreateTable("users", TestSchema());
  ASSERT_TRUE(t.ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        catalog_->InsertTuple(*t, {Value::Int(i), Value::Varchar("u")}).ok());
  }
  auto idx = catalog_->CreateIndex("users_id", "users", "id");
  ASSERT_TRUE(idx.ok());
  // Backfilled:
  auto rid = (*idx)->tree->Get(42);
  ASSERT_TRUE(rid.ok());
  // Maintained on new inserts:
  ASSERT_TRUE(
      catalog_->InsertTuple(*t, {Value::Int(500), Value::Varchar("new")}).ok());
  EXPECT_TRUE((*idx)->tree->Get(500).ok());
  // FindIndexOn resolves it.
  EXPECT_EQ(catalog_->FindIndexOn((*t)->id, 0), *idx);
  EXPECT_EQ(catalog_->FindIndexOn((*t)->id, 1), nullptr);
}

TEST_F(CatalogTest, IndexRequiresIntegerColumn) {
  auto t = catalog_->CreateTable("users", TestSchema());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(catalog_->CreateIndex("bad", "users", "name").status().code(),
            StatusCode::kNotSupported);
}

TEST_F(CatalogTest, DeleteTupleMaintainsIndexes) {
  auto t = catalog_->CreateTable("users", TestSchema());
  ASSERT_TRUE(t.ok());
  auto rid = catalog_->InsertTuple(*t, {Value::Int(7), Value::Varchar("x")});
  ASSERT_TRUE(rid.ok());
  auto idx = catalog_->CreateIndex("users_id", "users", "id");
  ASSERT_TRUE(idx.ok());
  ASSERT_TRUE(catalog_->DeleteTuple(*t, *rid).ok());
  EXPECT_TRUE((*idx)->tree->Get(7).status().IsNotFound());
  EXPECT_EQ((*t)->stats->row_count(), 0);
}

TEST_F(CatalogTest, DropTableRemovesIndexes) {
  auto t = catalog_->CreateTable("users", TestSchema());
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(catalog_->CreateIndex("users_id", "users", "id").ok());
  ASSERT_TRUE(catalog_->DropTable("users").ok());
  EXPECT_TRUE(catalog_->GetTable("users").status().IsNotFound());
  EXPECT_TRUE(catalog_->GetIndex("users_id").status().IsNotFound());
  EXPECT_TRUE(catalog_->DropTable("users").IsNotFound());
}

TEST_F(CatalogTest, TableNamesSorted) {
  ASSERT_TRUE(catalog_->CreateTable("b", TestSchema()).ok());
  ASSERT_TRUE(catalog_->CreateTable("a", TestSchema()).ok());
  auto names = catalog_->TableNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
}

}  // namespace
}  // namespace stagedb::catalog
