// Unit tests for the common infrastructure library.
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/histogram.h"
#include "common/queue.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/string_util.h"

namespace stagedb {
namespace {

// ---------------------------------------------------------------- Status ----

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("table t");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "table t");
  EXPECT_EQ(s.ToString(), "NotFound: table t");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  STAGEDB_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_EQ(Chain(-1).code(), StatusCode::kInvalidArgument);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x * 2;
}

StatusOr<int> UseAssignOrReturn(int x) {
  STAGEDB_ASSIGN_OR_RETURN(int doubled, ParsePositive(x));
  return doubled + 1;
}

TEST(StatusOrTest, ValueAndError) {
  auto good = ParsePositive(21);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  auto bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  auto r = UseAssignOrReturn(10);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 21);
  EXPECT_FALSE(UseAssignOrReturn(0).ok());
}

// ----------------------------------------------------------------- Queue ----

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> q(10);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.Enqueue(i));
  for (int i = 0; i < 5; ++i) {
    auto v = q.Dequeue();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BoundedQueueTest, TryEnqueueRespectsCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryEnqueue(1));
  EXPECT_TRUE(q.TryEnqueue(2));
  EXPECT_FALSE(q.TryEnqueue(3));
  EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueueTest, CloseDrainsThenReturnsNullopt) {
  BoundedQueue<int> q(4);
  q.Enqueue(7);
  q.Close();
  EXPECT_FALSE(q.Enqueue(8));
  auto v = q.Dequeue();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
  EXPECT_FALSE(q.Dequeue().has_value());
}

TEST(BoundedQueueTest, BlockingEnqueueAppliesBackPressure) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Enqueue(1));
  std::atomic<bool> enqueued{false};
  std::thread producer([&] {
    q.Enqueue(2);  // blocks until a consumer makes room
    enqueued = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(enqueued.load());
  EXPECT_EQ(*q.Dequeue(), 1);
  producer.join();
  EXPECT_TRUE(enqueued.load());
  EXPECT_EQ(*q.Dequeue(), 2);
}

TEST(BoundedQueueTest, ManyProducersManyConsumers) {
  BoundedQueue<int> q(8);
  constexpr int kPerProducer = 1000;
  constexpr int kProducers = 4;
  std::atomic<long> sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) q.Enqueue(p * kPerProducer + i);
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.Dequeue()) sum += *v;
    });
  }
  for (auto& th : threads) th.join();
  q.Close();
  for (auto& th : consumers) th.join();
  const long n = kProducers * kPerProducer;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

// ------------------------------------------------------------------- Rng ----

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialMeanConverges) {
  Rng rng(11);
  double sum = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.Exponential(10.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.15);
}

// -------------------------------------------------------------- Histogram ----

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(99), 0.0);
}

TEST(HistogramTest, MeanMinMaxExact) {
  Histogram h;
  h.Record(1);
  h.Record(2);
  h.Record(3);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.Mean(), 2.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 3.0);
}

TEST(HistogramTest, PercentileApproximation) {
  Histogram h;
  for (int i = 1; i <= 10000; ++i) h.Record(i);
  // Log-bucketed: accept 20% relative error.
  EXPECT_NEAR(h.Percentile(50), 5000, 1000);
  EXPECT_NEAR(h.Percentile(95), 9500, 1500);
  EXPECT_LE(h.Percentile(100), h.max());
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Record(1);
  b.Record(3);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.Mean(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);
}

// Regression: Percentile once computed `buckets_[b] - (cumulative -
// threshold)` in uint64 arithmetic; a p≈0 threshold of 0 underflowed it and
// only the final clamp hid the garbage. Boundary semantics are now defined:
// p<=0 -> min, p>=100 -> max, empty -> 0 for every p.
TEST(HistogramTest, PercentileBoundarySemantics) {
  Histogram empty;
  EXPECT_DOUBLE_EQ(empty.Percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(empty.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(empty.Percentile(100), 0.0);
  EXPECT_NE(empty.ToString().find("count=0"), std::string::npos);

  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Record(i);
  EXPECT_DOUBLE_EQ(h.Percentile(0), h.min());
  EXPECT_DOUBLE_EQ(h.Percentile(-5), h.min());  // out-of-range p clamps
  EXPECT_DOUBLE_EQ(h.Percentile(100), h.max());
  EXPECT_DOUBLE_EQ(h.Percentile(250), h.max());
  // A tiny-but-positive p lands on the first recorded value, not on bucket
  // garbage below it.
  EXPECT_GE(h.Percentile(1e-9), h.min());
  EXPECT_LE(h.Percentile(1e-9), 2.0);
}

TEST(HistogramTest, SingleValueReportsThatValueEverywhere) {
  Histogram h;
  h.Record(42);
  for (double p : {0.0, 0.001, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(h.Percentile(p), 42.0) << "p=" << p;
  }
}

TEST(HistogramTest, PercentilesAreMonotoneAndWithinRange) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.Record((i * 37) % 500);
  double prev = h.Percentile(0);
  for (double p = 0; p <= 100; p += 0.5) {
    const double v = h.Percentile(p);
    EXPECT_GE(v, h.min());
    EXPECT_LE(v, h.max());
    EXPECT_GE(v, prev) << "non-monotone at p=" << p;
    prev = v;
  }
}

TEST(HistogramTest, MergedHistogramPercentileBoundaries) {
  Histogram a, b;
  a.Record(5);
  b.Record(500);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Percentile(0), 5.0);
  EXPECT_DOUBLE_EQ(a.Percentile(100), 500.0);
  const double median = a.Percentile(50);
  EXPECT_GE(median, 5.0);
  EXPECT_LE(median, 500.0);
  // Merging an empty histogram changes nothing, in either direction.
  Histogram empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.Merge(a);
  EXPECT_DOUBLE_EQ(empty.Percentile(0), 5.0);
  EXPECT_DOUBLE_EQ(empty.Percentile(100), 500.0);
}

// ------------------------------------------------------------------ Stats ----

TEST(StatsTest, CountersAreNamedAndStable) {
  StatsRegistry stats;
  Counter* c = stats.GetCounter("stage.parse.dequeued");
  c->Add(3);
  EXPECT_EQ(stats.GetCounter("stage.parse.dequeued"), c);
  EXPECT_EQ(stats.CounterSnapshot().at("stage.parse.dequeued"), 3);
}

TEST(StatsTest, ReportContainsEntries) {
  StatsRegistry stats;
  stats.GetCounter("a")->Add(1);
  stats.GetHistogram("lat")->Record(5);
  std::string report = stats.Report();
  EXPECT_NE(report.find("a = 1"), std::string::npos);
  EXPECT_NE(report.find("lat"), std::string::npos);
}

TEST(StatsTest, ResetAllClears) {
  StatsRegistry stats;
  stats.GetCounter("x")->Add(5);
  stats.ResetAll();
  EXPECT_EQ(stats.CounterSnapshot().at("x"), 0);
}

// ------------------------------------------------------------------ Clock ----

TEST(ClockTest, VirtualClockAdvances) {
  VirtualClock clock;
  EXPECT_EQ(clock.NowMicros(), 0);
  clock.Advance(100);
  EXPECT_EQ(clock.NowMicros(), 100);
  clock.SleepMicros(50);
  EXPECT_EQ(clock.NowMicros(), 150);
  clock.Set(7);
  EXPECT_EQ(clock.NowMicros(), 7);
}

TEST(ClockTest, RealClockMonotonic) {
  Clock* clock = RealClock::Instance();
  int64_t a = clock->NowMicros();
  int64_t b = clock->NowMicros();
  EXPECT_GE(b, a);
}

// ------------------------------------------------------------ StringUtil ----

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("x=%d y=%s", 3, "ab"), "x=3 y=ab");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

TEST(StringUtilTest, StrSplit) {
  auto parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToUpper("join"), "JOIN");
}

TEST(StringUtilTest, StartsWithAndJoin) {
  EXPECT_TRUE(StartsWith("staged", "st"));
  EXPECT_FALSE(StartsWith("st", "staged"));
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
}

}  // namespace
}  // namespace stagedb
