// Drives the fork/kill/recover/verify loop of tools/crash_harness from the
// test suite: randomized kill points on both the clean-kill and
// fault-injection (torn-write) paths, zero lost acked commits, zero
// divergence from the shadow model. Heavier sweeps run in CI via the
// crash_harness binary; this keeps a deterministic slice in every ctest run.
#include <gtest/gtest.h>
#include <unistd.h>

#include <string>

#include "tools/crash_harness.h"

namespace stagedb {
namespace {

// ThreadSanitizer does not support fork-heavy tests (the child inherits a
// snapshot of the TSan runtime's state and may self-deadlock).
bool RunningUnderTsan() {
#if defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

tools::CrashHarnessOptions BaseOptions(const std::string& tag) {
  tools::CrashHarnessOptions options;
  options.dir = testing::TempDir() + "/stagedb_crash_" + tag + "_" +
                std::to_string(::getpid());
  options.seed = 0xC0FFEE;
  options.iterations = 4;
  options.threads = 3;
  options.ops_per_thread = 200;
  return options;
}

TEST(CrashRecoveryTest, CleanKillNeverLosesAckedCommits) {
  if (RunningUnderTsan()) GTEST_SKIP() << "fork unsupported under TSan";
  auto options = BaseOptions("clean");
  options.mode = tools::CrashHarnessOptions::Mode::kClean;
  EXPECT_EQ(tools::RunCrashHarness(options), 0);
}

TEST(CrashRecoveryTest, TornWriteTailNeverLosesAckedCommits) {
  if (RunningUnderTsan()) GTEST_SKIP() << "fork unsupported under TSan";
  auto options = BaseOptions("fault");
  options.mode = tools::CrashHarnessOptions::Mode::kFault;
  EXPECT_EQ(tools::RunCrashHarness(options), 0);
}

// Snapshot (MVCC) mode: same ack contract, plus recovery must restore the
// commit-timestamp high-water mark so post-restart snapshots cover every
// acked commit (checked inside the harness).
TEST(CrashRecoveryTest, SnapshotModeSurvivesKillAndRestoresHighWater) {
  if (RunningUnderTsan()) GTEST_SKIP() << "fork unsupported under TSan";
  auto options = BaseOptions("snap");
  options.mode = tools::CrashHarnessOptions::Mode::kMix;
  options.snapshot = true;
  EXPECT_EQ(tools::RunCrashHarness(options), 0);
}

}  // namespace
}  // namespace stagedb
